(* CI quality gate over the bench harness's artifacts.

   Modes:
     gate.exe regression CURRENT.json BASELINE.json
       Compare a fresh tiny-scale BENCH_perf.json / BENCH_serve.json
       against the committed bench/baseline.json entry of the same
       experiment.  Tolerances are deliberately generous (2.5x): shared
       CI runners jitter wildly, and the gate exists to catch
       order-of-magnitude regressions (an accidentally quadratic loop, a
       lock on the hot path), not 10% drifts.  Also asserts the absolute
       instrumentation-overhead budget (obs_overhead_pct < 5).

     gate.exe trace-coverage TRACE.jsonl
       Validate a SUU_TRACE capture: every line parses as JSON, and at
       least one simulate request's direct child spans (parse /
       queue_wait / execute / write) cover >= 95% of the root span's
       wall time — i.e. the instrumentation accounts for where request
       time actually goes. *)

module J = Suu_util.Json

let failures = ref []

let failf fmt =
  Printf.ksprintf (fun s -> failures := s :: !failures) fmt

let okf fmt = Printf.ksprintf (fun s -> Printf.printf "ok: %s\n" s) fmt

(* --- regression mode --- *)

let tolerance = 2.5

let obs_overhead_budget_pct = 5.0

(* LP hot-path floors (see ISSUE/DESIGN "LP pipeline"): the warm-vs-cold
   speedup and the plan-cache hit rate are within-run measurements, so
   they get hard floors instead of the 2.5x jitter band.  The 5x floor
   is the acceptance criterion on the full doubling-sequence workload;
   tiny CI runs solve a shorter sequence (fewer rounds amortizing each
   factorization), so the floor drops to 3x there. *)
let warm_speedup_floor ~scale =
  match scale with Some "tiny" -> 3.0 | _ -> 5.0
let parity_tolerance = 1.25
let hit_rate_floor = 0.8
let connection_floor = 500.0

(* Table-1 online-policy floors.  The cold speedup (policy construction
   plus one uncached execution, LZF vs SUU-I-SEM) is a within-run ratio;
   5x is the acceptance criterion at full scale.  Tiny CI instances
   (n=12) solve LPs in microseconds, so the LP cost being amortized is
   itself down in the timer noise — the floor drops to 2x there (the
   full run is where the bound is really held). *)
let cold_speedup_floor ~scale =
  match scale with Some "tiny" -> 2.0 | _ -> 5.0

let get_num j path = J.to_float (J.path path j)

(* [check name ~better j_cur j_base path]: compare one metric; [`Higher]
   means larger is better (throughput), [`Lower] means smaller is better
   (latency).  A missing metric on either side is itself a failure — the
   gate must not silently pass because a key was renamed. *)
let check name ~better cur base path =
  match (get_num cur path, get_num base path) with
  | Some c, Some b ->
      let bad =
        match better with
        | `Higher -> b > 0.0 && c < b /. tolerance
        | `Lower -> b > 0.0 && c > b *. tolerance
      in
      if bad then
        failf "%s regressed beyond %gx: current %.6g vs baseline %.6g" name
          tolerance c b
      else okf "%s: current %.6g vs baseline %.6g" name c b
  | None, _ -> failf "%s missing from current results" name
  | _, None -> failf "%s missing from baseline" name

(* Phase p50s are only gated when the baseline is big enough to be
   signal: sub-0.1ms phases on a noisy runner are coin flips. *)
let check_phase name cur base =
  let path = [ "phases"; name; "p50_ms" ] in
  match (get_num cur path, get_num base path) with
  | Some c, Some b when b >= 0.1 ->
      if c > b *. tolerance then
        failf "phase %s p50 regressed beyond %gx: %.4g ms vs %.4g ms" name
          tolerance c b
      else okf "phase %s p50: %.4g ms vs baseline %.4g ms" name c b
  | Some _, Some b ->
      okf "phase %s p50 below gating floor (baseline %.4g ms), skipped" name b
  | _ -> okf "phase %s absent on one side, skipped" name

let regression current_path baseline_path =
  let cur = J.of_file current_path in
  let all_baselines = J.of_file baseline_path in
  let experiment =
    match J.to_string (J.member "experiment" cur) with
    | Some e -> e
    | None -> failwith "current results carry no \"experiment\" field"
  in
  (* bench/baseline.json holds one entry per experiment. *)
  let base =
    match J.member experiment all_baselines with
    | Some b -> b
    | None -> failwith ("baseline has no entry for " ^ experiment)
  in
  (match experiment with
  | "perf" ->
      check "engine steps/sec" ~better:`Higher cur base
        [ "engine"; "steps_per_sec" ];
      check "ratio-sweep sequential time" ~better:`Lower cur base
        [ "ratio_sweep"; "sequential_sec" ];
      (match get_num cur [ "obs_overhead_pct" ] with
      | Some pct when pct < obs_overhead_budget_pct ->
          okf "obs overhead %.2f%% (budget %.0f%%)" pct
            obs_overhead_budget_pct
      | Some pct ->
          failf "obs overhead %.2f%% exceeds the %.0f%% budget" pct
            obs_overhead_budget_pct
      | None -> failf "obs_overhead_pct missing from current results");
      List.iter
        (fun p -> check_phase p cur base)
        [ "engine.exec"; "lp1.solve"; "lp.rounding" ];
      (* LP hot path.  Warm-vs-cold is a within-run ratio, so it is
         immune to runner speed: both entries ran on the same machine
         seconds apart.  The floor is the PR's acceptance criterion. *)
      (match
         ( get_num cur [ "bechamel_ns_per_run"; "suu lp1-simplex-seq-64x8" ],
           get_num cur [ "bechamel_ns_per_run"; "suu lp1-revised-warm-seq-64x8" ]
         )
       with
      | Some cold, Some warm when warm > 0.0 ->
          let floor =
            warm_speedup_floor ~scale:(J.to_string (J.path [ "scale" ] cur))
          in
          let speedup = cold /. warm in
          if speedup >= floor then
            okf "warm revised doubling sequence %.1fx faster than cold \
                 simplex (floor %gx)"
              speedup floor
          else
            failf
              "warm revised doubling sequence only %.2fx faster than cold \
               simplex (floor %gx)"
              speedup floor
      | _ ->
          failf "lp1 doubling-sequence bechamel entries missing from \
                 current results");
      (* Certified MWU must stay the cheap serve-path default. *)
      check "lp1 certified MWU ns/run" ~better:`Lower cur base
        [ "bechamel_ns_per_run"; "suu lp1-mwu-certified-64x8" ];
      (* Solver parity: switching the LP backend must not change
         SEM/OBL schedule quality beyond the band. *)
      (match J.member "solver_parity" cur with
      | Some (J.List rows) ->
          List.iter
            (fun row ->
              let policy =
                Option.value
                  (J.to_string (J.path [ "policy" ] row))
                  ~default:"?"
              in
              match get_num row [ "ratio" ] with
              | Some r
                when r >= 1.0 /. parity_tolerance && r <= parity_tolerance ->
                  okf "solver parity %s: mwu/simplex makespan ratio %.4g"
                    policy r
              | Some r ->
                  failf
                    "solver parity %s: mwu/simplex makespan ratio %.4g \
                     outside [%.3g, %.3g]"
                    policy r
                    (1.0 /. parity_tolerance)
                    parity_tolerance
              | None -> failf "solver parity %s: ratio missing" policy)
            rows
      | _ -> failf "solver_parity missing from current results")
  | "serve" ->
      check "serve throughput" ~better:`Higher cur base [ "throughput_rps" ];
      check "serve p50 latency" ~better:`Lower cur base [ "latency_ms"; "p50" ];
      (* The plan cache must actually hit on the standard sweep: the
         request mix recurs, so anything below the floor means the
         keying or eviction regressed (the pre-fix thrash measured
         ~11%). *)
      (match get_num cur [ "plan_cache_hit_rate" ] with
      | Some r when r >= hit_rate_floor ->
          okf "plan-cache hit rate %.3f (floor %.2f)" r hit_rate_floor
      | Some r ->
          failf "plan-cache hit rate %.3f below the %.2f floor" r
            hit_rate_floor
      | None -> failf "plan_cache_hit_rate missing from current results");
      (* The serve mix includes LP-free policies (lzf/backfill), which
         must register as cache bypasses rather than silently diluting
         the hit rate.  Zero bypasses means the accounting regressed.
         Older baselines predate the counter, so only the current run
         is gated. *)
      (match get_num cur [ "plan_cache_bypass" ] with
      | Some b when b > 0.0 ->
          okf "plan cache bypassed %.0f times by LP-free policies" b
      | Some _ ->
          failf "serve mix includes LP-free policies but plan_cache_bypass \
                 is 0 (bypass accounting broken?)"
      | None -> failf "plan_cache_bypass missing from current results");
      List.iter
        (fun p -> check_phase p cur base)
        [ "server.request"; "server.execute"; "server.queue_wait" ];
      (* Connection scale is a correctness gate, not a tolerance band:
         the event loop must hold hundreds of concurrent pipelined
         connections with zero drops and byte-exact replies.  A missing
         section means the pass never ran, which would make the claim
         vacuous. *)
      (match get_num cur [ "connection_scale"; "connections" ] with
      | Some c when c >= connection_floor ->
          okf "connection-scale ran %.0f concurrent connections (floor %.0f)"
            c connection_floor
      | Some c ->
          failf "connection-scale ran only %.0f connections (floor %.0f)" c
            connection_floor
      | None -> failf "connection_scale missing from serve results");
      (match get_num cur [ "connection_scale"; "dropped" ] with
      | Some 0.0 -> okf "connection-scale dropped no connections"
      | Some d -> failf "connection-scale dropped %.0f connections" d
      | None -> failf "connection_scale.dropped missing from serve results");
      (match get_num cur [ "connection_scale"; "mismatched" ] with
      | Some 0.0 -> okf "connection-scale replies all byte-exact"
      | Some m ->
          failf "connection-scale saw %.0f connections with mismatched \
                 replies" m
      | None -> failf "connection_scale.mismatched missing from serve results");
      (* Open-loop workload replay (serve --workload): correctness
         gates only — completion, determinism and the presence of the
         per-arrival latency quantiles.  The section is null when the
         bench ran closed-loop only (e.g. older baselines), which is
         not a failure; but a present section must be sound. *)
      (match J.path [ "workload" ] cur with
      | None | Some J.Null -> okf "no open-loop workload section (closed-loop run)"
      | Some _ ->
          (match
             (get_num cur [ "workload"; "arrivals" ],
              get_num cur [ "workload"; "completed" ])
           with
          | Some a, Some c when a > 0.0 && c >= a ->
              okf "workload replay completed %.0f/%.0f arrivals" c a
          | Some a, Some c ->
              failf "workload replay completed only %.0f of %.0f arrivals" c a
          | _ ->
              failf "workload arrivals/completed missing from serve results");
          (match J.to_bool (J.path [ "workload"; "deterministic_replay" ] cur)
           with
          | Some true -> okf "workload replay byte-identical across runs"
          | Some false ->
              failf "workload replay responses differ across two runs at the \
                     same seed"
          | None ->
              failf "workload.deterministic_replay missing from serve results");
          List.iter
            (fun path ->
              match get_num cur path with
              | Some v when v >= 0.0 -> ()
              | _ ->
                  failf "workload metric %s missing from serve results"
                    (String.concat "." path))
            [
              [ "workload"; "queueing_ms"; "p50" ];
              [ "workload"; "e2e_ms"; "p50" ];
              [ "workload"; "e2e_ms"; "p95" ];
            ])
  | "chaos" ->
      (* Fault tolerance is a correctness gate, not a tolerance band:
         with retries enabled, anything short of 100% completion means
         a request was lost — retry logic broken, not a slow runner. *)
      (match get_num cur [ "success_rate" ] with
      | Some r when r >= 1.0 -> okf "chaos success rate %.6g (must be 1)" r
      | Some r ->
          failf "chaos success rate %.6g: requests lost despite retries" r
      | None -> failf "success_rate missing from current results");
      (* The run must actually have been chaotic — a silently disarmed
         injector would make the 100% claim vacuous. *)
      (match get_num cur [ "injected"; "total" ] with
      | Some t when t > 0.0 -> okf "chaos injected %.0f faults" t
      | Some _ -> failf "chaos run injected no faults (injector disarmed?)"
      | None -> failf "injected.total missing from current results");
      (match get_num cur [ "client_retries" ] with
      | Some r when r > 0.0 -> okf "clients retried %.0f times" r
      | Some _ -> failf "chaos run saw no client retries (faults inert?)"
      | None -> failf "client_retries missing from current results");
      check "chaos throughput" ~better:`Higher cur base [ "throughput_rps" ];
      (* Scale-out failover rides the same correctness bar: the router
         section comes from `bench chaos --router` (a shard killed
         mid-load behind the router) and must show a clean mark-down
         plus zero lost requests.  A null section means the scenario
         never ran, which would make the claim vacuous. *)
      (match get_num cur [ "router"; "success_rate" ] with
      | Some r when r >= 1.0 ->
          okf "router chaos success rate %.6g (must be 1)" r
      | Some r ->
          failf "router chaos success rate %.6g: requests lost during \
                 shard kill" r
      | None ->
          failf "router section missing from chaos results (run bench \
                 chaos with --router)");
      (match get_num cur [ "router"; "mark_down" ] with
      | Some m when m >= 1.0 ->
          okf "router marked the killed shard down (%.0f mark-down)" m
      | Some _ -> failf "router never marked the killed shard down"
      | None -> failf "router.mark_down missing from chaos results");
      (match get_num cur [ "router"; "live_shards_after" ] with
      | Some l when l >= 1.0 ->
          okf "router kept %.0f live shard(s) after the kill" l
      | Some _ -> failf "router reports no live shards after the kill"
      | None -> failf "router.live_shards_after missing from chaos results")
  | "shard" ->
      (* Byte identity is the sharding contract: a routed response must
         be indistinguishable from the single server's, for every
         request type over every sweep instance. *)
      (match J.to_bool (J.path [ "byte_identical" ] cur) with
      | Some true -> okf "shard routed responses byte-identical to direct"
      | Some false -> failf "shard routed responses differ from direct server"
      | None -> failf "byte_identical missing from current results");
      (match get_num cur [ "errors" ] with
      | Some 0.0 -> okf "shard bench saw no error responses"
      | Some e -> failf "shard bench saw %.0f error responses" e
      | None -> failf "errors missing from current results");
      (match get_num cur [ "routed_requests" ] with
      | Some r when r > 0.0 -> okf "router routed %.0f requests" r
      | Some _ -> failf "router routed nothing (load bypassed it?)"
      | None -> failf "routed_requests missing from current results");
      (* Proxy overhead is a within-run ratio, immune to runner speed.
         Full scale holds the 15%% acceptance bound; tiny requests are
         cheap enough that the hop looms larger, so the floor is
         looser there. *)
      let floor =
        match J.to_string (J.member "scale" cur) with
        | Some "tiny" -> 0.6
        | _ -> 0.85
      in
      (match get_num cur [ "routed_vs_direct" ] with
      | Some r when r >= floor ->
          okf "routed-1 throughput at %.1f%% of direct (floor %.0f%%)"
            (100.0 *. r) (100.0 *. floor)
      | Some r ->
          failf "routed-1 throughput only %.1f%% of direct (floor %.0f%%)"
            (100.0 *. r) (100.0 *. floor)
      | None -> failf "routed_vs_direct missing from current results");
      check "shard direct throughput" ~better:`Higher cur base
        [ "direct_rps" ];
      check "shard routed-2 throughput" ~better:`Higher cur base
        [ "routed_2shard_rps" ]
  | "replay" ->
      (* The store's value is correctness-gated, not tolerance-gated:
         memoized, warm and kill-resumed sweeps must be byte-identical
         to the direct computation, the warm pass must actually be
         served from the store, and recovery must have truncated the
         injected torn tail. *)
      let check_true name path =
        match J.to_bool (J.path path cur) with
        | Some true -> okf "replay %s" name
        | Some false -> failf "replay %s is false" name
        | None -> failf "replay %s missing from current results" name
      in
      check_true "outputs identical (direct=cold=warm)" [ "identical" ];
      check_true "kill-resume output identical" [ "resumed_identical" ];
      (match get_num cur [ "warm_served" ] with
      | Some s when s > 0.0 -> okf "replay warm pass served %.0f reps" s
      | Some _ -> failf "replay warm pass served nothing from the store"
      | None -> failf "warm_served missing from current results");
      (match get_num cur [ "warm_computed" ] with
      | Some 0.0 -> okf "replay warm pass recomputed nothing"
      | Some c -> failf "replay warm pass recomputed %.0f reps" c
      | None -> failf "warm_computed missing from current results");
      (match get_num cur [ "torn_tail_truncated" ] with
      | Some t when t > 0.0 -> okf "replay recovery truncated the torn tail"
      | Some _ -> failf "replay recovery never truncated the torn tail"
      | None -> failf "torn_tail_truncated missing from current results");
      (match get_num cur [ "store"; "records" ] with
      | Some r when r > 0.0 -> okf "replay store committed %.0f records" r
      | Some _ -> failf "replay store committed no records"
      | None -> failf "store.records missing from current results");
      check "replay cold sweep time" ~better:`Lower cur base [ "cold_sec" ]
  | "table1" ->
      (* Online-policy harness (lib/sched).  Mostly within-run
         correctness gates: the approximation bound and the cold-path
         speedup are properties of the schedule and the policy shape,
         not of the runner's clock speed. *)
      let scale = J.to_string (J.member "scale" cur) in
      (* Coverage: the ratio table must span both synthetic and
         trace-driven (SWF) instances, or the Table-1 claim is partial. *)
      (match (get_num cur [ "synthetic_rows" ], get_num cur [ "swf_rows" ]) with
      | Some s, Some w when s >= 1.0 && w >= 1.0 ->
          okf "table1 covered %.0f synthetic and %.0f SWF instances" s w
      | Some s, Some w ->
          failf "table1 coverage too thin: %.0f synthetic, %.0f SWF rows \
                 (need >= 1 of each)" s w
      | _ -> failf "synthetic_rows/swf_rows missing from current results");
      (* Single-machine LZF: with m=1 the work lower bound is tight, so
         the measured makespan ratio must respect the paper's 0.8531
         guarantee (ratio <= 1/0.8531). *)
      let bound =
        Option.value (get_num cur [ "lzf_bound" ]) ~default:(1.0 /. 0.8531)
      in
      (match J.member "single_machine_lzf" cur with
      | Some (J.List (_ :: _ as rows)) ->
          List.iter
            (fun row ->
              let inst =
                Option.value
                  (J.to_string (J.member "instance" row))
                  ~default:"?"
              in
              match get_num row [ "ratio" ] with
              | Some r when r <= bound ->
                  okf "single-machine lzf %s: ratio %.4g within bound %.4g"
                    inst r bound
              | Some r ->
                  failf "single-machine lzf %s: ratio %.4g exceeds the \
                         1/0.8531 bound %.4g" inst r bound
              | None -> failf "single-machine lzf %s: ratio missing" inst)
            rows
      | _ -> failf "single_machine_lzf rows missing from current results");
      (* Cold-path speedup: LZF never touches the LP pipeline, so
         construction + first (uncached) execution must beat SUU-I-SEM's
         by the floor, on every instance large enough to measure. *)
      (match get_num cur [ "lzf_vs_sem_speedup_min" ] with
      | Some s ->
          let floor = cold_speedup_floor ~scale in
          if s >= floor then
            okf "lzf cold steps/sec >= %.1fx suu-i-sem on every instance \
                 (floor %gx)" s floor
          else
            failf "lzf cold steps/sec only %.2fx suu-i-sem on the worst \
                   instance (floor %gx)" s floor
      | None ->
          failf "lzf_vs_sem_speedup_min missing from current results (no \
                 instance ran both policies?)");
      (* Per-policy aggregates: the new policies and the LP reference
         must all be present with sane means, both here and in the
         baseline entry (so `check` below compares like with like). *)
      let find_policy j name =
        match J.member "policies" j with
        | Some (J.List rows) ->
            List.find_opt
              (fun row -> J.to_string (J.member "policy" row) = Some name)
              rows
        | _ -> None
      in
      List.iter
        (fun name ->
          match find_policy cur name with
          | Some row ->
              (match
                 (get_num row [ "mean_ratio" ],
                  get_num row [ "mean_steps_per_sec" ])
               with
              | Some r, Some s
                when r > 0.0 && s > 0.0 && Float.is_finite r
                     && Float.is_finite s ->
                  okf "policy %s: mean ratio %.4g, %.4g steps/sec" name r s
              | _ ->
                  failf "policy %s aggregate has missing or non-finite \
                         means" name)
          | None -> failf "policy %s missing from table1 aggregates" name)
        [ "lzf"; "backfill"; "suu-i-sem" ];
      (* One jitter-banded throughput comparison against the committed
         baseline, to catch an order-of-magnitude LZF hot-path
         regression that the within-run ratio would forgive (e.g. both
         policies slowing down together). *)
      (match (find_policy cur "lzf", find_policy base "lzf") with
      | Some c, Some b ->
          check "lzf mean steps/sec" ~better:`Higher c b
            [ "mean_steps_per_sec" ]
      | _ -> failf "lzf aggregate missing from current or baseline results")
  | e -> failwith ("unknown experiment kind " ^ e))

(* --- trace-coverage mode --- *)

let coverage_threshold = 0.95

let trace_coverage path =
  let ic = open_in path in
  let spans = ref [] in
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       if String.trim line <> "" then
         match J.of_string line with
         | j -> spans := j :: !spans
         | exception J.Parse_error msg ->
             failf "trace line %d is not valid JSON: %s" !lineno msg
     done
   with End_of_file -> close_in ic);
  let spans = List.rev !spans in
  okf "trace has %d spans, all valid JSON" (List.length spans);
  let num k j = J.to_float (J.member k j) in
  let str k j = J.to_string (J.member k j) in
  let roots =
    List.filter
      (fun j ->
        str "name" j = Some "server.request"
        && J.to_string (J.path [ "attrs"; "type" ] j) = Some "simulate")
      spans
  in
  if roots = [] then failf "trace contains no simulate server.request span"
  else begin
    let coverage root =
      match (num "id" root, num "dur_ns" root) with
      | Some id, Some dur when dur > 0.0 ->
          let child_sum =
            List.fold_left
              (fun acc j ->
                if num "parent" j = Some id then
                  acc +. Option.value (num "dur_ns" j) ~default:0.0
                else acc)
              0.0 spans
          in
          child_sum /. dur
      | _ -> 0.0
    in
    let best =
      List.fold_left (fun acc r -> Float.max acc (coverage r)) 0.0 roots
    in
    if best >= coverage_threshold then
      okf "simulate request phase coverage %.1f%% (threshold %.0f%%)"
        (100.0 *. best)
        (100.0 *. coverage_threshold)
    else
      failf
        "no simulate request's child spans cover %.0f%% of its wall time \
         (best %.1f%%)"
        (100.0 *. coverage_threshold)
        (100.0 *. best)
  end

let () =
  (match Array.to_list Sys.argv with
  | [ _; "regression"; current; baseline ] -> regression current baseline
  | [ _; "trace-coverage"; trace ] -> trace_coverage trace
  | _ ->
      prerr_endline
        "usage: gate.exe regression CURRENT.json BASELINE.json\n\
        \       gate.exe trace-coverage TRACE.jsonl";
      exit 2);
  match !failures with
  | [] -> print_endline "gate: PASS"
  | fs ->
      List.iter (fun f -> Printf.eprintf "FAIL: %s\n" f) (List.rev fs);
      Printf.eprintf "gate: %d failure(s)\n" (List.length fs);
      exit 1
