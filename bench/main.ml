(* Benchmark harness regenerating the paper's evaluation.

   The paper (SPAA 2008) is theory-only: its entire evaluation is Table 1,
   a table of approximation guarantees for three precedence classes.  This
   harness regenerates that table *empirically*: for each row it measures
   expected-makespan ratios against certified lower bounds, across sizes,
   and fits the growth of those ratios against the claimed asymptotics
   (log n for the previously-best algorithms, log log for this paper's).
   Experiments E4-E7 and A1/A2 probe the supporting claims (exact optima,
   Appendix C, the competitive argument, Theorem 7's random delays, the
   Lemma-2/6 rounding constants, the LP backends); `perf` runs bechamel
   micro-benchmarks of every substrate.

   Usage:
     dune exec bench/main.exe            # everything
     dune exec bench/main.exe e1 e4 perf # selected experiments
   Experiment ids: e1 e2 e3 e4 e5 e6 e7 a1 a2 perf (see DESIGN.md). *)

module W = Suu_workload.Workload
module Table = Suu_util.Table
module Summary = Suu_stats.Summary
module Fit = Suu_stats.Fit
module Runner = Suu_sim.Runner
module Instance = Suu_core.Instance
module LB = Suu_core.Lower_bound

let section title =
  Printf.printf "\n==== %s ====\n\n%!" title

let note fmt = Printf.printf (fmt ^^ "\n%!")

(* Durable memoization: with SUU_STORE set to a directory, every ratio
   sweep routes through {!Suu_store.Memo} — committed replication
   batches are served from the store and only missing ones are
   computed (and committed), so re-running the harness after a crash
   (or with more experiments) is incremental.  Results are bit-identical
   either way: replication [k]'s seeding depends only on [(seed, k)].
   The perf experiment keeps calling [Runner.makespans] directly — its
   point is to time the computation, not to skip it. *)
let store =
  lazy
    (match Sys.getenv_opt "SUU_STORE" with
    | Some dir when dir <> "" ->
        Some (Suu_store.Result_store.open_store dir)
    | _ -> None)

let makespans ?cap ?jobs inst policy ~seed ~reps =
  match Lazy.force store with
  | None -> Runner.makespans ?cap ?jobs inst policy ~seed ~reps
  | Some st ->
      Suu_store.Memo.makespans ~store:st ?cap ?jobs inst policy ~seed ~reps

let mean_ratio inst policy ~bound ~seed ~reps =
  let xs = makespans inst policy ~seed ~reps in
  Array.fold_left ( +. ) 0.0 xs
  /. float_of_int reps
  /. Float.max bound 1e-9

(* ------------------------------------------------------------------ *)
(* E1 — Table 1, row "Independent":
   O(log n) (Lin-Rajaraman / SUU-I-OBL) vs O(log log min(m,n))
   (SUU-I-SEM). *)

let e1 () =
  section
    "E1: Table 1 row 'Independent' - ratio to lower bound vs n \
     (m = 8, 10 traces/point)";
  let m = 8 and seed = 101 and reps = 10 in
  let sizes = [| 8; 16; 32; 64; 128; 256 |] in
  let hazards =
    [ W.Near_one; W.Uniform { lo = 0.2; hi = 0.95 };
      W.Specialists { capable = 3 } ]
  in
  let sem_by_hazard = ref [] in
  let obl_by_hazard = ref [] in
  List.iter
    (fun hazard ->
      let table =
        Table.create
          ~header:
            [ "n"; "lower bd"; "SUU-I-SEM"; "SUU-I-OBL"; "grd-obl";
              "greedy"; "rrobin" ]
      in
      let sem_r = Array.make (Array.length sizes) 0.0 in
      let obl_r = Array.make (Array.length sizes) 0.0 in
      Array.iteri
        (fun k n ->
          let inst = W.independent hazard ~n ~m ~seed:(seed + n) in
          let bound = LB.combined inst in
          let ratio p = mean_ratio inst p ~bound ~seed ~reps in
          sem_r.(k) <- ratio (Suu_core.Suu_i_sem.policy inst);
          obl_r.(k) <- ratio (Suu_core.Suu_i_obl.policy inst);
          let gobl = ratio (Suu_core.Baselines.greedy_oblivious inst) in
          let greedy = ratio (Suu_core.Baselines.greedy_completion inst) in
          let rr = ratio (Suu_core.Baselines.round_robin inst) in
          Table.add_float_row table (string_of_int n)
            [ bound; sem_r.(k); obl_r.(k); gobl; greedy; rr ])
        sizes;
      Printf.printf "hazard: %s\n" (W.hazard_name hazard);
      Table.print table;
      print_newline ();
      sem_by_hazard := (hazard, sem_r) :: !sem_by_hazard;
      obl_by_hazard := (hazard, obl_r) :: !obl_by_hazard)
    hazards;
  (* Growth-shape check on the separating hazard (near-one): the paper
     claims SEM grows like loglog n and OBL like log n. *)
  let xs = Array.map float_of_int sizes in
  let sem = List.assoc W.Near_one !sem_by_hazard in
  let obl = List.assoc W.Near_one !obl_by_hazard in
  let fit f ys = (Fit.fit_against ~f ~xs ~ys).Fit.slope in
  note "growth fits on near-one hazard (slope per unit of growth fn):";
  note "  SUU-I-SEM: %.3f per log2 n, %.3f per loglog2 n" (fit Fit.log2 sem)
    (fit Fit.loglog2 sem);
  note "  SUU-I-OBL: %.3f per log2 n, %.3f per loglog2 n" (fit Fit.log2 obl)
    (fit Fit.loglog2 obl);
  note
    "expected shape: OBL's log2-slope clearly positive; SEM's much \
     smaller (Table 1: O(log n) -> O(log log min(m,n))).";
  (* Large-n extension: the MWU backend replaces the dense simplex so the
     sweep reaches n = 1024 (ablation A2 justifies the swap). *)
  let mwu = Suu_core.Solver_choice.Mwu 0.1 in
  let table =
    Table.create
      ~header:[ "n"; "lower bd"; "SUU-I-SEM"; "SUU-I-OBL"; "greedy" ]
  in
  let big = [| 256; 512; 1024 |] in
  let sem_big = Array.make (Array.length big) 0.0 in
  let obl_big = Array.make (Array.length big) 0.0 in
  Array.iteri
    (fun k n ->
      let inst = W.independent W.Near_one ~n ~m:16 ~seed:(seed + n) in
      let bound = LB.combined ~solver:mwu inst in
      let ratio p = mean_ratio inst p ~bound ~seed ~reps:3 in
      sem_big.(k) <- ratio (Suu_core.Suu_i_sem.policy ~solver:mwu inst);
      obl_big.(k) <- ratio (Suu_core.Suu_i_obl.policy ~solver:mwu inst);
      let greedy = ratio (Suu_core.Baselines.greedy_completion inst) in
      Table.add_float_row table (string_of_int n)
        [ bound; sem_big.(k); obl_big.(k); greedy ])
    big;
  note "large-n extension (near-one hazard, m = 16, MWU LP backend):";
  Table.print table;
  let xs2 = Array.append xs (Array.map float_of_int big) in
  let sem2 = Array.append sem sem_big in
  let obl2 = Array.append obl obl_big in
  let fit2 f ys = (Fit.fit_against ~f ~xs:xs2 ~ys).Fit.slope in
  note "growth fits over the full 8..1024 sweep:";
  note "  SUU-I-SEM: %.3f per log2 n" (fit2 Fit.log2 sem2);
  note "  SUU-I-OBL: %.3f per log2 n" (fit2 Fit.log2 obl2)

(* ------------------------------------------------------------------ *)
(* E1m — the machine-count side of Table 1's min(m, n): ratios vs m. *)

let e1m () =
  section
    "E1m: Table 1 row 'Independent' - ratio vs m (near-one hazard, \
     n = 64, 10 traces/point)";
  let n = 64 and seed = 131 and reps = 10 in
  let table =
    Table.create
      ~header:[ "m"; "lower bd"; "SUU-I-SEM"; "SUU-I-OBL"; "greedy" ]
  in
  List.iter
    (fun m ->
      let inst = W.independent W.Near_one ~n ~m ~seed:(seed + m) in
      let bound = LB.combined inst in
      let ratio p = mean_ratio inst p ~bound ~seed ~reps in
      Table.add_float_row table (string_of_int m)
        [ bound;
          ratio (Suu_core.Suu_i_sem.policy inst);
          ratio (Suu_core.Suu_i_obl.policy inst);
          ratio (Suu_core.Baselines.greedy_completion inst) ])
    [ 2; 4; 8; 16; 32 ];
  Table.print table;
  note
    "\nexpected shape: SEM's ratio stays flat in m as well - the bound \
     is loglog of min(m, n), so varying either argument below the other \
     changes only the loglog; OBL's log n factor is m-independent, so \
     both curves are flat here and the SEM < OBL gap persists."

(* ------------------------------------------------------------------ *)
(* E2 — Table 1, row "Disjoint Chains". *)

let e2 () =
  section
    "E2: Table 1 row 'Disjoint Chains' - SUU-C ratio to lower bound \
     (m = 4, 5 traces/point)";
  let m = 4 and seed = 202 and reps = 5 in
  let shapes = [| (8, 6); (12, 8); (20, 8); (24, 10) |] in
  let table =
    Table.create
      ~header:
        [ "n"; "chains"; "lower bd"; "SUU-C"; "greedy"; "serial";
          "max congestion" ]
  in
  Array.iter
    (fun (z, len) ->
      let n = z * len in
      let inst =
        W.chains (W.Uniform { lo = 0.2; hi = 0.95 }) ~z ~length:len ~m
          ~seed:(seed + n)
      in
      let bound = LB.combined inst in
      let stats = Suu_core.Suu_c.new_stats () in
      let suu_c = Suu_core.Suu_c.policy ~stats inst in
      let rc = mean_ratio inst suu_c ~bound ~seed ~reps in
      let rg =
        mean_ratio inst
          (Suu_core.Baselines.greedy_completion inst)
          ~bound ~seed ~reps
      in
      let rs =
        mean_ratio inst (Suu_core.Baselines.serial inst) ~bound ~seed ~reps
      in
      Table.add_float_row table (string_of_int n)
        [ float_of_int z; bound; rc; rg; rs;
          float_of_int stats.Suu_core.Suu_c.max_congestion ])
    shapes;
  Table.print table;
  note
    "\nexpected shape: SUU-C's ratio stays within a slowly-growing band \
     (O(log(n+m) loglog min(m,n)) with substantial constants from the \
     6x rounding and the {0..H} delays); congestion stays near the \
     O(log(n+m)/loglog(n+m)) bound of Theorem 7."

(* ------------------------------------------------------------------ *)
(* E3 — Table 1, row "Directed Forests". *)

let e3 () =
  section
    "E3: Table 1 row 'Directed Forests' - SUU-T ratio to lower bound \
     (m = 4, 5 traces/point)";
  let m = 4 and seed = 303 and reps = 5 in
  let sizes = [| 32; 64; 128; 192 |] in
  let table =
    Table.create
      ~header:[ "n"; "blocks"; "lower bd"; "SUU-T"; "greedy"; "rrobin" ]
  in
  Array.iter
    (fun n ->
      let inst =
        W.forest (W.Uniform { lo = 0.2; hi = 0.95 }) ~n ~trees:(max 1 (n / 8))
          ~orientation:`Mixed ~m ~seed:(seed + n)
      in
      let blocks = Array.length (Suu_core.Suu_t.blocks inst) in
      let bound = LB.combined inst in
      let rt =
        mean_ratio inst (Suu_core.Suu_t.policy inst) ~bound ~seed ~reps
      in
      let rg =
        mean_ratio inst
          (Suu_core.Baselines.greedy_completion inst)
          ~bound ~seed ~reps
      in
      let rr =
        mean_ratio inst (Suu_core.Baselines.round_robin inst) ~bound ~seed
          ~reps
      in
      Table.add_float_row table (string_of_int n)
        [ float_of_int blocks; bound; rt; rg; rr ])
    sizes;
  Table.print table;
  note
    "\nexpected shape: block count <= floor(log2 n) + 1 (heavy-path \
     bound); SUU-T's ratio tracks blocks x SUU-C's ratio (Theorem 12)."

(* ------------------------------------------------------------------ *)
(* E4 — measured ratios against the exact optimum on tiny instances. *)

let e4 () =
  section "E4: tiny instances vs exact E[T_OPT] (DP; 1000 traces/point)";
  let reps = 1000 and seed = 404 in
  let cases = [ (3, 2); (4, 2); (4, 3); (5, 2) ] in
  let table =
    Table.create
      ~header:
        [ "n x m"; "E[T_OPT]"; "DP policy"; "SUU-I-SEM"; "SUU-I-OBL";
          "greedy" ]
  in
  List.iter
    (fun (n, m) ->
      let inst =
        W.independent (W.Uniform { lo = 0.2; hi = 0.9 }) ~n ~m
          ~seed:(seed + (10 * n) + m)
      in
      let opt = Suu_core.Exact_dp.expected_makespan inst in
      let ratio p = mean_ratio inst p ~bound:opt ~seed ~reps in
      Table.add_float_row table (Printf.sprintf "%dx%d" n m)
        [ opt;
          ratio (Suu_core.Exact_dp.policy inst);
          ratio (Suu_core.Suu_i_sem.policy inst);
          ratio (Suu_core.Suu_i_obl.policy inst);
          ratio (Suu_core.Baselines.greedy_completion inst) ])
    cases;
  Table.print table;
  (* Chain-structured exact optima (Malewicz's bounded-width regime via
     the per-chain-position DP) validate SUU-C against true E[T_OPT]. *)
  let ctable =
    Table.create
      ~header:[ "z x len x m"; "E[T_OPT]"; "SUU-C"; "greedy"; "serial" ]
  in
  List.iter
    (fun (z, len, m) ->
      let inst =
        W.chains (W.Uniform { lo = 0.2; hi = 0.9 }) ~z ~length:len ~m
          ~seed:(seed + (100 * z) + len)
      in
      let opt = Suu_core.Exact_dp.chains_expected_makespan inst in
      let ratio p = mean_ratio inst p ~bound:opt ~seed ~reps:400 in
      Table.add_float_row ctable
        (Printf.sprintf "%dx%dx%d" z len m)
        [ opt;
          ratio (Suu_core.Suu_c.policy inst);
          ratio (Suu_core.Baselines.greedy_completion inst);
          ratio (Suu_core.Baselines.serial inst) ])
    [ (2, 4, 2); (3, 5, 2); (2, 8, 3) ];
  note "chains against the exact optimum (chain-position DP; 400 traces):";
  Table.print ctable;
  note
    "\nexpected shape: DP-policy ratio = 1.0 (sanity: the simulator \
     reproduces the computed optimum); all ratios small constants, \
     consistent with the O(.) guarantees at trivial sizes; SUU-C's \
     true ratio at small sizes is dominated by its 6x rounding and \
     {0..H} delay constants."

(* ------------------------------------------------------------------ *)
(* E5 — Appendix C: STC-I on stochastic job lengths. *)

let e5 () =
  section "E5: Appendix C - STC-I ratio to the offline LL bound (m = 4)";
  let m = 4 and reps = 30 in
  let sizes = [| 8; 16; 32; 48 |] in
  let table =
    Table.create
      ~header:
        [ "n"; "K"; "E[makespan]"; "E[offline]"; "ratio";
          "STC-R ratio" ]
  in
  Array.iter
    (fun n ->
      let rng = Suu_prng.Rng.create ~seed:(505 + n) in
      let rates =
        Array.init n (fun _ -> Suu_prng.Rng.range rng ~lo:0.3 ~hi:3.0)
      in
      let speeds =
        Array.init m (fun _ ->
            Array.init n (fun _ -> Suu_prng.Rng.range rng ~lo:0.1 ~hi:2.0))
      in
      let inst = Suu_stoch.Stoch_instance.make ~rates speeds in
      let runs = Suu_stoch.Stc_i.runs inst ~seed:(606 + n) ~reps in
      let mk =
        Summary.mean (Array.map (fun r -> r.Suu_stoch.Stc_i.makespan) runs)
      in
      let off =
        Summary.mean (Array.map (fun r -> r.Suu_stoch.Stc_i.offline) runs)
      in
      let runs_r = Suu_stoch.Stc_r.runs inst ~seed:(606 + n) ~reps in
      let mk_r =
        Summary.mean (Array.map (fun r -> r.Suu_stoch.Stc_r.makespan) runs_r)
      in
      let off_r =
        Summary.mean (Array.map (fun r -> r.Suu_stoch.Stc_r.offline) runs_r)
      in
      Table.add_float_row table (string_of_int n)
        [ float_of_int (Suu_stoch.Stc_i.rounds inst); mk; off; mk /. off;
          mk_r /. off_r ])
    sizes;
  Table.print table;
  note
    "\nexpected shape: both ratios small, near-flat constants as n \
     grows (Theorem 13: O(log log n)); STC-R pays a little more since \
     restarts are weaker than preemption and each round uses the \
     2-approximate LST schedule."

(* ------------------------------------------------------------------ *)
(* E6 — the competitive claim: deterministic adversarial thresholds. *)

(* Offline fractional bound: the minimum load assignment covering each
   job j's clipped threshold w_j (the LP a clairvoyant scheduler must
   still satisfy). *)
let offline_bound inst w =
  let m = Instance.m inst and n = Instance.n inst in
  let p = Suu_lp.Problem.create ~name:"offline" () in
  let t = Suu_lp.Problem.add_var ~obj:1.0 p in
  let x = Array.init m (fun _ -> Array.init n (fun _ -> Suu_lp.Problem.add_var p)) in
  for j = 0 to n - 1 do
    let terms =
      List.init m (fun i ->
          (x.(i).(j), Instance.clipped_log_failure inst ~target:w.(j) i j))
    in
    Suu_lp.Problem.add_constraint p terms Suu_lp.Problem.Ge w.(j)
  done;
  for i = 0 to m - 1 do
    Suu_lp.Problem.add_constraint p
      ((t, -1.0) :: List.init n (fun j -> (x.(i).(j), 1.0)))
      Suu_lp.Problem.Le 0.0
  done;
  fst (Suu_lp.Simplex.solve_exn p)

let e6 () =
  section
    "E6: competitive analysis - adversarial thresholds in [1, pmax] \
     (n = 32, m = 8, deterministic traces)";
  let n = 32 and m = 8 in
  let inst =
    W.independent (W.Uniform { lo = 0.3; hi = 0.9 }) ~n ~m ~seed:707
  in
  let spreads = [| 2.0; 8.0; 32.0; 128.0 |] in
  let table =
    Table.create
      ~header:[ "pmax/pmin"; "offline LB"; "SUU-I-SEM"; "SUU-I-OBL" ]
  in
  Array.iter
    (fun spread ->
      (* log-spaced thresholds across jobs: the adversary mixes cheap and
         expensive jobs. *)
      let w =
        Array.init n (fun j ->
            Float.pow spread (float_of_int j /. float_of_int (n - 1)))
      in
      let trace = Suu_sim.Trace.of_thresholds w in
      let off = offline_bound inst w in
      let run p =
        float_of_int
          (Suu_sim.Engine.makespan inst p ~trace
             ~rng:(Suu_prng.Rng.create ~seed:1))
        /. off
      in
      Table.add_float_row table (Table.fmt_g spread)
        [ off;
          run (Suu_core.Suu_i_sem.policy inst);
          run (Suu_core.Suu_i_obl.policy inst) ])
    spreads;
  Table.print table;
  note
    "\nexpected shape: SEM's ratio grows like log(pmax/pmin) (the \
     doubling rounds pay one near-optimal pass per doubling); OBL pays \
     a pass per *unit* of pmax, so its ratio grows linearly in pmax \
     and separates sharply at large spreads.";
  note
    "(Section 'Our results': the doubling schedule is \
     O(log(pmax/pmin))-competitive for deterministic adversarial \
     processing times.)"

(* ------------------------------------------------------------------ *)
(* E7 — Theorem 7 ablation: random delays vs none. *)

let e7 () =
  section
    "E7: Theorem 7 ablation - pseudoschedule congestion with and \
     without random delays (lockstep chains, n = 192, m = 8)";
  (* Adversarial lockstep structure: 48 identical chains of 4 stages;
     stage k runs well only on machine k.  Without delays every chain
     requests the same machine in the same superstep.  (The chain count
     keeps t_LP2 large enough that the 6x-rounded job lengths stay below
     gamma - otherwise every job is "long" and the superstep machinery
     never engages.) *)
  let z = 48 and len = 4 and m = 8 in
  let n = z * len in
  let q =
    Array.init m (fun i ->
        Array.init n (fun j ->
            let stage = j mod len in
            if i = stage then 0.5 else 0.995))
  in
  let edges = ref [] in
  for c = 0 to z - 1 do
    for k = 1 to len - 1 do
      edges := (((c * len) + k) - 1, (c * len) + k) :: !edges
    done
  done;
  let inst =
    Instance.make ~name:"lockstep-chains"
      ~dag:(Suu_dag.Dag.of_edges ~n !edges)
      q
  in
  let chains =
    match Suu_dag.Chains.of_dag (Instance.dag inst) with
    | Some c -> c
    | None -> assert false
  in
  let prep = Suu_core.Suu_c.prepare ~top_machines:2 inst ~chains in
  Printf.printf "gamma = %d, H = %d, long jobs = %d\n\n"
    prep.Suu_core.Suu_c.gamma prep.Suu_core.Suu_c.load
    (List.length prep.Suu_core.Suu_c.long_jobs);
  let bound = LB.combined inst in
  let table =
    Table.create
      ~header:
        [ "delays"; "max congestion"; "mean superstep len"; "E[T]";
          "ratio" ]
  in
  List.iter
    (fun (label, delays, granularity) ->
      let stats = Suu_core.Suu_c.new_stats () in
      let p =
        Suu_core.Suu_c.policy_of_prepared ~stats ~random_delays:delays
          ~delay_granularity:granularity inst prep
      in
      let xs = Runner.makespans inst p ~seed:809 ~reps:5 in
      let s = Summary.of_array xs in
      Table.add_float_row table label
        [ float_of_int stats.Suu_core.Suu_c.max_congestion;
          float_of_int stats.Suu_core.Suu_c.total_congestion
          /. float_of_int (max 1 stats.Suu_core.Suu_c.supersteps);
          s.Summary.mean; s.Summary.mean /. bound ])
    [ ("on", true, 1); ("on (coarse g=12)", true, 12); ("off", false, 1) ];
  Table.print table;
  note
    "\nexpected shape: without delays all chains start synchronized and \
     collide on the same best machines, inflating max congestion; \
     random delays in {0..H} flatten it toward the \
     O(log(n+m)/loglog(n+m)) bound.  (At these sizes the delays also \
     pay an additive H cost in makespan - the theorem trades a \
     worst-case multiplicative factor for it.)"

(* ------------------------------------------------------------------ *)
(* E8 — replication waste: the paper's Section 1 observes that ganging
   machines on one job fights unreliability but costs throughput; this
   measures where each policy's machine-steps actually go. *)

let e8 () =
  section
    "E8: machine-step breakdown - busy / wasted / idle \
     (volunteers hazard, n = 64, m = 8, 10 traces)";
  let inst =
    W.independent (W.Volunteers { reliable_fraction = 0.2 }) ~n:64 ~m:8
      ~seed:1212
  in
  let m = Instance.m inst in
  let reps = 10 in
  let table =
    Table.create
      ~header:[ "policy"; "E[T]"; "busy %"; "wasted %"; "idle %" ]
  in
  let measure label policy =
    let rngs = Suu_sim.Runner.rep_rngs ~seed:1213 ~reps in
    let totals = Array.make 4 0.0 in
    Array.iter
      (fun (trace_rng, policy_rng) ->
        let trace =
          Suu_sim.Trace.draw ~n:(Instance.n inst) trace_rng
        in
        let r = Suu_sim.Engine.run inst policy ~trace ~rng:policy_rng in
        let steps = float_of_int (m * r.Suu_sim.Engine.makespan) in
        totals.(0) <- totals.(0) +. float_of_int r.Suu_sim.Engine.makespan;
        totals.(1) <-
          totals.(1) +. (float_of_int r.Suu_sim.Engine.busy_steps /. steps);
        totals.(2) <-
          totals.(2)
          +. (float_of_int r.Suu_sim.Engine.wasted_steps /. steps);
        totals.(3) <-
          totals.(3) +. (float_of_int r.Suu_sim.Engine.idle_steps /. steps))
      rngs;
    let f = float_of_int reps in
    Table.add_float_row table label
      [ totals.(0) /. f;
        100.0 *. totals.(1) /. f;
        100.0 *. totals.(2) /. f;
        100.0 *. totals.(3) /. f ]
  in
  measure "SUU-I-SEM" (Suu_core.Suu_i_sem.policy inst);
  measure "SUU-I-OBL" (Suu_core.Suu_i_obl.policy inst);
  measure "greedy" (Suu_core.Baselines.greedy_completion inst);
  measure "round-robin" (Suu_core.Baselines.round_robin inst);
  measure "serial" (Suu_core.Baselines.serial inst);
  Table.print table;
  note
    "\nreading: 'wasted' steps hit already-completed jobs (the price of \
     oblivious repetition); 'idle' is explicit under-use.  The LP \
     schedules trade wasted work for worst-case guarantees; greedy \
     keeps machines on live jobs but with no guarantee (cf. A3)."

(* ------------------------------------------------------------------ *)
(* A1 — the Lemma-2 rounding constants in practice. *)

let a1 () =
  section "A1: rounding ablation - Lemma 2 constants in practice";
  let m = 8 and target = 0.5 in
  let table =
    Table.create
      ~header:
        [ "hazard/n"; "t* (LP)"; "rounded load"; "load/t*";
          "min mass/target" ]
  in
  List.iter
    (fun hazard ->
      List.iter
        (fun n ->
          let inst = W.independent hazard ~n ~m ~seed:(909 + n) in
          let jobs = Array.init n Fun.id in
          let frac = Suu_core.Lp1.solve inst ~jobs ~target in
          let a =
            Suu_core.Rounding.round inst ~jobs ~target ~frac:frac.Suu_core.Lp1.x
              ~frac_value:frac.Suu_core.Lp1.value
          in
          let load = float_of_int (Suu_core.Assignment.load a) in
          let min_mass = ref infinity in
          Array.iter
            (fun j ->
              let mass =
                Suu_core.Assignment.clipped_log_mass inst ~target a j
              in
              if mass < !min_mass then min_mass := mass)
            jobs;
          Table.add_float_row table
            (Printf.sprintf "%s/%d" (W.hazard_name hazard) n)
            [ frac.Suu_core.Lp1.value; load;
              load /. Float.max 1e-9 frac.Suu_core.Lp1.value;
              !min_mass /. target ])
        [ 32; 128 ])
    [ W.Uniform { lo = 0.2; hi = 0.95 }; W.Near_one ];
  Table.print table;
  note
    "\nexpected shape: load/t* <= 6 + o(1) (the paper's ceil(6 t*) \
     cap) and min mass/target >= 1 (Lemma 2's coverage guarantee) - \
     both with slack in practice."

(* ------------------------------------------------------------------ *)
(* A2 — LP backends: exact simplex vs MWU. *)

let time_it f =
  let t0 = Unix.gettimeofday () in
  let y = f () in
  (y, Unix.gettimeofday () -. t0)

let a2 () =
  section "A2: solver ablation - simplex vs multiplicative weights";
  let table =
    Table.create
      ~header:[ "n x m"; "solver"; "LP value"; "vs simplex"; "time (s)" ]
  in
  List.iter
    (fun (n, m) ->
      let inst =
        W.independent (W.Uniform { lo = 0.2; hi = 0.95 }) ~n ~m
          ~seed:(1010 + n)
      in
      let jobs = Array.init n Fun.id in
      let solve solver () =
        (Suu_core.Lp1.solve ~solver inst ~jobs ~target:0.5).Suu_core.Lp1.value
      in
      let exact, t_exact = time_it (solve Suu_core.Solver_choice.Simplex) in
      Table.add_row table
        [ Printf.sprintf "%dx%d" n m; "simplex"; Table.fmt_g exact; "1";
          Table.fmt_g t_exact ];
      List.iter
        (fun eps ->
          let v, t = time_it (solve (Suu_core.Solver_choice.Mwu eps)) in
          Table.add_row table
            [ ""; Printf.sprintf "mwu eps=%.2f" eps; Table.fmt_g v;
              Table.fmt_g (v /. exact); Table.fmt_g t ])
        [ 0.3; 0.1; 0.05 ])
    [ (64, 8); (256, 16) ];
  Table.print table;
  note
    "\nexpected shape: MWU values within 1 + O(eps) of the simplex, \
     with time growing ~1/eps^2 but scaling to sizes where the dense \
     tableau becomes the bottleneck."

(* ------------------------------------------------------------------ *)
(* A3 — the conclusion's open question: can a greedy heuristic match the
   LP-based bounds? *)

let a3 () =
  section
    "A3: greedy-vs-LP probe (paper conclusion) - specialist trap family";
  (* Machine 0 is the only machine that can run the k "captive" jobs
     (q = 0.5 there, 1 elsewhere) and is also the best machine for the
     easy jobs (q = 0.05 vs 0.5 elsewhere): a myopic greedy keeps machine
     0 on easy jobs and starves the captives. *)
  let m = 8 and n = 64 and seed = 1111 and reps = 20 in
  let table =
    Table.create
      ~header:
        [ "captive k"; "lower bd"; "SUU-I-SEM"; "greedy"; "rrobin" ]
  in
  List.iter
    (fun k ->
      let q =
        Array.init m (fun i ->
            Array.init n (fun j ->
                if j < k then if i = 0 then 0.5 else 1.0
                else if i = 0 then 0.05
                else 0.5))
      in
      let inst =
        Instance.make
          ~name:(Printf.sprintf "trap-k%d" k)
          ~dag:(Suu_dag.Dag.empty n) q
      in
      let bound = LB.combined inst in
      let ratio p = mean_ratio inst p ~bound ~seed ~reps in
      Table.add_float_row table (string_of_int k)
        [ bound;
          ratio (Suu_core.Suu_i_sem.policy inst);
          ratio (Suu_core.Baselines.greedy_completion inst);
          ratio (Suu_core.Baselines.round_robin inst) ])
    [ 2; 4; 8; 16 ];
  Table.print table;
  note
    "\nreading: the LP sees the captive jobs' only machine and \
     schedules it there from step one; the myopic greedy serves easy \
     jobs first and pays the captive chain afterwards.  On random \
     hazards (E1) greedy matches or beats SUU-I-SEM - empirical support \
     for the paper's closing conjecture that a greedy heuristic might \
     achieve similar bounds, with this family showing where its \
     constant degrades."

(* ------------------------------------------------------------------ *)
(* perf — bechamel micro-benchmarks of the substrates. *)

(* Per-phase latency breakdown from the Obs registry, as a JSON object
   keyed by phase name.  Every span recorded anywhere in the process so
   far (LP solves, engine runs, server request phases) shows up, which
   is what lets the CI gate compare phase timings across PRs. *)
let phases_json buf ~indent =
  let pad = String.make indent ' ' in
  let bpf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let snap = Suu_obs.Registry.snapshot () in
  let hists = snap.Suu_obs.Registry.histograms in
  bpf "{\n";
  List.iteri
    (fun i (name, h, hs) ->
      let q p = 1000.0 *. Suu_obs.Histogram.quantile h hs p in
      bpf
        "%s  %S: {\"count\": %d, \"mean_ms\": %.6g, \"p50_ms\": %.6g, \
         \"p95_ms\": %.6g, \"p99_ms\": %.6g}%s\n"
        pad name hs.Suu_obs.Histogram.count
        (1000.0 *. Suu_obs.Histogram.mean hs)
        (q 0.5) (q 0.95) (q 0.99)
        (if i = List.length hists - 1 then "" else ","))
    hists;
  bpf "%s}" pad

(* Instrumentation overhead: the same greedy replication workload timed
   with the observability layer recording vs fully disabled
   (Registry.set_enabled false turns every span into a plain call).
   The CI gate asserts the difference stays under 5%, so the measurement
   has to be calmer than that:

   - times are process-CPU (Sys.time), not wall-clock — the workload is
     single-domain here, and on a shared box scheduler preemption puts
     far more jitter into wall-clock than the overhead being measured;
   - on/off runs are timed in back-to-back pairs so GC/heap drift
     cancels within a pair instead of masquerading as overhead, and the
     pair order alternates (on-off, off-on, ...) so whichever arm runs
     second never systematically inherits a warmer cache;
   - the reported figure is the lower quartile of the per-pair relative
     deltas.  Any single pair can be off by several percent (GC majors,
     DVFS), and those excursions skew positive, so the median of a ~1%
     true overhead still grazes the 5% gate on a bad day.  The lower
     quartile gives up a point or two of accuracy for stability; a real
     regression (accidental per-step instrumentation lands at tens of
     percent) shifts every delta and still trips the gate by an order
     of magnitude. *)
let measure_obs_overhead inst policy ~seed ~reps =
  let work () = ignore (Runner.makespans ~jobs:1 inst policy ~seed ~reps) in
  work () (* warm the plan/metric paths once *);
  let cpu_time f =
    let t0 = Sys.time () in
    f ();
    Sys.time () -. t0
  in
  let timed_pair on_first =
    let arm enabled =
      Suu_obs.Registry.set_enabled enabled;
      let t = cpu_time work in
      Suu_obs.Registry.set_enabled true;
      t
    in
    if on_first then
      let on = arm true in
      (on, arm false)
    else
      let off = arm false in
      (arm true, off)
  in
  let pairs = 15 in
  let deltas =
    Array.init pairs (fun k ->
        let on, off = timed_pair (k land 1 = 0) in
        (on -. off) /. Float.max 1e-9 off)
  in
  Array.sort compare deltas;
  100.0 *. deltas.(pairs / 4)

(* Macro side of perf: engine step rate and sequential-vs-parallel
   replication throughput on an E1-style ratio sweep, recorded to
   BENCH_perf.json so the perf trajectory is tracked across PRs.
   SUU_PERF_SCALE=tiny shrinks everything to a CI smoke size. *)
let perf_pipeline bechamel_rows =
  section "perf: simulation pipeline (engine step rate, multicore scaling)";
  let tiny =
    match Sys.getenv_opt "SUU_PERF_SCALE" with
    | Some "tiny" -> true
    | _ -> false
  in
  let n, m, reps = if tiny then (16, 4, 8) else (128, 8, 48) in
  let seed = 777 in
  let inst = W.independent W.Near_one ~n ~m ~seed:4242 in
  (* Engine step rate: the greedy baseline is pure simulation (no LP),
     so steps/s isolates the engine + policy hot path. *)
  let greedy = Suu_core.Baselines.greedy_completion inst in
  let g_ms, g_t =
    time_it (fun () -> Runner.makespans ~jobs:1 inst greedy ~seed ~reps)
  in
  let g_steps = Array.fold_left ( +. ) 0.0 g_ms in
  let step_rate = g_steps /. g_t in
  note "engine step rate (greedy, n=%d m=%d, %d reps): %.3g steps/s \
        (%.3g machine-steps/s)"
    n m reps step_rate (float_of_int m *. step_rate);
  (* Ratio-sweep throughput: SUU-I-SEM is the E1 workhorse; its LP plans
     hit the per-policy plan cache after replication 1. *)
  let policy () = Suu_core.Suu_i_sem.policy inst in
  let seq, seq_t =
    time_it (fun () -> Runner.makespans ~jobs:1 inst (policy ()) ~seed ~reps)
  in
  let cores = Suu_sim.Parallel.default_jobs () in
  let domain_counts =
    List.sort_uniq compare
      (List.filter (fun d -> d <= max 1 reps) [ 1; 2; 4; cores ])
  in
  let table =
    Table.create ~header:[ "domains"; "time (s)"; "reps/s"; "speedup"; "identical" ]
  in
  let par_rows =
    List.map
      (fun d ->
        let xs, t =
          time_it (fun () ->
              Suu_sim.Parallel.makespans ~domains:d inst ~policy ~seed ~reps)
        in
        let same = xs = seq in
        Table.add_row table
          [ string_of_int d; Table.fmt_g t;
            Table.fmt_g (float_of_int reps /. t);
            Table.fmt_g (seq_t /. t); (if same then "yes" else "NO") ];
        (d, t, seq_t /. t, same))
      domain_counts
  in
  note "sequential baseline (jobs=1): %.3g s (%.3g reps/s)" seq_t
    (float_of_int reps /. seq_t);
  Table.print table;
  note "\navailable domains (SUU_JOBS or recommended): %d" cores;
  (* Observability overhead on the pure-simulation hot path (greedy:
     no LP, so span cost is not hidden behind solver time).  Always
     measured at the full instance size, even under SUU_PERF_SCALE=tiny:
     tiny runs last ~100us, where GC alignment and per-run fixed costs
     swamp the few-percent signal the CI gate has to resolve. *)
  let overhead_pct =
    let oi = W.independent W.Near_one ~n:128 ~m:8 ~seed:4242 in
    let og = Suu_core.Baselines.greedy_completion oi in
    measure_obs_overhead oi og ~seed ~reps:192
  in
  note "observability overhead (greedy, lower-quartile of 15 on/off pairs): %+.2f%%"
    overhead_pct;
  (* Solver parity: switching the serve-path default to certified MWU
     must not change SEM/OBL makespan quality.  Same seeds, same
     replication count, only the LP backend differs; the ratio is
     mwu_mean / simplex_mean (1.0 = identical schedules). *)
  let parity =
    let mean xs =
      Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)
    in
    let pinst = W.independent W.Near_one ~n:(n / 2) ~m ~seed:4243 in
    List.map
      (fun (pname, build) ->
        let run solver =
          mean (Runner.makespans ~jobs:1 pinst (build solver) ~seed:778 ~reps)
        in
        let s = run Suu_core.Solver_choice.Simplex in
        let w = run (Suu_core.Solver_choice.Mwu 0.1) in
        let ratio = w /. s in
        note "solver parity %-10s simplex=%.4g mwu=%.4g ratio=%.4g" pname s w
          ratio;
        (pname, s, w, ratio))
      [
        ("suu-i-sem", fun s -> Suu_core.Suu_i_sem.policy ~solver:s pinst);
        ("suu-i-obl", fun s -> Suu_core.Suu_i_obl.policy ~solver:s pinst);
      ]
  in
  (* JSON record. *)
  let buf = Buffer.create 4096 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  bpf "{\n";
  bpf "  \"experiment\": \"perf\",\n";
  bpf "  \"scale\": \"%s\",\n" (if tiny then "tiny" else "full");
  bpf "  \"available_domains\": %d,\n" cores;
  bpf "  \"obs_overhead_pct\": %.4g,\n" overhead_pct;
  bpf "  \"engine\": {\n";
  bpf "    \"workload\": \"near-one n=%d m=%d reps=%d\",\n" n m reps;
  bpf "    \"policy\": \"greedy\",\n";
  bpf "    \"steps_per_sec\": %.6g,\n" step_rate;
  bpf "    \"machine_steps_per_sec\": %.6g\n" (float_of_int m *. step_rate);
  bpf "  },\n";
  bpf "  \"ratio_sweep\": {\n";
  bpf "    \"workload\": \"near-one n=%d m=%d reps=%d\",\n" n m reps;
  bpf "    \"policy\": \"suu-i-sem\",\n";
  bpf "    \"sequential_sec\": %.6g,\n" seq_t;
  bpf "    \"parallel\": [\n";
  List.iteri
    (fun i (d, t, speedup, same) ->
      bpf
        "      {\"domains\": %d, \"sec\": %.6g, \"speedup\": %.4g, \
         \"bit_identical\": %b}%s\n"
        d t speedup same
        (if i = List.length par_rows - 1 then "" else ","))
    par_rows;
  bpf "    ]\n";
  bpf "  },\n";
  bpf "  \"solver_parity\": [\n";
  List.iteri
    (fun i (pname, s, w, ratio) ->
      bpf
        "    {\"policy\": %S, \"simplex_mean\": %.6g, \"mwu_mean\": %.6g, \
         \"ratio\": %.6g}%s\n"
        pname s w ratio
        (if i = List.length parity - 1 then "" else ","))
    parity;
  bpf "  ],\n";
  bpf "  \"bechamel_ns_per_run\": {\n";
  let sorted = List.sort compare bechamel_rows in
  List.iteri
    (fun i (name, est, _) ->
      bpf "    %S: %.6g%s\n" name est
        (if i = List.length sorted - 1 then "" else ","))
    sorted;
  bpf "  },\n";
  bpf "  \"phases\": ";
  phases_json buf ~indent:2;
  bpf "\n";
  bpf "}\n";
  let oc = open_out "BENCH_perf.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  note "\nwrote BENCH_perf.json"

let perf () =
  section "perf: bechamel micro-benchmarks (ns per run, OLS estimate)";
  let open Bechamel in
  let uniform = W.Uniform { lo = 0.2; hi = 0.95 } in
  let inst64 = W.independent uniform ~n:64 ~m:8 ~seed:7 in
  let jobs64 = Array.init 64 Fun.id in
  let frac64 = Suu_core.Lp1.solve inst64 ~jobs:jobs64 ~target:0.5 in
  let chain_inst = W.chains uniform ~z:8 ~length:6 ~m:4 ~seed:8 in
  let chain_chains =
    match Suu_dag.Chains.of_dag (Instance.dag chain_inst) with
    | Some c -> c
    | None -> assert false
  in
  let tiny = W.independent uniform ~n:4 ~m:2 ~seed:9 in
  let stoch_inst =
    let rng = Suu_prng.Rng.create ~seed:10 in
    let rates = Array.init 16 (fun _ -> Suu_prng.Rng.range rng ~lo:0.3 ~hi:3.0) in
    let speeds =
      Array.init 4 (fun _ ->
          Array.init 16 (fun _ -> Suu_prng.Rng.range rng ~lo:0.1 ~hi:2.0))
    in
    Suu_stoch.Stoch_instance.make ~rates speeds
  in
  let ll_sol =
    Suu_stoch.Ll_lp.solve stoch_inst
      ~lengths:(Array.make 16 1.0)
      ~jobs:(Array.init 16 Fun.id)
  in
  let k64 = Suu_core.Mathx.rounds_k ~n:64 ~m:8 in
  let warm_bases64 = Array.make (k64 + 1) None in
  let run_sem () =
    Runner.expected_makespan inst64 (Suu_core.Suu_i_sem.policy inst64)
      ~seed:11 ~reps:1
  in
  let run_greedy () =
    Runner.expected_makespan inst64
      (Suu_core.Baselines.greedy_completion inst64)
      ~seed:12 ~reps:1
  in
  let tests =
    [
      Test.make ~name:"lp1-simplex-64x8"
        (Staged.stage (fun () ->
             Suu_core.Lp1.solve inst64 ~jobs:jobs64 ~target:0.5));
      Test.make ~name:"lp1-mwu-certified-64x8"
        (Staged.stage (fun () ->
             Suu_core.Lp1.solve ~solver:(Suu_core.Solver_choice.Mwu 0.1)
               inst64 ~jobs:jobs64 ~target:0.5));
      (* The serve-path workload: LP1 at every doubling target
         L_1..L_K for one survivor set.  The cold entry re-solves each
         round from scratch (dense tableau); the warm entry mirrors
         {!Suu_core.Plan_cache}'s basis store — each round warm-starts
         from its own basis of the previous iteration (the round-exact
         key; zero pivots in steady state) or, the first time, from the
         previous round's basis (the latest key; a few repair
         pivots). *)
      Test.make ~name:"lp1-simplex-seq-64x8"
        (Staged.stage (fun () ->
             for k = 1 to k64 do
               ignore
                 (Suu_core.Lp1.solve inst64 ~jobs:jobs64
                    ~target:(Suu_core.Mathx.target_for_round k))
             done));
      Test.make ~name:"lp1-revised-warm-seq-64x8"
        (Staged.stage (fun () ->
             let chained = ref None in
             for k = 1 to k64 do
               let hint =
                 match warm_bases64.(k) with
                 | Some _ as own -> own
                 | None -> !chained
               in
               let frac =
                 Suu_core.Lp1.solve ~solver:Suu_core.Solver_choice.Revised
                   ?basis:hint inst64 ~jobs:jobs64
                   ~target:(Suu_core.Mathx.target_for_round k)
               in
               warm_bases64.(k) <- frac.Suu_core.Lp1.basis;
               chained := frac.Suu_core.Lp1.basis
             done));
      Test.make ~name:"lemma2-rounding-64x8"
        (Staged.stage (fun () ->
             Suu_core.Rounding.round inst64 ~jobs:jobs64 ~target:0.5
               ~frac:frac64.Suu_core.Lp1.x
               ~frac_value:frac64.Suu_core.Lp1.value));
      Test.make ~name:"lp2-simplex-48x4"
        (Staged.stage (fun () ->
             Suu_core.Lp2.solve chain_inst ~chains:chain_chains));
      Test.make ~name:"suu-i-sem-execution-64x8"
        (Staged.stage (fun () -> run_sem ()));
      Test.make ~name:"greedy-execution-64x8"
        (Staged.stage (fun () -> run_greedy ()));
      Test.make ~name:"exact-dp-4x2"
        (Staged.stage (fun () -> Suu_core.Exact_dp.expected_makespan tiny));
      Test.make ~name:"bvn-decompose-16x4"
        (Staged.stage (fun () ->
             Suu_stoch.Bvn.decompose ~m:4 ~n:16 ~x:ll_sol.Suu_stoch.Ll_lp.x
               ~horizon:ll_sol.Suu_stoch.Ll_lp.value));
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:500
      ~quota:(Time.second 0.5)
      ~stabilize:false ()
  in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"suu" ~fmt:"%s %s" tests)
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let table = Table.create ~header:[ "benchmark"; "time/run"; "r^2" ] in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let est =
        match Analyze.OLS.estimates ols_result with
        | Some (e :: _) -> e
        | _ -> Float.nan
      in
      let r2 =
        match Analyze.OLS.r_square ols_result with
        | Some r -> r
        | None -> Float.nan
      in
      rows := (name, est, r2) :: !rows)
    results;
  List.iter
    (fun (name, est, r2) ->
      let human =
        if Float.is_nan est then "-"
        else if est > 1e9 then Printf.sprintf "%.2f s" (est /. 1e9)
        else if est > 1e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
        else if est > 1e3 then Printf.sprintf "%.2f us" (est /. 1e3)
        else Printf.sprintf "%.0f ns" est
      in
      Table.add_row table [ name; human; Table.fmt_g r2 ])
    (List.sort compare !rows);
  Table.print table;
  perf_pipeline !rows

(* ------------------------------------------------------------------ *)
(* serve — load-test the suu-serve daemon: an in-process server on an
   ephemeral port, hammered by closed-loop client threads issuing a
   mixed request distribution over a small instance pool (so the
   server's instance and plan caches see both hits and misses).
   Records throughput, latency quantiles, and the reject rate to
   BENCH_serve.json, and checks determinism-over-the-wire: the same
   simulate request must produce byte-identical responses regardless
   of worker and domain counts. *)

(* serve --connections N: the connection-scale pass.  One thread
   multiplexes N non-blocking sockets over the same {!Suu_server.Reactor}
   abstraction the server's loop uses (500 client threads would measure
   the bench, not the server), pipelines a few describe requests on each,
   and byte-compares every reply against a reference frame re-serialized
   with the per-request id.  Replies interleave freely across workers, so
   each connection's frames are compared as a multiset.  Returns the JSON
   object embedded as BENCH_serve.json's "connection_scale" section plus
   the dropped/mismatched counts the caller fails on. *)

let connections_target = ref 500

type cs_conn = {
  cs_fd : Unix.file_descr;
  cs_out : string;
  mutable cs_off : int;
  cs_expect_len : int;
  cs_expect_sorted : string list;
  cs_inbuf : Buffer.t;
  mutable cs_done : bool;
  mutable cs_ok : bool;
  mutable cs_mismatch : bool;
}

(* Split a byte stream into whole frames; a line reading "done" ends a
   frame.  A trailing partial frame is dropped (the caller only splits
   streams whose byte count already matches the expected total). *)
let split_frames s =
  let n = String.length s in
  let frames = ref [] and start = ref 0 and i = ref 0 in
  while !i < n do
    match String.index_from_opt s !i '\n' with
    | None -> i := n
    | Some nl ->
        if String.trim (String.sub s !i (nl - !i)) = "done" then begin
          frames := String.sub s !start (nl + 1 - !start) :: !frames;
          start := nl + 1
        end;
        i := nl + 1
  done;
  List.rev !frames

let connection_scale () =
  let module Server = Suu_server.Server in
  let module Client = Suu_server.Client in
  let module Reactor = Suu_server.Reactor in
  let module P = Suu_server.Protocol in
  let conns = max 1 !connections_target in
  let pipelined = 4 in
  note "";
  section
    (Printf.sprintf
       "serve connection-scale: %d concurrent connections x %d pipelined \
        requests"
       conns pipelined);
  (* A queue deep enough that nothing is refused: this pass measures
     connection fan-in, not admission control (the load test above
     already measures overload). *)
  let config =
    { Server.default_config with workers = 4; queue_capacity = 4096 }
  in
  let server = Server.start ~config () in
  let port = Server.port server in
  let inst =
    W.independent (W.Uniform { lo = 0.2; hi = 0.95 }) ~n:10 ~m:4 ~seed:31
  in
  let reference =
    let c = Client.connect ~port () in
    let r = Client.call c (P.Describe inst) in
    Client.close c;
    r
  in
  let expected_frame id =
    match reference with
    | P.Ok { id = _; rtype; fields } ->
        P.response_to_string (P.Ok { id = Some id; rtype; fields })
    | P.Err { code; message; _ } ->
        failwith
          (Printf.sprintf "connection-scale reference describe failed: %s %s"
             (P.error_code_to_string code) message)
  in
  let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
  let r = Reactor.create () in
  let by_fd = Hashtbl.create (2 * conns) in
  let t0 = Unix.gettimeofday () in
  let states =
    Array.init conns (fun i ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.set_nonblock fd;
        (try Unix.connect fd addr
         with Unix.Unix_error (Unix.EINPROGRESS, _, _) -> ());
        let ids = List.init pipelined (fun j -> Printf.sprintf "c%d-%d" i j) in
        let out =
          String.concat ""
            (List.map
               (fun id ->
                 P.request_to_string
                   { P.id = Some id; deadline_ms = None; body = P.Describe inst })
               ids)
        in
        let expect = List.map expected_frame ids in
        let st =
          {
            cs_fd = fd;
            cs_out = out;
            cs_off = 0;
            cs_expect_len =
              List.fold_left (fun a f -> a + String.length f) 0 expect;
            cs_expect_sorted = List.sort compare expect;
            cs_inbuf = Buffer.create 512;
            cs_done = false;
            cs_ok = false;
            cs_mismatch = false;
          }
        in
        Hashtbl.replace by_fd fd st;
        Reactor.add r fd ~read:true ~write:true;
        st)
  in
  let live = ref conns in
  let finish st =
    if not st.cs_done then begin
      st.cs_done <- true;
      Reactor.remove r st.cs_fd;
      (try Unix.close st.cs_fd with Unix.Unix_error _ -> ());
      decr live;
      let got = Buffer.contents st.cs_inbuf in
      if String.length got >= st.cs_expect_len then
        if List.sort compare (split_frames got) = st.cs_expect_sorted then
          st.cs_ok <- true
        else st.cs_mismatch <- true
      (* short of the expected bytes: counted as dropped *)
    end
  in
  let chunk = Bytes.create 65536 in
  let handle_writable st =
    if (not st.cs_done) && st.cs_off < String.length st.cs_out then
      match
        Unix.write_substring st.cs_fd st.cs_out st.cs_off
          (String.length st.cs_out - st.cs_off)
      with
      | n ->
          st.cs_off <- st.cs_off + n;
          if st.cs_off >= String.length st.cs_out then
            Reactor.modify r st.cs_fd ~read:true ~write:false
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        -> ()
      | exception Unix.Unix_error _ -> finish st
  in
  let rec handle_readable st =
    if not st.cs_done then
      match Unix.read st.cs_fd chunk 0 (Bytes.length chunk) with
      | 0 -> finish st
      | n ->
          Buffer.add_subbytes st.cs_inbuf chunk 0 n;
          if Buffer.length st.cs_inbuf >= st.cs_expect_len then finish st
          else handle_readable st
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        -> ()
      | exception Unix.Unix_error _ -> finish st
  in
  let deadline = t0 +. 60.0 in
  while !live > 0 && Unix.gettimeofday () < deadline do
    List.iter
      (fun (ev : Reactor.event) ->
        match Hashtbl.find_opt by_fd ev.Reactor.fd with
        | None -> ()
        | Some st ->
            if ev.Reactor.writable then handle_writable st;
            if ev.Reactor.readable then handle_readable st)
      (Reactor.wait r ~timeout_ms:200)
  done;
  Array.iter finish states;
  let wall = Unix.gettimeofday () -. t0 in
  Server.stop server;
  let count f = Array.fold_left (fun a st -> if f st then a + 1 else a) 0 states in
  let ok = count (fun st -> st.cs_ok) in
  let mismatched = count (fun st -> st.cs_mismatch) in
  let dropped = conns - ok - mismatched in
  note
    "connections=%d pipelined=%d ok=%d dropped=%d mismatched=%d wall=%.2fs \
     (%.0f req/s, client reactor=%s)"
    conns pipelined ok dropped mismatched wall
    (float_of_int (ok * pipelined) /. wall)
    (Reactor.backend r);
  let json =
    Printf.sprintf
      "{\"connections\": %d, \"pipelined\": %d, \"ok\": %d, \"dropped\": %d, \
       \"mismatched\": %d, \"wall_sec\": %.6g, \"rps\": %.6g}"
      conns pipelined ok dropped mismatched wall
      (float_of_int (ok * pipelined) /. wall)
  in
  (json, dropped, mismatched)

(* serve --workload SPEC: the open-loop replay pass.  Unlike the
   closed-loop clients above (which submit as fast as the server
   answers, so the arrival rate is whatever the service can absorb),
   this driver submits request k at its scheduled timestamp no matter
   how the server is doing — the generator, not the service, decides
   the arrival process.  Timestamps come from an {!Suu_workload.Arrivals}
   process (Poisson / bursty / diurnal) or from the submit times of an
   SWF trace, whose jobs also map to the instances submitted
   ({!Suu_workload.Swf.instances}).  Per arrival we record queueing
   (first byte handed to the kernel minus scheduled time — client-side
   backlog under bursts) and end-to-end latency (full response frame
   minus scheduled time).  The whole replay runs twice at the same seed
   and the (id, frame) multisets must be byte-identical; the result is
   the "workload" section of BENCH_serve.json. *)

let workload_spec : string option ref = ref None

type ol_req = {
  ol_id : string;
  ol_bytes : string;
  ol_scheduled : float; (* seconds from replay start *)
  mutable ol_sent : float; (* first byte written; -1 until then *)
  mutable ol_recv : float; (* response frame complete; -1 until then *)
}

type ol_conn = {
  ol_fd : Unix.file_descr;
  ol_pending : ol_req Queue.t; (* released, not yet fully written *)
  mutable ol_written : int; (* bytes of the head request written *)
  ol_inbuf : Buffer.t;
  mutable ol_consumed : int; (* prefix of ol_inbuf already framed *)
  mutable ol_dead : bool;
}

let ol_frame_id frame =
  List.find_map
    (fun l ->
      if String.length l > 3 && String.sub l 0 3 = "id " then
        Some (String.trim (String.sub l 3 (String.length l - 3)))
      else None)
    (String.split_on_char '\n' frame)

(* One full replay: submit [reqs] (sorted by [ol_scheduled]) open-loop
   over [nconns] multiplexed connections, return the (id, frame)
   responses.  Mutates [ol_sent]/[ol_recv] in place. *)
let open_loop_run ~port ~nconns ~reqs =
  let module Reactor = Suu_server.Reactor in
  let total = Array.length reqs in
  let by_id = Hashtbl.create (2 * total) in
  Array.iter (fun q -> Hashtbl.replace by_id q.ol_id q) reqs;
  let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
  let r = Reactor.create () in
  let by_fd = Hashtbl.create (2 * nconns) in
  let conns =
    Array.init nconns (fun _ ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.set_nonblock fd;
        (try Unix.connect fd addr
         with Unix.Unix_error (Unix.EINPROGRESS, _, _) -> ());
        let st =
          {
            ol_fd = fd;
            ol_pending = Queue.create ();
            ol_written = 0;
            ol_inbuf = Buffer.create 1024;
            ol_consumed = 0;
            ol_dead = false;
          }
        in
        Hashtbl.replace by_fd fd st;
        (* write interest absorbs connect completion; the first
           writable wakeup with an empty queue drops back to read. *)
        Reactor.add r fd ~read:true ~write:true;
        st)
  in
  let t0 = Unix.gettimeofday () in
  let now () = Unix.gettimeofday () -. t0 in
  let completed = ref 0 in
  let responses = ref [] in
  let chunk = Bytes.create 65536 in
  let kill st =
    if not st.ol_dead then begin
      st.ol_dead <- true;
      Reactor.remove r st.ol_fd;
      (try Unix.close st.ol_fd with Unix.Unix_error _ -> ())
    end
  in
  let rec handle_writable st =
    if not st.ol_dead then
      match Queue.peek_opt st.ol_pending with
      | None -> Reactor.modify r st.ol_fd ~read:true ~write:false
      | Some req -> (
          let len = String.length req.ol_bytes in
          match
            Unix.write_substring st.ol_fd req.ol_bytes st.ol_written
              (len - st.ol_written)
          with
          | n ->
              if n > 0 && req.ol_sent < 0.0 then req.ol_sent <- now ();
              st.ol_written <- st.ol_written + n;
              if st.ol_written >= len then begin
                ignore (Queue.pop st.ol_pending);
                st.ol_written <- 0;
                handle_writable st
              end
          | exception
              Unix.Unix_error
                ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
              ()
          | exception Unix.Unix_error _ -> kill st)
  in
  let drain_frames st =
    let raw = Buffer.contents st.ol_inbuf in
    let rest =
      String.sub raw st.ol_consumed (String.length raw - st.ol_consumed)
    in
    List.iter
      (fun frame ->
        st.ol_consumed <- st.ol_consumed + String.length frame;
        match ol_frame_id frame with
        | Some id -> (
            match Hashtbl.find_opt by_id id with
            | Some req when req.ol_recv < 0.0 ->
                req.ol_recv <- now ();
                incr completed;
                responses := (id, frame) :: !responses
            | _ -> ())
        | None -> ())
      (split_frames rest)
  in
  let rec handle_readable st =
    if not st.ol_dead then
      match Unix.read st.ol_fd chunk 0 (Bytes.length chunk) with
      | 0 -> kill st
      | n ->
          Buffer.add_subbytes st.ol_inbuf chunk 0 n;
          drain_frames st;
          handle_readable st
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
          ()
      | exception Unix.Unix_error _ -> kill st
  in
  let next = ref 0 in
  let deadline = 120.0 in
  while !completed < total && now () < deadline do
    (* Release every arrival whose scheduled time has come, regardless
       of server progress — the open-loop property. *)
    while !next < total && reqs.(!next).ol_scheduled <= now () do
      let st = conns.(!next mod nconns) in
      if not st.ol_dead then begin
        Queue.push reqs.(!next) st.ol_pending;
        Reactor.modify r st.ol_fd ~read:true ~write:true
      end;
      incr next
    done;
    let timeout_ms =
      if !next >= total then 100
      else
        let dt = reqs.(!next).ol_scheduled -. now () in
        max 0 (min 100 (int_of_float (ceil (dt *. 1000.0))))
    in
    List.iter
      (fun (ev : Reactor.event) ->
        match Hashtbl.find_opt by_fd ev.Reactor.fd with
        | None -> ()
        | Some st ->
            if ev.Reactor.writable then handle_writable st;
            if ev.Reactor.readable then handle_readable st)
      (Reactor.wait r ~timeout_ms);
    if Array.for_all (fun st -> st.ol_dead) conns then completed := total
  done;
  Array.iter kill conns;
  (List.sort compare !responses, now ())

(* Build the arrival schedule and request bodies for a workload spec.
   SWF traces supply both timestamps and instances; synthetic specs
   draw timestamps from {!Arrivals} and cycle a fixed instance pool.
   Long traces are compressed to [target_span] seconds of replay. *)
let open_loop_requests ~tiny spec =
  let module A = Suu_workload.Arrivals in
  let module Swf = Suu_workload.Swf in
  let module P = Suu_server.Protocol in
  let times, insts, label =
    match String.index_opt spec ':' with
    | Some i when String.lowercase_ascii (String.sub spec 0 i) = "swf" ->
        let path = String.sub spec (i + 1) (String.length spec - i - 1) in
        let trace = Swf.load_file path in
        let times = Swf.arrival_times trace in
        let insts = Array.map snd (Swf.instances trace) in
        (times, insts, Printf.sprintf "swf:%s" (Filename.basename path))
    | _ -> (
        match A.spec_of_string spec with
        | Error msg -> failwith ("bench serve --workload: " ^ msg)
        | Ok sp ->
            let count = if tiny then 60 else 240 in
            let times = A.take (A.create ~seed:11 sp) count in
            let uniform = W.Uniform { lo = 0.2; hi = 0.95 } in
            let pool =
              [|
                W.independent uniform ~n:12 ~m:4 ~seed:21;
                W.independent W.Near_one ~n:16 ~m:4 ~seed:22;
                W.random_chains uniform ~n:12 ~z:3 ~m:4 ~seed:23;
                W.forest uniform ~n:12 ~trees:2 ~orientation:`Mixed ~m:4
                  ~seed:24;
              |]
            in
            let insts =
              Array.init (Array.length times) (fun k ->
                  pool.(k mod Array.length pool))
            in
            (times, insts, A.spec_to_string sp))
  in
  let n = Array.length times in
  if n = 0 then failwith "bench serve --workload: empty arrival schedule";
  let span = times.(n - 1) in
  let target_span = if tiny then 3.0 else 8.0 in
  let compression =
    if span > target_span then target_span /. span else 1.0
  in
  let sim_reps = if tiny then 8 else 24 in
  let reqs =
    Array.init n (fun k ->
        let inst = insts.(k) in
        let body =
          if k mod 7 = 3 then
            P.Simulate { inst; policy = "auto"; reps = sim_reps; seed = k }
          else if k mod 3 = 1 then P.Describe inst
          else P.Plan { inst; policy = "auto"; seed = k }
        in
        let id = Printf.sprintf "w%d" k in
        {
          ol_id = id;
          ol_bytes =
            P.request_to_string { P.id = Some id; deadline_ms = None; body };
          ol_scheduled = times.(k) *. compression;
          ol_sent = -1.0;
          ol_recv = -1.0;
        })
  in
  (reqs, label, span, compression)

(* The full pass: fresh server, two identical replays, byte-compare.
   Returns the JSON object for the "workload" section plus the
   failure counts the caller aborts on. *)
let open_loop_replay ~tiny spec =
  let module Server = Suu_server.Server in
  note "";
  section (Printf.sprintf "serve open-loop workload replay: %s" spec);
  let reqs, label, span, compression = open_loop_requests ~tiny spec in
  let n = Array.length reqs in
  let nconns = max 1 (min 16 n) in
  let config =
    { Server.default_config with workers = 4; queue_capacity = 4096 }
  in
  let server = Server.start ~config () in
  let port = Server.port server in
  let responses1, wall = open_loop_run ~port ~nconns ~reqs in
  let completed = ref 0 in
  let queueing = ref [] and e2e = ref [] in
  Array.iter
    (fun q ->
      if q.ol_recv >= 0.0 then begin
        incr completed;
        queueing := (1000.0 *. (q.ol_sent -. q.ol_scheduled)) :: !queueing;
        e2e := (1000.0 *. (q.ol_recv -. q.ol_scheduled)) :: !e2e
      end)
    reqs;
  (* Second replay at the same seed/schedule: open-loop traffic must be
     a deterministic function of (spec, seed) end to end. *)
  let reqs2 =
    Array.map (fun q -> { q with ol_sent = -1.0; ol_recv = -1.0 }) reqs
  in
  let responses2, _ = open_loop_run ~port ~nconns ~reqs:reqs2 in
  Server.stop server;
  let deterministic = responses1 = responses2 in
  let incomplete = n - !completed in
  let qarr = Array.of_list !queueing and earr = Array.of_list !e2e in
  let quant arr p = if Array.length arr = 0 then 0.0 else Summary.quantile arr p in
  note
    "workload=%s arrivals=%d completed=%d incomplete=%d span=%.1fs \
     compression=%.3g wall=%.2fs"
    label n !completed incomplete span compression wall;
  note "queueing ms: p50=%.2f p95=%.2f max=%.2f" (quant qarr 0.5)
    (quant qarr 0.95) (quant qarr 1.0);
  note "e2e ms: p50=%.2f p95=%.2f p99=%.2f max=%.2f" (quant earr 0.5)
    (quant earr 0.95) (quant earr 0.99) (quant earr 1.0);
  note "replay deterministic across two runs: %s"
    (if deterministic then "yes" else "NO");
  let json =
    Printf.sprintf
      "{\"spec\": %S, \"open_loop\": true, \"arrivals\": %d, \"completed\": \
       %d, \"incomplete\": %d, \"span_sec\": %.6g, \"compression\": %.6g, \
       \"wall_sec\": %.6g, \"queueing_ms\": {\"p50\": %.6g, \"p95\": %.6g, \
       \"max\": %.6g}, \"e2e_ms\": {\"p50\": %.6g, \"p95\": %.6g, \"p99\": \
       %.6g, \"max\": %.6g}, \"deterministic_replay\": %b}"
      label n !completed incomplete span compression wall (quant qarr 0.5)
      (quant qarr 0.95) (quant qarr 1.0) (quant earr 0.5) (quant earr 0.95)
      (quant earr 0.99) (quant earr 1.0) deterministic
  in
  (json, incomplete, deterministic)

let serve_bench () =
  section "serve: suu-serve load test (in-process daemon, closed-loop clients)";
  let module Server = Suu_server.Server in
  let module Client = Suu_server.Client in
  let module P = Suu_server.Protocol in
  let tiny =
    match Sys.getenv_opt "SUU_PERF_SCALE" with
    | Some "tiny" -> true
    | _ -> false
  in
  let clients = if tiny then 4 else 8 in
  let per_client = if tiny then 30 else 250 in
  let sim_reps = if tiny then 12 else 48 in
  let workers = 4 and queue_capacity = 16 in
  let config = { Server.default_config with workers; queue_capacity } in
  let server = Server.start ~config () in
  let port = Server.port server in
  let uniform = W.Uniform { lo = 0.2; hi = 0.95 } in
  let pool =
    [|
      W.independent uniform ~n:12 ~m:4 ~seed:21;
      W.independent W.Near_one ~n:16 ~m:4 ~seed:22;
      W.random_chains uniform ~n:12 ~z:3 ~m:4 ~seed:23;
      W.forest uniform ~n:12 ~trees:2 ~orientation:`Mixed ~m:4 ~seed:24;
    |]
  in
  (* Mixed closed-loop distribution: simulate dominates (it is the
     expensive request), a slice of it rides the LP-free online tier
     (lzf/backfill, counted as plan-cache bypasses), and the rest
     exercise parsing, caching and stats. *)
  let pick_body rng =
    let inst = pool.(Suu_prng.Rng.int rng (Array.length pool)) in
    let roll = Suu_prng.Rng.int rng 100 in
    if roll < 30 then
      P.Simulate { inst; policy = "auto"; reps = sim_reps; seed = roll }
    else if roll < 40 then
      P.Simulate
        { inst; policy = (if roll land 1 = 0 then "lzf" else "backfill");
          reps = sim_reps; seed = roll }
    else if roll < 65 then P.Plan { inst; policy = "auto"; seed = roll }
    else if roll < 80 then P.Describe inst
    else if roll < 95 then P.Lower_bound inst
    else P.Stats
  in
  let t0 = Unix.gettimeofday () in
  let slots = Array.make clients ([], 0, 0, 0) in
  let client_threads =
    List.init clients (fun i ->
        Thread.create
          (fun () ->
            let rng = Suu_prng.Rng.create ~seed:(9000 + i) in
            let c = Client.connect ~port () in
            let lats = ref [] and ok = ref 0 and rej = ref 0 and err = ref 0 in
            for _ = 1 to per_client do
              let body = pick_body rng in
              let s = Unix.gettimeofday () in
              (match Client.call c body with
              | P.Ok _ -> incr ok
              | P.Err { code = P.Overloaded; _ } -> incr rej
              | P.Err _ -> incr err);
              lats := (Unix.gettimeofday () -. s) :: !lats
            done;
            Client.close c;
            slots.(i) <- (!lats, !ok, !rej, !err))
          ())
  in
  List.iter Thread.join client_threads;
  let results = Array.to_list slots in
  let wall = Unix.gettimeofday () -. t0 in
  let stats_fields =
    let c = Client.connect ~port () in
    let fields = Client.stats c () in
    Client.close c;
    fields
  in
  Server.stop server;
  let lats =
    Array.of_list (List.concat_map (fun (l, _, _, _) -> l) results)
  in
  let sum f = List.fold_left (fun a r -> a + f r) 0 results in
  let ok = sum (fun (_, k, _, _) -> k) in
  let rejects = sum (fun (_, _, r, _) -> r) in
  let errors = sum (fun (_, _, _, e) -> e) in
  let total = Array.length lats in
  let q p = 1000.0 *. Summary.quantile lats p in
  note "clients=%d requests=%d wall=%.2fs throughput=%.1f req/s" clients
    total wall
    (float_of_int total /. wall);
  note "latency ms: p50=%.2f p95=%.2f p99=%.2f max=%.2f" (q 0.5) (q 0.95)
    (q 0.99) (q 1.0);
  note "ok=%d rejected=%d errors=%d (reject rate %.1f%%)" ok rejects errors
    (100.0 *. float_of_int rejects /. float_of_int (max 1 total));
  let cache_stat k =
    match List.assoc_opt k stats_fields with Some v -> v | None -> "0"
  in
  note "server counters: plan_cache_hits=%s plan_cache_misses=%s \
        plan_cache_evictions=%s bypass=%s hit_rate=%s solver=%s"
    (cache_stat "plan_cache_hits")
    (cache_stat "plan_cache_misses")
    (cache_stat "plan_cache_evictions")
    (cache_stat "plan_cache_bypass")
    (cache_stat "plan_cache_hit_rate")
    (cache_stat "solver");
  (* Determinism over the wire: the same simulate request must yield
     byte-identical response frames at any worker/domain count. *)
  let sim_body =
    P.Simulate { inst = pool.(0); policy = "auto"; reps = sim_reps; seed = 5 }
  in
  let response_bytes ~workers ~sim_jobs =
    let s =
      Server.start
        ~config:{ Server.default_config with workers; sim_jobs }
        ()
    in
    let c = Client.connect ~port:(Server.port s) () in
    let r = P.response_to_string (Client.call c sim_body) in
    Client.close c;
    Server.stop s;
    r
  in
  let r1 = response_bytes ~workers:1 ~sim_jobs:(Some 1) in
  let r4 = response_bytes ~workers:4 ~sim_jobs:(Some 4) in
  let deterministic = String.equal r1 r4 in
  note "simulate response bit-identical at (workers=1, jobs=1) vs \
        (workers=4, jobs=4): %s"
    (if deterministic then "yes" else "NO");
  (* Capture phase quantiles before the connection-scale pass so the
     gated p50s reflect the mixed load test above, not thousands of
     cheap describes. *)
  let phases_buf = Buffer.create 512 in
  phases_json phases_buf ~indent:2;
  let cs_json, cs_dropped, cs_mismatched = connection_scale () in
  let wl =
    match !workload_spec with
    | None -> None
    | Some spec -> Some (open_loop_replay ~tiny spec)
  in
  let buf = Buffer.create 2048 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  bpf "{\n";
  bpf "  \"experiment\": \"serve\",\n";
  bpf "  \"scale\": \"%s\",\n" (if tiny then "tiny" else "full");
  bpf "  \"config\": {\"clients\": %d, \"per_client\": %d, \"workers\": %d, \
       \"queue_capacity\": %d, \"sim_reps\": %d},\n"
    clients per_client workers queue_capacity sim_reps;
  bpf "  \"wall_sec\": %.6g,\n" wall;
  bpf "  \"throughput_rps\": %.6g,\n" (float_of_int total /. wall);
  bpf "  \"latency_ms\": {\"p50\": %.6g, \"p95\": %.6g, \"p99\": %.6g, \
       \"max\": %.6g},\n"
    (q 0.5) (q 0.95) (q 0.99) (q 1.0);
  bpf "  \"ok\": %d,\n" ok;
  bpf "  \"rejected\": %d,\n" rejects;
  bpf "  \"errors\": %d,\n" errors;
  bpf "  \"reject_rate\": %.6g,\n"
    (float_of_int rejects /. float_of_int (max 1 total));
  bpf "  \"plan_cache_hits\": %s,\n" (cache_stat "plan_cache_hits");
  bpf "  \"plan_cache_misses\": %s,\n" (cache_stat "plan_cache_misses");
  bpf "  \"plan_cache_evictions\": %s,\n" (cache_stat "plan_cache_evictions");
  (* LP-free requests never probe the cache: they are counted here and
     excluded from the hit-rate denominator by construction. *)
  bpf "  \"plan_cache_bypass\": %s,\n" (cache_stat "plan_cache_bypass");
  bpf "  \"plan_cache_hit_rate\": %s,\n" (cache_stat "plan_cache_hit_rate");
  bpf "  \"solver\": \"%s\",\n" (cache_stat "solver");
  bpf "  \"deterministic_over_the_wire\": %b,\n" deterministic;
  bpf "  \"connection_scale\": %s,\n" cs_json;
  (* null when the bench ran without --workload: the gate only audits
     the open-loop section when a replay actually happened. *)
  bpf "  \"workload\": %s,\n"
    (match wl with Some (j, _, _) -> j | None -> "null");
  (* The load-tested server runs in this process, so the registry holds
     its request-phase spans (parse / queue_wait / execute / write). *)
  bpf "  \"phases\": %s\n" (Buffer.contents phases_buf);
  bpf "}\n";
  let oc = open_out "BENCH_serve.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  note "\nwrote BENCH_serve.json";
  if errors > 0 then failwith "serve bench saw unexpected error responses";
  if not deterministic then
    failwith "serve bench: simulate responses differ across worker counts";
  if cs_dropped > 0 || cs_mismatched > 0 then
    failwith
      (Printf.sprintf
         "serve bench connection-scale: %d dropped, %d mismatched connections"
         cs_dropped cs_mismatched);
  match wl with
  | None -> ()
  | Some (_, incomplete, wl_deterministic) ->
      if incomplete > 0 then
        failwith
          (Printf.sprintf
             "serve bench workload replay: %d arrivals never completed"
             incomplete);
      if not wl_deterministic then
        failwith
          "serve bench workload replay: responses differ across two runs at \
           the same seed"

(* ------------------------------------------------------------------ *)
(* chaos — the fault-tolerance harness: an in-process server with the
   fault injector armed (dropped, delayed, corrupted and torn replies,
   plus injected worker crashes) hammered by retrying clients.  The
   claim under test is that bounded retries recover EVERY request —
   success_rate below 1.0 fails the bench (and the gate), because a
   lost request under these fault rates means the retry logic, not the
   network, is broken. *)

(* chaos --router: two in-process shards behind a router; the shard
   owning the first pool instance's keys is stopped mid-load.  The
   router must mark it down, re-route its keyspace, and every client
   request must still complete — the scale-out analogue of the
   single-server retry claim below.  Returns the JSON object embedded
   as BENCH_chaos.json's "router" section. *)
let chaos_router_run () =
  let module Server = Suu_server.Server in
  let module Client = Suu_server.Client in
  let module Router = Suu_router.Router in
  let module Ring = Suu_router.Ring in
  let module P = Suu_server.Protocol in
  note "";
  section "chaos --router: shard kill mid-load behind the router";
  let tiny =
    match Sys.getenv_opt "SUU_PERF_SCALE" with
    | Some "tiny" -> true
    | _ -> false
  in
  let clients = if tiny then 4 else 8 in
  let per_client = if tiny then 25 else 100 in
  let sim_reps = if tiny then 8 else 32 in
  let uniform = W.Uniform { lo = 0.2; hi = 0.95 } in
  let pool =
    [|
      W.independent uniform ~n:12 ~m:4 ~seed:31;
      W.random_chains uniform ~n:12 ~z:3 ~m:4 ~seed:32;
      W.forest uniform ~n:12 ~trees:2 ~orientation:`Mixed ~m:4 ~seed:33;
    |]
  in
  let pick_body rng =
    let inst = pool.(Suu_prng.Rng.int rng (Array.length pool)) in
    let roll = Suu_prng.Rng.int rng 100 in
    if roll < 35 then
      P.Simulate { inst; policy = "auto"; reps = sim_reps; seed = roll }
    else if roll < 60 then P.Plan { inst; policy = "auto"; seed = roll }
    else if roll < 85 then P.Describe inst
    else P.Lower_bound inst
  in
  let config = { Server.default_config with workers = 4; queue_capacity = 32 } in
  let s1 = Server.start ~config () in
  let s2 = Server.start ~config () in
  let spec s =
    let port = Server.port s in
    { Router.id = Printf.sprintf "127.0.0.1:%d" port; host = "127.0.0.1";
      port; child = None; respawn = None }
  in
  let specs = [ spec s1; spec s2 ] in
  let router =
    Router.start
      ~config:
        { Router.default_config with health_interval_ms = 100;
          timeout_ms = 2_000; retries = 1 }
      ~shards:specs ()
  in
  (* Kill the shard that owns the first pool instance's digest, so the
     victim is guaranteed to own live keys and re-routing is actually
     exercised. *)
  let victim, victim_id =
    let ring = Ring.create (List.map (fun (sp : Router.shard_spec) -> sp.id) specs) in
    let digest =
      match P.instance_digest (P.Describe pool.(0)) with
      | Some d -> d
      | None -> assert false
    in
    match Ring.route ring ~live:(fun _ -> true) digest with
    | Some id when id = (List.nth specs 0).id -> (s1, id)
    | Some id -> (s2, id)
    | None -> assert false
  in
  let tracked =
    [ "router.route"; "router.failover"; "router.health.mark_down";
      "router.health.mark_up" ]
  in
  let sample () =
    List.map
      (fun n -> (n, Suu_obs.Counter.get (Suu_obs.Registry.counter n)))
      tracked
  in
  let before = sample () in
  let total = clients * per_client in
  let progress = Atomic.make 0 in
  let killer =
    Thread.create
      (fun () ->
        (* a third of the way through the load, the shard dies *)
        while Atomic.get progress < total / 3 do
          Thread.delay 0.005
        done;
        note "killing shard %s at %d/%d requests" victim_id
          (Atomic.get progress) total;
        Server.stop victim)
      ()
  in
  let port = Router.port router in
  let t0 = Unix.gettimeofday () in
  let slots = Array.make clients (0, 0) in
  let threads =
    List.init clients (fun i ->
        Thread.create
          (fun () ->
            let rng = Suu_prng.Rng.create ~seed:(9200 + i) in
            let c =
              Client.connect ~port ~retries:8 ~timeout_ms:2_000 ~backoff_ms:5
                ~retry_seed:(7200 + i) ()
            in
            let done_ = ref 0 and failed = ref 0 in
            for _ = 1 to per_client do
              (match Client.call c (pick_body rng) with
              | P.Ok _ -> incr done_
              | P.Err _ -> incr failed
              | exception (Client.Protocol_failure _ | Unix.Unix_error _) ->
                  incr failed);
              Atomic.incr progress
            done;
            Client.close c;
            slots.(i) <- (!done_, !failed))
          ())
  in
  List.iter Thread.join threads;
  Thread.join killer;
  let wall = Unix.gettimeofday () -. t0 in
  (* settle health state before reading it *)
  Router.check_health router;
  let live = List.length (Router.live_shards router) in
  let after = sample () in
  let delta n = List.assoc n after - List.assoc n before in
  Router.stop router;
  Server.stop s1;
  Server.stop s2;
  let completed = Array.fold_left (fun a (d, _) -> a + d) 0 slots in
  let failed = Array.fold_left (fun a (_, f) -> a + f) 0 slots in
  let success_rate = float_of_int completed /. float_of_int total in
  note "router chaos: %d/%d completed (%.1f%%) wall=%.2fs" completed total
    (100.0 *. success_rate) wall;
  note "router: routed=%d failovers=%d mark_down=%d mark_up=%d live=%d/2"
    (delta "router.route") (delta "router.failover")
    (delta "router.health.mark_down")
    (delta "router.health.mark_up") live;
  let buf = Buffer.create 512 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  bpf "{\n";
  bpf "    \"shards\": 2,\n";
  bpf "    \"killed_shard\": \"%s\",\n" victim_id;
  bpf "    \"requests\": %d,\n" total;
  bpf "    \"completed\": %d,\n" completed;
  bpf "    \"failed\": %d,\n" failed;
  bpf "    \"success_rate\": %.6g,\n" success_rate;
  bpf "    \"routed\": %d,\n" (delta "router.route");
  bpf "    \"failovers\": %d,\n" (delta "router.failover");
  bpf "    \"mark_down\": %d,\n" (delta "router.health.mark_down");
  bpf "    \"live_shards_after\": %d\n" live;
  bpf "  }";
  if delta "router.health.mark_down" < 1 then
    failwith "chaos --router: the dead shard was never marked down";
  if success_rate < 1.0 then
    failwith
      (Printf.sprintf
         "chaos --router: %d of %d requests lost despite failover" failed
         total);
  Buffer.contents buf

(* Set by the --router flag on the bench command line; the chaos
   experiment then runs the shard-kill scenario too and embeds its
   section in BENCH_chaos.json (the gate requires it in CI). *)
let chaos_router_enabled = ref false

let chaos_bench () =
  section "chaos: fault-injected suu-serve vs retrying clients";
  let module Server = Suu_server.Server in
  let module Client = Suu_server.Client in
  let module Faults = Suu_server.Faults in
  let module P = Suu_server.Protocol in
  let tiny =
    match Sys.getenv_opt "SUU_PERF_SCALE" with
    | Some "tiny" -> true
    | _ -> false
  in
  let clients = if tiny then 4 else 8 in
  let per_client = if tiny then 25 else 150 in
  let sim_reps = if tiny then 8 else 32 in
  let retries = 8 and timeout_ms = 400 in
  let workers = 4 and queue_capacity = 32 in
  let fault_config =
    match
      Faults.of_spec
        "drop=0.08,delay=0.08:10,error=0.04,kill=0.04,crash=0.04,seed=1234"
    with
    | Result.Ok c -> c
    | Result.Error msg -> failwith ("chaos bench: bad fault spec: " ^ msg)
  in
  (* The injector, the server workers and the clients all share this
     process's registry; counters are sampled before and after so the
     artifact reports this run's deltas even when other benches ran
     first in the same process. *)
  let tracked =
    [ "faults.injected.drop"; "faults.injected.delay";
      "faults.injected.error"; "faults.injected.kill";
      "faults.injected.crash"; "server.worker.restarts"; "client.retries";
      "client.timeouts"; "client.reconnects"; "client.giveups" ]
  in
  let sample () =
    List.map
      (fun n -> (n, Suu_obs.Counter.get (Suu_obs.Registry.counter n)))
      tracked
  in
  let before = sample () in
  let config =
    { Server.default_config with
      workers; queue_capacity; faults = Some fault_config }
  in
  let server = Server.start ~config () in
  let port = Server.port server in
  let uniform = W.Uniform { lo = 0.2; hi = 0.95 } in
  let pool =
    [|
      W.independent uniform ~n:12 ~m:4 ~seed:31;
      W.random_chains uniform ~n:12 ~z:3 ~m:4 ~seed:32;
      W.forest uniform ~n:12 ~trees:2 ~orientation:`Mixed ~m:4 ~seed:33;
    |]
  in
  let pick_body rng =
    let inst = pool.(Suu_prng.Rng.int rng (Array.length pool)) in
    let roll = Suu_prng.Rng.int rng 100 in
    if roll < 35 then
      P.Simulate { inst; policy = "auto"; reps = sim_reps; seed = roll }
    else if roll < 60 then P.Plan { inst; policy = "auto"; seed = roll }
    else if roll < 80 then P.Describe inst
    else if roll < 95 then P.Lower_bound inst
    else P.Stats
  in
  let t0 = Unix.gettimeofday () in
  let slots = Array.make clients ([], 0, 0) in
  let client_threads =
    List.init clients (fun i ->
        Thread.create
          (fun () ->
            let rng = Suu_prng.Rng.create ~seed:(9100 + i) in
            let c =
              Client.connect ~port ~retries ~timeout_ms ~backoff_ms:5
                ~retry_seed:(7100 + i) ()
            in
            let lats = ref [] and done_ = ref 0 and failed = ref 0 in
            for _ = 1 to per_client do
              let body = pick_body rng in
              let s = Unix.gettimeofday () in
              (match Client.call c body with
              | P.Ok _ -> incr done_
              | P.Err _ -> incr failed
              | exception (Client.Protocol_failure _ | Unix.Unix_error _) ->
                  incr failed);
              lats := (Unix.gettimeofday () -. s) :: !lats
            done;
            Client.close c;
            slots.(i) <- (!lats, !done_, !failed))
          ())
  in
  List.iter Thread.join client_threads;
  let wall = Unix.gettimeofday () -. t0 in
  Server.stop server;
  let results = Array.to_list slots in
  let completed = List.fold_left (fun a (_, d, _) -> a + d) 0 results in
  let failed = List.fold_left (fun a (_, _, f) -> a + f) 0 results in
  let requests = clients * per_client in
  let success_rate = float_of_int completed /. float_of_int requests in
  let lats = Array.of_list (List.concat_map (fun (l, _, _) -> l) results) in
  let q p = 1000.0 *. Summary.quantile lats p in
  let after = sample () in
  let delta name =
    List.assoc name after - List.assoc name before
  in
  let injected_total =
    List.fold_left
      (fun a n -> a + delta n)
      0
      [ "faults.injected.drop"; "faults.injected.delay";
        "faults.injected.error"; "faults.injected.kill";
        "faults.injected.crash" ]
  in
  note "faults: %s" (Faults.to_spec fault_config);
  note "clients=%d requests=%d wall=%.2fs throughput=%.1f req/s" clients
    requests wall
    (float_of_int requests /. wall);
  note "completed=%d failed=%d (success rate %.1f%%)" completed failed
    (100.0 *. success_rate);
  note
    "injected: drop=%d delay=%d error=%d kill=%d crash=%d (total %d), \
     worker_restarts=%d"
    (delta "faults.injected.drop")
    (delta "faults.injected.delay")
    (delta "faults.injected.error")
    (delta "faults.injected.kill")
    (delta "faults.injected.crash")
    injected_total
    (delta "server.worker.restarts");
  note "client: retries=%d timeouts=%d reconnects=%d giveups=%d"
    (delta "client.retries") (delta "client.timeouts")
    (delta "client.reconnects") (delta "client.giveups");
  note "latency ms (incl. retries): p50=%.2f p95=%.2f p99=%.2f max=%.2f"
    (q 0.5) (q 0.95) (q 0.99) (q 1.0);
  let buf = Buffer.create 2048 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  bpf "{\n";
  bpf "  \"experiment\": \"chaos\",\n";
  bpf "  \"scale\": \"%s\",\n" (if tiny then "tiny" else "full");
  bpf "  \"config\": {\"clients\": %d, \"per_client\": %d, \"workers\": %d, \
       \"queue_capacity\": %d, \"sim_reps\": %d, \"retries\": %d, \
       \"timeout_ms\": %d, \"faults\": \"%s\"},\n"
    clients per_client workers queue_capacity sim_reps retries timeout_ms
    (Faults.to_spec fault_config);
  bpf "  \"wall_sec\": %.6g,\n" wall;
  bpf "  \"throughput_rps\": %.6g,\n" (float_of_int requests /. wall);
  bpf "  \"requests\": %d,\n" requests;
  bpf "  \"completed\": %d,\n" completed;
  bpf "  \"failed\": %d,\n" failed;
  bpf "  \"success_rate\": %.6g,\n" success_rate;
  bpf "  \"injected\": {\"drop\": %d, \"delay\": %d, \"error\": %d, \
       \"kill\": %d, \"crash\": %d, \"total\": %d},\n"
    (delta "faults.injected.drop")
    (delta "faults.injected.delay")
    (delta "faults.injected.error")
    (delta "faults.injected.kill")
    (delta "faults.injected.crash")
    injected_total;
  bpf "  \"worker_restarts\": %d,\n" (delta "server.worker.restarts");
  bpf "  \"client_retries\": %d,\n" (delta "client.retries");
  bpf "  \"client_timeouts\": %d,\n" (delta "client.timeouts");
  bpf "  \"client_reconnects\": %d,\n" (delta "client.reconnects");
  bpf "  \"client_giveups\": %d,\n" (delta "client.giveups");
  bpf "  \"latency_ms\": {\"p50\": %.6g, \"p95\": %.6g, \"p99\": %.6g, \
       \"max\": %.6g},\n"
    (q 0.5) (q 0.95) (q 0.99) (q 1.0);
  (match if !chaos_router_enabled then Some (chaos_router_run ()) else None with
  | Some section -> bpf "  \"router\": %s\n" section
  | None -> bpf "  \"router\": null\n");
  bpf "}\n";
  let oc = open_out "BENCH_chaos.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  note "\nwrote BENCH_chaos.json";
  if injected_total = 0 then
    failwith "chaos bench: fault injector never fired";
  if success_rate < 1.0 then
    failwith
      (Printf.sprintf
         "chaos bench: %d of %d requests lost despite retries" failed
         requests)

(* ------------------------------------------------------------------ *)
(* replay — the incremental-sweep experiment: a small Table-1-style
   ratio sweep is run four ways and the outputs compared byte-for-byte:

     direct   no store at all (plain Runner.makespans);
     cold     fresh store A — computes everything, commits batches;
     warm     store A again — serves everything from committed batches;
     resumed  fresh store B first runs a partial sweep (half the cells,
              then half the replications of the next cell), then gets a
              torn record appended to its log — the on-disk state a
              [kill -9] mid-append leaves — and the full sweep re-runs
              over it.

   The claim gated in CI: all four outputs are identical (memoized and
   resumed sweeps are certified equal to the direct computation), the
   warm pass is served from the store, and recovery truncated the torn
   tail.  Writes BENCH_replay.json. *)

let replay_bench () =
  section "replay: store-memoized sweep - cold vs warm vs kill-resume";
  let module RS = Suu_store.Result_store in
  let tiny =
    match Sys.getenv_opt "SUU_PERF_SCALE" with
    | Some "tiny" -> true
    | _ -> false
  in
  let sizes = if tiny then [ 8; 12 ] else [ 16; 32; 64 ] in
  let reps = if tiny then 10 else 40 in
  let m = 4 and seed = 515 in
  let hazard = W.Uniform { lo = 0.2; hi = 0.95 } in
  let cells =
    List.concat_map
      (fun n ->
        let inst = W.independent hazard ~n ~m ~seed:(seed + n) in
        List.map
          (fun (label, policy) -> (n, label, inst, policy))
          [ ("suu-i-sem", Suu_core.Suu_i_sem.policy inst);
            ("greedy", Suu_core.Baselines.greedy_completion inst);
            ("round-robin", Suu_core.Baselines.round_robin inst) ])
      sizes
  in
  (* One line per cell with round-trip floats: byte equality of this
     string is bit equality of every replication summary. *)
  let run_cells store cs ~reps =
    let buf = Buffer.create 512 in
    List.iter
      (fun (n, label, inst, policy) ->
        let xs =
          match store with
          | None -> Runner.makespans inst policy ~seed ~reps
          | Some st ->
              Suu_store.Memo.makespans ~store:st ~policy_name:label inst
                policy ~seed ~reps
        in
        let s = Summary.of_array xs in
        Buffer.add_string buf
          (Printf.sprintf "%d %s %.17g %.17g %.17g %.17g\n" n label
             s.Summary.mean s.Summary.stddev s.Summary.min s.Summary.max))
      cs;
    Buffer.contents buf
  in
  let rec rm_rf path =
    match Unix.lstat path with
    | { Unix.st_kind = Unix.S_DIR; _ } ->
        Array.iter
          (fun e -> rm_rf (Filename.concat path e))
          (Sys.readdir path);
        Unix.rmdir path
    | _ -> Sys.remove path
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  in
  let dir_a = "_bench_replay_store_a" and dir_b = "_bench_replay_store_b" in
  rm_rf dir_a;
  rm_rf dir_b;
  let counter name = Suu_obs.Registry.counter ("store.memo." ^ name) in
  let sample () =
    (Suu_obs.Counter.get (counter "served"),
     Suu_obs.Counter.get (counter "computed"))
  in
  (* direct: the reference output, no store anywhere. *)
  let direct = run_cells None cells ~reps in
  (* cold: fresh store, everything computed and committed. *)
  let store_a = RS.open_store dir_a in
  let t0 = Unix.gettimeofday () in
  let cold = run_cells (Some store_a) cells ~reps in
  let cold_sec = Unix.gettimeofday () -. t0 in
  RS.close store_a;
  (* warm: same store, everything served. *)
  let store_a = RS.open_store dir_a in
  let served0, computed0 = sample () in
  let t0 = Unix.gettimeofday () in
  let warm = run_cells (Some store_a) cells ~reps in
  let warm_sec = Unix.gettimeofday () -. t0 in
  let served1, computed1 = sample () in
  let warm_served = served1 - served0
  and warm_computed = computed1 - computed0 in
  let stats_a = RS.stats store_a in
  RS.close store_a;
  (* resumed: emulate a sweep killed mid-run.  Pass 1 completes half
     the cells, then commits only half the replications of the next
     cell; then a torn frame is appended to the log — exactly what a
     kill -9 between [write] and [fsync] can leave — and pass 2 runs
     the full sweep over the recovered store. *)
  let store_b = RS.open_store dir_b in
  let half = List.length cells / 2 in
  let partial = List.filteri (fun i _ -> i < half) cells in
  ignore (run_cells (Some store_b) partial ~reps);
  (match List.nth_opt cells half with
  | Some cell -> ignore (run_cells (Some store_b) [ cell ] ~reps:(reps / 2))
  | None -> ());
  RS.close store_b;
  let log_b = Filename.concat dir_b "results.log" in
  let oc =
    open_out_gen [ Open_append; Open_binary ] 0o644 log_b
  in
  output_string oc "\x40\x00\x00\x00\xde\xad\xbe\xef tor";
  close_out oc;
  let truncated0 =
    Suu_obs.Counter.get (Suu_obs.Registry.counter "store.truncated")
  in
  let store_b = RS.open_store dir_b in
  let truncated1 =
    Suu_obs.Counter.get (Suu_obs.Registry.counter "store.truncated")
  in
  let resumed = run_cells (Some store_b) cells ~reps in
  RS.close store_b;
  let identical = String.equal direct cold && String.equal cold warm in
  let resumed_identical = String.equal direct resumed in
  let truncated = truncated1 - truncated0 in
  let total_reps = List.length cells * reps in
  note "cells=%d reps/cell=%d (%d replications per full sweep)"
    (List.length cells) reps total_reps;
  note "cold %.4fs, warm %.4fs (speedup %.1fx)" cold_sec warm_sec
    (cold_sec /. Float.max warm_sec 1e-9);
  note "warm pass: served=%d computed=%d" warm_served warm_computed;
  note "outputs identical (direct=cold=warm): %b" identical;
  note "kill-resume output identical: %b (recovery truncated %d torn tail)"
    resumed_identical truncated;
  let buf = Buffer.create 1024 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  bpf "{\n";
  bpf "  \"experiment\": \"replay\",\n";
  bpf "  \"scale\": \"%s\",\n" (if tiny then "tiny" else "full");
  bpf "  \"config\": {\"cells\": %d, \"reps\": %d, \"machines\": %d, \
       \"seed\": %d},\n"
    (List.length cells) reps m seed;
  bpf "  \"cold_sec\": %.6g,\n" cold_sec;
  bpf "  \"warm_sec\": %.6g,\n" warm_sec;
  bpf "  \"speedup\": %.6g,\n" (cold_sec /. Float.max warm_sec 1e-9);
  bpf "  \"identical\": %b,\n" identical;
  bpf "  \"resumed_identical\": %b,\n" resumed_identical;
  bpf "  \"torn_tail_truncated\": %d,\n" truncated;
  bpf "  \"warm_served\": %d,\n" warm_served;
  bpf "  \"warm_computed\": %d,\n" warm_computed;
  bpf "  \"store\": {\"keys\": %d, \"records\": %d, \"reps\": %d, \
       \"file_bytes\": %d}\n"
    stats_a.RS.keys stats_a.RS.records stats_a.RS.reps stats_a.RS.file_bytes;
  bpf "}\n";
  let oc = open_out "BENCH_replay.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  note "\nwrote BENCH_replay.json";
  rm_rf dir_a;
  rm_rf dir_b;
  if not identical then
    failwith "replay bench: store-served sweep diverged from direct run";
  if not resumed_identical then
    failwith "replay bench: kill-resume sweep diverged from direct run";
  if warm_served <> total_reps || warm_computed <> 0 then
    failwith
      (Printf.sprintf
         "replay bench: warm pass not fully served (served=%d computed=%d \
          of %d)"
         warm_served warm_computed total_reps)

(* ------------------------------------------------------------------ *)
(* shard — the scale-out experiment: the same closed-loop load measured
   against (a) a direct in-process suu-serve, (b) the router fronting
   one shard (pure proxy overhead), and (c) the router fronting two
   shards; then a byte-identity sweep proving every routed response is
   identical to the unrouted server's.  All servers share this
   process's plan cache, so a common warmup pass makes the comparison
   about the wire path, not about who populated the cache first.
   Writes BENCH_shard.json; the gate enforces the proxy-overhead floor
   and byte identity. *)

let shard_bench () =
  section "shard: routed vs direct suu-serve (proxy overhead, byte identity)";
  let module Server = Suu_server.Server in
  let module Client = Suu_server.Client in
  let module Router = Suu_router.Router in
  let module P = Suu_server.Protocol in
  let tiny =
    match Sys.getenv_opt "SUU_PERF_SCALE" with
    | Some "tiny" -> true
    | _ -> false
  in
  let clients = if tiny then 4 else 8 in
  let per_client = if tiny then 30 else 250 in
  let sim_reps = if tiny then 32 else 160 in
  let workers = 4 and queue_capacity = 64 in
  let uniform = W.Uniform { lo = 0.2; hi = 0.95 } in
  let pool =
    [|
      W.independent uniform ~n:12 ~m:4 ~seed:21;
      W.independent W.Near_one ~n:16 ~m:4 ~seed:22;
      W.random_chains uniform ~n:12 ~z:3 ~m:4 ~seed:23;
      W.forest uniform ~n:12 ~trees:2 ~orientation:`Mixed ~m:4 ~seed:24;
    |]
  in
  (* Simulate-heavy mix: the proxy-overhead ratio is only meaningful
     under a compute-bound load; a ping-pong mix would just measure
     the extra hop twice. *)
  let pick_body rng =
    let inst = pool.(Suu_prng.Rng.int rng (Array.length pool)) in
    let roll = Suu_prng.Rng.int rng 100 in
    if roll < 70 then
      P.Simulate { inst; policy = "auto"; reps = sim_reps; seed = roll }
    else if roll < 80 then P.Plan { inst; policy = "auto"; seed = roll }
    else if roll < 88 then P.Describe inst
    else if roll < 96 then P.Lower_bound inst
    else P.Stats
  in
  (* One closed-loop measurement against whatever is listening on
     [port]; returns (rps, ok, errors). *)
  let run_load ~port =
    let t0 = Unix.gettimeofday () in
    let slots = Array.make clients (0, 0) in
    let threads =
      List.init clients (fun i ->
          Thread.create
            (fun () ->
              let rng = Suu_prng.Rng.create ~seed:(9300 + i) in
              let c = Client.connect ~port ~retries:2 ~timeout_ms:30_000 () in
              let ok = ref 0 and err = ref 0 in
              for _ = 1 to per_client do
                (match Client.call c (pick_body rng) with
                | P.Ok _ -> incr ok
                | P.Err _ -> incr err
                | exception (Client.Protocol_failure _ | Unix.Unix_error _)
                  ->
                    incr err);
                ()
              done;
              Client.close c;
              slots.(i) <- (!ok, !err))
            ())
    in
    List.iter Thread.join threads;
    let wall = Unix.gettimeofday () -. t0 in
    let ok = Array.fold_left (fun a (k, _) -> a + k) 0 slots in
    let err = Array.fold_left (fun a (_, e) -> a + e) 0 slots in
    (float_of_int (clients * per_client) /. wall, ok, err)
  in
  let config = { Server.default_config with workers; queue_capacity } in
  let attach_spec s =
    let port = Server.port s in
    { Router.id = Printf.sprintf "127.0.0.1:%d" port; host = "127.0.0.1";
      port; child = None; respawn = None }
  in
  (* Warmup: populate the process-global plan cache for every pool
     instance so neither contestant pays the cold LP solves. *)
  let warm () =
    let s = Server.start ~config () in
    let c = Client.connect ~port:(Server.port s) () in
    Array.iter
      (fun inst ->
        ignore (Client.plan c ~policy:"auto" ~seed:0 inst);
        ignore (Client.simulate c ~policy:"auto" ~reps:sim_reps inst))
      pool;
    Client.close c;
    Server.stop s
  in
  warm ();
  (* (a) direct *)
  let direct = Server.start ~config () in
  let rps_direct, ok_d, err_d = run_load ~port:(Server.port direct) in
  Server.stop direct;
  note "direct:   %.1f req/s (ok=%d err=%d)" rps_direct ok_d err_d;
  (* (b) routed, one shard: the pure cost of the extra hop *)
  let c_route = Suu_obs.Registry.counter "router.route" in
  let route_before = Suu_obs.Counter.get c_route in
  let s1 = Server.start ~config () in
  let r1 = Router.start ~shards:[ attach_spec s1 ] () in
  let rps_routed1, ok_r1, err_r1 = run_load ~port:(Router.port r1) in
  Router.stop r1;
  Server.stop s1;
  note "routed-1: %.1f req/s (ok=%d err=%d)" rps_routed1 ok_r1 err_r1;
  (* (c) routed, two shards *)
  let sa = Server.start ~config () in
  let sb = Server.start ~config () in
  let r2 = Router.start ~shards:[ attach_spec sa; attach_spec sb ] () in
  let rps_routed2, ok_r2, err_r2 = run_load ~port:(Router.port r2) in
  let routed_requests =
    Suu_obs.Counter.get c_route - route_before
  in
  Router.stop r2;
  Server.stop sa;
  Server.stop sb;
  note "routed-2: %.1f req/s (ok=%d err=%d)" rps_routed2 ok_r2 err_r2;
  let ratio1 = rps_routed1 /. rps_direct in
  note "proxy overhead: routed-1 at %.1f%% of direct" (100.0 *. ratio1);
  (* Byte-identity sweep: every request type over every pool instance,
     raw frames compared between a direct server and the 2-shard
     router.  [stats] is excluded — a merged cluster view is not a
     single server's view by design. *)
  let raw_call ~port payload =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        ignore (Unix.write_substring fd payload 0 (String.length payload));
        let buf = Buffer.create 512 in
        let chunk = Bytes.create 4096 in
        let rec go () =
          let got = Unix.read fd chunk 0 (Bytes.length chunk) in
          if got > 0 then begin
            Buffer.add_subbytes buf chunk 0 got;
            let s = Buffer.contents buf in
            if
              String.length s >= 5
              && String.sub s (String.length s - 5) 5 = "done\n"
            then s
            else go ()
          end
          else Buffer.contents buf
        in
        go ())
  in
  let sweep_requests =
    List.concat_map
      (fun inst ->
        List.map
          (fun body -> P.request_to_string { P.id = None; deadline_ms = None; body })
          [ P.Describe inst; P.Lower_bound inst;
            P.Plan { inst; policy = "auto"; seed = 3 };
            P.Simulate { inst; policy = "auto"; reps = sim_reps; seed = 9 } ])
      (Array.to_list pool)
  in
  let direct = Server.start ~config () in
  let sa = Server.start ~config () in
  let sb = Server.start ~config () in
  let r = Router.start ~shards:[ attach_spec sa; attach_spec sb ] () in
  let mismatches =
    List.fold_left
      (fun acc req ->
        let d = raw_call ~port:(Server.port direct) req in
        let v = raw_call ~port:(Router.port r) req in
        if String.equal d v then acc else acc + 1)
      0 sweep_requests
  in
  Router.stop r;
  Server.stop sa;
  Server.stop sb;
  Server.stop direct;
  let byte_identical = mismatches = 0 in
  note "byte identity: %d/%d routed responses identical to direct%s"
    (List.length sweep_requests - mismatches)
    (List.length sweep_requests)
    (if byte_identical then "" else "  << MISMATCH");
  let buf = Buffer.create 2048 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  bpf "{\n";
  bpf "  \"experiment\": \"shard\",\n";
  bpf "  \"scale\": \"%s\",\n" (if tiny then "tiny" else "full");
  bpf "  \"config\": {\"clients\": %d, \"per_client\": %d, \"workers\": %d, \
       \"queue_capacity\": %d, \"sim_reps\": %d},\n"
    clients per_client workers queue_capacity sim_reps;
  bpf "  \"direct_rps\": %.6g,\n" rps_direct;
  bpf "  \"routed_1shard_rps\": %.6g,\n" rps_routed1;
  bpf "  \"routed_2shard_rps\": %.6g,\n" rps_routed2;
  bpf "  \"routed_vs_direct\": %.6g,\n" ratio1;
  bpf "  \"routed_requests\": %d,\n" routed_requests;
  bpf "  \"errors\": %d,\n" (err_d + err_r1 + err_r2);
  bpf "  \"sweep_requests\": %d,\n" (List.length sweep_requests);
  bpf "  \"sweep_mismatches\": %d,\n" mismatches;
  bpf "  \"byte_identical\": %b\n" byte_identical;
  bpf "}\n";
  let oc = open_out "BENCH_shard.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  note "\nwrote BENCH_shard.json";
  if err_d + err_r1 + err_r2 > 0 then
    failwith "shard bench saw error responses";
  if not byte_identical then
    failwith "shard bench: routed responses differ from direct server"

(* ------------------------------------------------------------------ *)
(* table1 — the Table-1 harness extended with the online family: for a
   matrix of synthetic and SWF trace-driven instances, measure every
   applicable registered policy's ratio-to-lower-bound AND its steps/sec
   (engine steps driven per wall second, policy construction included —
   the serve-path cost of choosing that policy).  The gate asserts the
   online tier's reason to exist: LZF must drive steps at least 5x
   faster than SUU-I-SEM on the same instances, and on single-machine
   near-one instances (where the work bound is tight) its measured
   ratio must stay within the Agnetis-Lidbetter 0.8531 guarantee,
   i.e. <= 1/0.8531. *)

let lzf_bound = 1.0 /. 0.8531

let table1 () =
  section
    "table1: online policies (lzf, backfill) vs LP policies and baselines \
     - ratio to lower bound + steps/sec";
  Suu_sched.Register.ensure ();
  let module R = Suu_core.Policy_registry in
  let tiny =
    match Sys.getenv_opt "SUU_PERF_SCALE" with
    | Some "tiny" -> true
    | _ -> false
  in
  let n = if tiny then 12 else 32 in
  let reps = if tiny then 6 else 20 in
  let swf_take = if tiny then 4 else 10 in
  let uniform = W.Uniform { lo = 0.2; hi = 0.95 } in
  let synthetic =
    [ W.independent W.Near_one ~n ~m:4 ~seed:61;
      W.independent uniform ~n ~m:4 ~seed:62;
      W.random_chains uniform ~n ~z:3 ~m:4 ~seed:63;
      W.forest uniform ~n ~trees:2 ~orientation:`Mixed ~m:4 ~seed:64 ]
  in
  let swf_file = "bench/workloads/sample20.swf" in
  let swf =
    if Sys.file_exists swf_file then
      let trace = Suu_workload.Swf.load_file swf_file in
      let pairs = Suu_workload.Swf.instances trace in
      Array.to_list
        (Array.sub pairs 0 (min swf_take (Array.length pairs)))
      |> List.map snd
    else begin
      note "warning: %s not found, skipping SWF rows" swf_file;
      []
    end
  in
  let rows =
    List.map (fun i -> ("synthetic", i)) synthetic
    @ List.map (fun i -> ("swf", i)) swf
  in
  (* Two timings per (instance, policy).  Cold: construction plus the
     first execution, before this digest's plans exist in the global
     plan cache — the latency a serve worker pays on a first-touch
     request, which is what the online tier shortcuts (the 5x
     LZF-vs-SEM floor gates this).  Warm: all [reps] executions
     end-to-end — steady-state policy cost per engine step.  The LP
     policies must be measured cold before anything else touches their
     digest; each policy appears exactly once per instance here, and
     SUU-I-SEM precedes SUU-I-OBL (which shares its plans) in registry
     order. *)
  let measure name inst ~bound ~seed =
    let t0 = Unix.gettimeofday () in
    match R.build name inst with
    | Error _ -> None
    | Ok policy ->
        (* Sequential: one request on one worker.  The domain pool's
           spin-up would otherwise dominate the numerator for cheap
           policies and hide exactly the LP cost being measured. *)
        let first = Runner.makespans ~jobs:1 inst policy ~seed ~reps:1 in
        let cold_wall = Float.max 1e-9 (Unix.gettimeofday () -. t0) in
        let cold_sps = first.(0) /. cold_wall in
        let t1 = Unix.gettimeofday () in
        let xs = Runner.makespans inst policy ~seed ~reps in
        let wall = Float.max 1e-9 (Unix.gettimeofday () -. t1) in
        let steps = Array.fold_left ( +. ) 0.0 xs in
        let mean = steps /. float_of_int reps in
        Some (mean /. Float.max bound 1e-9, steps /. wall, cold_sps, mean)
  in
  let all_rows = ref [] in
  List.iteri
    (fun k (kind, inst) ->
      let bound = LB.combined inst in
      let shape =
        Suu_dag.Classify.describe
          (Suu_dag.Classify.classify (Instance.dag inst))
      in
      let table =
        Table.create
          ~header:[ "policy"; "ratio"; "steps/s"; "cold st/s"; "E[T]" ]
      in
      let cols = ref [] in
      List.iter
        (fun name ->
          if name <> "auto" then
            match measure name inst ~bound ~seed:(500 + k) with
            | None -> ()
            | Some (ratio, sps, cold, mean) ->
                cols := (name, ratio, sps, cold, mean) :: !cols;
                Table.add_float_row table name [ ratio; sps; cold; mean ])
        (R.applicable inst);
      Printf.printf "%s (%s, %s): n=%d m=%d, bound %.2f\n" (Instance.name inst)
        kind shape (Instance.n inst) (Instance.m inst) bound;
      Table.print table;
      print_newline ();
      all_rows :=
        (kind, Instance.name inst, shape, inst, bound, List.rev !cols)
        :: !all_rows)
    rows;
  let all_rows = List.rev !all_rows in
  (* Within-run speedup floor: LZF vs SUU-I-SEM first-touch (cold
     plan cache) steps/sec, wherever both ran on a non-trivial
     instance.  One-job SWF rows are excluded: a one-step execution
     times scheduler overhead, not scheduling. *)
  let speedup_min =
    List.fold_left
      (fun acc (_, _, _, inst, _, cols) ->
        if Instance.n inst < 8 then acc
        else
          match
            ( List.find_opt (fun (p, _, _, _, _) -> p = "lzf") cols,
              List.find_opt (fun (p, _, _, _, _) -> p = "suu-i-sem") cols )
          with
          | Some (_, _, _, cl, _), Some (_, _, _, cs, _) when cs > 0.0 ->
              Float.min acc (cl /. cs)
          | _ -> acc)
      infinity all_rows
  in
  note "lzf vs suu-i-sem cold steps/sec speedup (min over instances): %s"
    (if speedup_min = infinity then "n/a"
     else Printf.sprintf "%.1fx" speedup_min);
  (* Single-machine near-one instances: the work bound is within ceil
     slack of E[T_OPT], so the measured LZF ratio directly tests the
     0.8531 guarantee.  More reps than the matrix rows: this is a hard
     gate, and the mean over few traces of a sum of exponentials is
     noisy. *)
  let sm_reps = if tiny then 60 else 200 in
  let single_machine =
    List.map
      (fun seed ->
        let inst = W.independent W.Near_one ~n:16 ~m:1 ~seed in
        let bound = LB.combined inst in
        let xs =
          makespans inst (Suu_sched.Lzf.policy inst) ~seed:(seed + 1)
            ~reps:sm_reps
        in
        let mean =
          Array.fold_left ( +. ) 0.0 xs /. float_of_int sm_reps
        in
        let r = mean /. Float.max bound 1e-9 in
        note "single-machine lzf %s: ratio %.4f (bound %.4f)"
          (Instance.name inst) r lzf_bound;
        (Instance.name inst, r))
      [ 71; 72 ]
  in
  (* Aggregate per-policy means for the JSON (satellite: policy-cost
     comparison without SUU_TRACE). *)
  let policy_names =
    List.sort_uniq compare
      (List.concat_map
         (fun (_, _, _, _, _, cols) ->
           List.map (fun (p, _, _, _, _) -> p) cols)
         all_rows)
  in
  let aggregate p =
    let rs, ss =
      List.fold_left
        (fun (rs, ss) (_, _, _, _, _, cols) ->
          match List.find_opt (fun (p', _, _, _, _) -> p' = p) cols with
          | Some (_, r, s, _, _) -> (r :: rs, s :: ss)
          | None -> (rs, ss))
        ([], []) all_rows
    in
    let mean l =
      List.fold_left ( +. ) 0.0 l /. float_of_int (max 1 (List.length l))
    in
    (mean rs, mean ss, List.length rs)
  in
  let buf = Buffer.create 4096 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  bpf "{\n";
  bpf "  \"experiment\": \"table1\",\n";
  bpf "  \"scale\": \"%s\",\n" (if tiny then "tiny" else "full");
  bpf "  \"config\": {\"n\": %d, \"reps\": %d, \"sm_reps\": %d},\n" n reps
    sm_reps;
  bpf "  \"lzf_bound\": %.6g,\n" lzf_bound;
  bpf "  \"synthetic_rows\": %d,\n" (List.length synthetic);
  bpf "  \"swf_rows\": %d,\n" (List.length swf);
  bpf "  \"lzf_vs_sem_speedup_min\": %s,\n"
    (if speedup_min = infinity then "null"
     else Printf.sprintf "%.6g" speedup_min);
  bpf "  \"single_machine_lzf\": [";
  List.iteri
    (fun i (name, r) ->
      bpf "%s{\"instance\": \"%s\", \"ratio\": %.6g}"
        (if i = 0 then "" else ", ")
        name r)
    single_machine;
  bpf "],\n";
  bpf "  \"policies\": [\n";
  List.iteri
    (fun i p ->
      let r, s, c = aggregate p in
      bpf "    {\"policy\": \"%s\", \"mean_ratio\": %.6g, \
           \"mean_steps_per_sec\": %.6g, \"rows\": %d}%s\n"
        p r s c
        (if i = List.length policy_names - 1 then "" else ","))
    policy_names;
  bpf "  ],\n";
  bpf "  \"rows\": [\n";
  List.iteri
    (fun i (kind, name, shape, inst, bound, cols) ->
      bpf "    {\"instance\": \"%s\", \"kind\": \"%s\", \"shape\": \"%s\", \
           \"n\": %d, \"m\": %d, \"lower_bound\": %.6g, \"policies\": ["
        name kind shape (Instance.n inst) (Instance.m inst) bound;
      List.iteri
        (fun j (p, r, s, cold, mk) ->
          bpf "%s{\"policy\": \"%s\", \"ratio\": %.6g, \
               \"steps_per_sec\": %.6g, \"cold_steps_per_sec\": %.6g, \
               \"mean_makespan\": %.6g}"
            (if j = 0 then "" else ", ")
            p r s cold mk)
        cols;
      bpf "]}%s\n" (if i = List.length all_rows - 1 then "" else ","))
    all_rows;
  bpf "  ]\n";
  bpf "}\n";
  let oc = open_out "BENCH_table1.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  note "\nwrote BENCH_table1.json"

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("e1", e1); ("e1m", e1m); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("e8", e8); ("a1", a1); ("a2", a2); ("a3", a3);
    ("perf", perf); ("table1", table1); ("serve", serve_bench);
    ("chaos", chaos_bench); ("replay", replay_bench);
    ("shard", shard_bench);
  ]

let () =
  let args =
    match Array.to_list Sys.argv with _ :: rest -> rest | [] -> []
  in
  let rec parse acc = function
    | [] -> List.rev acc
    | "--router" :: rest ->
        chaos_router_enabled := true;
        parse acc rest
    | "--connections" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n > 0 ->
            connections_target := n;
            parse acc rest
        | _ ->
            Printf.eprintf "--connections expects a positive integer, got %S\n"
              n;
            exit 2)
    | "--connections" :: [] ->
        prerr_endline "--connections expects a positive integer";
        exit 2
    | "--workload" :: spec :: rest ->
        workload_spec := Some spec;
        parse acc rest
    | "--workload" :: [] ->
        prerr_endline
          "--workload expects a spec: swf:FILE | poisson:RATE | bursty | \
           diurnal";
        exit 2
    | a :: rest -> parse (a :: acc) rest
  in
  let names = parse [] args in
  let requested =
    match names with [] -> List.map fst experiments | names -> names
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %S (have: %s)\n" name
            (String.concat ", " (List.map fst experiments));
          exit 1)
    requested;
  Printf.printf "\ntotal bench time: %.1f s\n" (Unix.gettimeofday () -. t0)
