(* Tests for the core SUU machinery: instances, assignments, the (LP1)
   relaxation, the Lemma-2 rounding (whose exact inequalities are asserted
   here), (LP2) with Lemma 6, lower bounds, oblivious serialization and
   the exact DP optimum. *)

module Dag = Suu_dag.Dag
module Instance = Suu_core.Instance
module Assignment = Suu_core.Assignment
module Mathx = Suu_core.Mathx
module Lp1 = Suu_core.Lp1
module Lp2 = Suu_core.Lp2
module Rounding = Suu_core.Rounding
module Oblivious = Suu_core.Oblivious
module Lower_bound = Suu_core.Lower_bound
module Exact_dp = Suu_core.Exact_dp
module W = Suu_workload.Workload

let checkf = Alcotest.(check (float 1e-9))
let checkf4 = Alcotest.(check (float 1e-4))

let inst2x2 () =
  Instance.make ~dag:(Dag.empty 2) [| [| 0.5; 0.25 |]; [| 0.75; 0.5 |] |]

(* --- mathx --- *)

let test_mathx_log2 () =
  checkf4 "log2 8" 3.0 (Mathx.log2 8.0);
  Alcotest.(check int) "ceil_log2 1" 0 (Mathx.ceil_log2 1);
  Alcotest.(check int) "ceil_log2 2" 1 (Mathx.ceil_log2 2);
  Alcotest.(check int) "ceil_log2 3" 2 (Mathx.ceil_log2 3);
  Alcotest.(check int) "ceil_log2 1024" 10 (Mathx.ceil_log2 1024)

let test_mathx_rounds () =
  (* K = ceil(log log min(m,n)) + 3, clamped to >= 4. *)
  Alcotest.(check int) "min 4" 4 (Mathx.rounds_k ~n:1 ~m:100);
  Alcotest.(check int) "n=16: ceil(loglog 16)+3" 5 (Mathx.rounds_k ~n:16 ~m:100);
  Alcotest.(check int) "n=256: ceil(loglog 256)+3" 6
    (Mathx.rounds_k ~n:256 ~m:256);
  Alcotest.(check bool)
    "monotone-ish" true
    (Mathx.rounds_k ~n:65536 ~m:65536 >= Mathx.rounds_k ~n:16 ~m:16)

let test_mathx_targets () =
  checkf "L1" 0.5 (Mathx.target_for_round 1);
  checkf "L2" 1.0 (Mathx.target_for_round 2);
  checkf "L5" 8.0 (Mathx.target_for_round 5);
  Alcotest.check_raises "k=0"
    (Invalid_argument "Mathx.target_for_round: k must be >= 1") (fun () ->
      ignore (Mathx.target_for_round 0))

let test_mathx_floors () =
  Alcotest.(check int) "floor_pos exact" 6 (Mathx.floor_pos 6.0);
  Alcotest.(check int) "floor_pos below" 5 (Mathx.floor_pos 5.99999);
  Alcotest.(check int) "floor_pos epsilon" 6 (Mathx.floor_pos (6.0 -. 1e-12));
  Alcotest.(check int) "ceil_pos exact" 6 (Mathx.ceil_pos 6.0);
  Alcotest.(check int) "ceil_pos epsilon" 6 (Mathx.ceil_pos (6.0 +. 1e-12));
  Alcotest.(check int) "negative clamps" 0 (Mathx.floor_pos (-3.0))

(* --- instance --- *)

let test_instance_basic () =
  let inst = inst2x2 () in
  Alcotest.(check int) "n" 2 (Instance.n inst);
  Alcotest.(check int) "m" 2 (Instance.m inst);
  checkf "q 0 1" 0.25 (Instance.q inst 0 1);
  checkf4 "l 0 0 = 1" 1.0 (Instance.log_failure inst 0 0);
  checkf4 "l 0 1 = 2" 2.0 (Instance.log_failure inst 0 1);
  Alcotest.(check int) "best machine of 1" 0 (Instance.best_machine inst 1);
  Alcotest.(check (list int)) "jobs" [ 0; 1 ] (Instance.jobs inst)

let test_instance_clipping () =
  let inst = inst2x2 () in
  checkf4 "clip to 1.5" 1.5 (Instance.clipped_log_failure inst ~target:1.5 0 1);
  checkf4 "no clip" 1.0 (Instance.clipped_log_failure inst ~target:1.5 0 0)

let test_instance_zero_q () =
  (* q = 0 means guaranteed completion: infinite log failure. *)
  let inst = Instance.make ~dag:(Dag.empty 1) [| [| 0.0 |] |] in
  Alcotest.(check bool)
    "infinite" true
    (Instance.log_failure inst 0 0 = infinity);
  checkf "clipped is finite" 0.5
    (Instance.clipped_log_failure inst ~target:0.5 0 0)

let test_instance_validation () =
  Alcotest.check_raises "hopeless job"
    (Invalid_argument "Instance.make: a job fails on every machine")
    (fun () -> ignore (Instance.make ~dag:(Dag.empty 1) [| [| 1.0 |] |]));
  Alcotest.check_raises "bad q"
    (Invalid_argument "Instance.make: q out of [0,1]") (fun () ->
      ignore (Instance.make ~dag:(Dag.empty 1) [| [| 1.5 |] |]));
  Alcotest.check_raises "dag mismatch"
    (Invalid_argument "Instance.make: dag size mismatch") (fun () ->
      ignore (Instance.make ~dag:(Dag.empty 3) [| [| 0.5 |] |]));
  Alcotest.check_raises "ragged"
    (Invalid_argument "Instance.make: ragged matrix") (fun () ->
      ignore
        (Instance.make ~dag:(Dag.empty 2) [| [| 0.5; 0.5 |]; [| 0.5 |] |]))

(* --- assignment --- *)

let test_assignment_metrics () =
  let a = Assignment.make [| [| 2; 0; 1 |]; [| 0; 3; 1 |] |] in
  Alcotest.(check int) "m" 2 (Assignment.m a);
  Alcotest.(check int) "n" 3 (Assignment.n a);
  Alcotest.(check int) "load machine 0" 3 (Assignment.machine_load a 0);
  Alcotest.(check int) "load" 4 (Assignment.load a);
  Alcotest.(check int) "length job 1" 3 (Assignment.job_length a 1);
  Alcotest.(check int) "steps job 2" 2 (Assignment.job_steps a 2);
  Alcotest.(check int) "total" 7 (Assignment.total_steps a);
  Alcotest.(check (list (pair int int)))
    "machines of job 2"
    [ (0, 1); (1, 1) ]
    (Assignment.machines_of_job a 2)

let test_assignment_log_mass () =
  let inst = inst2x2 () in
  let a = Assignment.make [| [| 1; 2 |]; [| 0; 1 |] |] in
  (* job 1: 2 steps at l=2 on machine 0, 1 step at l=1 on machine 1 *)
  checkf4 "log mass" 5.0 (Assignment.log_mass inst a 1);
  checkf4 "clipped" (3.0 *. 0.5)
    (Assignment.clipped_log_mass inst ~target:0.5 a 1)

let test_assignment_validation () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Assignment.make: negative") (fun () ->
      ignore (Assignment.make [| [| -1 |] |]));
  let a = Assignment.zero ~m:2 ~n:2 in
  Alcotest.(check int) "zero load" 0 (Assignment.load a)

(* --- oblivious serialization --- *)

let test_oblivious_serialization () =
  let a = Assignment.make [| [| 2; 1 |]; [| 0; 3 |] |] in
  let plan = Oblivious.of_assignment a in
  Alcotest.(check int) "horizon = load" 3 (Oblivious.horizon plan);
  Alcotest.(check int) "machines" 2 (Oblivious.machines plan);
  (* machine 0 runs job 0 twice then job 1; machine 1 runs job 1 thrice *)
  let counts = Array.make_matrix 2 2 0 in
  for k = 0 to Oblivious.horizon plan - 1 do
    let row = Oblivious.assignment_at plan k in
    Array.iteri
      (fun i j -> if j >= 0 then counts.(i).(j) <- counts.(i).(j) + 1)
      row
  done;
  Alcotest.(check int) "m0 j0" 2 counts.(0).(0);
  Alcotest.(check int) "m0 j1" 1 counts.(0).(1);
  Alcotest.(check int) "m1 j1" 3 counts.(1).(1);
  Alcotest.(check int) "m1 j0" 0 counts.(1).(0)

let test_oblivious_empty () =
  let plan = Oblivious.of_assignment (Assignment.zero ~m:2 ~n:2) in
  Alcotest.(check int) "idle step" 1 (Oblivious.horizon plan);
  Alcotest.(check bool)
    "all idle" true
    (Array.for_all (( = ) (-1)) (Oblivious.assignment_at plan 0))

(* --- LP1 + Lemma 2 rounding --- *)

let random_instance seed =
  let rng = Suu_prng.Rng.create ~seed in
  let m = 2 + Suu_prng.Rng.int rng 4 in
  let n = 2 + Suu_prng.Rng.int rng 10 in
  let q =
    Array.init m (fun _ ->
        Array.init n (fun _ -> Suu_prng.Rng.range rng ~lo:0.05 ~hi:0.999))
  in
  Instance.make ~dag:(Dag.empty n) q

let lp1_feasible inst target frac =
  let m = Instance.m inst and n = Instance.n inst in
  let ok = ref true in
  for j = 0 to n - 1 do
    let cov = ref 0.0 in
    for i = 0 to m - 1 do
      cov :=
        !cov
        +. (frac.Lp1.x.(i).(j)
           *. Instance.clipped_log_failure inst ~target i j)
    done;
    if !cov < target -. 1e-6 then ok := false
  done;
  for i = 0 to m - 1 do
    let load = Array.fold_left ( +. ) 0.0 frac.Lp1.x.(i) in
    if load > frac.Lp1.value +. 1e-6 then ok := false
  done;
  !ok

let prop_lp1_feasible =
  QCheck.Test.make ~count:80 ~name:"LP1 solution is feasible"
    QCheck.small_int (fun seed ->
      let inst = random_instance seed in
      let jobs = Array.init (Instance.n inst) Fun.id in
      let frac = Lp1.solve inst ~jobs ~target:0.5 in
      lp1_feasible inst 0.5 frac)

let prop_lp1_mwu_close_to_simplex =
  QCheck.Test.make ~count:40 ~name:"LP1 via MWU within its guarantee"
    QCheck.small_int (fun seed ->
      let inst = random_instance seed in
      let jobs = Array.init (Instance.n inst) Fun.id in
      let exact = Lp1.solve inst ~jobs ~target:0.5 in
      let approx =
        Lp1.solve ~solver:(Suu_core.Solver_choice.Mwu 0.1) inst ~jobs
          ~target:0.5
      in
      lp1_feasible inst 0.5 approx
      && approx.Lp1.value <= (1.55 *. exact.Lp1.value) +. 1e-6
      && approx.Lp1.value >= exact.Lp1.value -. 1e-6)

let prop_lp1_warm_doubling =
  QCheck.Test.make ~count:40
    ~name:"warm revised LP1 = simplex across doubling rounds"
    QCheck.small_int (fun seed ->
      (* The serve path re-solves LP1 for targets L_1, L_2, ... with
         the same survivor set, warm-starting each round from the
         previous round's optimal basis.  The warm chain must agree
         with a cold dense solve at every round to 1e-9. *)
      let inst = random_instance seed in
      let n = Instance.n inst in
      let jobs = Array.init n Fun.id in
      let k_max = Mathx.rounds_k ~n ~m:(Instance.m inst) in
      let ok = ref true in
      let basis = ref None in
      for k = 1 to k_max do
        let target = Mathx.target_for_round k in
        let warm =
          Lp1.solve ~solver:Suu_core.Solver_choice.Revised ?basis:!basis inst
            ~jobs ~target
        in
        let cold = Lp1.solve inst ~jobs ~target in
        if
          Float.abs (warm.Lp1.value -. cold.Lp1.value)
          > 1e-9 *. Float.max 1.0 cold.Lp1.value
          || not (lp1_feasible inst target warm)
        then ok := false;
        if warm.Lp1.basis = None then ok := false;
        basis := warm.Lp1.basis
      done;
      !ok)

let counter_get name = Suu_obs.Counter.get (Suu_obs.Registry.counter name)

let test_lp1_mwu_cert_fallback () =
  (* A gap limit of 1.0 demands value <= lower_bound: MWU's certificate
     can essentially never clear it, so the solve must fall back to
     simplex — bit-identical to a direct simplex solve — and count the
     rejection. *)
  let inst = random_instance 42 in
  let n = Instance.n inst in
  Alcotest.(check bool) "instance is not tiny" true
    (Instance.m inst * n > 16);
  let jobs = Array.init n Fun.id in
  let before = counter_get "lp1.mwu.fallback.cert" in
  let via_mwu =
    Lp1.solve
      ~solver:(Suu_core.Solver_choice.Mwu 0.1)
      ~mwu_gap_limit:1.0 inst ~jobs ~target:0.5
  in
  let direct = Lp1.solve inst ~jobs ~target:0.5 in
  Alcotest.(check bool) "fallback counted" true
    (counter_get "lp1.mwu.fallback.cert" > before);
  Alcotest.(check (float 0.0)) "value identical to simplex"
    direct.Lp1.value via_mwu.Lp1.value;
  Alcotest.(check bool) "assignment identical to simplex" true
    (via_mwu.Lp1.x = direct.Lp1.x)

let test_lp1_mwu_tiny_fallback () =
  (* m * |jobs| <= 16: MWU's per-phase machinery costs more than an
     exact dense solve, so tiny instances route to simplex. *)
  let rng = Suu_prng.Rng.create ~seed:7 in
  let q =
    Array.init 2 (fun _ ->
        Array.init 4 (fun _ -> Suu_prng.Rng.range rng ~lo:0.1 ~hi:0.9))
  in
  let inst = Instance.make ~dag:(Dag.empty 4) q in
  let jobs = Array.init 4 Fun.id in
  let before = counter_get "lp1.mwu.fallback.tiny" in
  let via_mwu =
    Lp1.solve ~solver:(Suu_core.Solver_choice.Mwu 0.1) inst ~jobs ~target:1.0
  in
  let direct = Lp1.solve inst ~jobs ~target:1.0 in
  Alcotest.(check bool) "tiny fallback counted" true
    (counter_get "lp1.mwu.fallback.tiny" > before);
  Alcotest.(check bool) "identical to simplex" true
    (via_mwu.Lp1.x = direct.Lp1.x && via_mwu.Lp1.value = direct.Lp1.value)

let test_solver_choice_strings () =
  let module SC = Suu_core.Solver_choice in
  let roundtrip t =
    match SC.of_string (SC.to_string t) with
    | Ok t' -> Alcotest.(check string) "round-trip" (SC.name t) (SC.name t')
    | Error e -> Alcotest.failf "round-trip failed: %s" e
  in
  List.iter roundtrip [ SC.Simplex; SC.Revised; SC.Mwu 0.1; SC.Mwu 0.25 ];
  Alcotest.(check bool) "bare mwu is the serve default" true
    (SC.of_string "mwu" = Ok SC.serve_default);
  List.iter
    (fun s ->
      match SC.of_string s with
      | Ok _ -> Alcotest.failf "%S should be rejected" s
      | Error _ -> ())
    [ ""; "mwu-0"; "mwu-0.9"; "mwu-"; "mwu-x"; "newton" ];
  checkf "simplex guarantee" 1.0 (SC.guarantee SC.Simplex);
  checkf "mwu guarantee" 1.5 (SC.guarantee (SC.Mwu 0.1))

(* Lemma 2's exact postconditions: clipped mass >= L per job, machine load
   <= ceil(6 t_star). *)
let rounding_postconditions inst target =
  let jobs = Array.init (Instance.n inst) Fun.id in
  let frac = Lp1.solve inst ~jobs ~target in
  let a =
    Rounding.round inst ~jobs ~target ~frac:frac.Lp1.x
      ~frac_value:frac.Lp1.value
  in
  let ok = ref true in
  Array.iter
    (fun j ->
      if Assignment.clipped_log_mass inst ~target a j < target -. 1e-6 then
        ok := false)
    jobs;
  let cap = max 1 (Mathx.ceil_pos (6.0 *. frac.Lp1.value)) in
  for i = 0 to Instance.m inst - 1 do
    if Assignment.machine_load a i > cap then ok := false
  done;
  !ok

let prop_rounding_lemma2 =
  QCheck.Test.make ~count:60 ~name:"Lemma 2: mass >= L, load <= ceil(6t)"
    QCheck.small_int (fun seed ->
      rounding_postconditions (random_instance seed) 0.5)

let prop_rounding_lemma2_big_targets =
  QCheck.Test.make ~count:40 ~name:"Lemma 2 at doubled targets"
    QCheck.small_int (fun seed ->
      let inst = random_instance seed in
      List.for_all
        (fun k -> rounding_postconditions inst (Mathx.target_for_round k))
        [ 2; 3; 4 ])

let prop_rounding_with_job_cap =
  QCheck.Test.make ~count:40 ~name:"Lemma 6 cap: x_ij <= job cap"
    QCheck.small_int (fun seed ->
      let inst = random_instance seed in
      let jobs = Array.init (Instance.n inst) Fun.id in
      let target = 1.0 in
      let frac = Lp1.solve inst ~jobs ~target in
      (* derive per-job caps from the fractional lengths *)
      let dstar =
        Array.init (Instance.n inst) (fun j ->
            let best = ref 0.0 in
            for i = 0 to Instance.m inst - 1 do
              if frac.Lp1.x.(i).(j) > !best then best := frac.Lp1.x.(i).(j)
            done;
            Float.max 1.0 !best)
      in
      let cap j = Mathx.ceil_pos (6.0 *. dstar.(j)) in
      let a =
        Rounding.round ~job_cap:cap inst ~jobs ~target ~frac:frac.Lp1.x
          ~frac_value:frac.Lp1.value
      in
      let ok = ref true in
      Array.iter
        (fun j ->
          if Assignment.clipped_log_mass inst ~target a j < target -. 1e-6
          then ok := false;
          for i = 0 to Instance.m inst - 1 do
            if Assignment.get a i j > cap j then ok := false
          done)
        jobs;
      !ok)

let test_lp1_validation () =
  let inst = inst2x2 () in
  Alcotest.check_raises "no jobs" (Invalid_argument "Lp1.solve: no jobs")
    (fun () -> ignore (Lp1.solve inst ~jobs:[||] ~target:0.5));
  Alcotest.check_raises "bad target"
    (Invalid_argument "Lp1.solve: target must be positive") (fun () ->
      ignore (Lp1.solve inst ~jobs:[| 0 |] ~target:0.0));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Lp1.solve: duplicate job") (fun () ->
      ignore (Lp1.solve inst ~jobs:[| 0; 0 |] ~target:0.5))

let test_lp1_with_certain_machines () =
  (* q = 0 machines (infinite log failure) must survive the clipped LP +
     rounding pipeline: coverage is achieved with single steps. *)
  let inst =
    Instance.make ~dag:(Dag.empty 3)
      [| [| 0.0; 0.5; 0.0 |]; [| 0.9; 0.0; 0.8 |] |]
  in
  let jobs = [| 0; 1; 2 |] in
  let frac = Lp1.solve inst ~jobs ~target:0.5 in
  let a =
    Rounding.round inst ~jobs ~target:0.5 ~frac:frac.Lp1.x
      ~frac_value:frac.Lp1.value
  in
  Array.iter
    (fun j ->
      Alcotest.(check bool)
        "covered" true
        (Assignment.clipped_log_mass inst ~target:0.5 a j >= 0.5 -. 1e-9))
    jobs;
  (* and the resulting schedule finishes fast: every job completes in one
     pass of the plan *)
  let mk =
    Suu_sim.Runner.expected_makespan inst
      (Suu_core.Suu_i_obl.policy inst)
      ~seed:1 ~reps:20
  in
  Alcotest.(check bool)
    (Printf.sprintf "makespan %.1f small" mk)
    true (mk <= 8.0)

let test_lp1_subset () =
  (* Solving on a subset leaves other jobs' columns at zero. *)
  let inst = random_instance 5 in
  let frac = Lp1.solve inst ~jobs:[| 0 |] ~target:0.5 in
  let others = ref 0.0 in
  for i = 0 to Instance.m inst - 1 do
    for j = 1 to Instance.n inst - 1 do
      others := !others +. frac.Lp1.x.(i).(j)
    done
  done;
  checkf "untouched" 0.0 !others

(* --- LP2 + Lemma 6 --- *)

let chain_instance seed =
  W.chains (W.Uniform { lo = 0.2; hi = 0.95 }) ~z:3 ~length:4 ~m:3 ~seed

let test_lp2_feasible () =
  let inst = chain_instance 11 in
  let chains =
    match Suu_dag.Chains.of_dag (Instance.dag inst) with
    | Some c -> c
    | None -> Alcotest.fail "not chains"
  in
  let frac = Lp2.solve inst ~chains in
  Alcotest.(check bool) "value positive" true (frac.Lp2.value > 0.0);
  (* coverage *)
  for j = 0 to Instance.n inst - 1 do
    let cov = ref 0.0 in
    for i = 0 to Instance.m inst - 1 do
      cov :=
        !cov
        +. (frac.Lp2.x.(i).(j)
           *. Instance.clipped_log_failure inst ~target:1.0 i j)
    done;
    Alcotest.(check bool) "covered" true (!cov >= 1.0 -. 1e-6)
  done;
  (* x <= d *)
  for j = 0 to Instance.n inst - 1 do
    for i = 0 to Instance.m inst - 1 do
      Alcotest.(check bool)
        "x <= d" true
        (frac.Lp2.x.(i).(j) <= frac.Lp2.d.(j) +. 1e-6)
    done;
    Alcotest.(check bool) "d >= 1" true (frac.Lp2.d.(j) >= 1.0 -. 1e-6)
  done;
  (* chain lengths <= t *)
  List.iter
    (fun chain ->
      let len = Array.fold_left (fun acc j -> acc +. frac.Lp2.d.(j)) 0.0 chain in
      Alcotest.(check bool) "chain length" true (len <= frac.Lp2.value +. 1e-6))
    chains

let test_lp2_round () =
  let inst = chain_instance 13 in
  let chains =
    match Suu_dag.Chains.of_dag (Instance.dag inst) with
    | Some c -> c
    | None -> Alcotest.fail "not chains"
  in
  let frac = Lp2.solve inst ~chains in
  let a = Lp2.round inst frac in
  for j = 0 to Instance.n inst - 1 do
    Alcotest.(check bool)
      "unit mass" true
      (Assignment.clipped_log_mass inst ~target:1.0 a j >= 1.0 -. 1e-6);
    for i = 0 to Instance.m inst - 1 do
      Alcotest.(check bool)
        "job cap" true
        (Assignment.get a i j <= Mathx.ceil_pos (6.0 *. frac.Lp2.d.(j)))
    done
  done;
  let cap = max 1 (Mathx.ceil_pos (6.0 *. frac.Lp2.value)) in
  for i = 0 to Instance.m inst - 1 do
    Alcotest.(check bool) "load" true (Assignment.machine_load a i <= cap)
  done

let test_lp2_chain_length_growth () =
  (* Lemma 6's remark: rounding grows each chain's length to at most
     6 sum(d*_j) + |Ck| <= 7 sum(d*_j). *)
  let inst = chain_instance 19 in
  let chains =
    match Suu_dag.Chains.of_dag (Instance.dag inst) with
    | Some c -> c
    | None -> Alcotest.fail "not chains"
  in
  let frac = Lp2.solve inst ~chains in
  let a = Lp2.round inst frac in
  List.iter
    (fun chain ->
      let rounded =
        Array.fold_left
          (fun acc j -> acc + Assignment.job_length a j)
          0 chain
      in
      let fractional =
        Array.fold_left (fun acc j -> acc +. frac.Lp2.d.(j)) 0.0 chain
      in
      Alcotest.(check bool)
        (Printf.sprintf "chain %d <= 6*%.2f + %d" rounded fractional
           (Array.length chain))
        true
        (float_of_int rounded
        <= (6.0 *. fractional) +. float_of_int (Array.length chain) +. 1e-6))
    chains

let test_lp2_top_machines () =
  let inst = chain_instance 17 in
  let chains =
    match Suu_dag.Chains.of_dag (Instance.dag inst) with
    | Some c -> c
    | None -> Alcotest.fail "not chains"
  in
  let full = Lp2.solve inst ~chains in
  let restricted = Lp2.solve ~top_machines:1 inst ~chains in
  (* restriction can only worsen the optimum *)
  Alcotest.(check bool)
    "restricted >= full" true
    (restricted.Lp2.value >= full.Lp2.value -. 1e-6)

(* --- lower bounds --- *)

let test_lower_bound_single_job () =
  (* One job, one machine with q = 0.5: E[T_OPT] = 2 exactly. *)
  let inst = Instance.make ~dag:(Dag.empty 1) [| [| 0.5 |] |] in
  checkf4 "critical path = 1/(1-q)" 2.0 (Lower_bound.critical_path inst);
  Alcotest.(check bool)
    "combined <= true OPT" true
    (Lower_bound.combined inst <= 2.0 +. 1e-6)

let test_lower_bound_chain () =
  (* Chain of 3 jobs each with best q = 0.5: path bound = 6. *)
  let q = Array.make_matrix 1 3 0.5 in
  let inst =
    Instance.make ~dag:(Dag.of_edges ~n:3 [ (0, 1); (1, 2) ]) q
  in
  checkf4 "path bound" 6.0 (Lower_bound.critical_path inst)

let test_lower_bound_work () =
  (* n jobs, 1 machine: work bound >= n * max(1, E[w]/l). *)
  let q = Array.make_matrix 1 4 0.25 in
  let inst = Instance.make ~dag:(Dag.empty 4) q in
  (* l = 2, E[w]/l = 1/(2 ln 2) < 1, so each job costs >= 1 step. *)
  checkf4 "work" 4.0 (Lower_bound.work inst)

let prop_lower_bound_below_dp =
  (* On tiny instances the combined bound must sit below the true optimum. *)
  QCheck.Test.make ~count:30 ~name:"lower bound <= exact E[T_OPT]"
    QCheck.small_int (fun seed ->
      let rng = Suu_prng.Rng.create ~seed in
      let n = 1 + Suu_prng.Rng.int rng 4 in
      let m = 1 + Suu_prng.Rng.int rng 2 in
      let q =
        Array.init m (fun _ ->
            Array.init n (fun _ -> Suu_prng.Rng.range rng ~lo:0.1 ~hi:0.9))
      in
      let inst = Instance.make ~dag:(Dag.empty n) q in
      let lb = Lower_bound.combined inst in
      let opt = Exact_dp.expected_makespan inst in
      lb <= opt +. 1e-6)

(* --- instance serialization --- *)

let instances_equal a b =
  Instance.n a = Instance.n b
  && Instance.m a = Instance.m b
  && Instance.name a = Instance.name b
  && Suu_dag.Dag.edges (Instance.dag a) = Suu_dag.Dag.edges (Instance.dag b)
  &&
  let same = ref true in
  for i = 0 to Instance.m a - 1 do
    for j = 0 to Instance.n a - 1 do
      if Instance.q a i j <> Instance.q b i j then same := false
    done
  done;
  !same

let test_io_roundtrip () =
  let inst =
    Instance.make ~name:"rt"
      ~dag:(Dag.of_edges ~n:3 [ (0, 2); (1, 2) ])
      [| [| 0.5; 0.125; 0.0 |]; [| 1.0 /. 3.0; 0.9999; 1.0 |] |]
  in
  let back = Suu_core.Instance_io.of_string (Suu_core.Instance_io.to_string inst) in
  Alcotest.(check bool) "roundtrip" true (instances_equal inst back)

let test_io_rejects_garbage () =
  Alcotest.(check bool)
    "not a header" true
    (try
       ignore (Suu_core.Instance_io.of_string "hello\n");
       false
     with Failure _ -> true);
  Alcotest.(check bool)
    "truncated" true
    (try
       ignore
         (Suu_core.Instance_io.of_string
            "suu-instance v1\nname x\nmachines 1\njobs 1\nq\n");
       false
     with Failure _ -> true)

(* Malformed input must be rejected with an error locating the offending
   1-based line — these are the messages the server relays to clients. *)
let test_io_located_errors () =
  let expect label input msg =
    Alcotest.check_raises label (Failure msg) (fun () ->
        ignore (Suu_core.Instance_io.of_string input))
  in
  expect "bad name line" "suu-instance v1\nwrong stuff\n"
    "Instance_io: line 2: expected \"name\"";
  expect "bad machine count" "suu-instance v1\nname x\nmachines zz\njobs 1\n"
    "Instance_io: line 3: expected an integer, got \"zz\"";
  expect "bad float"
    "suu-instance v1\nname x\nmachines 1\njobs 1\nq\nNOTAFLOAT\nedges 0\nend\n"
    "Instance_io: line 6: bad float \"NOTAFLOAT\"";
  expect "wrong q arity"
    "suu-instance v1\nname x\nmachines 1\njobs 2\nq\n0.5\nedges 0\nend\n"
    "Instance_io: line 6: wrong number of q entries";
  expect "bad edge"
    "suu-instance v1\nname x\nmachines 1\njobs 2\nq\n0.5 0.5\nedges 1\n0\nend\n"
    "Instance_io: line 8: expected two node indices";
  expect "truncated mid-file" "suu-instance v1\nname x\nmachines 1\n"
    "Instance_io: line 4: expected \"jobs\""

let test_io_files () =
  let inst =
    Instance.make ~name:"file-rt" ~dag:(Dag.empty 2)
      [| [| 0.25; 0.75 |] |]
  in
  let path = Filename.temp_file "suu" ".inst" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Suu_core.Instance_io.save_file path inst;
      let back = Suu_core.Instance_io.load_file path in
      Alcotest.(check bool) "file roundtrip" true (instances_equal inst back))

let prop_io_roundtrip =
  QCheck.Test.make ~count:80 ~name:"serialization roundtrips"
    QCheck.small_int (fun seed ->
      let inst =
        Suu_workload.Workload.forest
          (Suu_workload.Workload.Uniform { lo = 0.1; hi = 0.99 })
          ~n:12 ~trees:3 ~orientation:`Mixed ~m:3 ~seed
      in
      let back =
        Suu_core.Instance_io.of_string (Suu_core.Instance_io.to_string inst)
      in
      instances_equal inst back)

(* Unlike [prop_io_roundtrip] (which only varies a workload generator's
   seed), this drives dimensions, the q matrix and the edge set directly,
   including the awkward exact values 0 and 1. *)
let prop_io_roundtrip_random =
  QCheck.Test.make ~count:200 ~name:"random instances roundtrip"
    QCheck.(triple (int_range 1 5) (int_range 1 10) small_int)
    (fun (m, n, seed) ->
      (* The shrinker can escape int_range's bounds; clamp defensively. *)
      let m = max 1 m and n = max 1 n in
      let rng = Suu_prng.Rng.create ~seed:(Hashtbl.hash (m, n, seed)) in
      let q =
        Array.init m (fun _ ->
            Array.init n (fun _ ->
                match Suu_prng.Rng.int rng 5 with
                | 0 -> 0.0
                | 1 -> 1.0
                | _ -> Suu_prng.Rng.float rng 1.0))
      in
      (* Every job needs one machine that can finish it (q < 1). *)
      for j = 0 to n - 1 do
        if Array.for_all (fun row -> row.(j) = 1.0) q then
          q.(0).(j) <- Suu_prng.Rng.float rng 0.99
      done;
      let edges = ref [] in
      for a = 0 to n - 1 do
        for b = a + 1 to n - 1 do
          if Suu_prng.Rng.int rng 4 = 0 then edges := (a, b) :: !edges
        done
      done;
      let inst =
        Instance.make
          ~name:(Printf.sprintf "rand-%d-%d-%d" m n seed)
          ~dag:(Dag.of_edges ~n !edges)
          q
      in
      let back =
        Suu_core.Instance_io.of_string (Suu_core.Instance_io.to_string inst)
      in
      instances_equal inst back)

(* --- exact DP --- *)

let test_dp_single_geometric () =
  (* One job on one machine with q: E[T] = 1 / (1 - q). *)
  List.iter
    (fun q ->
      let inst = Instance.make ~dag:(Dag.empty 1) [| [| q |] |] in
      checkf4
        (Printf.sprintf "q = %.2f" q)
        (1.0 /. (1.0 -. q))
        (Exact_dp.expected_makespan inst))
    [ 0.0; 0.25; 0.5; 0.9 ]

let test_dp_two_machines_one_job () =
  (* Both machines always help: success prob 1 - q1 q2 per step. *)
  let inst = Instance.make ~dag:(Dag.empty 1) [| [| 0.5 |]; [| 0.4 |] |] in
  checkf4 "1/(1-0.2)" (1.0 /. 0.8) (Exact_dp.expected_makespan inst)

let test_dp_chain () =
  (* Two jobs in a chain, one machine q = 0.5 for both: sequential
     geometrics, E = 2 + 2 = 4. *)
  let inst =
    Instance.make ~dag:(Dag.of_edges ~n:2 [ (0, 1) ])
      [| [| 0.5; 0.5 |] |]
  in
  checkf4 "chain" 4.0 (Exact_dp.expected_makespan inst)

let test_dp_independent_pair_one_machine () =
  (* Two independent jobs, one machine, q = 0.5 each.  The machine works
     on one at a time: E = 2 + 2 = 4 (no parallelism available). *)
  let inst = Instance.make ~dag:(Dag.empty 2) [| [| 0.5; 0.5 |] |] in
  checkf4 "serial sum" 4.0 (Exact_dp.expected_makespan inst)

let test_dp_budget () =
  let q = Array.make_matrix 3 12 0.5 in
  let inst = Instance.make ~dag:(Dag.empty 12) q in
  Alcotest.(check bool)
    "budget exceeded raises" true
    (try
       ignore (Exact_dp.expected_makespan ~budget:1000 inst);
       false
     with Invalid_argument _ -> true)

let random_tiny seed =
  let rng = Suu_prng.Rng.create ~seed in
  let n = 2 + Suu_prng.Rng.int rng 2 in
  let m = 1 + Suu_prng.Rng.int rng 2 in
  let q =
    Array.init m (fun _ ->
        Array.init n (fun _ -> Suu_prng.Rng.range rng ~lo:0.2 ~hi:0.8))
  in
  Instance.make ~dag:(Dag.empty n) q

let test_dp_policy_matches_value () =
  (* Simulating the DP policy many times approximates the DP value. *)
  let inst = random_tiny 3 in
  let opt = Exact_dp.expected_makespan inst in
  let sim =
    Suu_sim.Runner.expected_makespan inst (Exact_dp.policy inst) ~seed:0
      ~reps:4000
  in
  Alcotest.(check bool)
    (Printf.sprintf "sim %.3f vs dp %.3f" sim opt)
    true
    (Float.abs (sim -. opt) < 0.25 *. opt)

let test_chain_dp_simple () =
  (* Two jobs in a chain on one q = 0.5 machine: E = 2 + 2. *)
  let inst =
    Instance.make ~dag:(Dag.of_edges ~n:2 [ (0, 1) ]) [| [| 0.5; 0.5 |] |]
  in
  checkf4 "chain of two" 4.0 (Exact_dp.chains_expected_makespan inst)

let test_chain_dp_rejects_non_chains () =
  let inst =
    Instance.make
      ~dag:(Dag.of_edges ~n:3 [ (0, 1); (0, 2) ])
      (Array.make_matrix 1 3 0.5)
  in
  Alcotest.(check bool)
    "raises" true
    (try
       ignore (Exact_dp.chains_expected_makespan inst);
       false
     with Invalid_argument _ -> true)

let test_chain_dp_budget () =
  let inst = W.chains (W.Uniform { lo = 0.3; hi = 0.8 }) ~z:6 ~length:8 ~m:4 ~seed:1 in
  Alcotest.(check bool)
    "budget raises" true
    (try
       ignore (Exact_dp.chains_expected_makespan ~budget:100 inst);
       false
     with Invalid_argument _ -> true)

let test_ideal_dp_ladder () =
  (* A width-2 "ladder" dag with n = 20 jobs: the subset DP would need
     2^20 masks, the ideal DP visits O(n^2) states.  Cross-check against
     the chain DP on the two independent rails (the ladder without rungs
     is two chains; with rungs the optimum can only grow). *)
  let n = 20 in
  let rng = Suu_prng.Rng.create ~seed:9 in
  let q =
    Array.init 2 (fun _ ->
        Array.init n (fun _ -> Suu_prng.Rng.range rng ~lo:0.3 ~hi:0.8))
  in
  (* rails: even jobs 0->2->4->..., odd jobs 1->3->5->...; rungs even->odd *)
  let edges = ref [] in
  for k = 0 to (n / 2) - 2 do
    edges := (2 * k, 2 * (k + 1)) :: !edges;
    edges := ((2 * k) + 1, (2 * (k + 1)) + 1) :: !edges
  done;
  for k = 0 to (n / 2) - 1 do
    edges := (2 * k, (2 * k) + 1) :: !edges
  done;
  let ladder = Instance.make ~dag:(Dag.of_edges ~n !edges) q in
  let v = Exact_dp.ideal_expected_makespan ladder in
  Alcotest.(check bool) "finite" true (Float.is_finite v && v > 0.0);
  let rails_only =
    Instance.make
      ~dag:
        (Dag.of_edges ~n
           (List.filter (fun (a, b) -> b - a = 2) !edges))
      q
  in
  let rails = Exact_dp.chains_expected_makespan rails_only in
  Alcotest.(check bool)
    (Printf.sprintf "ladder %.2f >= rails %.2f" v rails)
    true
    (v >= rails -. 1e-6)

let prop_ideal_dp_matches_generic =
  QCheck.Test.make ~count:20 ~name:"ideal DP = subset DP on random dags"
    QCheck.small_int (fun seed ->
      let rng = Suu_prng.Rng.create ~seed in
      let n = 2 + Suu_prng.Rng.int rng 4 in
      let m = 1 + Suu_prng.Rng.int rng 2 in
      let q =
        Array.init m (fun _ ->
            Array.init n (fun _ -> Suu_prng.Rng.range rng ~lo:0.2 ~hi:0.9))
      in
      (* random forward dag *)
      let edges = ref [] in
      for a = 0 to n - 2 do
        for b = a + 1 to n - 1 do
          if Suu_prng.Rng.bool rng then edges := (a, b) :: !edges
        done
      done;
      let inst = Instance.make ~dag:(Dag.of_edges ~n !edges) q in
      let a = Exact_dp.expected_makespan inst in
      let b = Exact_dp.ideal_expected_makespan inst in
      Float.abs (a -. b) < 1e-9 *. Float.max 1.0 a)

let prop_chain_dp_matches_generic =
  QCheck.Test.make ~count:25 ~name:"chain DP = subset DP on small chains"
    QCheck.small_int (fun seed ->
      let rng = Suu_prng.Rng.create ~seed in
      let z = 1 + Suu_prng.Rng.int rng 2 in
      let len = 1 + Suu_prng.Rng.int rng 3 in
      let m = 1 + Suu_prng.Rng.int rng 2 in
      let inst =
        W.chains (W.Uniform { lo = 0.2; hi = 0.9 }) ~z ~length:len ~m ~seed
      in
      let a = Exact_dp.expected_makespan inst in
      let b = Exact_dp.chains_expected_makespan inst in
      Float.abs (a -. b) < 1e-9 *. Float.max 1.0 a)

let prop_dp_policy_never_beats_value =
  (* The DP value is optimal: any other policy's expected makespan is at
     least it (checked statistically with generous slack). *)
  QCheck.Test.make ~count:10 ~name:"greedy >= DP optimum (statistical)"
    QCheck.small_int (fun seed ->
      let inst = random_tiny seed in
      let opt = Exact_dp.expected_makespan inst in
      let greedy =
        Suu_sim.Runner.expected_makespan inst
          (Suu_core.Baselines.greedy_completion inst)
          ~seed ~reps:2000
      in
      greedy >= opt -. (0.15 *. opt) -. 0.2)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "core"
    [
      ( "mathx",
        [
          Alcotest.test_case "log2" `Quick test_mathx_log2;
          Alcotest.test_case "rounds" `Quick test_mathx_rounds;
          Alcotest.test_case "targets" `Quick test_mathx_targets;
          Alcotest.test_case "guarded floors" `Quick test_mathx_floors;
        ] );
      ( "instance",
        [
          Alcotest.test_case "basic" `Quick test_instance_basic;
          Alcotest.test_case "clipping" `Quick test_instance_clipping;
          Alcotest.test_case "q = 0" `Quick test_instance_zero_q;
          Alcotest.test_case "validation" `Quick test_instance_validation;
        ] );
      ( "assignment",
        [
          Alcotest.test_case "metrics" `Quick test_assignment_metrics;
          Alcotest.test_case "log mass" `Quick test_assignment_log_mass;
          Alcotest.test_case "validation" `Quick test_assignment_validation;
        ] );
      ( "oblivious",
        [
          Alcotest.test_case "serialization" `Quick
            test_oblivious_serialization;
          Alcotest.test_case "empty" `Quick test_oblivious_empty;
        ] );
      ( "lp1",
        [
          Alcotest.test_case "validation" `Quick test_lp1_validation;
          Alcotest.test_case "certain machines (q=0)" `Quick
            test_lp1_with_certain_machines;
          Alcotest.test_case "subset" `Quick test_lp1_subset;
          Alcotest.test_case "mwu cert fallback" `Quick
            test_lp1_mwu_cert_fallback;
          Alcotest.test_case "mwu tiny fallback" `Quick
            test_lp1_mwu_tiny_fallback;
          Alcotest.test_case "solver-choice strings" `Quick
            test_solver_choice_strings;
        ] );
      ( "lp2",
        [
          Alcotest.test_case "feasible" `Quick test_lp2_feasible;
          Alcotest.test_case "lemma 6 rounding" `Quick test_lp2_round;
          Alcotest.test_case "lemma 6 chain growth" `Quick
            test_lp2_chain_length_growth;
          Alcotest.test_case "top machines" `Quick test_lp2_top_machines;
        ] );
      ( "lower-bounds",
        [
          Alcotest.test_case "single job" `Quick test_lower_bound_single_job;
          Alcotest.test_case "chain path" `Quick test_lower_bound_chain;
          Alcotest.test_case "work" `Quick test_lower_bound_work;
        ] );
      ( "instance-io",
        [
          Alcotest.test_case "roundtrip" `Quick test_io_roundtrip;
          Alcotest.test_case "garbage" `Quick test_io_rejects_garbage;
          Alcotest.test_case "located errors" `Quick test_io_located_errors;
          Alcotest.test_case "files" `Quick test_io_files;
        ] );
      ( "exact-dp",
        [
          Alcotest.test_case "geometric" `Quick test_dp_single_geometric;
          Alcotest.test_case "two machines" `Quick
            test_dp_two_machines_one_job;
          Alcotest.test_case "chain" `Quick test_dp_chain;
          Alcotest.test_case "serial pair" `Quick
            test_dp_independent_pair_one_machine;
          Alcotest.test_case "budget" `Quick test_dp_budget;
          Alcotest.test_case "policy simulation" `Slow
            test_dp_policy_matches_value;
          Alcotest.test_case "chain DP simple" `Quick test_chain_dp_simple;
          Alcotest.test_case "chain DP non-chains" `Quick
            test_chain_dp_rejects_non_chains;
          Alcotest.test_case "chain DP budget" `Quick test_chain_dp_budget;
          Alcotest.test_case "ideal DP ladder (n=20)" `Quick
            test_ideal_dp_ladder;
        ] );
      ( "properties",
        [
          q prop_lp1_feasible;
          q prop_lp1_mwu_close_to_simplex;
          q prop_lp1_warm_doubling;
          q prop_rounding_lemma2;
          q prop_rounding_lemma2_big_targets;
          q prop_rounding_with_job_cap;
          q prop_lower_bound_below_dp;
          q prop_dp_policy_never_beats_value;
          q prop_chain_dp_matches_generic;
          q prop_ideal_dp_matches_generic;
          q prop_io_roundtrip;
          q prop_io_roundtrip_random;
        ] );
    ]
