(* Tests for the workload generators: shapes, determinism, solvability. *)

module W = Suu_workload.Workload
module Instance = Suu_core.Instance
module Dag = Suu_dag.Dag
module Classify = Suu_dag.Classify

let uniform = W.Uniform { lo = 0.2; hi = 0.95 }

let q_in_range inst =
  let ok = ref true in
  for i = 0 to Instance.m inst - 1 do
    for j = 0 to Instance.n inst - 1 do
      let q = Instance.q inst i j in
      if not (q >= 0.0 && q <= 1.0) then ok := false
    done
  done;
  !ok

let test_every_hazard_valid () =
  List.iter
    (fun hazard ->
      let inst = W.independent hazard ~n:15 ~m:6 ~seed:1 in
      Alcotest.(check bool) (W.hazard_name hazard) true (q_in_range inst);
      Alcotest.(check int) "n" 15 (Instance.n inst);
      Alcotest.(check int) "m" 6 (Instance.m inst))
    W.default_hazards

let test_determinism () =
  let a = W.independent uniform ~n:8 ~m:3 ~seed:42 in
  let b = W.independent uniform ~n:8 ~m:3 ~seed:42 in
  let same = ref true in
  for i = 0 to 2 do
    for j = 0 to 7 do
      if Instance.q a i j <> Instance.q b i j then same := false
    done
  done;
  Alcotest.(check bool) "same seed same matrix" true !same;
  let c = W.independent uniform ~n:8 ~m:3 ~seed:43 in
  let diff = ref false in
  for i = 0 to 2 do
    for j = 0 to 7 do
      if Instance.q a i j <> Instance.q c i j then diff := true
    done
  done;
  Alcotest.(check bool) "different seed differs" true !diff

let test_independent_shape () =
  let inst = W.independent uniform ~n:10 ~m:4 ~seed:2 in
  match Classify.classify (Instance.dag inst) with
  | Classify.Independent -> ()
  | _ -> Alcotest.fail "expected independent"

let test_chains_shape () =
  let inst = W.chains uniform ~z:4 ~length:3 ~m:2 ~seed:3 in
  Alcotest.(check int) "n = z * len" 12 (Instance.n inst);
  match Classify.classify (Instance.dag inst) with
  | Classify.Disjoint_chains chains ->
      Alcotest.(check int) "z chains" 4 (List.length chains);
      List.iter
        (fun c -> Alcotest.(check int) "length" 3 (Array.length c))
        chains
  | _ -> Alcotest.fail "expected chains"

let test_random_chains_shape () =
  let inst = W.random_chains uniform ~n:17 ~z:5 ~m:3 ~seed:4 in
  match Classify.classify (Instance.dag inst) with
  | Classify.Disjoint_chains chains ->
      Alcotest.(check int) "covers all" 17
        (Suu_dag.Chains.total_jobs chains)
  | Classify.Independent -> () (* all cuts adjacent: degenerate but legal *)
  | _ -> Alcotest.fail "expected chains"

(* Weakly-connected components of a chain DAG: n jobs minus one per
   edge (every edge merges two components; chains never share jobs). *)
let components inst =
  Instance.n inst - Dag.num_edges (Instance.dag inst)

(* Regression: the cut points used to be drawn WITH replacement, so
   duplicate cuts silently merged runs and produced fewer than z
   chains (seed 4 at n=17 z=16 reproduced it).  The .mli promises
   exactly z nonempty chains for every seed. *)
let test_random_chains_exact_z () =
  List.iter
    (fun (n, z) ->
      for seed = 0 to 99 do
        let inst = W.random_chains uniform ~n ~z ~m:3 ~seed in
        Alcotest.(check int)
          (Printf.sprintf "n=%d z=%d seed=%d" n z seed)
          z (components inst)
      done)
    [ (17, 5); (17, 16); (10, 9); (10, 2); (6, 5); (5, 1); (4, 4); (2, 2) ]

let prop_random_chains_exact_z =
  QCheck.Test.make ~count:200 ~name:"random_chains yields exactly z chains"
    QCheck.(triple small_int (int_range 2 24) (int_range 1 24))
    (fun (seed, n, z) ->
      let z = min z n in
      let inst = W.random_chains uniform ~n ~z ~m:3 ~seed in
      components inst = z)

let test_forest_shape () =
  List.iter
    (fun orientation ->
      let inst = W.forest uniform ~n:20 ~trees:4 ~orientation ~m:3 ~seed:5 in
      match Classify.classify (Instance.dag inst) with
      | Classify.Directed_forest _ | Classify.Disjoint_chains _ -> ()
      | _ -> Alcotest.fail "expected forest-compatible dag")
    [ `Out; `In; `Mixed ]

let test_mapreduce_shape () =
  let inst = W.mapreduce uniform ~maps:4 ~reduces:3 ~m:2 ~seed:6 in
  Alcotest.(check int) "n" 7 (Instance.n inst);
  let g = Instance.dag inst in
  Alcotest.(check int) "complete bipartite" 12 (Dag.num_edges g);
  (* every reduce depends on every map *)
  for b = 4 to 6 do
    Alcotest.(check int) "in-degree" 4 (Dag.in_degree g b)
  done

let test_validation () =
  Alcotest.(check bool)
    "bad chains shape" true
    (try
       ignore (W.chains uniform ~z:0 ~length:3 ~m:2 ~seed:0);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool)
    "bad forest shape" true
    (try
       ignore (W.forest uniform ~n:2 ~trees:5 ~orientation:`Out ~m:2 ~seed:0);
       false
     with Invalid_argument _ -> true);
  (* hi = 1.0 is rejected: Rng.range can round up to exactly hi, and a
     q_ij = 1.0 entry slips past the all-ones solvability repair. *)
  Alcotest.(check bool)
    "uniform hi = 1.0 rejected" true
    (try
       ignore (W.independent (W.Uniform { lo = 0.2; hi = 1.0 }) ~n:4 ~m:2 ~seed:0);
       false
     with Invalid_argument _ -> true)

(* Stronger than solvability-via-best-machine: every entry of every
   generated matrix is strictly below 1, the invariant the q_matrix
   .mli documents. *)
let prop_q_strictly_below_one =
  QCheck.Test.make ~count:100 ~name:"every q entry strictly below 1"
    QCheck.(pair small_int (int_range 0 4))
    (fun (seed, hz) ->
      let hazard = List.nth W.default_hazards hz in
      let inst = W.independent hazard ~n:12 ~m:4 ~seed in
      let ok = ref true in
      for i = 0 to 3 do
        for j = 0 to 11 do
          if Instance.q inst i j >= 1.0 then ok := false
        done
      done;
      !ok)

let prop_every_job_solvable =
  QCheck.Test.make ~count:100 ~name:"every job has a sub-1 machine"
    QCheck.(pair small_int (int_range 0 4))
    (fun (seed, hz) ->
      let hazard = List.nth W.default_hazards hz in
      let inst = W.independent hazard ~n:12 ~m:4 ~seed in
      let ok = ref true in
      for j = 0 to 11 do
        if Instance.q inst (Instance.best_machine inst j) j >= 1.0 then
          ok := false
      done;
      !ok)

let prop_forest_instances_decompose =
  QCheck.Test.make ~count:100 ~name:"forest instances decompose"
    QCheck.small_int (fun seed ->
      let inst =
        W.forest uniform ~n:15 ~trees:3 ~orientation:`Mixed ~m:3 ~seed
      in
      Suu_dag.Forest.decompose (Instance.dag inst) <> None)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "workload"
    [
      ( "generators",
        [
          Alcotest.test_case "hazards valid" `Quick test_every_hazard_valid;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "independent" `Quick test_independent_shape;
          Alcotest.test_case "chains" `Quick test_chains_shape;
          Alcotest.test_case "random chains" `Quick test_random_chains_shape;
          Alcotest.test_case "random chains exact z" `Quick
            test_random_chains_exact_z;
          Alcotest.test_case "forest" `Quick test_forest_shape;
          Alcotest.test_case "mapreduce" `Quick test_mapreduce_shape;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
      ( "properties",
        [
          q prop_every_job_solvable;
          q prop_forest_instances_decompose;
          q prop_random_chains_exact_z;
          q prop_q_strictly_below_one;
        ] );
    ]
