(* The router subsystem: rendezvous-ring placement properties
   (determinism, balance, minimal remapping), readiness-line parsing,
   stats merging, and an end-to-end attach-mode router in front of two
   in-process servers — byte-identity with an unrouted server, merged
   stats, and failover when a shard dies mid-run. *)

module Ring = Suu_router.Ring
module Spawn = Suu_router.Spawn
module Stats_merge = Suu_router.Stats_merge
module Router = Suu_router.Router
module Server = Suu_server.Server
module Client = Suu_server.Client
module P = Suu_server.Protocol
module W = Suu_workload.Workload

let uniform = W.Uniform { lo = 0.2; hi = 0.8 }

(* --- ring: determinism --- *)

let shard_ids n = List.init n (fun i -> Printf.sprintf "shard%d" i)

let keys_for rng n =
  List.init n (fun _ ->
      Digest.string (string_of_int (Suu_prng.Rng.int rng 1_000_000_000)))

let test_ring_deterministic () =
  let ids = shard_ids 5 in
  let r1 = Ring.create ids and r2 = Ring.create ids in
  let rng = Suu_prng.Rng.create ~seed:3 in
  List.iter
    (fun key ->
      let a = Ring.route r1 ~live:(fun _ -> true) key in
      let b = Ring.route r2 ~live:(fun _ -> true) key in
      Alcotest.(check (option string)) "same ring, same key, same shard" a b;
      (match Ring.route_ranked r1 key with
      | first :: _ ->
          Alcotest.(check (option string))
            "route is the head of the ranked order" (Some first) a
      | [] -> Alcotest.fail "empty ranked order"))
    (keys_for rng 200)

let test_ring_validation () =
  (match Ring.create [] with
  | _ -> Alcotest.fail "empty ring should raise"
  | exception Invalid_argument _ -> ());
  match Ring.create [ "a"; "b"; "a" ] with
  | _ -> Alcotest.fail "duplicate ids should raise"
  | exception Invalid_argument _ -> ()

(* --- ring: balance (qcheck over shard counts 2..8) --- *)

let test_ring_balance_qcheck =
  QCheck.Test.make ~count:30 ~name:"ring balance within tolerance (2-8 shards)"
    QCheck.(pair (int_range 2 8) (int_range 0 10_000))
    (fun (n, seed) ->
      let ids = shard_ids n in
      let ring = Ring.create ids in
      let rng = Suu_prng.Rng.create ~seed in
      let nkeys = 2000 in
      let counts = Hashtbl.create 8 in
      List.iter
        (fun key ->
          match Ring.route ring ~live:(fun _ -> true) key with
          | None -> QCheck.Test.fail_report "no shard for key"
          | Some id ->
              Hashtbl.replace counts id
                (1 + Option.value ~default:0 (Hashtbl.find_opt counts id)))
        (keys_for rng nkeys);
      let mean = float_of_int nkeys /. float_of_int n in
      List.for_all
        (fun id ->
          let c =
            float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts id))
          in
          (* Generous statistical band: 2000 keys over <= 8 shards puts
             each shard 6+ sigma inside [0.5, 1.6] x mean. *)
          c >= 0.5 *. mean && c <= 1.6 *. mean)
        ids)

(* --- ring: minimal remapping on leave/rejoin (qcheck) --- *)

let test_ring_remapping_qcheck =
  QCheck.Test.make ~count:30 ~name:"ring remaps only the lost shard's keys"
    QCheck.(pair (int_range 2 8) (int_range 0 10_000))
    (fun (n, seed) ->
      let ids = shard_ids n in
      let ring = Ring.create ids in
      let rng = Suu_prng.Rng.create ~seed in
      let keys = keys_for rng 500 in
      let down = Printf.sprintf "shard%d" (Suu_prng.Rng.int rng n) in
      let all_live _ = true in
      let without id' = id' <> down in
      List.for_all
        (fun key ->
          let before = Ring.route ring ~live:all_live key in
          let during = Ring.route ring ~live:without key in
          let after = Ring.route ring ~live:all_live key in
          (* rejoin restores the original placement exactly *)
          after = before
          &&
          match before with
          | Some owner when owner = down ->
              (* a lost shard's keys land on its 2nd-ranked shard *)
              during <> Some down
              && during
                 = List.nth_opt
                     (List.filter without (Ring.route_ranked ring key))
                     0
          | other ->
              (* every other key must not move at all *)
              during = other)
        keys)

(* --- spawn: readiness-line parsing --- *)

let test_ready_line_parse () =
  let cases =
    [ ("suu-serve listening on 127.0.0.1:45123 (workers=4 queue=64)",
       Some ("127.0.0.1", 45123));
      ("suu-router listening on 0.0.0.0:7490 (shards=3)",
       Some ("0.0.0.0", 7490));
      ("prefix junk then listening on 10.0.0.2:80 suffix",
       Some ("10.0.0.2", 80));
      ("no marker here", None);
      ("suu-serve listening on 127.0.0.1: (workers=4)", None);
      ("suu-serve listening on :7483", None);
      ("listening on 127.0.0.1:999999", None) ]
  in
  List.iter
    (fun (line, expect) ->
      let got =
        Option.map
          (fun (h, p) -> Printf.sprintf "%s:%d" h p)
          (Spawn.addr_of_ready_line line)
      in
      let want = Option.map (fun (h, p) -> Printf.sprintf "%s:%d" h p) expect in
      Alcotest.(check (option string)) line want got)
    cases

let test_spawn_wait_ready () =
  (* A stand-in child that prints noise, then a readiness line. *)
  let child =
    Spawn.spawn ~prog:"/bin/sh"
      ~args:
        [ "-c";
          "echo starting up; echo fake listening on 127.0.0.1:12345 ok; \
           sleep 5" ]
      ()
  in
  (match Spawn.wait_ready ~timeout_s:5.0 child with
  | Result.Ok (h, p) ->
      Alcotest.(check string) "host" "127.0.0.1" h;
      Alcotest.(check int) "port" 12345 p
  | Result.Error msg -> Alcotest.fail msg);
  Spawn.terminate child;
  (* A child that dies without ever becoming ready fails fast. *)
  let dead = Spawn.spawn ~prog:"/bin/sh" ~args:[ "-c"; "exit 3" ] () in
  match Spawn.wait_ready ~timeout_s:5.0 dead with
  | Result.Ok _ -> Alcotest.fail "dead child reported ready"
  | Result.Error _ -> Spawn.terminate dead

(* --- stats merging --- *)

let test_stats_merge_counters () =
  let a =
    [ ("requests_total", "10"); ("uptime_ms", "500"); ("solver", "mwu-0.1");
      ("plan_cache_hits", "8"); ("plan_cache_misses", "2");
      ("plan_cache_hit_rate", "0.8") ]
  in
  let b =
    [ ("requests_total", "30"); ("uptime_ms", "400"); ("solver", "simplex");
      ("plan_cache_hits", "0"); ("plan_cache_misses", "10");
      ("plan_cache_hit_rate", "0") ]
  in
  let m = Stats_merge.merge [ a; b ] in
  let get k = List.assoc k m in
  Alcotest.(check string) "counters sum" "40" (get "requests_total");
  Alcotest.(check string) "uptime takes max" "500" (get "uptime_ms");
  Alcotest.(check string) "first non-numeric wins" "mwu-0.1" (get "solver");
  Alcotest.(check (float 1e-12)) "hit rate recomputed from sums" 0.4
    (float_of_string (get "plan_cache_hit_rate"));
  (* key order follows first sight *)
  Alcotest.(check string) "first key first" "requests_total" (fst (List.hd m))

let test_stats_merge_histograms () =
  let module H = Suu_obs.Histogram in
  let h1 = H.create "x" and h2 = H.create "x" and u = H.create "x" in
  let rng = Suu_prng.Rng.create ~seed:5 in
  for _ = 1 to 400 do
    let v = Suu_prng.Rng.range rng ~lo:0.0 ~hi:2.0 in
    H.record (if Suu_prng.Rng.bool rng then h1 else h2) v;
    H.record u v
  done;
  let fields h =
    let s = H.snapshot h in
    [ ("obs.phase.x.count", string_of_int s.H.count);
      ("obs.phase.x.mean_ms", "ignored");
      ("obs.phase.x.p95_ms", "ignored");
      ("obs.phase.x.raw", H.raw_of_snapshot s) ]
  in
  let m = Stats_merge.merge [ fields h1; fields h2 ] in
  let su = H.snapshot u in
  Alcotest.(check string) "merged count"
    (string_of_int su.H.count)
    (List.assoc "obs.phase.x.count" m);
  (* Bucket counts and max merge exactly; the sum can differ from the
     union's in the last ulp (different addition order). *)
  (match H.snapshot_of_raw (List.assoc "obs.phase.x.raw" m) with
  | None -> Alcotest.fail "merged raw failed to parse"
  | Some sm ->
      Alcotest.(check (array int)) "merged buckets" su.H.buckets sm.H.buckets;
      Alcotest.(check (float 0.0)) "merged max" su.H.max sm.H.max;
      Alcotest.(check (float 1e-9)) "merged sum" su.H.sum sm.H.sum);
  let p95 = float_of_string (List.assoc "obs.phase.x.p95_ms" m) in
  let want = 1000.0 *. H.quantile u su 0.95 in
  Alcotest.(check (float 0.001)) "merged p95 recomputed exactly" want p95

(* --- end-to-end: router over two in-process shards --- *)

let with_two_shards f =
  let s1 = Server.start ~config:Server.default_config () in
  let s2 = Server.start ~config:Server.default_config () in
  Fun.protect
    ~finally:(fun () ->
      Server.stop s1;
      Server.stop s2)
    (fun () -> f s1 s2)

let attach_spec s =
  let port = Server.port s in
  { Router.id = Printf.sprintf "127.0.0.1:%d" port; host = "127.0.0.1";
    port; child = None; respawn = None }

let with_router ?config shards f =
  let r = Router.start ?config ~shards () in
  Fun.protect ~finally:(fun () -> Router.stop r) (fun () -> f r)

(* Raw newline-framed round-trip, for byte-level comparisons. *)
let raw_call ~port payload =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let n = Unix.write_substring fd payload 0 (String.length payload) in
      Alcotest.(check int) "wrote whole request" (String.length payload) n;
      let buf = Buffer.create 512 in
      let chunk = Bytes.create 4096 in
      let rec read_until_done () =
        let got = Unix.read fd chunk 0 (Bytes.length chunk) in
        if got > 0 then begin
          Buffer.add_subbytes buf chunk 0 got;
          let s = Buffer.contents buf in
          if
            String.length s >= 5
            && String.sub s (String.length s - 5) 5 = "done\n"
          then s
          else read_until_done ()
        end
        else Buffer.contents buf
      in
      read_until_done ())

let request_strings () =
  let mk = W.independent uniform in
  let inst1 = mk ~n:6 ~m:2 ~seed:21 in
  let inst2 = mk ~n:8 ~m:3 ~seed:22 in
  let inst3 = mk ~n:4 ~m:2 ~seed:23 in
  List.map P.request_to_string
    [ { P.id = None; deadline_ms = None; body = P.Describe inst1 };
      { P.id = Some "r1"; deadline_ms = None; body = P.Lower_bound inst2 };
      { P.id = None; deadline_ms = Some 10_000;
        body = P.Plan { inst = inst2; policy = "greedy"; seed = 4 } };
      { P.id = Some "r2"; deadline_ms = None;
        body = P.Simulate { inst = inst1; policy = "suu-i-sem"; reps = 4;
                            seed = 7 } };
      { P.id = None; deadline_ms = None;
        body = P.Simulate { inst = inst3; policy = "greedy"; reps = 3;
                            seed = 1 } } ]

let test_e2e_byte_identical () =
  (* Every non-stats reply through the router must be byte-identical to
     a direct server's reply for the same request bytes. *)
  let direct = Server.start ~config:Server.default_config () in
  Fun.protect
    ~finally:(fun () -> Server.stop direct)
    (fun () ->
      with_two_shards (fun s1 s2 ->
          with_router [ attach_spec s1; attach_spec s2 ] (fun r ->
              List.iter
                (fun req ->
                  let via_router = raw_call ~port:(Router.port r) req in
                  let direct_resp = raw_call ~port:(Server.port direct) req in
                  Alcotest.(check string) "routed reply == direct reply"
                    direct_resp via_router)
                (request_strings ()))))

let test_e2e_affinity_and_stats () =
  with_two_shards (fun s1 s2 ->
      with_router [ attach_spec s1; attach_spec s2 ] (fun r ->
          let c = Client.connect ~port:(Router.port r) () in
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () ->
              let inst = W.independent uniform ~n:6 ~m:2 ~seed:33 in
              for _ = 1 to 6 do
                ignore (Client.simulate c ~policy:"greedy" ~reps:2 inst)
              done;
              let fields = Client.stats c () in
              let get k =
                match List.assoc_opt k fields with
                | Some v -> v
                | None -> Alcotest.fail ("missing merged field " ^ k)
              in
              Alcotest.(check string) "both shards reported" "2"
                (get "router_shards_up");
              (* 6 simulates + this stats fan-out (1 per shard) *)
              Alcotest.(check string) "summed simulate counter" "6"
                (get "requests_simulate");
              (* digest affinity: one shard saw all six *)
              let s1n = int_of_string (get "shard.0.requests_total") in
              let s2n = int_of_string (get "shard.1.requests_total") in
              Alcotest.(check bool) "all simulates on one shard" true
                (min s1n s2n <= 1 && max s1n s2n >= 6))))

let test_e2e_failover () =
  with_two_shards (fun s1 s2 ->
      let config =
        { Router.default_config with health_interval_ms = 60_000;
          timeout_ms = 2_000; retries = 1 }
      in
      with_router ~config [ attach_spec s1; attach_spec s2 ] (fun r ->
          let c = Client.connect ~port:(Router.port r) ~retries:3 () in
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () ->
              (* Drive enough distinct instances that both shards own
                 some keys, then kill one shard and do it again: every
                 request must still succeed via re-routing. *)
              let insts =
                List.init 8 (fun i ->
                    W.independent uniform ~n:5 ~m:2 ~seed:(100 + i))
              in
              List.iter
                (fun inst ->
                  ignore (Client.describe c inst))
                insts;
              Alcotest.(check int) "both live before the kill" 2
                (List.length (Router.live_shards r));
              Server.stop s2;
              List.iter
                (fun inst -> ignore (Client.describe c inst))
                insts;
              Alcotest.(check int) "dead shard marked down" 1
                (List.length (Router.live_shards r));
              (* the health prober agrees once it runs *)
              Router.check_health r;
              Alcotest.(check int) "probe keeps it down" 1
                (List.length (Router.live_shards r)))))

let () =
  Alcotest.run "router"
    [
      ( "ring",
        [
          Alcotest.test_case "deterministic placement" `Quick
            test_ring_deterministic;
          Alcotest.test_case "validation" `Quick test_ring_validation;
          QCheck_alcotest.to_alcotest test_ring_balance_qcheck;
          QCheck_alcotest.to_alcotest test_ring_remapping_qcheck;
        ] );
      ( "spawn",
        [
          Alcotest.test_case "readiness-line parse" `Quick
            test_ready_line_parse;
          Alcotest.test_case "wait_ready on a real child" `Quick
            test_spawn_wait_ready;
        ] );
      ( "stats-merge",
        [
          Alcotest.test_case "counters, uptime, hit rate" `Quick
            test_stats_merge_counters;
          Alcotest.test_case "histograms merge exactly" `Quick
            test_stats_merge_histograms;
        ] );
      ( "e2e",
        [
          Alcotest.test_case "byte-identical to direct server" `Quick
            test_e2e_byte_identical;
          Alcotest.test_case "digest affinity + merged stats" `Quick
            test_e2e_affinity_and_stats;
          Alcotest.test_case "failover on shard death" `Quick
            test_e2e_failover;
        ] );
    ]
