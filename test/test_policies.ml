(* End-to-end tests of the paper's algorithms as executable policies:
   SUU-I-OBL, SUU-I-SEM, SUU-C (with its internal invariants), SUU-T,
   the baselines, and the Auto dispatcher.  The strict engine doubles as
   an invariant checker: any ineligible assignment raises. *)

module Dag = Suu_dag.Dag
module Instance = Suu_core.Instance
module Policy = Suu_core.Policy
module Runner = Suu_sim.Runner
module Engine = Suu_sim.Engine
module Trace = Suu_sim.Trace
module W = Suu_workload.Workload
module Rng = Suu_prng.Rng

let uniform = W.Uniform { lo = 0.2; hi = 0.95 }

let completes ?(cap = 200_000) ?(reps = 3) inst policy =
  (* Runs to completion without Invalid_schedule / Horizon_exceeded. *)
  let xs = Runner.makespans ~cap inst policy ~seed:99 ~reps in
  Array.for_all (fun x -> x >= 0.0) xs

(* --- SUU-I-OBL --- *)

let test_obl_plan_properties () =
  let inst = W.independent uniform ~n:12 ~m:4 ~seed:1 in
  let plan = Suu_core.Suu_i_obl.plan inst in
  Alcotest.(check bool)
    "positive horizon" true
    (Suu_core.Oblivious.horizon plan >= 1)

let test_obl_completes_all_hazards () =
  List.iter
    (fun hazard ->
      let inst = W.independent hazard ~n:10 ~m:4 ~seed:2 in
      Alcotest.(check bool)
        (W.hazard_name hazard) true
        (completes inst (Suu_core.Suu_i_obl.policy inst)))
    W.default_hazards

(* Each full pass of the OBL plan gives every job failure probability at
   most 2^(-1/2): makespan should concentrate around O(log n) passes. *)
let test_obl_makespan_sane () =
  let inst = W.independent uniform ~n:16 ~m:4 ~seed:3 in
  let plan = Suu_core.Suu_i_obl.plan inst in
  let h = float_of_int (Suu_core.Oblivious.horizon plan) in
  let mk =
    Runner.expected_makespan inst (Suu_core.Suu_i_obl.policy inst) ~seed:4
      ~reps:20
  in
  (* crude: no more than ~4 log2 n passes on average *)
  Alcotest.(check bool)
    (Printf.sprintf "mk %.1f <= %.1f" mk (4.0 *. h *. 4.0))
    true
    (mk <= 4.0 *. h *. 4.0)

(* --- SUU-I-SEM --- *)

let test_sem_completes_all_hazards () =
  List.iter
    (fun hazard ->
      let inst = W.independent hazard ~n:10 ~m:4 ~seed:5 in
      Alcotest.(check bool)
        (W.hazard_name hazard) true
        (completes inst (Suu_core.Suu_i_sem.policy inst)))
    W.default_hazards

let test_sem_with_mwu_solver () =
  let inst = W.independent uniform ~n:12 ~m:4 ~seed:6 in
  Alcotest.(check bool)
    "mwu-backed SEM completes" true
    (completes inst
       (Suu_core.Suu_i_sem.policy ~solver:(Suu_core.Solver_choice.Mwu 0.1)
          inst))

let test_sem_subset () =
  (* SEM restricted to a subset must leave other jobs untouched: running
     it alone can never finish, so give the subset all the work. *)
  let inst = W.independent uniform ~n:6 ~m:3 ~seed:7 in
  let sem = Suu_core.Suu_i_sem.policy ~jobs:[| 0; 2; 4 |] inst in
  let stepper = Policy.fresh sem (Rng.create ~seed:1) in
  let remaining = Array.make 6 true in
  let eligible = Array.make 6 true in
  for time = 0 to 50 do
    let a = stepper ~time ~remaining ~eligible in
    Array.iter
      (fun j ->
        Alcotest.(check bool)
          "only scoped jobs" true
          (j = -1 || j = 0 || j = 2 || j = 4))
      a
  done

let test_sem_serial_tail_small_n () =
  (* n <= m: after K rounds survivors run serially.  Force survivors with
     huge thresholds (adversarial trace): must still complete. *)
  let inst = W.independent uniform ~n:3 ~m:6 ~seed:8 in
  let trace = Trace.of_thresholds [| 40.0; 45.0; 50.0 |] in
  let mk =
    Engine.makespan ~cap:200_000 inst (Suu_core.Suu_i_sem.policy inst) ~trace
      ~rng:(Rng.create ~seed:0)
  in
  Alcotest.(check bool) "finished" true (mk > 0)

let test_sem_repeat_tail_large_n () =
  (* m < n: after K rounds the round-K plan repeats. *)
  let inst = W.independent uniform ~n:8 ~m:2 ~seed:9 in
  let trace =
    Trace.of_thresholds (Array.init 8 (fun j -> 30.0 +. float_of_int j))
  in
  let mk =
    Engine.makespan ~cap:400_000 inst (Suu_core.Suu_i_sem.policy inst) ~trace
      ~rng:(Rng.create ~seed:0)
  in
  Alcotest.(check bool) "finished" true (mk > 0)

(* --- round-plan caching --- *)

let plans_equal a b =
  let module O = Suu_core.Oblivious in
  O.horizon a = O.horizon b
  && O.machines a = O.machines b
  && (let ok = ref true in
      for k = 0 to O.horizon a - 1 do
        ok := !ok && O.assignment_at a k = O.assignment_at b k
      done;
      !ok)

let test_plan_cache_matches_fresh () =
  let module PC = Suu_core.Plan_cache in
  let inst = W.independent uniform ~n:10 ~m:4 ~seed:23 in
  let cache = PC.create inst in
  let all = Array.init 10 Fun.id in
  let some = [| 1; 4; 5; 8 |] in
  List.iter
    (fun (round, survivors) ->
      let cached = PC.plan cache ~round ~survivors in
      let again = PC.plan cache ~round ~survivors in
      Alcotest.(check bool) "second lookup hits (same plan)" true
        (cached == again);
      let fresh = PC.fresh_plan inst ~round ~survivors in
      Alcotest.(check bool) "cached plan equals a fresh solve" true
        (plans_equal cached fresh))
    [ (1, all); (2, all); (1, some); (3, some) ];
  let s = PC.stats cache in
  Alcotest.(check int) "4 misses" 4 s.PC.misses;
  Alcotest.(check int) "4 hits" 4 s.PC.hits;
  Alcotest.(check int) "no evictions" 0 s.PC.evictions

let test_plan_cache_distinguishes_keys () =
  let module PC = Suu_core.Plan_cache in
  let inst = W.independent uniform ~n:8 ~m:3 ~seed:24 in
  let cache = PC.create inst in
  let a = PC.plan cache ~round:1 ~survivors:[| 0; 1; 2 |] in
  let b = PC.plan cache ~round:2 ~survivors:[| 0; 1; 2 |] in
  let c = PC.plan cache ~round:1 ~survivors:[| 0; 1; 3 |] in
  Alcotest.(check bool) "round is part of the key" true (not (a == b));
  Alcotest.(check bool) "survivors are part of the key" true (not (a == c));
  Alcotest.(check bool) "empty survivors rejected" true
    (try
       ignore (PC.plan cache ~round:1 ~survivors:[||]);
       false
     with Invalid_argument _ -> true)

(* A key insertion copies the survivor array: mutating the caller's
   array afterwards must not corrupt the cache. *)
let test_plan_cache_key_isolation () =
  let module PC = Suu_core.Plan_cache in
  let inst = W.independent uniform ~n:8 ~m:3 ~seed:25 in
  let cache = PC.create inst in
  let survivors = [| 0; 1; 2 |] in
  let a = PC.plan cache ~round:1 ~survivors in
  survivors.(0) <- 5;
  let b = PC.plan cache ~round:1 ~survivors:[| 0; 1; 2 |] in
  Alcotest.(check bool) "original key still hits" true (a == b)

(* Past the entry bound the cache must keep absorbing new keys by
   evicting the oldest half, not stop inserting: a long-lived daemon
   otherwise degrades to one LP solve per request. *)
let test_plan_cache_eviction () =
  let module PC = Suu_core.Plan_cache in
  let inst = W.independent uniform ~n:12 ~m:3 ~seed:26 in
  let cap = 6 in
  let cache = PC.create ~max_entries:cap inst in
  (* 12 distinct singleton survivor sets: twice the capacity. *)
  for j = 0 to 11 do
    ignore (PC.plan cache ~round:1 ~survivors:[| j |])
  done;
  let s = PC.stats cache in
  Alcotest.(check int) "all lookups missed" 12 s.PC.misses;
  Alcotest.(check bool)
    (Printf.sprintf "evictions happened (%d)" s.PC.evictions)
    true (s.PC.evictions > 0);
  Alcotest.(check bool)
    (Printf.sprintf "size %d stays within bound" (PC.size cache))
    true
    (PC.size cache <= cap);
  (* The newest key must still be resident (FIFO evicts the oldest). *)
  let before = (PC.stats cache).PC.hits in
  ignore (PC.plan cache ~round:1 ~survivors:[| 11 |]);
  Alcotest.(check int) "newest key hits" (before + 1) (PC.stats cache).PC.hits;
  (* And a key evicted long ago re-solves to an identical plan. *)
  let again = PC.plan cache ~round:1 ~survivors:[| 0 |] in
  let fresh = PC.fresh_plan inst ~round:1 ~survivors:[| 0 |] in
  Alcotest.(check bool) "re-solved plan identical" true (plans_equal again fresh);
  Alcotest.(check bool) "max_entries must be positive" true
    (try
       ignore (PC.create ~max_entries:0 inst);
       false
     with Invalid_argument _ -> true)

(* Regression for the serve-bench miss storm: the old cache evicted in
   insertion order, so the {e hottest} entries (inserted first, hit on
   every subsequent request) were exactly the ones dropped when churn
   filled the table.  Eviction must be recency-based: a key touched
   between churn batches survives a churn of more than [capacity]
   distinct cold keys. *)
let test_plan_cache_lru_keeps_hot_keys () =
  let module PC = Suu_core.Plan_cache in
  let inst = W.independent uniform ~n:16 ~m:3 ~seed:27 in
  let cache = PC.create ~max_entries:8 inst in
  let hot = [| 0; 1 |] in
  ignore (PC.plan cache ~round:1 ~survivors:hot);
  (* Churn 12 > capacity distinct cold keys, touching the hot key
     between batches the way the serve path re-requests round-1 plans
     on every replication. *)
  for j = 2 to 13 do
    ignore (PC.plan cache ~round:1 ~survivors:[| j |]);
    if j mod 3 = 0 then ignore (PC.plan cache ~round:1 ~survivors:hot)
  done;
  let before = (PC.stats cache).PC.hits in
  ignore (PC.plan cache ~round:1 ~survivors:hot);
  Alcotest.(check int) "hot key still resident after churn" (before + 1)
    (PC.stats cache).PC.hits;
  Alcotest.(check bool) "evictions did happen" true
    ((PC.stats cache).PC.evictions > 0)

(* Two handles onto the same (instance, solver) share the process-wide
   store: work done through one is a hit through the other.  This is
   the fix for the old per-policy caches re-solving identical LPs. *)
let test_plan_cache_global_sharing () =
  let module PC = Suu_core.Plan_cache in
  let inst = W.independent uniform ~n:9 ~m:3 ~seed:28 in
  let a = PC.create inst in
  let b = PC.create inst in
  let survivors = [| 0; 2; 4; 6 |] in
  let pa = PC.plan a ~round:2 ~survivors in
  let pb = PC.plan b ~round:2 ~survivors in
  Alcotest.(check bool) "handles share the physical plan" true (pa == pb);
  Alcotest.(check int) "first handle missed" 1 (PC.stats a).PC.misses;
  Alcotest.(check int) "second handle hit" 1 (PC.stats b).PC.hits;
  Alcotest.(check bool) "hit_rate reflects per-handle traffic" true
    (PC.hit_rate (PC.stats b) = 1.0 && PC.hit_rate (PC.stats a) = 0.0);
  (* A different solver must not share plans: solver is plan identity. *)
  let c = PC.create ~solver:Suu_core.Solver_choice.Revised inst in
  let pc = PC.plan c ~round:2 ~survivors in
  Alcotest.(check int) "different solver misses" 1 (PC.stats c).PC.misses;
  Alcotest.(check bool) "but computes an equivalent plan" true
    (plans_equal pa pc)

let test_sem_beats_obl_near_one () =
  (* The doubling rounds should not lose to plain repetition on hazard
     rates near 1 (where repetitions pile up). *)
  let inst = W.independent W.Near_one ~n:40 ~m:8 ~seed:10 in
  let sem =
    Runner.expected_makespan inst (Suu_core.Suu_i_sem.policy inst) ~seed:11
      ~reps:8
  in
  let obl =
    Runner.expected_makespan inst (Suu_core.Suu_i_obl.policy inst) ~seed:11
      ~reps:8
  in
  Alcotest.(check bool)
    (Printf.sprintf "sem %.1f <= 1.5 * obl %.1f" sem obl)
    true
    (sem <= 1.5 *. obl)

(* Statistical regression guard on the guarantee itself: on tiny random
   instances SUU-I-SEM's measured expected makespan stays within a
   generous constant of the exact optimum (the theory allows O(K) with
   K = 4 here; the observed constant is ~2-3, we assert < 8). *)
let prop_sem_ratio_bounded_vs_opt =
  QCheck.Test.make ~count:15 ~name:"SEM within 8x of exact optimum"
    QCheck.small_int (fun seed ->
      let rng = Suu_prng.Rng.create ~seed in
      let n = 2 + Suu_prng.Rng.int rng 3 in
      let m = 1 + Suu_prng.Rng.int rng 2 in
      let q =
        Array.init m (fun _ ->
            Array.init n (fun _ -> Suu_prng.Rng.range rng ~lo:0.2 ~hi:0.9))
      in
      let inst = Instance.make ~dag:(Suu_dag.Dag.empty n) q in
      let opt = Suu_core.Exact_dp.expected_makespan inst in
      let sem =
        Runner.expected_makespan inst (Suu_core.Suu_i_sem.policy inst)
          ~seed ~reps:300
      in
      sem /. opt < 8.0)

(* --- baselines --- *)

let test_baselines_complete () =
  let inst = W.independent uniform ~n:10 ~m:3 ~seed:12 in
  List.iter
    (fun p -> Alcotest.(check bool) (Policy.name p) true (completes inst p))
    [
      Suu_core.Baselines.greedy_completion inst;
      Suu_core.Baselines.round_robin inst;
      Suu_core.Baselines.serial inst;
    ]

let test_baselines_respect_precedence () =
  let inst = W.chains uniform ~z:3 ~length:4 ~m:3 ~seed:13 in
  List.iter
    (fun p -> Alcotest.(check bool) (Policy.name p) true (completes inst p))
    [
      Suu_core.Baselines.greedy_completion inst;
      Suu_core.Baselines.round_robin inst;
      Suu_core.Baselines.serial inst;
    ]

let test_greedy_oblivious_coverage () =
  (* The LP-free assignment must reach the target mass on every job. *)
  let inst = W.independent uniform ~n:12 ~m:4 ~seed:40 in
  let a = Suu_core.Baselines.greedy_oblivious_assignment inst in
  for j = 0 to 11 do
    Alcotest.(check bool)
      "covered" true
      (Suu_core.Assignment.clipped_log_mass inst ~target:0.5 a j
      >= 0.5 -. 1e-9)
  done

let test_greedy_oblivious_completes () =
  List.iter
    (fun hazard ->
      let inst = W.independent hazard ~n:10 ~m:4 ~seed:41 in
      Alcotest.(check bool)
        (W.hazard_name hazard) true
        (completes inst (Suu_core.Baselines.greedy_oblivious inst)))
    W.default_hazards

let test_greedy_oblivious_custom_target () =
  let inst = W.independent uniform ~n:6 ~m:3 ~seed:42 in
  let a =
    Suu_core.Baselines.greedy_oblivious_assignment ~target:2.0 inst
  in
  for j = 0 to 5 do
    Alcotest.(check bool)
      "covered at 2.0" true
      (Suu_core.Assignment.clipped_log_mass inst ~target:2.0 a j
      >= 2.0 -. 1e-9)
  done

(* --- SUU-C --- *)

let test_suu_c_prepare_invariants () =
  let inst = W.chains uniform ~z:4 ~length:5 ~m:4 ~seed:14 in
  let chains =
    match Suu_dag.Chains.of_dag (Instance.dag inst) with
    | Some c -> c
    | None -> Alcotest.fail "not chains"
  in
  let prep = Suu_core.Suu_c.prepare inst ~chains in
  Alcotest.(check bool) "gamma >= 1" true (prep.Suu_core.Suu_c.gamma >= 1);
  Alcotest.(check bool) "load >= 1" true (prep.Suu_core.Suu_c.load >= 1);
  (* every job got its unit of (clipped) log mass *)
  for j = 0 to Instance.n inst - 1 do
    Alcotest.(check bool)
      "unit mass" true
      (Suu_core.Assignment.clipped_log_mass inst ~target:1.0
         prep.Suu_core.Suu_c.assignment j
      >= 1.0 -. 1e-6)
  done;
  (* long jobs really are longer than gamma *)
  List.iter
    (fun j ->
      Alcotest.(check bool)
        "long means long" true
        (Suu_core.Assignment.job_length prep.Suu_core.Suu_c.assignment j
        > prep.Suu_core.Suu_c.gamma))
    prep.Suu_core.Suu_c.long_jobs

let prop_suu_c_prepare_invariants =
  QCheck.Test.make ~count:30 ~name:"prepare invariants on random chains"
    QCheck.small_int (fun seed ->
      let rng = Suu_prng.Rng.create ~seed in
      let z = 2 + Suu_prng.Rng.int rng 4 in
      let len = 2 + Suu_prng.Rng.int rng 4 in
      let m = 2 + Suu_prng.Rng.int rng 3 in
      let inst = W.chains uniform ~z ~length:len ~m ~seed in
      let chains =
        match Suu_dag.Chains.of_dag (Instance.dag inst) with
        | Some c -> c
        | None -> assert false
      in
      let prep = Suu_core.Suu_c.prepare inst ~chains in
      let open Suu_core.Suu_c in
      prep.gamma >= 1 && prep.load >= 1
      && List.for_all
           (fun j ->
             Suu_core.Assignment.job_length prep.assignment j > prep.gamma)
           prep.long_jobs
      && List.for_all
           (fun chain ->
             Array.for_all
               (fun j ->
                 Suu_core.Assignment.clipped_log_mass inst ~target:1.0
                   prep.assignment j
                 >= 1.0 -. 1e-6)
               chain)
           chains)

let test_suu_c_completes () =
  List.iter
    (fun hazard ->
      let inst = W.chains hazard ~z:3 ~length:4 ~m:3 ~seed:15 in
      Alcotest.(check bool)
        (W.hazard_name hazard) true
        (completes inst (Suu_core.Suu_c.policy inst)))
    W.default_hazards

let test_suu_c_random_lengths () =
  let inst = W.random_chains uniform ~n:14 ~z:4 ~m:3 ~seed:16 in
  Alcotest.(check bool)
    "completes" true
    (completes inst (Suu_core.Suu_c.policy inst))

let test_suu_c_stats_populated () =
  let inst = W.chains uniform ~z:3 ~length:4 ~m:3 ~seed:17 in
  let stats = Suu_core.Suu_c.new_stats () in
  let p = Suu_core.Suu_c.policy ~stats inst in
  let _ = Runner.makespans inst p ~seed:18 ~reps:2 in
  Alcotest.(check bool)
    "supersteps counted" true
    (stats.Suu_core.Suu_c.supersteps > 0);
  Alcotest.(check bool)
    "congestion seen" true
    (stats.Suu_core.Suu_c.max_congestion >= 1);
  Alcotest.(check bool)
    "total >= max" true
    (stats.Suu_core.Suu_c.total_congestion
    >= stats.Suu_core.Suu_c.max_congestion)

let test_suu_c_no_delays_option () =
  let inst = W.chains uniform ~z:3 ~length:4 ~m:3 ~seed:19 in
  Alcotest.(check bool)
    "completes without delays" true
    (completes inst (Suu_core.Suu_c.policy ~random_delays:false inst))

let test_suu_c_delay_granularity () =
  (* Coarse delay lattices (the nonpolynomial-t_LP2 device) still yield
     complete, valid schedules. *)
  let inst = W.chains uniform ~z:4 ~length:4 ~m:3 ~seed:43 in
  List.iter
    (fun g ->
      Alcotest.(check bool)
        (Printf.sprintf "granularity %d" g)
        true
        (completes inst (Suu_core.Suu_c.policy ~delay_granularity:g inst)))
    [ 1; 2; 5; 1000 ];
  Alcotest.(check bool)
    "rejects granularity 0" true
    (try
       ignore (Suu_core.Suu_c.policy ~delay_granularity:0 inst);
       false
     with Invalid_argument _ -> true)

let test_suu_c_rejects_non_chains () =
  let inst = W.forest uniform ~n:8 ~trees:2 ~orientation:`Out ~m:3 ~seed:20 in
  Alcotest.(check bool)
    "raises" true
    (try
       ignore (Suu_core.Suu_c.policy inst);
       false
     with Invalid_argument _ -> true)

let test_suu_c_singleton_chains_only () =
  (* Chains that are all singletons degenerate to independent jobs. *)
  let inst = W.independent uniform ~n:6 ~m:3 ~seed:21 in
  let chains = List.init 6 (fun j -> [| j |]) in
  let prep = Suu_core.Suu_c.prepare inst ~chains in
  let p = Suu_core.Suu_c.policy_of_prepared inst prep in
  Alcotest.(check bool) "completes" true (completes inst p)

let test_suu_c_long_job_path () =
  (* Specialists hazard with few machines forces long assignments, so the
     pause/SEM machinery actually runs. *)
  let inst =
    W.chains (W.Specialists { capable = 1 }) ~z:2 ~length:6 ~m:2 ~seed:22
  in
  let stats = Suu_core.Suu_c.new_stats () in
  let p = Suu_core.Suu_c.policy ~stats inst in
  Alcotest.(check bool) "completes" true (completes ~cap:400_000 inst p)

(* --- SUU-T --- *)

let test_suu_t_completes () =
  List.iter
    (fun orientation ->
      let inst = W.forest uniform ~n:12 ~trees:3 ~orientation ~m:3 ~seed:23 in
      Alcotest.(check bool)
        "completes" true
        (completes inst (Suu_core.Suu_t.policy inst)))
    [ `Out; `In; `Mixed ]

let test_suu_t_rejects_general () =
  let inst = W.mapreduce uniform ~maps:3 ~reduces:3 ~m:3 ~seed:24 in
  Alcotest.(check bool)
    "raises" true
    (try
       ignore (Suu_core.Suu_t.policy inst);
       false
     with Invalid_argument _ -> true)

(* --- Auto --- *)

let test_auto_dispatch_names () =
  let ind = W.independent uniform ~n:4 ~m:2 ~seed:25 in
  let ch = W.chains uniform ~z:2 ~length:2 ~m:2 ~seed:25 in
  let fo = W.forest uniform ~n:6 ~trees:2 ~orientation:`Out ~m:2 ~seed:25 in
  let mr = W.mapreduce uniform ~maps:2 ~reduces:2 ~m:2 ~seed:25 in
  Alcotest.(check string) "independent" "suu-i-sem"
    (Policy.name (Suu_core.Auto.policy ind));
  Alcotest.(check string) "chains" "suu-c"
    (Policy.name (Suu_core.Auto.policy ch));
  Alcotest.(check string) "forest" "suu-t"
    (Policy.name (Suu_core.Auto.policy fo));
  Alcotest.(check string) "general" "greedy(general-dag)"
    (Policy.name (Suu_core.Auto.policy mr))

let test_auto_completes_each_shape () =
  let insts =
    [
      W.independent uniform ~n:6 ~m:3 ~seed:26;
      W.chains uniform ~z:2 ~length:3 ~m:3 ~seed:26;
      W.forest uniform ~n:7 ~trees:2 ~orientation:`Mixed ~m:3 ~seed:26;
      W.mapreduce uniform ~maps:3 ~reduces:2 ~m:3 ~seed:26;
    ]
  in
  List.iter
    (fun inst ->
      Alcotest.(check bool)
        (Instance.name inst) true
        (completes inst (Suu_core.Auto.policy inst)))
    insts

(* --- paired traces --- *)

let test_paired_traces_identical () =
  (* Same seed means the same hidden thresholds for both policies. *)
  let inst = W.independent uniform ~n:8 ~m:3 ~seed:27 in
  let a = Runner.makespans inst (Suu_core.Baselines.serial inst) ~seed:1 ~reps:5 in
  let b = Runner.makespans inst (Suu_core.Baselines.serial inst) ~seed:1 ~reps:5 in
  Alcotest.(check bool) "reproducible" true (a = b)

let () =
  Alcotest.run "policies"
    [
      ( "suu-i-obl",
        [
          Alcotest.test_case "plan" `Quick test_obl_plan_properties;
          Alcotest.test_case "all hazards" `Slow
            test_obl_completes_all_hazards;
          Alcotest.test_case "makespan sane" `Slow test_obl_makespan_sane;
        ] );
      ( "suu-i-sem",
        [
          Alcotest.test_case "all hazards" `Slow
            test_sem_completes_all_hazards;
          Alcotest.test_case "mwu backend" `Quick test_sem_with_mwu_solver;
          Alcotest.test_case "subset scope" `Quick test_sem_subset;
          Alcotest.test_case "serial tail" `Quick
            test_sem_serial_tail_small_n;
          Alcotest.test_case "repeat tail" `Quick
            test_sem_repeat_tail_large_n;
          Alcotest.test_case "near-one vs obl" `Slow
            test_sem_beats_obl_near_one;
        ] );
      ( "plan-cache",
        [
          Alcotest.test_case "cached equals fresh" `Quick
            test_plan_cache_matches_fresh;
          Alcotest.test_case "key discrimination" `Quick
            test_plan_cache_distinguishes_keys;
          Alcotest.test_case "key isolation" `Quick
            test_plan_cache_key_isolation;
          Alcotest.test_case "eviction" `Quick test_plan_cache_eviction;
          Alcotest.test_case "LRU keeps hot keys" `Quick
            test_plan_cache_lru_keeps_hot_keys;
          Alcotest.test_case "global sharing" `Quick
            test_plan_cache_global_sharing;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "complete" `Quick test_baselines_complete;
          Alcotest.test_case "precedence" `Quick
            test_baselines_respect_precedence;
          Alcotest.test_case "greedy-oblivious coverage" `Quick
            test_greedy_oblivious_coverage;
          Alcotest.test_case "greedy-oblivious completes" `Slow
            test_greedy_oblivious_completes;
          Alcotest.test_case "greedy-oblivious target" `Quick
            test_greedy_oblivious_custom_target;
        ] );
      ( "suu-c",
        [
          Alcotest.test_case "prepare invariants" `Quick
            test_suu_c_prepare_invariants;
          QCheck_alcotest.to_alcotest prop_suu_c_prepare_invariants;
          Alcotest.test_case "all hazards" `Slow test_suu_c_completes;
          Alcotest.test_case "random lengths" `Quick
            test_suu_c_random_lengths;
          Alcotest.test_case "stats" `Quick test_suu_c_stats_populated;
          Alcotest.test_case "no delays" `Quick test_suu_c_no_delays_option;
          Alcotest.test_case "delay granularity" `Quick
            test_suu_c_delay_granularity;
          Alcotest.test_case "rejects non-chains" `Quick
            test_suu_c_rejects_non_chains;
          Alcotest.test_case "singleton chains" `Quick
            test_suu_c_singleton_chains_only;
          Alcotest.test_case "long jobs" `Slow test_suu_c_long_job_path;
        ] );
      ( "suu-t",
        [
          Alcotest.test_case "completes" `Slow test_suu_t_completes;
          Alcotest.test_case "rejects general" `Quick
            test_suu_t_rejects_general;
        ] );
      ( "auto",
        [
          Alcotest.test_case "dispatch" `Quick test_auto_dispatch_names;
          Alcotest.test_case "completes" `Slow test_auto_completes_each_shape;
        ] );
      ( "pairing",
        [
          Alcotest.test_case "reproducible" `Quick
            test_paired_traces_identical;
        ] );
      ( "guarantees",
        [ QCheck_alcotest.to_alcotest prop_sem_ratio_bounded_vs_opt ] );
      ( "scale",
        [
          Alcotest.test_case "SEM at n=512 via MWU" `Slow (fun () ->
              let inst = W.independent W.Near_one ~n:512 ~m:16 ~seed:71 in
              let p =
                Suu_core.Suu_i_sem.policy
                  ~solver:(Suu_core.Solver_choice.Mwu 0.1) inst
              in
              Alcotest.(check bool)
                "completes" true
                (completes ~cap:2_000_000 ~reps:2 inst p));
          Alcotest.test_case "SUU-C at n=240" `Slow (fun () ->
              let inst = W.chains uniform ~z:24 ~length:10 ~m:4 ~seed:72 in
              Alcotest.(check bool)
                "completes" true
                (completes ~cap:2_000_000 ~reps:2 inst
                   (Suu_core.Suu_c.policy inst)));
        ] );
    ]
