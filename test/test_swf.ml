(* Tests for SWF trace ingestion and the arrival processes: parse
   round-trips, located errors, trace-to-instance determinism, and
   statistical sanity of the synthetic arrival generators. *)

module Swf = Suu_workload.Swf
module A = Suu_workload.Arrivals
module Instance = Suu_core.Instance

let sample =
  "; Version: 2.2\n\
   ; MaxProcs: 8\n\
   ; a plain comment, not a directive\n\
   1 0 5 120 1 110 512 1 300 1024 1 1 1 1 1 1 -1 -1\n\
   2 30 12 3600 4 3500 2048 4 7200 4096 1 3 1 2 1 1 -1 -1\n\
   3 95 0 45 1 40 256 1 60 512 1 2 1 3 1 1 -1 10.5\n"

let test_parse_basic () =
  let t = Swf.of_string sample in
  Alcotest.(check int) "jobs" 3 (Array.length t.Swf.jobs);
  Alcotest.(check (list (pair string string)))
    "directives"
    [ ("Version", "2.2"); ("MaxProcs", "8") ]
    t.Swf.directives;
  let j = t.Swf.jobs.(1) in
  Alcotest.(check int) "id" 2 j.Swf.id;
  Alcotest.(check (float 0.0)) "submit" 30.0 j.Swf.submit;
  Alcotest.(check (float 0.0)) "runtime" 3600.0 j.Swf.runtime;
  Alcotest.(check int) "procs" 4 j.Swf.procs;
  Alcotest.(check int) "user" 3 j.Swf.user;
  Alcotest.(check (float 0.0)) "think" 10.5 t.Swf.jobs.(2).Swf.think_time

let test_roundtrip_fixed () =
  let t = Swf.of_string sample in
  let t' = Swf.of_string (Swf.to_string t) in
  Alcotest.(check bool) "of_string . to_string = id" true (t = t')

let check_located_failure name input expected_substring =
  match Swf.of_string input with
  | _ -> Alcotest.fail (name ^ ": expected a parse failure")
  | exception Failure msg ->
      if
        not
          (String.length msg >= String.length expected_substring
          && String.sub msg 0 (String.length expected_substring)
             = expected_substring)
      then
        Alcotest.failf "%s: error %S does not start with %S" name msg
          expected_substring

let test_located_errors () =
  (* line 2: truncated job line *)
  check_located_failure "truncated" "; Version: 2.2\n1 0 5 120 1\n"
    "Swf: line 2: expected 18 fields, got 5";
  (* line 1: non-numeric runtime (field 4) *)
  check_located_failure "bad field"
    "1 0 5 oops 1 110 512 1 300 1024 1 1 1 1 1 1 -1 -1\n"
    "Swf: line 1: field 4 (run time)";
  (* line 3: too many fields *)
  check_located_failure "overlong"
    "; c\n; d\n1 0 5 120 1 110 512 1 300 1024 1 1 1 1 1 1 -1 -1 99\n"
    "Swf: line 3: expected 18 fields, got 19"

(* qcheck round-trip over generated jobs: job_to_line is canonical and
   parse_line inverts it. *)
let job_gen =
  QCheck.Gen.(
    let num = map float_of_int (int_range (-1) 100000) in
    let frac = map (fun k -> float_of_int k /. 8.0) (int_range 0 80000) in
    let time = oneof [ num; frac ] in
    let id = int_range 1 999999 in
    let small = int_range (-1) 512 in
    map
      (fun ((id, submit, wait, runtime), (procs, user, group), (a, b, c)) ->
        {
          Swf.id;
          submit;
          wait;
          runtime;
          procs;
          cpu_used = a;
          mem_used = b;
          req_procs = group;
          req_time = c;
          req_mem = a;
          status = 1;
          user;
          group;
          executable = user;
          queue = 1;
          partition = 1;
          prec_job = -1;
          think_time = wait;
        })
      (triple
         (quad id time time time)
         (triple small small small)
         (triple time time time)))

let job_arb =
  QCheck.make job_gen ~print:(fun j -> Swf.job_to_line j)

let prop_job_roundtrip =
  QCheck.Test.make ~count:500 ~name:"job_to_line / parse_line round-trip"
    job_arb (fun j ->
      match Swf.parse_line ~lineno:1 (Swf.job_to_line j) with
      | Some j' -> j = j'
      | None -> false)

let test_mapping_deterministic () =
  let t = Swf.of_string sample in
  let a = Swf.instances t and b = Swf.instances t in
  Alcotest.(check int) "one instance per job" 3 (Array.length a);
  Array.iteri
    (fun k ((_, ia) : Swf.job * Instance.t) ->
      let _, ib = b.(k) in
      Alcotest.(check string)
        (Printf.sprintf "instance %d identical" k)
        (Suu_core.Instance_io.to_string ia)
        (Suu_core.Instance_io.to_string ib))
    a;
  (* a different seed changes the matrices *)
  let c =
    Swf.instances ~mapping:{ Swf.default_mapping with Swf.seed = 9 } t
  in
  let differs = ref false in
  Array.iteri
    (fun k ((_, ia) : Swf.job * Instance.t) ->
      let _, ic = c.(k) in
      if
        Suu_core.Instance_io.to_string ia
        <> Suu_core.Instance_io.to_string ic
      then differs := true)
    a;
  Alcotest.(check bool) "seed changes the mapping" true !differs

let test_mapping_calibration () =
  let t = Swf.of_string sample in
  let pairs = Swf.instances t in
  (* width: job 2 has 4 allocated processors *)
  let _, wide = pairs.(1) in
  Alcotest.(check int) "width from procs" 4 (Instance.n wide);
  Alcotest.(check int) "machines from mapping" 4 (Instance.m wide);
  let _, narrow = pairs.(0) in
  Alcotest.(check int) "width-1 job" 1 (Instance.n narrow);
  (* calibration direction: the 3600 s job must carry at least as much
     failure mass per machine as the 45 s job of the same pool *)
  let _, short = pairs.(2) in
  let mean_q inst =
    let s = ref 0.0 and k = ref 0 in
    for i = 0 to Instance.m inst - 1 do
      for j = 0 to Instance.n inst - 1 do
        s := !s +. Instance.q inst i j;
        incr k
      done
    done;
    !s /. float_of_int !k
  in
  Alcotest.(check bool)
    "longer runtime, higher q mass" true
    (mean_q wide > mean_q short);
  (* every generated job keeps a sub-1 machine *)
  Array.iter
    (fun ((_, inst) : Swf.job * Instance.t) ->
      for j = 0 to Instance.n inst - 1 do
        let any = ref false in
        for i = 0 to Instance.m inst - 1 do
          if Instance.q inst i j < 1.0 then any := true
        done;
        Alcotest.(check bool) "solvable" true !any
      done)
    pairs

let test_arrival_times () =
  let t =
    Swf.of_string
      "1 100 0 5 1 -1 -1 1 -1 -1 1 1 1 1 1 1 -1 -1\n\
       2 160 0 5 1 -1 -1 1 -1 -1 1 1 1 1 1 1 -1 -1\n\
       3 130 0 5 1 -1 -1 1 -1 -1 1 1 1 1 1 1 -1 -1\n"
  in
  (* normalized to 0 and clamped non-decreasing despite the
     out-of-order third stamp *)
  Alcotest.(check (array (float 0.0)))
    "normalized + clamped" [| 0.0; 60.0; 60.0 |] (Swf.arrival_times t)

let test_spec_parsing () =
  (match A.spec_of_string "poisson:25" with
  | Ok (A.Poisson { rate }) ->
      Alcotest.(check (float 0.0)) "rate" 25.0 rate
  | _ -> Alcotest.fail "poisson:25 should parse");
  (match A.spec_of_string "bursty" with
  | Ok (A.Bursty _) -> ()
  | _ -> Alcotest.fail "bursty defaults should parse");
  (match A.spec_of_string "diurnal:10:120:0.5" with
  | Ok (A.Diurnal { mean_rate; period; amplitude }) ->
      Alcotest.(check (float 0.0)) "rate" 10.0 mean_rate;
      Alcotest.(check (float 0.0)) "period" 120.0 period;
      Alcotest.(check (float 0.0)) "amp" 0.5 amplitude
  | _ -> Alcotest.fail "diurnal params should parse");
  (match A.spec_of_string "poisson:-3" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative rate must be rejected");
  (match A.spec_of_string "wibble" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown spec must be rejected")

let monotone xs =
  let ok = ref true in
  Array.iteri (fun i x -> if i > 0 && x < xs.(i - 1) then ok := false) xs;
  !ok

let test_arrivals_deterministic () =
  List.iter
    (fun spec ->
      let a = A.take (A.create ~seed:7 spec) 200 in
      let b = A.take (A.create ~seed:7 spec) 200 in
      Alcotest.(check bool)
        (A.spec_to_string spec ^ " deterministic")
        true (a = b);
      Alcotest.(check bool)
        (A.spec_to_string spec ^ " monotone")
        true (monotone a))
    [
      A.Poisson { rate = 10.0 };
      A.Bursty
        { rate_on = 20.0; rate_off = 0.5; mean_on = 2.0; mean_off = 8.0 };
      A.Diurnal { mean_rate = 5.0; period = 60.0; amplitude = 0.8 };
    ]

(* Statistical sanity under a fixed seed: with n exponential
   inter-arrivals of rate r, the mean inter-arrival is within the
   normal-approximation 99.9% band around 1/r (width 3.29 sigma,
   sigma = 1/(r sqrt n)).  Deterministic: the seed is fixed. *)
let test_poisson_mean_ci () =
  let rate = 50.0 in
  let n = 4000 in
  let xs = A.take (A.create ~seed:3 (A.Poisson { rate })) n in
  let mean_gap = xs.(n - 1) /. float_of_int (n - 1) in
  let expected = 1.0 /. rate in
  let sigma = expected /. sqrt (float_of_int (n - 1)) in
  let dev = Float.abs (mean_gap -. expected) in
  if dev > 3.29 *. sigma then
    Alcotest.failf "poisson mean gap %.6g off %.6g by %.3g sigma" mean_gap
      expected (dev /. sigma)

let test_trace_source () =
  let times = [| 0.0; 1.5; 1.5; 4.0 |] in
  let t = A.create (A.Trace times) in
  Alcotest.(check (array (float 0.0))) "replayed" times (A.take t 10);
  Alcotest.(check bool) "exhausted" true (A.next_arrival t = None);
  (match A.create (A.Trace [| 2.0; 1.0 |]) with
  | _ -> Alcotest.fail "decreasing trace must be rejected"
  | exception Invalid_argument _ -> ())

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "swf"
    [
      ( "parser",
        [
          Alcotest.test_case "basic" `Quick test_parse_basic;
          Alcotest.test_case "round-trip fixed" `Quick test_roundtrip_fixed;
          Alcotest.test_case "located errors" `Quick test_located_errors;
          q prop_job_roundtrip;
        ] );
      ( "mapping",
        [
          Alcotest.test_case "deterministic" `Quick
            test_mapping_deterministic;
          Alcotest.test_case "calibration" `Quick test_mapping_calibration;
          Alcotest.test_case "arrival times" `Quick test_arrival_times;
        ] );
      ( "arrivals",
        [
          Alcotest.test_case "spec parsing" `Quick test_spec_parsing;
          Alcotest.test_case "deterministic + monotone" `Quick
            test_arrivals_deterministic;
          Alcotest.test_case "poisson mean within CI" `Quick
            test_poisson_mean_ci;
          Alcotest.test_case "trace source" `Quick test_trace_source;
        ] );
    ]
