(* The observability layer: histogram bucket edges and quantiles, the
   registry's consistent-snapshot guarantee under concurrent multi-domain
   recording, span nesting in the trace sink, and the JSON reader the
   bench gate is built on. *)

module Obs = Suu_obs
module H = Obs.Histogram

let bounds = [| 0.001; 0.01; 0.1; 1.0 |]

(* --- bucket edges --- *)

let test_bucket_edges () =
  let h = H.create ~bounds "edges" in
  H.record h 0.0;      (* zero: first bucket *)
  H.record h (-1.0);   (* negative clamps into the first bucket *)
  H.record h 0.01;     (* exactly on a boundary: that bucket, not the next *)
  H.record h 0.05;     (* interior *)
  H.record h 1.0;      (* exactly on the last finite bound *)
  H.record h 50.0;     (* over max: overflow *)
  let s = H.snapshot h in
  Alcotest.(check int) "count" 6 s.H.count;
  Alcotest.(check (array int)) "bucket placement"
    [| 2; 1; 1; 1; 1 |] s.H.buckets;
  (* sum clamps the negative record at zero *)
  Alcotest.(check (float 1e-9)) "sum" 51.06 s.H.sum

let test_empty () =
  let h = H.create ~bounds "empty" in
  let s = H.snapshot h in
  Alcotest.(check int) "count" 0 s.H.count;
  Alcotest.(check (float 0.0)) "median of nothing" 0.0 (H.quantile h s 0.5);
  Alcotest.(check (float 0.0)) "mean of nothing" 0.0 (H.mean s)

(* --- quantiles --- *)

let test_quantile_monotone () =
  let h = H.create "mono" in
  let rng = Suu_prng.Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    H.record h (Float.pow 10.0 (Suu_prng.Rng.range rng ~lo:(-6.0) ~hi:1.5))
  done;
  let s = H.snapshot h in
  let prev = ref neg_infinity in
  for k = 0 to 100 do
    let q = H.quantile h s (float_of_int k /. 100.0) in
    if q < !prev then
      Alcotest.failf "quantile not monotone: p=%d%% gave %g after %g" k q
        !prev;
    prev := q
  done

(* --- snapshot merge (router stats aggregation) --- *)

let record_many h rng n =
  for _ = 1 to n do
    H.record h (Float.pow 10.0 (Suu_prng.Rng.range rng ~lo:(-6.0) ~hi:1.5))
  done

let test_merge_equals_union () =
  (* Merging two shards' snapshots must equal the snapshot of one
     histogram that saw every value — same buckets, count, sum, max. *)
  let a = H.create "a" and b = H.create "b" and u = H.create "u" in
  let rng = Suu_prng.Rng.create ~seed:42 in
  let vs1 = Array.init 500 (fun _ -> Suu_prng.Rng.range rng ~lo:0.0 ~hi:20.0) in
  let vs2 = Array.init 300 (fun _ -> Suu_prng.Rng.range rng ~lo:0.0 ~hi:60.0) in
  Array.iter (fun v -> H.record a v; H.record u v) vs1;
  Array.iter (fun v -> H.record b v; H.record u v) vs2;
  let m = H.merge (H.snapshot a) (H.snapshot b) in
  let su = H.snapshot u in
  Alcotest.(check int) "count" su.H.count m.H.count;
  Alcotest.(check (float 1e-9)) "sum" su.H.sum m.H.sum;
  Alcotest.(check (float 0.0)) "max" su.H.max m.H.max;
  Alcotest.(check (array int)) "buckets" su.H.buckets m.H.buckets;
  (* and therefore every quantile agrees exactly *)
  List.iter
    (fun p ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "q%g" p)
        (H.quantile u su p) (H.quantile u m p))
    [ 0.5; 0.95; 0.99 ]

let test_merge_quantile_monotone () =
  (* Quantiles of a merged snapshot stay monotone in p, across many
     random shard pairs (the satellite's acceptance property). *)
  let rng = Suu_prng.Rng.create ~seed:9 in
  for _trial = 1 to 25 do
    let a = H.create "a" and b = H.create "b" in
    record_many a rng (1 + Suu_prng.Rng.int rng 400);
    record_many b rng (1 + Suu_prng.Rng.int rng 400);
    let m = H.merge (H.snapshot a) (H.snapshot b) in
    let prev = ref neg_infinity in
    for k = 0 to 100 do
      let q = H.quantile a m (float_of_int k /. 100.0) in
      if q < !prev then
        Alcotest.failf "merged quantile not monotone: p=%d%% gave %g after %g"
          k q !prev;
      prev := q
    done
  done

let test_merge_layout_mismatch () =
  let a = H.create "a" and b = H.create ~bounds "b" in
  match H.merge (H.snapshot a) (H.snapshot b) with
  | _ -> Alcotest.fail "merging mismatched layouts should raise"
  | exception Invalid_argument _ -> ()

let test_raw_roundtrip () =
  let rng = Suu_prng.Rng.create ~seed:11 in
  for _trial = 1 to 25 do
    let h = H.create "r" in
    record_many h rng (Suu_prng.Rng.int rng 300);
    let s = H.snapshot h in
    match H.snapshot_of_raw (H.raw_of_snapshot s) with
    | None -> Alcotest.fail "raw round-trip failed to parse"
    | Some s' ->
        Alcotest.(check int) "count" s.H.count s'.H.count;
        Alcotest.(check (float 0.0)) "sum exact" s.H.sum s'.H.sum;
        Alcotest.(check (float 0.0)) "max exact" s.H.max s'.H.max;
        Alcotest.(check (array int)) "buckets" s.H.buckets s'.H.buckets
  done;
  (* malformed inputs are rejected, not crashes *)
  List.iter
    (fun bad ->
      match H.snapshot_of_raw bad with
      | None -> ()
      | Some _ -> Alcotest.failf "accepted malformed raw %S" bad)
    [ ""; "1 2.0"; "x 0 0 0"; "1 0 0 -3"; "1 nope 0 0" ]

let test_quantile_brackets () =
  (* 100 values in (0.01, 0.1]: every interior quantile interpolates
     within that bucket's range. *)
  let h = H.create ~bounds "bracket" in
  for _ = 1 to 100 do
    H.record h 0.05
  done;
  let s = H.snapshot h in
  List.iter
    (fun p ->
      let q = H.quantile h s p in
      if q < 0.01 || q > 0.1 then
        Alcotest.failf "p%.0f quantile %g escaped the (0.01, 0.1] bucket"
          (100.0 *. p) q)
    [ 0.1; 0.5; 0.9; 0.99 ];
  (* Overflow ranks report the observed maximum, not the last finite
     bound — a 99 s stall must not masquerade as the 1 s bucket cap. *)
  let h2 = H.create ~bounds "over" in
  H.record h2 99.0;
  let s2 = H.snapshot h2 in
  Alcotest.(check (float 1e-9)) "overflow quantile = observed max" 99.0
    (H.quantile h2 s2 0.5);
  Alcotest.(check (float 1e-9)) "snapshot carries the max" 99.0 s2.H.max;
  (* A mix of in-range and overflow values: interior quantiles stay in
     their buckets, the tail reports the true max, monotone throughout. *)
  let h3 = H.create ~bounds "mixed" in
  for _ = 1 to 90 do
    H.record h3 0.05
  done;
  for _ = 1 to 10 do
    H.record h3 250.0
  done;
  let s3 = H.snapshot h3 in
  Alcotest.(check bool) "p50 stays in its bucket" true
    (H.quantile h3 s3 0.5 <= 0.1);
  Alcotest.(check (float 1e-9)) "p99 reports the observed max" 250.0
    (H.quantile h3 s3 0.99);
  (* Negative and NaN records are clamped to zero everywhere: buckets,
     sum and max must describe the same (clamped) value. *)
  let h4 = H.create ~bounds "neg" in
  H.record h4 (-3.0);
  H.record h4 Float.nan;
  let s4 = H.snapshot h4 in
  Alcotest.(check int) "clamped records counted" 2 s4.H.count;
  Alcotest.(check int) "clamped records land in bucket 0" 2 s4.H.buckets.(0);
  Alcotest.(check (float 0.0)) "clamped sum" 0.0 s4.H.sum;
  Alcotest.(check (float 0.0)) "clamped max" 0.0 s4.H.max

(* --- registry consistency under concurrent recording --- *)

let test_snapshot_consistency () =
  Obs.Registry.reset_for_testing ();
  let c = Obs.Registry.counter "t.consistency" in
  let h = Obs.Registry.histogram "t.consistency" in
  let domains = 4 and per_domain = 5_000 in
  let stop = Atomic.make false in
  let violations = Atomic.make 0 in
  (* A reader domain snapshots continuously: in every cut the histogram's
     total must equal the counter bumped in the same Registry.observe. *)
  let reader =
    Domain.spawn (fun () ->
        let n = ref 0 in
        while not (Atomic.get stop) do
          let snap = Obs.Registry.snapshot () in
          let cv =
            List.assoc_opt "t.consistency" snap.Obs.Registry.counters
          in
          let hv =
            List.find_map
              (fun (name, _, s) ->
                if String.equal name "t.consistency" then Some s.H.count
                else None)
              snap.Obs.Registry.histograms
          in
          (match (cv, hv) with
          | Some cv, Some hv when cv <> hv -> Atomic.incr violations
          | Some _, Some _ -> ()
          | _ -> Atomic.incr violations);
          incr n
        done;
        !n)
  in
  let writers =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Obs.Registry.observe c h
                (0.0001 *. float_of_int (((d * per_domain) + i) mod 100))
            done))
  in
  List.iter Domain.join writers;
  Atomic.set stop true;
  let snapshots_taken = Domain.join reader in
  Alcotest.(check int) "no torn snapshots" 0 (Atomic.get violations);
  if snapshots_taken < 2 then
    Alcotest.failf "reader only managed %d snapshots" snapshots_taken;
  (* Deterministic final state regardless of interleaving. *)
  let snap = Obs.Registry.snapshot () in
  Alcotest.(check (option int))
    "final counter" (Some (domains * per_domain))
    (List.assoc_opt "t.consistency" snap.Obs.Registry.counters);
  let hs = H.snapshot h in
  Alcotest.(check int) "final histogram total" (domains * per_domain)
    hs.H.count;
  Obs.Registry.reset_for_testing ()

(* --- spans and the trace sink --- *)

let test_span_nesting () =
  Obs.Registry.reset_for_testing ();
  let buf = Buffer.create 256 in
  Obs.Trace_sink.use_buffer_for_testing (Some buf);
  Obs.Span.with_span "t.outer" (fun () ->
      Obs.Span.with_span "t.inner" (fun () -> ()));
  Obs.Trace_sink.use_buffer_for_testing None;
  let lines =
    List.filter
      (fun l -> String.trim l <> "")
      (String.split_on_char '\n' (Buffer.contents buf))
  in
  Alcotest.(check int) "two spans emitted" 2 (List.length lines);
  let find name =
    match
      List.find_opt
        (fun l ->
          match Suu_util.Json.of_string l with
          | j ->
              Suu_util.Json.to_string (Suu_util.Json.member "name" j)
              = Some name
          | exception _ -> false)
        lines
    with
    | Some l -> Suu_util.Json.of_string l
    | None -> Alcotest.failf "span %s not in trace" name
  in
  let inner = find "t.inner" and outer = find "t.outer" in
  let num k j = Suu_util.Json.to_float (Suu_util.Json.member k j) in
  Alcotest.(check (option (float 0.0)))
    "inner parented to outer" (num "id" outer) (num "parent" inner);
  Alcotest.(check (option (float 0.0)))
    "outer is a root" None (num "parent" outer);
  (* Both spans also landed in registry histograms. *)
  let snap = Obs.Registry.snapshot () in
  Alcotest.(check int) "two phase histograms" 2
    (List.length snap.Obs.Registry.histograms);
  Obs.Registry.reset_for_testing ()

let test_disabled_is_transparent () =
  Obs.Registry.reset_for_testing ();
  Obs.Registry.set_enabled false;
  let r = Obs.Span.with_span "t.off" (fun () -> 42) in
  Obs.Registry.set_enabled true;
  Alcotest.(check int) "body result passes through" 42 r;
  let snap = Obs.Registry.snapshot () in
  Alcotest.(check int) "nothing recorded while disabled" 0
    (List.length snap.Obs.Registry.histograms)

(* --- the gate's JSON reader --- *)

let test_json_roundtrip () =
  let j =
    Suu_util.Json.of_string
      {|{"a": {"b": [1, 2.5, -3e-2]}, "s": "x\ny", "t": true, "n": null}|}
  in
  let module J = Suu_util.Json in
  Alcotest.(check (option (float 1e-12)))
    "nested number" (Some 2.5)
    (match J.to_list (J.path [ "a"; "b" ] j) with
    | Some [ _; x; _ ] -> J.to_float (Some x)
    | _ -> None);
  Alcotest.(check (option string)) "escapes" (Some "x\ny")
    (J.to_string (J.member "s" j));
  Alcotest.(check (option (float 0.0))) "bool" (Some 1.0)
    (J.to_float (J.member "t" j));
  (match J.of_string "{\"a\": 1," with
  | exception J.Parse_error _ -> ()
  | _ -> Alcotest.fail "truncated JSON should not parse");
  match J.of_string "[1, 2] trailing" with
  | exception J.Parse_error _ -> ()
  | _ -> Alcotest.fail "trailing garbage should not parse"

let () =
  Alcotest.run "obs"
    [
      ( "histogram",
        [
          Alcotest.test_case "bucket edges" `Quick test_bucket_edges;
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "quantile monotone" `Quick
            test_quantile_monotone;
          Alcotest.test_case "quantile brackets" `Quick
            test_quantile_brackets;
          Alcotest.test_case "merge equals union" `Quick
            test_merge_equals_union;
          Alcotest.test_case "merged quantiles monotone" `Quick
            test_merge_quantile_monotone;
          Alcotest.test_case "merge layout mismatch" `Quick
            test_merge_layout_mismatch;
          Alcotest.test_case "raw codec round-trip" `Quick
            test_raw_roundtrip;
        ] );
      ( "registry",
        [
          Alcotest.test_case "concurrent snapshot consistency" `Quick
            test_snapshot_consistency;
        ] );
      ( "span",
        [
          Alcotest.test_case "nesting in trace" `Quick test_span_nesting;
          Alcotest.test_case "disabled is transparent" `Quick
            test_disabled_is_transparent;
        ] );
      ( "json",
        [ Alcotest.test_case "reader" `Quick test_json_roundtrip ] );
    ]
