(* Tests for the SUU* simulator: traces, the strict engine, and the
   statistical equivalence of the SUU* reformulation (paper Theorem 10). *)

module Dag = Suu_dag.Dag
module Instance = Suu_core.Instance
module Policy = Suu_core.Policy
module Trace = Suu_sim.Trace
module Engine = Suu_sim.Engine
module Runner = Suu_sim.Runner
module Rng = Suu_prng.Rng

let checkf4 = Alcotest.(check (float 1e-4))

let single_machine_inst q n =
  Instance.make ~dag:(Dag.empty n) [| Array.make n q |]

(* A policy assigning machine 0 to the lowest remaining job. *)
let work_first inst =
  let m = Instance.m inst in
  Policy.make ~name:"work-first" ~fresh:(fun _rng ->
      fun ~time:_ ~remaining ~eligible ->
        let buf = Array.make m (-1) in
        (try
           Array.iteri
             (fun j r ->
               if r && eligible.(j) then begin
                 for i = 0 to m - 1 do
                   buf.(i) <- j
                 done;
                 raise Exit
               end)
             remaining
         with Exit -> ());
        buf)

(* --- traces --- *)

let test_trace_draw_positive () =
  let rng = Rng.create ~seed:1 in
  let t = Trace.draw ~n:100 rng in
  Alcotest.(check int) "size" 100 (Trace.n t);
  for j = 0 to 99 do
    Alcotest.(check bool) "positive" true (Trace.threshold t j > 0.0)
  done

let test_trace_mean () =
  (* w = -log2 r with r uniform: E[w] = 1/ln 2 ~ 1.4427. *)
  let rng = Rng.create ~seed:2 in
  let t = Trace.draw ~n:200_000 rng in
  let sum = ref 0.0 in
  for j = 0 to Trace.n t - 1 do
    sum := !sum +. Trace.threshold t j
  done;
  let mean = !sum /. 200_000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.4f near 1.4427" mean)
    true
    (Float.abs (mean -. (1.0 /. log 2.0)) < 0.02)

let test_trace_of_thresholds () =
  let t = Trace.of_thresholds [| 1.0; 0.0; 2.5 |] in
  checkf4 "kept" 2.5 (Trace.threshold t 2);
  Alcotest.check_raises "negative"
    (Invalid_argument "Trace.of_thresholds: negative threshold") (fun () ->
      ignore (Trace.of_thresholds [| -1.0 |]))

(* --- engine mechanics --- *)

let test_engine_deterministic_threshold () =
  (* threshold 2.0, l = 1 per step: completes at exactly step 2. *)
  let inst = single_machine_inst 0.5 1 in
  let trace = Trace.of_thresholds [| 2.0 |] in
  let mk =
    Engine.makespan inst (work_first inst) ~trace ~rng:(Rng.create ~seed:0)
  in
  Alcotest.(check int) "two steps" 2 mk

let test_engine_zero_threshold () =
  (* r = 1 (w = 0): job completes with no work; engine must not hang. *)
  let inst = single_machine_inst 0.5 1 in
  let trace = Trace.of_thresholds [| 0.0 |] in
  let r =
    Engine.run inst (work_first inst) ~trace ~rng:(Rng.create ~seed:0)
  in
  Alcotest.(check int) "instant" 0 r.Engine.makespan

let test_engine_counters () =
  let inst = single_machine_inst 0.5 2 in
  let trace = Trace.of_thresholds [| 1.0; 1.0 |] in
  let r =
    Engine.run inst (work_first inst) ~trace ~rng:(Rng.create ~seed:0)
  in
  Alcotest.(check int) "makespan" 2 r.Engine.makespan;
  Alcotest.(check int) "busy" 2 r.Engine.busy_steps;
  Alcotest.(check int) "accounting" (1 * r.Engine.makespan)
    (r.Engine.busy_steps + r.Engine.wasted_steps + r.Engine.idle_steps)

let test_engine_stuck_policy_capped () =
  (* A policy that never schedules job 1 must hit the step cap, and its
     steps on the already-completed job 0 count as wasted. *)
  let inst = Instance.make ~dag:(Dag.empty 2) [| [| 0.5; 0.5 |] |] in
  let sticky =
    Policy.make ~name:"sticky" ~fresh:(fun _ ->
        fun ~time:_ ~remaining:_ ~eligible:_ -> [| 0 |])
  in
  let trace = Trace.of_thresholds [| 0.5; 3.0 |] in
  Alcotest.check_raises "stuck policy" (Engine.Horizon_exceeded 50) (fun () ->
      ignore
        (Engine.run ~cap:50 inst sticky ~trace ~rng:(Rng.create ~seed:0)))

let test_engine_rejects_ineligible () =
  let inst =
    Instance.make
      ~dag:(Dag.of_edges ~n:2 [ (0, 1) ])
      [| [| 0.5; 0.5 |] |]
  in
  let bad =
    Policy.make ~name:"bad" ~fresh:(fun _ ->
        fun ~time:_ ~remaining:_ ~eligible:_ -> [| 1 |])
  in
  let trace = Trace.of_thresholds [| 1.0; 1.0 |] in
  Alcotest.(check bool)
    "raises Invalid_schedule" true
    (try
       ignore (Engine.run inst bad ~trace ~rng:(Rng.create ~seed:0));
       false
     with Engine.Invalid_schedule _ -> true)

let test_engine_rejects_bad_job_index () =
  let inst = single_machine_inst 0.5 1 in
  let bad =
    Policy.make ~name:"bad-index" ~fresh:(fun _ ->
        fun ~time:_ ~remaining:_ ~eligible:_ -> [| 7 |])
  in
  let trace = Trace.of_thresholds [| 1.0 |] in
  Alcotest.(check bool)
    "raises" true
    (try
       ignore (Engine.run inst bad ~trace ~rng:(Rng.create ~seed:0));
       false
     with Engine.Invalid_schedule _ -> true)

let test_engine_rejects_wrong_width () =
  let inst = single_machine_inst 0.5 1 in
  let bad =
    Policy.make ~name:"wide" ~fresh:(fun _ ->
        fun ~time:_ ~remaining:_ ~eligible:_ -> [| 0; 0 |])
  in
  let trace = Trace.of_thresholds [| 1.0 |] in
  Alcotest.(check bool)
    "raises" true
    (try
       ignore (Engine.run inst bad ~trace ~rng:(Rng.create ~seed:0));
       false
     with Engine.Invalid_schedule _ -> true)

let test_engine_precedence_progress () =
  (* Chain 0 -> 1: makespan is the sum of both geometric phases. *)
  let inst =
    Instance.make
      ~dag:(Dag.of_edges ~n:2 [ (0, 1) ])
      [| [| 0.5; 0.5 |] |]
  in
  let trace = Trace.of_thresholds [| 1.0; 1.0 |] in
  let mk =
    Engine.makespan inst (work_first inst) ~trace ~rng:(Rng.create ~seed:0)
  in
  Alcotest.(check int) "sequential" 2 mk

(* Completion tolerance must scale with the threshold: 1000 unit steps
   each adding l = -log2 0.3 accumulate ~3e-11 of roundoff against the
   threshold 1000 * l — far beyond an absolute 1e-12 epsilon (which
   cost a 1001st step), within the relative one. *)
let test_engine_relative_epsilon () =
  let inst = single_machine_inst 0.3 1 in
  let l = -.(log 0.3 /. log 2.0) in
  let trace = Trace.of_thresholds [| 1000.0 *. l |] in
  let mk =
    Engine.makespan inst (work_first inst) ~trace ~rng:(Rng.create ~seed:0)
  in
  Alcotest.(check int) "exactly 1000 steps" 1000 mk

(* --- Theorem 10: SUU* equals SUU distributionally --- *)

let test_suu_star_equivalence_single () =
  (* Single job, q = 0.5: makespan should be Geometric(1/2).
     Compare E and the full distribution coarsely. *)
  let inst = single_machine_inst 0.5 1 in
  let reps = 40_000 in
  let xs = Runner.makespans inst (work_first inst) ~seed:7 ~reps in
  let mean = Array.fold_left ( +. ) 0.0 xs /. float_of_int reps in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.3f near 2" mean)
    true
    (Float.abs (mean -. 2.0) < 0.05);
  (* P(T = 1) should be ~1/2, P(T = 2) ~1/4 *)
  let count v =
    Array.fold_left (fun acc x -> if x = v then acc + 1 else acc) 0 xs
  in
  let p1 = float_of_int (count 1.0) /. float_of_int reps in
  let p2 = float_of_int (count 2.0) /. float_of_int reps in
  Alcotest.(check bool) "P(T=1)" true (Float.abs (p1 -. 0.5) < 0.02);
  Alcotest.(check bool) "P(T=2)" true (Float.abs (p2 -. 0.25) < 0.02)

let test_suu_star_equivalence_two_machines () =
  (* Two machines q1 = 0.5, q2 = 0.25 on one job: per-step failure
     q1 q2 = 1/8, E[T] = 8/7. *)
  let inst = Instance.make ~dag:(Dag.empty 1) [| [| 0.5 |]; [| 0.25 |] |] in
  let gang =
    Policy.make ~name:"gang" ~fresh:(fun _ ->
        fun ~time:_ ~remaining:_ ~eligible:_ -> [| 0; 0 |])
  in
  let xs = Runner.makespans inst gang ~seed:11 ~reps:40_000 in
  let mean = Array.fold_left ( +. ) 0.0 xs /. 40_000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.4f near 8/7" mean)
    true
    (Float.abs (mean -. (8.0 /. 7.0)) < 0.02)

(* --- recording and gantt --- *)

let test_run_recorded () =
  let inst = single_machine_inst 0.5 2 in
  let trace = Trace.of_thresholds [| 1.0; 2.0 |] in
  let result, steps =
    Engine.run_recorded inst (work_first inst) ~trace
      ~rng:(Rng.create ~seed:0)
  in
  Alcotest.(check int) "one row per step" result.Engine.makespan
    (Array.length steps);
  (* first step works job 0, later steps job 1 *)
  Alcotest.(check int) "step 0" 0 steps.(0).(0);
  Alcotest.(check int) "last step" 1 steps.(Array.length steps - 1).(0)

let test_gantt_render () =
  let steps = [| [| 0; -1 |]; [| 1; 1 |]; [| 0; -1 |] |] in
  let s = Suu_sim.Gantt.render steps in
  let lines = String.split_on_char '\n' s |> List.filter (( <> ) "") in
  Alcotest.(check int) "one line per machine" 2 (List.length lines);
  Alcotest.(check bool) "machine 0 row" true
    (String.length (List.hd lines) > 0);
  Alcotest.(check string) "empty recording" "" (Suu_sim.Gantt.render [||])

let test_gantt_sampling () =
  let steps = Array.make 1000 [| 0 |] in
  let s = Suu_sim.Gantt.render ~max_width:50 steps in
  Alcotest.(check bool) "notes the scale" true
    (String.length s < 200
    &&
    match String.index_opt s '(' with Some _ -> true | None -> false)

let test_gantt_utilization () =
  let steps = [| [| 0; -1 |]; [| 1; -1 |]; [| -1; -1 |]; [| 0; 2 |] |] in
  let u = Suu_sim.Gantt.utilization steps in
  checkf4 "machine 0" 0.75 u.(0);
  checkf4 "machine 1" 0.25 u.(1)

let test_gantt_symbols () =
  Alcotest.(check char) "idle" '.' (Suu_sim.Gantt.job_symbol (-1));
  Alcotest.(check char) "zero" '0' (Suu_sim.Gantt.job_symbol 0);
  Alcotest.(check char) "ten" 'a' (Suu_sim.Gantt.job_symbol 10);
  Alcotest.(check char) "cycles" '0' (Suu_sim.Gantt.job_symbol 62)

(* Machine-step accounting: every step, each machine is exactly one of
   busy / wasted / idle. *)
let prop_engine_accounting =
  QCheck.Test.make ~count:60 ~name:"busy + wasted + idle = m * makespan"
    QCheck.small_int (fun seed ->
      let module W = Suu_workload.Workload in
      let inst =
        W.independent (W.Uniform { lo = 0.2; hi = 0.95 }) ~n:8 ~m:3 ~seed
      in
      let rng = Rng.create ~seed:(seed + 13) in
      let trace = Trace.draw ~n:8 (Rng.split rng) in
      let r =
        Engine.run inst (Suu_core.Baselines.round_robin inst) ~trace ~rng
      in
      r.Engine.busy_steps + r.Engine.wasted_steps + r.Engine.idle_steps
      = 3 * r.Engine.makespan)

(* --- audit --- *)

let test_audit_accepts_valid () =
  let inst = single_machine_inst 0.5 3 in
  let rng = Rng.create ~seed:3 in
  let trace = Trace.draw ~n:3 rng in
  let _, steps =
    Engine.run_recorded inst (work_first inst) ~trace ~rng:(Rng.create ~seed:4)
  in
  (match Suu_sim.Audit.check inst ~trace ~steps with
  | Ok () -> ()
  | Error v -> Alcotest.failf "step %d: %s" v.Suu_sim.Audit.step v.message);
  let times = Suu_sim.Audit.completion_times inst ~trace ~steps in
  Alcotest.(check bool) "all completed" true (Array.for_all (fun t -> t > 0) times)

let test_audit_rejects_ineligible () =
  let inst =
    Instance.make ~dag:(Dag.of_edges ~n:2 [ (0, 1) ]) [| [| 0.5; 0.5 |] |]
  in
  let trace = Trace.of_thresholds [| 1.0; 1.0 |] in
  (* Hand-built illegal recording: job 1 before job 0. *)
  let steps = [| [| 1 |]; [| 0 |]; [| 1 |] |] in
  match Suu_sim.Audit.check inst ~trace ~steps with
  | Error v ->
      Alcotest.(check int) "at step 0" 0 v.Suu_sim.Audit.step
  | Ok () -> Alcotest.fail "expected a violation"

let test_audit_rejects_incomplete () =
  let inst = single_machine_inst 0.5 2 in
  let trace = Trace.of_thresholds [| 1.0; 5.0 |] in
  let steps = [| [| 0 |] |] in
  match Suu_sim.Audit.check inst ~trace ~steps with
  | Error v ->
      Alcotest.(check bool)
        "mentions the job" true
        (String.length v.Suu_sim.Audit.message > 0)
  | Ok () -> Alcotest.fail "expected incompleteness violation"

let test_audit_rejects_bad_job () =
  let inst = single_machine_inst 0.5 1 in
  let trace = Trace.of_thresholds [| 0.5 |] in
  let steps = [| [| 9 |] |] in
  Alcotest.(check bool)
    "bad index flagged" true
    (match Suu_sim.Audit.check inst ~trace ~steps with
    | Error _ -> true
    | Ok () -> false)

(* Differential property: every policy's recorded execution, on every
   precedence shape, passes the independent audit, and the auditor's
   recomputed completion times are consistent with the makespan. *)
let prop_engine_executions_audit_clean =
  QCheck.Test.make ~count:60 ~name:"recorded executions pass the audit"
    QCheck.(pair small_int (int_range 0 3))
    (fun (seed, shape) ->
      let module W = Suu_workload.Workload in
      let uniform = W.Uniform { lo = 0.2; hi = 0.95 } in
      let inst =
        match shape with
        | 0 -> W.independent uniform ~n:8 ~m:3 ~seed
        | 1 -> W.chains uniform ~z:2 ~length:4 ~m:3 ~seed
        | 2 -> W.forest uniform ~n:9 ~trees:2 ~orientation:`Mixed ~m:3 ~seed
        | _ -> W.mapreduce uniform ~maps:4 ~reduces:3 ~m:3 ~seed
      in
      let policy = Suu_core.Auto.policy inst in
      let rng = Rng.create ~seed:(seed + 77) in
      let trace = Trace.draw ~n:(Instance.n inst) (Rng.split rng) in
      let result, steps = Engine.run_recorded inst policy ~trace ~rng in
      (match Suu_sim.Audit.check inst ~trace ~steps with
      | Ok () -> true
      | Error _ -> false)
      &&
      let times = Suu_sim.Audit.completion_times inst ~trace ~steps in
      Array.for_all
        (fun t -> t >= 0 && t <= result.Engine.makespan)
        times)

(* --- parallel runner --- *)

let test_parallel_matches_sequential () =
  let inst = single_machine_inst 0.6 5 in
  let seq = Runner.makespans inst (work_first inst) ~seed:21 ~reps:16 in
  List.iter
    (fun domains ->
      let par =
        Suu_sim.Parallel.makespans ~domains inst
          ~policy:(fun () -> work_first inst)
          ~seed:21 ~reps:16
      in
      Alcotest.(check bool)
        (Printf.sprintf "%d domains identical" domains)
        true (seq = par))
    [ 1; 2; 4 ]

let test_parallel_validation () =
  let inst = single_machine_inst 0.6 2 in
  Alcotest.check_raises "bad reps"
    (Invalid_argument "Parallel.makespans: reps must be positive") (fun () ->
      ignore
        (Suu_sim.Parallel.makespans inst
           ~policy:(fun () -> work_first inst)
           ~seed:0 ~reps:0));
  Alcotest.check_raises "bad domains"
    (Invalid_argument "Parallel.makespans: domains must be positive")
    (fun () ->
      ignore
        (Suu_sim.Parallel.makespans ~domains:0 inst
           ~policy:(fun () -> work_first inst)
           ~seed:0 ~reps:4))

let test_parallel_real_policy () =
  (* A stateful LP-driven policy created per domain must agree with the
     sequential runner. *)
  let inst =
    Suu_core.Instance.make ~dag:(Suu_dag.Dag.empty 6)
      (Array.init 2 (fun i ->
           Array.init 6 (fun j ->
               0.3 +. (0.1 *. float_of_int ((i + j) mod 5)))))
  in
  let seq =
    Runner.makespans inst (Suu_core.Suu_i_sem.policy inst) ~seed:5 ~reps:8
  in
  let par =
    Suu_sim.Parallel.makespans ~domains:3 inst
      ~policy:(fun () -> Suu_core.Suu_i_sem.policy inst)
      ~seed:5 ~reps:8
  in
  Alcotest.(check bool) "identical" true (seq = par)

(* Replications fan out over domains with bit-identical results, for
   both the shared-policy Runner (?jobs) and the factory-based Parallel
   runner, across random instances, seeds, and job counts. *)
let prop_parallel_bit_identical =
  QCheck.Test.make ~count:15
    ~name:"parallel runners bit-identical to sequential"
    QCheck.(triple small_int (int_range 1 11) (int_range 0 2))
    (fun (seed, reps, shape) ->
      let module W = Suu_workload.Workload in
      let uniform = W.Uniform { lo = 0.2; hi = 0.95 } in
      let inst =
        match shape with
        | 0 -> W.independent uniform ~n:8 ~m:3 ~seed
        | 1 -> W.chains uniform ~z:2 ~length:4 ~m:3 ~seed
        | _ -> W.forest uniform ~n:9 ~trees:2 ~orientation:`Mixed ~m:3 ~seed
      in
      let policy = Suu_core.Auto.policy inst in
      let seq = Runner.makespans ~jobs:1 inst policy ~seed:(seed + 1) ~reps in
      let shared2 =
        Runner.makespans ~jobs:2 inst policy ~seed:(seed + 1) ~reps
      in
      let shared5 =
        Runner.makespans ~jobs:5 inst policy ~seed:(seed + 1) ~reps
      in
      let factory3 =
        Suu_sim.Parallel.makespans ~domains:3 inst
          ~policy:(fun () -> Suu_core.Auto.policy inst)
          ~seed:(seed + 1) ~reps
      in
      seq = shared2 && seq = shared5 && seq = factory3)

(* Regression: a raising body must re-raise AND join every spawned
   domain first.  The old code joined only after the caller's inline
   worker returned normally, so an exception unwound past live domains —
   they kept running (and mutating caller-owned buffers) after the call
   "failed", and were never joined. *)
let test_parallel_raise_joins_all () =
  let n = 8 in
  let completed = Atomic.make 0 in
  let raised =
    try
      Suu_sim.Parallel.parallel_for ~jobs:4 ~chunk:1 ~n (fun i ->
          if i = 0 then failwith "boom"
          else begin
            (* Slow enough that unjoined domains would still be running
               when the exception escapes. *)
            Thread.delay 0.02;
            Atomic.incr completed
          end);
      false
    with Failure msg ->
      Alcotest.(check string) "body exception surfaces" "boom" msg;
      true
  in
  Alcotest.(check bool) "exception propagated" true raised;
  (* All spawned domains were joined before the raise escaped, and one
     worker's failure does not cancel the others' claimed chunks: every
     non-raising item has completed by the time the caller sees the
     exception — none completes later. *)
  Alcotest.(check int) "all other items done at the catch" (n - 1)
    (Atomic.get completed);
  Thread.delay 0.05;
  Alcotest.(check int) "no stray domain runs on" (n - 1)
    (Atomic.get completed)

(* --- runner --- *)

let test_runner_deterministic () =
  let inst = single_machine_inst 0.6 3 in
  let a = Runner.makespans inst (work_first inst) ~seed:5 ~reps:20 in
  let b = Runner.makespans inst (work_first inst) ~seed:5 ~reps:20 in
  Alcotest.(check bool) "same seed same runs" true (a = b);
  let c = Runner.makespans inst (work_first inst) ~seed:6 ~reps:20 in
  Alcotest.(check bool) "different seed differs" true (a <> c)

let test_runner_ratio () =
  let inst = single_machine_inst 0.5 1 in
  let r =
    Runner.ratio_to_bound inst (work_first inst) ~bound:2.0 ~seed:3 ~reps:500
  in
  Alcotest.(check bool) "ratio near 1" true (r > 0.8 && r < 1.25)

let test_runner_validation () =
  let inst = single_machine_inst 0.5 1 in
  Alcotest.check_raises "reps"
    (Invalid_argument "Runner.makespans: reps must be positive") (fun () ->
      ignore (Runner.makespans inst (work_first inst) ~seed:0 ~reps:0))

(* The documented determinism contract: replication k's generators
   depend on (seed, k) only, so extending a sweep re-runs the same
   prefix of traces. *)
let test_runner_rep_prefix () =
  let inst = single_machine_inst 0.6 4 in
  let short = Runner.makespans inst (work_first inst) ~seed:9 ~reps:6 in
  let long = Runner.makespans inst (work_first inst) ~seed:9 ~reps:17 in
  Alcotest.(check bool)
    "first 6 of 17 identical" true
    (Array.sub long 0 6 = short)

let () =
  Alcotest.run "sim"
    [
      ( "trace",
        [
          Alcotest.test_case "draw positive" `Quick test_trace_draw_positive;
          Alcotest.test_case "mean" `Slow test_trace_mean;
          Alcotest.test_case "of_thresholds" `Quick test_trace_of_thresholds;
        ] );
      ( "engine",
        [
          Alcotest.test_case "deterministic threshold" `Quick
            test_engine_deterministic_threshold;
          Alcotest.test_case "zero threshold" `Quick
            test_engine_zero_threshold;
          Alcotest.test_case "counters" `Quick test_engine_counters;
          Alcotest.test_case "stuck policy capped" `Quick
            test_engine_stuck_policy_capped;
          Alcotest.test_case "rejects ineligible" `Quick
            test_engine_rejects_ineligible;
          Alcotest.test_case "rejects bad index" `Quick
            test_engine_rejects_bad_job_index;
          Alcotest.test_case "rejects wrong width" `Quick
            test_engine_rejects_wrong_width;
          Alcotest.test_case "precedence" `Quick
            test_engine_precedence_progress;
          Alcotest.test_case "relative completion epsilon" `Quick
            test_engine_relative_epsilon;
        ] );
      ( "theorem-10",
        [
          Alcotest.test_case "single machine distribution" `Slow
            test_suu_star_equivalence_single;
          Alcotest.test_case "two-machine mean" `Slow
            test_suu_star_equivalence_two_machines;
        ] );
      ( "gantt",
        [
          Alcotest.test_case "run_recorded" `Quick test_run_recorded;
          Alcotest.test_case "render" `Quick test_gantt_render;
          Alcotest.test_case "sampling" `Quick test_gantt_sampling;
          Alcotest.test_case "utilization" `Quick test_gantt_utilization;
          Alcotest.test_case "symbols" `Quick test_gantt_symbols;
        ] );
      ( "audit",
        [
          Alcotest.test_case "accepts valid" `Quick test_audit_accepts_valid;
          Alcotest.test_case "rejects ineligible" `Quick
            test_audit_rejects_ineligible;
          Alcotest.test_case "rejects incomplete" `Quick
            test_audit_rejects_incomplete;
          Alcotest.test_case "rejects bad job" `Quick
            test_audit_rejects_bad_job;
          QCheck_alcotest.to_alcotest prop_engine_executions_audit_clean;
          QCheck_alcotest.to_alcotest prop_engine_accounting;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "matches sequential" `Quick
            test_parallel_matches_sequential;
          Alcotest.test_case "validation" `Quick test_parallel_validation;
          Alcotest.test_case "lp policy" `Quick test_parallel_real_policy;
          Alcotest.test_case "raise joins all domains" `Quick
            test_parallel_raise_joins_all;
          QCheck_alcotest.to_alcotest prop_parallel_bit_identical;
        ] );
      ( "runner",
        [
          Alcotest.test_case "determinism" `Quick test_runner_deterministic;
          Alcotest.test_case "ratio" `Quick test_runner_ratio;
          Alcotest.test_case "validation" `Quick test_runner_validation;
          Alcotest.test_case "rep prefix determinism" `Quick
            test_runner_rep_prefix;
        ] );
    ]
