(* Tests for summary statistics and growth-curve fitting. *)

module Summary = Suu_stats.Summary
module Fit = Suu_stats.Fit

let checkf = Alcotest.(check (float 1e-9))
let checkf4 = Alcotest.(check (float 1e-4))

let test_summary_basic () =
  let s = Summary.of_array [| 1.0; 2.0; 3.0; 4.0 |] in
  checkf "mean" 2.5 s.Summary.mean;
  checkf "min" 1.0 s.Summary.min;
  checkf "max" 4.0 s.Summary.max;
  Alcotest.(check int) "n" 4 s.Summary.n;
  (* sample stddev of 1..4 is sqrt(5/3) *)
  checkf4 "stddev" (sqrt (5.0 /. 3.0)) s.Summary.stddev

let test_summary_singleton () =
  let s = Summary.of_array [| 7.0 |] in
  checkf "mean" 7.0 s.Summary.mean;
  checkf "stddev" 0.0 s.Summary.stddev

let test_summary_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Summary.of_array: empty")
    (fun () -> ignore (Summary.of_array [||]))

let test_summary_constant () =
  let s = Summary.of_array (Array.make 100 3.25) in
  checkf "mean" 3.25 s.Summary.mean;
  checkf "stddev" 0.0 s.Summary.stddev;
  checkf "ci" 0.0 s.Summary.ci95

let test_summary_of_list () =
  let s = Summary.of_list [ 2.0; 4.0 ] in
  checkf "mean" 3.0 s.Summary.mean

let test_mean () = checkf "mean" 2.0 (Summary.mean [| 1.0; 2.0; 3.0 |])

let test_quantile () =
  let xs = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  checkf "median" 3.0 (Summary.quantile xs 0.5);
  checkf "min" 1.0 (Summary.quantile xs 0.0);
  checkf "max" 5.0 (Summary.quantile xs 1.0);
  checkf "q25" 2.0 (Summary.quantile xs 0.25);
  (* original array untouched *)
  Alcotest.(check bool) "no mutation" true (xs.(0) = 5.0)

let test_quantile_interpolation () =
  checkf "interpolated" 1.5 (Summary.quantile [| 1.0; 2.0 |] 0.5)

(* Regression: the sort used to be polymorphic [compare], whose order
   with NaN present is unspecified — a NaN (e.g. the ci95 of an n=1
   summary fed back in) silently produced garbage quantiles.  NaN is
   now rejected up front, in both entry points. *)
let test_nan_rejected () =
  Alcotest.check_raises "quantile NaN"
    (Invalid_argument "Summary.quantile: NaN in sample") (fun () ->
      ignore (Summary.quantile [| 1.0; Float.nan; 2.0 |] 0.5));
  Alcotest.check_raises "of_array NaN"
    (Invalid_argument "Summary.of_array: NaN in sample") (fun () ->
      ignore (Summary.of_array [| (Summary.of_array [| 7.0 |]).ci95 |]));
  (* negatives and infinities still sort correctly *)
  checkf "negative median" (-1.0)
    (Summary.quantile [| 3.0; -5.0; -1.0 |] 0.5);
  checkf "inf max" Float.infinity
    (Summary.quantile [| 1.0; Float.infinity; 0.0 |] 1.0)

let test_ols_exact_line () =
  let xs = [| 0.0; 1.0; 2.0; 3.0 |] in
  let ys = Array.map (fun x -> (2.0 *. x) +. 1.0) xs in
  let l = Fit.ols ~xs ~ys in
  checkf4 "slope" 2.0 l.Fit.slope;
  checkf4 "intercept" 1.0 l.Fit.intercept;
  checkf4 "r2" 1.0 l.Fit.r2

let test_ols_flat () =
  let l = Fit.ols ~xs:[| 1.0; 2.0; 3.0 |] ~ys:[| 5.0; 5.0; 5.0 |] in
  checkf4 "slope" 0.0 l.Fit.slope;
  checkf4 "r2" 1.0 l.Fit.r2

let test_ols_mismatch () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Fit.ols: length mismatch") (fun () ->
      ignore (Fit.ols ~xs:[| 1.0 |] ~ys:[| 1.0; 2.0 |]))

let test_fit_against_log () =
  (* y = 3 log2 x + 1 should be perfectly explained by f = log2. *)
  let xs = [| 2.0; 4.0; 8.0; 16.0; 32.0 |] in
  let ys = Array.map (fun x -> (3.0 *. Fit.log2 x) +. 1.0) xs in
  let l = Fit.fit_against ~f:Fit.log2 ~xs ~ys in
  checkf4 "slope" 3.0 l.Fit.slope;
  checkf4 "r2" 1.0 l.Fit.r2;
  (* ... and poorly (r2 < 1) by linear x. *)
  let lin = Fit.ols ~xs ~ys in
  Alcotest.(check bool) "log beats linear" true (l.Fit.r2 > lin.Fit.r2)

let test_log_helpers () =
  checkf4 "log2 8" 3.0 (Fit.log2 8.0);
  checkf4 "loglog2 16" 2.0 (Fit.loglog2 16.0);
  (* clamped for tiny inputs *)
  checkf4 "loglog2 2 clamps" 1.0 (Fit.loglog2 2.0)

let prop_ols_residual_orthogonal =
  (* OLS residuals are uncorrelated with x: sum x_i e_i = 0. *)
  QCheck.Test.make ~count:200 ~name:"ols normal equations"
    QCheck.(
      list_of_size
        Gen.(3 -- 30)
        (pair (float_bound_inclusive 100.0) (float_bound_inclusive 100.0)))
    (fun pts ->
      let xs = Array.of_list (List.map fst pts) in
      let ys = Array.of_list (List.map snd pts) in
      let l = Fit.ols ~xs ~ys in
      let dot = ref 0.0 and total = ref 0.0 in
      Array.iteri
        (fun i x ->
          let e = ys.(i) -. ((l.Fit.slope *. x) +. l.Fit.intercept) in
          dot := !dot +. (x *. e);
          total := !total +. Float.abs (x *. e))
        xs;
      Float.abs !dot < 1e-6 *. Float.max 1.0 !total)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "stats"
    [
      ( "summary",
        [
          Alcotest.test_case "basic" `Quick test_summary_basic;
          Alcotest.test_case "singleton" `Quick test_summary_singleton;
          Alcotest.test_case "empty" `Quick test_summary_empty;
          Alcotest.test_case "constant" `Quick test_summary_constant;
          Alcotest.test_case "of_list" `Quick test_summary_of_list;
          Alcotest.test_case "mean" `Quick test_mean;
        ] );
      ( "quantile",
        [
          Alcotest.test_case "order statistics" `Quick test_quantile;
          Alcotest.test_case "interpolation" `Quick
            test_quantile_interpolation;
          Alcotest.test_case "NaN rejected" `Quick test_nan_rejected;
        ] );
      ( "fit",
        [
          Alcotest.test_case "exact line" `Quick test_ols_exact_line;
          Alcotest.test_case "flat" `Quick test_ols_flat;
          Alcotest.test_case "mismatch" `Quick test_ols_mismatch;
          Alcotest.test_case "log growth" `Quick test_fit_against_log;
          Alcotest.test_case "log helpers" `Quick test_log_helpers;
        ] );
      ("properties", [ q prop_ols_residual_orthogonal ]);
    ]
