(* Tests for the suu-serve subsystem: wire protocol framing, the bounded
   queue behind the worker pool, metrics rendering, and an end-to-end
   loopback exercise of a real daemon on an ephemeral port. *)

module P = Suu_server.Protocol
module Bqueue = Suu_server.Bqueue
module Metrics = Suu_server.Metrics
module Server = Suu_server.Server
module Client = Suu_server.Client
module W = Suu_workload.Workload
module Instance = Suu_core.Instance

let uniform = W.Uniform { lo = 0.2; hi = 0.95 }

let instances_equal a b =
  String.equal
    (Suu_core.Instance_io.to_string a)
    (Suu_core.Instance_io.to_string b)

(* A [next_line] feeder over an in-memory string, as the parser sees a
   socket: lines without their newline, [None] at end of stream. *)
let feed s =
  let lines = String.split_on_char '\n' s in
  let lines =
    match List.rev lines with "" :: tl -> List.rev tl | _ -> lines
  in
  let r = ref lines in
  fun () ->
    match !r with
    | [] -> None
    | l :: tl ->
        r := tl;
        Some l

(* --- protocol framing --- *)

let roundtrip_request req =
  match P.read_request ~next_line:(feed (P.request_to_string req)) with
  | Some got -> got
  | None -> Alcotest.fail "no frame parsed"

let check_common label (sent : P.request) (got : P.request) =
  Alcotest.(check (option string)) (label ^ " id") sent.P.id got.P.id;
  Alcotest.(check (option int))
    (label ^ " deadline")
    sent.P.deadline_ms got.P.deadline_ms

let test_request_roundtrips () =
  let inst = W.independent uniform ~n:6 ~m:3 ~seed:1 in
  let forest =
    W.forest uniform ~n:8 ~trees:2 ~orientation:`Mixed ~m:3 ~seed:2
  in
  let cases =
    [
      ("describe", { P.id = Some "r1"; deadline_ms = None;
                     body = P.Describe inst });
      ("lower_bound", { P.id = None; deadline_ms = Some 500;
                        body = P.Lower_bound forest });
      ("plan", { P.id = Some "p"; deadline_ms = None;
                 body = P.Plan { inst; policy = "auto"; seed = 3 } });
      ("simulate",
       { P.id = Some "s"; deadline_ms = Some 9999;
         body = P.Simulate { inst; policy = "greedy"; reps = 7; seed = 4 } });
      ("stats", { P.id = None; deadline_ms = None; body = P.Stats });
    ]
  in
  List.iter
    (fun (label, req) ->
      let got = roundtrip_request req in
      check_common label req got;
      match (req.P.body, got.P.body) with
      | P.Describe a, P.Describe b | P.Lower_bound a, P.Lower_bound b ->
          Alcotest.(check bool)
            (label ^ " instance") true (instances_equal a b)
      | P.Plan a, P.Plan b ->
          Alcotest.(check string) (label ^ " policy") a.policy b.policy;
          Alcotest.(check int) (label ^ " seed") a.seed b.seed;
          Alcotest.(check bool)
            (label ^ " instance") true
            (instances_equal a.inst b.inst)
      | P.Simulate a, P.Simulate b ->
          Alcotest.(check string) (label ^ " policy") a.policy b.policy;
          Alcotest.(check int) (label ^ " reps") a.reps b.reps;
          Alcotest.(check int) (label ^ " seed") a.seed b.seed;
          Alcotest.(check bool)
            (label ^ " instance") true
            (instances_equal a.inst b.inst)
      | P.Stats, P.Stats -> ()
      | _ -> Alcotest.fail (label ^ ": body type changed in roundtrip"))
    cases

let test_response_roundtrips () =
  let cases =
    [
      P.Ok
        {
          id = Some "r9";
          rtype = "simulate";
          fields = [ ("mean", "12.5"); ("note", "has spaces in value") ];
        };
      P.Ok { id = None; rtype = "stats"; fields = [] };
      P.Err { id = Some "x"; code = P.Overloaded; message = "queue full" };
      P.Err { id = None; code = P.Timeout; message = "deadline exceeded" };
    ]
  in
  List.iter
    (fun resp ->
      match P.read_response ~next_line:(feed (P.response_to_string resp)) with
      | Some got ->
          Alcotest.(check string)
            "response roundtrips"
            (P.response_to_string resp)
            (P.response_to_string got)
      | None -> Alcotest.fail "no response parsed")
    cases

let parse_error input =
  match P.read_request ~next_line:(feed input) with
  | Some _ -> Alcotest.fail "expected a parse error, frame parsed"
  | None -> Alcotest.fail "expected a parse error, got end of stream"
  | exception P.Parse_error { line; msg } ->
      P.parse_error_message ~line ~msg

let test_located_parse_errors () =
  let check label input expected =
    Alcotest.(check string) label expected (parse_error input)
  in
  check "wrong header" "hello\n" "line 1: expected \"suu-request v1\"";
  check "unknown type" "suu-request v1\ntype frobnicate\ndone\n"
    "line 2: unknown request type \"frobnicate\" (have: describe, \
     lower_bound, plan, simulate, stats)";
  check "unknown field" "suu-request v1\ntype stats\nbogus 1\ndone\n"
    "line 3: unknown or malformed field \"bogus\"";
  check "bad reps" "suu-request v1\ntype simulate\nreps banana\ndone\n"
    "line 3: reps: expected an integer, got \"banana\"";
  check "reps out of range"
    "suu-request v1\ntype simulate\nreps 99999999\ndone\n"
    "line 3: reps must be in [1, 1000000]";
  check "duplicate field" "suu-request v1\ntype stats\ntype stats\ndone\n"
    "line 3: duplicate field type";
  check "missing type" "suu-request v1\nid x\ndone\n"
    "line 3: missing required field 'type'";
  check "missing instance" "suu-request v1\ntype describe\ndone\n"
    "line 3: describe requires an instance block";
  check "truncated frame" "suu-request v1\ntype stats\n"
    "line 3: unexpected end of stream inside request (missing 'done')";
  (* Errors inside the embedded instance block are relocated to frame
     coordinates: the block starts right after the [instance] marker. *)
  check "bad float in embedded instance"
    "suu-request v1\n\
     type describe\n\
     instance\n\
     suu-instance v1\n\
     name x\n\
     machines 1\n\
     jobs 1\n\
     q\n\
     NOTAFLOAT\n\
     edges 0\n\
     end\n\
     done\n"
    "line 9: bad float \"NOTAFLOAT\"";
  check "truncated embedded instance"
    "suu-request v1\ntype describe\ninstance\nsuu-instance v1\n"
    "line 5: unexpected end of stream inside instance block (missing 'end')"

let test_skip_frame_resyncs () =
  let input =
    "garbage here\nmore garbage\ndone\nsuu-request v1\ntype stats\ndone\n"
  in
  let next_line = feed input in
  (match P.read_request ~next_line with
  | exception P.Parse_error { line = 1; _ } -> ()
  | _ -> Alcotest.fail "expected a parse error on line 1");
  P.skip_frame ~next_line;
  match P.read_request ~next_line with
  | Some { P.body = P.Stats; _ } -> ()
  | _ -> Alcotest.fail "expected the stats frame after resync"

(* --- bounded queue --- *)

let test_bqueue_fifo_and_reject () =
  let q = Bqueue.create ~capacity:3 in
  Alcotest.(check int) "capacity" 3 (Bqueue.capacity q);
  Alcotest.(check bool) "push 1" true (Bqueue.try_push q 1);
  Alcotest.(check bool) "push 2" true (Bqueue.try_push q 2);
  Alcotest.(check bool) "push 3" true (Bqueue.try_push q 3);
  Alcotest.(check bool) "full refuses" false (Bqueue.try_push q 4);
  Alcotest.(check int) "length" 3 (Bqueue.length q);
  Alcotest.(check (option int)) "fifo 1" (Some 1) (Bqueue.pop q);
  Alcotest.(check bool) "room again" true (Bqueue.try_push q 5);
  Alcotest.(check (option int)) "fifo 2" (Some 2) (Bqueue.pop q);
  Alcotest.(check (option int)) "fifo 3" (Some 3) (Bqueue.pop q);
  Alcotest.(check (option int)) "fifo 5" (Some 5) (Bqueue.pop q)

let test_bqueue_close_drains () =
  let q = Bqueue.create ~capacity:4 in
  ignore (Bqueue.try_push q "a");
  ignore (Bqueue.try_push q "b");
  Bqueue.close q;
  Alcotest.(check bool) "closed refuses" false (Bqueue.try_push q "c");
  Alcotest.(check (option string)) "drains a" (Some "a") (Bqueue.pop q);
  Alcotest.(check (option string)) "drains b" (Some "b") (Bqueue.pop q);
  Alcotest.(check (option string)) "then exhausted" None (Bqueue.pop q);
  Bqueue.close q (* idempotent *)

let test_bqueue_blocking_pop () =
  let q = Bqueue.create ~capacity:1 in
  let got = ref None in
  let th = Thread.create (fun () -> got := Bqueue.pop q) () in
  Thread.delay 0.02;
  Alcotest.(check (option int)) "still blocked" None !got;
  ignore (Bqueue.try_push q 42);
  Thread.join th;
  Alcotest.(check (option int)) "woke with item" (Some 42) !got

(* --- metrics --- *)

let test_metrics_render () =
  let m = Metrics.create () in
  Metrics.observe m ~rtype:"simulate" ~code:None ~latency:0.003;
  Metrics.observe m ~rtype:"simulate" ~code:(Some "overloaded")
    ~latency:0.0001;
  Metrics.observe m ~rtype:"stats" ~code:(Some "timeout") ~latency:7.5;
  let fields = Metrics.render m in
  let get k =
    match List.assoc_opt k fields with
    | Some v -> v
    | None -> Alcotest.fail ("missing stats key " ^ k)
  in
  Alcotest.(check string) "total" "3" (get "requests_total");
  Alcotest.(check string) "simulate" "2" (get "requests_simulate");
  Alcotest.(check string) "stats" "1" (get "requests_stats");
  Alcotest.(check string) "ok" "1" (get "ok");
  Alcotest.(check string) "errors" "2" (get "errors");
  Alcotest.(check string) "rejects" "1" (get "rejects");
  Alcotest.(check string) "timeouts" "1" (get "timeouts");
  Alcotest.(check string) "le 1ms" "1" (get "latency_le_1ms");
  Alcotest.(check string) "le 5ms" "1" (get "latency_le_5ms");
  Alcotest.(check string) "overflow" "1" (get "latency_gt_5000ms")

(* --- end-to-end loopback --- *)

let with_server ?(config = Server.default_config) f =
  let server = Server.start ~config () in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () -> f server)

let with_client server f =
  let c = Client.connect ~port:(Server.port server) () in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let field fields k =
  match List.assoc_opt k fields with
  | Some v -> v
  | None -> Alcotest.fail ("missing response field " ^ k)

let test_e2e_all_request_types () =
  let inst = W.independent uniform ~n:8 ~m:3 ~seed:11 in
  with_server (fun server ->
      with_client server (fun c ->
          let d = Client.describe c inst in
          Alcotest.(check string) "machines" "3" (field d "machines");
          Alcotest.(check string) "jobs" "8" (field d "jobs");
          Alcotest.(check string) "shape" "independent" (field d "shape");
          let lb = Client.lower_bound c inst in
          Alcotest.(check bool)
            "combined bound positive" true
            (float_of_string (field lb "combined") > 0.0);
          let pl = Client.plan c ~policy:"greedy" ~seed:2 inst in
          Alcotest.(check string) "plan policy" "greedy" (field pl "policy");
          Alcotest.(check bool)
            "plan makespan positive" true
            (int_of_string (field pl "makespan") > 0);
          let sim = Client.simulate c ~policy:"greedy" ~reps:5 ~seed:3 inst in
          Alcotest.(check string) "reps echoed" "5" (field sim "reps");
          (* The simulate contract: identical to Runner.makespans. *)
          let xs =
            Suu_sim.Runner.makespans inst
              (Suu_core.Baselines.greedy_completion inst)
              ~seed:3 ~reps:5
          in
          let s = Suu_stats.Summary.of_array xs in
          Alcotest.(check string)
            "mean matches Runner"
            (Printf.sprintf "%.17g" s.Suu_stats.Summary.mean)
            (field sim "mean");
          let st = Client.stats c () in
          Alcotest.(check string)
            "stats counted the four oks" "4" (field st "ok");
          Alcotest.(check bool)
            "queue depth exposed" true
            (List.mem_assoc "queue_depth" st)))

let test_e2e_errors_keep_connection () =
  let inst = W.independent uniform ~n:6 ~m:2 ~seed:12 in
  with_server (fun server ->
      with_client server (fun c ->
          (* Unknown policy: structured bad_request, connection lives. *)
          (match Client.call c (P.Plan { inst; policy = "nope"; seed = 0 }) with
          | P.Err { code = P.Bad_request; _ } -> ()
          | _ -> Alcotest.fail "expected bad_request for unknown policy");
          (* Shape-inapplicable policy: suu-c needs disjoint chains. *)
          (match Client.call c (P.Plan { inst; policy = "suu-c"; seed = 0 })
           with
          | P.Err { code = P.Bad_request; message; _ } ->
              Alcotest.(check bool)
                "message names the shape" true
                (String.length message > 0)
          | _ -> Alcotest.fail "expected bad_request for suu-c on independent");
          (* The connection still serves valid requests afterwards. *)
          let d = Client.describe c inst in
          Alcotest.(check string) "still alive" "6" (field d "jobs")))

let test_e2e_parse_error_then_valid_frame () =
  with_server (fun server ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd
            (Unix.ADDR_INET
               (Unix.inet_addr_of_string "127.0.0.1", Server.port server));
          let send s =
            ignore (Unix.write_substring fd s 0 (String.length s))
          in
          send "total garbage\nmore\ndone\n";
          send
            (P.request_to_string
               { P.id = Some "after"; deadline_ms = None; body = P.Stats });
          let rd = Suu_server.Lineio.reader fd in
          let next_line () = Suu_server.Lineio.next_line rd in
          (match P.read_response ~next_line with
          | Some (P.Err { code = P.Parse; message; _ }) ->
              Alcotest.(check bool)
                "parse error is located" true
                (String.length message >= 7
                && String.sub message 0 7 = "line 1:")
          | _ -> Alcotest.fail "expected a parse error reply");
          match P.read_response ~next_line with
          | Some (P.Ok { id = Some "after"; rtype = "stats"; _ }) -> ()
          | _ -> Alcotest.fail "connection should survive a parse error"))

let test_e2e_overload_rejects () =
  (* One worker, queue of one: a slow request occupies the worker, the
     next fills the queue, the third must be refused immediately. *)
  let config =
    { Server.default_config with workers = 1; queue_capacity = 1;
      sim_jobs = Some 1 }
  in
  let slow_inst = W.independent W.Near_one ~n:32 ~m:4 ~seed:13 in
  let quick_inst = W.independent uniform ~n:4 ~m:2 ~seed:14 in
  with_server ~config (fun server ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd
            (Unix.ADDR_INET
               (Unix.inet_addr_of_string "127.0.0.1", Server.port server));
          let send id body =
            let s =
              P.request_to_string
                { P.id = Some id; deadline_ms = None; body }
            in
            ignore (Unix.write_substring fd s 0 (String.length s))
          in
          send "slow"
            (P.Simulate
               { inst = slow_inst; policy = "greedy"; reps = 2000; seed = 1 });
          send "queued" (P.Describe quick_inst);
          send "refused" (P.Describe quick_inst);
          let rd = Suu_server.Lineio.reader fd in
          let next_line () = Suu_server.Lineio.next_line rd in
          let rec read_all acc n =
            if n = 0 then acc
            else
              match P.read_response ~next_line with
              | Some r -> read_all (r :: acc) (n - 1)
              | None -> Alcotest.fail "stream ended early"
          in
          let responses = read_all [] 3 in
          (* Whether the worker has already popped the slow job when the
             follow-ups arrive is a benign race: if it has, the second
             fills the queue and the third is refused; if it has not, the
             slow job still occupies the queue and both follow-ups are
             refused.  Either way the slow request entered an empty queue
             and must succeed, and at least one follow-up must be refused
             while it runs. *)
          let rejected =
            List.filter_map
              (function
                | P.Err { id; code = P.Overloaded; _ } -> id
                | _ -> None)
              responses
          in
          Alcotest.(check bool)
            "at least one follow-up refused" true
            (List.length rejected >= 1);
          Alcotest.(check bool)
            "the slow request was never refused" false
            (List.mem "slow" rejected);
          let slow_ok =
            List.exists
              (function
                | P.Ok { id = Some "slow"; _ } -> true
                | _ -> false)
              responses
          in
          Alcotest.(check bool) "the slow request succeeded" true slow_ok))

let test_e2e_deadline_timeout () =
  let config = { Server.default_config with sim_jobs = Some 1 } in
  let inst = W.independent W.Near_one ~n:32 ~m:4 ~seed:15 in
  with_server ~config (fun server ->
      with_client server (fun c ->
          match
            Client.call c ~deadline_ms:1
              (P.Simulate { inst; policy = "greedy"; reps = 5000; seed = 1 })
          with
          | P.Err { code = P.Timeout; _ } -> ()
          | P.Ok _ -> Alcotest.fail "a 1ms deadline cannot be met"
          | P.Err { code; _ } ->
              Alcotest.fail
                ("expected timeout, got " ^ P.error_code_to_string code)))

let test_e2e_deterministic_across_pools () =
  (* The same simulate request must produce byte-identical response
     frames whatever the worker count and simulation domain count. *)
  let inst = W.independent uniform ~n:10 ~m:3 ~seed:16 in
  let body = P.Simulate { inst; policy = "auto"; reps = 9; seed = 7 } in
  let bytes_with ~workers ~sim_jobs =
    let config = { Server.default_config with workers; sim_jobs } in
    with_server ~config (fun server ->
        with_client server (fun c ->
            P.response_to_string (Client.call c body)))
  in
  Alcotest.(check string)
    "workers=1/jobs=1 vs workers=4/jobs=4"
    (bytes_with ~workers:1 ~sim_jobs:(Some 1))
    (bytes_with ~workers:4 ~sim_jobs:(Some 4))

let test_e2e_online_policies_deterministic () =
  (* The lib/sched policies carry per-execution predictor state seeded
     from (digest, policy, seed): two serves of the same request must
     be byte-identical, and a different seed must actually change the
     outcome (or the determinism claim is vacuous). *)
  let inst = W.independent uniform ~n:10 ~m:3 ~seed:17 in
  with_server (fun server ->
      with_client server (fun c ->
          List.iter
            (fun policy ->
              let ask seed =
                P.response_to_string
                  (Client.call c (P.Simulate { inst; policy; reps = 9; seed }))
              in
              Alcotest.(check string)
                (policy ^ " same-seed replay byte-identical")
                (ask 7) (ask 7);
              Alcotest.(check bool)
                (policy ^ " different seed differs")
                true
                (ask 7 <> ask 8))
            [ "lzf"; "backfill" ];
          (* Both policies are LP-free: the serve path must have counted
             their plan-cache bypasses and exposed them in stats. *)
          let st = Client.stats c () in
          Alcotest.(check bool)
            "plan_cache_bypass positive" true
            (int_of_string (field st "plan_cache_bypass") > 0)))

(* --- faults --- *)

let test_faults_spec () =
  let module F = Suu_server.Faults in
  (match
     F.of_spec "drop=0.05,delay=0.1:25,error=0.01,kill=0.02,crash=0.03,seed=42"
   with
  | Result.Ok c ->
      Alcotest.(check (float 1e-12)) "drop" 0.05 c.F.drop;
      Alcotest.(check (float 1e-12)) "delay" 0.1 c.F.delay;
      Alcotest.(check int) "delay_ms" 25 c.F.delay_ms;
      Alcotest.(check int) "seed" 42 c.F.seed;
      Alcotest.(check bool) "active" true (F.active c);
      (match F.of_spec (F.to_spec c) with
      | Result.Ok c2 -> Alcotest.(check bool) "spec roundtrips" true (c = c2)
      | Result.Error m -> Alcotest.fail m)
  | Result.Error m -> Alcotest.fail m);
  (match F.of_spec "" with
  | Result.Ok c ->
      Alcotest.(check bool) "empty spec is inactive" false (F.active c)
  | Result.Error m -> Alcotest.fail m);
  (match F.of_spec "drop=2" with
  | Result.Error _ -> ()
  | Result.Ok _ -> Alcotest.fail "probability above 1 must be rejected");
  (match F.of_spec "bogus=1" with
  | Result.Error _ -> ()
  | Result.Ok _ -> Alcotest.fail "unknown key must be rejected");
  (* Two injectors armed from the same config make identical decisions:
     injected totals are a function of (config, decision count) alone. *)
  match F.of_spec "drop=0.3,delay=0.2:5,error=0.1,kill=0.1,seed=7" with
  | Result.Error m -> Alcotest.fail m
  | Result.Ok c ->
      let t1 = F.create c and t2 = F.create c in
      let f1 = List.init 200 (fun _ -> F.reply_fate t1) in
      let f2 = List.init 200 (fun _ -> F.reply_fate t2) in
      Alcotest.(check bool) "fates deterministic per seed" true (f1 = f2)

(* --- monotonic deadlines --- *)

let test_service_deadline_monotonic () =
  (* Deadline expiry depends only on the injected monotonic clock. *)
  let now = Atomic.make 0L in
  let svc =
    Suu_server.Service.create
      ~clock_ns:(fun () -> Atomic.get now)
      ~metrics:(Metrics.create ()) ()
  in
  let inst = W.independent uniform ~n:4 ~m:2 ~seed:18 in
  (match Suu_server.Service.handle svc ~deadline:10_000_000L (P.Describe inst)
   with
  | Result.Ok _ -> ()
  | Result.Error (code, msg) ->
      Alcotest.failf "unexpired deadline failed: [%s] %s"
        (P.error_code_to_string code) msg);
  Atomic.set now 10_000_001L;
  match Suu_server.Service.handle svc ~deadline:10_000_000L (P.Describe inst)
  with
  | Result.Error (P.Timeout, _) -> ()
  | _ -> Alcotest.fail "expired monotonic deadline must report timeout"

let test_e2e_deadline_ignores_wall_clock () =
  (* Regression: queue-expiry used to compare [Unix.gettimeofday]
     against a wall-clock deadline, so real time spent queued (or an
     NTP step while queued) expired requests that had consumed none of
     their monotonic budget.  With the server's clock frozen, a request
     with a 50 ms deadline must survive sitting behind a slow request
     for far longer than 50 ms of wall time. *)
  let config =
    { Server.default_config with
      workers = 1; sim_jobs = Some 1; clock_ns = (fun () -> 0L) }
  in
  let slow_inst = W.independent W.Near_one ~n:32 ~m:4 ~seed:15 in
  let quick_inst = W.independent uniform ~n:4 ~m:2 ~seed:16 in
  with_server ~config (fun server ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd
            (Unix.ADDR_INET
               (Unix.inet_addr_of_string "127.0.0.1", Server.port server));
          let send id deadline_ms body =
            let s = P.request_to_string { P.id = Some id; deadline_ms; body } in
            ignore (Unix.write_substring fd s 0 (String.length s))
          in
          send "slow" None
            (P.Simulate
               { inst = slow_inst; policy = "greedy"; reps = 1500; seed = 1 });
          send "quick" (Some 50) (P.Describe quick_inst);
          let rd = Suu_server.Lineio.reader fd in
          let next_line () = Suu_server.Lineio.next_line rd in
          let rec read_all acc n =
            if n = 0 then List.rev acc
            else
              match P.read_response ~next_line with
              | Some r -> read_all (r :: acc) (n - 1)
              | None -> Alcotest.fail "stream ended early"
          in
          match read_all [] 2 with
          | [ P.Ok { id = Some "slow"; _ }; P.Ok { id = Some "quick"; _ } ] ->
              ()
          | [ _; P.Err { id = Some "quick"; code; _ } ] ->
              Alcotest.failf
                "queued request expired by wall clock: [%s]"
                (P.error_code_to_string code)
          | _ -> Alcotest.fail "unexpected responses"))

let test_e2e_faults_retries_converge () =
  (* Against a server injecting drops, delays, spurious errors, torn
     frames and worker crashes, a retrying client must complete every
     request — and the injection/retry counters must show the run was
     actually chaotic. *)
  let faults =
    match
      Suu_server.Faults.of_spec
        "drop=0.2,delay=0.2:5,error=0.1,kill=0.1,crash=0.1,seed=99"
    with
    | Result.Ok c -> c
    | Result.Error m -> Alcotest.fail m
  in
  let config =
    { Server.default_config with
      workers = 2; sim_jobs = Some 1; faults = Some faults }
  in
  let counter n = Suu_obs.Counter.get (Suu_obs.Registry.counter n) in
  let injected () =
    List.fold_left
      (fun a n -> a + counter ("faults.injected." ^ n))
      0
      [ "drop"; "delay"; "error"; "kill"; "crash" ]
  in
  let inj0 = injected () and retr0 = counter "client.retries" in
  let inst = W.independent uniform ~n:6 ~m:2 ~seed:19 in
  with_server ~config (fun server ->
      let c =
        Client.connect ~port:(Server.port server) ~retries:15 ~timeout_ms:300
          ~backoff_ms:2 ~retry_seed:5 ()
      in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          for i = 1 to 30 do
            let body =
              if i mod 3 = 0 then P.Plan { inst; policy = "greedy"; seed = i }
              else P.Describe inst
            in
            match Client.call c body with
            | P.Ok _ -> ()
            | P.Err { code; message; _ } ->
                Alcotest.failf "request %d failed despite retries: [%s] %s" i
                  (P.error_code_to_string code)
                  message
          done));
  Alcotest.(check bool) "faults were injected" true (injected () > inj0);
  Alcotest.(check bool) "client retried" true (counter "client.retries" > retr0)

let test_e2e_graceful_shutdown_drains () =
  (* Stop must let an in-flight request finish and its reply reach the
     client before the connection is torn down. *)
  let config =
    { Server.default_config with workers = 1; sim_jobs = Some 1 }
  in
  let inst = W.independent W.Near_one ~n:24 ~m:4 ~seed:17 in
  let server = Server.start ~config () in
  let result = ref None in
  let th =
    Thread.create
      (fun () ->
        with_client server (fun c ->
            result :=
              Some
                (Client.call c
                   (P.Simulate
                      { inst; policy = "greedy"; reps = 500; seed = 2 }))))
      ()
  in
  Thread.delay 0.05;
  Server.stop server;
  Thread.join th;
  match !result with
  | Some (P.Ok { rtype = "simulate"; fields; _ }) ->
      Alcotest.(check bool)
        "got a real summary" true
        (List.mem_assoc "mean" fields)
  | Some (P.Err { code; message; _ }) ->
      Alcotest.fail
        (Printf.sprintf "in-flight request dropped: [%s] %s"
           (P.error_code_to_string code)
           message)
  | _ -> Alcotest.fail "no response before shutdown completed"

let test_e2e_solver_parity_and_stats () =
  (* On a tiny instance (m * n <= 16) certified MWU falls back to the
     same deterministic simplex solve, so an mwu server and a simplex
     server must answer plan/simulate byte-identically.  Also checks
     the stats reply advertises the configured solver and the
     plan-cache hit rates (satellite: observable hit rates). *)
  let inst = W.independent uniform ~n:4 ~m:4 ~seed:19 in
  let run solver =
    let config = { Server.default_config with solver = Some solver } in
    with_server ~config (fun server ->
        with_client server (fun c ->
            let pl = Client.plan c ~policy:"suu-i-sem" ~seed:5 inst in
            let pl2 = Client.plan c ~policy:"suu-i-sem" ~seed:5 inst in
            let sim =
              Client.simulate c ~policy:"suu-i-obl" ~reps:8 ~seed:6 inst
            in
            let st = Client.stats c () in
            Alcotest.(check bool) "plan replies are deterministic" true
              (pl = pl2);
            Alcotest.(check string) "stats names the solver"
              (Suu_core.Solver_choice.name solver)
              (field st "solver");
            Alcotest.(check bool) "global hit rate exposed" true
              (List.mem_assoc "plan_cache_hit_rate" st);
            Alcotest.(check bool) "per-shard hit rates exposed" true
              (List.mem_assoc "plan_cache_shard0_hit_rate" st);
            (pl, sim)))
  in
  let mwu = run (Suu_core.Solver_choice.Mwu 0.1) in
  let simplex = run Suu_core.Solver_choice.Simplex in
  Alcotest.(check bool)
    "mwu and simplex servers answer byte-identically on tiny instances"
    true (mwu = simplex)

(* --- line buffering and read-boundary splits --- *)

let test_linebuf_boundary_splits () =
  (* One byte per feed: the worst possible read fragmentation must
     reassemble lines exactly, including CRLF and empty lines. *)
  let module LB = Suu_server.Lineio.Linebuf in
  let input = "alpha\nbeta\r\n\ngamma" in
  let lb = LB.create () in
  let got = ref [] in
  String.iter
    (fun ch ->
      LB.feed lb (Bytes.make 1 ch) 0 1;
      let rec drain () =
        match LB.next lb with
        | Some l ->
            got := l :: !got;
            drain ()
        | None -> ()
      in
      drain ())
    input;
  (match LB.take_rest lb with Some l -> got := l :: !got | None -> ());
  Alcotest.(check (list string))
    "lines reassemble across 1-byte reads"
    [ "alpha"; "beta"; ""; "gamma" ]
    (List.rev !got)

let test_lineio_frame_split_every_boundary () =
  (* Regression: a frame split across two reads used to surface as a
     located parse error when the split abandoned the buffered partial
     line.  Cut a valid frame at every byte position and parse it. *)
  let s =
    P.request_to_string { P.id = Some "x"; deadline_ms = None; body = P.Stats }
  in
  for cut = 1 to String.length s - 1 do
    let parts =
      ref [ String.sub s 0 cut; String.sub s cut (String.length s - cut) ]
    in
    let fn buf off _len =
      match !parts with
      | [] -> 0
      | p :: tl ->
          parts := tl;
          Bytes.blit_string p 0 buf off (String.length p);
          String.length p
    in
    let rd = Suu_server.Lineio.reader_of_fn fn in
    let next_line () = Suu_server.Lineio.next_line rd in
    match P.read_request ~next_line with
    | Some { P.id = Some "x"; body = P.Stats; _ } -> ()
    | Some _ -> Alcotest.failf "frame split at byte %d parsed wrong" cut
    | None -> Alcotest.failf "frame split at byte %d read as end of stream" cut
    | exception P.Parse_error { line; msg } ->
        Alcotest.failf "frame split at byte %d raised: line %d: %s" cut line msg
  done

let test_lineio_eintr_mid_frame () =
  (* Regression: an EINTR between the two halves of a frame was caught
     by the blanket Unix_error handler, which flagged EOF and discarded
     the buffered partial line — so the frame surfaced as a located
     "unexpected end of stream" parse error.  An interrupted read must
     be retried with the buffer intact. *)
  let chunks =
    ref [ `Data "suu-request v1\nid e\ntype st"; `Eintr; `Data "ats\ndone\n" ]
  in
  let fn buf off _len =
    match !chunks with
    | [] -> 0
    | `Eintr :: tl ->
        chunks := tl;
        raise (Unix.Unix_error (Unix.EINTR, "read", ""))
    | `Data s :: tl ->
        chunks := tl;
        Bytes.blit_string s 0 buf off (String.length s);
        String.length s
  in
  let rd = Suu_server.Lineio.reader_of_fn fn in
  let next_line () = Suu_server.Lineio.next_line rd in
  match P.read_request ~next_line with
  | Some { P.id = Some "e"; body = P.Stats; _ } -> ()
  | Some _ -> Alcotest.fail "EINTR mid-frame corrupted the request"
  | None -> Alcotest.fail "EINTR mid-frame read as end of stream"
  | exception P.Parse_error { line; msg } ->
      Alcotest.failf "EINTR mid-frame surfaced as parse error: line %d: %s"
        line msg

(* --- event-loop edge cases --- *)

let counter n = Suu_obs.Counter.get (Suu_obs.Registry.counter n)

let connect_raw server =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd
    (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", Server.port server));
  fd

let request_bytes id body =
  P.request_to_string { P.id = Some id; deadline_ms = None; body }

let read_responses fd n =
  let rd = Suu_server.Lineio.reader fd in
  let next_line () = Suu_server.Lineio.next_line rd in
  let rec go acc n =
    if n = 0 then List.rev acc
    else
      match P.read_response ~next_line with
      | Some r -> go (r :: acc) (n - 1)
      | None -> Alcotest.failf "stream ended with %d responses missing" n
  in
  go [] n

let response_id = function
  | P.Ok { id; _ } | P.Err { id; _ } -> Option.value id ~default:"<none>"

let test_e2e_pipelined_one_segment () =
  (* All requests arrive in ONE write — very likely one TCP segment on
     loopback — and every one must be parsed and answered.  One worker
     keeps completion order equal to admission order. *)
  let config = { Server.default_config with workers = 1 } in
  let inst = W.independent uniform ~n:4 ~m:2 ~seed:21 in
  let n = 8 in
  with_server ~config (fun server ->
      let fd = connect_raw server in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let buf = Buffer.create 1024 in
          for i = 1 to n do
            Buffer.add_string buf
              (request_bytes
                 (Printf.sprintf "p%d" i)
                 (if i mod 2 = 0 then P.Stats else P.Describe inst))
          done;
          Suu_server.Lineio.write_all fd (Buffer.contents buf);
          let ids = List.map response_id (read_responses fd n) in
          Alcotest.(check (list string))
            "all pipelined requests answered in order"
            (List.init n (fun i -> Printf.sprintf "p%d" (i + 1)))
            ids))

let test_e2e_partial_write_resume () =
  (* A tiny SO_SNDBUF on the server plus a tiny SO_RCVBUF on a client
     that reads nothing until it has sent everything forces short
     writes: the writer must park the tail and resume it when the
     socket drains, without corrupting or reordering any frame. *)
  let config =
    { Server.default_config with
      workers = 1; queue_capacity = 256; so_sndbuf = Some 4096 }
  in
  let n = 200 in
  with_server ~config (fun server ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt_int fd Unix.SO_RCVBUF 4096;
      Unix.connect fd
        (Unix.ADDR_INET
           (Unix.inet_addr_of_string "127.0.0.1", Server.port server));
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let before = counter "server.writer.resumed" in
          let buf = Buffer.create (n * 48) in
          for i = 1 to n do
            Buffer.add_string buf (request_bytes (Printf.sprintf "w%d" i) P.Stats)
          done;
          Suu_server.Lineio.write_all fd (Buffer.contents buf);
          (* let the server run into the full socket before we drain *)
          Thread.delay 0.2;
          let ids = List.map response_id (read_responses fd n) in
          Alcotest.(check (list string))
            "every response intact and in order"
            (List.init n (fun i -> Printf.sprintf "w%d" (i + 1)))
            ids;
          Alcotest.(check bool)
            "short writes were parked and resumed" true
            (counter "server.writer.resumed" > before)))

let test_e2e_slow_reader_backpressure () =
  (* A peer that pipelines thousands of requests but reads nothing must
     not buy unbounded reply buffering: once the unsent backlog passes
     [outbuf_limit] the loop stops READING that connection (so stops
     admitting from it), while other connections stay fully served. *)
  let config =
    { Server.default_config with
      workers = 2; queue_capacity = 256; so_sndbuf = Some 4096;
      outbuf_limit = 16 * 1024 }
  in
  let inst = W.independent uniform ~n:4 ~m:2 ~seed:22 in
  let n = 400 in
  with_server ~config (fun server ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt_int fd Unix.SO_RCVBUF 4096;
      Unix.connect fd
        (Unix.ADDR_INET
           (Unix.inet_addr_of_string "127.0.0.1", Server.port server));
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let before = counter "server.reader.paused" in
          let buf = Buffer.create (n * 48) in
          for i = 1 to n do
            Buffer.add_string buf (request_bytes (Printf.sprintf "s%d" i) P.Stats)
          done;
          Suu_server.Lineio.write_all fd (Buffer.contents buf);
          let rec wait tries =
            if counter "server.reader.paused" > before || tries = 0 then ()
            else begin
              Thread.delay 0.02;
              wait (tries - 1)
            end
          in
          wait 250;
          Alcotest.(check bool)
            "read interest shed under reply backlog" true
            (counter "server.reader.paused" > before);
          (* an unrelated connection is still served while the slow
             reader is stalled *)
          with_client server (fun c ->
              let d = Client.describe c inst in
              Alcotest.(check string)
                "other connections unaffected" "4" (field d "jobs"));
          (* draining the slow reader unsticks everything: one reply per
             request, ids complete (order across the overload boundary
             is not guaranteed with two workers) *)
          let ids = List.map response_id (read_responses fd n) in
          Alcotest.(check (list string))
            "every request answered exactly once"
            (List.sort compare (List.init n (fun i -> Printf.sprintf "s%d" (i + 1))))
            (List.sort compare ids)))

let test_e2e_mid_request_disconnect () =
  (* A client that dies halfway through a frame must cost the server
     nothing: the connection is reaped and new clients are served. *)
  with_server (fun server ->
      let fd = connect_raw server in
      Suu_server.Lineio.write_all fd
        "suu-request v1\nid half\ntype describe\ninstance\nsuu-instance v1\n";
      Unix.close fd;
      let deadline = Unix.gettimeofday () +. 2.0 in
      let rec check_reaped () =
        let reaped =
          with_client server (fun c ->
              let st = Client.stats c () in
              field st "connections" = "1")
        in
        if reaped then ()
        else if Unix.gettimeofday () > deadline then
          Alcotest.fail "half-dead connection never reaped"
        else begin
          Thread.delay 0.02;
          check_reaped ()
        end
      in
      check_reaped ())

let () =
  Alcotest.run "server"
    [
      ( "protocol",
        [
          Alcotest.test_case "request roundtrips" `Quick
            test_request_roundtrips;
          Alcotest.test_case "response roundtrips" `Quick
            test_response_roundtrips;
          Alcotest.test_case "located parse errors" `Quick
            test_located_parse_errors;
          Alcotest.test_case "skip_frame resyncs" `Quick
            test_skip_frame_resyncs;
        ] );
      ( "bqueue",
        [
          Alcotest.test_case "fifo and reject-when-full" `Quick
            test_bqueue_fifo_and_reject;
          Alcotest.test_case "close drains" `Quick test_bqueue_close_drains;
          Alcotest.test_case "blocking pop" `Quick test_bqueue_blocking_pop;
        ] );
      ( "metrics",
        [ Alcotest.test_case "render" `Quick test_metrics_render ] );
      ( "lineio",
        [
          Alcotest.test_case "linebuf 1-byte boundary splits" `Quick
            test_linebuf_boundary_splits;
          Alcotest.test_case "frame split at every read boundary" `Quick
            test_lineio_frame_split_every_boundary;
          Alcotest.test_case "EINTR mid-frame is retried, not EOF" `Quick
            test_lineio_eintr_mid_frame;
        ] );
      ( "faults",
        [
          Alcotest.test_case "spec parse/roundtrip/determinism" `Quick
            test_faults_spec;
          Alcotest.test_case "retrying client converges" `Quick
            test_e2e_faults_retries_converge;
        ] );
      ( "deadlines",
        [
          Alcotest.test_case "service uses the injected monotonic clock"
            `Quick test_service_deadline_monotonic;
          Alcotest.test_case "queued request ignores wall clock" `Quick
            test_e2e_deadline_ignores_wall_clock;
        ] );
      ( "e2e",
        [
          Alcotest.test_case "all request types" `Quick
            test_e2e_all_request_types;
          Alcotest.test_case "errors keep the connection" `Quick
            test_e2e_errors_keep_connection;
          Alcotest.test_case "parse error then valid frame" `Quick
            test_e2e_parse_error_then_valid_frame;
          Alcotest.test_case "overload rejects" `Quick
            test_e2e_overload_rejects;
          Alcotest.test_case "deadline timeout" `Quick
            test_e2e_deadline_timeout;
          Alcotest.test_case "deterministic across pools" `Quick
            test_e2e_deterministic_across_pools;
          Alcotest.test_case "online policies serve deterministically" `Quick
            test_e2e_online_policies_deterministic;
          Alcotest.test_case "graceful shutdown drains" `Quick
            test_e2e_graceful_shutdown_drains;
          Alcotest.test_case "solver parity and stats" `Quick
            test_e2e_solver_parity_and_stats;
        ] );
      ( "event-loop",
        [
          Alcotest.test_case "pipelined requests in one segment" `Quick
            test_e2e_pipelined_one_segment;
          Alcotest.test_case "partial writes park and resume" `Quick
            test_e2e_partial_write_resume;
          Alcotest.test_case "slow reader sheds read interest" `Quick
            test_e2e_slow_reader_backpressure;
          Alcotest.test_case "mid-request disconnect is reaped" `Quick
            test_e2e_mid_request_disconnect;
        ] );
    ]
