(* The lib/sched online-policy family: LZF greedy, EASY-style backfill
   with runtime prediction, the shared predictor, and the policy
   registry that dispatches them.  The strict engine raises on any
   ineligible assignment, and the audit re-derives validity from the
   recording alone, so "runs clean through both" is the model-validity
   bar every policy must clear. *)

module Dag = Suu_dag.Dag
module Instance = Suu_core.Instance
module Policy = Suu_core.Policy
module Registry = Suu_core.Policy_registry
module Runner = Suu_sim.Runner
module Engine = Suu_sim.Engine
module Trace = Suu_sim.Trace
module Audit = Suu_sim.Audit
module Lzf = Suu_sched.Lzf
module Backfill = Suu_sched.Backfill
module Predictor = Suu_sched.Predictor
module W = Suu_workload.Workload
module Rng = Suu_prng.Rng

let () = Suu_sched.Register.ensure ()

let uniform = W.Uniform { lo = 0.2; hi = 0.95 }

let contains ~sub s =
  let n = String.length s and k = String.length sub in
  let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
  go 0

let shaped_instance ~shape ~seed =
  match shape mod 4 with
  | 0 -> W.independent uniform ~n:9 ~m:3 ~seed
  | 1 -> W.random_chains uniform ~n:9 ~z:3 ~m:3 ~seed
  | 2 -> W.forest uniform ~n:9 ~trees:2 ~orientation:`Out ~m:3 ~seed
  | _ -> W.mapreduce uniform ~maps:4 ~reduces:2 ~m:3 ~seed

let audit_clean inst policy ~seed =
  let rng = Rng.create ~seed in
  let trace = Trace.draw ~n:(Instance.n inst) (Rng.split rng) in
  let _r, steps = Engine.run_recorded inst policy ~trace ~rng in
  match Audit.check inst ~trace ~steps with
  | Ok () -> true
  | Error v ->
      Printf.eprintf "audit: step %d: %s\n" v.Audit.step v.Audit.message;
      false

(* --- LZF --- *)

let prop_lzf_audit_clean =
  QCheck.Test.make ~count:60 ~name:"lzf executions pass the audit"
    QCheck.(pair small_int (int_range 0 3))
    (fun (seed, shape) ->
      let inst = shaped_instance ~shape ~seed in
      audit_clean inst (Lzf.policy inst) ~seed:(seed + 1))

let test_lzf_z_ranking () =
  (* Machine 0 is best for both jobs; job 1 has the lower failure
     probability there, hence the higher Z ratio, hence priority. *)
  let inst =
    Instance.make ~dag:(Dag.empty 2) [| [| 0.9; 0.2 |]; [| 0.95; 0.6 |] |]
  in
  Alcotest.(check bool)
    "z(1) > z(0)" true
    (Lzf.z_ratio inst 1 > Lzf.z_ratio inst 0);
  let stepper = Policy.fresh (Lzf.policy inst) (Rng.create ~seed:1) in
  let a =
    stepper ~time:0 ~remaining:[| true; true |] ~eligible:[| true; true |]
  in
  (* Job 1 takes its best machine (0); job 0 gets the remaining one. *)
  Alcotest.(check (list int)) "assignment" [ 1; 0 ] (Array.to_list a)

let test_lzf_idles_incapable () =
  (* Machine 1 has q = 1 for every job: it must idle rather than grind
     on a job it can never advance. *)
  let inst = Instance.make ~dag:(Dag.empty 1) [| [| 0.5 |]; [| 1.0 |] |] in
  let stepper = Policy.fresh (Lzf.policy inst) (Rng.create ~seed:1) in
  let a = stepper ~time:0 ~remaining:[| true |] ~eligible:[| true |] in
  Alcotest.(check (list int)) "machine 1 idle" [ 0; -1 ] (Array.to_list a)

let prop_lzf_replay_identical =
  QCheck.Test.make ~count:30
    ~name:"lzf same-seed replays are identical for any domain count"
    QCheck.small_int
    (fun seed ->
      let inst = W.independent uniform ~n:10 ~m:4 ~seed in
      let run jobs =
        Runner.makespans ~jobs inst (Lzf.policy inst) ~seed:(seed + 7)
          ~reps:6
      in
      run 1 = run 1 && run 1 = run 4)

(* --- backfill --- *)

let prop_backfill_audit_clean =
  QCheck.Test.make ~count:60 ~name:"backfill executions pass the audit"
    QCheck.(pair small_int (int_range 0 3))
    (fun (seed, shape) ->
      let inst = shaped_instance ~shape ~seed in
      audit_clean inst (Backfill.policy inst) ~seed:(seed + 2))

let prop_backfill_replay_identical =
  QCheck.Test.make ~count:30
    ~name:"backfill same-seed replays are identical for any domain count"
    QCheck.small_int
    (fun seed ->
      let inst = W.independent uniform ~n:10 ~m:4 ~seed in
      let run jobs =
        Runner.makespans ~jobs inst (Backfill.policy inst) ~seed:(seed + 3)
          ~reps:6
      in
      run 1 = run 1 && run 1 = run 4)

(* The EASY invariant: backfilled jobs never delay the FCFS queue.  On
   an independent instance every job is eligible from step 0, so the
   FCFS (non-backfilled) starts must come in strict job-index order —
   any inversion means a backfilled job held machines the head needed
   without being preempted. *)
let prop_backfill_fcfs_order =
  QCheck.Test.make ~count:40
    ~name:"backfill FCFS starts in index order on independent instances"
    QCheck.small_int
    (fun seed ->
      let inst = W.independent uniform ~n:10 ~m:3 ~seed in
      let events = ref [] in
      let policy =
        Backfill.policy ~on_event:(fun e -> events := e :: !events) inst
      in
      let rng = Rng.create ~seed:(seed + 5) in
      let trace = Trace.draw ~n:10 (Rng.split rng) in
      let _ = Engine.run inst policy ~trace ~rng in
      let fcfs_starts =
        List.rev_map
          (function
            | Backfill.Started { job; backfilled = false; _ } -> Some job
            | _ -> None)
          !events
        |> List.filter_map Fun.id
      in
      let rec sorted = function
        | a :: (b :: _ as rest) -> a < b && sorted rest
        | _ -> true
      in
      sorted fcfs_starts)

(* Preempted jobs must have been started as backfill: the scheduler
   never cancels an FCFS job. *)
let prop_backfill_preempts_only_backfilled =
  QCheck.Test.make ~count:40 ~name:"backfill preempts only backfilled jobs"
    QCheck.small_int
    (fun seed ->
      let inst = W.independent uniform ~n:10 ~m:3 ~seed in
      let events = ref [] in
      let policy =
        Backfill.policy ~on_event:(fun e -> events := e :: !events) inst
      in
      let rng = Rng.create ~seed:(seed + 6) in
      let trace = Trace.draw ~n:10 (Rng.split rng) in
      let _ = Engine.run inst policy ~trace ~rng in
      let events = List.rev !events in
      (* Replay the event stream: a job's backfill flag holds from its
         latest start to its preemption. *)
      let bfilled = Hashtbl.create 16 in
      List.for_all
        (function
          | Backfill.Started { job; backfilled; _ } ->
              Hashtbl.replace bfilled job backfilled;
              true
          | Backfill.Preempted { job; _ } ->
              Option.value (Hashtbl.find_opt bfilled job) ~default:false)
        events)

let test_backfill_width_override () =
  let inst = W.independent uniform ~n:6 ~m:4 ~seed:11 in
  Alcotest.(check bool)
    "width 1 completes" true
    (audit_clean inst (Backfill.policy ~width:(fun _ -> 1) inst) ~seed:12);
  Alcotest.(check bool)
    "width m completes" true
    (audit_clean inst (Backfill.policy ~width:(fun _ -> 4) inst) ~seed:13)

(* --- predictor --- *)

let test_predictor_converges_exact () =
  (* Constant runtimes: once the window has one observation the
     prediction is exactly that constant, for every job of the class. *)
  let inst = W.independent uniform ~n:4 ~m:2 ~seed:21 in
  let p = Predictor.create inst ~seed:5 in
  Predictor.observe p ~job:0 ~runtime:17;
  let cls_mates =
    List.filter
      (fun j ->
        Instance.best_machine inst j = Instance.best_machine inst 0)
      [ 0; 1; 2; 3 ]
  in
  List.iter
    (fun j ->
      Alcotest.(check (float 1e-9)) "exact constant" 17.0
        (Predictor.predict p j))
    cls_mates

let test_predictor_window_mean () =
  (* The prediction is the mean of the last [window] observations: old
     samples age out. *)
  let inst = W.independent uniform ~n:2 ~m:2 ~seed:22 in
  let p = Predictor.create ~window:3 inst ~seed:5 in
  List.iter (fun r -> Predictor.observe p ~job:0 ~runtime:r) [ 100; 4; 5; 6 ];
  Alcotest.(check (float 1e-9)) "mean of last 3" 5.0 (Predictor.predict p 0);
  Alcotest.(check int) "observed counts all" 4 (Predictor.observed p 0)

let test_predictor_converges_noisy () =
  (* Noisy stationary runtimes: the windowed prediction lands near the
     true mean (10), far from the initial model estimate. *)
  let inst = W.independent uniform ~n:2 ~m:2 ~seed:23 in
  let p = Predictor.create ~window:8 inst ~seed:5 in
  let rng = Rng.create ~seed:99 in
  for _ = 1 to 200 do
    let r = 5 + Rng.int rng 11 in
    Predictor.observe p ~job:0 ~runtime:r
  done;
  let pred = Predictor.predict p 0 in
  Alcotest.(check bool)
    (Printf.sprintf "prediction %.2f within [7, 13]" pred)
    true
    (pred >= 7.0 && pred <= 13.0)

let test_predictor_deterministic () =
  let inst = W.independent uniform ~n:6 ~m:3 ~seed:24 in
  let mk () =
    let p = Predictor.create inst ~seed:42 in
    List.init 6 (Predictor.predict p)
  in
  Alcotest.(check (list (float 1e-12))) "same seed, same estimates" (mk ())
    (mk ());
  let other =
    let p = Predictor.create inst ~seed:43 in
    List.init 6 (Predictor.predict p)
  in
  Alcotest.(check bool) "different seed jitters" true (mk () <> other)

let test_predictor_floor_and_validation () =
  let inst = W.independent uniform ~n:2 ~m:2 ~seed:25 in
  let p = Predictor.create inst ~seed:1 in
  Predictor.observe p ~job:0 ~runtime:0;
  Alcotest.(check bool)
    "clamped to >= 1" true
    (Predictor.predict p 0 >= 1.0);
  Alcotest.check_raises "window < 1 rejected"
    (Invalid_argument "Predictor.create: window must be >= 1") (fun () ->
      ignore (Predictor.create ~window:0 inst ~seed:1))

(* --- registry --- *)

let test_registry_has_sched_policies () =
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " registered") true (Registry.mem name);
      Alcotest.(check bool) (name ^ " lp-free") true (Registry.lp_free name))
    [ "lzf"; "backfill" ]

(* Every registered policy, built through the registry on an instance
   matching its shape requirement, must complete and pass the audit —
   the dispatch path the server and CLI use is exactly this one. *)
let test_registry_every_policy_audits_clean () =
  let for_shape = function
    | Registry.Any_shape | Registry.Independent_only ->
        W.independent uniform ~n:8 ~m:3 ~seed:31
    | Registry.Chains_only -> W.random_chains uniform ~n:8 ~z:2 ~m:3 ~seed:32
    | Registry.Forest_only ->
        W.forest uniform ~n:8 ~trees:2 ~orientation:`Out ~m:3 ~seed:33
  in
  List.iter
    (fun (e : Registry.entry) ->
      let inst = for_shape e.Registry.shape in
      match Registry.build e.Registry.name inst with
      | Ok policy ->
          Alcotest.(check bool)
            (e.Registry.name ^ " audits clean")
            true
            (audit_clean inst policy ~seed:34)
      | Error _ ->
          Alcotest.failf "%s failed to build on a matching instance"
            e.Registry.name)
    (Registry.entries ())

let test_registry_unknown_lists_names () =
  let inst = W.independent uniform ~n:4 ~m:2 ~seed:35 in
  match Registry.build "no-such-policy" inst with
  | Error (`Unknown msg) ->
      List.iter
        (fun name ->
          Alcotest.(check bool)
            (Printf.sprintf "error mentions %s" name)
            true
            (contains ~sub:name msg))
        (Registry.names ())
  | Error (`Inapplicable _) | Ok _ ->
      Alcotest.fail "expected `Unknown for a made-up policy name"

let test_registry_shape_mismatch () =
  (* A chained instance must not build independent-only policies. *)
  let inst = W.random_chains uniform ~n:8 ~z:2 ~m:3 ~seed:36 in
  (match Registry.build "suu-i-sem" inst with
  | Error (`Inapplicable msg) ->
      Alcotest.(check bool)
        "mentions the requirement" true
        (contains ~sub:"independent" msg)
  | _ -> Alcotest.fail "expected `Inapplicable for suu-i-sem on chains");
  Alcotest.(check bool)
    "applicable excludes suu-i-sem" true
    (not (List.mem "suu-i-sem" (Registry.applicable inst)));
  Alcotest.(check bool)
    "applicable includes lzf" true
    (List.mem "lzf" (Registry.applicable inst))

let test_registry_duplicate_raises () =
  let e = Option.get (Registry.find "lzf") in
  Alcotest.(check bool)
    "duplicate registration raises" true
    (match Registry.register e with
    | () -> false
    | exception Invalid_argument _ -> true)

let () =
  Alcotest.run "sched"
    [
      ( "lzf",
        [
          QCheck_alcotest.to_alcotest prop_lzf_audit_clean;
          QCheck_alcotest.to_alcotest prop_lzf_replay_identical;
          Alcotest.test_case "z ranking drives assignment" `Quick
            test_lzf_z_ranking;
          Alcotest.test_case "incapable machines idle" `Quick
            test_lzf_idles_incapable;
        ] );
      ( "backfill",
        [
          QCheck_alcotest.to_alcotest prop_backfill_audit_clean;
          QCheck_alcotest.to_alcotest prop_backfill_replay_identical;
          QCheck_alcotest.to_alcotest prop_backfill_fcfs_order;
          QCheck_alcotest.to_alcotest prop_backfill_preempts_only_backfilled;
          Alcotest.test_case "width overrides complete" `Quick
            test_backfill_width_override;
        ] );
      ( "predictor",
        [
          Alcotest.test_case "constant runtimes predicted exactly" `Quick
            test_predictor_converges_exact;
          Alcotest.test_case "sliding window ages out old samples" `Quick
            test_predictor_window_mean;
          Alcotest.test_case "noisy runtimes converge to the mean" `Quick
            test_predictor_converges_noisy;
          Alcotest.test_case "seeded determinism" `Quick
            test_predictor_deterministic;
          Alcotest.test_case "floor and validation" `Quick
            test_predictor_floor_and_validation;
        ] );
      ( "registry",
        [
          Alcotest.test_case "sched policies registered lp-free" `Quick
            test_registry_has_sched_policies;
          Alcotest.test_case "every policy audits clean via dispatch" `Quick
            test_registry_every_policy_audits_clean;
          Alcotest.test_case "unknown error lists every name" `Quick
            test_registry_unknown_lists_names;
          Alcotest.test_case "shape mismatch is a located error" `Quick
            test_registry_shape_mismatch;
          Alcotest.test_case "duplicate registration rejected" `Quick
            test_registry_duplicate_raises;
        ] );
    ]
