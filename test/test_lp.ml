(* Tests for the LP substrate: problem builder, two-phase simplex, and the
   MWU covering solver.  The simplex's correctness is what the paper's
   Lemma 1/2/5/6 machinery stands on, so it gets adversarial cases
   (degeneracy, redundancy, infeasibility, unboundedness) plus randomized
   cross-checks against independently-known optima. *)

module P = Suu_lp.Problem
module S = Suu_lp.Simplex
module Mwu = Suu_lp.Mwu

let checkf = Alcotest.(check (float 1e-6))

let optimal = function
  | S.Optimal { objective; x } -> (objective, x)
  | S.Infeasible -> Alcotest.fail "unexpected: infeasible"
  | S.Unbounded -> Alcotest.fail "unexpected: unbounded"
  | S.Iteration_limit -> Alcotest.fail "unexpected: iteration limit"

let solve_opt p = optimal (S.solve p)

(* --- hand-built LPs with known optima --- *)

let test_trivial_min () =
  (* min x s.t. x >= 3 *)
  let p = P.create () in
  let x = P.add_var ~obj:1.0 p in
  P.add_constraint p [ (x, 1.0) ] P.Ge 3.0;
  let obj, sol = solve_opt p in
  checkf "objective" 3.0 obj;
  checkf "x" 3.0 sol.(x)

let test_two_var_max () =
  (* max 3x + 2y s.t. x + y <= 4, x + 3y <= 6  (opt 12 at x=4,y=0) *)
  let p = P.create () in
  let x = P.add_var ~obj:(-3.0) p in
  let y = P.add_var ~obj:(-2.0) p in
  P.add_constraint p [ (x, 1.0); (y, 1.0) ] P.Le 4.0;
  P.add_constraint p [ (x, 1.0); (y, 3.0) ] P.Le 6.0;
  let obj, sol = solve_opt p in
  checkf "objective" (-12.0) obj;
  checkf "x" 4.0 sol.(x);
  checkf "y" 0.0 sol.(y)

let test_equality_constraint () =
  (* min x + y s.t. x + y = 5, x - y <= 1  -> any x+y=5; obj 5 *)
  let p = P.create () in
  let x = P.add_var ~obj:1.0 p in
  let y = P.add_var ~obj:1.0 p in
  P.add_constraint p [ (x, 1.0); (y, 1.0) ] P.Eq 5.0;
  P.add_constraint p [ (x, 1.0); (y, -1.0) ] P.Le 1.0;
  let obj, sol = solve_opt p in
  checkf "objective" 5.0 obj;
  checkf "feasible" 0.0 (P.constraint_violation p sol)

let test_negative_rhs () =
  (* min x s.t. -x <= -2  (i.e. x >= 2) *)
  let p = P.create () in
  let x = P.add_var ~obj:1.0 p in
  P.add_constraint p [ (x, -1.0) ] P.Le (-2.0);
  let obj, _ = solve_opt p in
  checkf "objective" 2.0 obj

let test_infeasible () =
  let p = P.create () in
  let x = P.add_var ~obj:1.0 p in
  P.add_constraint p [ (x, 1.0) ] P.Ge 5.0;
  P.add_constraint p [ (x, 1.0) ] P.Le 3.0;
  match S.solve p with
  | S.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_unbounded () =
  (* min -x s.t. x >= 1 *)
  let p = P.create () in
  let x = P.add_var ~obj:(-1.0) p in
  P.add_constraint p [ (x, 1.0) ] P.Ge 1.0;
  match S.solve p with
  | S.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let test_degenerate_beale () =
  (* Beale's classic cycling example; Bland's fallback must terminate.
     min -0.75 x4 + 150 x5 - 0.02 x6 + 6 x7
     s.t. 0.25 x4 - 60 x5 - 0.04 x6 + 9 x7 <= 0
          0.5  x4 - 90 x5 - 0.02 x6 + 3 x7 <= 0
          x6 <= 1                         (optimum -0.05) *)
  let p = P.create () in
  let x4 = P.add_var ~obj:(-0.75) p in
  let x5 = P.add_var ~obj:150.0 p in
  let x6 = P.add_var ~obj:(-0.02) p in
  let x7 = P.add_var ~obj:6.0 p in
  P.add_constraint p
    [ (x4, 0.25); (x5, -60.0); (x6, -0.04); (x7, 9.0) ]
    P.Le 0.0;
  P.add_constraint p
    [ (x4, 0.5); (x5, -90.0); (x6, -0.02); (x7, 3.0) ]
    P.Le 0.0;
  P.add_constraint p [ (x6, 1.0) ] P.Le 1.0;
  let obj, sol = solve_opt p in
  checkf "objective" (-0.05) obj;
  checkf "feasible" 0.0 (P.constraint_violation p sol)

let test_redundant_rows () =
  (* Duplicate equalities create zero rows in phase 1. *)
  let p = P.create () in
  let x = P.add_var ~obj:1.0 p in
  let y = P.add_var ~obj:2.0 p in
  P.add_constraint p [ (x, 1.0); (y, 1.0) ] P.Eq 3.0;
  P.add_constraint p [ (x, 1.0); (y, 1.0) ] P.Eq 3.0;
  P.add_constraint p [ (x, 2.0); (y, 2.0) ] P.Eq 6.0;
  let obj, sol = solve_opt p in
  checkf "objective" 3.0 obj;
  checkf "x" 3.0 sol.(x);
  checkf "y" 0.0 sol.(y)

let test_duplicate_terms_merged () =
  (* x appearing twice in one row must sum coefficients. *)
  let p = P.create () in
  let x = P.add_var ~obj:1.0 p in
  P.add_constraint p [ (x, 1.0); (x, 1.0) ] P.Ge 4.0;
  let obj, _ = solve_opt p in
  checkf "objective (2x >= 4)" 2.0 obj

let test_zero_rhs_ge () =
  (* min x + y s.t. x - y >= 0, y >= 2 -> x = y = 2 *)
  let p = P.create () in
  let x = P.add_var ~obj:1.0 p in
  let y = P.add_var ~obj:1.0 p in
  P.add_constraint p [ (x, 1.0); (y, -1.0) ] P.Ge 0.0;
  P.add_constraint p [ (y, 1.0) ] P.Ge 2.0;
  let obj, _ = solve_opt p in
  checkf "objective" 4.0 obj

let test_solve_exn_raises () =
  let p = P.create ~name:"broken" () in
  let x = P.add_var ~obj:1.0 p in
  P.add_constraint p [ (x, 1.0) ] P.Ge 5.0;
  P.add_constraint p [ (x, 1.0) ] P.Le 3.0;
  Alcotest.check_raises "exn" (Failure "broken: infeasible") (fun () ->
      ignore (S.solve_exn p))

let test_problem_validation () =
  let p = P.create () in
  let _ = P.add_var p in
  Alcotest.check_raises "bad var"
    (Invalid_argument "Problem.add_constraint: variable out of range")
    (fun () -> P.add_constraint p [ (5, 1.0) ] P.Ge 0.0)

let test_objective_value () =
  let p = P.create () in
  let x = P.add_var ~obj:2.0 p in
  let y = P.add_var ~obj:(-1.0) p in
  ignore y;
  checkf "eval" 5.0 (P.objective_value p [| 3.0; 1.0 |]);
  ignore x

(* --- randomized cross-checks --- *)

(* Random transportation-style LP whose optimum we can compute greedily:
   min sum c_i x_i  s.t. sum x_i >= b, x_i <= u_i.  Optimal cost: fill
   cheapest first. *)
let transportation_case seed =
  let rng = Suu_prng.Rng.create ~seed in
  let k = 2 + Suu_prng.Rng.int rng 6 in
  let c = Array.init k (fun _ -> Suu_prng.Rng.range rng ~lo:0.1 ~hi:5.0) in
  let u = Array.init k (fun _ -> Suu_prng.Rng.range rng ~lo:0.5 ~hi:3.0) in
  let cap = Array.fold_left ( +. ) 0.0 u in
  let b = Suu_prng.Rng.range rng ~lo:0.1 ~hi:(0.9 *. cap) in
  let p = P.create () in
  let xs = Array.map (fun ci -> P.add_var ~obj:ci p) c in
  P.add_constraint p
    (Array.to_list (Array.map (fun x -> (x, 1.0)) xs))
    P.Ge b;
  Array.iteri (fun i x -> P.add_constraint p [ (x, 1.0) ] P.Le u.(i)) xs;
  (* greedy optimum *)
  let order = Array.init k Fun.id in
  Array.sort (fun a b' -> compare c.(a) c.(b')) order;
  let expected = ref 0.0 and need = ref b in
  Array.iter
    (fun i ->
      let take = Float.min !need u.(i) in
      expected := !expected +. (take *. c.(i));
      need := !need -. take)
    order;
  (p, !expected)

let prop_transportation =
  QCheck.Test.make ~count:200 ~name:"simplex matches greedy transportation"
    QCheck.small_int (fun seed ->
      let p, expected = transportation_case seed in
      let obj, sol = solve_opt p in
      Float.abs (obj -. expected) < 1e-6 *. Float.max 1.0 expected
      && P.constraint_violation p sol < 1e-6)

(* Random LP1-shaped min-load covers: simplex solution must be feasible,
   and no worse than the trivial single-machine solution. *)
let prop_min_load_cover_feasible =
  QCheck.Test.make ~count:100 ~name:"simplex on LP1 shape: feasible + sane"
    QCheck.small_int (fun seed ->
      let rng = Suu_prng.Rng.create ~seed in
      let m = 2 + Suu_prng.Rng.int rng 4 in
      let n = 2 + Suu_prng.Rng.int rng 6 in
      let a =
        Array.init m (fun _ ->
            Array.init n (fun _ -> Suu_prng.Rng.range rng ~lo:0.05 ~hi:1.0))
      in
      let p = P.create () in
      let t = P.add_var ~obj:1.0 p in
      let x = Array.init m (fun _ -> Array.init n (fun _ -> P.add_var p)) in
      for j = 0 to n - 1 do
        P.add_constraint p
          (List.init m (fun i -> (x.(i).(j), a.(i).(j))))
          P.Ge 1.0
      done;
      for i = 0 to m - 1 do
        P.add_constraint p
          ((t, -1.0) :: List.init n (fun j -> (x.(i).(j), 1.0)))
          P.Le 0.0
      done;
      let obj, sol = solve_opt p in
      (* trivial upper bound: machine 0 covers everything alone *)
      let trivial = ref 0.0 in
      for j = 0 to n - 1 do
        trivial := !trivial +. (1.0 /. a.(0).(j))
      done;
      P.constraint_violation p sol < 1e-6
      && obj <= !trivial +. 1e-6
      && obj >= -1e-9)

(* Random LP in the two solvers: identical classification and, when
   optimal, matching objective values plus mutual feasibility. *)
let random_general_lp seed =
  let rng = Suu_prng.Rng.create ~seed in
  let nv = 2 + Suu_prng.Rng.int rng 6 in
  let nc = 1 + Suu_prng.Rng.int rng 6 in
  let p = P.create () in
  let vars =
    Array.init nv (fun _ ->
        P.add_var ~obj:(Suu_prng.Rng.range rng ~lo:(-2.0) ~hi:3.0) p)
  in
  for _ = 1 to nc do
    let terms =
      Array.to_list vars
      |> List.filter_map (fun v ->
             if Suu_prng.Rng.bool rng then
               Some (v, Suu_prng.Rng.range rng ~lo:(-2.0) ~hi:2.0)
             else None)
    in
    let terms = if terms = [] then [ (vars.(0), 1.0) ] else terms in
    let sense =
      match Suu_prng.Rng.int rng 3 with
      | 0 -> P.Le
      | 1 -> P.Ge
      | _ -> P.Eq
    in
    P.add_constraint p terms sense (Suu_prng.Rng.range rng ~lo:(-3.0) ~hi:5.0)
  done;
  p

(* --- duals --- *)

let test_duals_known () =
  (* min x s.t. x >= 3: dual of the covering row is 1 (the objective's
     full weight rests on it); objective = 1 * 3. *)
  let p = P.create () in
  let x = P.add_var ~obj:1.0 p in
  P.add_constraint p [ (x, 1.0) ] P.Ge 3.0;
  match S.solve_detailed p with
  | Some d ->
      checkf "objective" 3.0 d.S.objective;
      checkf "dual" 1.0 d.S.duals.(0)
  | None -> Alcotest.fail "expected optimal"

let test_duals_none_when_infeasible () =
  let p = P.create () in
  let x = P.add_var ~obj:1.0 p in
  P.add_constraint p [ (x, 1.0) ] P.Ge 5.0;
  P.add_constraint p [ (x, 1.0) ] P.Le 3.0;
  Alcotest.(check bool) "none" true (S.solve_detailed p = None)

(* Strong duality + dual feasibility on random LPs: whenever the solver
   reports optimal, obj = duals . rhs and every variable's reduced cost
   under the duals is >= 0 (for minimization with x >= 0). *)
let prop_strong_duality =
  QCheck.Test.make ~count:300 ~name:"strong duality and dual feasibility"
    QCheck.small_int (fun seed ->
      let p = random_general_lp seed in
      match S.solve_detailed p with
      | None -> true (* infeasible/unbounded: nothing to check *)
      | Some d ->
          let nv = P.num_vars p in
          (* gather rhs and per-variable dual weights *)
          let yb = ref 0.0 in
          let aty = Array.make nv 0.0 in
          let r = ref 0 in
          P.iter_constraints p (fun terms _ rhs ->
              yb := !yb +. (d.S.duals.(!r) *. rhs);
              Array.iter
                (fun (v, coeff) ->
                  aty.(v) <- aty.(v) +. (d.S.duals.(!r) *. coeff))
                terms;
              incr r);
          let scale = Float.max 1.0 (Float.abs d.S.objective) in
          let strong = Float.abs (d.S.objective -. !yb) < 1e-5 *. scale in
          let c = P.objective p in
          let dual_feasible = ref true in
          for v = 0 to nv - 1 do
            if c.(v) -. aty.(v) < -1e-5 then dual_feasible := false
          done;
          strong && !dual_feasible)

(* --- revised simplex (differential) --- *)

module Rs = Suu_lp.Revised_simplex

let test_revised_known_cases () =
  (* Re-run the hand-built cases through the second solver. *)
  let p = P.create () in
  let x = P.add_var ~obj:(-3.0) p in
  let y = P.add_var ~obj:(-2.0) p in
  P.add_constraint p [ (x, 1.0); (y, 1.0) ] P.Le 4.0;
  P.add_constraint p [ (x, 1.0); (y, 3.0) ] P.Le 6.0;
  let obj, sol = optimal (Rs.solve p) in
  checkf "objective" (-12.0) obj;
  checkf "feasible" 0.0 (P.constraint_violation p sol)

let test_revised_infeasible_unbounded () =
  let p = P.create () in
  let x = P.add_var ~obj:1.0 p in
  P.add_constraint p [ (x, 1.0) ] P.Ge 5.0;
  P.add_constraint p [ (x, 1.0) ] P.Le 3.0;
  (match Rs.solve p with
  | S.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible");
  let p = P.create () in
  let x = P.add_var ~obj:(-1.0) p in
  P.add_constraint p [ (x, 1.0) ] P.Ge 1.0;
  match Rs.solve p with
  | S.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let test_revised_beale () =
  let p = P.create () in
  let x4 = P.add_var ~obj:(-0.75) p in
  let x5 = P.add_var ~obj:150.0 p in
  let x6 = P.add_var ~obj:(-0.02) p in
  let x7 = P.add_var ~obj:6.0 p in
  P.add_constraint p
    [ (x4, 0.25); (x5, -60.0); (x6, -0.04); (x7, 9.0) ]
    P.Le 0.0;
  P.add_constraint p
    [ (x4, 0.5); (x5, -90.0); (x6, -0.02); (x7, 3.0) ]
    P.Le 0.0;
  P.add_constraint p [ (x6, 1.0) ] P.Le 1.0;
  let obj, _ = optimal (Rs.solve p) in
  checkf "objective" (-0.05) obj

let prop_revised_matches_tableau =
  QCheck.Test.make ~count:300 ~name:"revised = tableau on random LPs"
    QCheck.small_int (fun seed ->
      let p = random_general_lp seed in
      match (S.solve p, Rs.solve p) with
      | ( S.Optimal { objective = oa; x = xa },
          S.Optimal { objective = ob; x = xb } ) ->
          Float.abs (oa -. ob) < 1e-5 *. Float.max 1.0 (Float.abs oa)
          && P.constraint_violation p xa < 1e-6
          && P.constraint_violation p xb < 1e-6
      | S.Infeasible, S.Infeasible -> true
      | S.Unbounded, S.Unbounded -> true
      | _, _ -> false)

let prop_revised_matches_on_lp1_shape =
  QCheck.Test.make ~count:60 ~name:"revised = tableau on LP1 shapes"
    QCheck.small_int (fun seed ->
      let rng = Suu_prng.Rng.create ~seed in
      let m = 2 + Suu_prng.Rng.int rng 4 in
      let n = 2 + Suu_prng.Rng.int rng 6 in
      let a =
        Array.init m (fun _ ->
            Array.init n (fun _ -> Suu_prng.Rng.range rng ~lo:0.05 ~hi:1.0))
      in
      let targets =
        Array.init n (fun _ -> Suu_prng.Rng.range rng ~lo:0.5 ~hi:2.0)
      in
      let build () =
        let p = P.create () in
        let t = P.add_var ~obj:1.0 p in
        let x = Array.init m (fun _ -> Array.init n (fun _ -> P.add_var p)) in
        for j = 0 to n - 1 do
          P.add_constraint p
            (List.init m (fun i -> (x.(i).(j), a.(i).(j))))
            P.Ge targets.(j)
        done;
        for i = 0 to m - 1 do
          P.add_constraint p
            ((t, -1.0) :: List.init n (fun j -> (x.(i).(j), 1.0)))
            P.Le 0.0
        done;
        p
      in
      let va, _ = solve_opt (build ()) in
      let vb, _ = optimal (Rs.solve (build ())) in
      Float.abs (va -. vb) < 1e-5 *. Float.max 1.0 va)

(* --- warm-started revised simplex --- *)

(* An LP1-shaped builder whose RHS scales with the doubling target
   L_k = 2^(k-2): same variables and rows in the same order at every
   target, so an optimal basis from one target is structurally valid
   for the next — the exact situation {!Plan_cache} replays. *)
let lp1_shape_case seed =
  let rng = Suu_prng.Rng.create ~seed in
  let m = 2 + Suu_prng.Rng.int rng 4 in
  let n = 2 + Suu_prng.Rng.int rng 6 in
  let a =
    Array.init m (fun _ ->
        Array.init n (fun _ -> Suu_prng.Rng.range rng ~lo:0.05 ~hi:1.0))
  in
  let targets =
    Array.init n (fun _ -> Suu_prng.Rng.range rng ~lo:0.5 ~hi:2.0)
  in
  let build scale =
    let p = P.create () in
    let t = P.add_var ~obj:1.0 p in
    let x = Array.init m (fun _ -> Array.init n (fun _ -> P.add_var p)) in
    for j = 0 to n - 1 do
      P.add_constraint p
        (List.init m (fun i -> (x.(i).(j), a.(i).(j))))
        P.Ge (targets.(j) *. scale)
    done;
    for i = 0 to m - 1 do
      P.add_constraint p
        ((t, -1.0) :: List.init n (fun j -> (x.(i).(j), 1.0)))
        P.Le 0.0
    done;
    p
  in
  build

let prop_warm_matches_cold_doubling =
  QCheck.Test.make ~count:60
    ~name:"warm revised = cold to 1e-9 across a doubling sequence"
    QCheck.small_int (fun seed ->
      let build = lp1_shape_case seed in
      (* L_k = 2^(k-2) for k = 1..6, threading each round's optimal
         basis into the next — round k+1 starts from round k's basis. *)
      let ok = ref true in
      let basis = ref None in
      for k = 1 to 6 do
        let scale = Float.pow 2.0 (float_of_int (k - 2)) in
        let warm_r, out = Rs.solve_basis ?basis:!basis (build scale) in
        let warm, _ = optimal warm_r in
        let cold, _ = optimal (Rs.solve (build scale)) in
        if Float.abs (warm -. cold) > 1e-9 *. Float.max 1.0 cold then
          ok := false;
        if k > 1 && out = None then ok := false;
        basis := out
      done;
      !ok)

let prop_warm_matches_cold_lp2_shape =
  QCheck.Test.make ~count:60
    ~name:"warm revised = cold to 1e-9 on LP2 shapes"
    QCheck.small_int (fun seed ->
      (* LP2's extra structure over LP1: chain-length rows, x <= d
         coupling rows and d >= 1 rows. *)
      let rng = Suu_prng.Rng.create ~seed in
      let m = 2 + Suu_prng.Rng.int rng 3 in
      let n = 2 + Suu_prng.Rng.int rng 4 in
      let a =
        Array.init m (fun _ ->
            Array.init n (fun _ -> Suu_prng.Rng.range rng ~lo:0.05 ~hi:1.0))
      in
      let build () =
        let p = P.create () in
        let t = P.add_var ~obj:1.0 p in
        let d = Array.init n (fun _ -> P.add_var p) in
        let x = Array.init m (fun _ -> Array.init n (fun _ -> P.add_var p)) in
        for j = 0 to n - 1 do
          P.add_constraint p
            (List.init m (fun i -> (x.(i).(j), a.(i).(j))))
            P.Ge 1.0
        done;
        for i = 0 to m - 1 do
          P.add_constraint p
            ((t, -1.0) :: List.init n (fun j -> (x.(i).(j), 1.0)))
            P.Le 0.0
        done;
        (* one chain over all jobs *)
        P.add_constraint p
          ((t, -1.0) :: List.init n (fun j -> (d.(j), 1.0)))
          P.Le 0.0;
        for i = 0 to m - 1 do
          for j = 0 to n - 1 do
            P.add_constraint p [ (x.(i).(j), 1.0); (d.(j), -1.0) ] P.Le 0.0
          done
        done;
        for j = 0 to n - 1 do
          P.add_constraint p [ (d.(j), 1.0) ] P.Ge 1.0
        done;
        p
      in
      let cold_r, basis = Rs.solve_basis (build ()) in
      let cold, _ = optimal cold_r in
      let warm_r, _ = Rs.solve_basis ?basis (build ()) in
      let warm, _ = optimal warm_r in
      Float.abs (warm -. cold) <= 1e-9 *. Float.max 1.0 cold)

let prop_warm_garbage_basis_harmless =
  QCheck.Test.make ~count:120
    ~name:"a garbage warm basis never changes the answer"
    QCheck.small_int (fun seed ->
      let p () = random_general_lp seed in
      let rng = Suu_prng.Rng.create ~seed:(seed + 7919) in
      let rows = P.num_constraints (p ()) in
      let garbage =
        Array.init
          (max 1 (Suu_prng.Rng.int rng (rows + 2)))
          (fun _ -> Suu_prng.Rng.int rng 50 - 5)
      in
      match (Rs.solve (p ()), Rs.solve_basis ~basis:garbage (p ())) with
      | ( S.Optimal { objective = oa; _ },
          (S.Optimal { objective = ob; x = xb }, _) ) ->
          Float.abs (oa -. ob) < 1e-6 *. Float.max 1.0 (Float.abs oa)
          && P.constraint_violation (p ()) xb < 1e-6
      | S.Infeasible, (S.Infeasible, _) -> true
      | S.Unbounded, (S.Unbounded, _) -> true
      | _, _ -> false)

(* --- MWU --- *)

let mwu_case seed =
  let rng = Suu_prng.Rng.create ~seed in
  let m = 2 + Suu_prng.Rng.int rng 4 in
  let n = 2 + Suu_prng.Rng.int rng 6 in
  let a =
    Array.init m (fun _ ->
        Array.init n (fun _ -> Suu_prng.Rng.range rng ~lo:0.05 ~hi:1.0))
  in
  let targets =
    Array.init n (fun _ -> Suu_prng.Rng.range rng ~lo:0.5 ~hi:2.0)
  in
  (m, n, a, targets)

let simplex_min_load_cover ~m ~n ~a ~targets =
  let p = P.create () in
  let t = P.add_var ~obj:1.0 p in
  let x = Array.init m (fun _ -> Array.init n (fun _ -> P.add_var p)) in
  for j = 0 to n - 1 do
    P.add_constraint p
      (List.init m (fun i -> (x.(i).(j), a.(i).(j))))
      P.Ge targets.(j)
  done;
  for i = 0 to m - 1 do
    P.add_constraint p
      ((t, -1.0) :: List.init n (fun j -> (x.(i).(j), 1.0)))
      P.Le 0.0
  done;
  fst (solve_opt p)

let prop_mwu_feasible_and_near_optimal =
  QCheck.Test.make ~count:60 ~name:"MWU covers targets within (1+5eps) of LP"
    QCheck.small_int (fun seed ->
      let m, n, a, targets = mwu_case seed in
      let eps = 0.1 in
      let { Mwu.x; value; lower_bound } =
        Mwu.min_load_cover ~a:(fun i j -> a.(i).(j)) ~m ~n ~targets ~eps
      in
      (* feasibility: every job covered *)
      let covered = ref true in
      for j = 0 to n - 1 do
        let cov = ref 0.0 in
        for i = 0 to m - 1 do
          cov := !cov +. (a.(i).(j) *. x.(i).(j))
        done;
        if !cov < targets.(j) -. 1e-6 then covered := false
      done;
      (* load accounting *)
      let load = ref 0.0 in
      for i = 0 to m - 1 do
        let l = Array.fold_left ( +. ) 0.0 x.(i) in
        if l > !load then load := l
      done;
      let opt = simplex_min_load_cover ~m ~n ~a ~targets in
      !covered
      && Float.abs (!load -. value) < 1e-6
      && value <= ((1.0 +. (5.0 *. eps)) *. opt) +. 1e-6
      && value >= opt -. 1e-6
      (* certificate soundness: the weak-duality bound brackets the true
         optimum from below... *)
      && lower_bound <= opt +. 1e-6
      && lower_bound > 0.0
      (* ...and is tight enough that the (1+5eps) acceptance check the
         serve path performs (Lp1) passes on these instances. *)
      && value <= ((1.0 +. (5.0 *. eps)) *. lower_bound) +. 1e-6)

let test_mwu_validation () =
  Alcotest.check_raises "bad eps"
    (Invalid_argument "Mwu: eps must be in (0, 0.5]") (fun () ->
      ignore
        (Mwu.min_load_cover
           ~a:(fun _ _ -> 1.0)
           ~m:1 ~n:1 ~targets:[| 1.0 |] ~eps:0.9));
  Alcotest.check_raises "empty support"
    (Invalid_argument "Mwu: job with empty support") (fun () ->
      ignore
        (Mwu.min_load_cover
           ~a:(fun _ _ -> 0.0)
           ~m:2 ~n:1 ~targets:[| 1.0 |] ~eps:0.1))

let test_mwu_single () =
  (* One machine, one job: the answer is exactly target / a. *)
  let { Mwu.value; _ } =
    Mwu.min_load_cover
      ~a:(fun _ _ -> 0.5)
      ~m:1 ~n:1 ~targets:[| 2.0 |] ~eps:0.05
  in
  Alcotest.(check bool)
    (Printf.sprintf "value %.4f in [4, 4*1.3]" value)
    true
    (value >= 4.0 -. 1e-9 && value <= 4.0 *. 1.3)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "lp"
    [
      ( "simplex",
        [
          Alcotest.test_case "trivial min" `Quick test_trivial_min;
          Alcotest.test_case "two-var max" `Quick test_two_var_max;
          Alcotest.test_case "equality" `Quick test_equality_constraint;
          Alcotest.test_case "negative rhs" `Quick test_negative_rhs;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
          Alcotest.test_case "unbounded" `Quick test_unbounded;
          Alcotest.test_case "degenerate (Beale)" `Quick test_degenerate_beale;
          Alcotest.test_case "redundant rows" `Quick test_redundant_rows;
          Alcotest.test_case "duplicate terms" `Quick
            test_duplicate_terms_merged;
          Alcotest.test_case "zero-rhs >=" `Quick test_zero_rhs_ge;
          Alcotest.test_case "solve_exn" `Quick test_solve_exn_raises;
        ] );
      ( "problem",
        [
          Alcotest.test_case "validation" `Quick test_problem_validation;
          Alcotest.test_case "objective eval" `Quick test_objective_value;
        ] );
      ( "duals",
        [
          Alcotest.test_case "known" `Quick test_duals_known;
          Alcotest.test_case "infeasible" `Quick
            test_duals_none_when_infeasible;
        ] );
      ( "revised-simplex",
        [
          Alcotest.test_case "known cases" `Quick test_revised_known_cases;
          Alcotest.test_case "infeasible/unbounded" `Quick
            test_revised_infeasible_unbounded;
          Alcotest.test_case "degenerate (Beale)" `Quick test_revised_beale;
        ] );
      ( "mwu",
        [
          Alcotest.test_case "validation" `Quick test_mwu_validation;
          Alcotest.test_case "single pair" `Quick test_mwu_single;
        ] );
      ( "properties",
        [
          q prop_transportation;
          q prop_min_load_cover_feasible;
          q prop_strong_duality;
          q prop_revised_matches_tableau;
          q prop_revised_matches_on_lp1_shape;
          q prop_warm_matches_cold_doubling;
          q prop_warm_matches_cold_lp2_shape;
          q prop_warm_garbage_basis_harmless;
          q prop_mwu_feasible_and_near_optimal;
        ] );
    ]
