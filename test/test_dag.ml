(* Tests for dags, chain recognition and the heavy-path forest
   decomposition used by SUU-T. *)

module Dag = Suu_dag.Dag
module Chains = Suu_dag.Chains
module Forest = Suu_dag.Forest
module Classify = Suu_dag.Classify

(* --- basic dag mechanics --- *)

let test_empty () =
  let g = Dag.empty 5 in
  Alcotest.(check int) "size" 5 (Dag.size g);
  Alcotest.(check int) "edges" 0 (Dag.num_edges g);
  Alcotest.(check bool) "edgeless" true (Dag.is_edgeless g);
  Alcotest.(check (list int)) "all sources" [ 0; 1; 2; 3; 4 ] (Dag.sources g)

let test_of_edges () =
  let g = Dag.of_edges ~n:4 [ (0, 1); (1, 2); (0, 2); (2, 3) ] in
  Alcotest.(check int) "edges" 4 (Dag.num_edges g);
  Alcotest.(check (list int)) "preds of 2" [ 0; 1 ] (Dag.preds g 2);
  Alcotest.(check (list int)) "succs of 0" [ 1; 2 ] (Dag.succs g 0);
  Alcotest.(check int) "indeg 3" 1 (Dag.in_degree g 3);
  Alcotest.(check int) "outdeg 0" 2 (Dag.out_degree g 0)

let test_duplicate_edges_collapse () =
  let g = Dag.of_edges ~n:2 [ (0, 1); (0, 1); (0, 1) ] in
  Alcotest.(check int) "edges" 1 (Dag.num_edges g)

let test_cycle_detection () =
  Alcotest.check_raises "cycle" (Invalid_argument "Dag.of_edges: cycle detected")
    (fun () -> ignore (Dag.of_edges ~n:3 [ (0, 1); (1, 2); (2, 0) ]))

let test_self_loop () =
  Alcotest.check_raises "self loop" (Invalid_argument "Dag.of_edges: self-loop")
    (fun () -> ignore (Dag.of_edges ~n:2 [ (1, 1) ]))

let test_out_of_range () =
  Alcotest.check_raises "range"
    (Invalid_argument "Dag.of_edges: node out of range") (fun () ->
      ignore (Dag.of_edges ~n:2 [ (0, 2) ]))

let test_topological_order () =
  let g = Dag.of_edges ~n:5 [ (3, 1); (1, 0); (4, 0); (2, 4) ] in
  let order = Dag.topological_order g in
  let pos = Array.make 5 0 in
  Array.iteri (fun k j -> pos.(j) <- k) order;
  List.iter
    (fun (a, b) ->
      Alcotest.(check bool) "edge respected" true (pos.(a) < pos.(b)))
    (Dag.edges g)

let test_eligible () =
  let g = Dag.of_edges ~n:3 [ (0, 1); (1, 2) ] in
  let completed = [| false; false; false |] in
  Alcotest.(check bool) "0 eligible" true (Dag.eligible g ~completed 0);
  Alcotest.(check bool) "1 blocked" false (Dag.eligible g ~completed 1);
  completed.(0) <- true;
  Alcotest.(check bool) "1 now eligible" true (Dag.eligible g ~completed 1);
  Alcotest.(check bool) "2 still blocked" false (Dag.eligible g ~completed 2)

let test_components () =
  let g = Dag.of_edges ~n:5 [ (0, 1); (3, 4) ] in
  let c = Dag.components g in
  Alcotest.(check bool) "0 ~ 1" true (c.(0) = c.(1));
  Alcotest.(check bool) "3 ~ 4" true (c.(3) = c.(4));
  Alcotest.(check bool) "0 <> 2" true (c.(0) <> c.(2));
  Alcotest.(check bool) "0 <> 3" true (c.(0) <> c.(3))

(* --- chains --- *)

let test_chains_recognize () =
  let g = Dag.of_edges ~n:6 [ (0, 1); (1, 2); (3, 4) ] in
  match Chains.of_dag g with
  | None -> Alcotest.fail "expected chains"
  | Some chains ->
      Alcotest.(check int) "count (incl. singleton)" 3 (List.length chains);
      Alcotest.(check int) "total" 6 (Chains.total_jobs chains);
      Alcotest.(check int) "longest" 3 (Chains.max_length chains)

let test_chains_reject_tree () =
  let g = Dag.of_edges ~n:3 [ (0, 1); (0, 2) ] in
  Alcotest.(check bool) "branching is not chains" true
    (Chains.of_dag g = None)

let test_chains_reject_join () =
  let g = Dag.of_edges ~n:3 [ (0, 2); (1, 2) ] in
  Alcotest.(check bool) "join is not chains" true (Chains.of_dag g = None)

let test_chains_roundtrip () =
  let chains = [ [| 2; 0; 3 |]; [| 1 |]; [| 4; 5 |] ] in
  let g = Chains.to_dag ~n:6 chains in
  match Chains.of_dag g with
  | None -> Alcotest.fail "roundtrip failed"
  | Some back ->
      Alcotest.(check int) "same job count" 6 (Chains.total_jobs back);
      (* order within each chain is preserved by the dag *)
      Alcotest.(check (list int)) "preds of 3" [ 0 ] (Dag.preds g 3);
      Alcotest.(check (list int)) "preds of 0" [ 2 ] (Dag.preds g 0)

let test_chains_to_dag_validation () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Chains.to_dag: duplicate job") (fun () ->
      ignore (Chains.to_dag ~n:3 [ [| 0; 1 |]; [| 1 |] ]))

let test_chain_of_job () =
  let chains = [ [| 0; 1 |]; [| 2 |] ] in
  let idx, pos = Chains.chain_of_job ~n:4 chains in
  Alcotest.(check int) "job 1 chain" 0 idx.(1);
  Alcotest.(check int) "job 1 pos" 1 pos.(1);
  Alcotest.(check int) "job 2 chain" 1 idx.(2);
  Alcotest.(check int) "job 3 unmentioned" (-1) idx.(3)

(* --- forests --- *)

let test_out_tree_blocks () =
  (* Balanced binary out-tree on 7 nodes. *)
  let g = Dag.of_edges ~n:7 [ (0, 1); (0, 2); (1, 3); (1, 4); (2, 5); (2, 6) ] in
  Alcotest.(check bool) "is forest" true (Forest.is_forest g);
  match Forest.decompose g with
  | None -> Alcotest.fail "expected decomposition"
  | Some blocks ->
      Alcotest.(check bool)
        "O(log n) blocks" true
        (Array.length blocks <= 3);
      let total =
        Array.fold_left
          (fun acc chains -> acc + Chains.total_jobs chains)
          0 blocks
      in
      Alcotest.(check int) "covers all jobs" 7 total

let test_in_tree_blocks () =
  (* In-tree: leaves feed the root. *)
  let g = Dag.of_edges ~n:7 [ (1, 0); (2, 0); (3, 1); (4, 1); (5, 2); (6, 2) ] in
  Alcotest.(check bool) "is forest" true (Forest.is_forest g);
  match Forest.decompose g with
  | None -> Alcotest.fail "expected decomposition"
  | Some blocks ->
      let total =
        Array.fold_left
          (fun acc chains -> acc + Chains.total_jobs chains)
          0 blocks
      in
      Alcotest.(check int) "covers all jobs" 7 total

let test_diamond_not_forest () =
  let g = Dag.of_edges ~n:4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  Alcotest.(check bool) "diamond rejected" true (not (Forest.is_forest g));
  Alcotest.(check bool) "no decomposition" true (Forest.decompose g = None)

let test_path_is_forest () =
  let g = Dag.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  match Forest.decompose g with
  | None -> Alcotest.fail "path should decompose"
  | Some blocks ->
      (* a simple path is a single heavy path: one block, one chain *)
      Alcotest.(check int) "one block" 1 (Array.length blocks);
      Alcotest.(check int) "one chain" 1 (List.length blocks.(0))

(* Validity of a block decomposition: chains disjoint, order within chains
   respects the dag, and every dag predecessor of a job appears either
   earlier in its own chain or in a strictly earlier block. *)
let decomposition_valid g blocks =
  let n = Dag.size g in
  let block_of = Array.make n (-1) in
  let pos_in_chain = Array.make n (-1) in
  let chain_id = Array.make n (-1) in
  let next_chain = ref 0 in
  let ok = ref true in
  Array.iteri
    (fun b chains ->
      List.iter
        (fun chain ->
          let c = !next_chain in
          incr next_chain;
          Array.iteri
            (fun k j ->
              if block_of.(j) <> -1 then ok := false;
              block_of.(j) <- b;
              pos_in_chain.(j) <- k;
              chain_id.(j) <- c)
            chain)
        chains)
    blocks;
  for j = 0 to n - 1 do
    if block_of.(j) = -1 then ok := false;
    List.iter
      (fun p ->
        let fine =
          block_of.(p) < block_of.(j)
          || (chain_id.(p) = chain_id.(j) && pos_in_chain.(p) < pos_in_chain.(j))
        in
        if not fine then ok := false)
      (Dag.preds g j)
  done;
  !ok

let random_forest seed =
  let rng = Suu_prng.Rng.create ~seed in
  let n = 2 + Suu_prng.Rng.int rng 40 in
  let trees = 1 + Suu_prng.Rng.int rng 3 in
  let trees = min trees n in
  (* Each non-root attaches below a random earlier node; orienting all
     edges child->parent gives an in-forest, parent->child an out-forest. *)
  let reverse = Suu_prng.Rng.bool rng in
  let edges = ref [] in
  for j = trees to n - 1 do
    let parent = Suu_prng.Rng.int rng j in
    if reverse then edges := (j, parent) :: !edges
    else edges := (parent, j) :: !edges
  done;
  (n, Dag.of_edges ~n !edges)

let prop_forest_decomposition_valid =
  QCheck.Test.make ~count:300 ~name:"forest blocks valid and logarithmic"
    QCheck.small_int (fun seed ->
      let n, g = random_forest seed in
      match Forest.decompose g with
      | None -> false
      | Some blocks ->
          let bound =
            1 + int_of_float (floor (log (float_of_int n) /. log 2.0))
          in
          Array.length blocks <= bound && decomposition_valid g blocks)

let prop_topo_positions =
  QCheck.Test.make ~count:300 ~name:"topological order respects random dags"
    QCheck.small_int (fun seed ->
      let rng = Suu_prng.Rng.create ~seed in
      let n = 2 + Suu_prng.Rng.int rng 30 in
      (* random dag: edges only forward in a random permutation *)
      let perm = Array.init n Fun.id in
      Suu_prng.Rng.shuffle rng perm;
      let edges = ref [] in
      for _ = 1 to 2 * n do
        let a = Suu_prng.Rng.int rng n and b = Suu_prng.Rng.int rng n in
        if a <> b then begin
          let x, y = if perm.(a) < perm.(b) then (a, b) else (b, a) in
          edges := (x, y) :: !edges
        end
      done;
      let g = Dag.of_edges ~n !edges in
      let order = Dag.topological_order g in
      let pos = Array.make n 0 in
      Array.iteri (fun k j -> pos.(j) <- k) order;
      List.for_all (fun (a, b) -> pos.(a) < pos.(b)) (Dag.edges g))

(* --- packed (CSR) adjacency --- *)

let random_dag seed =
  let rng = Suu_prng.Rng.create ~seed in
  let n = 2 + Suu_prng.Rng.int rng 30 in
  let perm = Array.init n Fun.id in
  Suu_prng.Rng.shuffle rng perm;
  let edges = ref [] in
  for _ = 1 to 2 * n do
    let a = Suu_prng.Rng.int rng n and b = Suu_prng.Rng.int rng n in
    if a <> b then begin
      let x, y = if perm.(a) < perm.(b) then (a, b) else (b, a) in
      edges := (x, y) :: !edges
    end
  done;
  (n, Dag.of_edges ~n !edges)

let prop_csr_matches_lists =
  QCheck.Test.make ~count:300 ~name:"CSR adjacency mirrors the list API"
    QCheck.small_int (fun seed ->
      let n, g = random_dag seed in
      let slice (off, tgt) j =
        Array.to_list (Array.sub tgt off.(j) (off.(j + 1) - off.(j)))
      in
      let collect iter j =
        let acc = ref [] in
        iter g j (fun v -> acc := v :: !acc);
        List.rev !acc
      in
      let indeg = Dag.in_degrees g in
      let ok = ref true in
      for j = 0 to n - 1 do
        ok :=
          !ok
          && slice (Dag.pred_csr g) j = Dag.preds g j
          && slice (Dag.succ_csr g) j = Dag.succs g j
          && collect Dag.iter_preds j = Dag.preds g j
          && collect Dag.iter_succs j = Dag.succs g j
          && indeg.(j) = Dag.in_degree g j
      done;
      !ok)

(* The engine's incremental-eligibility scheme: seed counters from
   [in_degrees], decrement a successor's counter on each completion.
   Along any completion order, counter = 0 must coincide with the
   reference predicate [Dag.eligible] (all direct predecessors done). *)
let prop_incremental_eligibility =
  QCheck.Test.make ~count:300
    ~name:"incremental predecessor counters match Dag.eligible"
    QCheck.small_int (fun seed ->
      let n, g = random_dag seed in
      let rng = Suu_prng.Rng.create ~seed:(seed + 1) in
      let order = Array.init n Fun.id in
      Suu_prng.Rng.shuffle rng order;
      let completed = Array.make n false in
      let npred = Dag.in_degrees g in
      let consistent () =
        let ok = ref true in
        for j = 0 to n - 1 do
          if not completed.(j) then
            ok := !ok && npred.(j) = 0 = Dag.eligible g ~completed j
        done;
        !ok
      in
      let ok = ref (consistent ()) in
      Array.iter
        (fun j ->
          completed.(j) <- true;
          Dag.iter_succs g j (fun s -> npred.(s) <- npred.(s) - 1);
          ok := !ok && consistent ())
        order;
      !ok)

(* --- classification --- *)

let test_classify_independent () =
  match Classify.classify (Dag.empty 4) with
  | Classify.Independent -> ()
  | _ -> Alcotest.fail "expected independent"

let test_classify_chains () =
  let g = Dag.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  match Classify.classify g with
  | Classify.Disjoint_chains chains ->
      Alcotest.(check int) "chain count" 2 (List.length chains)
  | _ -> Alcotest.fail "expected chains"

let test_classify_forest () =
  let g = Dag.of_edges ~n:4 [ (0, 1); (0, 2); (2, 3) ] in
  match Classify.classify g with
  | Classify.Directed_forest _ -> ()
  | _ -> Alcotest.fail "expected forest"

let test_classify_general () =
  let g = Dag.of_edges ~n:4 [ (0, 2); (1, 2); (0, 3); (1, 3) ] in
  match Classify.classify g with
  | Classify.General -> ()
  | _ -> Alcotest.fail "expected general"

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "dag"
    [
      ( "dag",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "of_edges" `Quick test_of_edges;
          Alcotest.test_case "duplicates" `Quick
            test_duplicate_edges_collapse;
          Alcotest.test_case "cycle" `Quick test_cycle_detection;
          Alcotest.test_case "self-loop" `Quick test_self_loop;
          Alcotest.test_case "out of range" `Quick test_out_of_range;
          Alcotest.test_case "topological order" `Quick
            test_topological_order;
          Alcotest.test_case "eligibility" `Quick test_eligible;
          Alcotest.test_case "components" `Quick test_components;
          q prop_csr_matches_lists;
          q prop_incremental_eligibility;
        ] );
      ( "chains",
        [
          Alcotest.test_case "recognize" `Quick test_chains_recognize;
          Alcotest.test_case "reject branching" `Quick
            test_chains_reject_tree;
          Alcotest.test_case "reject join" `Quick test_chains_reject_join;
          Alcotest.test_case "roundtrip" `Quick test_chains_roundtrip;
          Alcotest.test_case "to_dag validation" `Quick
            test_chains_to_dag_validation;
          Alcotest.test_case "chain_of_job" `Quick test_chain_of_job;
        ] );
      ( "forest",
        [
          Alcotest.test_case "out-tree" `Quick test_out_tree_blocks;
          Alcotest.test_case "in-tree" `Quick test_in_tree_blocks;
          Alcotest.test_case "diamond rejected" `Quick
            test_diamond_not_forest;
          Alcotest.test_case "path" `Quick test_path_is_forest;
        ] );
      ( "classify",
        [
          Alcotest.test_case "independent" `Quick test_classify_independent;
          Alcotest.test_case "chains" `Quick test_classify_chains;
          Alcotest.test_case "forest" `Quick test_classify_forest;
          Alcotest.test_case "general" `Quick test_classify_general;
        ] );
      ( "properties",
        [ q prop_forest_decomposition_valid; q prop_topo_positions ] );
    ]
