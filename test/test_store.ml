(* Tests for the suu-store subsystem: CRC32, the binary codec, the
   CRC-framed record log and its torn-tail recovery, the
   content-addressed result store's contiguous-prefix semantics, the
   store-backed memoization of Runner.makespans (including kill-resume
   determinism), the write-ahead journal, deterministic replay, service
   cache warm-start, and crash-safe instance saves. *)

module Crc32 = Suu_util.Crc32
module Codec = Suu_store.Codec
module Record_log = Suu_store.Record_log
module Result_store = Suu_store.Result_store
module Journal = Suu_store.Journal
module Memo = Suu_store.Memo
module P = Suu_server.Protocol
module W = Suu_workload.Workload

let counter_get name = Suu_obs.Counter.get (Suu_obs.Registry.counter name)

let tmp_counter = ref 0

let fresh_dir () =
  incr tmp_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "suu_store_test_%d_%d" (Unix.getpid ()) !tmp_counter)
  in
  Unix.mkdir d 0o755;
  d

let fresh_path name =
  Filename.concat (fresh_dir ()) name

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let append_bytes path s =
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc s;
  close_out oc

(* --- crc32 --- *)

let test_crc32_vector () =
  (* The IEEE 802.3 check value: zlib's crc32("123456789"). *)
  Alcotest.(check int32)
    "zlib check vector" 0xCBF43926l
    (Crc32.string "123456789");
  Alcotest.(check int32) "empty string" 0l (Crc32.string "")

let test_crc32_continuation () =
  let s = "the quick brown fox jumps over the lazy dog" in
  let whole = Crc32.string s in
  let k = 17 in
  let first = Crc32.sub s ~pos:0 ~len:k in
  let cont = Crc32.sub ~crc:first s ~pos:k ~len:(String.length s - k) in
  Alcotest.(check int32) "chunked = whole" whole cont

(* --- codec --- *)

let test_codec_roundtrip_qcheck =
  QCheck.Test.make ~count:200 ~name:"codec roundtrips (int,float,string,array)"
    QCheck.(quad int float string (array float))
    (fun (i, f, s, fs) ->
      let e = Codec.encoder () in
      Codec.add_int e i;
      Codec.add_float e f;
      Codec.add_string e s;
      Codec.add_float_array e fs;
      let d = Codec.decoder (Codec.contents e) in
      let i' = Codec.int d in
      let f' = Codec.float d in
      let s' = Codec.string d in
      let fs' = Codec.float_array d in
      let at_end = Codec.at_end d in
      (* Bit equality, not (=): the codec must preserve every float
         payload including negative zero and NaN bit patterns. *)
      i' = i
      && Int64.equal (Int64.bits_of_float f') (Int64.bits_of_float f)
      && String.equal s' s
      && Array.length fs' = Array.length fs
      && Array.for_all2
           (fun a b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))
           fs' fs
      && at_end)

let test_codec_truncation () =
  let e = Codec.encoder () in
  Codec.add_string e "hello";
  Codec.add_int e 42;
  let payload = Codec.contents e in
  for cut = 0 to String.length payload - 1 do
    let d = Codec.decoder (String.sub payload 0 cut) in
    let corrupt =
      match
        let s = Codec.string d in
        let i = Codec.int d in
        (s, i)
      with
      | _ -> false
      | exception Codec.Corrupt _ -> true
    in
    if not corrupt then
      Alcotest.failf "truncation to %d bytes decoded without Corrupt" cut
  done

(* --- record log --- *)

let test_record_log_roundtrip () =
  let path = fresh_path "log" in
  let log, recovered = Record_log.open_log path in
  Alcotest.(check int) "fresh log is empty" 0 (List.length recovered);
  Record_log.append log "alpha";
  Record_log.append log "beta";
  Record_log.append log "";
  Record_log.close log;
  Alcotest.(check (list string))
    "read sees all records" [ "alpha"; "beta"; "" ] (Record_log.read path);
  let log, recovered = Record_log.open_log path in
  Alcotest.(check (list string))
    "reopen recovers all records" [ "alpha"; "beta"; "" ] recovered;
  Record_log.close log

let test_record_log_torn_tail () =
  let path = fresh_path "log" in
  let log, _ = Record_log.open_log path in
  Record_log.append log "committed-1";
  Record_log.append log "committed-2";
  Record_log.close log;
  let good_size = (Unix.stat path).Unix.st_size in
  (* A frame announcing 64 payload bytes but supplying 3: what a kill -9
     between write and completion leaves. *)
  append_bytes path "\x40\x00\x00\x00\xde\xad\xbe\xefxyz";
  Alcotest.(check (list string))
    "read ignores the torn tail" [ "committed-1"; "committed-2" ]
    (Record_log.read path);
  let truncated0 = counter_get "store.truncated" in
  let log, recovered = Record_log.open_log path in
  Alcotest.(check (list string))
    "recovery keeps the committed prefix" [ "committed-1"; "committed-2" ]
    recovered;
  Alcotest.(check int)
    "file truncated back to the committed prefix" good_size
    (Unix.stat path).Unix.st_size;
  Alcotest.(check bool)
    "store.truncated counted" true
    (counter_get "store.truncated" > truncated0);
  (* The log must be appendable after recovery. *)
  Record_log.append log "post-recovery";
  Record_log.close log;
  Alcotest.(check (list string))
    "append after recovery lands cleanly"
    [ "committed-1"; "committed-2"; "post-recovery" ]
    (Record_log.read path)

let test_record_log_crc_flip () =
  let path = fresh_path "log" in
  let log, _ = Record_log.open_log path in
  Record_log.append log "first";
  Record_log.append log "second";
  Record_log.close log;
  (* Flip one byte inside the LAST record's payload: the CRC rejects
     it, and recovery truncates from that frame on. *)
  let data = read_file path in
  let b = Bytes.of_string data in
  let pos = Bytes.length b - 2 in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xFF));
  write_file path (Bytes.to_string b);
  let log2, recovered = Record_log.open_log path in
  Record_log.close log2;
  Alcotest.(check (list string))
    "corrupt record and successors dropped" [ "first" ] recovered

let test_record_log_empty_and_missing () =
  let path = fresh_path "log" in
  Alcotest.(check (list string))
    "read of a missing file is empty" [] (Record_log.read path);
  (* A pre-existing 0-byte file counts as fresh, not foreign. *)
  write_file path "";
  let log, recovered = Record_log.open_log path in
  Alcotest.(check int) "empty file is a fresh log" 0 (List.length recovered);
  Record_log.append log "x";
  Record_log.close log;
  Alcotest.(check (list string)) "usable after" [ "x" ] (Record_log.read path)

let test_record_log_foreign_file () =
  let path = fresh_path "log" in
  write_file path "this is not a record log, honest\n";
  (match Record_log.read path with
  | _ -> Alcotest.fail "read accepted a foreign file"
  | exception Failure _ -> ());
  match Record_log.open_log path with
  | _ -> Alcotest.fail "open_log accepted a foreign file"
  | exception Failure _ -> ()

let test_record_log_rewrite () =
  let path = fresh_path "log" in
  Record_log.rewrite path [ "a"; "b"; "c" ];
  Alcotest.(check (list string))
    "rewrite then read" [ "a"; "b"; "c" ] (Record_log.read path);
  let dir = Filename.dirname path in
  let leftovers =
    Array.to_list (Sys.readdir dir)
    |> List.filter (fun f -> f <> Filename.basename path)
  in
  Alcotest.(check (list string)) "no tempfile left behind" [] leftovers

(* --- result store --- *)

let key ?cap ~policy ~seed () =
  { Result_store.digest = "d1"; policy; seed; cap }

let test_result_store_prefix () =
  let dir = fresh_dir () in
  let st = Result_store.open_store dir in
  let k = key ~policy:"p" ~seed:1 () in
  Alcotest.(check int)
    "unknown key is empty" 0
    (Array.length (Result_store.committed st k));
  Result_store.append st k ~start:0 [| 1.0; 2.0; 3.0 |];
  Result_store.append st k ~start:3 [| 4.0; 5.0 |];
  (* A gap: replications 10.. are committed but 5..9 are not, so the
     contiguous prefix stops at 5. *)
  Result_store.append st k ~start:10 [| 99.0 |];
  Alcotest.(check (array (float 0.0)))
    "contiguous prefix only" [| 1.0; 2.0; 3.0; 4.0; 5.0 |]
    (Result_store.committed st k);
  (* Overlapping re-commit is legal and merges. *)
  Result_store.append st k ~start:2 [| 3.0; 4.0; 5.0; 6.0; 7.0 |];
  Alcotest.(check (array (float 0.0)))
    "overlap extends the prefix" [| 1.0; 2.0; 3.0; 4.0; 5.0; 6.0; 7.0 |]
    (Result_store.committed st k);
  let other = key ~policy:"q" ~seed:1 () in
  Alcotest.(check int)
    "keys are isolated" 0
    (Array.length (Result_store.committed st other));
  Result_store.close st;
  (* Reopen: the index is rebuilt from the log. *)
  let st = Result_store.open_store dir in
  Alcotest.(check (array (float 0.0)))
    "prefix survives reopen" [| 1.0; 2.0; 3.0; 4.0; 5.0; 6.0; 7.0 |]
    (Result_store.committed st k);
  let s = Result_store.stats st in
  Alcotest.(check int) "one key" 1 s.Result_store.keys;
  Alcotest.(check int) "four records" 4 s.Result_store.records;
  Alcotest.(check bool) "file has bytes" true (s.Result_store.file_bytes > 0);
  Result_store.close st

let test_result_store_cap_in_key () =
  let dir = fresh_dir () in
  let st = Result_store.open_store dir in
  let k_nocap = key ~policy:"p" ~seed:1 () in
  let k_cap = key ~policy:"p" ~seed:1 ~cap:500 () in
  Result_store.append st k_nocap ~start:0 [| 1.0 |];
  Result_store.append st k_cap ~start:0 [| 2.0 |];
  Result_store.close st;
  let st = Result_store.open_store dir in
  Alcotest.(check (array (float 0.0)))
    "cap=None key" [| 1.0 |]
    (Result_store.committed st k_nocap);
  Alcotest.(check (array (float 0.0)))
    "cap=Some key" [| 2.0 |]
    (Result_store.committed st k_cap);
  Result_store.close st

(* --- memo --- *)

let uniform = W.Uniform { lo = 0.2; hi = 0.95 }

let bits = Array.map Int64.bits_of_float

let test_memo_matches_runner () =
  let inst = W.independent uniform ~n:8 ~m:3 ~seed:7 in
  let policy = Suu_core.Baselines.greedy_completion inst in
  let direct = Suu_sim.Runner.makespans inst policy ~seed:11 ~reps:17 in
  let st = Result_store.open_store (fresh_dir ()) in
  let cold = Memo.makespans ~store:st inst policy ~seed:11 ~reps:17 in
  let warm = Memo.makespans ~store:st inst policy ~seed:11 ~reps:17 in
  Result_store.close st;
  Alcotest.(check (array int64)) "cold = direct" (bits direct) (bits cold);
  Alcotest.(check (array int64)) "warm = direct" (bits direct) (bits warm)

let test_memo_kill_resume () =
  let inst = W.independent uniform ~n:8 ~m:3 ~seed:9 in
  let policy = Suu_core.Baselines.greedy_completion inst in
  let reps = 20 in
  let direct = Suu_sim.Runner.makespans inst policy ~seed:5 ~reps in
  let dir = fresh_dir () in
  (* "Killed" run: only 7 of 20 replications were committed (in batches
     of 3, so the last partial batch is also exercised), then the
     process died — simulated by closing the store. *)
  let st = Result_store.open_store dir in
  ignore (Memo.makespans ~store:st ~batch:3 inst policy ~seed:5 ~reps:7);
  Result_store.close st;
  (* Emulate the torn final append a kill -9 can leave. *)
  append_bytes (Filename.concat dir "results.log") "\x10\x00\x00\x00ZZ";
  (* Resumed run: serves the committed prefix, computes the rest. *)
  let st = Result_store.open_store dir in
  let served0 = counter_get "store.memo.served" in
  let computed0 = counter_get "store.memo.computed" in
  let resumed = Memo.makespans ~store:st ~batch:3 inst policy ~seed:5 ~reps in
  Result_store.close st;
  Alcotest.(check (array int64))
    "resumed = uninterrupted" (bits direct) (bits resumed);
  Alcotest.(check int)
    "prefix served from the store" 7
    (counter_get "store.memo.served" - served0);
  Alcotest.(check int)
    "only the tail recomputed" (reps - 7)
    (counter_get "store.memo.computed" - computed0)

(* --- journal --- *)

let test_journal_pairing () =
  let path = fresh_path "journal" in
  let j, recovered = Journal.open_journal path in
  Alcotest.(check int) "fresh journal" 0 (List.length recovered);
  Alcotest.(check int) "fresh next_seq" 0 (Journal.next_seq recovered);
  Journal.log_request j ~seq:0 "req-zero";
  Journal.log_response j ~seq:0 "resp-zero";
  Journal.log_request j ~seq:1 "req-one (in flight at death)";
  Journal.close j;
  let entries = Journal.read path in
  Alcotest.(check int) "two entries" 2 (List.length entries);
  (match entries with
  | [ e0; e1 ] ->
      Alcotest.(check int) "seq 0" 0 e0.Journal.seq;
      Alcotest.(check string) "request 0" "req-zero" e0.Journal.request;
      Alcotest.(check (option string))
        "response 0" (Some "resp-zero") e0.Journal.response;
      Alcotest.(check (option string))
        "in-flight request has no response" None e1.Journal.response
  | _ -> Alcotest.fail "wrong entry count");
  Alcotest.(check int) "next_seq continues" 2 (Journal.next_seq entries);
  (* A torn tail does not block read-only recovery. *)
  append_bytes path "\x40\x00\x00\x00\x01\x02\x03\x04partial";
  Alcotest.(check int)
    "read ignores torn tail" 2
    (List.length (Journal.read path))

(* --- replay --- *)

let small_inst = W.independent uniform ~n:6 ~m:2 ~seed:3

let request body = { P.id = Some "r1"; deadline_ms = None; body }

let test_replay_roundtrip () =
  (* Capture real traffic through a journal-armed server, then verify
     replay reproduces every response byte-for-byte. *)
  let module Server = Suu_server.Server in
  let module Client = Suu_server.Client in
  let path = fresh_path "journal" in
  let config =
    { Server.default_config with port = 0; journal = Some path }
  in
  let server = Server.start ~config () in
  let c = Client.connect ~port:(Server.port server) () in
  ignore (Client.call c (P.Describe small_inst));
  ignore
    (Client.call c
       (P.Simulate { inst = small_inst; policy = "auto"; reps = 5; seed = 2 }));
  (* A deterministic error: unknown policy replies bad-request, and
     replay must reproduce that too. *)
  ignore
    (Client.call c
       (P.Plan { inst = small_inst; policy = "no-such-policy"; seed = 0 }));
  ignore (Client.call c P.Stats);
  Client.close c;
  Server.stop server;
  let o = Suu_server.Replay.file path in
  Alcotest.(check int) "four entries" 4 o.Suu_server.Replay.total;
  Alcotest.(check int) "three replayed" 3 o.Suu_server.Replay.replayed;
  Alcotest.(check int) "all matched" 3 o.Suu_server.Replay.matched;
  Alcotest.(check int) "none mismatched" 0 o.Suu_server.Replay.mismatched;
  Alcotest.(check int) "stats skipped" 1 o.Suu_server.Replay.skipped

let test_replay_detects_tamper () =
  let path = fresh_path "journal" in
  let j, _ = Journal.open_journal path in
  let body =
    P.Simulate { inst = small_inst; policy = "greedy"; reps = 4; seed = 1 }
  in
  Journal.log_request j ~seq:0 (P.request_to_string (request body));
  (* A well-formed but wrong recorded response: the journal says the
     mean was 999, the service will compute something else. *)
  Journal.log_response j ~seq:0
    (P.response_to_string
       (P.Ok
          { id = Some "r1"; rtype = "simulate"; fields = [ ("mean", "999") ] }));
  Journal.close j;
  let o = Suu_server.Replay.file path in
  Alcotest.(check int) "one mismatch" 1 o.Suu_server.Replay.mismatched;
  match o.Suu_server.Replay.mismatches with
  | [ m ] ->
      Alcotest.(check int) "mismatch seq" 0 m.Suu_server.Replay.seq;
      Alcotest.(check bool)
        "frames differ" false
        (String.equal m.Suu_server.Replay.expected
           m.Suu_server.Replay.actual)
  | _ -> Alcotest.fail "expected exactly one recorded mismatch"

let test_replay_skip_rules () =
  let path = fresh_path "journal" in
  let j, _ = Journal.open_journal path in
  (* seq 0: response lost (in flight at death). *)
  Journal.log_request j ~seq:0
    (P.request_to_string (request (P.Describe small_inst)));
  (* seq 1: recorded overloaded error — a function of load, skipped. *)
  Journal.log_request j ~seq:1
    (P.request_to_string (request (P.Describe small_inst)));
  Journal.log_response j ~seq:1
    (P.response_to_string
       (P.Err { id = Some "r1"; code = P.Overloaded; message = "queue full" }));
  Journal.close j;
  let o = Suu_server.Replay.file path in
  Alcotest.(check int) "both skipped" 2 o.Suu_server.Replay.skipped;
  Alcotest.(check int) "none replayed" 0 o.Suu_server.Replay.replayed

(* --- service warm-start --- *)

let test_warm_start_no_double_count () =
  let service =
    Suu_server.Service.create ~metrics:(Suu_server.Metrics.create ()) ()
  in
  let pc0 = Suu_core.Plan_cache.global_stats () in
  let loaded0 = counter_get "store.warm_start.loaded" in
  let warmed =
    Suu_server.Service.warm service
      (P.Simulate { inst = small_inst; policy = "suu-i-sem"; reps = 5; seed = 1 })
  in
  Alcotest.(check bool) "simulate body warms" true warmed;
  Alcotest.(check bool)
    "describe body warms" true
    (Suu_server.Service.warm service (P.Describe small_inst));
  Alcotest.(check bool)
    "stats body does not" false (Suu_server.Service.warm service P.Stats);
  let pc1 = Suu_core.Plan_cache.global_stats () in
  (* The warm-start satellite contract: booting from a journal must not
     inflate the plan-cache statistics a client later reads. *)
  Alcotest.(check int)
    "plan cache hits untouched" pc0.Suu_core.Plan_cache.hits
    pc1.Suu_core.Plan_cache.hits;
  Alcotest.(check int)
    "plan cache misses untouched" pc0.Suu_core.Plan_cache.misses
    pc1.Suu_core.Plan_cache.misses;
  Alcotest.(check int)
    "warm_start.loaded counted" 2
    (counter_get "store.warm_start.loaded" - loaded0)

(* --- crash-safe instance save --- *)

let test_save_file_crash_safe () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "inst.suu" in
  Suu_core.Instance_io.save_file path small_inst;
  Alcotest.(check string)
    "load = save"
    (Suu_core.Instance_io.to_string small_inst)
    (Suu_core.Instance_io.to_string (Suu_core.Instance_io.load_file path));
  (* Overwrite in place: the rename path, not the create path. *)
  let other = W.independent uniform ~n:4 ~m:2 ~seed:8 in
  Suu_core.Instance_io.save_file path other;
  Alcotest.(check string)
    "overwrite = new contents"
    (Suu_core.Instance_io.to_string other)
    (Suu_core.Instance_io.to_string (Suu_core.Instance_io.load_file path));
  let leftovers =
    Array.to_list (Sys.readdir dir) |> List.filter (fun f -> f <> "inst.suu")
  in
  Alcotest.(check (list string)) "no tempfile left behind" [] leftovers

let () =
  Alcotest.run "store"
    [
      ( "crc32",
        [
          Alcotest.test_case "zlib vector" `Quick test_crc32_vector;
          Alcotest.test_case "chunked continuation" `Quick
            test_crc32_continuation;
        ] );
      ( "codec",
        [
          QCheck_alcotest.to_alcotest test_codec_roundtrip_qcheck;
          Alcotest.test_case "truncation raises Corrupt" `Quick
            test_codec_truncation;
        ] );
      ( "record-log",
        [
          Alcotest.test_case "roundtrip" `Quick test_record_log_roundtrip;
          Alcotest.test_case "torn tail recovery" `Quick
            test_record_log_torn_tail;
          Alcotest.test_case "crc flip drops the record" `Quick
            test_record_log_crc_flip;
          Alcotest.test_case "empty and missing files" `Quick
            test_record_log_empty_and_missing;
          Alcotest.test_case "foreign file refused" `Quick
            test_record_log_foreign_file;
          Alcotest.test_case "atomic rewrite" `Quick test_record_log_rewrite;
        ] );
      ( "result-store",
        [
          Alcotest.test_case "contiguous prefix" `Quick
            test_result_store_prefix;
          Alcotest.test_case "cap distinguishes keys" `Quick
            test_result_store_cap_in_key;
        ] );
      ( "memo",
        [
          Alcotest.test_case "bit-identical to Runner" `Quick
            test_memo_matches_runner;
          Alcotest.test_case "kill-resume determinism" `Quick
            test_memo_kill_resume;
        ] );
      ( "journal",
        [ Alcotest.test_case "pairing and next_seq" `Quick test_journal_pairing ]
      );
      ( "replay",
        [
          Alcotest.test_case "captured traffic replays byte-identically"
            `Quick test_replay_roundtrip;
          Alcotest.test_case "tampered response detected" `Quick
            test_replay_detects_tamper;
          Alcotest.test_case "skip rules" `Quick test_replay_skip_rules;
        ] );
      ( "warm-start",
        [
          Alcotest.test_case "no plan-cache double count" `Quick
            test_warm_start_no_double_count;
        ] );
      ( "instance-io",
        [
          Alcotest.test_case "crash-safe save" `Quick
            test_save_file_crash_safe;
        ] );
    ]
