#!/bin/sh
# Chaos-bench smoke: fault-injected server vs retrying clients; the
# bench itself fails below 100% completion, and the gate re-checks the
# artifact (success rate, injected > 0, retries > 0).  --router adds
# the scale-out scenario: a shard killed mid-load behind the router,
# with zero lost requests required.
. "$(dirname "$0")/smoke_lib.sh"

SUU_PERF_SCALE=tiny "$BENCH" chaos --router
test -s BENCH_chaos.json
grep -q '"success_rate": 1' BENCH_chaos.json
grep -q '"mark_down": 1' BENCH_chaos.json
