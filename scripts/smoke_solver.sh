#!/bin/sh
# Solver smoke: the serve-path default is certified MWU with automatic
# simplex fallback; switching the backend must not change what clients
# see.  Two daemons — one per solver — answer the same seeded simulate
# request, and the replies must match byte for byte (same-server
# determinism is checked by sending it twice).
. "$(dirname "$0")/smoke_lib.sh"

"$CLI" serve --port 0 --solver mwu > "$SCRATCH/solver-mwu.log" 2>&1 &
MWU_PID=$!
track "$MWU_PID"
"$CLI" serve --port 0 --solver simplex > "$SCRATCH/solver-simplex.log" 2>&1 &
SIMPLEX_PID=$!
track "$SIMPLEX_PID"

MWU_PORT=$(scripts/wait_ready.sh "$SCRATCH/solver-mwu.log" "$CLI" client stats)
SIMPLEX_PORT=$(scripts/wait_ready.sh "$SCRATCH/solver-simplex.log" "$CLI" client stats)

"$CLI" client simulate --port "$MWU_PORT" \
  -n 8 -m 3 --reps 5 --seed 7 > "$SCRATCH/mwu.out"
"$CLI" client simulate --port "$MWU_PORT" \
  -n 8 -m 3 --reps 5 --seed 7 > "$SCRATCH/mwu2.out"
"$CLI" client simulate --port "$SIMPLEX_PORT" \
  -n 8 -m 3 --reps 5 --seed 7 > "$SCRATCH/simplex.out"

kill -INT "$MWU_PID" "$SIMPLEX_PID"
wait "$MWU_PID" "$SIMPLEX_PID"

diff "$SCRATCH/mwu.out" "$SCRATCH/mwu2.out"
diff "$SCRATCH/mwu.out" "$SCRATCH/simplex.out"
