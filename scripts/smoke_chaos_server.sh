#!/bin/sh
# Chaos server smoke: a server with SUU_FAULTS armed (drops, delays,
# injected errors, torn frames, worker crashes) must still serve a
# retrying client, and the stats snapshot must expose the injection and
# restart counters.
. "$(dirname "$0")/smoke_lib.sh"

SUU_FAULTS="drop=0.1,delay=0.1:10,error=0.05,kill=0.05,crash=0.05,seed=7" \
  "$CLI" serve --port 0 > "$SCRATCH/chaos-serve.log" 2>&1 &
SERVE_PID=$!
track "$SERVE_PID"
PORT=$(scripts/wait_ready.sh "$SCRATCH/chaos-serve.log" \
  "$CLI" client stats --retries 10 --timeout-ms 500)
grep -q 'fault injection ACTIVE' "$SCRATCH/chaos-serve.log"

# Every request must converge through retries despite ~25% per-reply
# fault probability.
for i in $(seq 1 10); do
  "$CLI" client simulate --port "$PORT" -n 8 -m 3 --reps 5 \
    --policy greedy --retries 10 --timeout-ms 500 | grep -q '^mean '
done

"$CLI" client stats --port "$PORT" --retries 10 --timeout-ms 500 \
  --full | tee "$SCRATCH/chaos-stats.out"
grep -q '^obs\.counter\.faults\.injected\.' "$SCRATCH/chaos-stats.out"

kill -INT "$SERVE_PID"
wait "$SERVE_PID"
