#!/bin/sh
# Table-1 harness smoke at tiny size: ratio-vs-lower-bound and
# steps/sec for the online policies (lzf, backfill) next to the LP
# policies and baselines, over synthetic shapes and the checked-in SWF
# trace.  The JSON artifact feeds the regression gate, which holds the
# single-machine 0.8531 bound and the LZF-vs-SEM cold-path speedup
# floor.
. "$(dirname "$0")/smoke_lib.sh"

SUU_PERF_SCALE=tiny "$BENCH" table1
test -s BENCH_table1.json
grep -q '"experiment": "table1"' BENCH_table1.json
grep -q '"policy": "lzf"' BENCH_table1.json
grep -q '"policy": "backfill"' BENCH_table1.json
grep -q '"kind": "swf"' BENCH_table1.json
