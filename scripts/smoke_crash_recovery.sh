#!/bin/sh
# Crash-recovery smoke: a journal-armed server is SIGKILLed under load
# (no drain, no cleanup — the journal's torn tail is real), restarted
# on the same journal (which must warm-start the caches), and the
# captured traffic is replayed and verified byte-for-byte.
. "$(dirname "$0")/smoke_lib.sh"

JOURNAL="$SCRATCH/crash.journal"

"$CLI" serve --port 0 --journal "$JOURNAL" > "$SCRATCH/crash-serve.log" 2>&1 &
SERVE_PID=$!
track "$SERVE_PID"
PORT=$(scripts/wait_ready.sh "$SCRATCH/crash-serve.log" "$CLI" client stats)

for i in $(seq 1 6); do
  "$CLI" client simulate --port "$PORT" -n 8 -m 3 --reps 5 \
    --policy greedy --seed "$i" | grep -q '^mean '
done

# kill -9 mid-flight: requests racing the kill may be journaled without
# a response; replay must skip, not fail.
( "$CLI" client simulate --port "$PORT" -n 8 -m 3 --reps 50 \
    --policy greedy --seed 99 >/dev/null 2>&1 || true ) &
sleep 0.1
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true

# Restart on the same journal: recovery + cache warm-start.
"$CLI" serve --port 0 --journal "$JOURNAL" > "$SCRATCH/crash-serve2.log" 2>&1 &
SERVE2_PID=$!
track "$SERVE2_PID"
for i in $(seq 1 50); do
  grep -q 'recovered [0-9]* entries, warmed' "$SCRATCH/crash-serve2.log" && break
  sleep 0.2
done
grep -q 'recovered [0-9]* entries, warmed' "$SCRATCH/crash-serve2.log"
kill -INT "$SERVE2_PID"
wait "$SERVE2_PID" 2>/dev/null || true

# The captured traffic is a regression test: every deterministic
# response must replay byte-identically.
"$CLI" replay "$JOURNAL" | tee "$SCRATCH/replay.out"
grep -q 'replay OK' "$SCRATCH/replay.out"
grep -q ' 0 mismatched' "$SCRATCH/replay.out"
