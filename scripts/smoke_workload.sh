#!/bin/sh
# Workload smoke: the checked-in 20-job sample SWF trace converts
# byte-stably to SUU instances, inspects cleanly, and replays open-loop
# through the serve bench end to end (arrivals at trace-derived
# timestamps, 100% completion, byte-identical responses across two
# runs at the same seed).
. "$(dirname "$0")/smoke_lib.sh"

TRACE=bench/workloads/sample20.swf

# --- inspect: header directives and summary statistics parse out ---
"$CLI" workload inspect "$TRACE" > "$SCRATCH/inspect.txt"
grep -q '^jobs 20$' "$SCRATCH/inspect.txt"
grep -q '^users 5$' "$SCRATCH/inspect.txt"
grep -q '^; MaxProcs: 16$' "$SCRATCH/inspect.txt"

# --- convert twice: the trace -> instance mapping is deterministic,
#     so the two output trees must be byte-identical ---
"$CLI" workload convert "$TRACE" --out "$SCRATCH/conv1" --seed 7
"$CLI" workload convert "$TRACE" --out "$SCRATCH/conv2" --seed 7
[ "$(ls "$SCRATCH/conv1" | wc -l)" -eq 20 ]
diff -r "$SCRATCH/conv1" "$SCRATCH/conv2"

# a converted instance loads back through the CLI
"$CLI" describe --load "$SCRATCH/conv1/job0001.suu" > /dev/null

# --- open-loop replay through the serve bench (port 0 server inside
#     the bench): all 20 arrivals must complete with deterministic
#     responses; a small --connections keeps the closed-loop passes
#     quick, the gate floor only applies to CI's full serve smoke ---
SUU_PERF_SCALE=tiny "$BENCH" serve --connections 40 --workload "swf:$TRACE"
test -s BENCH_serve.json
grep -q '"workload": {"spec": "swf:sample20.swf"' BENCH_serve.json
grep -q '"arrivals": 20, "completed": 20, "incomplete": 0' BENCH_serve.json
grep -q '"deterministic_replay": true' BENCH_serve.json

# --- a synthetic arrival process drives the same path ---
SUU_PERF_SCALE=tiny "$BENCH" serve --connections 40 --workload poisson:40
grep -q '"workload": {"spec": "poisson:40"' BENCH_serve.json
grep -q '"incomplete": 0' BENCH_serve.json
grep -q '"deterministic_replay": true' BENCH_serve.json

echo "workload smoke ok"
