#!/bin/sh
# Server smoke: the daemon end to end over a real socket.  The server
# binds port 0 (the kernel picks a free one — a fixed port collides
# with whatever else runs on a shared runner) and prints the bound
# port; scripts/wait_ready.sh parses it, probes readiness, and fails
# loudly if the server never comes up.  Also validates the SUU_TRACE
# capture: valid JSONL whose simulate request is >= 95% covered by its
# phase spans.
. "$(dirname "$0")/smoke_lib.sh"

SUU_TRACE=1 SUU_TRACE_FILE="$SCRATCH/suu-trace.jsonl" \
  "$CLI" serve --port 0 > "$SCRATCH/serve.log" 2>&1 &
SERVE_PID=$!
track "$SERVE_PID"
PORT=$(scripts/wait_ready.sh "$SCRATCH/serve.log" "$CLI" client stats)

"$CLI" client simulate \
  --port "$PORT" -n 8 -m 3 --reps 5 --policy greedy | tee "$SCRATCH/sim.out"
grep -q '^mean ' "$SCRATCH/sim.out"

# The stats endpoint must expose per-phase quantiles with --full.
"$CLI" client stats --port "$PORT" --full | tee "$SCRATCH/stats.out"
grep -q '^obs\.phase\.server\.execute\.p95_ms ' "$SCRATCH/stats.out"

kill -INT "$SERVE_PID"
wait "$SERVE_PID"

"$GATE" trace-coverage "$SCRATCH/suu-trace.jsonl"
