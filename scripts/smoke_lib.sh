# Shared prelude for scripts/smoke_*.sh — source it, don't execute it:
#
#   . "$(dirname "$0")/smoke_lib.sh"
#
# It cds to the repo root, resolves the built binaries (override with
# CLI= / BENCH= / GATE= env vars), creates a scratch directory that is
# removed on exit, and tracks background daemons so a failing smoke
# never leaks processes onto the runner.  Every smoke is locally
# runnable: `dune build` then `scripts/smoke_<name>.sh`.
#
# Binaries are invoked directly rather than through `dune exec`: a
# backgrounded daemon would hold dune's build lock open and deadlock
# every subsequent client call.
set -eu

cd "$(dirname "$0")/.."

CLI=${CLI:-_build/default/bin/suu_cli.exe}
BENCH=${BENCH:-_build/default/bench/main.exe}
GATE=${GATE:-_build/default/bench/gate.exe}
for exe in "$CLI" "$BENCH" "$GATE"; do
  if [ ! -x "$exe" ]; then
    echo "missing $exe — run 'dune build' first" >&2
    exit 1
  fi
done

SCRATCH=$(mktemp -d "${TMPDIR:-/tmp}/suu-smoke.XXXXXX")
SMOKE_PIDS=""

# track PID — register a background daemon for cleanup.  Smokes that
# stop their daemons deliberately (kill -INT, kill -9) don't need to
# untrack: the cleanup kill of an already-dead pid is a no-op.
track() { SMOKE_PIDS="$SMOKE_PIDS $1"; }

cleanup() {
  status=$?
  for p in $SMOKE_PIDS; do kill "$p" 2>/dev/null || true; done
  for p in $SMOKE_PIDS; do wait "$p" 2>/dev/null || true; done
  rm -rf "$SCRATCH"
  exit "$status"
}
trap cleanup EXIT INT TERM
