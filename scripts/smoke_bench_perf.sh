#!/bin/sh
# Perf-harness smoke at tiny size so it cannot rot: it must run, agree
# bit-for-bit across domain counts, and emit the JSON artifact (in the
# repo root, where the regression gate and the CI artifact upload
# expect it).
. "$(dirname "$0")/smoke_lib.sh"

SUU_PERF_SCALE=tiny "$BENCH" perf
test -s BENCH_perf.json
grep -q '"bit_identical": true' BENCH_perf.json
if grep -q '"bit_identical": false' BENCH_perf.json; then
  echo "parallel runner diverged from sequential" >&2
  exit 1
fi
