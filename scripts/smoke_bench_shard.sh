#!/bin/sh
# Shard-bench smoke: routed vs direct throughput plus the byte-identity
# sweep — every routed response must match the single server's.
. "$(dirname "$0")/smoke_lib.sh"

SUU_PERF_SCALE=tiny "$BENCH" shard
test -s BENCH_shard.json
grep -q '"byte_identical": true' BENCH_shard.json
