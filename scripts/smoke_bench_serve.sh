#!/bin/sh
# Serve-bench smoke: tiny-scale load test plus the connection-scale
# pass — the event loop must hold >= 500 concurrent pipelined
# connections with zero drops and byte-exact replies.  500 client
# sockets + 500 accepted sockets live in one process, so raise the fd
# ceiling where the soft default (often 1024) is too tight.
. "$(dirname "$0")/smoke_lib.sh"

ulimit -n 4096 2>/dev/null || true

SUU_PERF_SCALE=tiny "$BENCH" serve --connections "${CONNECTIONS:-500}" \
  --workload "${WORKLOAD:-swf:bench/workloads/sample20.swf}"
test -s BENCH_serve.json
grep -q '"deterministic_over_the_wire": true' BENCH_serve.json
grep -q '"dropped": 0' BENCH_serve.json
grep -q '"mismatched": 0' BENCH_serve.json
# open-loop replay section: gated downstream by gate.exe (completion,
# determinism, latency quantiles present)
grep -q '"deterministic_replay": true' BENCH_serve.json
grep -q '"incomplete": 0' BENCH_serve.json
