#!/bin/sh
# Usage: wait_ready.sh LOG [PROBE...]
#
# Poll LOG (up to ~10s) for a daemon's "listening on HOST:PORT" ready
# line, then — if a PROBE command is given — require
#
#   PROBE --port PORT
#
# to succeed before reporting ready.  Prints the bound port on stdout;
# dumps LOG to stderr and exits 1 if the daemon never comes up.  Both
# suu-serve and suu-router print the same ready-line shape, so the one
# helper covers every CI smoke; lib/router/spawn.ml is the OCaml
# analogue for in-process children.
set -u

log=$1
shift

i=0
while [ "$i" -lt 50 ]; do
  port=$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\).*/\1/p' "$log" 2>/dev/null | head -n 1)
  if [ -n "$port" ]; then
    if [ "$#" -eq 0 ] || "$@" --port "$port" >/dev/null 2>&1; then
      printf '%s\n' "$port"
      exit 0
    fi
  fi
  sleep 0.2
  i=$((i + 1))
done

echo "daemon behind $log never became ready; log follows" >&2
cat "$log" 2>/dev/null >&2
exit 1
