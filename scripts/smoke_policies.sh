#!/bin/sh
# Online-policy smoke: the lib/sched family (lzf, backfill) end to end
# over a real socket.  Serves simulate requests for both policies on
# instances converted from the checked-in SWF trace and on synthetic
# instances, and replays each request at the same seed — the responses
# must be byte-identical (0 mismatches): the policies promise
# deterministic tie-breaking, and the per-execution predictor state is
# seeded from (instance digest, policy, seed) only.
. "$(dirname "$0")/smoke_lib.sh"

TRACE=bench/workloads/sample20.swf

"$CLI" serve --port 0 > "$SCRATCH/serve.log" 2>&1 &
SERVE_PID=$!
track "$SERVE_PID"
PORT=$(scripts/wait_ready.sh "$SCRATCH/serve.log" "$CLI" client stats)

# The server must know the whole registry, including lib/sched.
"$CLI" client stats --port "$PORT" --full > "$SCRATCH/stats0.out"

# --- SWF-derived instances: convert the trace, serve both policies
#     over a handful of jobs, replay each and diff ---
"$CLI" workload convert "$TRACE" --out "$SCRATCH/conv" --seed 7
MISMATCH=0
for inst in job0001 job0007 job0013 job0019; do
  for pol in lzf backfill; do
    "$CLI" client simulate --port "$PORT" --load "$SCRATCH/conv/$inst.suu" \
      --policy "$pol" --reps 6 --seed 42 > "$SCRATCH/$inst-$pol-a.out"
    "$CLI" client simulate --port "$PORT" --load "$SCRATCH/conv/$inst.suu" \
      --policy "$pol" --reps 6 --seed 42 > "$SCRATCH/$inst-$pol-b.out"
    grep -q '^mean ' "$SCRATCH/$inst-$pol-a.out"
    if ! cmp -s "$SCRATCH/$inst-$pol-a.out" "$SCRATCH/$inst-$pol-b.out"; then
      echo "replay mismatch: $inst policy=$pol" >&2
      MISMATCH=$((MISMATCH + 1))
    fi
  done
done

# --- synthetic instances exercise the multi-machine packing paths the
#     one-job SWF rows cannot ---
for pol in lzf backfill; do
  "$CLI" client simulate --port "$PORT" -n 12 -m 4 --reps 6 --seed 9 \
    --policy "$pol" > "$SCRATCH/syn-$pol-a.out"
  "$CLI" client simulate --port "$PORT" -n 12 -m 4 --reps 6 --seed 9 \
    --policy "$pol" > "$SCRATCH/syn-$pol-b.out"
  grep -q '^mean ' "$SCRATCH/syn-$pol-a.out"
  if ! cmp -s "$SCRATCH/syn-$pol-a.out" "$SCRATCH/syn-$pol-b.out"; then
    echo "replay mismatch: synthetic policy=$pol" >&2
    MISMATCH=$((MISMATCH + 1))
  fi
done

[ "$MISMATCH" -eq 0 ]

# --- LP-free policies must bypass the plan cache, and the bypasses
#     must be visible in server stats ---
"$CLI" client stats --port "$PORT" | tee "$SCRATCH/stats.out"
BYPASS=$(awk '/^plan_cache_bypass /{print $2}' "$SCRATCH/stats.out")
[ -n "$BYPASS" ] && [ "$BYPASS" -gt 0 ]

# --- an unknown policy is a clean protocol error naming the registry,
#     not a hang or a crash ---
if "$CLI" client simulate --port "$PORT" -n 4 -m 2 --policy no-such-policy \
    > "$SCRATCH/unknown.out" 2>&1; then
  echo "unknown policy unexpectedly accepted" >&2
  exit 1
fi
grep -q 'unknown policy' "$SCRATCH/unknown.out"

kill -INT "$SERVE_PID"
wait "$SERVE_PID"

echo "policies smoke ok"
