#!/bin/sh
# Router multi-shard smoke: a router spawning two journal-armed shards
# must survive kill -9 of one shard — clients converge through retries
# while the keyspace fails over, the health loop respawns the dead
# shard warm from its journal on the same port, and both shard journals
# replay byte-identically afterwards.
. "$(dirname "$0")/smoke_lib.sh"

"$CLI" router --shards 2 --port 0 --journal-dir "$SCRATCH/shard-journals" \
  > "$SCRATCH/router.log" 2>&1 &
ROUTER_PID=$!
track "$ROUTER_PID"
PORT=$(scripts/wait_ready.sh "$SCRATCH/router.log" "$CLI" client stats)

# Spread load over several instances so both shards own keys.
for i in $(seq 1 8); do
  "$CLI" client simulate --port "$PORT" -n "$((6 + i))" -m 3 \
    --reps 4 --policy greedy --seed "$i" | grep -q '^mean '
done
"$CLI" client stats --port "$PORT" | tee "$SCRATCH/router-stats.out"
grep -q '^router_shards_up 2' "$SCRATCH/router-stats.out"

# kill -9 one shard; retrying clients must still converge.
SHARD_PID=$(sed -n 's/.*shard0 ready at .* (pid \([0-9]*\)).*/\1/p' \
  "$SCRATCH/router.log" | head -n 1)
[ -n "$SHARD_PID" ] || { cat "$SCRATCH/router.log" >&2; exit 1; }
kill -9 "$SHARD_PID"
for i in $(seq 1 8); do
  "$CLI" client simulate --port "$PORT" -n "$((6 + i))" -m 3 \
    --reps 4 --policy greedy --seed "$i" --retries 10 \
    --timeout-ms 1000 | grep -q '^mean '
done

# The health loop must respawn the dead shard warm from its journal and
# bring the cluster back to full strength.
for i in $(seq 1 50); do
  grep -q 'respawned' "$SCRATCH/router.log" && break
  sleep 0.2
done
grep 'respawned' "$SCRATCH/router.log"
for i in $(seq 1 50); do
  "$CLI" client stats --port "$PORT" \
    | grep -q '^router_shards_up 2' && break
  sleep 0.2
done
"$CLI" client stats --port "$PORT" | grep -q '^router_shards_up 2'

kill -INT "$ROUTER_PID"
wait "$ROUTER_PID" 2>/dev/null || true

# Every shard journal is a regression test of its shard.
for j in "$SCRATCH"/shard-journals/*.journal; do
  "$CLI" replay "$j" | tee "$SCRATCH/replay-$(basename "$j").out"
  grep -q ' 0 mismatched' "$SCRATCH/replay-$(basename "$j").out"
done
