#!/bin/sh
# Replay-bench smoke: store-memoized sweeps must be byte-identical to
# direct computation, cold and after a simulated kill -9.
. "$(dirname "$0")/smoke_lib.sh"

SUU_PERF_SCALE=tiny "$BENCH" replay
test -s BENCH_replay.json
grep -q '"identical": true' BENCH_replay.json
grep -q '"resumed_identical": true' BENCH_replay.json
