#!/bin/sh
# Incremental-bench smoke: a store-armed sweep killed mid-run must, on
# re-run, resume from the committed batches and emit stdout
# byte-identical to an uninterrupted cold run.
. "$(dirname "$0")/smoke_lib.sh"

# Reference: uninterrupted run against a fresh store.
SUU_STORE="$SCRATCH/store-ref" "$BENCH" e1 > "$SCRATCH/bench-ref.out"

# Interrupted run: SIGKILL mid-sweep, then re-run to completion.
( SUU_STORE="$SCRATCH/store-resume" "$BENCH" e1 > /dev/null 2>&1 ) &
BENCH_PID=$!
track "$BENCH_PID"
sleep 0.5
kill -9 "$BENCH_PID" 2>/dev/null || true
wait "$BENCH_PID" 2>/dev/null || true
SUU_STORE="$SCRATCH/store-resume" "$BENCH" e1 > "$SCRATCH/bench-resume.out"

# Byte-identical modulo the wall-clock footer line.
grep -v 'total bench time' "$SCRATCH/bench-ref.out" > "$SCRATCH/ref.filtered"
grep -v 'total bench time' "$SCRATCH/bench-resume.out" > "$SCRATCH/resume.filtered"
diff "$SCRATCH/ref.filtered" "$SCRATCH/resume.filtered"

"$CLI" store stats --dir "$SCRATCH/store-resume" | tee "$SCRATCH/store-stats.out"
grep -q '^records [1-9]' "$SCRATCH/store-stats.out"
