#!/bin/sh
# Bench-regression gate: tiny-scale results vs the committed baseline,
# with generous (2.5x) tolerances — catches order-of-magnitude
# regressions, tolerates runner jitter.  Also enforces the <5%
# instrumentation-overhead budget and the correctness floors
# (connection scale, chaos success, byte identity).  Expects the
# BENCH_*.json artifacts in the repo root — run the other
# smoke_bench_*.sh scripts first.
. "$(dirname "$0")/smoke_lib.sh"

for f in BENCH_perf.json BENCH_serve.json BENCH_chaos.json \
         BENCH_replay.json BENCH_shard.json BENCH_table1.json; do
  "$GATE" regression "$f" bench/baseline.json
done
