(* The `suu` command-line tool: generate SUU workloads, inspect them, and
   race the paper's algorithms against baselines on simulated traces. *)

open Cmdliner

module W = Suu_workload.Workload
module Table = Suu_util.Table

(* --- shared arguments --- *)

let hazard_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "uniform" -> Ok (W.Uniform { lo = 0.2; hi = 0.95 })
    | "product" -> Ok W.Product
    | "volunteers" -> Ok (W.Volunteers { reliable_fraction = 0.2 })
    | "specialists" -> Ok (W.Specialists { capable = 3 })
    | "near-one" -> Ok W.Near_one
    | _ ->
        Error
          (`Msg
            "hazard must be one of: uniform, product, volunteers, \
             specialists, near-one")
  in
  let print fmt h = Format.pp_print_string fmt (W.hazard_name h) in
  Arg.conv (parse, print)

let hazard =
  Arg.(
    value
    & opt hazard_conv (W.Uniform { lo = 0.2; hi = 0.95 })
    & info [ "hazard" ] ~docv:"MODEL"
        ~doc:
          "Failure-probability model: uniform, product, volunteers, \
           specialists or near-one.")

let shape =
  Arg.(
    value
    & opt (enum
             [
               ("independent", `Independent);
               ("chains", `Chains);
               ("forest", `Forest);
               ("mapreduce", `Mapreduce);
             ])
        `Independent
    & info [ "shape" ] ~docv:"SHAPE"
        ~doc:
          "Precedence structure: independent, chains, forest or mapreduce.")

let n_jobs =
  Arg.(value & opt int 24 & info [ "n"; "jobs" ] ~docv:"N" ~doc:"Job count.")

let n_machines =
  Arg.(
    value & opt int 6 & info [ "m"; "machines" ] ~docv:"M" ~doc:"Machine count.")

let seed =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let reps =
  Arg.(
    value & opt int 20
    & info [ "reps" ] ~docv:"R" ~doc:"Number of simulated executions.")

let save_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "save" ] ~docv:"FILE" ~doc:"Write the generated instance to FILE.")

let load_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "load" ] ~docv:"FILE"
        ~doc:"Load the instance from FILE instead of generating one.")

let build_instance shape hazard n m seed =
  match shape with
  | `Independent -> W.independent hazard ~n ~m ~seed
  | `Chains ->
      let z = max 1 (n / 6) in
      W.random_chains hazard ~n ~z ~m ~seed
  | `Forest ->
      let trees = max 1 (n / 8) in
      W.forest hazard ~n ~trees ~orientation:`Mixed ~m ~seed
  | `Mapreduce ->
      let maps = max 1 (2 * n / 3) in
      W.mapreduce hazard ~maps ~reduces:(max 1 (n - maps)) ~m ~seed

let obtain_instance load shape hazard n m seed save =
  let inst =
    match load with
    | Some path -> Suu_core.Instance_io.load_file path
    | None -> build_instance shape hazard n m seed
  in
  (match save with
  | Some path ->
      Suu_core.Instance_io.save_file path inst;
      Printf.printf "saved instance to %s\n" path
  | None -> ());
  inst

(* A malformed or missing --load file (or an unwritable --save path)
   must exit with a one-line error, not a raw Failure backtrace. *)
let with_instance load shape hazard n m seed save f =
  match obtain_instance load shape hazard n m seed save with
  | inst -> f inst
  | exception (Failure msg | Invalid_argument msg | Sys_error msg) ->
      Error (`Msg msg)

(* --- describe --- *)

let describe shape hazard n m seed load save =
  with_instance load shape hazard n m seed save (fun inst ->
      print_endline (Suu_core.Auto.describe inst);
      Printf.printf "lower bounds on E[T_OPT]:\n";
      Printf.printf "  LP1(J,1/2)/2 : %.3f\n"
        (Suu_core.Lower_bound.lp1_half inst);
      Printf.printf "  critical path: %.3f\n"
        (Suu_core.Lower_bound.critical_path inst);
      Printf.printf "  work / m     : %.3f\n" (Suu_core.Lower_bound.work inst);
      Printf.printf "  combined     : %.3f\n"
        (Suu_core.Lower_bound.combined inst);
      Ok ())

let describe_cmd =
  let doc = "Generate a workload and print its classification and bounds." in
  Cmd.v
    (Cmd.info "describe" ~doc)
    Term.(
      term_result
        (const describe $ shape $ hazard $ n_jobs $ n_machines $ seed
        $ load_arg $ save_arg))

(* --- simulate --- *)

(* Every applicable concrete policy, from the shared registry ("auto"
   is skipped: it duplicates one of the dispatched rows). *)
let policies_for inst =
  Suu_sched.Register.ensure ();
  List.filter_map
    (fun name ->
      if name = "auto" then None
      else
        match Suu_core.Policy_registry.build name inst with
        | Ok p -> Some (name, p)
        | Error _ -> None)
    (Suu_core.Policy_registry.applicable inst)

let simulate shape hazard n m seed reps load =
  with_instance load shape hazard n m seed None (fun inst ->
      print_endline (Suu_core.Auto.describe inst);
      let bound = Suu_core.Lower_bound.combined inst in
      Printf.printf "combined lower bound: %.2f\n\n" bound;
      let table =
        Table.create ~header:[ "policy"; "E[T]"; "ci95"; "min"; "max"; "ratio" ]
      in
      List.iter
        (fun (label, policy) ->
          let xs =
            Suu_sim.Runner.makespans inst policy ~seed:(seed + 1) ~reps
          in
          let s = Suu_stats.Summary.of_array xs in
          Table.add_float_row table label
            Suu_stats.Summary.
              [ s.mean; s.ci95; s.min; s.max; s.mean /. bound ])
        (policies_for inst);
      Table.print table;
      Ok ())

let simulate_cmd =
  let doc = "Race the paper's algorithms against baselines on a workload." in
  Cmd.v
    (Cmd.info "simulate" ~doc)
    Term.(
      term_result
        (const simulate $ shape $ hazard $ n_jobs $ n_machines $ seed $ reps
        $ load_arg))

(* --- policies: the registry, human-readable --- *)

let policies () =
  Suu_sched.Register.ensure ();
  let module R = Suu_core.Policy_registry in
  List.iter
    (fun (e : R.entry) ->
      Printf.printf "%-16s %-18s %-6s %s\n   %s\n" e.R.name
        (R.describe_requirement e.R.shape)
        (if e.R.lp_free then "no-LP" else "LP")
        e.R.guarantee e.R.summary)
    (R.entries ())

let policies_cmd =
  let doc =
    "List every registered policy with its shape requirement, LP usage \
     and approximation guarantee."
  in
  Cmd.v (Cmd.info "policies" ~doc) Term.(const policies $ const ())

(* --- optimal (tiny instances) --- *)

let optimal hazard n m seed =
  let inst = W.independent hazard ~n ~m ~seed in
  (try
     let opt = Suu_core.Exact_dp.expected_makespan inst in
     Printf.printf "exact E[T_OPT] = %.4f\n" opt;
     Printf.printf "combined lower bound = %.4f\n"
       (Suu_core.Lower_bound.combined inst)
   with Invalid_argument msg ->
     Printf.eprintf "instance too large for exact DP: %s\n" msg;
     exit 1)

let optimal_cmd =
  let doc = "Compute the exact optimum of a tiny instance by DP." in
  Cmd.v
    (Cmd.info "optimal" ~doc)
    Term.(const optimal $ hazard $ n_jobs $ n_machines $ seed)

(* --- stoch (Appendix C) --- *)

let stoch n m seed reps =
  let rng = Suu_prng.Rng.create ~seed in
  let rates =
    Array.init n (fun _ -> Suu_prng.Rng.range rng ~lo:0.3 ~hi:3.0)
  in
  let speeds =
    Array.init m (fun _ ->
        Array.init n (fun _ -> Suu_prng.Rng.range rng ~lo:0.1 ~hi:2.0))
  in
  let inst = Suu_stoch.Stoch_instance.make ~rates speeds in
  let runs = Suu_stoch.Stc_i.runs inst ~seed:(seed + 1) ~reps in
  let mk = Array.map (fun r -> r.Suu_stoch.Stc_i.makespan) runs in
  let off = Array.map (fun r -> r.Suu_stoch.Stc_i.offline) runs in
  let smk = Suu_stats.Summary.of_array mk in
  let soff = Suu_stats.Summary.of_array off in
  Printf.printf
    "STC-I on n=%d exponential jobs, m=%d unrelated machines (K=%d \
     rounds)\n"
    n m
    (Suu_stoch.Stc_i.rounds inst);
  Printf.printf "E[makespan]        = %.3f ± %.3f\n" smk.Suu_stats.Summary.mean
    smk.Suu_stats.Summary.ci95;
  Printf.printf "E[offline LL bound] = %.3f ± %.3f\n"
    soff.Suu_stats.Summary.mean soff.Suu_stats.Summary.ci95;
  Printf.printf "ratio               = %.3f\n"
    (smk.Suu_stats.Summary.mean /. soff.Suu_stats.Summary.mean)

let stoch_cmd =
  let doc = "Run STC-I (stochastic job lengths, Appendix C)." in
  Cmd.v
    (Cmd.info "stoch" ~doc)
    Term.(const stoch $ n_jobs $ n_machines $ seed $ reps)

(* --- gantt --- *)

let gantt shape hazard n m seed load =
  with_instance load shape hazard n m seed None (fun inst ->
      print_endline (Suu_core.Auto.describe inst);
      let policy = Suu_core.Auto.policy inst in
      let rng = Suu_prng.Rng.create ~seed:(seed + 1) in
      let trace = Suu_sim.Trace.draw ~n:(Suu_core.Instance.n inst) rng in
      let result, steps = Suu_sim.Engine.run_recorded inst policy ~trace ~rng in
      Printf.printf "policy %s, makespan %d (busy %d, wasted %d, idle %d)\n\n"
        (Suu_core.Policy.name policy)
        result.Suu_sim.Engine.makespan result.Suu_sim.Engine.busy_steps
        result.Suu_sim.Engine.wasted_steps result.Suu_sim.Engine.idle_steps;
      print_string (Suu_sim.Gantt.render steps);
      print_newline ();
      Array.iteri
        (fun i u ->
          Printf.printf "machine %d utilization: %.0f%%\n" i (100. *. u))
        (Suu_sim.Gantt.utilization steps);
      Ok ())

let gantt_cmd =
  let doc = "Run one execution and draw its schedule as an ASCII Gantt." in
  Cmd.v
    (Cmd.info "gantt" ~doc)
    Term.(
      term_result
        (const gantt $ shape $ hazard $ n_jobs $ n_machines $ seed $ load_arg))

(* --- serve --- *)

let serve host port workers queue deadline_ms sim_jobs solver faults journal =
  Suu_server.Server.run
    ~config:
      {
        Suu_server.Server.default_config with
        host;
        port;
        workers;
        queue_capacity = queue;
        default_deadline_ms = deadline_ms;
        sim_jobs;
        solver;
        faults;
        journal;
      }
    ()

let host_arg =
  Arg.(
    value
    & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"Address to bind or connect to.")

let port_arg ~default =
  Arg.(
    value & opt int default
    & info [ "port" ] ~docv:"PORT"
        ~doc:"TCP port (0 picks an ephemeral port when serving).")

let serve_cmd =
  let doc = "Run the scheduling service daemon (SIGINT/SIGTERM drains)." in
  let workers =
    Arg.(
      value & opt int 4
      & info [ "workers" ] ~docv:"K" ~doc:"Worker thread count.")
  in
  let queue =
    Arg.(
      value & opt int 64
      & info [ "queue" ] ~docv:"Q"
          ~doc:"Bounded request-queue capacity; overflow is rejected.")
  in
  let deadline =
    Arg.(
      value & opt int 30_000
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Default per-request deadline in milliseconds.")
  in
  let sim_jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "sim-jobs" ] ~docv:"D"
          ~doc:"Domains per simulate request (default: SUU_JOBS or cores).")
  in
  let solver_conv =
    let parse s =
      match Suu_core.Solver_choice.of_string s with
      | Result.Ok c -> Ok c
      | Result.Error msg -> Error (`Msg msg)
    in
    Arg.conv (parse, fun ppf c ->
        Format.pp_print_string ppf (Suu_core.Solver_choice.to_string c))
  in
  let solver =
    Arg.(
      value
      & opt (some solver_conv) None
      & info [ "solver" ] ~docv:"NAME"
          ~doc:
            "LP backend for every policy this server builds: simplex, \
             revised, mwu or mwu-EPS.  Default: the SUU_SOLVER \
             environment variable, else mwu-0.1 — certified \
             multiplicative weights with automatic simplex fallback \
             for tiny instances and failed optimality certificates.")
  in
  let faults_conv =
    let parse s =
      match Suu_server.Faults.of_spec s with
      | Result.Ok c -> Ok c
      | Result.Error msg -> Error (`Msg msg)
    in
    Arg.conv (parse, fun ppf c ->
        Format.pp_print_string ppf (Suu_server.Faults.to_spec c))
  in
  let faults =
    Arg.(
      value
      & opt (some faults_conv) None
      & info [ "faults" ] ~docv:"SPEC"
          ~doc:
            "Fault-injection spec, e.g. \
             drop=0.05,delay=0.1:25,error=0.01,kill=0.01,crash=0.02,seed=42. \
             Overrides the SUU_FAULTS environment variable.")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"PATH"
          ~doc:
            "Write-ahead request journal: every admitted request is \
             durably journaled before execution, responses after; on \
             restart the journal warm-starts the caches and $(b,suu \
             replay) can re-execute it.  Overrides the SUU_JOURNAL \
             environment variable.")
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      const serve $ host_arg $ port_arg ~default:7483 $ workers $ queue
      $ deadline $ sim_jobs $ solver $ faults $ journal)

(* --- router --- *)

let router host port shards_n attach workers queue solver journal_dir
    store_dir retries timeout_ms health_ms =
  let module R = Suu_router.Router in
  let module Spawn = Suu_router.Spawn in
  let specs =
    match attach with
    | Some addrs ->
        (* Join shards someone else runs; their address is their ring
           identity. *)
        List.map
          (fun (h, p) ->
            { R.id = Printf.sprintf "%s:%d" h p; host = h; port = p;
              child = None; respawn = None })
          addrs
    | None ->
        if shards_n < 1 then (
          prerr_endline "suu router: --shards must be >= 1";
          exit 1);
        let prog = Sys.executable_name in
        let shard_args i ~port =
          [ "serve"; "--host"; "127.0.0.1"; "--port"; string_of_int port;
            "--workers"; string_of_int workers; "--queue";
            string_of_int queue ]
          @ (match solver with
            | Some s ->
                [ "--solver"; Suu_core.Solver_choice.to_string s ]
            | None -> [])
          @
          match journal_dir with
          | Some dir ->
              [ "--journal";
                Filename.concat dir (Printf.sprintf "shard%d.journal" i) ]
          | None -> []
        in
        let shard_env i =
          match store_dir with
          | Some dir ->
              [ ("SUU_STORE",
                 Filename.concat dir (Printf.sprintf "shard%d.store" i)) ]
          | None -> []
        in
        (match journal_dir with
        | Some dir -> (try Unix.mkdir dir 0o755 with Unix.Unix_error _ -> ())
        | None -> ());
        (match store_dir with
        | Some dir -> (try Unix.mkdir dir 0o755 with Unix.Unix_error _ -> ())
        | None -> ());
        let spawned = ref [] in
        let fail msg =
          List.iter (fun (_, c, _) -> Spawn.terminate c) !spawned;
          prerr_endline ("suu router: " ^ msg);
          exit 1
        in
        List.init shards_n (fun i ->
            let id = Printf.sprintf "shard%d" i in
            let child =
              Spawn.spawn ~extra_env:(shard_env i) ~prog
                ~args:(shard_args i ~port:0) ()
            in
            match Spawn.wait_ready child with
            | Result.Error msg ->
                fail (Printf.sprintf "%s failed to start: %s" id msg)
            | Result.Ok (h, p) ->
                spawned := (id, child, p) :: !spawned;
                (* Parseable by scripts/wait_ready.sh: the pid is what
                   the chaos smoke kill -9s. *)
                Printf.printf "suu-router: %s ready at %s:%d (pid %d)\n%!"
                  id h p (Spawn.pid child);
                { R.id; host = h; port = p; child = Some child;
                  respawn =
                    (* Respawn on the SAME port with the same journal
                       and store: the replacement warm-starts as the
                       same ring member. *)
                    Some
                      (fun () ->
                        Spawn.spawn ~extra_env:(shard_env i) ~prog
                          ~args:(shard_args i ~port:p) ()) })
  in
  R.run
    ~config:
      {
        R.default_config with
        host;
        port;
        retries;
        timeout_ms;
        health_interval_ms = health_ms;
      }
    ~shards:specs ()

let router_cmd =
  let doc =
    "Run the sharding coordinator: consistent-hash requests by instance \
     digest across N suu-serve shards."
  in
  let shards =
    Arg.(
      value & opt int 2
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Spawn $(docv) suu-serve shard processes on ephemeral ports \
             and manage their lifecycle (health checks, respawn on \
             crash).")
  in
  let attach_conv =
    let parse s =
      let parts = String.split_on_char ',' s in
      let parse_one part =
        match String.rindex_opt part ':' with
        | None -> Error (`Msg (Printf.sprintf "expected HOST:PORT, got %S" part))
        | Some i -> (
            let h = String.sub part 0 i in
            let ps = String.sub part (i + 1) (String.length part - i - 1) in
            match int_of_string_opt ps with
            | Some p when p > 0 && p < 65536 && h <> "" -> Ok (h, p)
            | _ -> Error (`Msg (Printf.sprintf "bad port in %S" part)))
      in
      List.fold_left
        (fun acc part ->
          match (acc, parse_one part) with
          | Error e, _ -> Error e
          | _, Error e -> Error e
          | Ok l, Ok hp -> Ok (l @ [ hp ]))
        (Ok []) parts
    in
    Arg.conv
      ( parse,
        fun ppf l ->
          Format.pp_print_string ppf
            (String.concat ","
               (List.map (fun (h, p) -> Printf.sprintf "%s:%d" h p) l)) )
  in
  let attach =
    Arg.(
      value
      & opt (some attach_conv) None
      & info [ "attach" ] ~docv:"HOST:PORT,..."
          ~doc:
            "Route to already-running shards instead of spawning any; \
             their addresses are their ring identities.")
  in
  let workers =
    Arg.(
      value & opt int 4
      & info [ "workers" ] ~docv:"K" ~doc:"Worker threads per shard.")
  in
  let queue =
    Arg.(
      value & opt int 64
      & info [ "queue" ] ~docv:"Q" ~doc:"Request-queue capacity per shard.")
  in
  let solver_conv =
    let parse s =
      match Suu_core.Solver_choice.of_string s with
      | Result.Ok c -> Ok c
      | Result.Error msg -> Error (`Msg msg)
    in
    Arg.conv (parse, fun ppf c ->
        Format.pp_print_string ppf (Suu_core.Solver_choice.to_string c))
  in
  let solver =
    Arg.(
      value
      & opt (some solver_conv) None
      & info [ "solver" ] ~docv:"NAME"
          ~doc:"LP backend forwarded to every spawned shard.")
  in
  let journal_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal-dir" ] ~docv:"DIR"
          ~doc:
            "Per-shard write-ahead journals $(docv)/shardI.journal; a \
             respawned shard warm-starts from its own journal.")
  in
  let store_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "store-dir" ] ~docv:"DIR"
          ~doc:
            "Per-shard SUU_STORE result stores $(docv)/shardI.store, so \
             digest affinity keeps each store shard-local.")
  in
  let retries =
    Arg.(
      value & opt int 2
      & info [ "retries" ] ~docv:"R"
          ~doc:"Retries per forwarded request within one shard.")
  in
  let timeout =
    Arg.(
      value & opt int 30_000
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:"Per-attempt shard response timeout.")
  in
  let health =
    Arg.(
      value & opt int 500
      & info [ "health-interval-ms" ] ~docv:"MS"
          ~doc:"Interval between shard health probes.")
  in
  Cmd.v
    (Cmd.info "router" ~doc)
    Term.(
      const router $ host_arg $ port_arg ~default:7490 $ shards $ attach
      $ workers $ queue $ solver $ journal_dir $ store_dir $ retries
      $ timeout $ health)

(* --- replay --- *)

let replay path sim_jobs verbose =
  let module R = Suu_server.Replay in
  match R.file ?sim_jobs path with
  | o ->
      Printf.printf
        "journal %s: %d entries — %d replayed, %d matched, %d mismatched, \
         %d skipped\n"
        path o.R.total o.R.replayed o.R.matched o.R.mismatched o.R.skipped;
      if verbose || o.R.mismatched > 0 then
        List.iter
          (fun (m : R.mismatch) ->
            Printf.printf
              "\nmismatch at seq %d\n--- journaled ---\n%s--- replayed ---\n%s"
              m.R.seq m.R.expected m.R.actual)
          o.R.mismatches;
      if o.R.mismatched = 0 then begin
        Printf.printf "replay OK: %d/%d responses byte-identical\n" o.R.matched
          o.R.replayed;
        Ok ()
      end
      else
        Error
          (`Msg
            (Printf.sprintf "replay FAILED: %d of %d responses diverged"
               o.R.mismatched o.R.replayed))
  | exception (Failure msg | Sys_error msg) -> Error (`Msg msg)

let replay_cmd =
  let doc =
    "Re-execute a suu-serve request journal and verify responses \
     byte-for-byte."
  in
  let path =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"JOURNAL" ~doc:"Journal written by serve --journal.")
  in
  let sim_jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "sim-jobs" ] ~docv:"D"
          ~doc:"Domains for simulate re-execution (results are identical \
                for every value).")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "verbose" ]
          ~doc:"Print every compared frame pair, not only mismatches.")
  in
  Cmd.v
    (Cmd.info "replay" ~doc)
    Term.(term_result (const replay $ path $ sim_jobs $ verbose))

(* --- store --- *)

let store_env_var = "SUU_STORE"

let store_stats dir =
  let dir =
    match dir with
    | Some d -> Ok d
    | None -> (
        match Sys.getenv_opt store_env_var with
        | Some d when d <> "" -> Ok d
        | _ ->
            Error
              (`Msg
                (Printf.sprintf "no store directory: pass --dir or set %s"
                   store_env_var)))
  in
  match dir with
  | Error _ as e -> e
  | Ok d -> (
      match Suu_store.Result_store.open_store d with
      | s ->
          let st = Suu_store.Result_store.stats s in
          Suu_store.Result_store.close s;
          Printf.printf "dir %s\n" d;
          Printf.printf "keys %d\n" st.Suu_store.Result_store.keys;
          Printf.printf "records %d\n" st.Suu_store.Result_store.records;
          Printf.printf "reps %d\n" st.Suu_store.Result_store.reps;
          Printf.printf "file_bytes %d\n" st.Suu_store.Result_store.file_bytes;
          Ok ()
      | exception (Failure msg | Sys_error msg) -> Error (`Msg msg))

let store_cmd =
  let doc = "Inspect the durable result store." in
  let dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"Store directory (default: the SUU_STORE environment \
                variable).")
  in
  let stats_cmd =
    Cmd.v
      (Cmd.info "stats"
         ~doc:
           "Print key/record/replication counts and the log size (runs \
            torn-tail recovery first).")
      Term.(term_result (const store_stats $ dir))
  in
  Cmd.group (Cmd.info "store" ~doc) [ stats_cmd ]

(* --- workload: SWF trace inspection and conversion --- *)

let workload_inspect file =
  match Suu_workload.Swf.load_file file with
  | exception (Failure msg | Sys_error msg) -> Error (`Msg msg)
  | trace ->
      let module Swf = Suu_workload.Swf in
      List.iter
        (fun (k, v) -> Printf.printf "; %s: %s\n" k v)
        trace.Swf.directives;
      let st = Swf.stats trace in
      Printf.printf "jobs %d\n" st.Swf.n_jobs;
      Printf.printf "users %d\n" st.Swf.n_users;
      Printf.printf "span_sec %g\n" st.Swf.span;
      Printf.printf "max_procs %d\n" st.Swf.max_procs;
      Printf.printf "mean_procs %.3g\n" st.Swf.mean_procs;
      Printf.printf "mean_runtime_sec %.6g\n" st.Swf.mean_runtime;
      Printf.printf "max_runtime_sec %.6g\n" st.Swf.max_runtime;
      Ok ()

let workload_convert file out m max_width seed =
  let module Swf = Suu_workload.Swf in
  match Swf.load_file file with
  | exception (Failure msg | Sys_error msg) -> Error (`Msg msg)
  | trace -> (
      try
        if not (Sys.file_exists out) then Unix.mkdir out 0o755
        else if not (Sys.is_directory out) then
          failwith (out ^ " exists and is not a directory");
        let mapping =
          { Swf.default_mapping with m; max_width; seed }
        in
        let pairs = Swf.instances ~mapping trace in
        Array.iter
          (fun ((job : Swf.job), inst) ->
            let path =
              Filename.concat out (Printf.sprintf "job%04d.suu" job.Swf.id)
            in
            Suu_core.Instance_io.save_file path inst)
          pairs;
        Printf.printf "converted %d jobs -> %s (m=%d max-width=%d seed=%d)\n"
          (Array.length pairs) out m max_width seed;
        Ok ()
      with
      | Failure msg | Sys_error msg -> Error (`Msg msg)
      | Unix.Unix_error (e, fn, arg) ->
          Error (`Msg (Printf.sprintf "%s %s: %s" fn arg (Unix.error_message e))))

let workload_cmd =
  let doc = "Inspect and convert Standard Workload Format traces." in
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE" ~doc:"SWF trace file.")
  in
  let inspect_cmd =
    Cmd.v
      (Cmd.info "inspect"
         ~doc:
           "Print the trace's header directives and summary statistics \
            (jobs, users, span, processor and runtime distributions).")
      Term.(term_result (const workload_inspect $ file))
  in
  let out =
    Arg.(
      value
      & opt string "swf-out"
      & info [ "out"; "o" ] ~docv:"DIR"
          ~doc:"Output directory for the converted instances (created if \
                missing).")
  in
  let m =
    Arg.(
      value
      & opt int Suu_workload.Swf.default_mapping.Suu_workload.Swf.m
      & info [ "m"; "machines" ] ~docv:"M"
          ~doc:"Machines per generated instance.")
  in
  let max_width =
    Arg.(
      value
      & opt int Suu_workload.Swf.default_mapping.Suu_workload.Swf.max_width
      & info [ "max-width" ] ~docv:"N"
          ~doc:"Cap on sub-jobs per instance (allocated processors above \
                this are clamped).")
  in
  let seed =
    Arg.(
      value
      & opt int 0
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Master seed for the trace-to-instance mapping; the \
                conversion is a deterministic function of (trace, options).")
  in
  let convert_cmd =
    Cmd.v
      (Cmd.info "convert"
         ~doc:
           "Map every trace job to a SUU instance (runtime-calibrated \
            failure matrix, processor-count width, per-user DAG template) \
            and save them as .suu files, one per job.  Deterministic: the \
            same trace and options always produce byte-identical files.")
      Term.(
        term_result
          (const workload_convert $ file $ out $ m $ max_width $ seed))
  in
  Cmd.group (Cmd.info "workload" ~doc) [ inspect_cmd; convert_cmd ]

(* --- client --- *)

let action_conv =
  Arg.enum
    [
      ("describe", `Describe);
      ("lower-bound", `Lower_bound);
      ("plan", `Plan);
      ("simulate", `Simulate);
      ("stats", `Stats);
    ]

let client action host port policy reps seed deadline_ms full retries
    timeout_ms shape hazard n m load save =
  let module C = Suu_server.Client in
  let module P = Suu_server.Protocol in
  let instance () = obtain_instance load shape hazard n m seed save in
  (* The stats reply carries the whole observability registry under
     "obs." keys — per-phase latency quantiles, engine counters, plan
     cache.  That firehose drowns the classic summary, so it is hidden
     unless --full asks for it. *)
  let wanted (k, _) =
    full || not (String.length k >= 4 && String.sub k 0 4 = "obs.")
  in
  (* Retry/timeout/reconnect counters live in THIS process's registry —
     the server cannot count replies the network lost — so stats --full
     appends them to the server's snapshot, under a prefix that says
     whose counters they are. *)
  let local_client_obs () =
    if not full then []
    else
      List.filter_map
        (fun (k, v) ->
          let pfx = "obs.counter.client." in
          let lp = String.length pfx in
          if String.length k >= lp && String.sub k 0 lp = pfx then
            Some ("local." ^ k, v)
          else None)
        (Suu_obs.Registry.render ())
  in
  try
    let body =
      match action with
      | `Describe -> P.Describe (instance ())
      | `Lower_bound -> P.Lower_bound (instance ())
      | `Plan -> P.Plan { inst = instance (); policy; seed }
      | `Simulate -> P.Simulate { inst = instance (); policy; reps; seed }
      | `Stats -> P.Stats
    in
    let c = C.connect ~host ~port ~retries ?timeout_ms () in
    Fun.protect
      ~finally:(fun () -> C.close c)
      (fun () ->
        match C.call c ?deadline_ms body with
        | P.Ok { fields; _ } ->
            List.iter
              (fun (k, v) -> Printf.printf "%s %s\n" k v)
              (List.filter wanted fields @ local_client_obs ());
            Ok ()
        | P.Err { code; message; _ } ->
            Error
              (`Msg
                (Printf.sprintf "server error [%s]: %s"
                   (P.error_code_to_string code)
                   message)))
  with
  | Unix.Unix_error (e, _, _) ->
      Error
        (`Msg
          (Printf.sprintf "cannot reach %s:%d: %s" host port
             (Unix.error_message e)))
  | C.Protocol_failure msg -> Error (`Msg msg)
  | Failure msg | Invalid_argument msg | Sys_error msg -> Error (`Msg msg)

let client_cmd =
  let doc = "Send one request to a running suu-serve daemon." in
  let action =
    Arg.(
      required
      & pos 0 (some action_conv) None
      & info [] ~docv:"ACTION"
          ~doc:"One of: describe, lower-bound, plan, simulate, stats.")
  in
  let policy =
    Arg.(
      value & opt string "auto"
      & info [ "policy" ] ~docv:"NAME"
          ~doc:"Policy for plan/simulate (auto picks by instance shape).")
  in
  let deadline =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Per-request deadline override in milliseconds.")
  in
  let full =
    Arg.(
      value & flag
      & info [ "full" ]
          ~doc:
            "For stats: include the full observability snapshot (obs.* \
             counters and per-phase latency quantiles, plus this \
             client's own local.obs.counter.client.* resilience \
             counters), hidden by default.")
  in
  let retries =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retry transient failures (transport errors, torn frames, \
             timeouts, internal/overloaded replies) up to N extra times \
             with capped exponential backoff.")
  in
  let timeout =
    Arg.(
      value
      & opt (some int) None
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:"Per-attempt response timeout in milliseconds.")
  in
  Cmd.v
    (Cmd.info "client" ~doc)
    Term.(
      term_result
        (const client $ action $ host_arg $ port_arg ~default:7483 $ policy
        $ reps $ seed $ deadline $ full $ retries $ timeout $ shape $ hazard
        $ n_jobs $ n_machines $ load_arg $ save_arg))

let () =
  let doc = "multiprocessor scheduling under uncertainty (SPAA 2008)" in
  let info = Cmd.info "suu" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            describe_cmd; simulate_cmd; policies_cmd; optimal_cmd; stoch_cmd;
            gantt_cmd; serve_cmd; router_cmd; client_cmd; replay_cmd;
            store_cmd; workload_cmd;
          ]))
