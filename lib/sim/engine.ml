module Instance = Suu_core.Instance
module Policy = Suu_core.Policy

exception Invalid_schedule of string
exception Horizon_exceeded of int

type result = {
  makespan : int;
  busy_steps : int;
  wasted_steps : int;
  idle_steps : int;
}

(* Completion uses a tolerance *relative* to the threshold: the accrued
   mass is a sum of floats of the threshold's magnitude, so its roundoff
   scales with w_j — an absolute epsilon under-completes for large w_j.
   [1.0] floors the scale so tiny thresholds keep the old behaviour. *)
let completion_slack w = 1e-12 *. Float.max 1.0 w

(* Telemetry is recorded per *run*, never per step: two clock reads and a
   handful of batched counter adds bound the overhead regardless of the
   makespan.  Counters are lazy so the registry entry only appears once a
   simulation actually ran in this process. *)
let c_runs = lazy (Suu_obs.Registry.counter "engine.runs")
let c_steps = lazy (Suu_obs.Registry.counter "engine.steps")
let c_busy = lazy (Suu_obs.Registry.counter "engine.busy_steps")
let c_wasted = lazy (Suu_obs.Registry.counter "engine.wasted_steps")
let c_idle = lazy (Suu_obs.Registry.counter "engine.idle_steps")

let run ?(cap = 4_000_000) ?on_step inst policy ~trace ~rng =
  let obs = Suu_obs.Registry.enabled () in
  let t_start = if obs then Suu_obs.Clock.now_ns () else 0L in
  let n = Instance.n inst in
  let m = Instance.m inst in
  if Trace.n trace <> n then invalid_arg "Engine.run: trace size mismatch";
  let g = Instance.dag inst in
  let remaining = Array.make n true in
  let mass = Array.make n 0.0 in
  let completed = Array.make n false in
  let w = Array.init n (Trace.threshold trace) in
  let w_lo = Array.map (fun x -> x -. completion_slack x) w in
  let left = ref n in
  (* Zero thresholds (r_j = 1) complete with no work at all. *)
  for j = 0 to n - 1 do
    if w.(j) <= 0.0 then begin
      remaining.(j) <- false;
      completed.(j) <- true;
      decr left
    end
  done;
  (* Incremental eligibility: count each job's uncompleted predecessors
     once; decrement on completion and promote at zero.  No O(n) rescans
     after this point. *)
  let pred_off, pred_tgt = Suu_dag.Dag.pred_csr g in
  let succ_off, succ_tgt = Suu_dag.Dag.succ_csr g in
  let npred = Array.make n 0 in
  let eligible = Array.make n false in
  for j = 0 to n - 1 do
    let c = ref 0 in
    for k = pred_off.(j) to pred_off.(j + 1) - 1 do
      if not completed.(pred_tgt.(k)) then incr c
    done;
    npred.(j) <- !c;
    eligible.(j) <- remaining.(j) && !c = 0
  done;
  let complete j =
    remaining.(j) <- false;
    completed.(j) <- true;
    eligible.(j) <- false;
    decr left;
    for k = succ_off.(j) to succ_off.(j + 1) - 1 do
      let s = succ_tgt.(k) in
      npred.(s) <- npred.(s) - 1;
      if npred.(s) = 0 && remaining.(s) then eligible.(s) <- true
    done
  in
  let stepper = Policy.fresh policy (Suu_prng.Rng.split rng) in
  let busy = ref 0 and wasted = ref 0 and idle = ref 0 in
  let time = ref 0 in
  (* Scratch for jobs that gained mass this step: at most one push per
     machine, reused across steps (no per-step list cells). *)
  let touched = Array.make (max m 1) 0 in
  let t_init = if obs then Suu_obs.Clock.now_ns () else 0L in
  while !left > 0 do
    if !time >= cap then raise (Horizon_exceeded cap);
    let a = stepper ~time:!time ~remaining ~eligible in
    (match on_step with
    | Some f -> f ~time:!time ~assignment:a
    | None -> ());
    if Array.length a <> m then
      raise
        (Invalid_schedule
           (Printf.sprintf "%s: assignment has %d entries for %d machines"
              (Policy.name policy) (Array.length a) m));
    let ntouched = ref 0 in
    for i = 0 to m - 1 do
      let j = a.(i) in
      if j = -1 then incr idle
      else if j < 0 || j >= n then
        raise
          (Invalid_schedule
             (Printf.sprintf "%s: machine %d assigned to bad job %d"
                (Policy.name policy) i j))
      else if not remaining.(j) then incr wasted
      else if not eligible.(j) then
        raise
          (Invalid_schedule
             (Printf.sprintf
                "%s: machine %d assigned to ineligible job %d at step %d"
                (Policy.name policy) i j !time))
      else begin
        incr busy;
        if mass.(j) < w.(j) then begin
          mass.(j) <- mass.(j) +. Instance.log_failure inst i j;
          touched.(!ntouched) <- j;
          incr ntouched
        end
      end
    done;
    (* Completions take effect at the end of the unit step. *)
    for k = 0 to !ntouched - 1 do
      let j = touched.(k) in
      if remaining.(j) && mass.(j) >= w_lo.(j) then complete j
    done;
    incr time
  done;
  if obs then begin
    let t_done = Suu_obs.Clock.now_ns () in
    Suu_obs.Span.record ~name:"engine.init" ~start_ns:t_start ~stop_ns:t_init
      ();
    Suu_obs.Span.record ~name:"engine.exec" ~start_ns:t_init ~stop_ns:t_done
      ();
    Suu_obs.Counter.incr (Lazy.force c_runs);
    Suu_obs.Counter.add (Lazy.force c_steps) !time;
    Suu_obs.Counter.add (Lazy.force c_busy) !busy;
    Suu_obs.Counter.add (Lazy.force c_wasted) !wasted;
    Suu_obs.Counter.add (Lazy.force c_idle) !idle
  end;
  { makespan = !time; busy_steps = !busy; wasted_steps = !wasted;
    idle_steps = !idle }

let makespan ?cap inst policy ~trace ~rng =
  (run ?cap inst policy ~trace ~rng).makespan

let run_recorded ?cap inst policy ~trace ~rng =
  let rows = ref [] in
  let on_step ~time:_ ~assignment = rows := Array.copy assignment :: !rows in
  let result = run ?cap ~on_step inst policy ~trace ~rng in
  (result, Array.of_list (List.rev !rows))
