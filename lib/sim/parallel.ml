let default_jobs () =
  match Sys.getenv_opt "SUU_JOBS" with
  | None | Some "" -> Domain.recommended_domain_count ()
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> j
      | _ ->
          invalid_arg
            (Printf.sprintf "SUU_JOBS must be a positive integer, got %S" s))

(* Chunked dynamic scheduling over [0, n): workers claim chunk indices
   from a shared atomic counter, so uneven per-item costs (simulations
   whose makespans differ wildly) still balance.  [local] builds one
   worker-private state per domain (policies are not domain-safe to
   share mid-execution); the body writes only to disjoint result slots,
   so no further synchronization is needed. *)
let c_items = lazy (Suu_obs.Registry.counter "parallel.items")

let run_chunks ~jobs ~chunk ~n ~local body =
  if n > 0 then begin
    let obs = Suu_obs.Registry.enabled () in
    let jobs = max 1 (min jobs n) in
    if jobs = 1 then begin
      let t0 = if obs then Suu_obs.Clock.now_ns () else 0L in
      let st = local () in
      for i = 0 to n - 1 do
        body st i
      done;
      if obs then begin
        Suu_obs.Counter.add (Lazy.force c_items) n;
        Suu_obs.Span.record ~name:"parallel.worker"
          ~attrs:[ ("items", string_of_int n) ]
          ~start_ns:t0
          ~stop_ns:(Suu_obs.Clock.now_ns ())
          ()
      end
    end
    else begin
      let chunk = max 1 chunk in
      let nchunks = ((n + chunk - 1) / chunk) in
      let next = Atomic.make 0 in
      (* Spawned domains start with no ambient span; re-root their
         per-worker spans under the caller's so a trace shows the fan-out
         nested inside whatever phase requested it. *)
      let parent = Suu_obs.Span.current () in
      let worker () =
        let run () =
          let t0 = if obs then Suu_obs.Clock.now_ns () else 0L in
          let st = local () in
          let mine = ref 0 in
          let rec loop () =
            let c = Atomic.fetch_and_add next 1 in
            if c < nchunks then begin
              let lo = c * chunk in
              let hi = min n (lo + chunk) in
              for i = lo to hi - 1 do
                body st i
              done;
              mine := !mine + (hi - lo);
              loop ()
            end
          in
          loop ();
          if obs then begin
            Suu_obs.Counter.add (Lazy.force c_items) !mine;
            Suu_obs.Span.record ~name:"parallel.worker" ?parent
              ~attrs:[ ("items", string_of_int !mine) ]
              ~start_ns:t0
              ~stop_ns:(Suu_obs.Clock.now_ns ())
              ()
          end
        in
        Suu_obs.Span.with_ambient parent run
      in
      let spawned = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
      (* Every spawned domain must be joined on every exit path.  If the
         caller's inline [worker ()] raises and we unwind without
         joining, the spawned domains keep running against buffers the
         caller believes it owns again — and their slots leak unjoined.
         The [finally] block therefore joins unconditionally, swallowing
         nothing: the first exception a join surfaces is kept and
         rethrown once the inline worker's own outcome is known (the
         inline exception, being first, wins). *)
      let join_failure = ref None in
      Fun.protect
        ~finally:(fun () ->
          List.iter
            (fun d ->
              try Domain.join d
              with e -> if !join_failure = None then join_failure := Some e)
            spawned)
        worker;
      match !join_failure with Some e -> raise e | None -> ()
    end
  end

(* Aim for several chunks per worker so the tail balances, without
   grinding the atomic counter on tiny items. *)
let auto_chunk ~jobs ~n = max 1 (n / (4 * jobs))

let parallel_for ?jobs ?chunk ~n f =
  let jobs = match jobs with Some j when j >= 1 -> j
    | Some _ -> invalid_arg "Parallel.parallel_for: jobs must be positive"
    | None -> default_jobs ()
  in
  let chunk =
    match chunk with Some c -> c | None -> auto_chunk ~jobs ~n
  in
  run_chunks ~jobs ~chunk ~n ~local:(fun () -> ()) (fun () i -> f i)

let parallel_map ?jobs ?chunk f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    (* Seed the result array from item 0 (computed on the caller's
       domain) to avoid an option-per-slot dance. *)
    let out = Array.make n (f a.(0)) in
    parallel_for ?jobs ?chunk ~n:(n - 1) (fun i ->
        out.(i + 1) <- f a.(i + 1));
    out
  end

let makespans ?cap ?domains inst ~policy ~seed ~reps =
  if reps <= 0 then invalid_arg "Parallel.makespans: reps must be positive";
  let jobs =
    match domains with
    | Some d when d <= 0 ->
        invalid_arg "Parallel.makespans: domains must be positive"
    | Some d -> min d reps
    | None -> min (default_jobs ()) reps
  in
  let rngs = Seeds.rep_rngs ~seed ~reps in
  let results = Array.make reps 0.0 in
  let n = Suu_core.Instance.n inst in
  run_chunks ~jobs ~chunk:(auto_chunk ~jobs ~n:reps) ~n:reps ~local:policy
    (fun pol k ->
      let trace_rng, policy_rng = rngs.(k) in
      let trace = Trace.draw ~n trace_rng in
      results.(k) <-
        float_of_int (Engine.makespan ?cap inst pol ~trace ~rng:policy_rng));
  results

let expected_makespan ?cap ?domains inst ~policy ~seed ~reps =
  let xs = makespans ?cap ?domains inst ~policy ~seed ~reps in
  Array.fold_left ( +. ) 0.0 xs /. float_of_int reps
