(** Canonical replication seeding, shared by {!Runner} and {!Parallel}.

    [rep_rngs ~seed ~reps] derives the per-replication
    [(trace_rng, policy_rng)] pairs from a master generator, in a fixed
    order: pair [k] is split off before pair [k + 1], trace generator
    before policy generator.

    Determinism contract: replication [k]'s pair is a function of
    [(seed, k)] alone — independent of [reps] — so run [k] sees the same
    trace whether the sweep asks for 10 replications or 10,000, and
    sequential and parallel runners agree bit for bit. *)

val rep_rngs :
  seed:int -> reps:int -> (Suu_prng.Rng.t * Suu_prng.Rng.t) array
(** Raises [Invalid_argument] on negative [reps]; [reps = 0] yields
    [[||]]. *)
