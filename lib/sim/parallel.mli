(** Multicore execution substrate (OCaml 5 domains, stdlib only).

    A small fork/join pool: each call spawns [jobs - 1] worker domains
    (the caller's domain is the first worker), partitions the index
    space into chunks, and lets workers claim chunks from a shared
    atomic counter — dynamic scheduling, so items with wildly uneven
    costs (simulated executions) still balance.

    The worker count defaults to the [SUU_JOBS] environment variable
    when set, else [Domain.recommended_domain_count ()]; every entry
    point takes an explicit override.

    Replications are embarrassingly parallel: each runs an independent
    trace.  {!makespans} fans the per-replication work of {!Runner} out
    over domains with bit-identical results: the per-replication
    generators come from {!Runner.rep_rngs}, each replication writes
    only its own result slot, so [makespans ~domains:k] equals the
    sequential run for every [k].

    Policies are created per domain through a factory, because a policy
    value may close over scratch buffers or caches that are cheaper to
    keep unshared (each domain then owns a private plan cache). *)

val default_jobs : unit -> int
(** [SUU_JOBS] when set (raises [Invalid_argument] if it is not a
    positive integer), else [Domain.recommended_domain_count ()]. *)

val parallel_for : ?jobs:int -> ?chunk:int -> n:int -> (int -> unit) -> unit
(** [parallel_for ~n f] runs [f 0 .. f (n - 1)] across [jobs] domains in
    chunks of [chunk] (default: a few chunks per worker).  [f] must be
    safe to run concurrently on distinct indices.  Exceptions raised by
    a worker are re-raised at the join; whichever worker raises, every
    spawned domain is joined before the exception escapes, so no domain
    outlives the call or leaks unjoined. *)

val parallel_map : ?jobs:int -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map f a] is [Array.map f a] across domains.  [f a.(0)]
    runs first on the caller's domain (it seeds the result array). *)

val makespans :
  ?cap:int ->
  ?domains:int ->
  Suu_core.Instance.t ->
  policy:(unit -> Suu_core.Policy.t) ->
  seed:int ->
  reps:int ->
  float array
(** [makespans inst ~policy ~seed ~reps] runs [reps] executions across
    [domains] domains (default: {!default_jobs}, capped at [reps]).
    [policy ()] is called once per domain.  Bit-identical to
    {!Runner.makespans} with the same seed.  Raises [Invalid_argument]
    on non-positive [reps] or [domains]. *)

val expected_makespan :
  ?cap:int ->
  ?domains:int ->
  Suu_core.Instance.t ->
  policy:(unit -> Suu_core.Policy.t) ->
  seed:int ->
  reps:int ->
  float
(** Mean of {!makespans}. *)
