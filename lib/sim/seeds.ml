(* Canonical per-replication generator derivation, shared by the
   sequential Runner and the multicore Parallel runner so both see
   identical traces.

   Determinism contract: generators are split off the master in an
   explicit loop (trace rng before policy rng, replication order) —
   Array.init's effect order is unspecified, so it is not used here.
   Replication [k]'s pair depends only on [(seed, k)], never on [reps]:
   extending a sweep from 10 to 100 replications re-runs the first 10
   on the exact same traces. *)
let rep_rngs ~seed ~reps =
  if reps < 0 then invalid_arg "Seeds.rep_rngs: negative reps";
  if reps = 0 then [||]
  else begin
    let master = Suu_prng.Rng.create ~seed in
    let draw_pair () =
      let trace_rng = Suu_prng.Rng.split master in
      let policy_rng = Suu_prng.Rng.split master in
      (trace_rng, policy_rng)
    in
    let pairs = Array.make reps (draw_pair ()) in
    for k = 1 to reps - 1 do
      pairs.(k) <- draw_pair ()
    done;
    pairs
  end
