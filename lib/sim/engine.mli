(** The discrete-time SUU* execution engine.

    Drives a {!Suu_core.Policy.t} step by step over a fixed {!Trace.t}:
    at each unit step the policy's assignment adds
    [l_ij = -log2 q_ij] of log mass to each assigned job; a job completes
    once its mass reaches its threshold (up to a roundoff tolerance
    *relative* to the threshold, since the accrued sum's error scales
    with [w_j]).  The engine enforces the model's rules strictly —
    assigning an uncompleted, ineligible job raises {!Invalid_schedule} —
    and records utilization counters.

    Eligibility is tracked incrementally: each job carries a
    remaining-predecessor counter (seeded from the dag's packed CSR
    adjacency) that is decremented when a predecessor completes, so a
    completion costs O(out-degree), not an O(n) rescan. *)

exception Invalid_schedule of string
(** A policy violated the model (ineligible assignment, bad job index). *)

exception Horizon_exceeded of int
(** The execution passed the step cap without completing (a policy
    liveness bug, or a cap chosen too small). *)

type result = {
  makespan : int;  (** steps until the last job completed *)
  busy_steps : int;  (** machine-steps spent on uncompleted jobs *)
  wasted_steps : int;
      (** machine-steps assigned to already-completed jobs (the paper
          allows these; they count toward load but do no work) *)
  idle_steps : int;  (** machine-steps explicitly idle *)
}

val run :
  ?cap:int ->
  ?on_step:(time:int -> assignment:int array -> unit) ->
  Suu_core.Instance.t -> Suu_core.Policy.t -> trace:Trace.t ->
  rng:Suu_prng.Rng.t -> result
(** [run inst policy ~trace ~rng] executes one schedule to completion.
    [rng] seeds the policy's private randomness (it is split, so the
    caller's generator stays independent).  [cap] bounds the number of
    steps (default [4_000_000]).  [on_step] observes each step's raw
    machine → job assignment before validation (the array is the
    policy's buffer: copy it if retained). *)

val makespan :
  ?cap:int -> Suu_core.Instance.t -> Suu_core.Policy.t -> trace:Trace.t ->
  rng:Suu_prng.Rng.t -> int
(** [makespan] is [run]'s makespan alone. *)

val run_recorded :
  ?cap:int -> Suu_core.Instance.t -> Suu_core.Policy.t -> trace:Trace.t ->
  rng:Suu_prng.Rng.t -> result * int array array
(** [run_recorded] also returns the full step-by-step assignment matrix
    (one row per step, one entry per machine, [-1] = idle), ready for
    {!Gantt.render}. *)
