let rep_rngs = Seeds.rep_rngs

let makespans ?cap ?jobs inst policy ~seed ~reps =
  if reps <= 0 then invalid_arg "Runner.makespans: reps must be positive";
  let rngs = rep_rngs ~seed ~reps in
  let results = Array.make reps 0.0 in
  let n = Suu_core.Instance.n inst in
  (* Replications fan out over domains; each writes only its own slot
     and rngs.(k) is private to replication k, so results are
     bit-identical to a sequential loop in replication order. *)
  Parallel.parallel_for ?jobs ~n:reps (fun k ->
      let trace_rng, policy_rng = rngs.(k) in
      let trace = Trace.draw ~n trace_rng in
      results.(k) <-
        float_of_int (Engine.makespan ?cap inst policy ~trace ~rng:policy_rng));
  results

let expected_makespan ?cap ?jobs inst policy ~seed ~reps =
  let xs = makespans ?cap ?jobs inst policy ~seed ~reps in
  Array.fold_left ( +. ) 0.0 xs /. float_of_int reps

let ratio_to_bound ?cap ?jobs inst policy ~bound ~seed ~reps =
  expected_makespan ?cap ?jobs inst policy ~seed ~reps
  /. Float.max bound 1e-9
