(** Replication harness: repeated executions over independent traces.

    Seeds are derived deterministically (see {!Seeds}), so any experiment
    is reproducible from [(instance, policy, seed, reps)]; when several
    policies are run with the same seed they see *identical* traces
    (paired comparison, as in the paper's offline/online argument).

    Replications run across [jobs] domains (default {!Parallel.default_jobs},
    i.e. [SUU_JOBS] or the machine's core count).  The fan-out is
    bit-identical to a sequential loop: replication [k] always draws
    trace and policy randomness from the pair [Seeds.rep_rngs].(k),
    regardless of [jobs] or [reps].  The one shared value is [policy]
    itself: its [fresh] steppers run concurrently, which every policy in
    this repository supports (per-execution state lives in the stepper;
    policy-level caches and stats sinks are lock-protected).  Pass
    [~jobs:1] to force a single-domain run. *)

val makespans :
  ?cap:int -> ?jobs:int -> Suu_core.Instance.t -> Suu_core.Policy.t ->
  seed:int -> reps:int -> float array
(** [makespans inst policy ~seed ~reps] runs [reps] independent
    executions and returns their makespans, in replication order. *)

val expected_makespan :
  ?cap:int -> ?jobs:int -> Suu_core.Instance.t -> Suu_core.Policy.t ->
  seed:int -> reps:int -> float
(** Mean of {!makespans}. *)

val ratio_to_bound :
  ?cap:int -> ?jobs:int -> Suu_core.Instance.t -> Suu_core.Policy.t ->
  bound:float -> seed:int -> reps:int -> float
(** [ratio_to_bound inst policy ~bound] is
    [expected_makespan / max bound 1e-9] — the measured approximation
    ratio against a lower bound. *)

val rep_rngs :
  seed:int -> reps:int -> (Suu_prng.Rng.t * Suu_prng.Rng.t) array
(** [rep_rngs ~seed ~reps] is {!Seeds.rep_rngs}: the per-replication
    [(trace_rng, policy_rng)] pairs in the canonical order — shared with
    {!Parallel} so parallel and sequential runs see identical traces.
    Replication [k]'s pair depends only on [(seed, k)], never on [reps]
    (run [k] sees the same trace however many replications follow). *)
