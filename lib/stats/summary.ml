type t = {
  n : int;
  mean : float;
  stddev : float;
  ci95 : float;
  min : float;
  max : float;
}

let check_no_nan name xs =
  Array.iter
    (fun x -> if Float.is_nan x then invalid_arg (name ^ ": NaN in sample"))
    xs

let of_array xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Summary.of_array: empty";
  check_no_nan "Summary.of_array" xs;
  (* Welford's online mean/variance. *)
  let mean = ref 0.0 and m2 = ref 0.0 in
  let mn = ref xs.(0) and mx = ref xs.(0) in
  Array.iteri
    (fun i x ->
      let k = float_of_int (i + 1) in
      let delta = x -. !mean in
      mean := !mean +. (delta /. k);
      m2 := !m2 +. (delta *. (x -. !mean));
      if x < !mn then mn := x;
      if x > !mx then mx := x)
    xs;
  let var = if n > 1 then !m2 /. float_of_int (n - 1) else 0.0 in
  let stddev = sqrt var in
  let ci95 =
    if n > 1 then 1.96 *. stddev /. sqrt (float_of_int n) else Float.nan
  in
  { n; mean = !mean; stddev; ci95; min = !mn; max = !mx }

let of_list xs = of_array (Array.of_list xs)

let mean xs =
  if Array.length xs = 0 then invalid_arg "Summary.mean: empty";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let quantile xs q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Summary.quantile: empty";
  if q < 0.0 || q > 1.0 then invalid_arg "Summary.quantile: q out of range";
  check_no_nan "Summary.quantile" xs;
  let sorted = Array.copy xs in
  (* Float.compare, not polymorphic compare: the latter gives an
     unspecified order in the presence of NaN (rejected above) and
     boxes every comparison. *)
  Array.sort Float.compare sorted;
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) in
  let hi = int_of_float (ceil pos) in
  if lo = hi then sorted.(lo)
  else
    let w = pos -. float_of_int lo in
    ((1.0 -. w) *. sorted.(lo)) +. (w *. sorted.(hi))

let pp fmt t =
  Format.fprintf fmt "%.4g ± %.2g (n=%d)" t.mean t.ci95 t.n
