(** Summary statistics for experiment replications. *)

type t = {
  n : int;  (** number of samples *)
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator) *)
  ci95 : float;  (** normal-approximation 95% half-width of the mean *)
  min : float;
  max : float;
}

val of_array : float array -> t
(** [of_array xs] summarizes [xs].  Raises [Invalid_argument] on an empty
    array or on a sample containing NaN (e.g. the [ci95] of an [n = 1]
    summary fed back in).  Uses Welford's single-pass algorithm for
    numerical stability. *)

val of_list : float list -> t

val mean : float array -> float
(** [mean xs] is the arithmetic mean. *)

val quantile : float array -> float -> float
(** [quantile xs q] is the [q]-quantile of [xs] for [q] in [0,1], by linear
    interpolation between order statistics.  Does not mutate [xs].
    Raises [Invalid_argument] if [xs] is empty, [q] is out of range, or
    the sample contains NaN. *)

val pp : Format.formatter -> t -> unit
(** [pp fmt t] prints ["mean ± ci95 (n=..)"]. *)
