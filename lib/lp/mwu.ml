type solution = {
  x : float array array;
  value : float;
  lower_bound : float;
}

let min_load_cover ~a ~m ~n ~targets ~eps =
  if eps <= 0.0 || eps > 0.5 then invalid_arg "Mwu: eps must be in (0, 0.5]";
  if Array.length targets <> n then invalid_arg "Mwu: bad targets length";
  (* Normalized gains: a' i j covers one unit of job j's demand. *)
  let support = Array.make n [] in
  let gain = Array.init m (fun _ -> Array.make n 0.0) in
  for j = 0 to n - 1 do
    if targets.(j) <= 0.0 then invalid_arg "Mwu: targets must be positive";
    for i = 0 to m - 1 do
      let aij = a i j in
      if aij < 0.0 then invalid_arg "Mwu: negative gain";
      if aij > 0.0 then begin
        gain.(i).(j) <- aij /. targets.(j);
        support.(j) <- i :: support.(j)
      end
    done;
    if support.(j) = [] then invalid_arg "Mwu: job with empty support"
  done;
  let support = Array.map Array.of_list support in
  let fm = float_of_int m in
  let delta = (1.0 +. eps) /. (((1.0 +. eps) *. fm) ** (1.0 /. eps)) in
  let w = Array.make m delta in
  let total = ref (delta *. fm) in
  let x = Array.init m (fun _ -> Array.make n 0.0) in
  let cheapest j =
    let sup = support.(j) in
    let best = ref sup.(0) in
    for k = 1 to Array.length sup - 1 do
      let i = sup.(k) in
      (* Cost of one unit of coverage via machine i is w_i / gain_ij. *)
      if w.(i) /. gain.(i).(j) < w.(!best) /. gain.(!best).(j) then best := i
    done;
    !best
  in
  (* Weak-duality certificate.  For the dual of the min-load cover
       maximize  sum_j T_j z_j
       s.t.      a_ij z_j <= y_i,  sum_i y_i <= 1,  y, z >= 0
     any positive weight vector yields a feasible point: take
     y_i = w_i / sum w and z_j = min_i y_i / a_ij, so the dual value
       sum_j T_j z_j = (sum_j min_{i in supp j} w_i / gain_ij) / sum w
     is a lower bound on the optimal load — unconditionally, whatever
     the weights.  Evaluated at every phase boundary (the weights move
     within a phase, and the mid-run duals are often the tightest); the
     best one becomes the certificate. *)
  let dual_bound () =
    let acc = ref 0.0 in
    for j = 0 to n - 1 do
      let sup = support.(j) in
      let best = ref (w.(sup.(0)) /. gain.(sup.(0)).(j)) in
      for k = 1 to Array.length sup - 1 do
        let i = sup.(k) in
        let c = w.(i) /. gain.(i).(j) in
        if c < !best then best := c
      done;
      acc := !acc +. !best
    done;
    !acc /. !total
  in
  let lower_bound = ref (dual_bound ()) in
  (* Phases: route one unit of (normalized) coverage per job per phase. *)
  while !total < 1.0 do
    let j = ref 0 in
    while !j < n && !total < 1.0 do
      let rem = ref 1.0 in
      while !rem > 1e-12 && !total < 1.0 do
        let i = cheapest !j in
        let g = gain.(i).(!j) in
        let u = Float.min 1.0 (!rem /. g) in
        x.(i).(!j) <- x.(i).(!j) +. u;
        rem := !rem -. (u *. g);
        let bump = eps *. u *. w.(i) in
        w.(i) <- w.(i) +. bump;
        total := !total +. bump
      done;
      incr j
    done;
    let lb = dual_bound () in
    if lb > !lower_bound then lower_bound := lb
  done;
  (* Scale to feasibility: first undo the GK overcounting, then normalize
     the least-covered job to its target. *)
  let scale = log (1.0 /. delta) /. log (1.0 +. eps) in
  let min_cov = ref infinity in
  for j = 0 to n - 1 do
    let cov = ref 0.0 in
    Array.iter (fun i -> cov := !cov +. (gain.(i).(j) *. x.(i).(j)))
      support.(j);
    let cov = !cov /. scale in
    if cov < !min_cov then min_cov := cov
  done;
  let factor = 1.0 /. (scale *. !min_cov) in
  let value = ref 0.0 in
  for i = 0 to m - 1 do
    let load = ref 0.0 in
    for j = 0 to n - 1 do
      x.(i).(j) <- x.(i).(j) *. factor;
      load := !load +. x.(i).(j)
    done;
    if !load > !value then value := !load
  done;
  { x; value = !value; lower_bound = !lower_bound }
