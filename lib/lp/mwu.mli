(** Width-independent multiplicative-weights solver for the min-load
    covering shape shared by (LP1) and the core of (LP2):

    {v
      minimize   t
      subject to sum_i a_ij * x_ij >= target_j   for every job j
                 sum_j x_ij        <= t           for every machine i
                 x_ij >= 0
    v}

    This is the fractional relaxation the paper solves with a black-box LP
    solver; here it is solved by the Garg–Könemann maximum-concurrent-flow
    scheme (each job is a commodity whose "paths" are single machines with
    gain [a_ij]), giving a [(1 + O(eps))]-approximation in
    [O(nm log(m) / eps^2)] time — the scalable alternative to the exact
    simplex for large instances (ablation A2 in DESIGN.md). *)

type solution = {
  x : float array array;  (** [x.(i).(j)]: steps of machine [i] on job [j] *)
  value : float;  (** the achieved load [max_i sum_j x.(i).(j)] *)
  lower_bound : float;
      (** a certified lower bound on the {e optimal} load, obtained by
          weak duality from the multiplicative weights: any positive
          weight vector induces a feasible dual point, so
          [lower_bound <= optimum <= value] holds unconditionally — the
          ratio [value /. lower_bound] is a per-solve verified
          optimality gap, not an asymptotic promise. *)
}

val min_load_cover :
  a:(int -> int -> float) ->
  m:int ->
  n:int ->
  targets:float array ->
  eps:float ->
  solution
(** [min_load_cover ~a ~m ~n ~targets ~eps] returns a strictly feasible
    fractional assignment covering every job [j] with
    [sum_i a i j * x.(i).(j) >= targets.(j)] whose load is within a
    [1 + O(eps)] factor of optimal.

    Requirements: [0 < eps <= 0.5]; [targets.(j) > 0] and at least one
    machine with [a i j > 0] for every job [j]; all [a i j >= 0].
    Raises [Invalid_argument] otherwise. *)
