type var = int
type sense = Le | Ge | Eq

type row = { terms : (var * float) array; sense : sense; rhs : float }

type t = {
  pname : string;
  mutable nvars : int;
  mutable obj : float array; (* grows; dense objective *)
  mutable rows : row list; (* reversed *)
  mutable nrows : int;
}

let create ?(name = "lp") () =
  { pname = name; nvars = 0; obj = Array.make 16 0.0; rows = []; nrows = 0 }

let name t = t.pname

let ensure_obj_capacity t n =
  let cap = Array.length t.obj in
  if n > cap then begin
    let fresh = Array.make (max n (2 * cap)) 0.0 in
    Array.blit t.obj 0 fresh 0 cap;
    t.obj <- fresh
  end

let add_var ?name:_ ?(obj = 0.0) t =
  let v = t.nvars in
  t.nvars <- v + 1;
  ensure_obj_capacity t t.nvars;
  t.obj.(v) <- obj;
  v

let add_vars ?(obj = 0.0) t k =
  Array.init k (fun _ -> add_var ~obj t)

let set_obj t v c =
  if v < 0 || v >= t.nvars then invalid_arg "Problem.set_obj: bad var";
  t.obj.(v) <- c

(* Merge duplicate variables in a term list.  The common case — terms
   already distinct — must stay cheap: constraint construction is on
   the plan-building hot path, so the hash-merge only runs when a sort
   actually reveals a duplicate. *)
let normalize_terms t terms =
  let arr = Array.of_list terms in
  let len = Array.length arr in
  Array.iter
    (fun (v, _) ->
      if v < 0 || v >= t.nvars then
        invalid_arg "Problem.add_constraint: variable out of range")
    arr;
  let sorted = ref true in
  for i = 1 to len - 1 do
    if fst arr.(i - 1) >= fst arr.(i) then sorted := false
  done;
  if !sorted then arr
  else begin
    Array.sort (fun (a, _) (b, _) -> compare a b) arr;
    let dup = ref false in
    for i = 1 to len - 1 do
      if fst arr.(i - 1) = fst arr.(i) then dup := true
    done;
    if not !dup then arr
    else begin
      (* In-place adjacent merge over the sorted copy. *)
      let out = ref 0 in
      for i = 1 to len - 1 do
        let v, c = arr.(i) in
        let v0, c0 = arr.(!out) in
        if v = v0 then arr.(!out) <- (v0, c0 +. c)
        else begin
          incr out;
          arr.(!out) <- (v, c)
        end
      done;
      Array.sub arr 0 (!out + 1)
    end
  end

let add_constraint ?name:_ t terms sense rhs =
  let terms = normalize_terms t terms in
  t.rows <- { terms; sense; rhs } :: t.rows;
  t.nrows <- t.nrows + 1

let num_vars t = t.nvars
let num_constraints t = t.nrows

let objective_value t x =
  let acc = ref 0.0 in
  for v = 0 to t.nvars - 1 do
    acc := !acc +. (t.obj.(v) *. x.(v))
  done;
  !acc

let row_value terms x =
  Array.fold_left (fun acc (v, c) -> acc +. (c *. x.(v))) 0.0 terms

let constraint_violation t x =
  let worst = ref 0.0 in
  for v = 0 to t.nvars - 1 do
    if x.(v) < 0.0 then worst := Float.max !worst (-.x.(v))
  done;
  List.iter
    (fun { terms; sense; rhs } ->
      let lhs = row_value terms x in
      let viol =
        match sense with
        | Le -> lhs -. rhs
        | Ge -> rhs -. lhs
        | Eq -> Float.abs (lhs -. rhs)
      in
      if viol > !worst then worst := viol)
    t.rows;
  !worst

let iter_constraints t f =
  List.iter (fun { terms; sense; rhs } -> f terms sense rhs) (List.rev t.rows)

let objective t = Array.sub t.obj 0 t.nvars
