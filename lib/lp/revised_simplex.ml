let eps = 1e-9
let feas_tol = 1e-7

(* Columns are stored sparse (row indices + values): SUU's LPs have
   2-3 nonzeros per structural column, so pricing and column updates
   over a dense rows x cols matrix would spend two orders of magnitude
   more memory traffic than the arithmetic needs.  The basis matrix
   and B⁻¹ stay dense — they are rows x rows, which is small. *)
type standard = {
  rows : int;
  cols : int;
  col_rows : int array array; (* per column: rows of its nonzeros *)
  col_vals : float array array; (* per column: the coefficients *)
  b : float array; (* rhs >= 0 *)
  c2 : float array; (* phase-2 costs *)
  nstruct : int;
  first_artificial : int;
  basis : int array;
}

(* Standard form: [structural | slack/surplus | artificial] columns with
   an identity initial basis (slack for <=, artificial for >= and =). *)
let standardize problem =
  let nstruct = Problem.num_vars problem in
  let rows = Problem.num_constraints problem in
  let n_slack = ref 0 and n_art = ref 0 in
  Problem.iter_constraints problem (fun _ sense rhs ->
      let sense =
        if rhs < 0.0 then
          match sense with
          | Problem.Le -> Problem.Ge
          | Problem.Ge -> Problem.Le
          | Problem.Eq -> Problem.Eq
        else sense
      in
      match sense with
      | Problem.Le -> incr n_slack
      | Problem.Ge ->
          incr n_slack;
          incr n_art
      | Problem.Eq -> incr n_art);
  let first_artificial = nstruct + !n_slack in
  let cols = first_artificial + !n_art in
  (* Count structural nonzeros per column, then fill with cursors. *)
  let nnz = Array.make cols 0 in
  Problem.iter_constraints problem (fun terms _ _ ->
      Array.iter (fun (v, _) -> nnz.(v) <- nnz.(v) + 1) terms);
  for j = nstruct to cols - 1 do
    nnz.(j) <- 1
  done;
  let col_rows = Array.init cols (fun j -> Array.make nnz.(j) 0) in
  let col_vals = Array.init cols (fun j -> Array.make nnz.(j) 0.0) in
  let cursor = Array.make cols 0 in
  let b = Array.make rows 0.0 in
  let basis = Array.make rows (-1) in
  let c2 = Array.make cols 0.0 in
  Array.blit (Problem.objective problem) 0 c2 0 nstruct;
  let slack_next = ref nstruct and art_next = ref first_artificial in
  let r = ref 0 in
  Problem.iter_constraints problem (fun terms sense rhs ->
      let flip = rhs < 0.0 in
      Array.iter
        (fun (v, coeff) ->
          let i = cursor.(v) in
          cursor.(v) <- i + 1;
          col_rows.(v).(i) <- !r;
          col_vals.(v).(i) <- (if flip then -.coeff else coeff))
        terms;
      b.(!r) <- (if flip then -.rhs else rhs);
      let sense =
        if flip then
          match sense with
          | Problem.Le -> Problem.Ge
          | Problem.Ge -> Problem.Le
          | Problem.Eq -> Problem.Eq
        else sense
      in
      let unit_col j v =
        col_rows.(j).(0) <- !r;
        col_vals.(j).(0) <- v
      in
      (match sense with
      | Problem.Le ->
          unit_col !slack_next 1.0;
          basis.(!r) <- !slack_next;
          incr slack_next
      | Problem.Ge ->
          unit_col !slack_next (-1.0);
          incr slack_next;
          unit_col !art_next 1.0;
          basis.(!r) <- !art_next;
          incr art_next
      | Problem.Eq ->
          unit_col !art_next 1.0;
          basis.(!r) <- !art_next;
          incr art_next);
      incr r);
  (* A structural variable can appear in several constraints; the same
     variable twice in ONE constraint was merged by Problem.  Columns
     are filled in row order, so col_rows is sorted — nothing to fix. *)
  { rows; cols; col_rows; col_vals; b; c2; nstruct; first_artificial; basis }

(* Recompute B^-1 from the basis columns by Gauss-Jordan with partial
   pivoting; returns false if the basis matrix is (numerically)
   singular. *)
let refactorize st binv =
  let k = st.rows in
  let work = Array.init k (fun _ -> Array.make k 0.0) in
  for c = 0 to k - 1 do
    let j = st.basis.(c) in
    let rows_j = st.col_rows.(j) and vals_j = st.col_vals.(j) in
    for i = 0 to Array.length rows_j - 1 do
      work.(rows_j.(i)).(c) <- vals_j.(i)
    done
  done;
  for r = 0 to k - 1 do
    for c = 0 to k - 1 do
      binv.(r).(c) <- (if r = c then 1.0 else 0.0)
    done
  done;
  let ok = ref true in
  for col = 0 to k - 1 do
    if !ok then begin
      let pivot = ref col in
      for r = col + 1 to k - 1 do
        if Float.abs work.(r).(col) > Float.abs work.(!pivot).(col) then
          pivot := r
      done;
      if Float.abs work.(!pivot).(col) < 1e-12 then ok := false
      else begin
        if !pivot <> col then begin
          let t = work.(col) in
          work.(col) <- work.(!pivot);
          work.(!pivot) <- t;
          let t = binv.(col) in
          binv.(col) <- binv.(!pivot);
          binv.(!pivot) <- t
        end;
        let inv = 1.0 /. work.(col).(col) in
        for c = 0 to k - 1 do
          work.(col).(c) <- work.(col).(c) *. inv;
          binv.(col).(c) <- binv.(col).(c) *. inv
        done;
        for r = 0 to k - 1 do
          if r <> col then begin
            let f = work.(r).(col) in
            if Float.abs f > 0.0 then begin
              for c = 0 to k - 1 do
                work.(r).(c) <- work.(r).(c) -. (f *. work.(col).(c));
                binv.(r).(c) <- binv.(r).(c) -. (f *. binv.(col).(c))
              done
            end
          end
        done
      end
    end
  done;
  !ok

type phase_result = Opt | Unbounded_dir | Iters_exhausted

let solve_basis ?max_iters ?basis problem =
  let st = standardize problem in
  let k = st.rows in
  let binv = Array.init k (fun r -> Array.init k (fun c -> if r = c then 1.0 else 0.0)) in
  let is_basic = Array.make st.cols false in
  Array.iter (fun j -> is_basic.(j) <- true) st.basis;
  let budget =
    match max_iters with
    | Some b -> b
    | None -> max 100_000 (50 * (st.rows + st.cols))
  in
  let bland_after = 10 * (st.rows + st.cols) in
  let iters = ref 0 in
  let xb = Array.make k 0.0 in
  let compute_xb () =
    for r = 0 to k - 1 do
      let acc = ref 0.0 in
      for c = 0 to k - 1 do
        acc := !acc +. (binv.(r).(c) *. st.b.(c))
      done;
      xb.(r) <- !acc
    done
  in
  let y = Array.make k 0.0 in
  let compute_y cost =
    for c = 0 to k - 1 do
      let acc = ref 0.0 in
      for r = 0 to k - 1 do
        acc := !acc +. (cost st.basis.(r) *. binv.(r).(c))
      done;
      y.(c) <- !acc
    done
  in
  let reduced cost j =
    let acc = ref (cost j) in
    let rows_j = st.col_rows.(j) and vals_j = st.col_vals.(j) in
    for i = 0 to Array.length rows_j - 1 do
      acc := !acc -. (y.(rows_j.(i)) *. vals_j.(i))
    done;
    !acc
  in
  let u = Array.make k 0.0 in
  let compute_u j =
    Array.fill u 0 k 0.0;
    let rows_j = st.col_rows.(j) and vals_j = st.col_vals.(j) in
    for i = 0 to Array.length rows_j - 1 do
      let c = rows_j.(i) and v = vals_j.(i) in
      for r = 0 to k - 1 do
        u.(r) <- u.(r) +. (binv.(r).(c) *. v)
      done
    done
  in
  let pivot_update ~leave ~enter =
    let d = u.(leave) in
    let inv = 1.0 /. d in
    for c = 0 to k - 1 do
      binv.(leave).(c) <- binv.(leave).(c) *. inv
    done;
    for r = 0 to k - 1 do
      if r <> leave then begin
        let f = u.(r) in
        if Float.abs f > 0.0 then
          for c = 0 to k - 1 do
            binv.(r).(c) <- binv.(r).(c) -. (f *. binv.(leave).(c))
          done
      end
    done;
    is_basic.(st.basis.(leave)) <- false;
    is_basic.(enter) <- true;
    st.basis.(leave) <- enter
  in
  let run_phase cost ~limit =
    let rec loop () =
      if !iters >= budget then Iters_exhausted
      else begin
        if !iters mod 64 = 63 then ignore (refactorize st binv);
        compute_y cost;
        let bland = !iters > bland_after in
        (* entering column *)
        let enter = ref (-1) and best = ref (-.eps) in
        (try
           for j = 0 to limit - 1 do
             if not is_basic.(j) then begin
               let rc = reduced cost j in
               if bland then begin
                 if rc < -.eps then begin
                   enter := j;
                   raise Exit
                 end
               end
               else if rc < !best then begin
                 best := rc;
                 enter := j
               end
             end
           done
         with Exit -> ());
        if !enter < 0 then Opt
        else begin
          compute_u !enter;
          compute_xb ();
          let leave = ref (-1) and best_ratio = ref infinity in
          for r = 0 to k - 1 do
            if u.(r) > eps then begin
              let ratio = Float.max 0.0 xb.(r) /. u.(r) in
              if
                ratio < !best_ratio -. eps
                || (ratio < !best_ratio +. eps
                   && !leave >= 0
                   && st.basis.(r) < st.basis.(!leave))
              then begin
                best_ratio := ratio;
                leave := r
              end
            end
          done;
          if !leave < 0 then Unbounded_dir
          else begin
            pivot_update ~leave:!leave ~enter:!enter;
            incr iters;
            loop ()
          end
        end
      end
    in
    loop ()
  in
  (* Warm start: adopt the caller's basis when it is structurally sound
     (one column per row, in range, artificial-free, no repeats) and
     numerically nonsingular against THIS problem's constraint matrix.
     A basis carried over from a neighbouring problem (the previous
     target of a doubling sequence) is usually primal {e infeasible}
     here — the RHS and the clipped coefficients moved — so instead of
     rejecting it we run a composite phase 1 from it: pivot to shrink
     the total infeasibility sum(-xb | xb < 0) until the basis is
     feasible.  Near-optimal starts need a handful of such pivots where
     the cold two-phase path needs hundreds.  Every check and every
     pivot runs against the fresh standardization, so staleness can
     cost the repair attempt but never correctness; on any failure
     (singular, repair stalls, pivot cap) the cold identity start is
     restored and the usual two-phase path runs. *)
  let install b =
    Array.iter (fun j -> is_basic.(j) <- false) st.basis;
    Array.blit b 0 st.basis 0 k;
    Array.iter (fun j -> is_basic.(j) <- true) st.basis
  in
  let repair_feasibility () =
    (* Composite phase 1 from the current (nonsingular) basis.  With
       infeasible set I = { r | xb_r < -tol }, entering column j
       changes the infeasibility sum at rate s_j = sum_{r in I} u_rj
       (for xb := xb - t u); any j with s_j < 0 improves.  The step is
       blocked by the first feasible basic driven to 0 or the first
       infeasible basic crossing 0; both pivots keep the basis
       artificial-free.  Bounded by a pivot cap: a stall or cycle
       abandons the warm start rather than risking it. *)
    let w = Array.make k 0.0 in
    let max_pivots = 4 * k in
    let pivots = ref 0 in
    let verdict = ref None in
    while !verdict = None do
      compute_xb ();
      Array.fill w 0 k 0.0;
      let infeasible = ref false in
      for r = 0 to k - 1 do
        if xb.(r) < -.feas_tol then begin
          infeasible := true;
          for c = 0 to k - 1 do
            w.(c) <- w.(c) +. binv.(r).(c)
          done
        end
      done;
      if not !infeasible then verdict := Some true
      else if !pivots >= max_pivots then verdict := Some false
      else begin
        let enter = ref (-1) and best = ref (-.eps) in
        for j = 0 to st.first_artificial - 1 do
          if not is_basic.(j) then begin
            let s = ref 0.0 in
            let rows_j = st.col_rows.(j) and vals_j = st.col_vals.(j) in
            for i = 0 to Array.length rows_j - 1 do
              s := !s +. (w.(rows_j.(i)) *. vals_j.(i))
            done;
            if !s < !best then begin
              best := !s;
              enter := j
            end
          end
        done;
        if !enter < 0 then verdict := Some false
        else begin
          compute_u !enter;
          let leave = ref (-1) and best_ratio = ref infinity in
          for r = 0 to k - 1 do
            let ratio =
              if xb.(r) >= -.feas_tol then
                if u.(r) > eps then Float.max 0.0 xb.(r) /. u.(r)
                else infinity
              else if u.(r) < -.eps then xb.(r) /. u.(r)
              else infinity
            in
            if
              ratio < !best_ratio -. eps
              || (ratio < !best_ratio +. eps
                 && !leave >= 0
                 && st.basis.(r) < st.basis.(!leave))
            then begin
              best_ratio := ratio;
              leave := r
            end
          done;
          if !leave < 0 || !best_ratio = infinity then verdict := Some false
          else begin
            pivot_update ~leave:!leave ~enter:!enter;
            incr pivots
          end
        end
      end
    done;
    !verdict = Some true
  in
  let warm =
    match basis with
    | None -> false
    | Some b ->
        let sound =
          Array.length b = k
          &&
          let seen = Array.make st.first_artificial false in
          Array.for_all
            (fun j ->
              j >= 0 && j < st.first_artificial
              && (not seen.(j))
              && begin
                   seen.(j) <- true;
                   true
                 end)
            b
        in
        if not sound then false
        else begin
          let cold = Array.copy st.basis in
          install b;
          let ok =
            refactorize st binv
            && begin
                 compute_xb ();
                 Array.for_all (fun v -> v >= -.feas_tol) xb
                 || repair_feasibility ()
               end
          in
          if not ok then begin
            (* Restore the identity start: basis, flags and B⁻¹. *)
            install cold;
            for r = 0 to k - 1 do
              for c = 0 to k - 1 do
                binv.(r).(c) <- (if r = c then 1.0 else 0.0)
              done
            done
          end;
          ok
        end
  in
  let phase1_needed = (not warm) && st.first_artificial < st.cols in
  let c1 j = if j >= st.first_artificial then 1.0 else 0.0 in
  let feasible =
    if not phase1_needed then true
    else
      match run_phase c1 ~limit:st.cols with
      | Opt ->
          compute_xb ();
          let obj = ref 0.0 in
          for r = 0 to k - 1 do
            obj := !obj +. (c1 st.basis.(r) *. Float.max 0.0 xb.(r))
          done;
          if !obj > feas_tol then false
          else begin
            (* Expel zero-level artificial basics where possible. *)
            for r = 0 to k - 1 do
              if st.basis.(r) >= st.first_artificial then begin
                let found = ref (-1) in
                (try
                   for j = 0 to st.first_artificial - 1 do
                     if not is_basic.(j) then begin
                       compute_u j;
                       if Float.abs u.(r) > 1e-7 then begin
                         found := j;
                         raise Exit
                       end
                     end
                   done
                 with Exit -> ());
                if !found >= 0 then begin
                  compute_u !found;
                  pivot_update ~leave:r ~enter:!found
                end
              end
            done;
            true
          end
      | Unbounded_dir -> false
      | Iters_exhausted -> raise Exit
  in
  match
    if not feasible then (Simplex.Infeasible, None)
    else begin
      let c2 j = if j < st.cols then st.c2.(j) else 0.0 in
      match run_phase c2 ~limit:st.first_artificial with
      | Opt ->
          compute_xb ();
          let x = Array.make st.nstruct 0.0 in
          for r = 0 to k - 1 do
            let j = st.basis.(r) in
            if j < st.nstruct then x.(j) <- Float.max 0.0 xb.(r)
          done;
          (* Export the optimal basis only when it can seed a future warm
             start: a degenerate optimum may still carry a zero-level
             artificial, which no restart is allowed to trust. *)
          let out =
            if Array.exists (fun j -> j >= st.first_artificial) st.basis then
              None
            else Some (Array.copy st.basis)
          in
          (Simplex.Optimal { objective = Problem.objective_value problem x; x },
           out)
      | Unbounded_dir -> (Simplex.Unbounded, None)
      | Iters_exhausted -> (Simplex.Iteration_limit, None)
    end
  with
  | result -> result
  | exception Exit -> (Simplex.Iteration_limit, None)

let solve ?max_iters problem = fst (solve_basis ?max_iters problem)

let solve_exn ?max_iters problem =
  match solve ?max_iters problem with
  | Simplex.Optimal { objective; x } -> (objective, x)
  | Simplex.Infeasible -> failwith (Problem.name problem ^ ": infeasible")
  | Simplex.Unbounded -> failwith (Problem.name problem ^ ": unbounded")
  | Simplex.Iteration_limit ->
      failwith (Problem.name problem ^ ": iteration limit")
