(** Revised simplex with an explicit basis inverse.

    A second, structurally independent implementation of two-phase
    simplex: where {!Simplex} carries the full tableau through every
    pivot, this solver maintains only the basis inverse [B⁻¹] (updated by
    elementary eta transformations and periodically refactorized by
    Gauss–Jordan for numerical hygiene) and prices columns against the
    original constraint matrix.

    Since the paper's guarantees all flow through LP solutions
    (Lemmas 1, 2, 5, 6; the LL LP; LST), having two independent solvers
    lets the test suite differentially validate the critical substrate:
    both must agree on optimal values, feasibility and unboundedness for
    every randomized instance. *)

val solve : ?max_iters:int -> Problem.t -> Simplex.result
(** [solve p] optimizes [p] with the same contract as
    {!Simplex.solve} (identical result type; optimal values agree to
    numerical tolerance, though the optimal vertex may differ when the
    optimum is degenerate). *)

val solve_basis :
  ?max_iters:int -> ?basis:int array -> Problem.t ->
  Simplex.result * int array option
(** [solve_basis ?basis p] is {!solve} with optional warm starting.

    The basis argument is an opaque list of standard-form column
    indices, as returned by a previous [solve_basis] call on a problem
    with the {e same constraint structure} (same variables and
    constraints in the same insertion order — e.g. the previous target
    of a doubling sequence, where only the RHS and coefficient clipping
    move).  When the supplied basis is structurally valid, nonsingular
    against the new constraint matrix and primal feasible under the new
    RHS, phase 1 is skipped entirely and optimization resumes from it;
    otherwise the basis is discarded and the cold two-phase path runs —
    a stale or foreign basis can cost the warm-start attempt, never
    correctness.

    The second component of the result is the optimal basis to feed the
    next restart: [Some b] when the solve ended [Optimal] with an
    artificial-free basis, [None] otherwise. *)

val solve_exn : ?max_iters:int -> Problem.t -> float * float array
(** Like {!Simplex.solve_exn}. *)
