(* epoll with a select fallback; see reactor.mli for the contract. *)

external epoll_create : unit -> int = "suu_epoll_create"
external epoll_ctl : int -> int -> int -> int -> int = "suu_epoll_ctl"
external epoll_wait_raw : int -> int -> int array -> int = "suu_epoll_wait"

(* On Unix a file_descr is an immediate int; this is the same identity
   the stdlib's unixsupport uses internally. *)
external fd_int : Unix.file_descr -> int = "%identity"
external int_fd : int -> Unix.file_descr = "%identity"

(* epoll constants (asm-generic, stable ABI). *)
let epollin = 0x001
let epollout = 0x004
let epollerr = 0x008
let epollhup = 0x010
let ctl_add = 1
let ctl_del = 2
let ctl_mod = 3

type reg = { fd : Unix.file_descr; mutable read : bool; mutable write : bool }

type backend =
  | Epoll of { epfd : int; buf : int array }
  | Select

type event = { fd : Unix.file_descr; readable : bool; writable : bool }

type t = {
  backend : backend;
  regs : (int, reg) Hashtbl.t; (* keyed by the raw fd int *)
}

let max_events = 1024

let create () =
  let backend =
    match epoll_create () with
    | epfd when epfd >= 0 -> Epoll { epfd; buf = Array.make (2 * max_events) 0 }
    | _ -> Select
  in
  { backend; regs = Hashtbl.create 64 }

let backend t = match t.backend with Epoll _ -> "epoll" | Select -> "select"

let fd_count t = Hashtbl.length t.regs

let mask ~read ~write =
  (if read then epollin else 0) lor if write then epollout else 0

let ctl_exn t op fd events =
  match t.backend with
  | Select -> ()
  | Epoll { epfd; _ } ->
      if epoll_ctl epfd op (fd_int fd) events < 0 then
        raise (Unix.Unix_error (Unix.EINVAL, "Reactor.epoll_ctl", ""))

let add t fd ~read ~write =
  let key = fd_int fd in
  if Hashtbl.mem t.regs key then
    invalid_arg "Reactor.add: fd already registered";
  Hashtbl.replace t.regs key { fd; read; write };
  ctl_exn t ctl_add fd (mask ~read ~write)

let modify t fd ~read ~write =
  match Hashtbl.find_opt t.regs (fd_int fd) with
  | None -> invalid_arg "Reactor.modify: fd not registered"
  | Some r ->
      if r.read <> read || r.write <> write then begin
        r.read <- read;
        r.write <- write;
        ctl_exn t ctl_mod fd (mask ~read ~write)
      end

let remove t fd =
  let key = fd_int fd in
  if Hashtbl.mem t.regs key then begin
    Hashtbl.remove t.regs key;
    (* The kernel drops the registration on close anyway; an EBADF-ish
       failure here (fd already closed by a racing path) is benign. *)
    match t.backend with
    | Select -> ()
    | Epoll { epfd; _ } -> ignore (epoll_ctl epfd ctl_del (fd_int fd) 0)
  end

let wait_epoll t epfd buf ~timeout_ms =
  let rec go () =
    match epoll_wait_raw epfd timeout_ms buf with
    | -2 -> go () (* EINTR *)
    | n when n < 0 -> raise (Unix.Unix_error (Unix.EINVAL, "Reactor.wait", ""))
    | n ->
        let evs = ref [] in
        for i = n - 1 downto 0 do
          let key = buf.(2 * i) and bits = buf.((2 * i) + 1) in
          (* A registration can vanish between the kernel reporting the
             event and us mapping it back; skip stale fds. *)
          match Hashtbl.find_opt t.regs key with
          | None -> ()
          | Some _ ->
              let err = bits land (epollerr lor epollhup) <> 0 in
              evs :=
                { fd = int_fd key;
                  readable = err || bits land epollin <> 0;
                  writable = err || bits land epollout <> 0 }
                :: !evs
        done;
        !evs
  in
  go ()

let wait_select t ~timeout_ms =
  let rd, wr =
    Hashtbl.fold
      (fun _ r (rd, wr) ->
        ((if r.read then r.fd :: rd else rd),
         if r.write then r.fd :: wr else wr))
      t.regs ([], [])
  in
  let timeout =
    if timeout_ms < 0 then -1.0 else float_of_int timeout_ms /. 1000.0
  in
  let rec go () =
    match Unix.select rd wr [] timeout with
    | rds, wrs, _ ->
        let tbl = Hashtbl.create 16 in
        let put fd readable writable =
          let key = fd_int fd in
          match Hashtbl.find_opt tbl key with
          | Some e ->
              Hashtbl.replace tbl key
                { e with
                  readable = e.readable || readable;
                  writable = e.writable || writable }
          | None -> Hashtbl.add tbl key { fd; readable; writable }
        in
        List.iter (fun fd -> put fd true false) rds;
        List.iter (fun fd -> put fd false true) wrs;
        Hashtbl.fold (fun _ e acc -> e :: acc) tbl []
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let wait t ~timeout_ms =
  match t.backend with
  | Epoll { epfd; buf } -> wait_epoll t epfd buf ~timeout_ms
  | Select -> wait_select t ~timeout_ms
