(** Request execution, independent of sockets and threads.

    One service value is shared by every worker: it owns the
    instance-level cache that makes the daemon worth running — parsed
    instances are keyed by the digest of their canonical serialization,
    and each cached instance lazily materializes the policies requested
    against it, so repeated [plan]/[simulate] requests reuse the policy
    values and (for the SUU-I family) the LP plans memoized inside their
    {!Suu_core.Plan_cache}.  The cache is bounded with FIFO eviction,
    like the plan caches underneath it.

    Deadlines are enforced cooperatively: the deadline is checked
    before each phase of work, between replication batches of
    [simulate], and every 4096 engine steps of [plan], so an expired
    request returns a structured [timeout] error within a bounded
    amount of extra work rather than occupying a worker forever.
    Deadlines are absolute {e monotonic} instants ({!Suu_obs.Clock},
    nanoseconds), not wall-clock times: a wall-clock step (NTP, DST)
    must neither expire every queued request at once nor make one
    immortal.

    Determinism over the wire: for a fixed request body, the ok
    response is byte-identical across calls, worker interleavings and
    simulation-pool sizes — [simulate] replays
    {!Suu_sim.Runner.rep_rngs} replication seeding (replication [k]
    depends only on [(seed, k)]), and floats are rendered with
    [%.17g]. *)

type t

val create :
  ?instance_cache_capacity:int ->
  ?sim_jobs:int ->
  ?solver:Suu_core.Solver_choice.t ->
  ?extra_stats:(unit -> (string * string) list) ->
  ?clock_ns:(unit -> int64) ->
  metrics:Metrics.t ->
  unit ->
  t
(** [instance_cache_capacity] bounds the digest-keyed instance cache
    (default 64; [Invalid_argument] when < 1).  [sim_jobs] fixes the
    domain count used for [simulate] fan-out (default: the
    {!Suu_sim.Parallel} default, i.e. [SUU_JOBS] or the core count).
    [solver] selects the LP backend every policy this service builds
    will use (default: the library default,
    {!Suu_core.Solver_choice.default}; servers pass their resolved
    choice — see the [solver] field of {!Server.config}).  It
    participates in plan identity,
    so services configured differently never share cached plans.
    [extra_stats] is appended to [stats] replies (the server adds queue
    depth and worker count).  [clock_ns] is the monotonic clock used
    for deadline checks (default {!Suu_obs.Clock.now_ns}; injectable so
    tests can freeze or advance it).  [metrics] is rendered into
    [stats] replies. *)

val policy_names : unit -> string list
(** Wire names accepted in [policy] fields: everything in
    {!Suu_core.Policy_registry} — [auto], the paper's LP policies, the
    Lin-Rajaraman baselines, and (once a service exists) the
    [Suu_sched] online family ([lzf], [backfill]). *)

val warm : t -> Protocol.body -> bool
(** Pre-populate the caches from one recovered request body without
    executing it: the instance enters the digest-keyed cache and, for
    [plan]/[simulate] bodies, the named policy is materialized against
    the cached instance.  Returns [true] when the body contributed to a
    cache ([false] only for [stats]).  Building a policy never consults
    its plan cache, so warm-starting cannot double-count the
    {!Suu_core.Plan_cache} hit/miss statistics — the
    [store.warm_start.loaded] counter records warm-start work
    instead. *)

val handle :
  t ->
  ?deadline:int64 ->
  Protocol.body ->
  ((string * string) list, Protocol.error_code * string) result
(** Execute one request body.  [deadline] is an absolute monotonic
    instant in nanoseconds on the service's [clock_ns] (by default
    {!Suu_obs.Clock.now_ns}).  [Ok fields] become the ok-response
    fields; [Error (code, message)] becomes a structured error reply
    ([Timeout] when the deadline expired, [Bad_request] for unknown or
    inapplicable policies and model violations).  Exceptions do not
    escape except through [Error]. *)
