module Instance_io = Suu_core.Instance_io
module Instance = Suu_core.Instance

type body =
  | Describe of Suu_core.Instance.t
  | Lower_bound of Suu_core.Instance.t
  | Plan of { inst : Suu_core.Instance.t; policy : string; seed : int }
  | Simulate of {
      inst : Suu_core.Instance.t;
      policy : string;
      reps : int;
      seed : int;
    }
  | Stats

type request = { id : string option; deadline_ms : int option; body : body }

type error_code = Parse | Bad_request | Overloaded | Timeout | Internal

type response =
  | Ok of {
      id : string option;
      rtype : string;
      fields : (string * string) list;
    }
  | Err of { id : string option; code : error_code; message : string }

exception Parse_error of { line : int; msg : string }

(* Parse-time resource caps: the parser is the network-facing surface,
   so a hostile frame must not be able to commit us to unbounded
   allocation before validation. *)
let max_reps = 1_000_000
let max_machines = 1024
let max_jobs = 65536
let max_cells = 1_000_000
let max_instance_lines = 300_000

let body_type = function
  | Describe _ -> "describe"
  | Lower_bound _ -> "lower_bound"
  | Plan _ -> "plan"
  | Simulate _ -> "simulate"
  | Stats -> "stats"

let error_code_to_string = function
  | Parse -> "parse"
  | Bad_request -> "bad_request"
  | Overloaded -> "overloaded"
  | Timeout -> "timeout"
  | Internal -> "internal"

let error_code_of_string = function
  | "parse" -> Some Parse
  | "bad_request" -> Some Bad_request
  | "overloaded" -> Some Overloaded
  | "timeout" -> Some Timeout
  | "internal" -> Some Internal
  | _ -> None

let parse_error_message ~line ~msg = Printf.sprintf "line %d: %s" line msg

let fail ~line msg = raise (Parse_error { line; msg })

(* One-line sanitization: field values and error messages must not be
   able to smuggle frame structure. *)
let one_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

(* --- writing --- *)

let request_header = "suu-request v1"
let response_header = "suu-response v1"

let add_field buf key value =
  Buffer.add_string buf key;
  if value <> "" then begin
    Buffer.add_char buf ' ';
    Buffer.add_string buf (one_line value)
  end;
  Buffer.add_char buf '\n'

let request_to_string r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf request_header;
  Buffer.add_char buf '\n';
  (match r.id with Some id -> add_field buf "id" id | None -> ());
  (match r.deadline_ms with
  | Some d -> add_field buf "deadline-ms" (string_of_int d)
  | None -> ());
  add_field buf "type" (body_type r.body);
  (match r.body with
  | Plan { policy; seed; _ } ->
      add_field buf "policy" policy;
      add_field buf "seed" (string_of_int seed)
  | Simulate { policy; reps; seed; _ } ->
      add_field buf "policy" policy;
      add_field buf "reps" (string_of_int reps);
      add_field buf "seed" (string_of_int seed)
  | Describe _ | Lower_bound _ | Stats -> ());
  (match r.body with
  | Describe inst | Lower_bound inst
  | Plan { inst; _ } | Simulate { inst; _ } ->
      Buffer.add_string buf "instance\n";
      Buffer.add_string buf (Instance_io.to_string inst)
  | Stats -> ());
  Buffer.add_string buf "done\n";
  Buffer.contents buf

let response_to_string = function
  | Ok { id; rtype; fields } ->
      let buf = Buffer.create 256 in
      Buffer.add_string buf response_header;
      Buffer.add_char buf '\n';
      (match id with Some id -> add_field buf "id" id | None -> ());
      add_field buf "status" "ok";
      add_field buf "type" rtype;
      List.iter (fun (k, v) -> add_field buf k v) fields;
      Buffer.add_string buf "done\n";
      Buffer.contents buf
  | Err { id; code; message } ->
      let buf = Buffer.create 128 in
      Buffer.add_string buf response_header;
      Buffer.add_char buf '\n';
      (match id with Some id -> add_field buf "id" id | None -> ());
      add_field buf "status" "error";
      add_field buf "code" (error_code_to_string code);
      add_field buf "message" message;
      Buffer.add_string buf "done\n";
      Buffer.contents buf

(* --- reading --- *)

(* Split a frame line into its key and the rest ("" when absent). *)
let split1 line =
  match String.index_opt line ' ' with
  | None -> (line, "")
  | Some i ->
      ( String.sub line 0 i,
        String.sub line (i + 1) (String.length line - i - 1) )

type cursor = { next_line : unit -> string option; mutable line : int }

let next cur =
  match cur.next_line () with
  | None -> None
  | Some l ->
      cur.line <- cur.line + 1;
      Some l

let next_or_fail cur what =
  match next cur with
  | Some l -> l
  | None -> fail ~line:(cur.line + 1) ("unexpected end of stream " ^ what)

let parse_int cur s what =
  match int_of_string_opt (String.trim s) with
  | Some v -> v
  | None ->
      fail ~line:cur.line
        (Printf.sprintf "%s: expected an integer, got %S" what s)

(* Read the embedded Instance_io block: the [instance] marker was just
   consumed at [marker] (frame-relative), so block line [k] is frame
   line [marker + k].  Failures inside {!Instance_io.of_string} carry
   their own block-relative line, which we relocate into the frame. *)
let read_instance cur =
  let marker = cur.line in
  let buf = Buffer.create 512 in
  let lines = ref 0 in
  let rec collect () =
    let l = next_or_fail cur "inside instance block (missing 'end')" in
    incr lines;
    if !lines > max_instance_lines then
      fail ~line:cur.line "instance block too large";
    Buffer.add_string buf l;
    Buffer.add_char buf '\n';
    if String.trim l <> "end" then collect ()
  in
  collect ();
  let relocate msg =
    let prefix = "Instance_io: line " in
    let plen = String.length prefix in
    let located =
      if String.length msg > plen && String.sub msg 0 plen = prefix then
        match String.index_from_opt msg plen ':' with
        | Some colon -> (
            match
              int_of_string_opt (String.sub msg plen (colon - plen))
            with
            | Some k ->
                let rest =
                  String.trim
                    (String.sub msg (colon + 1)
                       (String.length msg - colon - 1))
                in
                Some (marker + k, rest)
            | None -> None)
        | None -> None
      else None
    in
    match located with
    | Some (line, rest) -> fail ~line rest
    | None -> fail ~line:(marker + 1) msg
  in
  let inst =
    match Instance_io.of_string (Buffer.contents buf) with
    | inst -> inst
    | exception Failure msg -> relocate msg
    | exception Invalid_argument msg -> relocate msg
  in
  let m = Instance.m inst and n = Instance.n inst in
  if m > max_machines || n > max_jobs || m * n > max_cells then
    fail ~line:(marker + 1)
      (Printf.sprintf "instance too large (m=%d n=%d; caps: m<=%d n<=%d m*n<=%d)"
         m n max_machines max_jobs max_cells);
  inst

let request_types =
  [ "describe"; "lower_bound"; "plan"; "simulate"; "stats" ]

let read_request ~next_line =
  let cur = { next_line; line = 0 } in
  match next cur with
  | None -> None
  | Some header ->
      if String.trim header <> request_header then
        fail ~line:cur.line
          (Printf.sprintf "expected %S" request_header);
      let id = ref None
      and deadline = ref None
      and rtype = ref None
      and policy = ref None
      and reps = ref None
      and seed = ref None
      and inst = ref None in
      let set what r v =
        match !r with
        | Some _ -> fail ~line:cur.line ("duplicate field " ^ what)
        | None -> r := Some v
      in
      let rec loop () =
        let l = next_or_fail cur "inside request (missing 'done')" in
        match split1 l with
        | "done", "" -> ()
        | "id", v when v <> "" ->
            set "id" id v;
            loop ()
        | "deadline-ms", v ->
            let d = parse_int cur v "deadline-ms" in
            if d < 1 then fail ~line:cur.line "deadline-ms must be >= 1";
            set "deadline-ms" deadline d;
            loop ()
        | "type", v ->
            if not (List.mem v request_types) then
              fail ~line:cur.line
                (Printf.sprintf "unknown request type %S (have: %s)" v
                   (String.concat ", " request_types));
            set "type" rtype v;
            loop ()
        | "policy", v when v <> "" ->
            set "policy" policy v;
            loop ()
        | "reps", v ->
            let k = parse_int cur v "reps" in
            if k < 1 || k > max_reps then
              fail ~line:cur.line
                (Printf.sprintf "reps must be in [1, %d]" max_reps);
            set "reps" reps k;
            loop ()
        | "seed", v ->
            set "seed" seed (parse_int cur v "seed");
            loop ()
        | "instance", "" ->
            if !inst <> None then
              fail ~line:cur.line "duplicate field instance";
            inst := Some (read_instance cur);
            loop ()
        | key, _ ->
            fail ~line:cur.line
              (Printf.sprintf "unknown or malformed field %S" key)
      in
      loop ();
      let done_line = cur.line in
      let require what r =
        match !r with
        | Some v -> v
        | None ->
            fail ~line:done_line
              (Printf.sprintf "missing required field %s" what)
      in
      let require_inst ty =
        match !inst with
        | Some i -> i
        | None ->
            fail ~line:done_line
              (Printf.sprintf "%s requires an instance block" ty)
      in
      let body =
        match require "'type'" rtype with
        | "describe" -> Describe (require_inst "describe")
        | "lower_bound" -> Lower_bound (require_inst "lower_bound")
        | "plan" ->
            Plan
              {
                inst = require_inst "plan";
                policy = require "policy" policy;
                seed = Option.value !seed ~default:0;
              }
        | "simulate" ->
            Simulate
              {
                inst = require_inst "simulate";
                policy = require "policy" policy;
                reps = require "reps" reps;
                seed = Option.value !seed ~default:0;
              }
        | "stats" ->
            if !inst <> None then
              fail ~line:done_line "stats takes no instance block";
            Stats
        | _ -> assert false
      in
      Some { id = !id; deadline_ms = !deadline; body }

let read_response ~next_line =
  let cur = { next_line; line = 0 } in
  match next cur with
  | None -> None
  | Some header ->
      if String.trim header <> response_header then
        fail ~line:cur.line
          (Printf.sprintf "expected %S" response_header);
      let id = ref None in
      (* Header keys (id, status) come first; after [status ok] + [type]
         every line before [done] is a data field. *)
      let rec before_status () =
        let l = next_or_fail cur "inside response (missing 'status')" in
        match split1 l with
        | "id", v when v <> "" ->
            id := Some v;
            before_status ()
        | "status", "ok" -> ok_body ()
        | "status", "error" -> err_body None None
        | "status", v ->
            fail ~line:cur.line (Printf.sprintf "unknown status %S" v)
        | key, _ ->
            fail ~line:cur.line
              (Printf.sprintf "expected 'status', got %S" key)
      and ok_body () =
        let l = next_or_fail cur "inside response (missing 'type')" in
        match split1 l with
        | "type", v when v <> "" ->
            let rec fields acc =
              let l = next_or_fail cur "inside response (missing 'done')" in
              match split1 l with
              | "done", "" -> List.rev acc
              | k, v -> fields ((k, v) :: acc)
            in
            Ok { id = !id; rtype = v; fields = fields [] }
        | key, _ ->
            fail ~line:cur.line
              (Printf.sprintf "expected 'type', got %S" key)
      and err_body code message =
        let l = next_or_fail cur "inside response (missing 'done')" in
        match split1 l with
        | "done", "" -> (
            match (code, message) with
            | Some code, Some message -> Err { id = !id; code; message }
            | _ ->
                fail ~line:cur.line
                  "error response missing 'code' or 'message'")
        | "code", v -> (
            match error_code_of_string v with
            | Some c -> err_body (Some c) message
            | None ->
                fail ~line:cur.line
                  (Printf.sprintf "unknown error code %S" v))
        | "message", v -> err_body code (Some v)
        | key, _ ->
            fail ~line:cur.line
              (Printf.sprintf "unexpected field %S in error response" key)
      in
      Some (before_status ())

let skip_frame ~next_line =
  let rec loop () =
    match next_line () with
    | None -> ()
    | Some l -> if String.trim l <> "done" then loop ()
  in
  loop ()

(* --- whole-frame string parsing (journal recovery and replay) --- *)

let string_lines s =
  let lines = String.split_on_char '\n' s in
  (* A frame ends with "done\n"; split_on_char leaves one trailing ""
     for that final newline — drop it so it is not read as a line. *)
  let lines =
    match List.rev lines with "" :: tl -> List.rev tl | _ -> lines
  in
  let rem = ref lines in
  fun () ->
    match !rem with
    | [] -> None
    | l :: tl ->
        rem := tl;
        Some l

let request_of_string s =
  match read_request ~next_line:(string_lines s) with
  | r -> r
  | exception Parse_error _ -> None

let response_of_string s =
  match read_response ~next_line:(string_lines s) with
  | r -> r
  | exception Parse_error _ -> None

(* --- digest affinity --- *)

let instance_of_body = function
  | Describe inst | Lower_bound inst
  | Plan { inst; _ } | Simulate { inst; _ } -> Some inst
  | Stats -> None

let instance_digest body =
  match instance_of_body body with
  | None -> None
  | Some inst ->
      (* The canonical Instance_io rendering, not the raw wire bytes:
         two textually different frames describing the same instance
         hash alike, which is what keys the plan cache, the result
         store and shard routing consistently. *)
      Some (Digest.string (Suu_core.Instance_io.to_string inst))
