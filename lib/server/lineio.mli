(** Buffered, capped line IO over a file descriptor — shared by the
    server's connection readers and the client.

    [input_line] on a channel would almost do, but it neither caps line
    length (a hostile peer could grow one line without bound) nor
    survives a concurrent [shutdown] cleanly, and mixing channels with
    raw descriptors on one socket invites buffering bugs. *)

exception Line_too_long
(** A line exceeded the 8 MiB cap (larger than any legal frame line). *)

exception Read_timeout
(** The deadline passed with no complete line available (see
    {!next_line}'s [deadline_ns]). *)

type reader

val reader : Unix.file_descr -> reader

val next_line : ?deadline_ns:int64 -> reader -> string option
(** The next [\n]-terminated line, without the terminator (a trailing
    [\r] is stripped).  [None] at end of stream — including when a
    concurrent [shutdown] aborts a blocked read.  When [deadline_ns]
    (an absolute {!Suu_obs.Clock.now_ns} instant) is given, each read
    first waits for readability with [select] and raises
    {!Read_timeout} once the deadline passes — the client's per-request
    timeout.  Raises {!Line_too_long}. *)

val write_all : Unix.file_descr -> string -> unit
(** Write the whole string (looping over partial writes).  Raises
    [Unix.Unix_error] like [Unix.write]. *)
