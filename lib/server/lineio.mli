(** Buffered, capped line IO — shared by the event-loop server's
    per-connection parse buffers and the blocking client.

    [input_line] on a channel would almost do, but it neither caps line
    length (a hostile peer could grow one line without bound) nor
    survives a concurrent [shutdown] cleanly, and mixing channels with
    raw descriptors on one socket invites buffering bugs. *)

exception Line_too_long
(** A line exceeded the 8 MiB cap (larger than any legal frame line). *)

exception Read_timeout
(** The deadline passed with no complete line available (see
    {!next_line}'s [deadline_ns]). *)

val max_line : int

(** Incremental line splitter: bytes in, complete lines out.  This is
    the non-blocking half of the module — the reactor feeds it whatever
    a socket read returned and drains lines as they complete, so a
    frame split across arbitrary read boundaries reassembles exactly as
    it would from one contiguous read. *)
module Linebuf : sig
  type t

  val create : unit -> t

  val feed : t -> bytes -> int -> int -> unit
  (** [feed t buf off len] appends a chunk.  Raises {!Line_too_long} as
      soon as the unterminated tail exceeds {!max_line} — before
      buffering more of it. *)

  val next : t -> string option
  (** The next complete line, terminator removed and a trailing [\r]
      stripped; [None] when no full line is buffered (amortised O(1) —
      lines are split once, at {!feed} time). *)

  val take_rest : t -> string option
  (** The unterminated tail, if any, consumed — what a final line
      missing its [\n] looks like at EOF.  Call only after {!next}
      returns [None] at end of stream. *)

  val buffered : t -> int
  (** Bytes held (complete lines + partial tail), for backpressure
      accounting. *)
end

type reader

val reader : Unix.file_descr -> reader

val reader_of_fn : (bytes -> int -> int -> int) -> reader
(** A reader over an arbitrary read function with [Unix.read]'s
    contract (fill [buf.[off..off+len)], return bytes read, 0 at EOF,
    may raise [Unix.Unix_error]).  Test hook: lets tests script exact
    read-boundary splits and transient errors such as [EINTR] without a
    socket.  [deadline_ns] is ignored for function-backed readers. *)

val next_line : ?deadline_ns:int64 -> reader -> string option
(** The next [\n]-terminated line, without the terminator (a trailing
    [\r] is stripped).  [None] at end of stream — including when a
    concurrent [shutdown] aborts a blocked read.  Interrupted reads
    ([EINTR]) are retried; they do not discard buffered input.  When
    [deadline_ns] (an absolute {!Suu_obs.Clock.now_ns} instant) is
    given, each read first waits for readability with [select] and
    raises {!Read_timeout} once the deadline passes — the client's
    per-request timeout.  Raises {!Line_too_long}. *)

val write_all : Unix.file_descr -> string -> unit
(** Write the whole string (looping over partial writes).  Raises
    [Unix.Unix_error] like [Unix.write]. *)
