module P = Protocol
module Journal = Suu_store.Journal

type config = {
  host : string;
  port : int;
  workers : int;
  queue_capacity : int;
  default_deadline_ms : int;
  sim_jobs : int option;
  solver : Suu_core.Solver_choice.t option;
  faults : Faults.config option;
  journal : string option;
  clock_ns : unit -> int64;
}

let default_config =
  { host = "127.0.0.1"; port = 0; workers = 4; queue_capacity = 64;
    default_deadline_ms = 30_000; sim_jobs = None; solver = None;
    faults = None; journal = None; clock_ns = Suu_obs.Clock.now_ns }

let solver_env_var = "SUU_SOLVER"

(* Solver resolution, like [SUU_FAULTS]/[SUU_JOURNAL]: the config field
   wins; then the environment; then the serve-path default (certified
   MWU with automatic simplex fallback) — NOT the library default, which
   stays on the exact simplex for offline work.  A malformed env spec is
   a startup error, not a silently-misconfigured server. *)
let solver config =
  match config.solver with
  | Some s -> s
  | None -> (
      match Sys.getenv_opt solver_env_var with
      | None | Some "" -> Suu_core.Solver_choice.serve_default
      | Some spec -> (
          match Suu_core.Solver_choice.of_string spec with
          | Ok s -> s
          | Error msg ->
              invalid_arg
                (Printf.sprintf "Server.start: bad %s: %s" solver_env_var msg)))

let journal_env_var = "SUU_JOURNAL"

(* Like [SUU_FAULTS]: the config field wins; the environment arms any
   deployment without a flag; empty means off. *)
let journal_path config =
  match config.journal with
  | Some "" -> None
  | Some _ as p -> p
  | None -> (
      match Sys.getenv_opt journal_env_var with
      | Some "" | None -> None
      | Some p -> Some p)

(* --- connection plumbing --- *)

type conn = { fd : Unix.file_descr; wlock : Mutex.t }

(* Replies from workers and readers interleave on one socket; the write
   lock keeps frames whole.  A vanished peer is not an error worth
   propagating — the request's effect is simply dropped. *)
let send conn resp =
  Mutex.lock conn.wlock;
  (try Lineio.write_all conn.fd (P.response_to_string resp)
   with Unix.Unix_error _ -> ());
  Mutex.unlock conn.wlock

type job = {
  req : P.request;
  conn : conn;
  arrival : float; (* wall clock, for the latency metric only *)
  deadline : int64; (* absolute monotonic ns on [cfg.clock_ns] *)
  root : Suu_obs.Span.id;
      (* span id of the request's root; phase spans recorded from the
         reader and worker threads all parent to it *)
  start_ns : int64; (* first line of the frame (monotonic) *)
  enq_ns : int64; (* when the job entered the queue *)
  jseq : int; (* journal sequence number (0 when no journal is armed) *)
}

type t = {
  cfg : config;
  lfd : Unix.file_descr;
  bound_port : int;
  queue : job Bqueue.t;
  service : Service.t;
  metrics : Metrics.t;
  faults : Faults.t option;
  journal : Journal.t option;
  jseq : int Atomic.t;
  started : float;
  stopping : bool Atomic.t;
  mutable accept_thread : Thread.t option;
  mutable worker_threads : Thread.t list;
  conns : (int, conn * Thread.t) Hashtbl.t;
  conns_lock : Mutex.t;
  mutable next_conn : int;
  stop_lock : Mutex.t;
  mutable stopped : bool;
}

let port t = t.bound_port

let observe t ~rtype ~code ~arrival =
  Metrics.observe t.metrics ~rtype ~code
    ~latency:(Unix.gettimeofday () -. arrival)

(* --- workers --- *)

(* Close out a request's root span: [server.request] spans (one per
   request, any outcome) carry the end-to-end latency histogram in the
   registry, next to the per-phase children. *)
let finish_root job ~rtype ~code ~stop_ns =
  Suu_obs.Span.record ~id:job.root
    ~attrs:
      [ ("type", rtype); ("code", Option.value code ~default:"ok") ]
    ~name:"server.request" ~start_ns:job.start_ns ~stop_ns ()

(* Reply delivery, possibly perturbed by fault injection.  The fast
   path (no injector configured) is a single option match in front of
   [send]; with an injector armed, a reply can be delayed, dropped,
   replaced by a spurious [Internal] error, or cut mid-frame (a partial
   response line followed by a socket shutdown — the torn-frame case
   retrying clients must survive). *)
let deliver t job resp =
  match t.faults with
  | None -> send job.conn resp
  | Some f -> (
      let fate = Faults.reply_fate f in
      (match fate.Faults.delay_s with
      | Some d -> Thread.delay d
      | None -> ());
      match fate.Faults.outcome with
      | Faults.Deliver -> send job.conn resp
      | Faults.Drop -> ()
      | Faults.Error ->
          send job.conn
            (P.Err
               { id = job.req.P.id; code = P.Internal;
                 message = "injected fault" })
      | Faults.Kill ->
          let conn = job.conn in
          Mutex.lock conn.wlock;
          (try Lineio.write_all conn.fd "suu-response v1\nstatus ok\n"
           with Unix.Unix_error _ -> ());
          Mutex.unlock conn.wlock;
          (try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL
           with Unix.Unix_error _ -> ()))

(* Journal the response before it goes on the wire: if the record is
   durable, {!Replay} can later hold the server to it; if the process
   dies in between, recovery sees a request without a response — the
   honest statement of what is known. *)
let journal_response t (job : job) resp =
  match t.journal with
  | None -> ()
  | Some j -> (
      (* A response append that fails (disk full, volume gone) degrades
         to a journal entry with no response — replay reports it as
         skipped — rather than costing a worker. *)
      try Journal.log_response j ~seq:job.jseq (P.response_to_string resp)
      with Sys_error _ | Unix.Unix_error _ -> ())

let process t job =
  let t_pop = Suu_obs.Clock.now_ns () in
  Suu_obs.Span.record ~parent:job.root ~name:"server.queue_wait"
    ~start_ns:job.enq_ns ~stop_ns:t_pop ();
  let id = job.req.P.id in
  let rtype = P.body_type job.req.P.body in
  (* Queue expiry on the monotonic clock: wall time spent queued is
     irrelevant (and steppable); only monotonic elapsed time counts. *)
  if Int64.compare (t.cfg.clock_ns ()) job.deadline > 0 then begin
    observe t ~rtype ~code:(Some "timeout") ~arrival:job.arrival;
    let resp =
      P.Err { id; code = P.Timeout; message = "deadline exceeded in queue" }
    in
    journal_response t job resp;
    deliver t job resp;
    finish_root job ~rtype ~code:(Some "timeout")
      ~stop_ns:(Suu_obs.Clock.now_ns ())
  end
  else begin
    (match t.faults with Some f -> Faults.maybe_crash f | None -> ());
    let result =
      Suu_obs.Span.with_ambient (Some job.root) (fun () ->
          Suu_obs.Span.with_span "server.execute" (fun () ->
              try Service.handle t.service ~deadline:job.deadline job.req.P.body
              with e ->
                Result.Error
                  (P.Internal, "unexpected exception: " ^ Printexc.to_string e)))
    in
    let code, resp =
      match result with
      | Result.Ok fields -> (None, P.Ok { id; rtype; fields })
      | Result.Error (ec, message) ->
          (Some (P.error_code_to_string ec), P.Err { id; code = ec; message })
    in
    observe t ~rtype ~code ~arrival:job.arrival;
    journal_response t job resp;
    let t_w0 = Suu_obs.Clock.now_ns () in
    deliver t job resp;
    let t_done = Suu_obs.Clock.now_ns () in
    Suu_obs.Span.record ~parent:job.root ~name:"server.write" ~start_ns:t_w0
      ~stop_ns:t_done ();
    finish_root job ~rtype ~code ~stop_ns:t_done
  end

let c_worker_restarts = lazy (Suu_obs.Registry.counter "server.worker.restarts")

(* Crash isolation: an exception escaping [process] (a handler bug, or
   an injected crash) must cost the client one request, not the server
   one worker.  The thread answers with an [Internal] error, counts the
   restart and keeps draining the queue — a pool-size-preserving
   restart.  The known hazard: a crash between [send] and the handler's
   return could leave the client a reply AND an error for one id;
   clients match ids, so the stray frame is dropped on reconnect. *)
let worker_loop t () =
  let rec loop () =
    match Bqueue.pop t.queue with
    | None -> () (* closed and drained: graceful exit *)
    | Some job ->
        (try process t job
         with e ->
           Suu_obs.Counter.incr (Lazy.force c_worker_restarts);
           let rtype = P.body_type job.req.P.body in
           Printf.eprintf "suu-serve: worker crashed on %s request (%s); restarting\n%!"
             rtype (Printexc.to_string e);
           observe t ~rtype ~code:(Some "internal") ~arrival:job.arrival;
           let resp =
             P.Err
               { id = job.req.P.id; code = P.Internal;
                 message = "worker crashed: " ^ Printexc.to_string e }
           in
           journal_response t job resp;
           send job.conn resp;
           finish_root job ~rtype ~code:(Some "internal")
             ~stop_ns:(Suu_obs.Clock.now_ns ()));
        loop ()
  in
  loop ()

(* --- connection readers --- *)

let handle_conn t conn =
  let rd = Lineio.reader conn.fd in
  (* A request's wall clock starts when its first line arrives, not when
     [read_request] is called — the reader blocks on idle connections, and
     that idle time is not part of any request.  The wrapper stamps the
     first line of each frame. *)
  let frame_start = ref 0L in
  let next_line () =
    let line = Lineio.next_line rd in
    if Int64.equal !frame_start 0L then
      frame_start := Suu_obs.Clock.now_ns ();
    line
  in
  let rec loop () =
    frame_start := 0L;
    match P.read_request ~next_line with
    | None -> ()
    | Some req ->
        let arrival = Unix.gettimeofday () in
        let t_parsed = Suu_obs.Clock.now_ns () in
        let start_ns =
          if Int64.equal !frame_start 0L then t_parsed else !frame_start
        in
        let root = Suu_obs.Span.fresh_id () in
        Suu_obs.Span.record ~parent:root ~name:"server.parse" ~start_ns
          ~stop_ns:t_parsed ();
        let ms =
          match req.P.deadline_ms with
          | Some d -> d
          | None -> t.cfg.default_deadline_ms
        in
        let jseq =
          match t.journal with
          | None -> 0
          | Some _ -> Atomic.fetch_and_add t.jseq 1
        in
        let job =
          { req; conn; arrival;
            deadline =
              Int64.add (t.cfg.clock_ns ())
                (Int64.mul (Int64.of_int ms) 1_000_000L);
            root; start_ns; enq_ns = t_parsed; jseq }
        in
        (* Write-ahead: the request is durable before it is offered to
           the queue, so an admitted request survives a [kill -9] even
           if its execution never produced a response.  The frame is
           re-serialized canonically — byte-exact for what replay
           re-parses and re-sends. *)
        (match t.journal with
        | None -> ()
        | Some j ->
            Journal.log_request j ~seq:jseq (P.request_to_string req));
        if not (Bqueue.try_push t.queue job) then begin
          observe t
            ~rtype:(P.body_type req.P.body)
            ~code:(Some "overloaded") ~arrival;
          let message =
            if Atomic.get t.stopping then "server is draining"
            else
              Printf.sprintf "queue full (capacity %d)"
                (Bqueue.capacity t.queue)
          in
          let resp = P.Err { id = req.P.id; code = P.Overloaded; message } in
          journal_response t job resp;
          send conn resp;
          finish_root job
            ~rtype:(P.body_type req.P.body)
            ~code:(Some "overloaded")
            ~stop_ns:(Suu_obs.Clock.now_ns ())
        end;
        loop ()
    | exception P.Parse_error { line; msg } ->
        observe t ~rtype:"unknown" ~code:(Some "parse")
          ~arrival:(Unix.gettimeofday ());
        send conn
          (P.Err
             { id = None; code = P.Parse;
               message = P.parse_error_message ~line ~msg });
        (* The offending frame is consumed up to its [done]; the
           connection survives. *)
        P.skip_frame ~next_line;
        loop ()
    | exception Lineio.Line_too_long ->
        send conn
          (P.Err
             { id = None; code = P.Parse;
               message = "line too long; closing connection" })
  in
  (try loop () with _ -> ());
  (try Unix.close conn.fd with Unix.Unix_error _ -> ())

(* --- accept loop --- *)

let accept_loop t () =
  let rec loop () =
    match Unix.accept t.lfd with
    | fd, _ ->
        Unix.setsockopt fd Unix.TCP_NODELAY true;
        let conn = { fd; wlock = Mutex.create () } in
        Mutex.lock t.conns_lock;
        let key = t.next_conn in
        t.next_conn <- key + 1;
        let th =
          Thread.create
            (fun () ->
              handle_conn t conn;
              Mutex.lock t.conns_lock;
              Hashtbl.remove t.conns key;
              Mutex.unlock t.conns_lock)
            ()
        in
        Hashtbl.replace t.conns key (conn, th);
        Mutex.unlock t.conns_lock;
        loop ()
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
        () (* listener shut down: stop accepting *)
    | exception Unix.Unix_error _ -> if not (Atomic.get t.stopping) then loop ()
  in
  loop ()

let start ?(config = default_config) () =
  if config.workers < 1 then invalid_arg "Server.start: workers must be >= 1";
  (* An explicit [faults] config wins; otherwise consult [SUU_FAULTS]
     (so any deployment can be chaos-tested without a flag).  A
     malformed env spec is a startup error, not a silently-faultless
     server. *)
  let faults =
    let armed fc = if Faults.active fc then Some (Faults.create fc) else None in
    match config.faults with
    | Some fc -> armed fc
    | None -> (
        match Faults.of_env () with
        | None -> None
        | Some (Result.Ok fc) -> armed fc
        | Some (Result.Error msg) ->
            invalid_arg
              (Printf.sprintf "Server.start: bad %s: %s" Faults.env_var msg))
  in
  (match faults with
  | Some f ->
      Printf.eprintf "suu-serve: fault injection ACTIVE (%s)\n%!"
        (Faults.to_spec (Faults.config f))
  | None -> ());
  (* Resolve the solver before binding anything: a malformed SUU_SOLVER
     must fail startup without leaking the listener fd. *)
  let solver_choice = solver config in
  (* Open (and recover) the journal before binding the socket: recovery
     may truncate a torn tail, and a server that cannot journal must
     fail to start rather than silently run without the write-ahead
     guarantee. *)
  let journal_info =
    match journal_path config with
    | None -> None
    | Some path ->
        let j, entries = Journal.open_journal path in
        Some (j, entries)
  in
  (* A worker writing to a connection whose peer vanished must get
     EPIPE, not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let lfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lfd Unix.SO_REUSEADDR true;
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port) in
  (try Unix.bind lfd addr
   with e ->
     Unix.close lfd;
     (match journal_info with Some (j, _) -> Journal.close j | None -> ());
     raise e);
  Unix.listen lfd 128;
  let bound_port =
    match Unix.getsockname lfd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> config.port
  in
  let metrics = Metrics.create () in
  let queue = Bqueue.create ~capacity:config.queue_capacity in
  let started = Unix.gettimeofday () in
  let t_ref = ref None in
  let extra_stats () =
    match !t_ref with
    | None -> []
    | Some t ->
        Mutex.lock t.conns_lock;
        let conns = Hashtbl.length t.conns in
        Mutex.unlock t.conns_lock;
        [ ("queue_depth", string_of_int (Bqueue.length t.queue));
          ("queue_capacity", string_of_int t.cfg.queue_capacity);
          ("workers", string_of_int t.cfg.workers);
          ("connections", string_of_int conns);
          ("uptime_ms",
           string_of_int
             (int_of_float ((Unix.gettimeofday () -. t.started) *. 1000.0)))
        ]
  in
  let service =
    Service.create ?sim_jobs:config.sim_jobs ~solver:solver_choice
      ~extra_stats ~clock_ns:config.clock_ns ~metrics ()
  in
  (* Warm-start: replay the recovered journal's request bodies into the
     caches (instances and policies only — nothing executes, so the
     plan-cache statistics stay untouched; see {!Service.warm}). *)
  (match journal_info with
  | None -> ()
  | Some (j, entries) ->
      let loaded =
        List.fold_left
          (fun acc (e : Journal.entry) ->
            match P.request_of_string e.Journal.request with
            | Some req -> if Service.warm service req.P.body then acc + 1 else acc
            | None -> acc)
          0 entries
      in
      Printf.eprintf
        "suu-serve: journal %s: recovered %d entries, warmed %d, next seq %d\n%!"
        (Journal.path j) (List.length entries) loaded
        (Journal.next_seq entries));
  let t =
    { cfg = config; lfd; bound_port; queue; service; metrics; faults;
      journal = Option.map fst journal_info;
      jseq =
        Atomic.make
          (match journal_info with
          | Some (_, entries) -> Journal.next_seq entries
          | None -> 0);
      started;
      stopping = Atomic.make false; accept_thread = None;
      worker_threads = []; conns = Hashtbl.create 16;
      conns_lock = Mutex.create (); next_conn = 0;
      stop_lock = Mutex.create (); stopped = false }
  in
  t_ref := Some t;
  t.worker_threads <-
    List.init config.workers (fun _ -> Thread.create (worker_loop t) ());
  t.accept_thread <- Some (Thread.create (accept_loop t) ());
  t

let shutdown_fd fd =
  try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

let stop t =
  Mutex.lock t.stop_lock;
  let already = t.stopped in
  t.stopped <- true;
  Mutex.unlock t.stop_lock;
  if not already then begin
    Atomic.set t.stopping true;
    (* 1. Stop accepting: shutdown unblocks a blocked [accept]. *)
    shutdown_fd t.lfd;
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    (try Unix.close t.lfd with Unix.Unix_error _ -> ());
    (* 2. Drain: no new admissions (readers now answer [overloaded]),
       workers finish every admitted request, then exit. *)
    Bqueue.close t.queue;
    List.iter Thread.join t.worker_threads;
    (* 3. Hang up: shutdown wakes readers blocked in [read]; each
       closes its own fd on the way out. *)
    Mutex.lock t.conns_lock;
    let live = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
    Mutex.unlock t.conns_lock;
    List.iter (fun (conn, _) -> shutdown_fd conn.fd) live;
    List.iter (fun (_, th) -> Thread.join th) live;
    (* 4. Every admitted request has been answered and journaled. *)
    match t.journal with Some j -> Journal.close j | None -> ()
  end

let run ?config () =
  let t = start ?config () in
  Printf.printf "suu-serve listening on %s:%d (workers=%d queue=%d)\n%!"
    t.cfg.host t.bound_port t.cfg.workers t.cfg.queue_capacity;
  let signalled = Atomic.make false in
  let on_signal _ = Atomic.set signalled true in
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  while not (Atomic.get signalled) do
    Thread.delay 0.05
  done;
  prerr_endline "suu-serve: signal received, draining";
  stop t;
  prerr_endline "suu-serve: drained, bye"
