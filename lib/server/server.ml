module P = Protocol
module Journal = Suu_store.Journal

type config = {
  host : string;
  port : int;
  workers : int;
  queue_capacity : int;
  default_deadline_ms : int;
  sim_jobs : int option;
  solver : Suu_core.Solver_choice.t option;
  faults : Faults.config option;
  journal : string option;
  clock_ns : unit -> int64;
  so_sndbuf : int option;
  outbuf_limit : int;
}

let default_config =
  { host = "127.0.0.1"; port = 0; workers = 4; queue_capacity = 64;
    default_deadline_ms = 30_000; sim_jobs = None; solver = None;
    faults = None; journal = None; clock_ns = Suu_obs.Clock.now_ns;
    so_sndbuf = None; outbuf_limit = 8 * 1024 * 1024 }

let solver_env_var = "SUU_SOLVER"

(* Solver resolution, like [SUU_FAULTS]/[SUU_JOURNAL]: the config field
   wins; then the environment; then the serve-path default (certified
   MWU with automatic simplex fallback) — NOT the library default, which
   stays on the exact simplex for offline work.  A malformed env spec is
   a startup error, not a silently-misconfigured server. *)
let solver config =
  match config.solver with
  | Some s -> s
  | None -> (
      match Sys.getenv_opt solver_env_var with
      | None | Some "" -> Suu_core.Solver_choice.serve_default
      | Some spec -> (
          match Suu_core.Solver_choice.of_string spec with
          | Ok s -> s
          | Error msg ->
              invalid_arg
                (Printf.sprintf "Server.start: bad %s: %s" solver_env_var msg)))

let journal_env_var = "SUU_JOURNAL"

(* Like [SUU_FAULTS]: the config field wins; the environment arms any
   deployment without a flag; empty means off. *)
let journal_path config =
  match config.journal with
  | Some "" -> None
  | Some _ as p -> p
  | None -> (
      match Sys.getenv_opt journal_env_var with
      | Some "" | None -> None
      | Some p -> Some p)

(* --- jobs and completions --- *)

(* Every reply's bookkeeping travels with its bytes: the event loop
   closes the [server.write] child and the [server.request] root when
   the last byte reaches the kernel, not when a worker finishes — the
   write span now measures real socket backpressure. *)
type reply_meta = {
  m_root : Suu_obs.Span.id;
  m_rtype : string;
  m_code : string option;
  m_start_ns : int64; (* first line of the frame (monotonic) *)
  m_post_ns : int64; (* when the reply bytes were handed to the writer *)
}

type job = {
  req : P.request;
  ckey : int; (* connection key — never a raw fd, which the OS reuses *)
  arrival : float; (* wall clock, for the latency metric only *)
  deadline : int64; (* absolute monotonic ns on [cfg.clock_ns] *)
  root : Suu_obs.Span.id;
  start_ns : int64;
  enq_ns : int64; (* when the job entered the queue *)
  jseq : int; (* journal sequence number (0 when no journal is armed) *)
}

(* What a worker hands back to the event loop.  [co_bytes = ""] means
   nothing goes on the wire (an injected drop); [co_kill] cuts the
   connection after the (partial) bytes flush — the torn-frame fault. *)
type completion = {
  co_key : int;
  co_bytes : string;
  co_kill : bool;
  co_meta : reply_meta;
}

(* --- per-connection state machine --- *)

(* Incremental parsing without rewriting the pull-based {!Protocol}
   parsers: each connection runs [read_request] (or [skip_frame]) as an
   effect-handled fiber.  When the parser asks for a line the buffer
   cannot yet supply, it performs {!Need_line} and the fiber suspends;
   the event loop resumes it when more bytes (or EOF) arrive.  The
   parser's semantics — located errors, resource caps, resync — are
   reused verbatim. *)
type _ Effect.t += Need_line : string option Effect.t

type step =
  | Done of P.request option
  | Fail of exn
  | Await of (string option, step) Effect.Deep.continuation

type fiber =
  | Start (* no parse in progress: start one when input arrives *)
  | Awaiting of (string option, step) Effect.Deep.continuation
  | Stopped (* no further frames will be read on this connection *)

type parse_mode = Mode_request | Mode_skip

type segment = {
  data : string;
  mutable off : int;
  meta : reply_meta option; (* None: parse-error reply, no root span *)
  kill : bool;
}

type cstate = {
  c_fd : Unix.file_descr;
  c_key : int;
  c_buf : Lineio.Linebuf.t;
  mutable c_mode : parse_mode;
  mutable c_fiber : fiber;
  c_outq : segment Queue.t;
  mutable c_out_bytes : int;
  mutable c_inflight : int; (* admitted jobs whose reply is still owed *)
  mutable c_frame_start : int64; (* 0L = outside a frame *)
  mutable c_eof : bool;
  mutable c_paused : bool; (* read interest shed: output backlog *)
  mutable c_close_after_flush : bool;
  mutable c_closed : bool;
  mutable c_want_read : bool;
  mutable c_want_write : bool;
}

type t = {
  cfg : config;
  lfd : Unix.file_descr;
  bound_port : int;
  queue : job Bqueue.t;
  completions : completion Bqueue.t;
  service : Service.t;
  metrics : Metrics.t;
  faults : Faults.t option;
  journal : Journal.t option;
  jseq : int Atomic.t;
  started : float;
  stopping : bool Atomic.t;
  finishing : bool Atomic.t;
  reactor : Reactor.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  wake_pending : bool Atomic.t;
  conns_by_fd : (Unix.file_descr, cstate) Hashtbl.t; (* loop thread only *)
  conns_by_key : (int, cstate) Hashtbl.t; (* loop thread only *)
  conn_count : int Atomic.t; (* mirror for [stats], read cross-thread *)
  mutable next_key : int;
  mutable loop_thread : Thread.t option;
  mutable worker_threads : Thread.t list;
  mutable listener_open : bool;
  stop_lock : Mutex.t;
  mutable stopped : bool;
}

let port t = t.bound_port

let observe t ~rtype ~code ~arrival =
  Metrics.observe t.metrics ~rtype ~code
    ~latency:(Unix.gettimeofday () -. arrival)

let c_worker_restarts = lazy (Suu_obs.Registry.counter "server.worker.restarts")

let c_write_resumed = lazy (Suu_obs.Registry.counter "server.writer.resumed")

let c_read_paused = lazy (Suu_obs.Registry.counter "server.reader.paused")

(* Close out a request's root span: [server.request] spans (one per
   request, any outcome) carry the end-to-end latency histogram in the
   registry, next to the per-phase children.  [wrote] adds the
   [server.write] child — flush instant minus the moment the reply was
   queued, i.e. the time the bytes spent owned by the writer. *)
let finish_meta ?(wrote = true) m =
  let t_done = Suu_obs.Clock.now_ns () in
  if wrote then
    Suu_obs.Span.record ~parent:m.m_root ~name:"server.write"
      ~start_ns:m.m_post_ns ~stop_ns:t_done ();
  Suu_obs.Span.record ~id:m.m_root
    ~attrs:
      [ ("type", m.m_rtype); ("code", Option.value m.m_code ~default:"ok") ]
    ~name:"server.request" ~start_ns:m.m_start_ns ~stop_ns:t_done ()

(* Journal the response before it goes on the wire: if the record is
   durable, {!Replay} can later hold the server to it; if the process
   dies in between, recovery sees a request without a response — the
   honest statement of what is known. *)
let journal_response t ~jseq resp =
  match t.journal with
  | None -> ()
  | Some j -> (
      (* A response append that fails (disk full, volume gone) degrades
         to a journal entry with no response — replay reports it as
         skipped — rather than costing a worker. *)
      try Journal.log_response j ~seq:jseq (P.response_to_string resp)
      with Sys_error _ | Unix.Unix_error _ -> ())

(* --- waking the event loop --- *)

let wake_byte = Bytes.make 1 '!'

(* One pending byte is enough: the loop drains the whole completion
   queue per wakeup, and [wake_pending] keeps a burst of completions
   from flooding the pipe.  The flag is cleared by the loop BEFORE it
   drains, so a completion posted during the drain re-arms the pipe. *)
let wake t =
  if not (Atomic.exchange t.wake_pending true) then
    try ignore (Unix.write t.wake_w wake_byte 0 1) with Unix.Unix_error _ -> ()

(* --- workers --- *)

(* [t0] is when the handler finished (or the queue-expiry check fired):
   the [server.respond] child covers everything between execution and
   the handoff to the loop — response journaling, fault perturbation
   (injected delays show up here, not in [server.write]), serialization
   — so the root span's children account for the full request path. *)
let post t (job : job) ?(kill = false) ~t0 ~rtype ~code bytes =
  let now = Suu_obs.Clock.now_ns () in
  Suu_obs.Span.record ~parent:job.root ~name:"server.respond" ~start_ns:t0
    ~stop_ns:now ();
  let meta =
    { m_root = job.root; m_rtype = rtype; m_code = code;
      m_start_ns = job.start_ns; m_post_ns = now }
  in
  ignore
    (Bqueue.try_push t.completions
       { co_key = job.ckey; co_bytes = bytes; co_kill = kill; co_meta = meta });
  wake t

(* Reply delivery, possibly perturbed by fault injection.  The fast
   path (no injector configured) posts the serialized reply straight to
   the event loop; with an injector armed, a reply can be delayed
   (worker-side, so the writer never sleeps), dropped, replaced by a
   spurious [Internal] error, or cut mid-frame (a partial response line
   followed by a socket shutdown — the torn-frame case retrying clients
   must survive). *)
let deliver t job resp ~t0 ~rtype ~code =
  match t.faults with
  | None -> post t job ~t0 ~rtype ~code (P.response_to_string resp)
  | Some f -> (
      let fate = Faults.reply_fate f in
      (match fate.Faults.delay_s with
      | Some d -> Thread.delay d
      | None -> ());
      match fate.Faults.outcome with
      | Faults.Deliver ->
          post t job ~t0 ~rtype ~code (P.response_to_string resp)
      | Faults.Drop -> post t job ~t0 ~rtype ~code ""
      | Faults.Error ->
          post t job ~t0 ~rtype ~code
            (P.response_to_string
               (P.Err
                  { id = job.req.P.id; code = P.Internal;
                    message = "injected fault" }))
      | Faults.Kill ->
          post t job ~kill:true ~t0 ~rtype ~code "suu-response v1\nstatus ok\n")

let process t job =
  let t_pop = Suu_obs.Clock.now_ns () in
  Suu_obs.Span.record ~parent:job.root ~name:"server.queue_wait"
    ~start_ns:job.enq_ns ~stop_ns:t_pop ();
  let id = job.req.P.id in
  let rtype = P.body_type job.req.P.body in
  (* Queue expiry on the monotonic clock: wall time spent queued is
     irrelevant (and steppable); only monotonic elapsed time counts. *)
  if Int64.compare (t.cfg.clock_ns ()) job.deadline > 0 then begin
    observe t ~rtype ~code:(Some "timeout") ~arrival:job.arrival;
    let resp =
      P.Err { id; code = P.Timeout; message = "deadline exceeded in queue" }
    in
    journal_response t ~jseq:job.jseq resp;
    deliver t job resp ~t0:(Suu_obs.Clock.now_ns ()) ~rtype
      ~code:(Some "timeout")
  end
  else begin
    (match t.faults with Some f -> Faults.maybe_crash f | None -> ());
    let result =
      Suu_obs.Span.with_ambient (Some job.root) (fun () ->
          Suu_obs.Span.with_span "server.execute" (fun () ->
              try Service.handle t.service ~deadline:job.deadline job.req.P.body
              with e ->
                Result.Error
                  (P.Internal, "unexpected exception: " ^ Printexc.to_string e)))
    in
    let t0 = Suu_obs.Clock.now_ns () in
    let code, resp =
      match result with
      | Result.Ok fields -> (None, P.Ok { id; rtype; fields })
      | Result.Error (ec, message) ->
          (Some (P.error_code_to_string ec), P.Err { id; code = ec; message })
    in
    observe t ~rtype ~code ~arrival:job.arrival;
    journal_response t ~jseq:job.jseq resp;
    deliver t job resp ~t0 ~rtype ~code
  end

(* Crash isolation: an exception escaping [process] (a handler bug, or
   an injected crash) must cost the client one request, not the server
   one worker.  The thread answers with an [Internal] error, counts the
   restart and keeps draining the queue — a pool-size-preserving
   restart.  The error reply bypasses fault perturbation: a crashed
   worker should not also roll the fault dice. *)
let worker_loop t () =
  let rec loop () =
    match Bqueue.pop t.queue with
    | None -> () (* closed and drained: graceful exit *)
    | Some job ->
        (try process t job
         with e ->
           Suu_obs.Counter.incr (Lazy.force c_worker_restarts);
           let rtype = P.body_type job.req.P.body in
           Printf.eprintf
             "suu-serve: worker crashed on %s request (%s); restarting\n%!"
             rtype (Printexc.to_string e);
           observe t ~rtype ~code:(Some "internal") ~arrival:job.arrival;
           let resp =
             P.Err
               { id = job.req.P.id; code = P.Internal;
                 message = "worker crashed: " ^ Printexc.to_string e }
           in
           journal_response t ~jseq:job.jseq resp;
           post t job ~t0:(Suu_obs.Clock.now_ns ()) ~rtype
             ~code:(Some "internal")
             (P.response_to_string resp));
        loop ()
  in
  loop ()

(* --- event loop: connection lifecycle --- *)

(* Everything below runs on the single loop thread; cstate and the conn
   tables need no locks. *)

let close_conn t cs =
  if not cs.c_closed then begin
    cs.c_closed <- true;
    (* Replies queued behind a vanished peer still owe their spans. *)
    Queue.iter
      (fun seg -> match seg.meta with Some m -> finish_meta m | None -> ())
      cs.c_outq;
    Queue.clear cs.c_outq;
    cs.c_out_bytes <- 0;
    Reactor.remove t.reactor cs.c_fd;
    (try Unix.close cs.c_fd with Unix.Unix_error _ -> ());
    Hashtbl.remove t.conns_by_fd cs.c_fd;
    Hashtbl.remove t.conns_by_key cs.c_key;
    Atomic.decr t.conn_count
  end

let update_interest t cs =
  if not cs.c_closed then begin
    let read = (not cs.c_eof) && (not cs.c_paused) && not cs.c_close_after_flush in
    let write = not (Queue.is_empty cs.c_outq) in
    if read <> cs.c_want_read || write <> cs.c_want_write then begin
      cs.c_want_read <- read;
      cs.c_want_write <- write;
      Reactor.modify t.reactor cs.c_fd ~read ~write
    end
  end

let maybe_close t cs =
  if
    (not cs.c_closed) && cs.c_close_after_flush && cs.c_inflight = 0
    && Queue.is_empty cs.c_outq
  then close_conn t cs

(* Account [n] flushed bytes to the head segments, closing out spans as
   segments complete.  A completed kill segment cuts the connection —
   the injected torn frame. *)
let consume t cs n =
  cs.c_out_bytes <- cs.c_out_bytes - n;
  let rem = ref n in
  let killed = ref false in
  while !rem > 0 && not !killed do
    let head = Queue.peek cs.c_outq in
    let avail = String.length head.data - head.off in
    if !rem >= avail then begin
      rem := !rem - avail;
      ignore (Queue.pop cs.c_outq);
      (match head.meta with Some m -> finish_meta m | None -> ());
      if head.kill then killed := true
    end
    else begin
      head.off <- head.off + !rem;
      rem := 0
    end
  done;
  if !killed then begin
    (try Unix.shutdown cs.c_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    close_conn t cs
  end

let rec write_retry fd s off len =
  try Unix.write_substring fd s off len
  with Unix.Unix_error (Unix.EINTR, _, _) -> write_retry fd s off len

(* One batched flush per syscall: small pipelined replies coalesce into
   a single write (up to [coalesce_budget]), a large head segment goes
   out directly.  A short write leaves the tail queued with its offset
   advanced; EAGAIN re-arms write interest and the loop resumes the
   partial segment when the socket drains. *)
let coalesce_budget = 256 * 1024

let try_flush t cs =
  if not cs.c_closed then begin
    try
      while not (Queue.is_empty cs.c_outq) do
        let head = Queue.peek cs.c_outq in
        let headlen = String.length head.data - head.off in
        let n =
          if Queue.length cs.c_outq = 1 || head.kill || headlen >= coalesce_budget
          then write_retry cs.c_fd head.data head.off headlen
          else begin
            let b = Buffer.create (min cs.c_out_bytes coalesce_budget) in
            (try
               Queue.iter
                 (fun s ->
                   (* never coalesce past a torn-frame kill: no bytes
                      may follow the cut *)
                   if s.kill || Buffer.length b >= coalesce_budget then
                     raise Exit;
                   Buffer.add_substring b s.data s.off
                     (min
                        (String.length s.data - s.off)
                        (coalesce_budget - Buffer.length b)))
                 cs.c_outq
             with Exit -> ());
            write_retry cs.c_fd (Buffer.contents b) 0 (Buffer.length b)
          end
        in
        consume t cs n
      done
    with
    | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Suu_obs.Counter.incr (Lazy.force c_write_resumed)
    | Unix.Unix_error _ ->
        (* Peer gone mid-write: the requests' effects are dropped, their
           spans are closed out by [close_conn]. *)
        close_conn t cs
  end

let after_write t cs =
  if not cs.c_closed then begin
    if cs.c_paused && cs.c_out_bytes <= t.cfg.outbuf_limit / 2 then
      cs.c_paused <- false;
    update_interest t cs;
    maybe_close t cs
  end

let enqueue_out t cs ?(kill = false) ?meta data =
  if cs.c_closed then Option.iter (fun m -> finish_meta m) meta
  else begin
    Queue.push { data; off = 0; meta; kill } cs.c_outq;
    cs.c_out_bytes <- cs.c_out_bytes + String.length data;
    try_flush t cs;
    if not cs.c_closed then begin
      (* Backpressure: a peer that stops reading while pipelining must
         not buy unbounded server memory.  Shed read interest until the
         backlog halves; admission stops with it. *)
      if (not cs.c_paused) && cs.c_out_bytes > t.cfg.outbuf_limit then begin
        cs.c_paused <- true;
        Suu_obs.Counter.incr (Lazy.force c_read_paused)
      end;
      after_write t cs
    end
  end

(* --- event loop: parsing and admission --- *)

let conn_next_line cs () =
  let line =
    match Lineio.Linebuf.next cs.c_buf with
    | Some _ as l -> l
    | None ->
        if cs.c_eof then Lineio.Linebuf.take_rest cs.c_buf
        else Effect.perform Need_line
  in
  (* A request's wall clock starts when its first line arrives: idle
     time between frames belongs to no request.  The resumed effect
     passes through here too, so pipelined and suspended frames stamp
     identically. *)
  (match line with
  | Some _ when Int64.equal cs.c_frame_start 0L ->
      cs.c_frame_start <- Suu_obs.Clock.now_ns ()
  | _ -> ());
  line

let fiber_handler : (P.request option, step) Effect.Deep.handler =
  { retc = (fun r -> Done r);
    exnc = (fun e -> Fail e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Need_line ->
            Some (fun (k : (a, step) Effect.Deep.continuation) -> Await k)
        | _ -> None) }

let start_fiber cs =
  match cs.c_mode with
  | Mode_request ->
      cs.c_frame_start <- 0L;
      Effect.Deep.match_with
        (fun () -> P.read_request ~next_line:(conn_next_line cs))
        () fiber_handler
  | Mode_skip ->
      Effect.Deep.match_with
        (fun () ->
          P.skip_frame ~next_line:(conn_next_line cs);
          None)
        () fiber_handler

let admit t cs (req : P.request) =
  let arrival = Unix.gettimeofday () in
  let t_parsed = Suu_obs.Clock.now_ns () in
  let start_ns =
    if Int64.equal cs.c_frame_start 0L then t_parsed else cs.c_frame_start
  in
  let root = Suu_obs.Span.fresh_id () in
  Suu_obs.Span.record ~parent:root ~name:"server.parse" ~start_ns
    ~stop_ns:t_parsed ();
  let ms =
    match req.P.deadline_ms with
    | Some d -> d
    | None -> t.cfg.default_deadline_ms
  in
  let jseq =
    match t.journal with
    | None -> 0
    | Some _ -> Atomic.fetch_and_add t.jseq 1
  in
  let job =
    { req; ckey = cs.c_key; arrival;
      deadline =
        Int64.add (t.cfg.clock_ns ()) (Int64.mul (Int64.of_int ms) 1_000_000L);
      root; start_ns; enq_ns = t_parsed; jseq }
  in
  (* Write-ahead: the request is durable before it is offered to the
     queue, so an admitted request survives a [kill -9] even if its
     execution never produced a response.  The frame is re-serialized
     canonically — byte-exact for what replay re-parses and re-sends. *)
  (match t.journal with
  | None -> ()
  | Some j -> Journal.log_request j ~seq:jseq (P.request_to_string req));
  if Bqueue.try_push t.queue job then cs.c_inflight <- cs.c_inflight + 1
  else begin
    let rtype = P.body_type req.P.body in
    observe t ~rtype ~code:(Some "overloaded") ~arrival;
    let message =
      if Atomic.get t.stopping then "server is draining"
      else Printf.sprintf "queue full (capacity %d)" (Bqueue.capacity t.queue)
    in
    let resp = P.Err { id = req.P.id; code = P.Overloaded; message } in
    journal_response t ~jseq resp;
    let meta =
      { m_root = root; m_rtype = rtype; m_code = Some "overloaded";
        m_start_ns = start_ns; m_post_ns = Suu_obs.Clock.now_ns () }
    in
    enqueue_out t cs ~meta (P.response_to_string resp)
  end

(* Drive a connection's parse fiber as far as the buffered input
   allows.  Each completed request is admitted and parsing continues
   immediately — that is request pipelining.  Replies queue in
   completion order (workers finish when they finish); clients match
   responses to requests by id, as they always have. *)
let rec pump t cs =
  if (not cs.c_closed) && not cs.c_close_after_flush then
    match cs.c_fiber with
    | Stopped -> ()
    | Start -> handle_step t cs (start_fiber cs)
    | Awaiting k -> (
        match Lineio.Linebuf.next cs.c_buf with
        | Some l ->
            cs.c_fiber <- Start;
            handle_step t cs (Effect.Deep.continue k (Some l))
        | None ->
            if cs.c_eof then begin
              let l = Lineio.Linebuf.take_rest cs.c_buf in
              cs.c_fiber <- Start;
              handle_step t cs (Effect.Deep.continue k l)
            end)

and handle_step t cs st =
  if not cs.c_closed then
    match st with
    | Await k -> cs.c_fiber <- Awaiting k
    | Done r -> (
        match cs.c_mode with
        | Mode_skip ->
            (* The offending frame is consumed up to its [done]; the
               connection survives. *)
            cs.c_mode <- Mode_request;
            cs.c_fiber <- Start;
            pump t cs
        | Mode_request -> (
            match r with
            | Some req ->
                admit t cs req;
                cs.c_fiber <- Start;
                pump t cs
            | None ->
                (* Clean end of stream.  Replies still owed (pipelined
                   requests in flight, a half-closed peer still reading)
                   flush before the connection closes. *)
                cs.c_fiber <- Stopped;
                cs.c_close_after_flush <- true;
                update_interest t cs;
                maybe_close t cs))
    | Fail (P.Parse_error { line; msg }) ->
        observe t ~rtype:"unknown" ~code:(Some "parse")
          ~arrival:(Unix.gettimeofday ());
        enqueue_out t cs
          (P.response_to_string
             (P.Err
                { id = None; code = P.Parse;
                  message = P.parse_error_message ~line ~msg }));
        cs.c_mode <- Mode_skip;
        cs.c_fiber <- Start;
        pump t cs
    | Fail Lineio.Line_too_long ->
        enqueue_out t cs
          (P.response_to_string
             (P.Err
                { id = None; code = P.Parse;
                  message = "line too long; closing connection" }));
        cs.c_fiber <- Stopped;
        cs.c_close_after_flush <- true;
        update_interest t cs;
        maybe_close t cs
    | Fail _ ->
        (* A parser escape that is neither a protocol nor a framing
           error: drop the connection rather than guess. *)
        cs.c_fiber <- Stopped;
        close_conn t cs

(* Route an exception into the suspended parser so every failure flows
   through one place ([handle_step]'s [Fail] arms). *)
let raise_in_fiber t cs exn =
  match cs.c_fiber with
  | Awaiting k ->
      cs.c_fiber <- Start;
      handle_step t cs (Effect.Deep.discontinue k exn)
  | Start | Stopped -> handle_step t cs (Fail exn)

(* --- event loop: socket events --- *)

let handle_readable t cs rbuf =
  let budget = ref 4 in
  (* a few chunks per event keeps one flooding peer from starving the
     rest; level-triggered readiness re-reports the remainder *)
  while
    !budget > 0 && (not cs.c_closed) && (not cs.c_eof) && not cs.c_paused
  do
    decr budget;
    match Unix.read cs.c_fd rbuf 0 (Bytes.length rbuf) with
    | 0 -> cs.c_eof <- true
    | k -> (
        (try Lineio.Linebuf.feed cs.c_buf rbuf 0 k
         with Lineio.Line_too_long ->
           raise_in_fiber t cs Lineio.Line_too_long);
        if k < Bytes.length rbuf then budget := 0)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        budget := 0
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ ->
        (* reset peer: treat as end of stream; the partial frame is
           abandoned with it *)
        cs.c_eof <- true
  done;
  pump t cs;
  if not cs.c_closed then begin
    update_interest t cs;
    maybe_close t cs
  end

let handle_accept t =
  let continue = ref true in
  while !continue do
    match Unix.accept t.lfd with
    | fd, _ ->
        Unix.set_nonblock fd;
        Unix.setsockopt fd Unix.TCP_NODELAY true;
        (match t.cfg.so_sndbuf with
        | Some n -> (
            try Unix.setsockopt_int fd Unix.SO_SNDBUF n
            with Unix.Unix_error _ -> ())
        | None -> ());
        let key = t.next_key in
        t.next_key <- key + 1;
        let cs =
          { c_fd = fd; c_key = key; c_buf = Lineio.Linebuf.create ();
            c_mode = Mode_request; c_fiber = Start; c_outq = Queue.create ();
            c_out_bytes = 0; c_inflight = 0; c_frame_start = 0L;
            c_eof = false; c_paused = false; c_close_after_flush = false;
            c_closed = false; c_want_read = true; c_want_write = false }
        in
        Hashtbl.replace t.conns_by_fd fd cs;
        Hashtbl.replace t.conns_by_key key cs;
        Atomic.incr t.conn_count;
        Reactor.add t.reactor fd ~read:true ~write:false
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ ->
        (* ECONNABORTED and friends; a closed listener is handled by the
           [stopping] transition in the main loop *)
        continue := false
  done

let handle_completion t co =
  match Hashtbl.find_opt t.conns_by_key co.co_key with
  | None ->
      (* the connection died first; the request's effect is dropped *)
      finish_meta ~wrote:false co.co_meta
  | Some cs ->
      cs.c_inflight <- cs.c_inflight - 1;
      if co.co_bytes = "" then begin
        finish_meta ~wrote:false co.co_meta;
        maybe_close t cs
      end
      else enqueue_out t cs ~kill:co.co_kill ~meta:co.co_meta co.co_bytes;
      if not cs.c_closed then maybe_close t cs

let drain_wakeups t =
  let b = Bytes.create 64 in
  (try
     while Unix.read t.wake_r b 0 (Bytes.length b) > 0 do
       ()
     done
   with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | Unix.Unix_error _ -> ());
  (* clear BEFORE draining completions: a post racing the drain re-arms
     the pipe instead of being missed *)
  Atomic.set t.wake_pending false

let drain_completions t =
  let rec go () =
    match Bqueue.try_pop t.completions with
    | Some co ->
        handle_completion t co;
        go ()
    | None -> ()
  in
  go ()

let loop_run t () =
  let rbuf = Bytes.create 65536 in
  let finished = ref false in
  let drain_deadline = ref None in
  while not !finished do
    let timeout_ms = match !drain_deadline with None -> -1 | Some _ -> 50 in
    let evs = Reactor.wait t.reactor ~timeout_ms in
    List.iter
      (fun (ev : Reactor.event) ->
        if ev.Reactor.fd = t.wake_r then begin
          if ev.Reactor.readable then drain_wakeups t
        end
        else if t.listener_open && ev.Reactor.fd = t.lfd then handle_accept t
        else
          match Hashtbl.find_opt t.conns_by_fd ev.Reactor.fd with
          | None -> ()
          | Some cs ->
              if ev.Reactor.writable && not cs.c_closed then begin
                try_flush t cs;
                after_write t cs
              end;
              if ev.Reactor.readable && not cs.c_closed then
                handle_readable t cs rbuf)
      evs;
    if Atomic.get t.stopping && t.listener_open then begin
      t.listener_open <- false;
      Reactor.remove t.reactor t.lfd;
      try Unix.close t.lfd with Unix.Unix_error _ -> ()
    end;
    drain_completions t;
    if Atomic.get t.finishing then begin
      (* The workers have exited and every completion is queued; from
         here the loop only flushes.  A peer that will not read its
         replies gets [drain_grace] before the connection is cut. *)
      (match !drain_deadline with
      | None ->
          drain_deadline :=
            Some (Int64.add (Suu_obs.Clock.now_ns ()) 5_000_000_000L)
      | Some _ -> ());
      let pending =
        Hashtbl.fold
          (fun _ cs acc -> acc || not (Queue.is_empty cs.c_outq))
          t.conns_by_fd false
      in
      let expired =
        match !drain_deadline with
        | Some d -> Int64.compare (Suu_obs.Clock.now_ns ()) d > 0
        | None -> false
      in
      if (not pending) || expired then begin
        let all = Hashtbl.fold (fun _ cs acc -> cs :: acc) t.conns_by_fd [] in
        List.iter
          (fun cs ->
            (try Unix.shutdown cs.c_fd Unix.SHUTDOWN_ALL
             with Unix.Unix_error _ -> ());
            close_conn t cs)
          all;
        finished := true
      end
    end
  done

(* --- lifecycle --- *)

let start ?(config = default_config) () =
  if config.workers < 1 then invalid_arg "Server.start: workers must be >= 1";
  if config.outbuf_limit < 1 then
    invalid_arg "Server.start: outbuf_limit must be >= 1";
  (* An explicit [faults] config wins; otherwise consult [SUU_FAULTS]
     (so any deployment can be chaos-tested without a flag).  A
     malformed env spec is a startup error, not a silently-faultless
     server. *)
  let faults =
    let armed fc = if Faults.active fc then Some (Faults.create fc) else None in
    match config.faults with
    | Some fc -> armed fc
    | None -> (
        match Faults.of_env () with
        | None -> None
        | Some (Result.Ok fc) -> armed fc
        | Some (Result.Error msg) ->
            invalid_arg
              (Printf.sprintf "Server.start: bad %s: %s" Faults.env_var msg))
  in
  (match faults with
  | Some f ->
      Printf.eprintf "suu-serve: fault injection ACTIVE (%s)\n%!"
        (Faults.to_spec (Faults.config f))
  | None -> ());
  (* Resolve the solver before binding anything: a malformed SUU_SOLVER
     must fail startup without leaking the listener fd. *)
  let solver_choice = solver config in
  (* Open (and recover) the journal before binding the socket: recovery
     may truncate a torn tail, and a server that cannot journal must
     fail to start rather than silently run without the write-ahead
     guarantee. *)
  let journal_info =
    match journal_path config with
    | None -> None
    | Some path ->
        let j, entries = Journal.open_journal path in
        Some (j, entries)
  in
  (* The loop writing to a connection whose peer vanished must get
     EPIPE, not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let lfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lfd Unix.SO_REUSEADDR true;
  let addr =
    Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port)
  in
  (try Unix.bind lfd addr
   with e ->
     Unix.close lfd;
     (match journal_info with Some (j, _) -> Journal.close j | None -> ());
     raise e);
  (* Deep backlog: with one accepting thread, a connection-scale burst
     must queue in the kernel, not get RSTs. *)
  Unix.listen lfd 511;
  Unix.set_nonblock lfd;
  let bound_port =
    match Unix.getsockname lfd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> config.port
  in
  let reactor = Reactor.create () in
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  Reactor.add reactor lfd ~read:true ~write:false;
  Reactor.add reactor wake_r ~read:true ~write:false;
  let metrics = Metrics.create () in
  let queue = Bqueue.create ~capacity:config.queue_capacity in
  let completions = Bqueue.create ~capacity:max_int in
  let started = Unix.gettimeofday () in
  let conn_count = Atomic.make 0 in
  let t_ref = ref None in
  let extra_stats () =
    match !t_ref with
    | None -> []
    | Some t ->
        [ ("queue_depth", string_of_int (Bqueue.length t.queue));
          ("queue_capacity", string_of_int t.cfg.queue_capacity);
          ("workers", string_of_int t.cfg.workers);
          ("connections", string_of_int (Atomic.get t.conn_count));
          ("reactor", Reactor.backend t.reactor);
          ("uptime_ms",
           string_of_int
             (int_of_float ((Unix.gettimeofday () -. t.started) *. 1000.0)))
        ]
  in
  let service =
    Service.create ?sim_jobs:config.sim_jobs ~solver:solver_choice
      ~extra_stats ~clock_ns:config.clock_ns ~metrics ()
  in
  (* Warm-start: replay the recovered journal's request bodies into the
     caches (instances and policies only — nothing executes, so the
     plan-cache statistics stay untouched; see {!Service.warm}). *)
  (match journal_info with
  | None -> ()
  | Some (j, entries) ->
      let loaded =
        List.fold_left
          (fun acc (e : Journal.entry) ->
            match P.request_of_string e.Journal.request with
            | Some req -> if Service.warm service req.P.body then acc + 1 else acc
            | None -> acc)
          0 entries
      in
      Printf.eprintf
        "suu-serve: journal %s: recovered %d entries, warmed %d, next seq %d\n%!"
        (Journal.path j) (List.length entries) loaded
        (Journal.next_seq entries));
  let t =
    { cfg = config; lfd; bound_port; queue; completions; service; metrics;
      faults;
      journal = Option.map fst journal_info;
      jseq =
        Atomic.make
          (match journal_info with
          | Some (_, entries) -> Journal.next_seq entries
          | None -> 0);
      started;
      stopping = Atomic.make false; finishing = Atomic.make false; reactor;
      wake_r; wake_w; wake_pending = Atomic.make false;
      conns_by_fd = Hashtbl.create 64; conns_by_key = Hashtbl.create 64;
      conn_count; next_key = 0; loop_thread = None; worker_threads = [];
      listener_open = true; stop_lock = Mutex.create (); stopped = false }
  in
  t_ref := Some t;
  t.worker_threads <-
    List.init config.workers (fun _ -> Thread.create (worker_loop t) ());
  t.loop_thread <- Some (Thread.create (loop_run t) ());
  t

let stop t =
  Mutex.lock t.stop_lock;
  let already = t.stopped in
  t.stopped <- true;
  Mutex.unlock t.stop_lock;
  if not already then begin
    (* 1. Stop accepting: the loop closes the listener; admissions that
       find the queue closed answer [overloaded] "server is draining". *)
    Atomic.set t.stopping true;
    wake t;
    (* 2. Drain: workers finish every admitted request, post the
       completions, then exit. *)
    Bqueue.close t.queue;
    List.iter Thread.join t.worker_threads;
    (* 3. Flush: the loop writes every owed reply, then hangs up. *)
    Atomic.set t.finishing true;
    wake t;
    (match t.loop_thread with Some th -> Thread.join th | None -> ());
    (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
    (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
    (* 4. Every admitted request has been answered and journaled. *)
    match t.journal with Some j -> Journal.close j | None -> ()
  end

let run ?config () =
  (* Block INT/TERM before spawning anything: every thread started by
     [start] inherits the mask, so a signal that lands mid-startup
     (journal recovery, cache warm) stays pending at the process level
     instead of racing handler installation — [wait_signal] then picks
     it up deterministically once the server is live. *)
  let stop_signals = [ Sys.sigint; Sys.sigterm ] in
  ignore (Thread.sigmask Unix.SIG_BLOCK stop_signals);
  let t = start ?config () in
  Printf.printf "suu-serve listening on %s:%d (workers=%d queue=%d %s)\n%!"
    t.cfg.host t.bound_port t.cfg.workers t.cfg.queue_capacity
    (Reactor.backend t.reactor);
  ignore (Thread.wait_signal stop_signals);
  prerr_endline "suu-serve: signal received, draining";
  stop t;
  prerr_endline "suu-serve: drained, bye"
