(* Upper bounds of the latency buckets, in milliseconds.  Fixed (not
   adaptive) so counts from successive stats scrapes can be subtracted.
   Kept from before the Obs migration so existing scrape consumers see
   identical keys. *)
let bucket_ms = [| 1; 2; 5; 10; 25; 50; 100; 250; 500; 1000; 2500; 5000 |]

let bounds_s =
  Array.map (fun ms -> float_of_int ms /. 1000.0) bucket_ms

(* The request counters and the latency histogram are updated and
   snapshotted under the same mutex (the histogram is created sharing
   [lock]), so a rendered snapshot can never show a histogram total that
   disagrees with [requests_total] — previously the counters and buckets
   were read in two separate critical sections. *)
type t = {
  lock : Mutex.t;
  by_type : (string, int ref) Hashtbl.t;
  by_code : (string, int ref) Hashtbl.t;
  mutable ok : int;
  mutable total : int;
  latency : Suu_obs.Histogram.t;
}

let create () =
  let lock = Mutex.create () in
  { lock; by_type = Hashtbl.create 8; by_code = Hashtbl.create 8; ok = 0;
    total = 0;
    latency = Suu_obs.Histogram.create ~lock ~bounds:bounds_s "server.latency"
  }

let bump tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> incr r
  | None -> Hashtbl.add tbl key (ref 1)

let observe t ~rtype ~code ~latency =
  Mutex.lock t.lock;
  t.total <- t.total + 1;
  bump t.by_type rtype;
  (match code with
  | None -> t.ok <- t.ok + 1
  | Some c -> bump t.by_code c);
  Suu_obs.Histogram.unsafe_record t.latency (Float.max 0.0 latency);
  Mutex.unlock t.lock

let get tbl key =
  match Hashtbl.find_opt tbl key with Some r -> !r | None -> 0

let render t =
  Mutex.lock t.lock;
  let snap = Suu_obs.Histogram.unsafe_snapshot t.latency in
  let fields = ref [] in
  let add k v = fields := (k, string_of_int v) :: !fields in
  add "requests_total" t.total;
  List.iter
    (fun ty -> add ("requests_" ^ ty) (get t.by_type ty))
    [ "describe"; "lower_bound"; "plan"; "simulate"; "stats"; "unknown" ];
  add "ok" t.ok;
  add "errors" (t.total - t.ok);
  add "parse_errors" (get t.by_code "parse");
  add "bad_requests" (get t.by_code "bad_request");
  add "rejects" (get t.by_code "overloaded");
  add "timeouts" (get t.by_code "timeout");
  add "internal_errors" (get t.by_code "internal");
  Array.iteri
    (fun i c ->
      if i < Array.length bucket_ms then
        add (Printf.sprintf "latency_le_%dms" bucket_ms.(i)) c
      else add "latency_gt_5000ms" c)
    snap.Suu_obs.Histogram.buckets;
  add "latency_sum_us"
    (int_of_float (snap.Suu_obs.Histogram.sum *. 1e6));
  Mutex.unlock t.lock;
  List.rev !fields
