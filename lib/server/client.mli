(** Synchronous client for the [suu-serve] protocol, with optional
    timeouts and retries.

    One value is one TCP connection; {!call} writes a request frame and
    blocks for the matching response (the protocol is strictly
    request/response per connection, so no correlation machinery is
    needed).  Not thread-safe: share a connection between threads
    behind a lock, or open one per thread (the load generator does the
    latter).

    Resilience (all off by default): [timeout_ms] bounds each attempt's
    wait for a response on the monotonic clock; [retries] re-sends the
    request up to that many extra times on transient failures —
    transport errors, torn or malformed response frames, timed-out
    reads, and the server's [Internal] and [Overloaded] error replies —
    with capped exponential backoff and seeded jitter.  [Bad_request],
    [Parse] and [Timeout] replies are never retried: the request itself
    is at fault.  Retrying is safe because every request type is
    idempotent and each failed attempt abandons its socket — a retry
    runs on a fresh connection and verifies the reply's id, so a late
    or torn reply cannot be matched to it.

    Each retry, timeout, reconnect and final give-up increments a
    [client.*] counter in this process's {!Suu_obs.Registry}. *)

type t

exception Protocol_failure of string
(** The server's bytes did not parse as a response frame, the
    connection dropped mid-response, or every retry was exhausted on
    such a failure. *)

val connect :
  ?host:string ->
  ?retries:int ->
  ?timeout_ms:int ->
  ?backoff_ms:int ->
  ?retry_seed:int ->
  port:int ->
  unit ->
  t
(** Defaults: host [127.0.0.1], [retries 0] (fail fast), no timeout,
    [backoff_ms 25] (first-retry delay, doubled per retry, capped at
    2 s), [retry_seed 0] (jitter generator seed).  The initial dial
    itself observes [retries]: a refused connection is retried with the
    same backoff.  Raises [Unix.Unix_error] on (final) refusal,
    [Invalid_argument] on negative [retries]/[backoff_ms] or a
    non-positive [timeout_ms]. *)

val close : t -> unit
(** Idempotent. *)

val call :
  t ->
  ?auto_id:bool ->
  ?id:string ->
  ?deadline_ms:int ->
  Protocol.body ->
  Protocol.response
(** Send one request, wait for its response, retrying per the
    connection's policy.  When retries are enabled and no [id] is
    given, one is attached automatically so replies can be verified;
    pass [~auto_id:false] to suppress that (a proxy forwarding a
    client's frame verbatim must not invent an id, because the id is
    echoed in the response and would break byte-identity with an
    unproxied server — the proxy relies on always-fresh sockets across
    retries instead).  Raises {!Protocol_failure} on a broken stream or
    exhausted retries and [Unix.Unix_error] on transport errors;
    server-side failures come back as [Protocol.Err]. *)

(* Convenience wrappers over {!call}; each raises {!Protocol_failure}
   when the server replies with an error frame, carrying the rendered
   code and message. *)

val describe :
  t -> ?deadline_ms:int -> Suu_core.Instance.t -> (string * string) list

val lower_bound :
  t -> ?deadline_ms:int -> Suu_core.Instance.t -> (string * string) list

val plan :
  t -> ?deadline_ms:int -> ?seed:int -> policy:string ->
  Suu_core.Instance.t -> (string * string) list

val simulate :
  t -> ?deadline_ms:int -> ?seed:int -> policy:string -> reps:int ->
  Suu_core.Instance.t -> (string * string) list

val stats : t -> ?deadline_ms:int -> unit -> (string * string) list
