(** Synchronous client for the [suu-serve] protocol.

    One value is one TCP connection; {!call} writes a request frame and
    blocks for the matching response (the protocol is strictly
    request/response per connection, so no correlation machinery is
    needed — [id] is still attached for log readability).  Not
    thread-safe: share a connection between threads behind a lock, or
    open one per thread (the load generator does the latter). *)

type t

exception Protocol_failure of string
(** The server's bytes did not parse as a response frame, or the
    connection dropped mid-response. *)

val connect : ?host:string -> port:int -> unit -> t
(** Defaults to [127.0.0.1].  Raises [Unix.Unix_error] on refusal. *)

val close : t -> unit
(** Idempotent. *)

val call :
  t -> ?id:string -> ?deadline_ms:int -> Protocol.body -> Protocol.response
(** Send one request, wait for its response.  Raises
    {!Protocol_failure} on a broken stream and [Unix.Unix_error] on
    transport errors; server-side failures come back as
    [Protocol.Err]. *)

(* Convenience wrappers over {!call}; each raises {!Protocol_failure}
   when the server replies with an error frame, carrying the rendered
   code and message. *)

val describe :
  t -> ?deadline_ms:int -> Suu_core.Instance.t -> (string * string) list

val lower_bound :
  t -> ?deadline_ms:int -> Suu_core.Instance.t -> (string * string) list

val plan :
  t -> ?deadline_ms:int -> ?seed:int -> policy:string ->
  Suu_core.Instance.t -> (string * string) list

val simulate :
  t -> ?deadline_ms:int -> ?seed:int -> policy:string -> reps:int ->
  Suu_core.Instance.t -> (string * string) list

val stats : t -> ?deadline_ms:int -> unit -> (string * string) list
