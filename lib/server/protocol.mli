(** The [suu-serve] wire protocol, v1: newline-framed text.

    Both directions exchange {e frames}: a versioned header line, one
    [key value] line per field, and a terminating [done] line.  Requests
    that operate on an instance embed it verbatim in the
    {!Suu_core.Instance_io} v1 format (the block is self-terminating —
    its last line is [end]) after a bare [instance] marker line:

    {v
    suu-request v1
    id r42                     (optional, echoed in the response)
    deadline-ms 5000           (optional)
    type simulate
    policy suu-i-sem
    reps 20
    seed 1
    instance
    suu-instance v1
    ...
    end
    done
    v}

    Responses mirror the shape; [status] is [ok] (followed by the
    request type and result fields) or [error] (followed by a code and
    a one-line message):

    {v
    suu-response v1            |  suu-response v1
    id r42                     |  status error
    status ok                  |  code overloaded
    type simulate              |  message queue full (capacity 64)
    mean 37.299999999999997    |  done
    ...                        |
    done                       |
    v}

    Parsing is strict and {e located}: malformed input raises
    {!Parse_error} carrying the 1-based line number relative to the
    frame's header line, including for errors inside the embedded
    instance block.  A parse error consumes only the offending frame —
    the caller can resync to the next [done] and keep the connection.

    Floats in responses are printed with round-trip precision
    ([%.17g]), so a response is a deterministic function of the request
    — the determinism-over-the-wire contract for [simulate] reduces to
    {!Suu_sim.Runner}'s replication determinism. *)

type body =
  | Describe of Suu_core.Instance.t
  | Lower_bound of Suu_core.Instance.t
  | Plan of { inst : Suu_core.Instance.t; policy : string; seed : int }
      (** Materialize the policy's schedule on one deterministic trace
          and summarize it.  [seed] defaults to 0 on the wire. *)
  | Simulate of {
      inst : Suu_core.Instance.t;
      policy : string;
      reps : int;
      seed : int; (** defaults to 0 on the wire *)
    }
  | Stats

type request = { id : string option; deadline_ms : int option; body : body }

type error_code = Parse | Bad_request | Overloaded | Timeout | Internal

type response =
  | Ok of {
      id : string option;
      rtype : string;
      fields : (string * string) list;
    }
  | Err of { id : string option; code : error_code; message : string }

exception Parse_error of { line : int; msg : string }
(** [line] is 1-based from the frame's header line.  The rendered
    message is ["line N: ..."]. *)

val body_type : body -> string
val error_code_to_string : error_code -> string
val parse_error_message : line:int -> msg:string -> string
(** The canonical ["line N: msg"] rendering used in [parse] replies. *)

val request_to_string : request -> string
val response_to_string : response -> string

val read_request : next_line:(unit -> string option) -> request option
(** Read one request frame.  [next_line] yields lines without their
    newline; [None] means end of stream.  Returns [None] on a clean end
    of stream before any line of a frame; raises {!Parse_error} on
    malformed input (including a stream truncated mid-frame).
    Oversized payloads are rejected at parse time: [reps] above
    [1_000_000], instances beyond [1024] machines, [65536] jobs or
    [1_000_000] matrix entries. *)

val read_response : next_line:(unit -> string option) -> response option
(** Read one response frame; same conventions as {!read_request}. *)

val skip_frame : next_line:(unit -> string option) -> unit
(** Consume lines up to and including the next [done] (or end of
    stream) — resynchronization after a {!Parse_error}. *)

val request_of_string : string -> request option
(** Parse a whole request frame held in a string — journal recovery and
    replay.  [None] on an empty or malformed frame (a journaled frame
    that fails to parse indicates journal-format skew, not a client
    error, so the {!Parse_error} location is not surfaced). *)

val response_of_string : string -> response option
(** Parse a whole response frame held in a string; same conventions as
    {!request_of_string}. *)

val instance_digest : body -> string option
(** MD5 of the embedded instance's canonical {!Suu_core.Instance_io}
    rendering; [None] for [Stats].  This is the digest the service
    keys its instance cache by and the router hashes onto the shard
    ring, so "same digest" means "same cache entry" means "same
    shard". *)
