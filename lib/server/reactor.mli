(** Readiness multiplexer for the event-loop server core.

    One reactor owns every socket of a [suu-serve] daemon (listener,
    connections, wakeup pipe) and tells the single event-loop thread
    which of them are ready.  On Linux it is backed by [epoll(7)]
    (level-triggered, so a partially drained buffer simply reports
    ready again), elsewhere it falls back to {!Unix.select} — the
    backend is chosen at {!create} and reported by {!backend}.

    The reactor is deliberately dumb: it tracks (fd, read/write
    interest) registrations and surfaces readiness; buffering, parsing
    and state machines live with the caller.  It is single-owner state
    — only the event-loop thread may call into it (the C stub releases
    the runtime lock during the wait, so worker threads keep running
    while the loop sleeps). *)

type t

type event = {
  fd : Unix.file_descr;
  readable : bool;
  writable : bool;
}
(** Error/hang-up conditions are folded into both flags: the caller's
    next read observes EOF or the error, its next write [EPIPE] —
    exactly the paths that already handle a vanished peer. *)

val create : unit -> t
(** Raises [Unix.Unix_error] if neither backend can be set up. *)

val backend : t -> string
(** ["epoll"] or ["select"] — surfaced in [stats] replies so an
    operator can see which ceiling (fd count, wait cost) applies. *)

val add : t -> Unix.file_descr -> read:bool -> write:bool -> unit
(** Register a new fd.  [Invalid_argument] if already registered. *)

val modify : t -> Unix.file_descr -> read:bool -> write:bool -> unit
(** Change the interest set of a registered fd.  No-op syscall-wise if
    the interests did not change. *)

val remove : t -> Unix.file_descr -> unit
(** Deregister; safe to call for an fd that was never added.  Must be
    called {e before} closing the fd. *)

val fd_count : t -> int
(** Registered fds (listener and wakeup pipe included). *)

val wait : t -> timeout_ms:int -> event list
(** Block until at least one registered fd is ready or the timeout
    elapses ([] on timeout).  [timeout_ms < 0] waits forever.  EINTR is
    retried internally. *)
