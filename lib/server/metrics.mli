(** In-process serving counters and a fixed-bucket latency histogram.

    One value lives in the server; every completed request (ok or
    error) is recorded with its type, outcome and wall-clock latency.
    {!render} flattens everything into deterministic [key value] pairs
    for the [stats] reply: request counts by type, outcome counters
    (ok / errors / parse_errors / bad_requests / rejects / timeouts /
    internal_errors), plan-cache aggregates are appended by the caller,
    and the histogram appears as cumulative-style [latency_le_<ms>]
    buckets (upper bounds fixed at compile time, so successive scrapes
    are comparable).

    Internally the histogram is a {!Suu_obs.Histogram} sharing the
    instance's single mutex with the counters, so one {!render} is a
    consistent cut: the bucket totals always sum to [requests_total].
    Per-phase timings (parse / queue wait / execute / write) are not
    here — they are process-global {!Suu_obs.Registry} histograms fed by
    the server's spans, appended to the stats reply by the caller. *)

type t

val create : unit -> t

val observe : t -> rtype:string -> code:string option -> latency:float -> unit
(** Record one completed request of type [rtype] ([code = None] for an
    ok reply, [Some code] for an error reply; [latency] in seconds).
    Rejected-at-the-queue requests are recorded with
    [code = Some "overloaded"]. *)

val render : t -> (string * string) list
(** Deterministic key order; values are decimal integers. *)
