exception Line_too_long

exception Read_timeout

let max_line = 8 * 1024 * 1024

type reader = {
  rfd : Unix.file_descr;
  mutable pending : string;
  mutable eof : bool;
}

let reader rfd = { rfd; pending = ""; eof = false }

let strip_cr l =
  let k = String.length l in
  if k > 0 && l.[k - 1] = '\r' then String.sub l 0 (k - 1) else l

(* Block until [rfd] is readable or the absolute monotonic deadline
   passes.  Raised BEFORE the read, so the [Unix_error -> eof] catch
   around the read cannot swallow a timeout into a silent EOF. *)
let wait_readable rfd deadline_ns =
  let rec wait () =
    let remaining =
      Int64.to_float (Int64.sub deadline_ns (Suu_obs.Clock.now_ns ())) /. 1e9
    in
    if remaining <= 0.0 then raise Read_timeout
    else
      match Unix.select [ rfd ] [] [] remaining with
      | [], _, _ -> raise Read_timeout
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
  in
  wait ()

let rec next_line ?deadline_ns rd =
  match String.index_opt rd.pending '\n' with
  | Some i ->
      let line = String.sub rd.pending 0 i in
      rd.pending <-
        String.sub rd.pending (i + 1) (String.length rd.pending - i - 1);
      Some (strip_cr line)
  | None ->
      if rd.eof then
        if rd.pending = "" then None
        else begin
          let l = rd.pending in
          rd.pending <- "";
          Some (strip_cr l)
        end
      else if String.length rd.pending > max_line then raise Line_too_long
      else begin
        (match deadline_ns with
        | Some d -> wait_readable rd.rfd d
        | None -> ());
        let chunk = Bytes.create 65536 in
        match Unix.read rd.rfd chunk 0 (Bytes.length chunk) with
        | 0 ->
            rd.eof <- true;
            next_line ?deadline_ns rd
        | k ->
            rd.pending <- rd.pending ^ Bytes.sub_string chunk 0 k;
            next_line ?deadline_ns rd
        | exception Unix.Unix_error _ ->
            (* Concurrent shutdown during drain, or a reset peer. *)
            rd.eof <- true;
            rd.pending <- "";
            None
      end

let write_all fd s =
  let len = String.length s in
  let pos = ref 0 in
  while !pos < len do
    pos := !pos + Unix.write_substring fd s !pos (len - !pos)
  done
