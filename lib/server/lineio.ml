exception Line_too_long

exception Read_timeout

let max_line = 8 * 1024 * 1024

let strip_cr l =
  let k = String.length l in
  if k > 0 && l.[k - 1] = '\r' then String.sub l 0 (k - 1) else l

module Linebuf = struct
  type t = {
    lines : string Queue.t;
    partial : Buffer.t; (* tail with no '\n' yet *)
  }

  let create () = { lines = Queue.create (); partial = Buffer.create 256 }

  (* Split at feed time so [next] never rescans: each byte is examined
     exactly once no matter how finely the peer fragments its writes.
     The bug the old reader had — an interrupted read discarding the
     partial tail — cannot recur here because the tail only ever leaves
     [partial] by completing into a line or via [take_rest]. *)
  let feed t buf off len =
    let start = ref off in
    let limit = off + len in
    for i = off to limit - 1 do
      if Bytes.unsafe_get buf i = '\n' then begin
        Buffer.add_subbytes t.partial buf !start (i - !start);
        Queue.push (strip_cr (Buffer.contents t.partial)) t.lines;
        Buffer.clear t.partial;
        start := i + 1
      end
    done;
    Buffer.add_subbytes t.partial buf !start (limit - !start);
    if Buffer.length t.partial > max_line then raise Line_too_long

  let next t = Queue.take_opt t.lines

  let take_rest t =
    if Buffer.length t.partial = 0 then None
    else begin
      let l = Buffer.contents t.partial in
      Buffer.clear t.partial;
      Some (strip_cr l)
    end

  let buffered t =
    Buffer.length t.partial
    + Queue.fold (fun acc l -> acc + String.length l + 1) 0 t.lines
end

type src = Fd of Unix.file_descr | Fn of (bytes -> int -> int -> int)

type reader = {
  src : src;
  buf : Linebuf.t;
  chunk : bytes;
  mutable eof : bool;
}

let reader fd =
  { src = Fd fd; buf = Linebuf.create (); chunk = Bytes.create 65536; eof = false }

let reader_of_fn fn =
  { src = Fn fn; buf = Linebuf.create (); chunk = Bytes.create 65536; eof = false }

(* Block until [rfd] is readable or the absolute monotonic deadline
   passes.  Raised BEFORE the read, so the [Unix_error -> eof] catch
   around the read cannot swallow a timeout into a silent EOF. *)
let wait_readable rfd deadline_ns =
  let rec wait () =
    let remaining =
      Int64.to_float (Int64.sub deadline_ns (Suu_obs.Clock.now_ns ())) /. 1e9
    in
    if remaining <= 0.0 then raise Read_timeout
    else
      match Unix.select [ rfd ] [] [] remaining with
      | [], _, _ -> raise Read_timeout
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
  in
  wait ()

let rec next_line ?deadline_ns rd =
  match Linebuf.next rd.buf with
  | Some _ as l -> l
  | None ->
      if rd.eof then Linebuf.take_rest rd.buf
      else begin
        (match (deadline_ns, rd.src) with
        | Some d, Fd fd -> wait_readable fd d
        | _ -> ());
        let do_read buf off len =
          match rd.src with Fd fd -> Unix.read fd buf off len | Fn f -> f buf off len
        in
        match do_read rd.chunk 0 (Bytes.length rd.chunk) with
        | 0 ->
            rd.eof <- true;
            next_line ?deadline_ns rd
        | k ->
            Linebuf.feed rd.buf rd.chunk 0 k;
            next_line ?deadline_ns rd
        | exception Unix.Unix_error (Unix.EINTR, _, _) ->
            (* Transient: retry without touching buffered input — a
               frame split across the interrupted read must reassemble,
               not surface as a truncated-stream parse error. *)
            next_line ?deadline_ns rd
        | exception Unix.Unix_error _ ->
            (* Concurrent shutdown during drain, or a reset peer.  Any
               buffered partial tail is an abandoned frame; drop it so
               the caller sees a clean end of stream. *)
            rd.eof <- true;
            ignore (Linebuf.take_rest rd.buf);
            None
      end

let write_all fd s =
  let len = String.length s in
  let pos = ref 0 in
  while !pos < len do
    pos := !pos + Unix.write_substring fd s !pos (len - !pos)
  done
