module P = Protocol
module Journal = Suu_store.Journal

type mismatch = { seq : int; expected : string; actual : string }

type outcome = {
  total : int;
  replayed : int;
  matched : int;
  mismatched : int;
  skipped : int;
  mismatches : mismatch list;
}

(* Recorded outcomes that depend on load, wall time or fault injection
   rather than on the request: not reproducible, so not comparable. *)
let nondeterministic_response = function
  | P.Err { code = P.Overloaded | P.Timeout | P.Internal; _ } -> true
  | P.Err _ | P.Ok _ -> false

let run ?sim_jobs entries =
  let metrics = Metrics.create () in
  let service = Service.create ?sim_jobs ~metrics () in
  let total = ref 0 and matched = ref 0 and mismatched = ref 0 in
  let skipped = ref 0 in
  let mismatches = ref [] in
  List.iter
    (fun (e : Journal.entry) ->
      incr total;
      match (P.request_of_string e.Journal.request, e.Journal.response) with
      | None, _ | _, None ->
          (* Unparseable request (format skew) or no recorded response
             (the process died with the request in flight). *)
          incr skipped
      | Some req, Some recorded -> (
          match req.P.body with
          | P.Stats -> incr skipped
          | body -> (
              match P.response_of_string recorded with
              | Some r when nondeterministic_response r -> incr skipped
              | recorded_parse ->
                  (* [None] here means the recorded response bytes are
                     not even a well-formed frame — that can never
                     match a reconstruction, so it is a mismatch (e.g.
                     a tampered journal), not a skip. *)
                  ignore recorded_parse;
                  let id = req.P.id in
                  let resp =
                    match Service.handle service body with
                    | Result.Ok fields ->
                        P.Ok { id; rtype = P.body_type body; fields }
                    | Result.Error (code, message) ->
                        P.Err { id; code; message }
                  in
                  let actual = P.response_to_string resp in
                  if String.equal actual recorded then incr matched
                  else begin
                    incr mismatched;
                    mismatches :=
                      { seq = e.Journal.seq; expected = recorded; actual }
                      :: !mismatches
                  end)))
    entries;
  { total = !total; replayed = !matched + !mismatched; matched = !matched;
    mismatched = !mismatched; skipped = !skipped;
    mismatches = List.rev !mismatches }

let file ?sim_jobs path = run ?sim_jobs (Journal.read path)
