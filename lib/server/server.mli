(** The [suu-serve] TCP daemon — a single-threaded event loop in front
    of a worker pool.

    One loop thread owns every socket through a {!Reactor} (epoll on
    Linux, [select] elsewhere): it accepts connections, reads frames
    into per-connection incremental parse buffers, admits completed
    requests to a {e bounded} queue, and writes every reply.  Requests
    pipeline naturally — the loop keeps parsing while earlier requests
    execute, and replies flush as they complete (clients match
    responses by id).  A full queue refuses the offer and the loop
    immediately writes a structured [overloaded] error — backpressure
    instead of unbounded buffering.
    Workers run {!Service.handle} (simulation replications fan out over
    the {!Suu_sim.Parallel} domain pool) and hand the serialized reply
    back to the loop over a wakeup pipe; only the loop touches sockets,
    so no write locks exist.  A peer that stops reading its replies has
    its read interest shed once [outbuf_limit] is exceeded
    ([server.reader.paused]); partial writes park the remainder and
    resume when the socket drains ([server.writer.resumed]).

    Every request carries an absolute deadline — its own [deadline-ms]
    or the server default — checked when the request is dequeued and
    cooperatively during execution, so expired work is answered with a
    [timeout] error instead of holding a worker.  Deadlines live on the
    monotonic clock ({!Suu_obs.Clock}), so a wall-clock step cannot
    expire the whole queue or make a request immortal; wall time is
    used only for the [stats] uptime and latency metrics.

    Faults: a {!Faults} config (the [faults] field, or the [SUU_FAULTS]
    environment variable when the field is [None]) perturbs worker
    replies — drops, delays, spurious [Internal] errors, mid-frame
    connection kills — and injects handler crashes.  A worker crash
    (injected or real) is isolated: the client gets an [Internal]
    error, [server.worker.restarts] is incremented, and the worker
    keeps serving.  With no faults configured the reply path pays one
    option match.

    A malformed frame gets a located [parse] error reply and the parser
    resynchronizes to the next [done]; the connection survives.

    {!stop} is the graceful drain: stop accepting, refuse new offers
    (admissions answer [overloaded] while draining), let the workers
    finish every admitted request, flush every owed reply, then close
    the remaining connections.  {!run} wires SIGINT/SIGTERM to exactly
    that. *)

type t

type config = {
  host : string;  (** bind address (default 127.0.0.1) *)
  port : int;  (** 0 picks an ephemeral port; see {!port} *)
  workers : int;  (** worker-pool size (default 4) *)
  queue_capacity : int;  (** bounded-queue capacity (default 64) *)
  default_deadline_ms : int;
      (** deadline for requests that carry none (default 30_000) *)
  sim_jobs : int option;
      (** domain count for simulate fan-out (default: the
          {!Suu_sim.Parallel} default) *)
  solver : Suu_core.Solver_choice.t option;
      (** LP backend for every policy this server builds.  [None] (the
          default) consults the [SUU_SOLVER] environment variable
          ([simplex], [revised], [mwu], [mwu-EPS]) and falls back to
          {!Suu_core.Solver_choice.serve_default} — certified MWU with
          automatic simplex fallback for tiny instances and failed
          certificates.  A malformed [SUU_SOLVER] fails {!start}. *)
  faults : Faults.config option;
      (** fault-injection config.  [None] (the default) consults the
          [SUU_FAULTS] environment variable; [Some Faults.none]
          forces injection off regardless of the environment. *)
  journal : string option;
      (** write-ahead request journal path.  [None] (the default)
          consults the [SUU_JOURNAL] environment variable; [Some ""]
          forces journaling off regardless of the environment.  When
          armed: every parsed request frame is durably journaled {e
          before} it is offered to the queue, every response is
          journaled before it is written to the socket, and on startup
          the recovered journal warm-starts the instance/policy caches
          ({!Service.warm}).  Recovery truncates a torn tail left by a
          [kill -9].  See {!Replay} for re-execution. *)
  clock_ns : unit -> int64;
      (** monotonic clock for deadline arithmetic (default
          {!Suu_obs.Clock.now_ns}; injectable for tests) *)
  so_sndbuf : int option;
      (** send-buffer size forced onto accepted sockets ([None], the
          default, keeps the OS value).  A tiny value makes the kernel
          exert backpressure after a few KB — the short-write test
          hook. *)
  outbuf_limit : int;
      (** per-connection cap on buffered unsent reply bytes (default
          8 MiB).  Above it the loop stops {e reading} that connection
          — no new admissions — until the backlog halves; memory stays
          bounded against a peer that pipelines but never reads. *)
}

val default_config : config

val start : ?config:config -> unit -> t
(** Bind, listen and spin up the loop and pool.  Raises
    [Unix.Unix_error] when the address is unavailable and
    [Invalid_argument] when [SUU_FAULTS] is set but malformed. *)

val port : t -> int
(** The actually bound port (useful with [port = 0]). *)

val stop : t -> unit
(** Graceful drain-then-stop; blocks until every admitted request has
    been answered and every thread has exited.  Idempotent. *)

val run : ?config:config -> unit -> unit
(** {!start}, print one [listening on HOST:PORT] line, then block until
    SIGINT or SIGTERM and {!stop}. *)
