(** Deterministic re-execution of a request journal.

    [run entries] executes each journaled request against a {e fresh}
    {!Service} — new instance cache, new policies, new plan caches —
    and compares the reconstructed response frame byte-for-byte with
    the journaled one.  Because the service's ok responses are a
    deterministic function of the request (see {!Service}), any
    captured traffic becomes a regression test: a mismatch means the
    engine, a policy, the seeding discipline or the wire rendering
    changed behaviour.

    Entries whose recorded outcome is inherently non-reproducible are
    {e skipped}, not failed:
    - a missing response record (the process died mid-execution);
    - [stats] requests (their bodies report live counters and uptime);
    - recorded [overloaded], [timeout] and [internal] errors (functions
      of load, wall time and fault injection, not of the request);
    - a request frame that no longer parses (journal-format skew).

    Everything else — ok responses and the deterministic [bad-request]
    errors — must match byte-for-byte. *)

type mismatch = {
  seq : int;  (** journal sequence number of the divergent entry *)
  expected : string;  (** the journaled response frame *)
  actual : string;  (** the frame produced by re-execution *)
}

type outcome = {
  total : int;  (** journal entries examined *)
  replayed : int;  (** entries re-executed and compared *)
  matched : int;
  mismatched : int;
  skipped : int;  (** non-reproducible entries (see above) *)
  mismatches : mismatch list;  (** ascending [seq] *)
}

val run : ?sim_jobs:int -> Suu_store.Journal.entry list -> outcome
(** Re-execute [entries] (as recovered by {!Suu_store.Journal.read})
    against a fresh service.  [sim_jobs] bounds the simulation fan-out
    (the ok responses are bit-identical for every value; this only
    controls resource use).  [replayed = matched + mismatched] and
    [total = replayed + skipped]. *)

val file : ?sim_jobs:int -> string -> outcome
(** [run] on the journal at a path (read-only recovery: a torn tail is
    ignored, not truncated).  Raises [Failure] if the file is not a
    record log. *)
