/* Thin epoll(7) binding for the suu-serve reactor.
 *
 * Linux only; every entry point degrades to returning -1 elsewhere so
 * reactor.ml can fall back to its Unix.select backend at runtime.  The
 * OCaml side passes file descriptors directly (they are immediate ints
 * on Unix) and a flat int array for the event results, so no allocation
 * happens on the C side and no custom blocks are needed.
 */

#include <caml/mlvalues.h>
#include <caml/memory.h>
#include <caml/threads.h>

#ifdef __linux__

#include <sys/epoll.h>
#include <errno.h>

CAMLprim value suu_epoll_create(value unit)
{
  (void)unit;
  return Val_int(epoll_create1(0));
}

/* op: 1 = add, 2 = del, 3 = mod (mirrors EPOLL_CTL_*).  events is the
 * raw epoll bitmask built in reactor.ml from the exported constants. */
CAMLprim value suu_epoll_ctl(value epfd, value op, value fd, value events)
{
  struct epoll_event ev;
  ev.events = (uint32_t)Long_val(events);
  ev.data.fd = Int_val(fd);
  return Val_int(epoll_ctl(Int_val(epfd), Int_val(op), Int_val(fd), &ev));
}

/* Fills [out] with (fd, events) pairs; returns the event count, 0 on
 * timeout, -1 on error (-2 for EINTR so the caller can just retry).
 * The runtime lock is released around the wait so worker threads keep
 * executing requests while the reactor sleeps. */
CAMLprim value suu_epoll_wait(value epfd, value timeout_ms, value out)
{
  struct epoll_event evs[1024];
  int max = (int)(Wosize_val(out) / 2);
  int n, i;
  if (max > 1024) max = 1024;
  if (max < 1) return Val_int(-1);
  caml_release_runtime_system();
  n = epoll_wait(Int_val(epfd), evs, max, Int_val(timeout_ms));
  caml_acquire_runtime_system();
  if (n < 0) return Val_int(errno == EINTR ? -2 : -1);
  for (i = 0; i < n; i++) {
    /* Immediates only: no write barrier required. */
    Field(out, 2 * i) = Val_int(evs[i].data.fd);
    Field(out, 2 * i + 1) = Val_long((long)evs[i].events);
  }
  return Val_int(n);
}

#else /* !__linux__ */

CAMLprim value suu_epoll_create(value unit)
{
  (void)unit;
  return Val_int(-1);
}

CAMLprim value suu_epoll_ctl(value epfd, value op, value fd, value events)
{
  (void)epfd; (void)op; (void)fd; (void)events;
  return Val_int(-1);
}

CAMLprim value suu_epoll_wait(value epfd, value timeout_ms, value out)
{
  (void)epfd; (void)timeout_ms; (void)out;
  return Val_int(-1);
}

#endif
