module P = Protocol
module Instance = Suu_core.Instance
module Classify = Suu_dag.Classify

(* Cooperative deadline enforcement: raised at a check point, mapped to
   a structured [timeout] reply in {!handle}. *)
exception Expired

(* One cached instance: the canonical-serialization digest keys it, and
   policies materialize lazily per wire name so their internal plan
   caches survive across requests. *)
type entry = {
  inst : Instance.t;
  policies : (string, Suu_core.Policy.t) Hashtbl.t;
  elock : Mutex.t;
}

type t = {
  lock : Mutex.t;
  cache : (string, entry) Hashtbl.t;
  order : string Queue.t; (* insertion order, FIFO eviction *)
  capacity : int;
  sim_jobs : int option;
  solver : Suu_core.Solver_choice.t option;
  extra_stats : (unit -> (string * string) list) option;
  metrics : Metrics.t;
  clock_ns : unit -> int64;
}

(* Deadlines are absolute monotonic instants (ns), never wall clock:
   an NTP step or DST jump must not expire every queued request at once
   (or make them immortal).  The clock is injectable for tests. *)
let check t ~deadline =
  match deadline with
  | Some d when Int64.compare (t.clock_ns ()) d > 0 -> raise Expired
  | _ -> ()

let create ?(instance_cache_capacity = 64) ?sim_jobs ?solver ?extra_stats
    ?(clock_ns = Suu_obs.Clock.now_ns) ~metrics () =
  if instance_cache_capacity < 1 then
    invalid_arg "Service.create: instance_cache_capacity must be >= 1";
  (* The online family registers itself on demand; a server must be
     able to answer policy=lzf/backfill whether or not anything else
     referenced [Suu_sched] first. *)
  Suu_sched.Register.ensure ();
  { lock = Mutex.create (); cache = Hashtbl.create 64;
    order = Queue.create (); capacity = instance_cache_capacity; sim_jobs;
    solver; extra_stats; metrics; clock_ns }

let entry_for t inst =
  (* Same digest function as Protocol.instance_digest / shard routing. *)
  let digest = Digest.string (Suu_core.Instance_io.to_string inst) in
  Mutex.lock t.lock;
  let e =
    match Hashtbl.find_opt t.cache digest with
    | Some e -> e
    | None ->
        while Hashtbl.length t.cache >= t.capacity do
          match Queue.take_opt t.order with
          | Some k -> Hashtbl.remove t.cache k
          | None -> Hashtbl.reset t.cache
        done;
        let e =
          { inst; policies = Hashtbl.create 4; elock = Mutex.create () }
        in
        Hashtbl.add t.cache digest e;
        Queue.add digest t.order;
        e
  in
  Mutex.unlock t.lock;
  e

(* --- policy dispatch (one registry for server, CLI and bench) --- *)

module Registry = Suu_core.Policy_registry

let policy_names () = Registry.names ()

let shape inst = Classify.classify (Instance.dag inst)

(* Shape validation happens in the registry rather than being left to
   the engine's Invalid_schedule: the client gets "inapplicable", not
   "policy bug". *)
let build_policy ?solver name inst =
  match Registry.build ?solver name inst with
  | Result.Ok _ as ok -> ok
  | Result.Error (`Unknown msg) | Result.Error (`Inapplicable msg) ->
      Result.Error (P.Bad_request, msg)

let get_policy t inst name =
  let e = entry_for t inst in
  Mutex.lock e.elock;
  let r =
    match Hashtbl.find_opt e.policies name with
    | Some p -> Result.Ok p
    | None -> (
        (* Build against the cached instance value, so every request
           with this digest shares one policy (and one plan cache). *)
        match build_policy ?solver:t.solver name e.inst with
        | Result.Ok p ->
            Hashtbl.add e.policies name p;
            Result.Ok p
        | Result.Error _ as err -> err)
  in
  Mutex.unlock e.elock;
  r

(* --- request bodies --- *)

let f17 = Printf.sprintf "%.17g"

let applicable_policies inst = Registry.applicable inst

let describe inst =
  [ ("name", Instance.name inst);
    ("machines", string_of_int (Instance.m inst));
    ("jobs", string_of_int (Instance.n inst));
    ("edges",
     string_of_int (List.length (Suu_dag.Dag.edges (Instance.dag inst))));
    ("shape", Classify.describe (shape inst));
    ("policies", String.concat " " (applicable_policies inst)) ]

let lower_bound t ~deadline inst =
  let module LB = Suu_core.Lower_bound in
  let cp = LB.critical_path inst in
  let work = LB.work inst in
  check t ~deadline;
  let lp = LB.lp1_half ?solver:t.solver inst in
  [ ("lp1_half", f17 lp); ("critical_path", f17 cp); ("work", f17 work);
    ("combined", f17 (Float.max 1.0 (Float.max lp (Float.max cp work)))) ]

(* An LP-free policy answers without ever probing the plan cache; count
   the request as an explicit bypass so the no-LP traffic share is
   visible and the hit-rate denominator stays LP-only. *)
let note_bypass name =
  if Registry.lp_free name then Suu_core.Plan_cache.note_bypass ()

let plan t ~deadline inst name ~seed =
  match get_policy t inst name with
  | Result.Error _ as e -> e
  | Result.Ok policy ->
      note_bypass name;
      let m = Instance.m inst and n = Instance.n inst in
      let trace_rng, policy_rng = (Suu_sim.Runner.rep_rngs ~seed ~reps:1).(0) in
      let trace = Suu_sim.Trace.draw ~n trace_rng in
      let busy = Array.make m 0 in
      let on_step ~time ~assignment =
        if time land 4095 = 0 then check t ~deadline;
        Array.iteri
          (fun i j -> if j >= 0 then busy.(i) <- busy.(i) + 1)
          assignment
      in
      let r = Suu_sim.Engine.run inst policy ~trace ~rng:policy_rng ~on_step in
      let mk = float_of_int (max 1 r.Suu_sim.Engine.makespan) in
      Result.Ok
        [ ("policy", Suu_core.Policy.name policy);
          ("seed", string_of_int seed);
          ("makespan", string_of_int r.Suu_sim.Engine.makespan);
          ("busy_steps", string_of_int r.Suu_sim.Engine.busy_steps);
          ("wasted_steps", string_of_int r.Suu_sim.Engine.wasted_steps);
          ("idle_steps", string_of_int r.Suu_sim.Engine.idle_steps);
          ("utilization",
           String.concat " "
             (Array.to_list
                (Array.map (fun b -> f17 (float_of_int b /. mk)) busy))) ]

(* Replication batches between deadline checks: small enough that an
   expired request stops within a bounded slice of extra work, large
   enough that the domain fan-out amortizes. *)
let sim_batch = 32

let simulate t ~deadline inst name ~reps ~seed =
  match get_policy t inst name with
  | Result.Error _ as e -> e
  | Result.Ok policy ->
      note_bypass name;
      let n = Instance.n inst in
      let rngs = Suu_sim.Runner.rep_rngs ~seed ~reps in
      let results = Array.make reps 0.0 in
      let lo = ref 0 in
      while !lo < reps do
        check t ~deadline;
        let base = !lo in
        let hi = min reps (base + sim_batch) in
        (* Replication [k] draws only from [rngs.(k)] and writes only
           [results.(k)]: bit-identical for every [sim_jobs], hence for
           every server worker count. *)
        Suu_sim.Parallel.parallel_for ?jobs:t.sim_jobs ~n:(hi - base)
          (fun k ->
            let trace_rng, policy_rng = rngs.(base + k) in
            let trace = Suu_sim.Trace.draw ~n trace_rng in
            results.(base + k) <-
              float_of_int
                (Suu_sim.Engine.makespan inst policy ~trace ~rng:policy_rng));
        lo := hi
      done;
      let s = Suu_stats.Summary.of_array results in
      Result.Ok
        [ ("policy", Suu_core.Policy.name policy);
          ("reps", string_of_int reps);
          ("seed", string_of_int seed);
          ("mean", f17 s.Suu_stats.Summary.mean);
          ("stddev", f17 s.Suu_stats.Summary.stddev);
          ("ci95", f17 s.Suu_stats.Summary.ci95);
          ("min", f17 s.Suu_stats.Summary.min);
          ("max", f17 s.Suu_stats.Summary.max) ]

let stats_fields t =
  let module PC = Suu_core.Plan_cache in
  let pc = PC.global_stats () in
  Mutex.lock t.lock;
  let entries = Hashtbl.length t.cache in
  Mutex.unlock t.lock;
  (* Per-shard hit rates next to the global one: raw counts live in the
     obs.* snapshot below; the precomputed rates are what an operator
     (and the bench gate) actually watches, and skew across shards is
     how a bad key distribution would show up. *)
  let shard_rates =
    Array.to_list
      (Array.mapi
         (fun i s ->
           (Printf.sprintf "plan_cache_shard%d_hit_rate" i,
            f17 (PC.hit_rate s)))
         (PC.shard_stats ()))
  in
  Metrics.render t.metrics
  @ [ ("plan_cache_hits", string_of_int pc.PC.hits);
      ("plan_cache_misses", string_of_int pc.PC.misses);
      ("plan_cache_evictions", string_of_int pc.PC.evictions);
      ("plan_cache_bypass", string_of_int (PC.bypasses ()));
      ("plan_cache_hit_rate", f17 (PC.hit_rate pc));
      ("solver",
       Suu_core.Solver_choice.name
         (Option.value t.solver ~default:Suu_core.Solver_choice.default));
      ("instance_cache_entries", string_of_int entries) ]
  @ shard_rates
  @ (match t.extra_stats with Some f -> f () | None -> [])
  (* Full process-wide observability snapshot: every registry counter
     and per-phase latency quantiles.  Prefixed "obs." so clients can
     show the classic summary by default and the firehose on demand. *)
  @ Suu_obs.Registry.render ()

(* Warm-start from a recovered journal: re-populate the instance cache
   and materialize the policies the journaled requests named, without
   executing anything.  Building a policy never moves the plan-cache
   statistics — {!Suu_core.Plan_cache} counters fire only when
   [plan ()] runs during execution, and the one eager builder
   ({!Suu_core.Suu_i_obl}) goes through the uncounted
   {!Suu_core.Plan_cache.shared_plan} — so booting warm cannot inflate
   the hit/miss statistics a client later reads from [stats].
   [store.warm_start.loaded] counts the bodies that contributed to the
   caches instead. *)
let c_warm_loaded = lazy (Suu_obs.Registry.counter "store.warm_start.loaded")

let warm t body =
  let loaded =
    match body with
    | P.Stats -> false
    | P.Describe inst | P.Lower_bound inst ->
        ignore (entry_for t inst);
        true
    | P.Plan { inst; policy; _ } | P.Simulate { inst; policy; _ } -> (
        match get_policy t inst policy with
        | Result.Ok _ -> true
        | Result.Error _ ->
            (* Unknown/inapplicable policy: the instance itself is
               still worth caching (entry_for ran inside get_policy). *)
            true)
  in
  if loaded then Suu_obs.Counter.incr (Lazy.force c_warm_loaded);
  loaded

let handle t ?deadline body =
  try
    check t ~deadline;
    match body with
    | P.Stats -> Result.Ok (stats_fields t)
    | P.Describe inst -> Result.Ok (describe inst)
    | P.Lower_bound inst -> Result.Ok (lower_bound t ~deadline inst)
    | P.Plan { inst; policy; seed } -> plan t ~deadline inst policy ~seed
    | P.Simulate { inst; policy; reps; seed } ->
        simulate t ~deadline inst policy ~reps ~seed
  with
  | Expired -> Result.Error (P.Timeout, "deadline exceeded")
  | Suu_sim.Engine.Invalid_schedule msg ->
      Result.Error (P.Internal, "policy violated the model: " ^ msg)
  | Suu_sim.Engine.Horizon_exceeded cap ->
      Result.Error
        (P.Bad_request,
         Printf.sprintf "execution exceeded the %d-step cap" cap)
  | Invalid_argument msg | Failure msg -> Result.Error (P.Bad_request, msg)
