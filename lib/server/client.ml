module P = Protocol

type t = {
  host : string;
  port : int;
  retries : int;
  timeout_ms : int option;
  backoff_ms : int;
  rng : Suu_prng.Rng.t option; (* jitter source; present iff retries > 0 *)
  mutable fd : Unix.file_descr;
  mutable rd : Lineio.reader;
  mutable seq : int; (* auto-attached request ids when retrying *)
  mutable closed : bool;
}

exception Protocol_failure of string

(* Client-side resilience counters.  They live in the client process's
   own registry (the server cannot see a reply the network dropped);
   [suu client stats --full] appends them to the server snapshot. *)
let c_retries = lazy (Suu_obs.Registry.counter "client.retries")
let c_timeouts = lazy (Suu_obs.Registry.counter "client.timeouts")
let c_reconnects = lazy (Suu_obs.Registry.counter "client.reconnects")
let c_giveups = lazy (Suu_obs.Registry.counter "client.giveups")

let dial ~host ~port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     Unix.setsockopt fd Unix.TCP_NODELAY true
   with e ->
     Unix.close fd;
     raise e);
  fd

(* Exponential backoff, capped at 2 s, plus up to 50% jitter drawn from
   the client's seeded generator — deterministic per client, decorrelated
   across clients with different seeds.  [attempt >= 1]. *)
let backoff_delay ~backoff_ms ~rng attempt =
  let base =
    Float.min 2.0
      (float_of_int backoff_ms /. 1000.0 *. (2.0 ** float_of_int (attempt - 1)))
  in
  let jitter =
    match rng with
    | Some r when base > 0.0 -> Suu_prng.Rng.float r (base *. 0.5)
    | _ -> 0.0
  in
  Thread.delay (base +. jitter)

let connect ?(host = "127.0.0.1") ?(retries = 0) ?timeout_ms ?(backoff_ms = 25)
    ?(retry_seed = 0) ~port () =
  if retries < 0 then invalid_arg "Client.connect: retries must be >= 0";
  if backoff_ms < 0 then invalid_arg "Client.connect: backoff_ms must be >= 0";
  (match timeout_ms with
  | Some ms when ms <= 0 ->
      invalid_arg "Client.connect: timeout_ms must be positive"
  | _ -> ());
  let rng =
    if retries > 0 then Some (Suu_prng.Rng.create ~seed:retry_seed) else None
  in
  (* The initial dial retries too: a refused connection (server still
     binding, or restarting) is as transient as a dropped reply. *)
  let rec dial_retry attempt =
    match dial ~host ~port with
    | fd -> fd
    | exception (Unix.Unix_error _ as e) ->
        if attempt < retries then begin
          Suu_obs.Counter.incr (Lazy.force c_retries);
          backoff_delay ~backoff_ms ~rng (attempt + 1);
          dial_retry (attempt + 1)
        end
        else raise e
  in
  let fd = dial_retry 0 in
  { host; port; retries; timeout_ms; backoff_ms; rng; fd;
    rd = Lineio.reader fd; seq = 0; closed = false }

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

(* A fresh socket after any failed attempt: the old stream may still
   carry a late or torn reply that would otherwise be matched against
   the retried request. *)
let reconnect t =
  (try Unix.close t.fd with Unix.Unix_error _ -> ());
  let fd = dial ~host:t.host ~port:t.port in
  t.fd <- fd;
  t.rd <- Lineio.reader fd;
  Suu_obs.Counter.incr (Lazy.force c_reconnects)

let resp_id = function P.Ok { id; _ } -> id | P.Err { id; _ } -> id

let call_once t ?id ?deadline_ms body =
  let req = { P.id; deadline_ms; body } in
  Lineio.write_all t.fd (P.request_to_string req);
  (* The timeout covers the whole response read as one absolute
     monotonic deadline, not per-line. *)
  let deadline_ns =
    match t.timeout_ms with
    | None -> None
    | Some ms ->
        Some
          (Int64.add (Suu_obs.Clock.now_ns ())
             (Int64.mul (Int64.of_int ms) 1_000_000L))
  in
  match
    P.read_response ~next_line:(fun () -> Lineio.next_line ?deadline_ns t.rd)
  with
  | Some resp ->
      (match id with
      | Some sent when resp_id resp <> Some sent ->
          raise
            (Protocol_failure
               (Printf.sprintf "response id mismatch (sent %S)" sent))
      | _ -> ());
      resp
  | None -> raise (Protocol_failure "connection closed before response")
  | exception P.Parse_error { line; msg } ->
      raise
        (Protocol_failure
           ("malformed response: " ^ P.parse_error_message ~line ~msg))
  | exception Lineio.Line_too_long ->
      raise (Protocol_failure "malformed response: line too long")

(* What a retry may safely repeat: every request type is idempotent
   (pure computation or a read of stats), so the only correctness
   requirement is that a reply is matched to its own request — the
   per-attempt id check plus the always-fresh socket give that.

   Retriable: transport errors (EPIPE/ECONNRESET/ECONNREFUSED), torn or
   malformed frames (the injected mid-frame kill), read timeouts
   (dropped or delayed replies) and the server-side transient errors
   [Internal] and [Overloaded].  NOT retriable: [Bad_request], [Parse]
   and [Timeout] replies — the request itself is at fault and would
   fail identically again. *)
let call t ?(auto_id = true) ?id ?deadline_ms body =
  if t.closed then raise (Protocol_failure "client is closed");
  let id =
    match id with
    | Some _ -> id
    | None when auto_id && t.retries > 0 ->
        t.seq <- t.seq + 1;
        Some (Printf.sprintf "c%d" t.seq)
    | None -> None
  in
  let rec go attempt =
    let result =
      try
        if attempt > 0 then begin
          Suu_obs.Counter.incr (Lazy.force c_retries);
          backoff_delay ~backoff_ms:t.backoff_ms ~rng:t.rng attempt;
          reconnect t
        end;
        Result.Ok (call_once t ?id ?deadline_ms body)
      with
      | Lineio.Read_timeout ->
          Suu_obs.Counter.incr (Lazy.force c_timeouts);
          Result.Error
            (Protocol_failure
               (Printf.sprintf "no response within %dms"
                  (Option.value t.timeout_ms ~default:0)))
      | (Protocol_failure _ | Unix.Unix_error _) as e -> Result.Error e
    in
    match result with
    | Result.Ok (P.Err { code = P.Internal | P.Overloaded; _ } as resp) ->
        if attempt < t.retries then go (attempt + 1)
        else begin
          if t.retries > 0 then Suu_obs.Counter.incr (Lazy.force c_giveups);
          resp
        end
    | Result.Ok resp -> resp
    | Result.Error e ->
        if attempt < t.retries then go (attempt + 1)
        else begin
          if t.retries > 0 then Suu_obs.Counter.incr (Lazy.force c_giveups);
          raise e
        end
  in
  go 0

let fields_exn resp =
  match resp with
  | P.Ok { fields; _ } -> fields
  | P.Err { code; message; _ } ->
      raise
        (Protocol_failure
           (Printf.sprintf "server error [%s]: %s"
              (P.error_code_to_string code) message))

let describe t ?deadline_ms inst =
  fields_exn (call t ?deadline_ms (P.Describe inst))

let lower_bound t ?deadline_ms inst =
  fields_exn (call t ?deadline_ms (P.Lower_bound inst))

let plan t ?deadline_ms ?(seed = 0) ~policy inst =
  fields_exn (call t ?deadline_ms (P.Plan { inst; policy; seed }))

let simulate t ?deadline_ms ?(seed = 0) ~policy ~reps inst =
  fields_exn (call t ?deadline_ms (P.Simulate { inst; policy; reps; seed }))

let stats t ?deadline_ms () = fields_exn (call t ?deadline_ms P.Stats)
