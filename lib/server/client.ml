module P = Protocol

type t = { fd : Unix.file_descr; rd : Lineio.reader; mutable closed : bool }

exception Protocol_failure of string

let connect ?(host = "127.0.0.1") ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd
       (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     Unix.setsockopt fd Unix.TCP_NODELAY true
   with e ->
     Unix.close fd;
     raise e);
  { fd; rd = Lineio.reader fd; closed = false }

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let call t ?id ?deadline_ms body =
  let req = { P.id; deadline_ms; body } in
  Lineio.write_all t.fd (P.request_to_string req);
  match P.read_response ~next_line:(fun () -> Lineio.next_line t.rd) with
  | Some resp -> resp
  | None -> raise (Protocol_failure "connection closed before response")
  | exception P.Parse_error { line; msg } ->
      raise
        (Protocol_failure
           ("malformed response: " ^ P.parse_error_message ~line ~msg))
  | exception Lineio.Line_too_long ->
      raise (Protocol_failure "malformed response: line too long")

let fields_exn resp =
  match resp with
  | P.Ok { fields; _ } -> fields
  | P.Err { code; message; _ } ->
      raise
        (Protocol_failure
           (Printf.sprintf "server error [%s]: %s"
              (P.error_code_to_string code) message))

let describe t ?deadline_ms inst =
  fields_exn (call t ?deadline_ms (P.Describe inst))

let lower_bound t ?deadline_ms inst =
  fields_exn (call t ?deadline_ms (P.Lower_bound inst))

let plan t ?deadline_ms ?(seed = 0) ~policy inst =
  fields_exn (call t ?deadline_ms (P.Plan { inst; policy; seed }))

let simulate t ?deadline_ms ?(seed = 0) ~policy ~reps inst =
  fields_exn (call t ?deadline_ms (P.Simulate { inst; policy; reps; seed }))

let stats t ?deadline_ms () = fields_exn (call t ?deadline_ms P.Stats)
