(** Deterministic fault injection for the serve path.

    When a fault config is active the server perturbs the worker reply
    path: replies can be dropped, delayed, replaced with a spurious
    [Internal] error, or cut mid-frame (the connection is killed after a
    partial response line), and request processing itself can be made to
    crash with {!Injected_crash} before the handler runs.  Each fault
    point draws from its own generator seeded from [seed], so the total
    number of faults injected over a run is reproducible; every injected
    fault increments an [obs] counter [faults.injected.<point>].

    Configs come from a compact spec string — e.g.
    ["drop=0.05,delay=0.1:25,error=0.01,kill=0.01,crash=0.02,seed=42"] —
    passed via [suu serve --faults] or the [SUU_FAULTS] environment
    variable.  With no config the server's fast path pays a single
    option match per reply. *)

exception Injected_crash
(** Raised by {!maybe_crash} to simulate a handler crash; the server's
    worker isolation must treat it like any escaping exception. *)

type config = {
  drop : float;  (** probability a reply is silently discarded *)
  delay : float;  (** probability a reply is delayed by [delay_ms] *)
  delay_ms : int;  (** length of an injected delay (default 10) *)
  error : float;  (** probability a reply becomes an [Internal] error *)
  kill : float;  (** probability the connection dies mid-frame *)
  crash : float;  (** probability the worker crashes before handling *)
  seed : int;  (** seed for the per-point generators (default 0) *)
}

val none : config
(** All probabilities zero. *)

val active : config -> bool
(** [true] iff any probability is positive. *)

val of_spec : string -> (config, string) result
(** Parse a spec string: comma-separated [key=value] with keys [drop],
    [delay] (value [P] or [P:MS]), [error], [kill], [crash] (all
    probabilities in [0, 1]) and [seed] (integer).  Unset keys keep
    their {!none} defaults; empty fields are ignored. *)

val to_spec : config -> string
(** Normalized round-trippable spec, for logs and bench artifacts. *)

val env_var : string
(** ["SUU_FAULTS"]. *)

val of_env : unit -> (config, string) result option
(** Parse {!env_var} when set and non-empty; [None] otherwise. *)

type t
(** An armed injector: a config plus its seeded per-point generators and
    counters.  Safe to share across worker threads. *)

val create : config -> t

val config : t -> config

val maybe_crash : t -> unit
(** Crash-point decision: raises {!Injected_crash} with probability
    [crash] (and counts it), returns otherwise. *)

type outcome =
  | Deliver  (** send the reply normally *)
  | Drop  (** discard the reply; the client sees silence *)
  | Error  (** replace the reply with an [Internal] error *)
  | Kill  (** write a partial frame, then shut the connection down *)

type fate = { delay_s : float option; outcome : outcome }

val reply_fate : t -> fate
(** Decide what happens to one reply.  The delay (if any) composes with
    the outcome: a reply can be delayed and then dropped.  Each injected
    disposition is counted even when a preceding one already fired, so
    per-point totals depend only on the decision count. *)
