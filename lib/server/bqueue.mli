(** Bounded blocking FIFO queue — the server's backpressure point.

    Producers (connection readers) offer work with the non-blocking
    {!try_push}: when the queue is at capacity the offer is {e refused}
    rather than buffered, so overload surfaces immediately as a
    structured [overloaded] reply instead of unbounded memory growth and
    silently exploding latency.  Consumers (the worker pool) block in
    {!pop}.

    {!close} starts the drain: further pushes are refused, but {!pop}
    keeps returning queued items until the queue is empty and only then
    reports exhaustion — exactly the graceful-shutdown order (stop
    accepting, finish what was admitted). *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] when [capacity < 1]. *)

val try_push : 'a t -> 'a -> bool
(** [try_push q x] enqueues [x] and returns [true], or returns [false]
    without blocking when the queue is full or closed. *)

val pop : 'a t -> 'a option
(** [pop q] blocks until an item is available and dequeues it (FIFO).
    Returns [None] once the queue is closed {e and} drained. *)

val try_pop : 'a t -> 'a option
(** Dequeue without blocking: [None] when currently empty (closed or
    not).  The event loop drains its completion queue with this — it
    must never block. *)

val close : 'a t -> unit
(** Refuse further pushes and wake all blocked consumers.  Idempotent. *)

val length : 'a t -> int

val capacity : 'a t -> int
