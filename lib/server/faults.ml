(* Configurable fault injection for the serve path.

   Each fault point carries its own seeded generator, so the number of
   faults injected over N decisions at a point is a pure function of
   (seed, N) — worker interleaving moves faults between requests but
   never changes the totals, which keeps chaos-bench artifacts
   comparable across runs. *)

exception Injected_crash

type config = {
  drop : float;
  delay : float;
  delay_ms : int;
  error : float;
  kill : float;
  crash : float;
  seed : int;
}

let none =
  { drop = 0.0; delay = 0.0; delay_ms = 10; error = 0.0; kill = 0.0;
    crash = 0.0; seed = 0 }

let active c =
  c.drop > 0.0 || c.delay > 0.0 || c.error > 0.0 || c.kill > 0.0
  || c.crash > 0.0

(* One point = one probability, one generator, one obs counter.  The
   counters are interned lazily so a faults-off process never touches
   the registry. *)
type point = {
  p : float;
  rng : Suu_prng.Rng.t;
  counter : Suu_obs.Counter.t Lazy.t;
}

type t = {
  config : config;
  lock : Mutex.t;
  p_drop : point;
  p_delay : point;
  p_error : point;
  p_kill : point;
  p_crash : point;
}

let point ~seed ~salt ~p name =
  { p;
    rng = Suu_prng.Rng.create ~seed:(seed + salt);
    counter = lazy (Suu_obs.Registry.counter ("faults.injected." ^ name)) }

let create config =
  let seed = config.seed in
  { config; lock = Mutex.create ();
    p_drop = point ~seed ~salt:1 ~p:config.drop "drop";
    p_delay = point ~seed ~salt:2 ~p:config.delay "delay";
    p_error = point ~seed ~salt:3 ~p:config.error "error";
    p_kill = point ~seed ~salt:4 ~p:config.kill "kill";
    p_crash = point ~seed ~salt:5 ~p:config.crash "crash" }

let config t = t.config

(* Every decision consumes exactly one draw from its point's generator,
   whether or not the point can fire: the k-th decision at a point is
   the same coin in every run. *)
let fire t pt =
  Mutex.lock t.lock;
  let u = Suu_prng.Rng.uniform_open pt.rng in
  Mutex.unlock t.lock;
  let hit = pt.p > 0.0 && u < pt.p in
  if hit then Suu_obs.Counter.incr (Lazy.force pt.counter);
  hit

let maybe_crash t = if fire t t.p_crash then raise Injected_crash

type outcome = Deliver | Drop | Error | Kill

type fate = { delay_s : float option; outcome : outcome }

let reply_fate t =
  let delay_s =
    if fire t t.p_delay then
      Some (float_of_int t.config.delay_ms /. 1000.0)
    else None
  in
  (* The disposition draws are all consumed even once one fires, to keep
     per-point draw counts independent of the other points' outcomes. *)
  let drop = fire t t.p_drop in
  let error = fire t t.p_error in
  let kill = fire t t.p_kill in
  let outcome =
    if drop then Drop else if error then Error else if kill then Kill
    else Deliver
  in
  { delay_s; outcome }

(* --- spec parsing --- *)

(* "drop=0.05,delay=0.1:25,error=0.01,kill=0.01,crash=0.02,seed=7":
   comma-separated key=value; probabilities in [0, 1]; delay takes an
   optional ":ms" suffix for the injected delay length. *)

let spec_syntax =
  "expected comma-separated fields drop=P | delay=P[:MS] | error=P | \
   kill=P | crash=P | seed=N"

let parse_prob what s =
  match float_of_string_opt (String.trim s) with
  | Some p when p >= 0.0 && p <= 1.0 -> Result.Ok p
  | _ ->
      Result.Error
        (Printf.sprintf "%s: expected a probability in [0, 1], got %S" what s)

let of_spec spec =
  let ( let* ) = Result.bind in
  let field acc item =
    let* c = acc in
    let item = String.trim item in
    if item = "" then Result.Ok c
    else
      match String.index_opt item '=' with
      | None ->
          Result.Error
            (Printf.sprintf "bad field %S (%s)" item spec_syntax)
      | Some eq -> (
          let key = String.trim (String.sub item 0 eq) in
          let v = String.sub item (eq + 1) (String.length item - eq - 1) in
          match key with
          | "drop" ->
              let* p = parse_prob "drop" v in
              Result.Ok { c with drop = p }
          | "error" ->
              let* p = parse_prob "error" v in
              Result.Ok { c with error = p }
          | "kill" ->
              let* p = parse_prob "kill" v in
              Result.Ok { c with kill = p }
          | "crash" ->
              let* p = parse_prob "crash" v in
              Result.Ok { c with crash = p }
          | "seed" -> (
              match int_of_string_opt (String.trim v) with
              | Some s -> Result.Ok { c with seed = s }
              | None ->
                  Result.Error
                    (Printf.sprintf "seed: expected an integer, got %S" v))
          | "delay" -> (
              match String.index_opt v ':' with
              | None ->
                  let* p = parse_prob "delay" v in
                  Result.Ok { c with delay = p }
              | Some colon -> (
                  let* p =
                    parse_prob "delay" (String.sub v 0 colon)
                  in
                  let ms =
                    String.sub v (colon + 1) (String.length v - colon - 1)
                  in
                  match int_of_string_opt (String.trim ms) with
                  | Some d when d >= 0 ->
                      Result.Ok { c with delay = p; delay_ms = d }
                  | _ ->
                      Result.Error
                        (Printf.sprintf
                           "delay: expected a millisecond count, got %S" ms)))
          | _ ->
              Result.Error
                (Printf.sprintf "unknown field %S (%s)" key spec_syntax))
  in
  List.fold_left field (Result.Ok none) (String.split_on_char ',' spec)

let to_spec c =
  let fg = Printf.sprintf "%g" in
  String.concat ","
    [ "drop=" ^ fg c.drop;
      "delay=" ^ fg c.delay ^ ":" ^ string_of_int c.delay_ms;
      "error=" ^ fg c.error; "kill=" ^ fg c.kill; "crash=" ^ fg c.crash;
      "seed=" ^ string_of_int c.seed ]

let env_var = "SUU_FAULTS"

let of_env () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> None
  | Some spec -> Some (of_spec spec)
