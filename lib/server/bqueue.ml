type 'a t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  items : 'a Queue.t;
  capacity : int;
  mutable closed : bool;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Bqueue.create: capacity must be >= 1";
  { lock = Mutex.create (); nonempty = Condition.create ();
    items = Queue.create (); capacity; closed = false }

let try_push t x =
  Mutex.lock t.lock;
  let ok = (not t.closed) && Queue.length t.items < t.capacity in
  if ok then begin
    Queue.add x t.items;
    Condition.signal t.nonempty
  end;
  Mutex.unlock t.lock;
  ok

let pop t =
  Mutex.lock t.lock;
  let rec wait () =
    match Queue.take_opt t.items with
    | Some x -> Some x
    | None ->
        if t.closed then None
        else begin
          Condition.wait t.nonempty t.lock;
          wait ()
        end
  in
  let r = wait () in
  Mutex.unlock t.lock;
  r

let try_pop t =
  Mutex.lock t.lock;
  let r = Queue.take_opt t.items in
  Mutex.unlock t.lock;
  r

let close t =
  Mutex.lock t.lock;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock

let length t =
  Mutex.lock t.lock;
  let n = Queue.length t.items in
  Mutex.unlock t.lock;
  n

let capacity t = t.capacity
