(* The suu-router coordinator: accepts the v1 wire protocol unchanged,
   hashes each request's instance digest onto the rendezvous ring, and
   proxies to the owning shard over pooled retrying clients.

   Determinism argument, end to end: the digest is the canonical
   Instance_io rendering (Protocol.instance_digest), placement is a
   pure function of (shard id, digest) (Ring), every shard runs the
   same deterministic service, and the proxy re-serializes responses
   through the same canonical printer the server uses — so a routed
   reply is byte-identical to an unrouted one, and repeated requests
   for one instance land on one shard, whose plan cache, instance
   cache, journal and result store stay hot for exactly that slice of
   the keyspace. *)

module P = Suu_server.Protocol
module Client = Suu_server.Client
module Lineio = Suu_server.Lineio

let c_route = lazy (Suu_obs.Registry.counter "router.route")
let h_route = lazy (Suu_obs.Registry.histogram "router.route")
let c_failover = lazy (Suu_obs.Registry.counter "router.failover")
let c_respawn = lazy (Suu_obs.Registry.counter "router.respawns")
let c_no_shard = lazy (Suu_obs.Registry.counter "router.no_live_shard")

type shard_spec = {
  id : string;
  host : string;
  port : int;
  child : Spawn.child option;
  respawn : (unit -> Spawn.child) option;
}

type config = {
  host : string;
  port : int; (* 0 = ephemeral *)
  retries : int; (* per proxied call, within one shard *)
  timeout_ms : int; (* shard-side response timeout per attempt *)
  backoff_ms : int;
  pool_capacity : int;
  health_interval_ms : int;
  fail_threshold : int;
  probe_timeout_ms : int;
}

let default_config =
  { host = "127.0.0.1"; port = 0; retries = 2; timeout_ms = 30_000;
    backoff_ms = 25; pool_capacity = 8; health_interval_ms = 500;
    fail_threshold = 2; probe_timeout_ms = 1_000 }

type shard = {
  sid : string;
  shost : string;
  sport : int;
  pool : Pool.t;
  mutable child : Spawn.child option;
  srespawn : (unit -> Spawn.child) option;
  mutable drain_t : Thread.t option;
  mutable proxied : int;
  plock : Mutex.t;
}

type conn = { fd : Unix.file_descr }

type t = {
  cfg : config;
  lfd : Unix.file_descr;
  bound_port : int;
  shards : shard array;
  ring : Ring.t;
  mutable health : Health.t option;
  started : float;
  stopping : bool Atomic.t;
  mutable accept_thread : Thread.t option;
  conns : (int, conn * Thread.t) Hashtbl.t;
  conns_lock : Mutex.t;
  mutable next_conn : int;
  stop_lock : Mutex.t;
  mutable stopped : bool;
}

let port t = t.bound_port

let shard_by_id t id =
  (* Tiny arrays; linear scan is fine. *)
  let found = ref None in
  Array.iter (fun s -> if s.sid = id then found := Some s) t.shards;
  match !found with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Router: unknown shard %S" id)

let count_proxied s =
  Mutex.lock s.plock;
  s.proxied <- s.proxied + 1;
  Mutex.unlock s.plock

let proxied s =
  Mutex.lock s.plock;
  let n = s.proxied in
  Mutex.unlock s.plock;
  n

let health t =
  match t.health with Some h -> h | None -> assert false

let is_live t id = Health.is_live (health t) id

(* --- probing and respawn --- *)

let try_respawn s =
  match s.srespawn with
  | None -> ()
  | Some f -> (
      match f () with
      | child -> (
          s.child <- Some child;
          match Spawn.wait_ready child with
          | Result.Ok _ ->
              Suu_obs.Counter.incr (Lazy.force c_respawn);
              s.drain_t <-
                Some
                  (Spawn.drain
                     ~echo:(fun line ->
                       Printf.eprintf "suu-router: [%s] %s\n%!" s.sid line)
                     child);
              Printf.eprintf "suu-router: shard %s respawned (pid %d)\n%!"
                s.sid (Spawn.pid child)
          | Result.Error msg ->
              Printf.eprintf "suu-router: shard %s respawn failed: %s\n%!"
                s.sid msg)
      | exception e ->
          Printf.eprintf "suu-router: shard %s respawn failed: %s\n%!" s.sid
            (Printexc.to_string e))

let probe t id =
  let s = shard_by_id t id in
  match s.child with
  | Some child when not (Spawn.alive child) ->
      (* The child is gone: re-routing is already in force (mark-down),
         bring a warm replacement up on the same port and journal; the
         next probe tick marks it up. *)
      if not (Atomic.get t.stopping) then try_respawn s;
      false
  | _ -> (
      match
        Client.connect ~host:s.shost ~timeout_ms:t.cfg.probe_timeout_ms
          ~port:s.sport ()
      with
      | c ->
          Fun.protect
            ~finally:(fun () -> try Client.close c with _ -> ())
            (fun () ->
              match Client.call c ~auto_id:false P.Stats with
              | P.Ok _ -> true
              | P.Err _ -> false)
      | exception _ -> false)

(* --- the proxy path --- *)

let forward s req =
  Pool.with_client s.pool (fun c ->
      Client.call c ~auto_id:false ?id:req.P.id ?deadline_ms:req.P.deadline_ms
        req.P.body)

(* Walk the key's rendezvous order, skipping shards already marked
   down; a shard that fails mid-request is marked down on the spot so
   the ring re-routes before the next probe tick. *)
let route_request t req digest =
  let ranked = Ring.route_ranked t.ring digest in
  let rec go tried = function
    | [] ->
        Suu_obs.Counter.incr (Lazy.force c_no_shard);
        P.Err
          { id = req.P.id; code = P.Internal;
            message = "no live shard for request" }
    | id :: rest ->
        if not (is_live t id) then go tried rest
        else
          let s = shard_by_id t id in
          if tried > 0 then Suu_obs.Counter.incr (Lazy.force c_failover);
          (match forward s req with
          | resp ->
              count_proxied s;
              resp
          | exception (Client.Protocol_failure _ | Unix.Unix_error _) ->
              Printf.eprintf
                "suu-router: shard %s failed a forwarded request, \
                 marking down\n%!"
                id;
              Health.force_down (health t) id;
              go (tried + 1) rest)
  in
  go 0 ranked

(* --- stats fan-out --- *)

let shard_stats t s =
  if not (is_live t s.sid) then None
  else
    match
      Pool.with_client s.pool (fun c ->
          Client.call c ~auto_id:false P.Stats)
    with
    | P.Ok { fields; _ } -> Some fields
    | P.Err _ -> None
    | exception _ -> None

let stats_reply t req =
  let results = Array.map (fun s -> shard_stats t s) t.shards in
  let sources =
    Array.to_list results |> List.filter_map (fun x -> x)
  in
  (* The router's own registry (router.*, client.* pool counters) rides
     along as one more source — its names don't collide with shard-side
     server.* metrics. *)
  let merged = Stats_merge.merge (sources @ [ Suu_obs.Registry.render () ]) in
  let up =
    Array.fold_left
      (fun acc s -> if is_live t s.sid then acc + 1 else acc)
      0 t.shards
  in
  let breakdown =
    List.concat
      (Array.to_list
         (Array.mapi
            (fun i s ->
              let pre = Printf.sprintf "shard.%d." i in
              [ (pre ^ "id", s.sid);
                (pre ^ "addr", Printf.sprintf "%s:%d" s.shost s.sport);
                (pre ^ "up", if is_live t s.sid then "1" else "0");
                (pre ^ "proxied", string_of_int (proxied s)) ]
              @
              match results.(i) with
              | None -> []
              | Some fields ->
                  List.filter_map
                    (fun k ->
                      Option.map
                        (fun v -> (pre ^ k, v))
                        (List.assoc_opt k fields))
                    [ "requests_total"; "plan_cache_hit_rate" ])
            t.shards))
  in
  P.Ok
    { id = req.P.id; rtype = "stats";
      fields =
        [ ("router_shards", string_of_int (Array.length t.shards));
          ("router_shards_up", string_of_int up);
          ("router_uptime_ms",
           string_of_int
             (int_of_float ((Unix.gettimeofday () -. t.started) *. 1000.0)))
        ]
        @ merged @ breakdown }

(* --- connection handling (mirrors Server.handle_conn) --- *)

let send fd resp =
  try
    Lineio.write_all fd (P.response_to_string resp);
    true
  with Unix.Unix_error _ -> false

let handle_request t req =
  let t0 = Suu_obs.Clock.now_ns () in
  let resp =
    match req.P.body with
    | P.Stats -> stats_reply t req
    | body -> (
        match P.instance_digest body with
        | Some digest -> route_request t req digest
        | None -> route_request t req (P.body_type body))
  in
  let dt =
    Int64.to_float (Int64.sub (Suu_obs.Clock.now_ns ()) t0) /. 1e9
  in
  Suu_obs.Registry.observe (Lazy.force c_route) (Lazy.force h_route) dt;
  resp

let handle_conn t conn =
  let rd = Lineio.reader conn.fd in
  let next_line () = Lineio.next_line rd in
  let rec loop () =
    match P.read_request ~next_line with
    | None -> ()
    | Some req -> if send conn.fd (handle_request t req) then loop ()
    | exception P.Parse_error { line; msg } ->
        (* Same shape the server answers with: the offending frame is
           consumed, the connection survives. *)
        let ok =
          send conn.fd
            (P.Err
               { id = None; code = P.Parse;
                 message = P.parse_error_message ~line ~msg })
        in
        P.skip_frame ~next_line;
        if ok then loop ()
    | exception Lineio.Line_too_long ->
        ignore
          (send conn.fd
             (P.Err
                { id = None; code = P.Parse;
                  message = "line too long; closing connection" }))
  in
  (try loop () with _ -> ());
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

let accept_loop t () =
  let rec loop () =
    match Unix.accept t.lfd with
    | fd, _ ->
        Unix.setsockopt fd Unix.TCP_NODELAY true;
        let conn = { fd } in
        Mutex.lock t.conns_lock;
        let key = t.next_conn in
        t.next_conn <- key + 1;
        let th =
          Thread.create
            (fun () ->
              handle_conn t conn;
              Mutex.lock t.conns_lock;
              Hashtbl.remove t.conns key;
              Mutex.unlock t.conns_lock)
            ()
        in
        Hashtbl.replace t.conns key (conn, th);
        Mutex.unlock t.conns_lock;
        loop ()
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
    | exception Unix.Unix_error _ ->
        if not (Atomic.get t.stopping) then loop ()
  in
  loop ()

(* --- lifecycle --- *)

let start ?(config = default_config) ~shards () =
  if shards = [] then invalid_arg "Router.start: no shards";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let lfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lfd Unix.SO_REUSEADDR true;
  let addr =
    Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port)
  in
  (try Unix.bind lfd addr
   with e ->
     Unix.close lfd;
     raise e);
  Unix.listen lfd 128;
  let bound_port =
    match Unix.getsockname lfd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> config.port
  in
  let mk i (spec : shard_spec) =
    let pool =
      Pool.create ~capacity:config.pool_capacity ~retries:config.retries
        ~timeout_ms:config.timeout_ms ~backoff_ms:config.backoff_ms
        ~retry_seed:(1000 * (i + 1))
        ~host:spec.host ~port:spec.port ()
    in
    let s =
      { sid = spec.id; shost = spec.host; sport = spec.port; pool;
        child = spec.child; srespawn = spec.respawn; drain_t = None;
        proxied = 0; plock = Mutex.create () }
    in
    (match spec.child with
    | Some child ->
        s.drain_t <-
          Some
            (Spawn.drain
               ~echo:(fun line ->
                 Printf.eprintf "suu-router: [%s] %s\n%!" s.sid line)
               child)
    | None -> ());
    s
  in
  let shard_arr = Array.of_list (List.mapi mk shards) in
  let ring = Ring.create (List.map (fun (sp : shard_spec) -> sp.id) shards) in
  let t =
    { cfg = config; lfd; bound_port; shards = shard_arr; ring;
      health = None; started = Unix.gettimeofday ();
      stopping = Atomic.make false; accept_thread = None;
      conns = Hashtbl.create 16; conns_lock = Mutex.create ();
      next_conn = 0; stop_lock = Mutex.create (); stopped = false }
  in
  let h =
    Health.create ~fail_threshold:config.fail_threshold
      ~interval_ms:config.health_interval_ms
      ~shards:(Array.to_list (Array.map (fun s -> s.sid) shard_arr))
      ~probe:(fun id -> probe t id)
      ~on_change:(fun id up ->
        let s = shard_by_id t id in
        if not up then Pool.clear s.pool;
        Printf.eprintf "suu-router: shard %s marked %s\n%!" id
          (if up then "UP" else "DOWN"))
      ()
  in
  t.health <- Some h;
  Health.start h;
  t.accept_thread <- Some (Thread.create (accept_loop t) ());
  t

let shutdown_fd fd =
  try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

let stop t =
  Mutex.lock t.stop_lock;
  let already = t.stopped in
  t.stopped <- true;
  Mutex.unlock t.stop_lock;
  if not already then begin
    Atomic.set t.stopping true;
    (match t.health with Some h -> Health.stop h | None -> ());
    shutdown_fd t.lfd;
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    (try Unix.close t.lfd with Unix.Unix_error _ -> ());
    Mutex.lock t.conns_lock;
    let live = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
    Mutex.unlock t.conns_lock;
    List.iter (fun ((conn : conn), _) -> shutdown_fd conn.fd) live;
    List.iter (fun (_, th) -> Thread.join th) live;
    Array.iter
      (fun s ->
        Pool.clear s.pool;
        match s.child with
        | Some child ->
            Spawn.terminate child;
            (match s.drain_t with Some th -> Thread.join th | None -> ())
        | None -> ())
      t.shards
  end

let check_health t =
  match t.health with Some h -> Health.check_all h | None -> ()

let live_shards t = Health.live_ids (health t)

let run ?config ~shards () =
  (* Same race-free shutdown as Suu_server.Server.run: mask INT/TERM
     before startup so a signal during shard spawn stays pending, then
     collect it with sigwait.  Shard children inherit the mask across
     exec, which is harmless — their own [run] uses the same pattern. *)
  let stop_signals = [ Sys.sigint; Sys.sigterm ] in
  ignore (Thread.sigmask Unix.SIG_BLOCK stop_signals);
  let t = start ?config ~shards () in
  Printf.printf "suu-router listening on %s:%d (shards=%d)\n%!" t.cfg.host
    t.bound_port (Array.length t.shards);
  ignore (Thread.wait_signal stop_signals);
  prerr_endline "suu-router: signal received, draining";
  stop t;
  prerr_endline "suu-router: drained, bye"
