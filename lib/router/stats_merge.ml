(* Merge per-shard [stats] field lists into one cluster view.

   Rules, per key:
   - [obs.phase.<name>.*]: the pre-rendered per-shard quantiles are
     dropped and the whole group is recomputed from the lossless
     [.raw] bucket snapshots (Histogram.merge) — averaging quantiles
     would be wrong, summing them worse.
   - integer-valued keys (request counters, latency buckets, cache
     hits, the obs counters): summed.  [uptime_ms] takes the max —
     shards started together but "sum of uptimes" means nothing.
   - [plan_cache_hit_rate]: recomputed from the summed hits/misses
     rather than averaged, so a hot shard weighs as much as it should.
   - anything else (solver name, hosts, per-LP-shard rates): the first
     source's value wins.

   Output preserves first-seen key order across sources, so the merged
   reply reads like a single shard's reply. *)

module Histogram = Suu_obs.Histogram

let phase_prefix = "obs.phase."

let phase_suffixes =
  [ ".count"; ".mean_ms"; ".p50_ms"; ".p95_ms"; ".p99_ms"; ".raw" ]

(* "obs.phase.server.execute.p95_ms" -> Some ("server.execute", ".p95_ms") *)
let split_phase_key key =
  let plen = String.length phase_prefix in
  if String.length key <= plen || String.sub key 0 plen <> phase_prefix then
    None
  else
    let rest = String.sub key plen (String.length key - plen) in
    List.find_map
      (fun suf ->
        let slen = String.length suf in
        let rlen = String.length rest in
        if rlen > slen && String.sub rest (rlen - slen) slen = suf then
          Some (String.sub rest 0 (rlen - slen), suf)
        else None)
      phase_suffixes

let f17 = Printf.sprintf "%.17g"

type slot =
  | Int of int
  | Max_int of int
  | First of string
  | Phase (* placeholder holding the phase group's position *)

let merge sources =
  let order = ref [] (* reversed first-seen keys *) in
  let slots : (string, slot) Hashtbl.t = Hashtbl.create 128 in
  let phases : (string, Histogram.snapshot) Hashtbl.t = Hashtbl.create 32 in
  let see key slot =
    if not (Hashtbl.mem slots key) then begin
      Hashtbl.add slots key slot;
      order := key :: !order
    end
    else
      match (Hashtbl.find slots key, slot) with
      | Int a, Int b -> Hashtbl.replace slots key (Int (a + b))
      | Max_int a, Max_int b -> Hashtbl.replace slots key (Max_int (max a b))
      | First _, _ | Phase, _ -> ()
      | Int _, _ | Max_int _, _ -> () (* type skew across shards: keep first *)
  in
  List.iter
    (fun fields ->
      List.iter
        (fun (key, value) ->
          match split_phase_key key with
          | Some (name, suffix) ->
              (* One placeholder per phase, at the position of the
                 group's first key; the snapshot accumulates off to the
                 side. *)
              see (phase_prefix ^ name) Phase;
              if suffix = ".raw" then (
                match Histogram.snapshot_of_raw value with
                | None -> ()
                | Some snap -> (
                    match Hashtbl.find_opt phases name with
                    | None -> Hashtbl.add phases name snap
                    | Some prev -> (
                        match Histogram.merge prev snap with
                        | merged -> Hashtbl.replace phases name merged
                        | exception Invalid_argument _ -> ())))
          | None -> (
              match key with
              | "uptime_ms" -> (
                  match int_of_string_opt value with
                  | Some v -> see key (Max_int v)
                  | None -> see key (First value))
              | _ -> (
                  match int_of_string_opt value with
                  | Some v -> see key (Int v)
                  | None -> see key (First value))))
        fields)
    sources;
  (* Quantiles need the bucket bounds; snapshots carry only counts.
     Every registry histogram uses the default layout, so a snapshot
     with the default bucket count renders fully; anything else (a
     future custom-bounds phase) degrades to count/mean/raw. *)
  let default_h =
    lazy (Histogram.create ~bounds:Histogram.default_bounds "merged")
  in
  let render_phase name =
    match Hashtbl.find_opt phases name with
    | None -> []
    | Some snap ->
        let base = phase_prefix ^ name in
        let ms v = Printf.sprintf "%.3f" (1000.0 *. v) in
        let head =
          [ (base ^ ".count", string_of_int snap.Histogram.count);
            (base ^ ".mean_ms", ms (Histogram.mean snap)) ]
        in
        let quantiles =
          if
            Array.length snap.Histogram.buckets
            = Array.length Histogram.default_bounds + 1
          then
            let h = Lazy.force default_h in
            let q p = ms (Histogram.quantile h snap p) in
            [ (base ^ ".p50_ms", q 0.5); (base ^ ".p95_ms", q 0.95);
              (base ^ ".p99_ms", q 0.99) ]
          else []
        in
        head @ quantiles
        @ [ (base ^ ".raw", Histogram.raw_of_snapshot snap) ]
  in
  let fields =
    List.concat_map
      (fun key ->
        match Hashtbl.find slots key with
        | Int v | Max_int v -> [ (key, string_of_int v) ]
        | First v -> [ (key, v) ]
        | Phase ->
            let plen = String.length phase_prefix in
            render_phase (String.sub key plen (String.length key - plen)))
      (List.rev !order)
  in
  (* Weighted-correct hit rate from the summed counts. *)
  let lookup k = List.assoc_opt k fields in
  match (lookup "plan_cache_hits", lookup "plan_cache_misses") with
  | Some h, Some m -> (
      match (int_of_string_opt h, int_of_string_opt m) with
      | Some h, Some m when h + m > 0 ->
          List.map
            (fun (k, v) ->
              if k = "plan_cache_hit_rate" then
                (k, f17 (float_of_int h /. float_of_int (h + m)))
              else (k, v))
            fields
      | _ -> fields)
  | _ -> fields
