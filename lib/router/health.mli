(** Periodic shard health checks with mark-down/mark-up hysteresis.

    A background thread probes every shard each [interval_ms]; a shard
    is marked down after [fail_threshold] consecutive failures and back
    up on the first success.  Transitions bump
    [router.health.mark_down] / [router.health.mark_up] (probes bump
    [router.health.checks]) and invoke [on_change] outside the internal
    lock.  The proxy path calls {!force_down} the moment a forward
    fails, so re-routing does not wait for the next probe tick. *)

type t

val create :
  ?fail_threshold:int ->
  interval_ms:int ->
  shards:string list ->
  probe:(string -> bool) ->
  on_change:(string -> bool -> unit) ->
  unit ->
  t
(** All shards start live.  [probe id] should be a cheap round-trip
    (the router sends [stats] with a short timeout); exceptions count
    as failure.  [on_change id up] fires on every transition. *)

val start : t -> unit
(** Start the probe thread (idempotent). *)

val stop : t -> unit
(** Stop and join the probe thread. *)

val is_live : t -> string -> bool
(** Raises [Invalid_argument] for an unknown id. *)

val live_ids : t -> string list

val force_down : t -> string -> unit
(** Immediate mark-down (no-op when already down). *)

val check_all : t -> unit
(** Run one synchronous probe round — tests and the bench use this to
    make transitions deterministic instead of racing the timer. *)
