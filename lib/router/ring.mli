(** Rendezvous (highest-random-weight) hashing over shard ids.

    Placement is a pure function of (shard id, key): the router, a
    restarted router, and a test all agree on where a key lives without
    any shared state.  When a shard is down, each of its keys falls to
    its own second-ranked shard (spreading the load rather than dumping
    it on one neighbour), and returns as soon as the shard is back —
    the minimal-remapping property the qcheck tests pin down. *)

type t

val create : string list -> t
(** Ring over the given shard ids.  Raises [Invalid_argument] on an
    empty list or duplicate ids. *)

val ids : t -> string list

val size : t -> int

val score : shard:string -> key:string -> int64
(** The rendezvous weight: first 8 bytes of [MD5(shard ^ "\x00" ^ key)],
    to be compared unsigned.  Exposed for the distribution tests. *)

val route : t -> live:(string -> bool) -> string -> string option
(** Highest-scoring shard among those for which [live] holds; [None]
    when none are live.  Ties (an MD5 prefix collision) break by shard
    id, so routing is deterministic regardless. *)

val route_ranked : t -> string -> string list
(** All shards, best first — the failover order for the key.  [route]
    is the first live element of this list. *)
