(** Bounded per-shard pool of {!Suu_server.Client} connections.

    Connections inherit the pool's retry/timeout/backoff policy (each
    with a distinct jitter seed).  The contract with {!with_client} is
    the one that keeps proxied streams sane: a connection is returned
    to the pool only when the call succeeded; any exception destroys it,
    because the stream may hold a stale partial response. *)

type t

val create :
  ?capacity:int ->
  ?retries:int ->
  ?timeout_ms:int ->
  ?backoff_ms:int ->
  ?retry_seed:int ->
  host:string ->
  port:int ->
  unit ->
  t
(** A pool dialing [host:port].  [capacity] (default 8) bounds the
    number of {e idle} connections kept; checkouts beyond it dial fresh
    sockets.  No connection is made until first use. *)

val host : t -> string

val port : t -> int

val with_client : t -> (Suu_server.Client.t -> 'a) -> 'a
(** Run [f] with a pooled (or freshly dialed) connection.  On normal
    return the connection goes back to the pool (or is closed when the
    pool is full); on exception it is destroyed and the exception
    re-raised. *)

val clear : t -> unit
(** Close every idle connection — called when the shard is marked down
    so a marked-up shard starts from fresh sockets. *)

val idle_count : t -> int
