(** The suu-router coordinator: digest-affinity sharding over N
    [suu-serve] processes, speaking the v1 wire protocol unchanged.

    Each request's instance digest (the same MD5 the service keys its
    caches by) is rendezvous-hashed onto the shard ring; the owning
    shard therefore sees every request for that instance, keeping its
    plan cache, instance cache, journal and result store hot for its
    slice of the keyspace.  Responses are re-serialized through the
    canonical protocol printer, so a routed reply is byte-identical to
    an unrouted server's.  [stats] fans out to all live shards and
    returns a merged view ({!Stats_merge}) plus a per-shard breakdown.

    Failure handling: pooled clients retry within a shard
    ({!Suu_server.Client} machinery); a shard that still fails is
    marked down immediately and the request falls over to the key's
    next-ranked live shard ([router.failover]).  A background
    {!Health} thread probes every shard, marks crashed ones down,
    respawns spawned shards on their original port (their journal
    gives a warm restart), and marks them up when they answer again. *)

type shard_spec = {
  id : string;  (** ring identity — stable across respawns *)
  host : string;
  port : int;
  child : Spawn.child option;
      (** the process, when the router spawned it (enables death
          detection + respawn) *)
  respawn : (unit -> Spawn.child) option;
      (** how to restart it on the {e same} port/journal *)
}

type config = {
  host : string;
  port : int;  (** 0 = ephemeral *)
  retries : int;  (** per forwarded call, within one shard *)
  timeout_ms : int;  (** per-attempt shard response timeout *)
  backoff_ms : int;
  pool_capacity : int;  (** idle connections kept per shard *)
  health_interval_ms : int;
  fail_threshold : int;  (** consecutive probe failures before DOWN *)
  probe_timeout_ms : int;
}

val default_config : config

type t

val start : ?config:config -> shards:shard_spec list -> unit -> t
(** Bind, start the health thread and the accept loop.  Raises
    [Invalid_argument] on an empty shard list and [Unix.Unix_error]
    when the bind fails. *)

val port : t -> int
(** The bound port (useful with [port = 0]). *)

val stop : t -> unit
(** Graceful: stop health checks, close the listener, join connection
    threads, drain pools, and SIGTERM spawned shards.  Idempotent. *)

val run : ?config:config -> shards:shard_spec list -> unit -> unit
(** [start], print the [suu-router listening on HOST:PORT (shards=N)]
    readiness line, then block until SIGINT/SIGTERM and [stop]. *)

val check_health : t -> unit
(** One synchronous probe round — lets tests and the chaos bench
    observe mark-down/mark-up without racing the probe timer. *)

val live_shards : t -> string list
