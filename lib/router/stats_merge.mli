(** Merge per-shard [stats] replies into one cluster-wide field list.

    Integer counters sum; [uptime_ms] takes the max;
    [plan_cache_hit_rate] is recomputed from the summed hits/misses;
    [obs.phase.*] latency groups are rebuilt exactly from the lossless
    [.raw] bucket snapshots ({!Suu_obs.Histogram.merge}) rather than by
    averaging pre-rendered quantiles; any other key keeps the first
    source's value.  Output preserves first-seen key order, so the
    merged reply has the shape of a single shard's reply. *)

val merge : (string * string) list list -> (string * string) list
(** [merge sources] with [sources] in shard order (the router appends
    its own registry render as a final source).  Malformed [.raw]
    values and layout mismatches are skipped, not fatal. *)
