(* Periodic shard health with hysteresis.

   A shard is marked down after [fail_threshold] consecutive probe
   failures (one flaky probe must not trigger a re-route storm) and
   marked back up on the first success.  The proxy path can also force
   an immediate mark-down when a forwarded request fails — waiting for
   the next probe tick would send more traffic into a dead shard. *)

let c_checks = lazy (Suu_obs.Registry.counter "router.health.checks")
let c_down = lazy (Suu_obs.Registry.counter "router.health.mark_down")
let c_up = lazy (Suu_obs.Registry.counter "router.health.mark_up")

type entry = { mutable live : bool; mutable fails : int }

type t = {
  interval_ms : int;
  fail_threshold : int;
  probe : string -> bool;
  on_change : string -> bool -> unit;
  entries : (string * entry) list; (* fixed shard set, tiny *)
  lock : Mutex.t;
  stop_flag : bool Atomic.t;
  mutable thread : Thread.t option;
}

let entry t id =
  match List.assoc_opt id t.entries with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Health: unknown shard %S" id)

let create ?(fail_threshold = 2) ~interval_ms ~shards ~probe ~on_change () =
  if interval_ms < 1 then
    invalid_arg "Health.create: interval_ms must be >= 1";
  if fail_threshold < 1 then
    invalid_arg "Health.create: fail_threshold must be >= 1";
  { interval_ms; fail_threshold; probe; on_change;
    entries = List.map (fun id -> (id, { live = true; fails = 0 })) shards;
    lock = Mutex.create (); stop_flag = Atomic.make false; thread = None }

let is_live t id =
  Mutex.lock t.lock;
  let v = (entry t id).live in
  Mutex.unlock t.lock;
  v

let live_ids t =
  Mutex.lock t.lock;
  let ids =
    List.filter_map
      (fun (id, e) -> if e.live then Some id else None)
      t.entries
  in
  Mutex.unlock t.lock;
  ids

(* Transitions fire [on_change] outside the lock: the callback clears
   pools / logs and must be free to take its own locks. *)
let transition t id up =
  Mutex.lock t.lock;
  let e = entry t id in
  let changed = e.live <> up in
  e.live <- up;
  if up then e.fails <- 0;
  Mutex.unlock t.lock;
  if changed then begin
    Suu_obs.Counter.incr (Lazy.force (if up then c_up else c_down));
    t.on_change id up
  end

let force_down t id = transition t id false

let probe_once t (id, e) =
  Suu_obs.Counter.incr (Lazy.force c_checks);
  let ok = try t.probe id with _ -> false in
  if ok then begin
    Mutex.lock t.lock;
    e.fails <- 0;
    let was_down = not e.live in
    Mutex.unlock t.lock;
    if was_down then transition t id true
  end
  else begin
    Mutex.lock t.lock;
    e.fails <- e.fails + 1;
    let trip = e.live && e.fails >= t.fail_threshold in
    Mutex.unlock t.lock;
    if trip then transition t id false
  end

let check_all t = List.iter (probe_once t) t.entries

let loop t () =
  let interval = float_of_int t.interval_ms /. 1000.0 in
  while not (Atomic.get t.stop_flag) do
    check_all t;
    (* Sleep in small slices so [stop] is prompt even with long
       intervals. *)
    let slept = ref 0.0 in
    while !slept < interval && not (Atomic.get t.stop_flag) do
      let d = Float.min 0.05 (interval -. !slept) in
      Thread.delay d;
      slept := !slept +. d
    done
  done

let start t =
  match t.thread with
  | Some _ -> ()
  | None -> t.thread <- Some (Thread.create (loop t) ())

let stop t =
  Atomic.set t.stop_flag true;
  (match t.thread with Some th -> Thread.join th | None -> ());
  t.thread <- None
