(** Spawn a server child process and wait for its readiness line.

    The single implementation of "start on port 0, read the printed
    [listening on HOST:PORT] line, with a deadline and fast failure if
    the child dies" — shared by the router's shard lifecycle, the
    tests, and (in shell form, [scripts/wait_ready.sh]) the CI smokes. *)

type child

val pid : child -> int

val addr_of_ready_line : string -> (string * int) option
(** Parse a readiness line of the form
    ["... listening on HOST:PORT ..."]; [None] when the marker or a
    valid [host:port] is absent.  Pure — unit-testable without
    processes. *)

val spawn :
  ?extra_env:(string * string) list -> prog:string -> args:string list ->
  unit -> child
(** Fork/exec [prog args] with stdout piped to us and stderr
    inherited.  [extra_env] entries are appended to (and shadow) the
    inherited environment — per-shard [SUU_JOURNAL]/[SUU_STORE]. *)

val alive : child -> bool
(** Non-blocking liveness poll ([waitpid WNOHANG]); once a child has
    been observed dead it stays dead. *)

val wait_ready : ?timeout_s:float -> child -> (string * int, string) result
(** Scan the child's stdout for the first readiness line, returning its
    [(host, port)].  Fails with a descriptive message when the child
    exits, closes stdout, or the deadline (default 10 s) passes. *)

val drain : ?echo:(string -> unit) -> child -> Thread.t
(** Keep reading the child's stdout until EOF so it can never block on
    a full pipe; each line is passed to [echo] when given.  Call once,
    after {!wait_ready}. *)

val signal : child -> int -> unit
(** Send a signal; ignores errors and already-reaped children. *)

val reap : ?timeout_s:float -> child -> bool
(** Poll-wait for exit; [false] on timeout. *)

val terminate : ?timeout_s:float -> child -> unit
(** SIGTERM, wait (default 5 s), escalate to SIGKILL, close the pipe. *)
