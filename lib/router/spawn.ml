(* Spawn a server process and wait for its printed readiness line.

   This is the one implementation of the "start on port 0, parse the
   printed port, poll until ready" dance that used to be hand-rolled in
   every CI smoke (and would otherwise be hand-rolled again in the
   router, the tests and the chaos bench).  The child's stdout is
   piped; we scan it line by line for `listening on HOST:PORT` with a
   deadline, failing fast when the child dies instead of waiting out
   the timeout. *)

module Lineio = Suu_server.Lineio

type child = {
  pid : int;
  out_fd : Unix.file_descr;
  rd : Lineio.reader;
  mutable reaped : bool;
}

let pid c = c.pid

(* "suu-serve listening on 127.0.0.1:45123 (workers=4 queue=64)"
   -> Some ("127.0.0.1", 45123).  Tolerates any prefix/suffix so the
   same parser serves suu-serve, suu-router and the shell smokes. *)
let addr_of_ready_line line =
  let marker = " listening on " in
  let mlen = String.length marker in
  let llen = String.length line in
  let rec find i =
    if i + mlen > llen then None
    else if String.sub line i mlen = marker then Some (i + mlen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
      let stop = ref start in
      while
        !stop < llen
        && (match line.[!stop] with
           | '0' .. '9' | '.' | ':' -> true
           | _ -> false)
      do
        incr stop
      done;
      let addr = String.sub line start (!stop - start) in
      (match String.rindex_opt addr ':' with
      | None -> None
      | Some colon -> (
          let host = String.sub addr 0 colon in
          let ports =
            String.sub addr (colon + 1) (String.length addr - colon - 1)
          in
          match int_of_string_opt ports with
          | Some p when p > 0 && p < 65536 && host <> "" -> Some (host, p)
          | _ -> None))

(* [extra_env] entries ("VAR", "value") are appended to (and shadow)
   the inherited environment — how the router gives each shard its own
   SUU_JOURNAL/SUU_STORE without touching its own. *)
let spawn ?(extra_env = []) ~prog ~args () =
  let out_r, out_w = Unix.pipe ~cloexec:false () in
  let argv = Array.of_list (prog :: args) in
  let pid =
    match extra_env with
    | [] -> Unix.create_process prog argv Unix.stdin out_w Unix.stderr
    | kvs ->
        let keys = List.map fst kvs in
        let base =
          Array.to_list (Unix.environment ())
          |> List.filter (fun kv ->
                 match String.index_opt kv '=' with
                 | None -> true
                 | Some i -> not (List.mem (String.sub kv 0 i) keys))
        in
        let env =
          Array.of_list
            (base @ List.map (fun (k, v) -> k ^ "=" ^ v) kvs)
        in
        Unix.create_process_env prog argv env Unix.stdin out_w Unix.stderr
  in
  Unix.close out_w;
  { pid; out_fd = out_r; rd = Lineio.reader out_r; reaped = false }

let alive c =
  if c.reaped then false
  else
    match Unix.waitpid [ Unix.WNOHANG ] c.pid with
    | 0, _ -> true
    | _ ->
        c.reaped <- true;
        false
    | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
        c.reaped <- true;
        false

let wait_ready ?(timeout_s = 10.0) c =
  let deadline_ns =
    Int64.add (Suu_obs.Clock.now_ns ())
      (Int64.of_float (timeout_s *. 1e9))
  in
  let rec scan () =
    if not (alive c) then
      Result.Error
        (Printf.sprintf "child %d exited before becoming ready" c.pid)
    else
      match Lineio.next_line ~deadline_ns c.rd with
      | None ->
          Result.Error
            (Printf.sprintf "child %d closed stdout before becoming ready"
               c.pid)
      | Some line -> (
          match addr_of_ready_line line with
          | Some addr -> Result.Ok addr
          | None -> scan ())
      | exception Lineio.Read_timeout ->
          Result.Error
            (Printf.sprintf "child %d not ready within %.1fs" c.pid timeout_s)
      | exception Lineio.Line_too_long -> scan ()
  in
  scan ()

(* After readiness the child keeps writing (stats lines, shutdown
   notices).  Someone must drain the pipe or the child blocks on a full
   buffer mid-print; the drain thread forwards each line to [echo]
   (typically a prefixed eprintf) until EOF. *)
let drain ?echo c =
  Thread.create
    (fun () ->
      let rec loop () =
        match Lineio.next_line c.rd with
        | Some line ->
            (match echo with Some f -> f line | None -> ());
            loop ()
        | None -> ()
        | exception Lineio.Line_too_long -> loop ()
        | exception Unix.Unix_error _ -> ()
      in
      loop ())
    ()

let signal c sg = if not c.reaped then try Unix.kill c.pid sg with _ -> ()

let reap ?(timeout_s = 5.0) c =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec wait () =
    if c.reaped then true
    else
      match Unix.waitpid [ Unix.WNOHANG ] c.pid with
      | 0, _ ->
          if Unix.gettimeofday () > deadline then false
          else begin
            Thread.delay 0.02;
            wait ()
          end
      | _ ->
          c.reaped <- true;
          true
      | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
          c.reaped <- true;
          true
  in
  wait ()

let terminate ?(timeout_s = 5.0) c =
  signal c Sys.sigterm;
  if not (reap ~timeout_s c) then begin
    signal c Sys.sigkill;
    ignore (reap ~timeout_s:1.0 c)
  end;
  try Unix.close c.out_fd with Unix.Unix_error _ -> ()
