(* Per-shard pool of idle client connections.

   Checkout hands out the most recently returned connection (LIFO keeps
   the working set warm and lets idle extras age out via [clear]);
   checkin returns it unless the pool is full.  A connection that saw
   any failure is destroyed, never returned: after a timeout or a torn
   frame the stream may hold a stale half-response, and a fresh socket
   is the only state we can reason about (the same rule Client's own
   retry loop applies). *)

module Client = Suu_server.Client

type t = {
  host : string;
  port : int;
  retries : int;
  timeout_ms : int option;
  backoff_ms : int;
  retry_seed : int;
  capacity : int;
  lock : Mutex.t;
  mutable idle : Client.t list;
  mutable idle_n : int;
  mutable created : int; (* distinct seeds, decorrelated backoff jitter *)
}

let create ?(capacity = 8) ?(retries = 0) ?timeout_ms ?(backoff_ms = 25)
    ?(retry_seed = 0) ~host ~port () =
  if capacity < 1 then invalid_arg "Pool.create: capacity must be >= 1";
  { host; port; retries; timeout_ms; backoff_ms; retry_seed; capacity;
    lock = Mutex.create (); idle = []; idle_n = 0; created = 0 }

let host t = t.host

let port t = t.port

let connect t =
  Mutex.lock t.lock;
  t.created <- t.created + 1;
  let seed = t.retry_seed + t.created in
  Mutex.unlock t.lock;
  Client.connect ~host:t.host ~port:t.port ~retries:t.retries
    ?timeout_ms:t.timeout_ms ~backoff_ms:t.backoff_ms ~retry_seed:seed ()

let checkout t =
  Mutex.lock t.lock;
  let c =
    match t.idle with
    | c :: rest ->
        t.idle <- rest;
        t.idle_n <- t.idle_n - 1;
        Some c
    | [] -> None
  in
  Mutex.unlock t.lock;
  match c with Some c -> c | None -> connect t

let checkin t c =
  Mutex.lock t.lock;
  let keep = t.idle_n < t.capacity in
  if keep then begin
    t.idle <- c :: t.idle;
    t.idle_n <- t.idle_n + 1
  end;
  Mutex.unlock t.lock;
  if not keep then Client.close c

let discard c = try Client.close c with _ -> ()

let with_client t f =
  let c = checkout t in
  match f c with
  | v ->
      checkin t c;
      v
  | exception e ->
      discard c;
      raise e

let clear t =
  Mutex.lock t.lock;
  let cs = t.idle in
  t.idle <- [];
  t.idle_n <- 0;
  Mutex.unlock t.lock;
  List.iter discard cs

let idle_count t =
  Mutex.lock t.lock;
  let n = t.idle_n in
  Mutex.unlock t.lock;
  n
