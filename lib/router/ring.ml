(* Rendezvous (highest-random-weight) hashing.

   Every (shard, key) pair gets a pseudo-random score; a key routes to
   the live shard with the highest score.  Compared to a classic
   vnode-based consistent-hash ring this needs no virtual-node tuning,
   gives provably uniform placement, and has the minimal-disruption
   property for free: when a shard goes down only ITS keys move (each
   to its second-ranked shard), and they move straight back when it
   returns, because the scores are a pure function of (shard id, key).
   O(n) per lookup is irrelevant at n <= dozens of shards. *)

type t = { ids : string array }

let create ids =
  if ids = [] then invalid_arg "Ring.create: no shards";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun id ->
      if Hashtbl.mem seen id then
        invalid_arg (Printf.sprintf "Ring.create: duplicate shard id %S" id);
      Hashtbl.add seen id ())
    ids;
  { ids = Array.of_list ids }

let ids t = Array.to_list t.ids

let size t = Array.length t.ids

(* First 8 bytes of MD5(shard NUL key) as an int64, compared unsigned.
   MD5 is overkill for load balancing but is already the digest the
   whole system keys caches by, and its avalanche behaviour is beyond
   suspicion.  The NUL separator keeps ("a","bc") and ("ab","c")
   distinct. *)
let score ~shard ~key =
  let d = Digest.string (shard ^ "\x00" ^ key) in
  let b i = Int64.of_int (Char.code d.[i]) in
  let acc = ref 0L in
  for i = 0 to 7 do
    acc := Int64.logor (Int64.shift_left !acc 8) (b i)
  done;
  !acc

(* Unsigned score order, shard id as a deterministic tie-break (a tie
   needs an MD5 prefix collision, but determinism should not hinge on
   that). *)
let better ~key (s1, id1) (s2, id2) =
  ignore key;
  match Int64.unsigned_compare s1 s2 with
  | 0 -> String.compare id1 id2 < 0
  | c -> c > 0

let route t ~live key =
  let best = ref None in
  Array.iter
    (fun id ->
      if live id then begin
        let s = score ~shard:id ~key in
        match !best with
        | Some b when not (better ~key (s, id) b) -> ()
        | _ -> best := Some (s, id)
      end)
    t.ids;
  Option.map snd !best

let route_ranked t key =
  let scored =
    Array.map (fun id -> (score ~shard:id ~key, id)) t.ids
  in
  Array.sort
    (fun a b -> if better ~key a b then -1 else if a = b then 0 else 1)
    scored;
  Array.to_list (Array.map snd scored)
