type key = {
  digest : string;
  policy : string;
  seed : int;
  cap : int option;
}

type stats = { keys : int; records : int; reps : int; file_bytes : int }

(* Per-key state: committed chunks, kept as (start, values) sorted by
   start.  The contiguous prefix is derived on demand — chunk counts
   per key are small (one per batch). *)
type entry = { mutable chunks : (int * float array) list }

type t = {
  log : Record_log.t;
  sdir : string;
  lock : Mutex.t;
  index : (key, entry) Hashtbl.t;
  mutable records : int;
}

let log_name = "results.log"

let record_kind_chunk = 0

let encode_chunk key ~start values =
  let e = Codec.encoder () in
  Codec.add_int e record_kind_chunk;
  Codec.add_string e key.digest;
  Codec.add_string e key.policy;
  Codec.add_int e key.seed;
  Codec.add_int e (match key.cap with Some c -> c | None -> -1);
  Codec.add_int e start;
  Codec.add_float_array e values;
  Codec.contents e

let decode_chunk payload =
  let d = Codec.decoder payload in
  let kind = Codec.int d in
  if kind <> record_kind_chunk then
    raise (Codec.Corrupt (Printf.sprintf "unknown record kind %d" kind));
  let digest = Codec.string d in
  let policy = Codec.string d in
  let seed = Codec.int d in
  let cap = Codec.int d in
  let start = Codec.int d in
  let values = Codec.float_array d in
  if not (Codec.at_end d) then
    raise (Codec.Corrupt "trailing bytes in chunk record");
  if start < 0 then raise (Codec.Corrupt "negative chunk start");
  ( { digest; policy; seed; cap = (if cap < 0 then None else Some cap) },
    start, values )

let add_chunk t key ~start values =
  let e =
    match Hashtbl.find_opt t.index key with
    | Some e -> e
    | None ->
        let e = { chunks = [] } in
        Hashtbl.add t.index key e;
        e
  in
  e.chunks <-
    List.merge
      (fun (a, _) (b, _) -> compare a b)
      e.chunks [ (start, values) ];
  t.records <- t.records + 1

let open_store ?(sync = true) dirpath =
  if not (Sys.file_exists dirpath) then Unix.mkdir dirpath 0o755
  else if not (Sys.is_directory dirpath) then
    failwith (Printf.sprintf "Result_store: %s is not a directory" dirpath);
  let log, recovered =
    Record_log.open_log ~sync (Filename.concat dirpath log_name)
  in
  let t =
    { log; sdir = dirpath; lock = Mutex.create ();
      index = Hashtbl.create 64; records = 0 }
  in
  List.iter
    (fun payload ->
      (* A record that the CRC accepted but the codec rejects means a
         format skew (old binary, new log); skipping it keeps the rest
         of the store usable and the skipped batch is simply recomputed. *)
      match decode_chunk payload with
      | key, start, values -> add_chunk t key ~start values
      | exception Codec.Corrupt _ -> ())
    recovered;
  t

let dir t = t.sdir

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let committed t key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.index key with
      | None -> [||]
      | Some e ->
          (* Walk the sorted chunks, extending the contiguous prefix. *)
          let n =
            List.fold_left
              (fun n (start, values) ->
                if start <= n then max n (start + Array.length values) else n)
              0 e.chunks
          in
          let out = Array.make n 0.0 in
          List.iter
            (fun (start, values) ->
              let len = min (Array.length values) (n - start) in
              if start < n && len > 0 then
                Array.blit values 0 out start len)
            e.chunks;
          out)

let append t key ~start values =
  if start < 0 then invalid_arg "Result_store.append: negative start";
  let payload = encode_chunk key ~start values in
  with_lock t (fun () ->
      Record_log.append t.log payload;
      add_chunk t key ~start (Array.copy values))

let stats t =
  with_lock t (fun () ->
      let reps =
        Hashtbl.fold
          (fun _ e acc ->
            List.fold_left
              (fun acc (_, values) -> acc + Array.length values)
              acc e.chunks)
          t.index 0
      in
      let file_bytes =
        match Unix.stat (Record_log.path t.log) with
        | st -> st.Unix.st_size
        | exception Unix.Unix_error _ -> 0
      in
      { keys = Hashtbl.length t.index; records = t.records; reps; file_bytes })

let close t = Record_log.close t.log
