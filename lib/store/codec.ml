exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

type encoder = Buffer.t

let encoder () = Buffer.create 256

let add_int buf v = Buffer.add_int64_le buf (Int64.of_int v)

let add_float buf v = Buffer.add_int64_le buf (Int64.bits_of_float v)

let add_string buf s =
  add_int buf (String.length s);
  Buffer.add_string buf s

let add_float_array buf a =
  add_int buf (Array.length a);
  Array.iter (add_float buf) a

let contents = Buffer.contents

type decoder = { data : string; mutable pos : int }

let decoder data = { data; pos = 0 }

let need d n what =
  if n < 0 || d.pos > String.length d.data - n then
    corrupt "truncated payload: needed %d bytes for %s at offset %d" n what
      d.pos

let int64 d what =
  need d 8 what;
  let v = String.get_int64_le d.data d.pos in
  d.pos <- d.pos + 8;
  v

let int d =
  let v = int64 d "int" in
  (* Encoded from an OCaml int, so it must fit back into one. *)
  if Int64.of_int (Int64.to_int v) <> v then corrupt "int out of range";
  Int64.to_int v

let float d = Int64.float_of_bits (int64 d "float")

let string d =
  let n = int d in
  if n < 0 then corrupt "negative string length %d" n;
  need d n "string body";
  let s = String.sub d.data d.pos n in
  d.pos <- d.pos + n;
  s

let float_array d =
  let n = int d in
  if n < 0 then corrupt "negative array length %d" n;
  need d (8 * n) "float array body";
  Array.init n (fun _ -> float d)

let at_end d = d.pos = String.length d.data
