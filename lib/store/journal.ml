type entry = { seq : int; request : string; response : string option }

type t = { log : Record_log.t; response_sync : bool }

let c_requests = lazy (Suu_obs.Registry.counter "store.journal.requests")
let c_responses = lazy (Suu_obs.Registry.counter "store.journal.responses")

let kind_request = 0
let kind_response = 1

let encode ~kind ~seq bytes =
  let e = Codec.encoder () in
  Codec.add_int e kind;
  Codec.add_int e seq;
  Codec.add_string e bytes;
  Codec.contents e

let decode payload =
  let d = Codec.decoder payload in
  let kind = Codec.int d in
  if kind <> kind_request && kind <> kind_response then
    raise (Codec.Corrupt (Printf.sprintf "unknown journal kind %d" kind));
  let seq = Codec.int d in
  let bytes = Codec.string d in
  if not (Codec.at_end d) then
    raise (Codec.Corrupt "trailing bytes in journal record");
  (kind, seq, bytes)

(* Pair request records with their responses, preserving request
   append order (ascending seq for a well-formed journal).  Responses
   without a journaled request can only come from format skew and are
   dropped. *)
let pair records =
  let requests = ref [] in
  let responses = Hashtbl.create 64 in
  List.iter
    (fun payload ->
      match decode payload with
      | kind, seq, bytes ->
          if kind = kind_request then requests := (seq, bytes) :: !requests
          else Hashtbl.replace responses seq bytes
      | exception Codec.Corrupt _ -> ())
    records;
  List.rev_map
    (fun (seq, request) ->
      { seq; request; response = Hashtbl.find_opt responses seq })
    !requests
  |> List.sort (fun a b -> compare a.seq b.seq)

let read path = pair (Record_log.read path)

let open_journal ?(sync = true) path =
  let log, records = Record_log.open_log ~sync:true path in
  ({ log; response_sync = sync }, pair records)

let next_seq entries =
  List.fold_left (fun acc e -> max acc (e.seq + 1)) 0 entries

let log_request t ~seq bytes =
  Record_log.append ~sync:true t.log (encode ~kind:kind_request ~seq bytes);
  Suu_obs.Counter.incr (Lazy.force c_requests)

let log_response t ~seq bytes =
  Record_log.append ~sync:t.response_sync t.log
    (encode ~kind:kind_response ~seq bytes);
  Suu_obs.Counter.incr (Lazy.force c_responses)

let path t = Record_log.path t.log
let close t = Record_log.close t.log
