let header = "suu-record-log v1\n"
let header_len = String.length header
let max_record_bytes = 64 * 1024 * 1024

let c_recovered = lazy (Suu_obs.Registry.counter "store.recovered")
let c_truncated = lazy (Suu_obs.Registry.counter "store.truncated")

type t = {
  fpath : string;
  fd : Unix.file_descr;
  default_sync : bool;
  lock : Mutex.t;
  mutable closed : bool;
}

let path t = t.fpath

(* --- framing --- *)

let frame payload =
  let len = String.length payload in
  if len > max_record_bytes then
    invalid_arg "Record_log.append: record exceeds max_record_bytes";
  let b = Bytes.create (8 + len) in
  Bytes.set_int32_le b 0 (Int32.of_int len);
  Bytes.set_int32_le b 4 (Suu_util.Crc32.string payload);
  Bytes.blit_string payload 0 b 8 len;
  Bytes.unsafe_to_string b

(* Scan [data] (the whole file) and return the committed records plus
   the byte offset where the committed prefix ends.  Anything between
   that offset and the end of [data] is a torn tail. *)
let scan data =
  let total = String.length data in
  let records = ref [] in
  let pos = ref header_len in
  let torn = ref false in
  while (not !torn) && !pos + 8 <= total do
    let len = Int32.to_int (String.get_int32_le data !pos) in
    let crc = String.get_int32_le data (!pos + 4) in
    if len < 0 || len > max_record_bytes || !pos + 8 > total - len then
      torn := true
    else
      let payload = String.sub data (!pos + 8) len in
      if Suu_util.Crc32.string payload <> crc then torn := true
      else begin
        records := payload :: !records;
        pos := !pos + 8 + len
      end
  done;
  if !pos < total then torn := true;
  (List.rev !records, !pos, !torn)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_header path data =
  if
    String.length data < header_len
    || String.sub data 0 header_len <> header
  then
    failwith
      (Printf.sprintf "Record_log: %s is not a suu record log" path)

let read path =
  if not (Sys.file_exists path) then []
  else
    let data = read_file path in
    if data = "" then []
    else begin
      check_header path data;
      let records, _, _ = scan data in
      records
    end

(* --- durable writes --- *)

let fsync_dir dir =
  (* Directory fsync makes the rename itself durable.  Some filesystems
     refuse fsync on a directory fd; that only weakens the guarantee to
     what those filesystems can give, so errors are ignored. *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd
  | exception Unix.Unix_error _ -> ()

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let rewrite path records =
  let dir = Filename.dirname path in
  let tmp =
    Filename.concat dir
      (Printf.sprintf ".%s.tmp.%d" (Filename.basename path) (Unix.getpid ()))
  in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  (try
     write_all fd header;
     List.iter (fun r -> write_all fd (frame r)) records;
     Unix.fsync fd;
     Unix.close fd
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Unix.rename tmp path;
  fsync_dir dir

let open_log ?(sync = true) path =
  if not (Sys.file_exists path) then rewrite path [];
  let data = read_file path in
  (* A pre-existing empty file (0 bytes) counts as a fresh log: an
     interrupted external `touch`-style creation, not foreign data. *)
  if data <> "" then check_header path data
  else rewrite path [];
  let records, good_end, torn =
    if data = "" then ([], header_len, false) else scan data
  in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  (try
     if torn then begin
       Unix.ftruncate fd good_end;
       Unix.fsync fd;
       Suu_obs.Counter.incr (Lazy.force c_truncated)
     end;
     ignore (Unix.lseek fd 0 Unix.SEEK_END : int)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  Suu_obs.Counter.add (Lazy.force c_recovered) (List.length records);
  ( { fpath = path; fd; default_sync = sync; lock = Mutex.create ();
      closed = false },
    records )

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let append ?sync t payload =
  let fr = frame payload in
  with_lock t (fun () ->
      if t.closed then failwith "Record_log.append: log is closed";
      write_all t.fd fr;
      if Option.value sync ~default:t.default_sync then Unix.fsync t.fd)

let sync t =
  with_lock t (fun () ->
      if t.closed then failwith "Record_log.sync: log is closed";
      Unix.fsync t.fd)

let close t =
  with_lock t (fun () ->
      if not t.closed then begin
        t.closed <- true;
        (try Unix.fsync t.fd with Unix.Unix_error _ -> ());
        try Unix.close t.fd with Unix.Unix_error _ -> ()
      end)
