(** Crash-safe append-only record log.

    The one durable primitive under the result store and the request
    journal.  A log file is a fixed header line followed by framed
    records:

    {v
    [len : u32 LE] [crc32(payload) : u32 LE] [payload bytes]
    v}

    Durability discipline:

    - {b Appends} write one whole frame and (by default) [fsync] before
      returning, so a record that {!append} returned for survives a
      [kill -9] or power cut.
    - {b Recovery} ({!open_log}) scans the file front to back and stops
      at the first frame that is short, oversized, or fails its CRC —
      everything before it is the recovered prefix, everything after is
      a torn tail from an interrupted append and is truncated away.
      Recovered record and truncation counts land in the Obs registry
      as [store.recovered] / [store.truncated].
    - {b Rewrites} ({!rewrite}) go through a tempfile in the
      destination directory, [fsync], [rename], directory [fsync]: a
      crash leaves either the old file or the new one, never a blend.

    Readers never trust a length field further than the bytes actually
    present, and a per-record size cap keeps a corrupt length from
    committing the scanner to an absurd allocation. *)

type t

val max_record_bytes : int
(** Per-record size cap (64 MiB); {!append} refuses larger payloads and
    recovery treats larger lengths as tears. *)

val read : string -> string list
(** Read-only recovery scan: the committed records of the log at
    [path], in append order, ignoring (without modifying) any torn
    tail.  A missing file is the empty log.  Raises [Failure] when the
    file exists but does not start with the log header (it is not a
    record log — refusing beats silently truncating someone's data). *)

val open_log : ?sync:bool -> string -> t * string list
(** Recover the log at [path] — truncating a torn tail in place — and
    open it for appending; returns the recovered records in append
    order.  Creates the file (atomically, header only) when missing.
    [sync] (default [true]) is the default durability of each
    {!append}.  Raises [Failure] on a foreign file, [Unix.Unix_error]
    on IO errors. *)

val append : ?sync:bool -> t -> string -> unit
(** Append one record; on return with [sync = true] (the default, or
    the log's default) the record is on disk.  Raises
    [Invalid_argument] past {!max_record_bytes}, [Failure] if closed. *)

val sync : t -> unit
(** [fsync] now — pairs with [append ~sync:false] batching. *)

val path : t -> string

val close : t -> unit
(** Syncs pending writes, then closes.  Idempotent. *)

val rewrite : string -> string list -> unit
(** Replace the log at [path] with exactly [records], atomically:
    tempfile in the same directory, [fsync], [rename] over [path],
    directory [fsync].  Used for compaction and for creating fresh
    logs; concurrent appenders to the old file must be quiesced by the
    caller. *)
