let default_batch = 64

let c_served = lazy (Suu_obs.Registry.counter "store.memo.served")
let c_computed = lazy (Suu_obs.Registry.counter "store.memo.computed")

let instance_digest inst =
  Digest.to_hex (Digest.string (Suu_core.Instance_io.to_string inst))

let makespans ~store ?cap ?jobs ?(batch = default_batch) ?policy_name inst
    policy ~seed ~reps =
  if reps <= 0 then invalid_arg "Memo.makespans: reps must be positive";
  if batch <= 0 then invalid_arg "Memo.makespans: batch must be positive";
  let policy_name =
    match policy_name with
    | Some n -> n
    | None -> Suu_core.Policy.name policy
  in
  let key =
    { Result_store.digest = instance_digest inst; policy = policy_name;
      seed; cap }
  in
  let have = Result_store.committed store key in
  let have_n = min (Array.length have) reps in
  let results = Array.make reps 0.0 in
  Array.blit have 0 results 0 have_n;
  Suu_obs.Counter.add (Lazy.force c_served) have_n;
  if have_n < reps then begin
    (* Same derivation as Runner.makespans: replication [k]'s pair
       depends only on (seed, k), so starting mid-sweep replays the
       exact generators an uninterrupted run would have used. *)
    let rngs = Suu_sim.Seeds.rep_rngs ~seed ~reps in
    let n = Suu_core.Instance.n inst in
    let lo = ref have_n in
    while !lo < reps do
      let base = !lo in
      let hi = min reps (base + batch) in
      Suu_sim.Parallel.parallel_for ?jobs ~n:(hi - base) (fun k ->
          let trace_rng, policy_rng = rngs.(base + k) in
          let trace = Suu_sim.Trace.draw ~n trace_rng in
          results.(base + k) <-
            float_of_int
              (Suu_sim.Engine.makespan ?cap inst policy ~trace
                 ~rng:policy_rng));
      Result_store.append store key ~start:base
        (Array.sub results base (hi - base));
      lo := hi
    done;
    Suu_obs.Counter.add (Lazy.force c_computed) (reps - have_n)
  end;
  results
