(** Content-addressed durable store for replication results.

    The empirical Table 1 harness is a pure function of
    [(instance digest, policy, seed, cap)] per replication — the SUU*
    reformulation makes replication [k] deterministic given its derived
    trace seed — so makespan batches can be committed once and reused
    forever.  A store is a directory holding one {!Record_log}
    ([results.log]); each record is one committed batch: a key plus
    the makespans of replications [start .. start+len-1].

    Resume semantics: {!committed} returns the longest {e contiguous}
    prefix of replications starting at 0 that has been committed for a
    key.  A sweep killed mid-batch therefore resumes exactly after the
    last batch whose append returned — the torn final append is
    truncated by log recovery — and recomputes the rest, yielding
    output bit-identical to an uninterrupted run (replication [k]'s
    seeding depends only on [(seed, k)]; see {!Suu_sim.Runner}). *)

type key = {
  digest : string;  (** hex digest of the instance's canonical serialization *)
  policy : string;  (** wire/CLI policy name *)
  seed : int;
  cap : int option;  (** engine step cap, when one was used *)
}

type stats = {
  keys : int;  (** distinct keys with at least one committed batch *)
  records : int;  (** committed batch records (recovered + appended) *)
  reps : int;  (** total committed replication results across keys *)
  file_bytes : int;  (** current size of [results.log] *)
}

type t

val open_store : ?sync:bool -> string -> t
(** Open (creating the directory and log as needed) the store rooted at
    [dir].  Recovery of a torn tail happens here, via
    {!Record_log.open_log}.  [sync] (default [true]) governs batch
    appends: [false] trades crash-durability of the last batches for
    throughput. *)

val dir : t -> string

val committed : t -> key -> float array
(** The longest contiguous committed prefix of replication results for
    [key], starting at replication 0.  A fresh array; empty when the
    key is unknown. *)

val append : t -> key -> start:int -> float array -> unit
(** Commit the batch covering replications [start .. start+len-1].
    Durable on return (subject to the store's [sync]).  Overlapping or
    out-of-order batches are legal — results are deterministic per
    [(key, index)], so overlaps must agree and are simply merged. *)

val stats : t -> stats

val close : t -> unit
(** Sync and close the log.  Idempotent. *)
