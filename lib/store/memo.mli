(** Store-backed memoization of {!Suu_sim.Runner.makespans}.

    [makespans ~store inst policy ~seed ~reps] returns exactly what
    [Runner.makespans] would — bit for bit — serving the longest
    committed prefix from the store and computing (then committing)
    only the missing replications, in durable batches.

    Why the prefix semantics compose with determinism: replication
    [k]'s generators depend only on [(seed, k)] (see
    {!Suu_sim.Seeds}), so results committed by a previous — possibly
    killed — run are the same values this run would compute.  A sweep
    re-run after a mid-batch [kill -9] therefore resumes after the
    last durable batch and produces output identical to an
    uninterrupted (or a cold) run.

    Counters: [store.memo.served] (replications answered from the
    store) and [store.memo.computed] (replications executed and
    committed). *)

val default_batch : int
(** Replications per durable batch commit (64). *)

val makespans :
  store:Result_store.t ->
  ?cap:int ->
  ?jobs:int ->
  ?batch:int ->
  ?policy_name:string ->
  Suu_core.Instance.t ->
  Suu_core.Policy.t ->
  seed:int ->
  reps:int ->
  float array
(** Bit-identical to [Runner.makespans ?cap ?jobs inst policy ~seed
    ~reps].  The store key is the instance's canonical-serialization
    digest, [policy_name] (default {!Suu_core.Policy.name}; override
    when one wire name covers differently-configured policies, e.g.
    alternate LP solvers), [seed] and [cap].  Raises [Invalid_argument]
    on non-positive [reps] or [batch]. *)
