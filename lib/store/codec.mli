(** Binary record codec for {!Record_log} payloads.

    Fixed-width little-endian primitives, length-prefixed strings, no
    self-description: both sides agree on field order, and the log
    frame's CRC (not the codec) is what detects corruption.  Floats
    travel as their IEEE-754 bit patterns, so encode/decode round-trips
    are exact — the byte-identical-replay guarantees rest on this.

    Decoding a short or malformed payload raises {!Corrupt} with a
    description; it never reads out of bounds. *)

exception Corrupt of string

type encoder

val encoder : unit -> encoder
val add_int : encoder -> int -> unit
(** Full 63-bit range, sign included (8 bytes LE). *)

val add_float : encoder -> float -> unit
(** IEEE-754 bit pattern, 8 bytes LE; NaNs round-trip bit-exactly. *)

val add_string : encoder -> string -> unit
(** 8-byte length prefix, then the raw bytes. *)

val add_float_array : encoder -> float array -> unit
val contents : encoder -> string

type decoder

val decoder : string -> decoder
val int : decoder -> int
val float : decoder -> float
val string : decoder -> string
val float_array : decoder -> float array
val at_end : decoder -> bool
(** True when every byte has been consumed — decoders check this to
    reject trailing garbage. *)
