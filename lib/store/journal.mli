(** Write-ahead request journal for [suu-serve].

    Every admitted request frame is journaled {e before} execution
    (write-ahead: the append is fsync'd, so an admitted request
    survives a [kill -9] even if its execution never finished), and its
    response frame is journaled after execution.  Frames are stored as
    opaque byte strings — the journal layer knows nothing of the wire
    protocol — correlated by a server-assigned sequence number.

    Recovery pairs requests with their responses; a request whose
    response record is missing was in flight when the process died.
    {!Suu_server.Replay} re-executes a journal against a fresh service
    and verifies responses byte-for-byte, turning any captured traffic
    into a regression test. *)

type entry = {
  seq : int;
  request : string;  (** the request frame, byte-exact *)
  response : string option;
      (** the response frame, or [None] if the process died before the
          response was journaled *)
}

type t

val read : string -> entry list
(** Read-only recovery: the paired entries of the journal at [path] in
    ascending [seq] order, ignoring (without modifying) a torn tail.  A
    missing file is the empty journal.  Raises [Failure] on a file that
    is not a record log. *)

val open_journal : ?sync:bool -> string -> t * entry list
(** Recover (truncating a torn tail) and open for appending; returns
    the recovered entries in ascending [seq] order.  [sync] (default
    [true]) applies to {e response} appends; request appends are always
    fsync'd — that is the write-ahead guarantee. *)

val next_seq : entry list -> int
(** 1 + the largest recovered [seq] (0 for an empty journal): where a
    restarted server continues numbering. *)

val log_request : t -> seq:int -> string -> unit
(** Journal an admitted request frame.  Durable on return. *)

val log_response : t -> seq:int -> string -> unit

val path : t -> string

val close : t -> unit
