(** Synthetic SUU workloads.

    The paper has no dataset — its motivation (SETI\@home volunteers,
    MapReduce phases) guides these generators instead.  Each hazard model
    stresses a different aspect of the algorithms:

    - [Uniform]: i.i.d. failure probabilities, the baseline regime;
    - [Product]: related machines — [q_ij = base^(speed_i * ease_j)], so
      machines rank consistently across jobs, like hardware generations;
    - [Volunteers]: a bimodal SETI-like pool of reliable hosts and flaky
      ones;
    - [Specialists]: each job runs acceptably on only a few machines and
      nearly always fails elsewhere — the unrelated-machines regime where
      LP-based assignment matters most;
    - [Near_one]: all failure probabilities close to 1, maximizing the
      number of repetitions and separating O(log n) from O(loglog n)
      schedules.

    All generators are deterministic functions of their [seed]. *)

type hazard =
  | Uniform of { lo : float; hi : float }
  | Product
  | Volunteers of { reliable_fraction : float }
  | Specialists of { capable : int }
  | Near_one

val hazard_name : hazard -> string

val default_hazards : hazard list
(** The five models above with standard parameters, used by the bench
    sweeps. *)

val q_matrix :
  hazard -> m:int -> n:int -> Suu_prng.Rng.t -> float array array
(** [q_matrix hazard ~m ~n rng] draws an [m x n] failure matrix.

    {b Invariant:} every job has at least one machine with [q < 1],
    so every generated instance is schedulable (finite expected
    makespan).  Two mechanisms uphold it: a repair pass overwrites one
    random entry of any all-ones column with [0.5], and — because
    floating-point rounding lets [Rng.range ~lo ~hi] occasionally
    return exactly [hi], which would slip a stray [1.0] past the
    repair — [Uniform] requires [hi < 1.0] strictly
    ([Invalid_argument] otherwise).  Use [Near_one] for
    worst-case-adjacent hazards instead of [Uniform] with [hi = 1]. *)

val independent : hazard -> n:int -> m:int -> seed:int -> Suu_core.Instance.t
(** Independent jobs (SUU-I). *)

val chains :
  hazard -> z:int -> length:int -> m:int -> seed:int -> Suu_core.Instance.t
(** [chains hazard ~z ~length ~m ~seed]: [z] disjoint chains of [length]
    jobs each (SUU-C), [n = z * length]. *)

val random_chains :
  hazard -> n:int -> z:int -> m:int -> seed:int -> Suu_core.Instance.t
(** [n] jobs split into exactly [z] nonempty chains at [z - 1]
    distinct random cut points. *)

val forest :
  hazard ->
  n:int ->
  trees:int ->
  orientation:[ `Out | `In | `Mixed ] ->
  m:int ->
  seed:int ->
  Suu_core.Instance.t
(** Random directed forest (SUU-T): [trees] roots, each remaining job
    attaching to a uniform earlier job of a uniform tree.  [`Out] points
    edges root→leaf, [`In] leaf→root, [`Mixed] alternates per tree. *)

val mapreduce :
  hazard -> maps:int -> reduces:int -> m:int -> seed:int -> Suu_core.Instance.t
(** Two-phase MapReduce dag: a complete bipartite dependency from [maps]
    map jobs to [reduces] reduce jobs (paper Section 1's motivating
    example).  Note: this is a *general* dag — the examples schedule it as
    two independent-job phases. *)
