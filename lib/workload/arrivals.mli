(** Deterministic arrival processes for open-loop load generation.

    An arrival process yields a non-decreasing sequence of arrival
    timestamps (seconds from the start of the run).  Synthetic
    processes (Poisson, bursty, diurnal) are infinite and fully
    determined by [(spec, seed)]; the [Trace] source replays a finite
    list of recorded submit times (e.g. {!Swf.arrival_times}) and ends.

    Open-loop means the generator decides {e when} requests fire —
    clients submit at these timestamps regardless of how fast the
    server answers — as opposed to the closed-loop as-fast-as-possible
    clients the serve bench used before. *)

type spec =
  | Poisson of { rate : float }
      (** homogeneous Poisson: i.i.d. exponential inter-arrivals with
          mean [1/rate] (arrivals per second) *)
  | Bursty of {
      rate_on : float;  (** arrival rate inside a burst *)
      rate_off : float;  (** arrival rate between bursts *)
      mean_on : float;  (** mean burst duration, seconds *)
      mean_off : float;  (** mean gap duration, seconds *)
    }
      (** two-state MMPP: an on/off modulating chain with exponential
          sojourns; Poisson arrivals at [rate_on] while on, [rate_off]
          while off *)
  | Diurnal of {
      mean_rate : float;  (** time-averaged arrival rate *)
      period : float;  (** cycle length, seconds (a scaled "day") *)
      amplitude : float;
          (** relative swing in [[0, 1]]: instantaneous rate is
              [mean_rate * (1 + amplitude * sin(2πt/period))] *)
    }
      (** nonhomogeneous Poisson with a sinusoidal rate curve, sampled
          by thinning *)
  | Trace of float array
      (** replay recorded timestamps; must be non-decreasing and
          non-negative (see {!Swf.arrival_times}) *)

type t

val create : ?seed:int -> spec -> t
(** [seed] defaults to [0].  Two processes created from equal
    [(spec, seed)] yield identical arrival sequences. *)

val next_arrival : t -> float option
(** The next arrival timestamp, in seconds from time 0.  Timestamps
    are non-decreasing across calls.  [None] once a [Trace] source is
    exhausted; synthetic sources never return [None]. *)

val take : t -> int -> float array
(** [take t k] collects up to [k] further arrivals (fewer only when
    the source runs dry). *)

val spec_of_string : string -> (spec, string) result
(** Parse a CLI workload spec:
    - ["poisson:RATE"] (arrivals/second);
    - ["bursty"] or ["bursty:RON:ROFF:TON:TOFF"]
      (defaults [20:0.5:2:8]);
    - ["diurnal"] or ["diurnal:RATE:PERIOD:AMP"]
      (defaults [5:60:0.8]);
    - ["swf:FILE"] — load [FILE] as an SWF trace and replay its
      submit times.

    [Error msg] on an unknown form or out-of-range parameter; loading
    the SWF file may also raise ([Failure]/[Sys_error]) as in
    {!Swf.load_file}. *)

val spec_to_string : spec -> string
(** Canonical rendering of the spec (a [Trace] prints as
    ["trace:<n> arrivals"]), for bench metadata. *)
