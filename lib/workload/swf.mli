(** Standard Workload Format (SWF) ingestion.

    SWF is the replay format of the Parallel Workloads Archive — the
    trace format real HPC schedulers (Maui, Slurm converters, the pyss
    EASY/EASY++ simulators) exchange.  A trace is a text file of

    - header/comment lines starting with [';'].  Header {e directives}
      have the shape [; Key: value] (e.g. [; MaxProcs: 128]) and are
      preserved; other [';'] lines are plain comments;
    - one job per line, exactly 18 whitespace-separated fields:
      job number, submit time, wait time, run time, allocated
      processors, average CPU time, used memory, requested processors,
      requested time, requested memory, status, user id, group id,
      executable, queue, partition, preceding job, think time.
      Unknown values are [-1] by convention.

    Parsing is strict and located: malformed input raises [Failure]
    with a 1-based line number (["Swf: line N: ..."]), in the style of
    {!Suu_core.Instance_io}.  The parser is streaming — {!fold} reads
    line by line and never materializes the file — so multi-year
    archive traces ingest in constant memory.

    The second half of this module maps trace jobs onto SUU instances,
    giving the paper's policies a trace-driven workload axis:

    - {b runtime → hazard calibration}: per-machine speed factors are
      drawn once per trace as in the [Product] hazard model, and a
      job's failure probabilities are [q_ij = base^(speed_i * ease_j)]
      with [ease_j] shrinking in the recorded runtime — longer jobs
      carry more failure mass per step on every machine, so recorded
      runtimes set the number of repetitions the SUU policies must
      plan for;
    - {b processor count → width}: a job allocated [p] processors
      becomes an SUU instance of [min p max_width] sub-jobs;
    - {b user id → DAG template}: users are classified by their mean
      allocated width across the trace — sequential users (mean width
      below the trace median) submit chain-structured instances,
      wide users submit MapReduce fan-in instances (all but one
      sub-job feeding a final reducer), and width-1 jobs are single
      independent jobs regardless of user.

    Every mapping is a deterministic function of [(trace, seed)]. *)

type job = {
  id : int;  (** field 1, job number *)
  submit : float;  (** field 2, seconds since trace start *)
  wait : float;  (** field 3, seconds in queue; [-1.] unknown *)
  runtime : float;  (** field 4, seconds of execution; [-1.] unknown *)
  procs : int;  (** field 5, allocated processors; [-1] unknown *)
  cpu_used : float;  (** field 6 *)
  mem_used : float;  (** field 7 *)
  req_procs : int;  (** field 8 *)
  req_time : float;  (** field 9 *)
  req_mem : float;  (** field 10 *)
  status : int;  (** field 11: 1 completed, 0 failed, 5 cancelled, ... *)
  user : int;  (** field 12 *)
  group : int;  (** field 13 *)
  executable : int;  (** field 14 *)
  queue : int;  (** field 15 *)
  partition : int;  (** field 16 *)
  prec_job : int;  (** field 17, preceding job number *)
  think_time : float;  (** field 18 *)
}

type t = {
  directives : (string * string) list;
      (** header [; Key: value] lines, in file order *)
  jobs : job array;  (** job lines, in file order *)
}

val parse_line : lineno:int -> string -> job option
(** Parse one line.  [None] for blank and [';'] lines; raises [Failure
    "Swf: line N: ..."] on a job line with a wrong field count or an
    unparseable field (the message names the offending field). *)

val fold :
  next_line:(unit -> string option) -> init:'a -> f:('a -> job -> 'a) -> 'a
(** Streaming parse: [next_line] yields lines without their newline
    ([None] at end of stream); [f] is applied to each job line in
    order.  Comments and directives are skipped.  Line numbers in
    errors count from 1 at the first line [next_line] returned. *)

val of_string : string -> t
val load_file : string -> t
(** [load_file path] streams [path] through {!fold}, collecting
    directives and jobs.  Raises [Failure] on parse errors (located)
    and [Sys_error] on I/O failure. *)

val job_to_line : job -> string
(** The canonical 18-field rendering (no trailing newline).  Floats
    that hold integral values print as integers, so archive-style
    lines round-trip byte-identically; fractional values print with
    round-trip precision. *)

val to_string : t -> string
(** Directives (as [; Key: value]) followed by {!job_to_line} per job,
    one per line.  [of_string (to_string t)] equals [t]. *)

(** {1 Trace statistics} *)

type stats = {
  n_jobs : int;
  n_users : int;
  span : float;  (** last submit - first submit, seconds *)
  max_procs : int;
  mean_procs : float;
  mean_runtime : float;  (** over jobs with a known runtime *)
  max_runtime : float;
}

val stats : t -> stats
(** Raises [Invalid_argument] on an empty trace. *)

(** {1 Mapping onto SUU instances} *)

type mapping = {
  m : int;  (** machines per generated instance *)
  max_width : int;  (** cap on sub-jobs per instance *)
  seed : int;  (** master seed; everything derives from it *)
  runtime_ref : float;
      (** reference runtime: a job of this length gets ease 1 (the
          mid-range of the Product model); shorter jobs are easier,
          longer jobs harder.  Non-positive picks the trace mean. *)
}

val default_mapping : mapping
(** [m = 4], [max_width = 12], [seed = 0], [runtime_ref = 0.] *)

val calibrate : mapping -> t -> float array
(** The per-machine speed factors ([mapping.m] of them, in
    [[0.3, 2.0]] as in the [Product] hazard) used for every instance
    of this trace — one machine pool, many jobs, as in the archive
    systems the traces come from.  Deterministic in [mapping.seed]. *)

val instance_of_job : mapping -> speeds:float array -> chain_user:bool ->
  job -> Suu_core.Instance.t
(** Map one job.  [speeds] must come from {!calibrate} (length
    [mapping.m]); [chain_user] selects the sequential-user chain
    template over the mapreduce fan-in for multi-processor jobs.
    The instance name encodes job id, user, width and template, and
    the failure matrix depends only on [(mapping, job)] — the same
    job maps identically across runs and processes. *)

val instances : ?mapping:mapping -> t -> (job * Suu_core.Instance.t) array
(** Map the whole trace: {!calibrate} once, classify users by mean
    allocated width (chain template at or below the per-user median,
    mapreduce above), then {!instance_of_job} per job in submit
    order.  Deterministic in [(trace, mapping)]. *)

val arrival_times : t -> float array
(** Submit times normalized to start at 0, clamped to be
    non-decreasing (archive traces occasionally carry out-of-order
    submit stamps) — the replay clock for open-loop serving. *)
