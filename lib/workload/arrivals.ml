module Rng = Suu_prng.Rng

type spec =
  | Poisson of { rate : float }
  | Bursty of {
      rate_on : float;
      rate_off : float;
      mean_on : float;
      mean_off : float;
    }
  | Diurnal of { mean_rate : float; period : float; amplitude : float }
  | Trace of float array

type state =
  | S_poisson of { rate : float }
  | S_bursty of {
      rate_on : float;
      rate_off : float;
      mean_on : float;
      mean_off : float;
      mutable on : bool;
      mutable phase_end : float;  (* when the current on/off sojourn ends *)
    }
  | S_diurnal of { mean_rate : float; period : float; amplitude : float }
  | S_trace of { times : float array; mutable pos : int }

type t = { rng : Rng.t; mutable now : float; state : state }

let pi = 4.0 *. atan 1.0

let validate_rate name r =
  if not (r > 0.0 && Float.is_finite r) then
    invalid_arg (Printf.sprintf "Arrivals.create: %s must be positive" name)

let create ?(seed = 0) spec =
  let rng = Rng.create ~seed in
  let state =
    match spec with
    | Poisson { rate } ->
        validate_rate "rate" rate;
        S_poisson { rate }
    | Bursty { rate_on; rate_off; mean_on; mean_off } ->
        validate_rate "rate_on" rate_on;
        validate_rate "rate_off" rate_off;
        validate_rate "mean_on" mean_on;
        validate_rate "mean_off" mean_off;
        (* Start in a burst; the first sojourn is drawn like the rest. *)
        S_bursty
          {
            rate_on;
            rate_off;
            mean_on;
            mean_off;
            on = true;
            phase_end = Rng.exponential rng ~rate:(1.0 /. mean_on);
          }
    | Diurnal { mean_rate; period; amplitude } ->
        validate_rate "mean_rate" mean_rate;
        validate_rate "period" period;
        if not (0.0 <= amplitude && amplitude <= 1.0) then
          invalid_arg "Arrivals.create: amplitude must be in [0, 1]";
        S_diurnal { mean_rate; period; amplitude }
    | Trace times ->
        Array.iteri
          (fun i at ->
            if not (Float.is_finite at) || at < 0.0
               || (i > 0 && at < times.(i - 1))
            then
              invalid_arg
                "Arrivals.create: trace times must be non-negative and \
                 non-decreasing")
          times;
        S_trace { times; pos = 0 }
  in
  { rng; now = 0.0; state }

let next_arrival t =
  match t.state with
  | S_poisson { rate } ->
      t.now <- t.now +. Rng.exponential t.rng ~rate;
      Some t.now
  | S_bursty b ->
      (* Draw a candidate inter-arrival at the current phase's rate; if
         it lands past the phase boundary, restart the draw from the
         boundary in the next phase (memorylessness makes this exact). *)
      let rec step () =
        let rate = if b.on then b.rate_on else b.rate_off in
        let candidate = t.now +. Rng.exponential t.rng ~rate in
        if candidate <= b.phase_end then begin
          t.now <- candidate;
          t.now
        end
        else begin
          t.now <- b.phase_end;
          b.on <- not b.on;
          let mean = if b.on then b.mean_on else b.mean_off in
          b.phase_end <- b.phase_end +. Rng.exponential t.rng ~rate:(1.0 /. mean);
          step ()
        end
      in
      Some (step ())
  | S_diurnal d ->
      (* Thinning: candidates at the peak rate, kept with probability
         rate(t)/peak. *)
      let peak = d.mean_rate *. (1.0 +. d.amplitude) in
      let rec step () =
        t.now <- t.now +. Rng.exponential t.rng ~rate:peak;
        let rate_now =
          d.mean_rate
          *. (1.0 +. (d.amplitude *. sin (2.0 *. pi *. t.now /. d.period)))
        in
        if Rng.uniform_open t.rng <= rate_now /. peak then t.now else step ()
      in
      Some (step ())
  | S_trace tr ->
      if tr.pos >= Array.length tr.times then None
      else begin
        let at = tr.times.(tr.pos) in
        tr.pos <- tr.pos + 1;
        t.now <- at;
        Some at
      end

let take t k =
  let out = ref [] and n = ref 0 in
  let continue = ref true in
  while !continue && !n < k do
    match next_arrival t with
    | Some at ->
        out := at :: !out;
        incr n
    | None -> continue := false
  done;
  Array.of_list (List.rev !out)

let parse_floats name parts defaults =
  let arity = Array.length defaults in
  if List.length parts > arity then
    Error (Printf.sprintf "%s takes at most %d parameters" name arity)
  else
    let out = Array.copy defaults in
    let rec go i = function
      | [] -> Ok out
      | p :: rest -> (
          match float_of_string_opt p with
          | Some v ->
              out.(i) <- v;
              go (i + 1) rest
          | None -> Error (Printf.sprintf "%s: bad number %S" name p))
    in
    go 0 parts

let spec_of_string s =
  let prefix, rest =
    match String.index_opt s ':' with
    | Some i ->
        ( String.sub s 0 i,
          String.sub s (i + 1) (String.length s - i - 1) )
    | None -> (s, "")
  in
  let params =
    if rest = "" then []
    else String.split_on_char ':' rest
  in
  let guard spec =
    match create spec with
    | _ -> Ok spec
    | exception Invalid_argument msg -> Error msg
  in
  match String.lowercase_ascii prefix with
  | "poisson" -> (
      match params with
      | [ r ] -> (
          match float_of_string_opt r with
          | Some rate -> guard (Poisson { rate })
          | None -> Error (Printf.sprintf "poisson: bad rate %S" r))
      | _ -> Error "poisson takes exactly one parameter: poisson:RATE")
  | "bursty" -> (
      match parse_floats "bursty" params [| 20.0; 0.5; 2.0; 8.0 |] with
      | Error _ as e -> e
      | Ok [| rate_on; rate_off; mean_on; mean_off |] ->
          guard (Bursty { rate_on; rate_off; mean_on; mean_off })
      | Ok _ -> assert false)
  | "diurnal" -> (
      match parse_floats "diurnal" params [| 5.0; 60.0; 0.8 |] with
      | Error _ as e -> e
      | Ok [| mean_rate; period; amplitude |] ->
          guard (Diurnal { mean_rate; period; amplitude })
      | Ok _ -> assert false)
  | "swf" ->
      if rest = "" then Error "swf requires a file: swf:FILE"
      else guard (Trace (Swf.arrival_times (Swf.load_file rest)))
  | _ ->
      Error
        (Printf.sprintf
           "unknown workload %S (expected swf:FILE, poisson:RATE, bursty, \
            diurnal)"
           s)

let spec_to_string = function
  | Poisson { rate } -> Printf.sprintf "poisson:%g" rate
  | Bursty { rate_on; rate_off; mean_on; mean_off } ->
      Printf.sprintf "bursty:%g:%g:%g:%g" rate_on rate_off mean_on mean_off
  | Diurnal { mean_rate; period; amplitude } ->
      Printf.sprintf "diurnal:%g:%g:%g" mean_rate period amplitude
  | Trace times -> Printf.sprintf "trace:%d arrivals" (Array.length times)
