module Rng = Suu_prng.Rng
module Instance = Suu_core.Instance
module Dag = Suu_dag.Dag

type hazard =
  | Uniform of { lo : float; hi : float }
  | Product
  | Volunteers of { reliable_fraction : float }
  | Specialists of { capable : int }
  | Near_one

let hazard_name = function
  | Uniform { lo; hi } -> Printf.sprintf "uniform[%.2g,%.2g]" lo hi
  | Product -> "product"
  | Volunteers { reliable_fraction } ->
      Printf.sprintf "volunteers[%.2g]" reliable_fraction
  | Specialists { capable } -> Printf.sprintf "specialists[%d]" capable
  | Near_one -> "near-one"

let default_hazards =
  [
    Uniform { lo = 0.2; hi = 0.95 };
    Product;
    Volunteers { reliable_fraction = 0.2 };
    Specialists { capable = 3 };
    Near_one;
  ]

let q_matrix hazard ~m ~n rng =
  if m <= 0 || n <= 0 then invalid_arg "Workload.q_matrix: empty";
  let q = Array.make_matrix m n 0.0 in
  (match hazard with
  | Uniform { lo; hi } ->
      (* [hi < 1.0] strictly: [Rng.range] is documented never to return
         [hi], but the closing float addition can round up to it, and a
         [q_ij = 1.0] entry would defeat the solvability repair below
         (which only fires when a whole column is at 1.0). *)
      if not (0.0 <= lo && lo <= hi && hi < 1.0) then
        invalid_arg "Workload: bad uniform range (need 0 <= lo <= hi < 1)";
      for i = 0 to m - 1 do
        for j = 0 to n - 1 do
          q.(i).(j) <- Rng.range rng ~lo ~hi
        done
      done
  | Product ->
      let speed = Array.init m (fun _ -> Rng.range rng ~lo:0.3 ~hi:2.0) in
      let ease = Array.init n (fun _ -> Rng.range rng ~lo:0.3 ~hi:2.0) in
      for i = 0 to m - 1 do
        for j = 0 to n - 1 do
          q.(i).(j) <- Float.pow 0.6 (speed.(i) *. ease.(j))
        done
      done
  | Volunteers { reliable_fraction } ->
      if not (0.0 < reliable_fraction && reliable_fraction <= 1.0) then
        invalid_arg "Workload: bad reliable fraction";
      for i = 0 to m - 1 do
        let reliable = Rng.float rng 1.0 < reliable_fraction in
        for j = 0 to n - 1 do
          q.(i).(j) <-
            (if reliable then Rng.range rng ~lo:0.05 ~hi:0.3
             else Rng.range rng ~lo:0.7 ~hi:0.995)
        done
      done
  | Specialists { capable } ->
      if capable <= 0 then invalid_arg "Workload: capable must be positive";
      let machines = Array.init m (fun i -> i) in
      for j = 0 to n - 1 do
        for i = 0 to m - 1 do
          q.(i).(j) <- Rng.range rng ~lo:0.99 ~hi:0.999
        done;
        Rng.shuffle rng machines;
        for k = 0 to min capable m - 1 do
          q.(machines.(k)).(j) <- Rng.range rng ~lo:0.1 ~hi:0.6
        done
      done
  | Near_one ->
      for i = 0 to m - 1 do
        for j = 0 to n - 1 do
          q.(i).(j) <- Rng.range rng ~lo:0.9 ~hi:0.99
        done
      done);
  (* Guarantee solvability: every job gets one sub-1 machine. *)
  for j = 0 to n - 1 do
    let ok = ref false in
    for i = 0 to m - 1 do
      if q.(i).(j) < 1.0 then ok := true
    done;
    if not !ok then q.(Rng.int rng m).(j) <- 0.5
  done;
  q

let instance_name prefix hazard ~n ~m ~seed =
  Printf.sprintf "%s-%s-n%d-m%d-s%d" prefix (hazard_name hazard) n m seed

let independent hazard ~n ~m ~seed =
  let rng = Rng.create ~seed in
  let q = q_matrix hazard ~m ~n rng in
  Instance.make
    ~name:(instance_name "ind" hazard ~n ~m ~seed)
    ~dag:(Dag.empty n) q

let chains hazard ~z ~length ~m ~seed =
  if z <= 0 || length <= 0 then invalid_arg "Workload.chains: bad shape";
  let n = z * length in
  let rng = Rng.create ~seed in
  let q = q_matrix hazard ~m ~n rng in
  let edges = ref [] in
  for c = 0 to z - 1 do
    for k = 1 to length - 1 do
      let j = (c * length) + k in
      edges := (j - 1, j) :: !edges
    done
  done;
  Instance.make
    ~name:(instance_name "chains" hazard ~n ~m ~seed)
    ~dag:(Dag.of_edges ~n !edges)
    q

let random_chains hazard ~n ~z ~m ~seed =
  if z <= 0 || n < z then invalid_arg "Workload.random_chains: bad shape";
  let rng = Rng.create ~seed in
  let q = q_matrix hazard ~m ~n rng in
  (* Split [0, n) into z nonempty runs at z-1 *distinct* cut points:
     a partial Fisher–Yates over the n-1 candidate positions.  Drawing
     with replacement here used to merge runs on duplicate cuts,
     yielding fewer than z chains. *)
  let candidates = Array.init (n - 1) (fun k -> k + 1) in
  let cuts =
    Array.init (z - 1) (fun k ->
        let r = k + Rng.int rng (n - 1 - k) in
        let tmp = candidates.(k) in
        candidates.(k) <- candidates.(r);
        candidates.(r) <- tmp;
        candidates.(k))
  in
  Array.sort compare cuts;
  let boundaries = Array.to_list cuts @ [ n ] in
  let edges = ref [] in
  let start = ref 0 in
  List.iter
    (fun stop ->
      for j = !start + 1 to stop - 1 do
        edges := (j - 1, j) :: !edges
      done;
      start := stop)
    boundaries;
  Instance.make
    ~name:(instance_name "rchains" hazard ~n ~m ~seed)
    ~dag:(Dag.of_edges ~n !edges)
    q

let forest hazard ~n ~trees ~orientation ~m ~seed =
  if trees <= 0 || n < trees then invalid_arg "Workload.forest: bad shape";
  let rng = Rng.create ~seed in
  let q = q_matrix hazard ~m ~n rng in
  (* Jobs 0..trees-1 are roots; each later job attaches to a uniformly
     random earlier job in its (uniformly random) tree. *)
  let members = Array.make trees [] in
  for t = 0 to trees - 1 do
    members.(t) <- [ t ]
  done;
  let edges = ref [] in
  let flip = Array.init trees (fun t ->
      match orientation with
      | `Out -> false
      | `In -> true
      | `Mixed -> t mod 2 = 1)
  in
  for j = trees to n - 1 do
    let t = Rng.int rng trees in
    let candidates = Array.of_list members.(t) in
    let parent = candidates.(Rng.int rng (Array.length candidates)) in
    members.(t) <- j :: members.(t);
    if flip.(t) then edges := (j, parent) :: !edges
    else edges := (parent, j) :: !edges
  done;
  Instance.make
    ~name:(instance_name "forest" hazard ~n ~m ~seed)
    ~dag:(Dag.of_edges ~n !edges)
    q

let mapreduce hazard ~maps ~reduces ~m ~seed =
  if maps <= 0 || reduces <= 0 then
    invalid_arg "Workload.mapreduce: bad shape";
  let n = maps + reduces in
  let rng = Rng.create ~seed in
  let q = q_matrix hazard ~m ~n rng in
  let edges = ref [] in
  for a = 0 to maps - 1 do
    for b = maps to n - 1 do
      edges := (a, b) :: !edges
    done
  done;
  Instance.make
    ~name:(instance_name "mapreduce" hazard ~n ~m ~seed)
    ~dag:(Dag.of_edges ~n !edges)
    q
