module Rng = Suu_prng.Rng
module Instance = Suu_core.Instance
module Dag = Suu_dag.Dag

type job = {
  id : int;
  submit : float;
  wait : float;
  runtime : float;
  procs : int;
  cpu_used : float;
  mem_used : float;
  req_procs : int;
  req_time : float;
  req_mem : float;
  status : int;
  user : int;
  group : int;
  executable : int;
  queue : int;
  partition : int;
  prec_job : int;
  think_time : float;
}

type t = { directives : (string * string) list; jobs : job array }

let fail_at line msg = failwith (Printf.sprintf "Swf: line %d: %s" line msg)

(* The 18 SWF fields, in order, named for error messages. *)
let field_names =
  [|
    "job number"; "submit time"; "wait time"; "run time";
    "allocated processors"; "average cpu time"; "used memory";
    "requested processors"; "requested time"; "requested memory"; "status";
    "user id"; "group id"; "executable"; "queue"; "partition";
    "preceding job"; "think time";
  |]

let split_fields line =
  (* Archive traces mix spaces and tabs, often with column alignment. *)
  String.split_on_char ' ' (String.map (function '\t' -> ' ' | c -> c) line)
  |> List.filter (fun s -> s <> "")

let parse_float ~lineno ~field s =
  match float_of_string_opt s with
  | Some v -> v
  | None ->
      fail_at lineno
        (Printf.sprintf "field %d (%s): expected a number, got %S" (field + 1)
           field_names.(field) s)

let parse_int_field ~lineno ~field s =
  match int_of_string_opt s with
  | Some v -> v
  | None ->
      (* Converted traces sometimes write integral fields as "12.0". *)
      let f = parse_float ~lineno ~field s in
      if Float.is_integer f then int_of_float f
      else
        fail_at lineno
          (Printf.sprintf "field %d (%s): expected an integer, got %S"
             (field + 1) field_names.(field) s)

let parse_line ~lineno line =
  let trimmed = String.trim line in
  if trimmed = "" || trimmed.[0] = ';' then None
  else
    let fields = Array.of_list (split_fields trimmed) in
    let got = Array.length fields in
    if got <> 18 then
      fail_at lineno (Printf.sprintf "expected 18 fields, got %d" got);
    let fl k = parse_float ~lineno ~field:k fields.(k) in
    let it k = parse_int_field ~lineno ~field:k fields.(k) in
    Some
      {
        id = it 0;
        submit = fl 1;
        wait = fl 2;
        runtime = fl 3;
        procs = it 4;
        cpu_used = fl 5;
        mem_used = fl 6;
        req_procs = it 7;
        req_time = fl 8;
        req_mem = fl 9;
        status = it 10;
        user = it 11;
        group = it 12;
        executable = it 13;
        queue = it 14;
        partition = it 15;
        prec_job = it 16;
        think_time = fl 17;
      }

(* [; Key: value] -> Some (key, value); plain comments -> None. *)
let parse_directive line =
  let trimmed = String.trim line in
  if String.length trimmed < 2 || trimmed.[0] <> ';' then None
  else
    let body = String.trim (String.sub trimmed 1 (String.length trimmed - 1)) in
    match String.index_opt body ':' with
    | Some i when i > 0 ->
        let key = String.trim (String.sub body 0 i) in
        let value =
          String.trim (String.sub body (i + 1) (String.length body - i - 1))
        in
        if key <> "" && String.for_all (fun c -> c <> ' ') key then
          Some (key, value)
        else None
    | _ -> None

let fold ~next_line ~init ~f =
  let rec go acc lineno =
    match next_line () with
    | None -> acc
    | Some line ->
        let acc =
          match parse_line ~lineno line with
          | Some job -> f acc job
          | None -> acc
        in
        go acc (lineno + 1)
  in
  go init 1

(* Full parse: one streaming pass collecting directives and jobs. *)
let of_lines next_line =
  let directives = ref [] and jobs = ref [] in
  let lineno = ref 0 in
  let wrapped () =
    match next_line () with
    | None -> None
    | Some line ->
        incr lineno;
        (match parse_directive line with
        | Some d -> directives := d :: !directives
        | None -> ());
        Some line
  in
  fold ~next_line:wrapped ~init:() ~f:(fun () job -> jobs := job :: !jobs);
  {
    directives = List.rev !directives;
    jobs = Array.of_list (List.rev !jobs);
  }

let of_string text =
  let lines = ref (String.split_on_char '\n' text) in
  (* A trailing newline yields one final empty pseudo-line; harmless. *)
  of_lines (fun () ->
      match !lines with
      | [] -> None
      | l :: rest ->
          lines := rest;
          Some l)

let load_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_lines (fun () -> In_channel.input_line ic))

let fmt_num v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let job_to_line j =
  String.concat " "
    [
      string_of_int j.id; fmt_num j.submit; fmt_num j.wait; fmt_num j.runtime;
      string_of_int j.procs; fmt_num j.cpu_used; fmt_num j.mem_used;
      string_of_int j.req_procs; fmt_num j.req_time; fmt_num j.req_mem;
      string_of_int j.status; string_of_int j.user; string_of_int j.group;
      string_of_int j.executable; string_of_int j.queue;
      string_of_int j.partition; string_of_int j.prec_job;
      fmt_num j.think_time;
    ]

let to_string t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "; %s: %s\n" k v))
    t.directives;
  Array.iter
    (fun j ->
      Buffer.add_string buf (job_to_line j);
      Buffer.add_char buf '\n')
    t.jobs;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Trace statistics. *)

type stats = {
  n_jobs : int;
  n_users : int;
  span : float;
  max_procs : int;
  mean_procs : float;
  mean_runtime : float;
  max_runtime : float;
}

let known_procs j = if j.procs > 0 then j.procs else max j.req_procs 1

let stats t =
  let n = Array.length t.jobs in
  if n = 0 then invalid_arg "Swf.stats: empty trace";
  let users = Hashtbl.create 64 in
  let sum_procs = ref 0 and max_procs = ref 0 in
  let sum_rt = ref 0.0 and n_rt = ref 0 and max_rt = ref 0.0 in
  let first = ref t.jobs.(0).submit and last = ref t.jobs.(0).submit in
  Array.iter
    (fun j ->
      Hashtbl.replace users j.user ();
      let p = known_procs j in
      sum_procs := !sum_procs + p;
      if p > !max_procs then max_procs := p;
      if j.runtime >= 0.0 then begin
        sum_rt := !sum_rt +. j.runtime;
        incr n_rt;
        if j.runtime > !max_rt then max_rt := j.runtime
      end;
      if j.submit < !first then first := j.submit;
      if j.submit > !last then last := j.submit)
    t.jobs;
  {
    n_jobs = n;
    n_users = Hashtbl.length users;
    span = !last -. !first;
    max_procs = !max_procs;
    mean_procs = float_of_int !sum_procs /. float_of_int n;
    mean_runtime =
      (if !n_rt > 0 then !sum_rt /. float_of_int !n_rt else 0.0);
    max_runtime = !max_rt;
  }

(* ------------------------------------------------------------------ *)
(* Mapping onto SUU instances. *)

type mapping = { m : int; max_width : int; seed : int; runtime_ref : float }

let default_mapping = { m = 4; max_width = 12; seed = 0; runtime_ref = 0.0 }

(* Independent per-purpose RNGs, each seeded by mixing the master seed
   with a tag and the job id: mapping one job never depends on how
   many drew before it, so a partial replay maps jobs identically to a
   full one. *)
let derived_rng ~seed ~tag ~salt =
  Rng.create ~seed:((seed * 0x3779_6A35) lxor (tag * 0x9E37) lxor salt)

let calibrate mapping t =
  if mapping.m <= 0 then invalid_arg "Swf.calibrate: m must be positive";
  ignore t;
  let rng = derived_rng ~seed:mapping.seed ~tag:1 ~salt:0 in
  Array.init mapping.m (fun _ -> Rng.range rng ~lo:0.3 ~hi:2.0)

(* ease_j in (0, ~1.6]: runtime_ref maps to 1; each e-fold of runtime
   beyond it shaves the exponent, pushing q_ij = 0.6^(speed*ease)
   toward 1 — longer recorded runtimes mean more failure mass on every
   machine, hence more repetitions for the SUU policies to cover. *)
let ease ~runtime_ref ~runtime =
  let rt = Float.max runtime 1.0 in
  let r = Float.max runtime_ref 1.0 in
  1.0 /. (1.0 +. (0.35 *. log (1.0 +. (rt /. r))))

let width mapping j = max 1 (min (known_procs j) mapping.max_width)

let instance_of_job mapping ~speeds ~chain_user j =
  if Array.length speeds <> mapping.m then
    invalid_arg "Swf.instance_of_job: speeds/m mismatch";
  let n = width mapping j in
  let runtime_ref =
    if mapping.runtime_ref > 0.0 then mapping.runtime_ref else 3600.0
  in
  let e = ease ~runtime_ref ~runtime:j.runtime in
  let rng = derived_rng ~seed:mapping.seed ~tag:2 ~salt:j.id in
  let q =
    Array.init mapping.m (fun i ->
        Array.init n (fun _ ->
            (* Product-model mass around the calibrated center, jittered
               per sub-job so the matrix is not rank one. *)
            let jitter = Rng.range rng ~lo:0.85 ~hi:1.15 in
            let v = Float.pow 0.6 (speeds.(i) *. e *. jitter) in
            Float.min v 0.995))
  in
  let template, edges =
    if n = 1 then ("ind", [])
    else if chain_user then
      ("chain", List.init (n - 1) (fun k -> (k, k + 1)))
    else
      (* MapReduce fan-in: sub-jobs 0..n-2 all feed the final job. *)
      ("mapred", List.init (n - 1) (fun k -> (k, n - 1)))
  in
  let name =
    Printf.sprintf "swf-j%d-u%d-%s-n%d-m%d-s%d" j.id j.user template n
      mapping.m mapping.seed
  in
  Instance.make ~name ~dag:(Dag.of_edges ~n edges) q

(* A user is "sequential" when their mean allocated width over the
   trace stays at or below the all-user median width: such users
   submit chain-structured instances, wide users mapreduce fan-ins. *)
let chain_users t =
  let sums = Hashtbl.create 64 in
  Array.iter
    (fun j ->
      let s, c =
        match Hashtbl.find_opt sums j.user with
        | Some (s, c) -> (s, c)
        | None -> (0, 0)
      in
      Hashtbl.replace sums j.user (s + known_procs j, c + 1))
    t.jobs;
  let means =
    Hashtbl.fold
      (fun user (s, c) acc ->
        (user, float_of_int s /. float_of_int c) :: acc)
      sums []
  in
  let widths = Array.of_list (List.map snd means) in
  Array.sort Float.compare widths;
  let median =
    let k = Array.length widths in
    if k = 0 then 1.0 else widths.((k - 1) / 2)
  in
  let chains = Hashtbl.create 64 in
  List.iter
    (fun (user, mean) -> Hashtbl.replace chains user (mean <= median))
    means;
  chains

let instances ?(mapping = default_mapping) t =
  let mapping =
    if mapping.runtime_ref > 0.0 then mapping
    else
      { mapping with
        runtime_ref =
          (if Array.length t.jobs = 0 then 3600.0
           else Float.max (stats t).mean_runtime 1.0) }
  in
  let speeds = calibrate mapping t in
  let chains = chain_users t in
  Array.map
    (fun j ->
      let chain_user =
        match Hashtbl.find_opt chains j.user with
        | Some b -> b
        | None -> true
      in
      (j, instance_of_job mapping ~speeds ~chain_user j))
    t.jobs

let arrival_times t =
  let n = Array.length t.jobs in
  if n = 0 then [||]
  else begin
    let t0 = t.jobs.(0).submit in
    let out = Array.make n 0.0 in
    let prev = ref 0.0 in
    Array.iteri
      (fun k j ->
        let at = Float.max (j.submit -. t0) !prev in
        out.(k) <- at;
        prev := at)
      t.jobs;
    out
  end
