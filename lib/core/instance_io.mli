(** Plain-text (de)serialization of SUU instances.

    A small line-oriented format so instances can be saved from one tool
    run and replayed in another (see the [suu] CLI's [--save]/[--load]):

    {v
    suu-instance v1
    name <one-line name>
    machines <m>
    jobs <n>
    q
    <m lines of n failure probabilities>
    edges <count>
    <pred> <succ>        (one line per precedence edge)
    end
    v}

    Floats are printed with full round-trip precision ([%.17g]). *)

val to_string : Instance.t -> string

val of_string : string -> Instance.t
(** Raises [Failure] with a line-numbered message on malformed input, or
    [Invalid_argument] if the parsed data violates instance invariants
    (via {!Instance.make} / {!Suu_dag.Dag.of_edges}). *)

val save_file : string -> Instance.t -> unit
(** Crash-safe: the serialization is written to a tempfile in the
    destination directory, fsync'd, and renamed over [path] — a crash
    mid-save leaves the previous contents (or no file), never a
    truncated one.  Raises [Unix.Unix_error] or [Sys_error] on I/O
    failure. *)

val load_file : string -> Instance.t
