(** The paper's (LP1) relaxation (Section 3).

    For a job subset [J'] and log-mass target [L]:

    {v
      minimize   t
      subject to sum_i l'_ij x_ij >= L   for j in J'     (coverage)
                 sum_j x_ij       <= t   for every i      (load)
                 x_ij >= 0
    v}

    with clipped coefficients [l'_ij = min(l_ij, L)] — clipping loses
    nothing for integral solutions (Lemma 2) and bounds the LP's width.
    The integrality constraint of the original integer program is dropped
    here and recovered by {!Rounding}. *)

type frac = {
  x : float array array;  (** fractional assignment, [m x n] *)
  value : float;  (** the optimal (or near-optimal) load [t] *)
  basis : int array option;
      (** for {!Solver_choice.Revised} only: the optimal basis, opaque
          to callers, to pass back as [?basis] when re-solving with a
          scaled target (the doubling sequence).  [None] for the other
          backends and for non-warm-startable optima. *)
}

val solve :
  ?solver:Solver_choice.t ->
  ?basis:int array ->
  ?mwu_gap_limit:float ->
  Instance.t ->
  jobs:int array ->
  target:float ->
  frac
(** [solve inst ~jobs ~target] solves the relaxation restricted to [jobs].
    Entries of [x] outside [jobs] are zero.

    [basis] (meaningful with [~solver:Revised]) warm-starts the revised
    simplex from a basis returned by a previous solve over the {e same}
    [jobs] set — e.g. the previous round of a doubling sequence.  A
    basis that no longer fits is discarded and the solve runs cold, so
    warm starting never changes the result, only its cost.

    With [~solver:(Mwu eps)] each solution is verified against its own
    weak-duality certificate: accepted when
    [value / lower_bound <= mwu_gap_limit] (default
    {!Solver_choice.guarantee}); on a failed certificate — or an
    instance so small the dense simplex is cheaper
    ([m * |jobs| <= 16]) — the exact simplex result is returned
    instead.  The outcome is counted in the obs registry
    ([lp1.mwu.certified], [lp1.mwu.fallback.cert],
    [lp1.mwu.fallback.tiny]).  [mwu_gap_limit] exists so tests can
    force the fallback; production callers leave it unset.

    Raises [Invalid_argument] on an empty [jobs] array, a non-positive
    [target], or duplicate jobs; [Failure] if the LP solver fails
    (cannot happen on well-formed instances: assigning every machine to
    every job long enough is always feasible). *)
