let to_string inst =
  let m = Instance.m inst and n = Instance.n inst in
  let buf = Buffer.create (64 + (m * n * 12)) in
  Buffer.add_string buf "suu-instance v1\n";
  Buffer.add_string buf ("name " ^ Instance.name inst ^ "\n");
  Buffer.add_string buf (Printf.sprintf "machines %d\n" m);
  Buffer.add_string buf (Printf.sprintf "jobs %d\n" n);
  Buffer.add_string buf "q\n";
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      if j > 0 then Buffer.add_char buf ' ';
      Buffer.add_string buf (Printf.sprintf "%.17g" (Instance.q inst i j))
    done;
    Buffer.add_char buf '\n'
  done;
  let edges = Suu_dag.Dag.edges (Instance.dag inst) in
  Buffer.add_string buf (Printf.sprintf "edges %d\n" (List.length edges));
  List.iter
    (fun (a, b) -> Buffer.add_string buf (Printf.sprintf "%d %d\n" a b))
    edges;
  Buffer.add_string buf "end\n";
  Buffer.contents buf

(* A tiny line cursor with located error messages. *)
type cursor = { lines : string array; mutable pos : int }

let fail_at line msg =
  failwith (Printf.sprintf "Instance_io: line %d: %s" line msg)

(* [next] advances [pos] past the line it returns, so when a caller
   rejects that line the 1-based offender is [pos] itself. *)
let fail cur msg = fail_at cur.pos msg

let next cur =
  if cur.pos >= Array.length cur.lines then
    fail_at (cur.pos + 1) "unexpected end of input";
  let l = String.trim cur.lines.(cur.pos) in
  cur.pos <- cur.pos + 1;
  l

let expect_prefix cur prefix =
  let l = next cur in
  if not (String.length l >= String.length prefix
          && String.sub l 0 (String.length prefix) = prefix)
  then fail cur (Printf.sprintf "expected %S" prefix);
  String.trim
    (String.sub l (String.length prefix)
       (String.length l - String.length prefix))

let parse_int cur s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail cur (Printf.sprintf "expected an integer, got %S" s)

let of_string text =
  let cur = { lines = Array.of_list (String.split_on_char '\n' text); pos = 0 } in
  let header = next cur in
  if header <> "suu-instance v1" then
    failwith "Instance_io: not a suu-instance v1 file";
  let name = expect_prefix cur "name" in
  let m = parse_int cur (expect_prefix cur "machines") in
  let n = parse_int cur (expect_prefix cur "jobs") in
  if m <= 0 || n <= 0 then failwith "Instance_io: non-positive dimensions";
  let (_ : string) = expect_prefix cur "q" in
  let q =
    Array.init m (fun _ ->
        let row = next cur in
        let cells =
          String.split_on_char ' ' row |> List.filter (fun s -> s <> "")
        in
        if List.length cells <> n then fail cur "wrong number of q entries";
        Array.of_list
          (List.map
             (fun s ->
               match float_of_string_opt s with
               | Some v -> v
               | None -> fail cur (Printf.sprintf "bad float %S" s))
             cells))
  in
  let k = parse_int cur (expect_prefix cur "edges") in
  if k < 0 then failwith "Instance_io: negative edge count";
  let edges =
    List.init k (fun _ ->
        let l = next cur in
        match String.split_on_char ' ' l |> List.filter (fun s -> s <> "") with
        | [ a; b ] -> (parse_int cur a, parse_int cur b)
        | _ -> fail cur "expected two node indices")
  in
  let final = next cur in
  if final <> "end" then failwith "Instance_io: missing trailing 'end'";
  Instance.make ~name ~dag:(Suu_dag.Dag.of_edges ~n edges) q

(* Crash-safe save: write to a tempfile in the destination directory
   (rename is atomic only within one filesystem), fsync, then rename
   over the target and fsync the directory.  An interruption at any
   point leaves either the previous file or the complete new one —
   never a truncated hybrid — plus at worst an orphaned [.TARGET.tmp.PID]
   to sweep up. *)
let save_file path inst =
  let dir = Filename.dirname path in
  let tmp =
    Filename.concat dir
      (Printf.sprintf ".%s.tmp.%d" (Filename.basename path) (Unix.getpid ()))
  in
  let write () =
    let fd =
      Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
    in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let s = to_string inst in
        let n = String.length s in
        let off = ref 0 in
        while !off < n do
          off := !off + Unix.write_substring fd s !off (n - !off)
        done;
        Unix.fsync fd)
  in
  (try
     write ();
     Unix.rename tmp path
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  (* Make the rename itself durable; filesystems that refuse directory
     fsync just give a weaker guarantee. *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | dfd ->
      (try Unix.fsync dfd with Unix.Unix_error _ -> ());
      Unix.close dfd
  | exception Unix.Unix_error _ -> ()

let load_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
