let active_jobs ~remaining ~eligible =
  let acc = ref [] in
  for j = Array.length remaining - 1 downto 0 do
    if remaining.(j) && eligible.(j) then acc := j :: !acc
  done;
  !acc

let greedy_completion inst =
  let m = Instance.m inst in
  let n = Instance.n inst in
  (* Scratch lives in the stepper, not the policy value: steppers from
     one policy may run concurrently on different domains. *)
  Policy.make ~name:"greedy" ~fresh:(fun _rng ->
      let survival = Array.make n 1.0 in
      let buf = Array.make m (-1) in
      fun ~time:_ ~remaining ~eligible ->
        let active = active_jobs ~remaining ~eligible in
        List.iter (fun j -> survival.(j) <- 1.0) active;
        for i = 0 to m - 1 do
          let best = ref (-1) and best_gain = ref 0.0 in
          List.iter
            (fun j ->
              let gain = survival.(j) *. (1.0 -. Instance.q inst i j) in
              if gain > !best_gain then begin
                best_gain := gain;
                best := j
              end)
            active;
          buf.(i) <- !best;
          if !best >= 0 then
            survival.(!best) <- survival.(!best) *. Instance.q inst i !best
        done;
        buf)

let round_robin inst =
  let m = Instance.m inst in
  Policy.make ~name:"round-robin" ~fresh:(fun _rng ->
      let buf = Array.make m (-1) in
      fun ~time ~remaining ~eligible ->
        let active = Array.of_list (active_jobs ~remaining ~eligible) in
        let e = Array.length active in
        for i = 0 to m - 1 do
          buf.(i) <- (if e = 0 then -1 else active.((time + i) mod e))
        done;
        buf)

let serial inst =
  let m = Instance.m inst in
  let idle = Array.make m (-1) in
  Policy.make ~name:"serial" ~fresh:(fun _rng ->
      fun ~time:_ ~remaining ~eligible ->
        match active_jobs ~remaining ~eligible with
        | [] -> idle
        | j :: _ -> Array.make m j)

(* Greedy coverage with a per-machine budget of [t] steps: feed the
   neediest job with the strongest remaining machine step until every job
   reaches [target] clipped mass, or budgets run dry. *)
let greedy_fill inst ~target ~t =
  let m = Instance.m inst and n = Instance.n inst in
  let x = Array.make_matrix m n 0 in
  let mass = Array.make n 0.0 in
  let budget = Array.make m t in
  let ell i j = Instance.clipped_log_failure inst ~target i j in
  let exhausted = ref false in
  let all_covered () =
    Array.for_all (fun v -> v >= target -. 1e-12) mass
  in
  while (not (all_covered ())) && not !exhausted do
    (* neediest uncovered job *)
    let j = ref (-1) in
    for j' = n - 1 downto 0 do
      if mass.(j') < target -. 1e-12
         && (!j = -1 || mass.(j') < mass.(!j))
      then j := j'
    done;
    let i = ref (-1) in
    for i' = 0 to m - 1 do
      if budget.(i') > 0 && ell i' !j > 0.0
         && (!i = -1 || ell i' !j > ell !i !j)
      then i := i'
    done;
    if !i = -1 then exhausted := true
    else begin
      x.(!i).(!j) <- x.(!i).(!j) + 1;
      budget.(!i) <- budget.(!i) - 1;
      mass.(!j) <- mass.(!j) +. ell !i !j
    end
  done;
  if !exhausted then None else Some (Assignment.make x)

let greedy_oblivious_assignment ?(target = 0.5) inst =
  let rec search t =
    match greedy_fill inst ~target ~t with
    | Some a -> a
    | None -> search (2 * t)
  in
  search 1

let greedy_oblivious ?target inst =
  let plan =
    Oblivious.of_assignment (greedy_oblivious_assignment ?target inst)
  in
  let h = Oblivious.horizon plan in
  Policy.make ~name:"greedy-oblivious" ~fresh:(fun _rng ->
      fun ~time ~remaining:_ ~eligible:_ ->
        Oblivious.assignment_at plan (time mod h))
