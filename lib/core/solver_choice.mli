(** Choice of fractional-LP backend for the (LP1)-shaped relaxations. *)

type t =
  | Simplex  (** exact dense two-phase simplex ({!Suu_lp.Simplex}) *)
  | Mwu of float
      (** Garg–Könemann multiplicative weights with the given [eps]
          ({!Suu_lp.Mwu}); value within [1 + O(eps)] of optimal.  Use for
          large instances where the dense tableau would be slow. *)

val default : t
(** [Simplex]. *)

val guarantee : t -> float
(** [guarantee s] is an upper bound on [value / optimum] for solutions
    produced by [s]: [1.0] for the simplex, [1 + 5 eps] for MWU (the
    constant is validated against the simplex in the test suite). *)

val name : t -> string
(** Short label for telemetry: ["simplex"], ["mwu-0.1"], ... *)
