(** Choice of fractional-LP backend for the (LP1)-shaped relaxations. *)

type t =
  | Simplex  (** exact dense two-phase simplex ({!Suu_lp.Simplex}) *)
  | Revised
      (** exact revised simplex ({!Suu_lp.Revised_simplex}) with
          warm-started restarts: across a doubling sequence the optimal
          basis of round [k] seeds round [k+1] (see {!Plan_cache}),
          skipping phase 1 when the basis survives the target change. *)
  | Mwu of float
      (** Garg–Könemann multiplicative weights with the given [eps]
          ({!Suu_lp.Mwu}); value within [1 + O(eps)] of optimal, and
          every solution carries a weak-duality certificate that {!Lp1}
          checks before trusting it (falling back to the simplex when
          the certified gap exceeds {!guarantee}).  Use for large
          instances where the dense tableau would be slow. *)

val default : t
(** [Simplex] — the exact backend, for offline experiments and as the
    reference the others are validated against. *)

val serve_default : t
(** [Mwu 0.1] — what a server uses when no solver is configured: the
    cheap certified backend, with automatic simplex fallback for tiny
    instances and failed certificates. *)

val guarantee : t -> float
(** [guarantee s] is an upper bound on [value / optimum] for solutions
    produced by [s]: [1.0] for both simplex backends, [1 + 5 eps] for
    MWU.  For MWU the bound is enforced per solve: {!Lp1} accepts an
    MWU solution only when its certified duality gap is within this
    constant (and debug-asserts the comparison), so a future MWU change
    cannot silently degrade the ratio. *)

val name : t -> string
(** Short label for telemetry: ["simplex"], ["revised"], ["mwu-0.1"], ... *)

val to_string : t -> string
(** Alias of {!name}; inverse of {!of_string} for every [t]. *)

val of_string : string -> (t, string) result
(** Parse a wire/CLI spelling: ["simplex"], ["revised"], ["mwu"]
    (meaning {!serve_default}) or ["mwu-EPS"] with [EPS] in (0, 0.5].
    [Error] carries a human-readable message. *)
