(** One registry for every scheduling policy the system can serve.

    Policy dispatch used to be string matching repeated across the
    server ([Service]), the CLI, and the bench harness, each with its
    own spelling of the shape checks and its own error message.  The
    registry centralizes name → constructor + metadata: the server, the
    CLI's [policies_for], the bench tables and the docs all read the
    same table, and an unknown name produces one located, exhaustive
    error everywhere.

    The core (LP/paper) policies are registered at module
    initialization.  Out-of-tree families — [Suu_sched]'s online
    policies — call {!register} from an explicit [ensure] hook (module
    initializers of unreferenced units are dropped by the linker, so
    side-effect registration alone is not reliable; see
    [Suu_sched.Register]).

    Thread-safe: registration and lookup take one mutex; lookups after
    startup are read-mostly. *)

type shape_req =
  | Any_shape  (** applicable to every dag *)
  | Independent_only  (** requires an edgeless dag *)
  | Chains_only  (** requires disjoint chains *)
  | Forest_only  (** requires a directed forest *)

type entry = {
  name : string;  (** wire/CLI spelling, unique *)
  summary : string;  (** one-line description for [suu policies] *)
  guarantee : string;
      (** approximation guarantee as stated in the source, e.g.
          ["O(log n)"] or ["0.8531-approximate"]; ["heuristic"] when
          none is proven *)
  lp_free : bool;
      (** [true] when the policy never touches the LP pipeline or the
          plan cache — the server counts such requests as plan-cache
          bypasses rather than letting them dilute the hit rate *)
  shape : shape_req;
  build : solver:Solver_choice.t option -> Instance.t -> Policy.t;
}

val register : entry -> unit
(** [register e] adds [e] to the registry.  Raises [Invalid_argument]
    on a duplicate name. *)

val names : unit -> string list
(** Registered names, in registration order (core policies first). *)

val entries : unit -> entry list
(** All entries, in registration order. *)

val find : string -> entry option

val mem : string -> bool

val lp_free : string -> bool
(** [lp_free name] is the entry's flag, or [false] for unknown names. *)

val shape_ok : shape_req -> Suu_dag.Classify.shape -> bool

val describe_requirement : shape_req -> string
(** Human spelling of the requirement: ["independent jobs"], .... *)

val build :
  ?solver:Solver_choice.t -> string -> Instance.t ->
  (Policy.t, [ `Unknown of string | `Inapplicable of string ]) result
(** [build name inst] constructs the named policy after validating the
    instance shape.  [`Unknown] lists every registered name;
    [`Inapplicable] names the requirement and the instance's actual
    shape. *)

val applicable : Instance.t -> string list
(** Names whose shape requirement the instance satisfies, in
    registration order. *)
