type frac = { x : float array array; d : float array; value : float }

(* Per job, the machines allowed by the optional top-machines restriction:
   the [k] machines with smallest failure probability. *)
let allowed_machines inst ~top_machines j =
  let m = Instance.m inst in
  let all =
    List.filter
      (fun i -> Instance.clipped_log_failure inst ~target:1.0 i j > 0.0)
      (List.init m (fun i -> i))
  in
  match top_machines with
  | None -> all
  | Some k ->
      let sorted =
        List.sort
          (fun a b -> compare (Instance.q inst a j) (Instance.q inst b j))
          all
      in
      List.filteri (fun idx _ -> idx < k) sorted

let solve_impl ?top_machines ~solver inst ~chains =
  let m = Instance.m inst in
  let n = Instance.n inst in
  let covered = Array.make n false in
  List.iter
    (fun chain ->
      Array.iter
        (fun j ->
          if j < 0 || j >= n then invalid_arg "Lp2.solve: job out of range";
          if covered.(j) then invalid_arg "Lp2.solve: duplicate job";
          covered.(j) <- true)
        chain)
    chains;
  let jobs =
    Array.of_list (List.filter (fun j -> covered.(j)) (List.init n Fun.id))
  in
  if Array.length jobs = 0 then invalid_arg "Lp2.solve: no jobs";
  let p = Suu_lp.Problem.create ~name:"lp2" () in
  let t_var = Suu_lp.Problem.add_var ~obj:1.0 p in
  let xvar = Hashtbl.create (m * Array.length jobs) in
  let dvar = Array.make n (-1) in
  Array.iter
    (fun j ->
      dvar.(j) <- Suu_lp.Problem.add_var p;
      List.iter
        (fun i -> Hashtbl.add xvar (i, j) (Suu_lp.Problem.add_var p))
        (allowed_machines inst ~top_machines j))
    jobs;
  (* (4) coverage with clipped coefficients. *)
  Array.iter
    (fun j ->
      let terms =
        Hashtbl.fold
          (fun (i, j') v acc ->
            if j' = j then
              (v, Instance.clipped_log_failure inst ~target:1.0 i j) :: acc
            else acc)
          xvar []
      in
      Suu_lp.Problem.add_constraint p terms Suu_lp.Problem.Ge 1.0)
    jobs;
  (* (5) machine loads. *)
  for i = 0 to m - 1 do
    let terms =
      Hashtbl.fold
        (fun (i', _) v acc -> if i' = i then (v, 1.0) :: acc else acc)
        xvar []
    in
    Suu_lp.Problem.add_constraint p ((t_var, -1.0) :: terms)
      Suu_lp.Problem.Le 0.0
  done;
  (* (6) chain lengths. *)
  List.iter
    (fun chain ->
      let terms =
        Array.to_list (Array.map (fun j -> (dvar.(j), 1.0)) chain)
      in
      Suu_lp.Problem.add_constraint p ((t_var, -1.0) :: terms)
        Suu_lp.Problem.Le 0.0)
    chains;
  (* (7) x_ij <= d_j and (8) d_j >= 1. *)
  Hashtbl.iter
    (fun (_, j) v ->
      Suu_lp.Problem.add_constraint p
        [ (v, 1.0); (dvar.(j), -1.0) ]
        Suu_lp.Problem.Le 0.0)
    xvar;
  Array.iter
    (fun j ->
      Suu_lp.Problem.add_constraint p [ (dvar.(j), 1.0) ] Suu_lp.Problem.Ge
        1.0)
    jobs;
  (* (LP2) has chain-length and coupling rows (LP1 does not), so it is
     not a min-load cover: MWU does not apply and maps to the dense
     default.  [Revised] routes to the revised simplex — same exact
     optimum, independent pivoting — chiefly so differential tests can
     drive both backends through the full (LP2) shape. *)
  let value, sol =
    match solver with
    | Solver_choice.Revised -> Suu_lp.Revised_simplex.solve_exn p
    | Solver_choice.Simplex | Solver_choice.Mwu _ ->
        Suu_lp.Simplex.solve_exn p
  in
  let x = Array.make_matrix m n 0.0 in
  Hashtbl.iter (fun (i, j) v -> x.(i).(j) <- Float.max 0.0 sol.(v)) xvar;
  let d =
    Array.init n (fun j -> if dvar.(j) >= 0 then Float.max 1.0 sol.(dvar.(j)) else 1.0)
  in
  { x; d; value }

let solve ?top_machines ?(solver = Solver_choice.default) inst ~chains =
  Suu_obs.Span.with_span
    ~attrs:[ ("solver", Solver_choice.name solver) ]
    "lp2.solve"
    (fun () -> solve_impl ?top_machines ~solver inst ~chains)

let round_impl inst frac =
  let n = Instance.n inst in
  let jobs = ref [] in
  for j = n - 1 downto 0 do
    let used = ref false in
    for i = 0 to Instance.m inst - 1 do
      if frac.x.(i).(j) > 1e-12 then used := true
    done;
    if !used then jobs := j :: !jobs
  done;
  let jobs = Array.of_list !jobs in
  Rounding.round
    ~job_cap:(fun j -> Mathx.ceil_pos (6.0 *. frac.d.(j)))
    inst ~jobs ~target:1.0 ~frac:frac.x ~frac_value:frac.value

let round inst frac =
  Suu_obs.Span.with_span "lp2.rounding" (fun () -> round_impl inst frac)
