let rounds inst =
  Mathx.rounds_k ~n:(Instance.n inst) ~m:(Instance.m inst)

type mode =
  | Rounds  (** executing the current round's oblivious plan *)
  | Repeat_last  (** m < n tail: cycle the round-K plan *)
  | Serial  (** n <= m tail: all machines on one job at a time *)

type state = {
  mutable mode : mode;
  mutable round : int;
  mutable plan : Oblivious.t option;
  mutable pos : int;
}

let policy ?solver ?jobs inst =
  let m = Instance.m inst in
  let scope =
    match jobs with
    | Some js -> Array.copy js
    | None -> Array.init (Instance.n inst) (fun j -> j)
  in
  let nscope = Array.length scope in
  if nscope = 0 then invalid_arg "Suu_i_sem.policy: empty job subset";
  let k_max = Mathx.rounds_k ~n:nscope ~m in
  let idle = Array.make m (-1) in
  (* Round plans depend only on (round, survivor set) — not the trace —
     so one cache in the policy value serves every replication (and
     every domain driving this policy concurrently). *)
  let cache = Plan_cache.create ?solver inst in
  let fresh _rng =
    let st = { mode = Rounds; round = 1; plan = None; pos = 0 } in
    let survivors remaining =
      Array.of_list (List.filter (fun j -> remaining.(j)) (Array.to_list scope))
    in
    let start_round remaining =
      let js = survivors remaining in
      if Array.length js = 0 then None
      else Some (Plan_cache.plan cache ~round:st.round ~survivors:js)
    in
    let rec step ~time ~remaining ~eligible =
      match st.mode with
      | Serial -> (
          (* One remaining scoped job at a time, all machines on it. *)
          let job = Array.find_opt (fun j -> remaining.(j)) scope in
          match job with
          | None -> idle
          | Some j -> Array.make m j)
      | Repeat_last -> (
          match st.plan with
          | None -> idle
          | Some plan ->
              let h = Oblivious.horizon plan in
              let a = Oblivious.assignment_at plan (st.pos mod h) in
              st.pos <- st.pos + 1;
              a)
      | Rounds -> (
          (match st.plan with
          | Some _ -> ()
          | None ->
              st.plan <- start_round remaining;
              st.pos <- 0);
          match st.plan with
          | None -> idle
          | Some plan ->
              if st.pos < Oblivious.horizon plan then begin
                let a = Oblivious.assignment_at plan st.pos in
                st.pos <- st.pos + 1;
                a
              end
              else if st.round < k_max then begin
                st.round <- st.round + 1;
                st.plan <- None;
                step ~time ~remaining ~eligible
              end
              else begin
                (* Tail phase after round K. *)
                if nscope <= m then st.mode <- Serial
                else begin
                  st.mode <- Repeat_last;
                  st.pos <- 0
                end;
                step ~time ~remaining ~eligible
              end)
    in
    step
  in
  Policy.make ~name:"suu-i-sem" ~fresh
