(** The paper's (LP2) relaxation for chain precedence constraints
    (Section 4).

    {v
      minimize   t
      subject to sum_i l'_ij x_ij >= 1      for every job j     (coverage)
                 sum_j x_ij       <= t      for every machine i (load)
                 sum_{j in C_k} d_j <= t    for every chain C_k (length)
                 0 <= x_ij <= d_j,  d_j >= 1
    v}

    with [l'_ij = min(l_ij, 1)].  The optimum is [O(E[T_OPT])]
    (paper Lemma 5, citing Lin–Rajaraman), and Lemma 6 rounds it within a
    constant factor while chain lengths grow by at most
    [7 sum d*_j].

    The [x <= d] coupling puts [n*m] rows in the tableau, so for larger
    sweeps [solve] can restrict each job to its [top_machines] most
    reliable machines — a *restriction*, never a relaxation, so rounded
    schedules stay valid; lower bounds for ratio reporting come from
    {!Lower_bound}, not from this LP. *)

type frac = {
  x : float array array;  (** fractional assignment, [m x n] *)
  d : float array;  (** fractional job lengths [d*_j] (1 for jobs not in
                        any chain passed) *)
  value : float;  (** optimal value [t*] *)
}

val solve :
  ?top_machines:int ->
  ?solver:Solver_choice.t ->
  Instance.t ->
  chains:Suu_dag.Chains.t ->
  frac
(** [solve inst ~chains] solves the relaxation over the jobs mentioned in
    [chains].  [solver] picks the exact backend: [Revised] uses the
    revised simplex, anything else (including [Mwu _], whose min-load
    cover shape does not fit the chain-length rows) the dense tableau —
    both exact, so the optimum is the same either way.  Raises
    [Invalid_argument] when chains repeat a job or mention one out of
    range. *)

val round : Instance.t -> frac -> Assignment.t
(** [round inst frac] applies the Lemma-6 rounding: the Lemma-2 network
    with the job→machine edge capacity lowered to [ceil(6 d*_j)].  Every
    covered job gets clipped log mass >= 1 and every machine load is
    at most [ceil(6 t_star)]. *)
