(** SUU-C: the O(log(n+m) loglog min(m,n))-approximation for disjoint
    chains (paper Section 4).

    Construction, following the paper:

    + Solve (LP2) and round it (Lemma 6) into an integral assignment
      [{x_ij}] with unit log mass per job, load and chain lengths
      [O(E[T_OPT])]; job lengths are [d_j = max_i x_ij].
    + A job is {e long} when [d_j] exceeds
      [gamma = t_LP2 / log2(n + m)]; long jobs become {e pauses} of
      [gamma] supersteps in their chain.
    + Each chain runs an adaptive block schedule: its current short job
      [j] occupies [d_j] supersteps, machine [i] serving the first
      [x_ij] of them; a failed block repeats.
    + All chains run "in parallel" as a pseudoschedule of supersteps; the
      start of chain [k] is delayed by a uniform draw from [{0..H}]
      ([H] = the assignment's load), which caps the congestion at
      [O(log(n+m) / loglog(n+m))] w.h.p. (Theorem 7).  Each superstep is
      flattened into [c(s)] real timesteps, machines serving their
      requesting jobs one per step.
    + Every [gamma] supersteps a segment ends: the chains suspend and one
      SUU-I-SEM execution completes all long jobs whose pauses have
      started, then the chains resume.  (The paper schedules the SEM run
      for pauses starting in the segment just ended; completing every
      started-and-pending pause is the same work, stated without segment
      bookkeeping.) *)

type stats = {
  mutable supersteps : int;
  mutable max_congestion : int;
  mutable total_congestion : int;
      (** sum over supersteps of that superstep's flattened length *)
  mutable sem_invocations : int;
  mutable sem_steps : int;  (** timesteps spent inside long-job SEM runs *)
}

val new_stats : unit -> stats

type prepared = {
  assignment : Assignment.t;  (** the Lemma-6-rounded assignment *)
  lp_value : float;  (** t*_LP2 *)
  gamma : int;  (** pause/segment length, >= 1 *)
  load : int;  (** H: max machine load over short jobs, >= 1 *)
  long_jobs : int list;  (** jobs with d_j > gamma *)
  chains : Suu_dag.Chains.t;
}

val prepare :
  ?top_machines:int ->
  ?solver:Solver_choice.t ->
  Instance.t ->
  chains:Suu_dag.Chains.t ->
  prepared
(** [prepare inst ~chains] runs the LP and rounding stages (once;
    deterministic).  [solver] selects the (LP2) backend (see
    {!Lp2.solve}). *)

val policy_of_prepared :
  ?solver:Solver_choice.t ->
  ?stats:stats ->
  ?random_delays:bool ->
  ?delay_granularity:int ->
  Instance.t ->
  prepared ->
  Policy.t
(** [policy_of_prepared inst prep] builds the adaptive schedule.
    [random_delays] (default true) disables the Theorem-7 delays when
    false — used by the E7 ablation to show the congestion they remove.
    [solver] selects the LP1 backend of the inner SUU-I-SEM runs.
    [stats], when given, accumulates superstep/congestion counters across
    executions.  [delay_granularity] (default 1) draws the random delays
    from multiples of that many supersteps — the effect of the paper's
    "nonpolynomial t_LP2" coarsening trick (Section 4), which thins the
    delay lattice to polynomially many values while preserving
    Theorem 7's congestion bound up to constants. *)

val policy :
  ?solver:Solver_choice.t ->
  ?top_machines:int ->
  ?stats:stats ->
  ?random_delays:bool ->
  ?delay_granularity:int ->
  Instance.t ->
  Policy.t
(** [policy inst] reads the chains off the instance's dag.  Raises
    [Invalid_argument] when the dag is not a disjoint-chain collection. *)
