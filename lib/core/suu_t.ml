let blocks inst =
  match Suu_dag.Forest.decompose (Instance.dag inst) with
  | Some blocks -> blocks
  | None -> invalid_arg "Suu_t.policy: precedence dag is not a forest"

let policy ?solver ?top_machines inst =
  let stage_chains = blocks inst in
  let stages =
    Array.map
      (fun chains ->
        let prep = Suu_c.prepare ?top_machines ?solver inst ~chains in
        (chains, Suu_c.policy_of_prepared ?solver inst prep))
      stage_chains
  in
  let m = Instance.m inst in
  let idle = Array.make m (-1) in
  let fresh rng =
    let stage = ref 0 in
    let stepper = ref None in
    let block_done remaining chains =
      List.for_all
        (fun chain -> Array.for_all (fun j -> not remaining.(j)) chain)
        chains
    in
    let rec step ~time ~remaining ~eligible =
      if !stage >= Array.length stages then idle
      else begin
        let chains, pol = stages.(!stage) in
        if block_done remaining chains then begin
          stage := !stage + 1;
          stepper := None;
          step ~time ~remaining ~eligible
        end
        else begin
          let s =
            match !stepper with
            | Some s -> s
            | None ->
                let s = Policy.fresh pol rng in
                stepper := Some s;
                s
          in
          s ~time ~remaining ~eligible
        end
      end
    in
    step
  in
  Policy.make ~name:"suu-t" ~fresh
