(* The single LP1(J, 1/2) plan is round 1 of the shared pipeline
   (L_1 = 1/2), computed once per policy value — the plan is oblivious,
   so every replication replays the same schedule. *)
let plan ?solver inst =
  let jobs = Array.init (Instance.n inst) (fun j -> j) in
  Plan_cache.fresh_plan ?solver inst ~round:1 ~survivors:jobs

let policy ?solver inst =
  let schedule = plan ?solver inst in
  let h = Oblivious.horizon schedule in
  Policy.make ~name:"suu-i-obl" ~fresh:(fun _rng ->
      fun ~time ~remaining:_ ~eligible:_ ->
        Oblivious.assignment_at schedule (time mod h))
