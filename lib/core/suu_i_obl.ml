(* The single LP1(J, 1/2) plan is round 1 of the shared pipeline
   (L_1 = 1/2), fetched through the process-global plan store — the
   same (instance, solver, round 1, all jobs) key SUU-I-SEM's first
   round uses, so whichever policy runs first pays the solve and the
   other reuses it.  The fetch is uncounted ({!Plan_cache.shared_plan}):
   policy construction must not perturb the hit/miss statistics a
   server reports (see {!Service.warm}). *)
let plan ?solver inst =
  let jobs = Array.init (Instance.n inst) (fun j -> j) in
  Plan_cache.shared_plan ?solver inst ~round:1 ~survivors:jobs

let policy ?solver inst =
  let schedule = plan ?solver inst in
  let h = Oblivious.horizon schedule in
  Policy.make ~name:"suu-i-obl" ~fresh:(fun _rng ->
      fun ~time ~remaining:_ ~eligible:_ ->
        Oblivious.assignment_at schedule (time mod h))
