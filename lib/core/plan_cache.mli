(** Memoized round plans for within-round-oblivious policies.

    The per-round plan pipeline — solve (LP1) on the survivors with
    target [L_k = 2^(k-2)], round by Lemma 2, serialize into an
    oblivious schedule — depends only on
    [(instance, solver, round, survivor set)], never on the trace or on
    which policy value asked.  Plans therefore live in one
    {e process-global} sharded store keyed by content: replications of
    one policy share plans with each other, with every other policy
    value built against an equal instance (the server rebuilds policies
    whenever its instance cache evicts), and with {!Suu_i_obl}'s
    one-plan policies via {!shared_plan}.

    A {!t} is a lightweight handle onto the store: it pins the
    instance/solver half of the key and carries this handle's own
    hit/miss counters ({!stats}), while the aggregate traffic is
    visible per shard ({!shard_stats}) and process-wide
    ({!global_stats}, also in the obs registry as
    [plan_cache.{hits,misses,evictions}] and
    [plan_cache.shardN.*]).

    Thread-safe: a mutex per shard, so policy values may be driven from
    many domains (the parallel {!Suu_sim.Runner}).  The solve for a
    missing key runs under its shard's lock — concurrent replications
    want the same plans, so serializing the solve lets the other
    domains reuse the result instead of re-deriving it.

    Each shard is bounded; when an insertion would overflow, the
    {e least-recently-used} half of the shard is dropped.  Every lookup
    (hit or miss) re-stamps its entry on the shard's logical clock, so
    hot keys — round-1 plans recur on every replication — survive
    arbitrary churn from trace-dependent survivor sets, where the old
    insertion-order clear-half evicted exactly the hottest entries.

    For [Solver_choice.Revised] handles the store also keeps the last
    optimal basis per (instance, solver, survivor set) — without the
    round — so round [k+1] of a doubling sequence warm-starts from
    round [k]'s basis (the (LP1) variable set is target-independent).
    Bases are hints: the solver re-validates them and solves cold when
    they no longer fit, so this can never change a plan. *)

type t

type stats = { hits : int; misses : int; evictions : int }
(** Monotone counters: lookups served from the table, lookups that
    solved, and entries removed by eviction. *)

val hit_rate : stats -> float
(** [hits / (hits + misses)], or [0.] before any lookup. *)

val create : ?solver:Solver_choice.t -> ?max_entries:int -> Instance.t -> t
(** A handle for [inst] onto the process-global store.  With
    [max_entries] the handle instead owns a {e private} single-shard
    store bounded to that many entries (raises [Invalid_argument] when
    not positive) — for tests that exercise eviction, and for callers
    that must not share state across policy values. *)

val plan : t -> round:int -> survivors:int array -> Oblivious.t
(** [plan t ~round ~survivors] is the round-[round] oblivious plan for
    the (ascending) survivor set, computed on first use and cached.
    Cached hits return the same physical plan (plans are immutable) —
    including hits on entries another handle inserted.  Raises
    [Invalid_argument] on an empty survivor set. *)

val shared_plan :
  ?solver:Solver_choice.t -> Instance.t -> round:int ->
  survivors:int array -> Oblivious.t
(** Like {!plan} through a throwaway handle on the global store, but
    {e uncounted}: neither hit/miss statistics nor the obs registry
    move.  For policy construction ({!Suu_i_obl} builds its single plan
    eagerly), which must share plans without perturbing the statistics
    a server's [stats] endpoint reports — warm-starting a server boots
    policies without inflating its hit rate (see {!Service.warm}). *)

val fresh_plan :
  ?solver:Solver_choice.t -> Instance.t -> round:int ->
  survivors:int array -> Oblivious.t
(** The uncached pipeline: what {!plan} computes on a miss.  Exposed so
    tests can check cached plans against freshly solved ones. *)

val stats : t -> stats
(** This handle's counters: lookups made through [t], and entries its
    insertions displaced. *)

val size : t -> int
(** Current number of cached plans in [t]'s store (for a global handle:
    the whole process-wide store). *)

val global_stats : unit -> stats
(** Counters aggregated over every handle and store since process
    start — what a resident server reports. *)

val shard_stats : unit -> stats array
(** Per-shard traffic of the process-global store, index-aligned with
    the [plan_cache.shardN.*] registry counters.  Private stores are
    not included. *)

val note_bypass : unit -> unit
(** Record one request served by an LP-free policy that never consulted
    the store ([plan_cache.bypass] in the obs registry).  Bypasses are
    deliberately {e not} part of {!stats}: they must not dilute the
    hit rate the serve gate floors at 0.8. *)

val bypasses : unit -> int
(** Process-wide bypass count since start. *)
