(** Memoized round plans for within-round-oblivious policies.

    The per-round plan pipeline — solve (LP1) on the survivors with
    target [L_k = 2^(k-2)], round by Lemma 2, serialize into an
    oblivious schedule — depends only on [(round, survivor set)], never
    on the trace.  Replications of the same instance therefore share a
    cache (one per policy value), created by the policy constructor and
    consulted by every execution's stepper.

    Thread-safe: a mutex guards the table, so one policy value may be
    driven from many domains (the parallel {!Suu_sim.Runner}).  The
    solve for a missing key runs under the lock — concurrent
    replications want the same plans, so serializing the solve lets the
    other domains reuse the result instead of re-deriving it.  The
    table is bounded ([max_entries], default 4096); when an insertion
    would exceed the bound the oldest half of the entries is evicted
    (FIFO), so a long-lived process keeps caching recent survivor sets
    instead of degrading to a solve per request. *)

type t

type stats = { hits : int; misses : int; evictions : int }
(** Monotone counters: lookups served from the table, lookups that
    solved, and entries removed by the clear-half eviction. *)

val create : ?solver:Solver_choice.t -> ?max_entries:int -> Instance.t -> t
(** A fresh, empty cache for [inst].  [max_entries] bounds the table
    (default 4096; raises [Invalid_argument] when not positive). *)

val plan : t -> round:int -> survivors:int array -> Oblivious.t
(** [plan t ~round ~survivors] is the round-[round] oblivious plan for
    the (ascending) survivor set, computed on first use and cached.
    Cached hits return the same physical plan (plans are immutable).
    Raises [Invalid_argument] on an empty survivor set. *)

val fresh_plan :
  ?solver:Solver_choice.t -> Instance.t -> round:int ->
  survivors:int array -> Oblivious.t
(** The uncached pipeline: what {!plan} computes on a miss.  Exposed so
    tests can check cached plans against freshly solved ones, and for
    one-shot users ({!Suu_i_obl} builds its single plan once). *)

val stats : t -> stats
(** This cache's counters so far. *)

val size : t -> int
(** Current number of cached plans. *)

val global_stats : unit -> stats
(** Counters aggregated over every cache created since process start —
    what a resident server reports, since each policy value owns a
    private cache. *)
