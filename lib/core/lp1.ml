type frac = { x : float array array; value : float; basis : int array option }

let validate inst ~jobs ~target =
  if Array.length jobs = 0 then invalid_arg "Lp1.solve: no jobs";
  if target <= 0.0 then invalid_arg "Lp1.solve: target must be positive";
  let n = Instance.n inst in
  let seen = Array.make n false in
  Array.iter
    (fun j ->
      if j < 0 || j >= n then invalid_arg "Lp1.solve: job out of range";
      if seen.(j) then invalid_arg "Lp1.solve: duplicate job";
      seen.(j) <- true)
    jobs

(* The (LP1) build is shared by both exact backends.  Variable set and
   constraint order depend only on (instance, jobs) — which pairs have
   positive clipped log failure is target-independent — so two targets
   of a doubling sequence standardize to the same column layout, which
   is what makes a basis from one target meaningful for the next. *)
let build_problem inst ~jobs ~target =
  let m = Instance.m inst in
  let p = Suu_lp.Problem.create ~name:"lp1" () in
  let t_var = Suu_lp.Problem.add_var ~obj:1.0 p in
  (* Variables only for pairs with positive clipped log failure. *)
  let var = Hashtbl.create (m * Array.length jobs) in
  Array.iter
    (fun j ->
      for i = 0 to m - 1 do
        if Instance.clipped_log_failure inst ~target i j > 0.0 then
          Hashtbl.add var (i, j) (Suu_lp.Problem.add_var p)
      done)
    jobs;
  Array.iter
    (fun j ->
      let terms = ref [] in
      for i = 0 to m - 1 do
        match Hashtbl.find_opt var (i, j) with
        | Some v ->
            terms :=
              (v, Instance.clipped_log_failure inst ~target i j) :: !terms
        | None -> ()
      done;
      Suu_lp.Problem.add_constraint p !terms Suu_lp.Problem.Ge target)
    jobs;
  for i = 0 to m - 1 do
    let terms = ref [ (t_var, -1.0) ] in
    Array.iter
      (fun j ->
        match Hashtbl.find_opt var (i, j) with
        | Some v -> terms := (v, 1.0) :: !terms
        | None -> ())
      jobs;
    Suu_lp.Problem.add_constraint p !terms Suu_lp.Problem.Le 0.0
  done;
  (p, var)

let extract inst var sol =
  let x = Array.make_matrix (Instance.m inst) (Instance.n inst) 0.0 in
  Hashtbl.iter (fun (i, j) v -> x.(i).(j) <- Float.max 0.0 sol.(v)) var;
  x

let solve_simplex inst ~jobs ~target =
  let p, var = build_problem inst ~jobs ~target in
  let value, sol = Suu_lp.Simplex.solve_exn p in
  { x = extract inst var sol; value; basis = None }

let solve_revised ?basis inst ~jobs ~target =
  let p, var = build_problem inst ~jobs ~target in
  match Suu_lp.Revised_simplex.solve_basis ?basis p with
  | Suu_lp.Simplex.Optimal { objective; x = sol }, out ->
      { x = extract inst var sol; value = objective; basis = out }
  | Suu_lp.Simplex.Infeasible, _ -> failwith "lp1: infeasible"
  | Suu_lp.Simplex.Unbounded, _ -> failwith "lp1: unbounded"
  | Suu_lp.Simplex.Iteration_limit, _ -> failwith "lp1: iteration limit"

(* Below this many (machine, job) cells the dense simplex is already
   microseconds-cheap and the MWU constant factors do not pay for
   themselves — and CI leans on the fallback being deterministic: a tiny
   instance served with [--solver mwu] answers byte-identically to a
   simplex server. *)
let mwu_tiny_cells = 16

let c_mwu_certified = lazy (Suu_obs.Registry.counter "lp1.mwu.certified")

let c_mwu_fallback_cert =
  lazy (Suu_obs.Registry.counter "lp1.mwu.fallback.cert")

let c_mwu_fallback_tiny =
  lazy (Suu_obs.Registry.counter "lp1.mwu.fallback.tiny")

let solve_mwu inst ~jobs ~target ~eps ~gap_limit ~guarantee =
  let m = Instance.m inst in
  let n = Instance.n inst in
  let k = Array.length jobs in
  if m * k <= mwu_tiny_cells then begin
    Suu_obs.Counter.incr (Lazy.force c_mwu_fallback_tiny);
    solve_simplex inst ~jobs ~target
  end
  else begin
    let a i jj = Instance.clipped_log_failure inst ~target i jobs.(jj) in
    let { Suu_lp.Mwu.x = xk; value; lower_bound } =
      Suu_lp.Mwu.min_load_cover ~a ~m ~n:k
        ~targets:(Array.make k target) ~eps
    in
    (* Certificate: accept the MWU solution only when weak duality
       verifies it.  [lower_bound <= optimum] holds unconditionally, so
       [value / lower_bound <= gap_limit] is a proof, not a heuristic —
       and a failed proof costs one exact solve, never a served plan
       outside the guarantee. *)
    let certified =
      lower_bound > 0.0 && value <= (gap_limit *. lower_bound) +. 1e-12
    in
    if not certified then begin
      Suu_obs.Counter.incr (Lazy.force c_mwu_fallback_cert);
      solve_simplex inst ~jobs ~target
    end
    else begin
      (* Guard for {!Solver_choice.guarantee}: unless a test narrowed or
         widened the acceptance limit, a certified solve must sit within
         the advertised [1 + 5 eps] — so the constant and the
         certificate cannot drift apart unnoticed. *)
      assert (
        gap_limit <> guarantee
        || value <= (guarantee *. lower_bound) +. 1e-12);
      Suu_obs.Counter.incr (Lazy.force c_mwu_certified);
      let x = Array.make_matrix m n 0.0 in
      for i = 0 to m - 1 do
        for jj = 0 to k - 1 do
          x.(i).(jobs.(jj)) <- xk.(i).(jj)
        done
      done;
      { x; value; basis = None }
    end
  end

let solve ?(solver = Solver_choice.default) ?basis ?mwu_gap_limit inst ~jobs
    ~target =
  validate inst ~jobs ~target;
  Suu_obs.Span.with_span
    ~attrs:[ ("solver", Solver_choice.name solver) ]
    "lp1.solve"
    (fun () ->
      match solver with
      | Solver_choice.Simplex -> solve_simplex inst ~jobs ~target
      | Solver_choice.Revised -> solve_revised ?basis inst ~jobs ~target
      | Solver_choice.Mwu eps ->
          let guarantee = Solver_choice.guarantee solver in
          let gap_limit =
            match mwu_gap_limit with Some l -> l | None -> guarantee
          in
          solve_mwu inst ~jobs ~target ~eps ~gap_limit ~guarantee)
