type frac = { x : float array array; value : float }

let validate inst ~jobs ~target =
  if Array.length jobs = 0 then invalid_arg "Lp1.solve: no jobs";
  if target <= 0.0 then invalid_arg "Lp1.solve: target must be positive";
  let n = Instance.n inst in
  let seen = Array.make n false in
  Array.iter
    (fun j ->
      if j < 0 || j >= n then invalid_arg "Lp1.solve: job out of range";
      if seen.(j) then invalid_arg "Lp1.solve: duplicate job";
      seen.(j) <- true)
    jobs

let solve_simplex inst ~jobs ~target =
  let m = Instance.m inst in
  let n = Instance.n inst in
  let p = Suu_lp.Problem.create ~name:"lp1" () in
  let t_var = Suu_lp.Problem.add_var ~obj:1.0 p in
  (* Variables only for pairs with positive clipped log failure. *)
  let var = Hashtbl.create (m * Array.length jobs) in
  Array.iter
    (fun j ->
      for i = 0 to m - 1 do
        if Instance.clipped_log_failure inst ~target i j > 0.0 then
          Hashtbl.add var (i, j) (Suu_lp.Problem.add_var p)
      done)
    jobs;
  Array.iter
    (fun j ->
      let terms = ref [] in
      for i = 0 to m - 1 do
        match Hashtbl.find_opt var (i, j) with
        | Some v ->
            terms :=
              (v, Instance.clipped_log_failure inst ~target i j) :: !terms
        | None -> ()
      done;
      Suu_lp.Problem.add_constraint p !terms Suu_lp.Problem.Ge target)
    jobs;
  for i = 0 to m - 1 do
    let terms = ref [ (t_var, -1.0) ] in
    Array.iter
      (fun j ->
        match Hashtbl.find_opt var (i, j) with
        | Some v -> terms := (v, 1.0) :: !terms
        | None -> ())
      jobs;
    Suu_lp.Problem.add_constraint p !terms Suu_lp.Problem.Le 0.0
  done;
  let value, sol = Suu_lp.Simplex.solve_exn p in
  let x = Array.make_matrix m n 0.0 in
  Hashtbl.iter (fun (i, j) v -> x.(i).(j) <- Float.max 0.0 sol.(v)) var;
  { x; value }

let solve_mwu inst ~jobs ~target ~eps =
  let m = Instance.m inst in
  let n = Instance.n inst in
  let k = Array.length jobs in
  let a i jj = Instance.clipped_log_failure inst ~target i jobs.(jj) in
  let { Suu_lp.Mwu.x = xk; value } =
    Suu_lp.Mwu.min_load_cover ~a ~m ~n:k
      ~targets:(Array.make k target) ~eps
  in
  let x = Array.make_matrix m n 0.0 in
  for i = 0 to m - 1 do
    for jj = 0 to k - 1 do
      x.(i).(jobs.(jj)) <- xk.(i).(jj)
    done
  done;
  { x; value }

let solve ?(solver = Solver_choice.default) inst ~jobs ~target =
  validate inst ~jobs ~target;
  Suu_obs.Span.with_span
    ~attrs:[ ("solver", Solver_choice.name solver) ]
    "lp1.solve"
    (fun () ->
      match solver with
      | Solver_choice.Simplex -> solve_simplex inst ~jobs ~target
      | Solver_choice.Mwu eps -> solve_mwu inst ~jobs ~target ~eps)
