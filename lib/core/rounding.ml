let round_impl ?job_cap inst ~jobs ~target ~frac ~frac_value =
  let m = Instance.m inst in
  let n = Instance.n inst in
  let ell' i j = Instance.clipped_log_failure inst ~target i j in
  let group_of i j =
    (* floor(log2 l'_ij); l' > 0 guaranteed by the support we build. *)
    int_of_float (floor (Mathx.log2 (ell' i j) +. 1e-12))
  in
  (* Pool fractional assignment per (job, group). *)
  let pooled : (int * int, float) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun j ->
      for i = 0 to m - 1 do
        if frac.(i).(j) > 1e-12 && ell' i j > 0.0 then begin
          let key = (j, group_of i j) in
          let prev = try Hashtbl.find pooled key with Not_found -> 0.0 in
          Hashtbl.replace pooled key (prev +. frac.(i).(j))
        end
      done)
    jobs;
  (* Keep only groups with a positive rounded capacity. *)
  let groups =
    Hashtbl.fold
      (fun key d acc ->
        let cap = Mathx.floor_pos (6.0 *. d) in
        if cap > 0 then (key, cap) :: acc else acc)
      pooled []
  in
  let groups = List.sort compare groups in
  let ngroups = List.length groups in
  (* Node layout: 0 = source, 1 = sink, groups, then machines. *)
  let source = 0 and sink = 1 in
  let group_node = Hashtbl.create ngroups in
  List.iteri (fun idx (key, _) -> Hashtbl.add group_node key (2 + idx)) groups;
  let machine_node i = 2 + ngroups + i in
  let net = Suu_flow.Net.create (2 + ngroups + m) in
  let demand = ref 0 in
  List.iter
    (fun (key, cap) ->
      demand := !demand + cap;
      let (_ : Suu_flow.Net.edge) =
        Suu_flow.Net.add_edge net ~src:source
          ~dst:(Hashtbl.find group_node key) ~cap
      in
      ())
    groups;
  let sink_cap = max 1 (Mathx.ceil_pos (6.0 *. frac_value)) in
  for i = 0 to m - 1 do
    let (_ : Suu_flow.Net.edge) =
      Suu_flow.Net.add_edge net ~src:(machine_node i) ~dst:sink ~cap:sink_cap
    in
    ()
  done;
  (* Group -> machine edges exist for every machine in the group (not just
     those the LP used), capped per job when requested (Lemma 6). *)
  let job_edges : (int * int, Suu_flow.Net.edge) Hashtbl.t =
    Hashtbl.create 64
  in
  Array.iter
    (fun j ->
      let cap =
        match job_cap with
        | None -> Suu_flow.Net.infinite
        | Some f -> f j
      in
      for i = 0 to m - 1 do
        if ell' i j > 0.0 then begin
          let key = (j, group_of i j) in
          match Hashtbl.find_opt group_node key with
          | Some u ->
              let e =
                Suu_flow.Net.add_edge net ~src:u ~dst:(machine_node i) ~cap
              in
              Hashtbl.add job_edges (i, j) e
          | None -> ()
        end
      done)
    jobs;
  let flow = Suu_flow.Dinic.max_flow net ~s:source ~t:sink in
  if flow < !demand then
    failwith
      (Printf.sprintf
         "Rounding.round: max flow %d below rounded demand %d (instance %s)"
         flow !demand (Instance.name inst));
  let x = Array.make_matrix m n 0 in
  Hashtbl.iter
    (fun (i, j) e -> x.(i).(j) <- x.(i).(j) + Suu_flow.Net.flow_on net e)
    job_edges;
  Assignment.make x

let round ?job_cap inst ~jobs ~target ~frac ~frac_value =
  Suu_obs.Span.with_span "lp.rounding" (fun () ->
      round_impl ?job_cap inst ~jobs ~target ~frac ~frac_value)
