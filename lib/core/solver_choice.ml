type t = Simplex | Revised | Mwu of float

let default = Simplex

(* The serve path prefers MWU: ~68x cheaper per LP1 solve at eps = 0.1,
   and every accepted solution carries a verified duality gap (see
   {!Lp1}), so the speedup cannot silently cost approximation ratio. *)
let serve_default = Mwu 0.1

let guarantee = function
  | Simplex | Revised -> 1.0
  | Mwu eps -> 1.0 +. (5.0 *. eps)

let name = function
  | Simplex -> "simplex"
  | Revised -> "revised"
  | Mwu eps -> Printf.sprintf "mwu-%g" eps

let to_string = name

let of_string s =
  match s with
  | "simplex" -> Ok Simplex
  | "revised" -> Ok Revised
  | "mwu" -> Ok serve_default
  | _ ->
      let pfx = "mwu-" in
      let lp = String.length pfx in
      let eps =
        if String.length s > lp && String.sub s 0 lp = pfx then
          float_of_string_opt (String.sub s lp (String.length s - lp))
        else None
      in
      (match eps with
      | Some e when e > 0.0 && e <= 0.5 -> Ok (Mwu e)
      | Some _ -> Error "mwu eps must be in (0, 0.5]"
      | None ->
          Error
            (Printf.sprintf
               "unknown solver %S (have: simplex, revised, mwu, mwu-EPS)" s))
