type t = Simplex | Mwu of float

let default = Simplex

let guarantee = function Simplex -> 1.0 | Mwu eps -> 1.0 +. (5.0 *. eps)

let name = function
  | Simplex -> "simplex"
  | Mwu eps -> Printf.sprintf "mwu-%g" eps
