type stats = {
  mutable supersteps : int;
  mutable max_congestion : int;
  mutable total_congestion : int;
  mutable sem_invocations : int;
  mutable sem_steps : int;
}

let new_stats () =
  {
    supersteps = 0;
    max_congestion = 0;
    total_congestion = 0;
    sem_invocations = 0;
    sem_steps = 0;
  }

type prepared = {
  assignment : Assignment.t;
  lp_value : float;
  gamma : int;
  load : int;
  long_jobs : int list;
  chains : Suu_dag.Chains.t;
}

let prepare ?top_machines ?solver inst ~chains =
  let frac = Lp2.solve ?top_machines ?solver inst ~chains in
  let assignment = Lp2.round inst frac in
  let m = Instance.m inst in
  let covered = Suu_dag.Chains.total_jobs chains in
  let gamma =
    max 1
      (Mathx.ceil_pos (frac.Lp2.value /. Mathx.log2 (float_of_int (covered + m))))
  in
  let long_jobs = ref [] in
  List.iter
    (fun chain ->
      Array.iter
        (fun j ->
          if Assignment.job_length assignment j > gamma then
            long_jobs := j :: !long_jobs)
        chain)
    chains;
  (* Load over short jobs only: long jobs never enter the pseudoschedule. *)
  let is_long = Array.make (Instance.n inst) false in
  List.iter (fun j -> is_long.(j) <- true) !long_jobs;
  let load = ref 1 in
  for i = 0 to m - 1 do
    let acc = ref 0 in
    for j = 0 to Instance.n inst - 1 do
      if not is_long.(j) then acc := !acc + Assignment.get assignment i j
    done;
    if !acc > !load then load := !acc
  done;
  {
    assignment;
    lp_value = frac.Lp2.value;
    gamma;
    load = !load;
    long_jobs = List.rev !long_jobs;
    chains;
  }

(* Per-chain program item. *)
type item = Short of int | Pause of int

(* Per-execution chain cursor.  [offset = gamma] on a pause means the
   pause has elapsed and the chain is waiting for its long job. *)
type cursor = { mutable item : int; mutable offset : int }

type mode =
  | Flatten of {
      queues : int array array; (* per machine: jobs this superstep *)
      duration : int;
      mutable tstep : int;
    }
  | Need_superstep
  | Sem of { step : Policy.stepper; targets : int list }

type exec = {
  cursors : cursor array;
  delays : int array;
  mutable superstep : int;
  mutable mode : mode;
  pause_started : bool array; (* per job: its pause has begun *)
}

let policy_of_prepared ?solver ?stats ?(random_delays = true)
    ?(delay_granularity = 1) inst prep =
  if delay_granularity < 1 then
    invalid_arg "Suu_c: delay_granularity must be >= 1";
  let m = Instance.m inst in
  let n = Instance.n inst in
  let chain_arr = Array.of_list prep.chains in
  let nchains = Array.length chain_arr in
  let is_long = Array.make n false in
  List.iter (fun j -> is_long.(j) <- true) prep.long_jobs;
  let d = Array.make n 1 in
  let machines_of = Array.make n [] in
  Array.iter
    (fun chain ->
      Array.iter
        (fun j ->
          d.(j) <- max 1 (Assignment.job_length prep.assignment j);
          machines_of.(j) <- Assignment.machines_of_job prep.assignment j)
        chain)
    chain_arr;
  let items =
    Array.map
      (fun chain ->
        Array.map (fun j -> if is_long.(j) then Pause j else Short j) chain)
      chain_arr
  in
  (* The stats sink is shared by every stepper of this policy value, and
     steppers may run concurrently (parallel runner) — serialize updates. *)
  let stats_lock = Mutex.create () in
  let with_stats f =
    match stats with
    | None -> ()
    | Some s ->
        Mutex.lock stats_lock;
        f s;
        Mutex.unlock stats_lock
  in
  let record_superstep duration =
    with_stats (fun s ->
        s.supersteps <- s.supersteps + 1;
        s.total_congestion <- s.total_congestion + duration;
        if duration > s.max_congestion then s.max_congestion <- duration)
  in
  let fresh rng =
    (* Delays are drawn on a lattice of [delay_granularity] supersteps —
       the paper's coarsening device for nonpolynomial t_LP2 reduces the
       number of distinct delay values the same way. *)
    let delays =
      let g = delay_granularity in
      let slots = (prep.load / g) + 1 in
      Array.init nchains (fun _ ->
          if random_delays then g * Suu_prng.Rng.int rng slots else 0)
    in
    let ex =
      {
        cursors = Array.init nchains (fun _ -> { item = 0; offset = 0 });
        delays;
        superstep = 0;
        mode = Need_superstep;
        pause_started = Array.make n false;
      }
    in
    (* Requests of chain c for the coming superstep; also marks pause
       starts.  Returns (job, machines) or None. *)
    let chain_requests c ~remaining =
      let cur = ex.cursors.(c) in
      let prog = items.(c) in
      if ex.superstep < ex.delays.(c) || cur.item >= Array.length prog then
        None
      else
        match prog.(cur.item) with
        | Short j ->
            if remaining.(j) then begin
              let ms =
                List.filter_map
                  (fun (i, xij) -> if xij > cur.offset then Some i else None)
                  machines_of.(j)
              in
              Some (j, ms)
            end
            else None
        | Pause j ->
            if cur.offset = 0 && remaining.(j) then ex.pause_started.(j) <- true;
            None
    in
    (* Advance every chain by one superstep (called after the superstep's
       flattened timesteps have run). *)
    let advance_chains ~remaining =
      for c = 0 to nchains - 1 do
        let cur = ex.cursors.(c) in
        let prog = items.(c) in
        if ex.superstep >= ex.delays.(c) && cur.item < Array.length prog then begin
          match prog.(cur.item) with
          | Short j ->
              if cur.offset + 1 >= d.(j) then begin
                if remaining.(j) then cur.offset <- 0 (* failed: repeat *)
                else begin
                  cur.item <- cur.item + 1;
                  cur.offset <- 0
                end
              end
              else cur.offset <- cur.offset + 1
          | Pause j ->
              if not remaining.(j) then begin
                cur.item <- cur.item + 1;
                cur.offset <- 0
              end
              else if cur.offset < prep.gamma then cur.offset <- cur.offset + 1
              (* offset = gamma: pause elapsed, wait for the SEM runs. *)
        end
      done;
      ex.superstep <- ex.superstep + 1
    in
    let pending_long ~remaining =
      List.filter (fun j -> ex.pause_started.(j) && remaining.(j))
        prep.long_jobs
    in
    let rec step ~time ~remaining ~eligible =
      match ex.mode with
      | Sem { step = inner; targets } ->
          if List.exists (fun j -> remaining.(j)) targets then begin
            with_stats (fun s -> s.sem_steps <- s.sem_steps + 1);
            inner ~time ~remaining ~eligible
          end
          else begin
            ex.mode <- Need_superstep;
            step ~time ~remaining ~eligible
          end
      | Need_superstep ->
          (* Segment boundary: run SUU-I-SEM on pending long jobs. *)
          if ex.superstep > 0 && ex.superstep mod prep.gamma = 0 then begin
            match pending_long ~remaining with
            | [] -> build_superstep ~time ~remaining ~eligible
            | targets ->
                with_stats (fun s ->
                    s.sem_invocations <- s.sem_invocations + 1);
                let inner_policy =
                  Suu_i_sem.policy ?solver ~jobs:(Array.of_list targets) inst
                in
                (* Mark handled: these pauses will have completed. *)
                ex.mode <-
                  Sem { step = Policy.fresh inner_policy rng; targets };
                step ~time ~remaining ~eligible
          end
          else build_superstep ~time ~remaining ~eligible
      | Flatten f ->
          if f.tstep < f.duration then begin
            let buf = Array.make m (-1) in
            for i = 0 to m - 1 do
              let q = f.queues.(i) in
              if f.tstep < Array.length q then buf.(i) <- q.(f.tstep)
            done;
            f.tstep <- f.tstep + 1;
            buf
          end
          else begin
            advance_chains ~remaining;
            ex.mode <- Need_superstep;
            step ~time ~remaining ~eligible
          end
    and build_superstep ~time ~remaining ~eligible =
      let queues = Array.make m [] in
      let congestion = ref 0 in
      for c = 0 to nchains - 1 do
        match chain_requests c ~remaining with
        | None -> ()
        | Some (j, ms) ->
            List.iter
              (fun i ->
                queues.(i) <- j :: queues.(i);
                let len = List.length queues.(i) in
                if len > !congestion then congestion := len)
              ms
      done;
      let duration = max 1 !congestion in
      record_superstep duration;
      ex.mode <-
        Flatten
          {
            queues = Array.map (fun l -> Array.of_list (List.rev l)) queues;
            duration;
            tstep = 0;
          };
      step ~time ~remaining ~eligible
    in
    fun ~time ~remaining ~eligible -> step ~time ~remaining ~eligible
  in
  Policy.make ~name:"suu-c" ~fresh

let policy ?solver ?top_machines ?stats ?random_delays ?delay_granularity
    inst =
  match Suu_dag.Chains.of_dag (Instance.dag inst) with
  | None -> invalid_arg "Suu_c.policy: precedence dag is not disjoint chains"
  | Some chains ->
      let prep = prepare ?top_machines ?solver inst ~chains in
      policy_of_prepared ?solver ?stats ?random_delays ?delay_granularity
        inst prep
