module Classify = Suu_dag.Classify

type shape_req = Any_shape | Independent_only | Chains_only | Forest_only

type entry = {
  name : string;
  summary : string;
  guarantee : string;
  lp_free : bool;
  shape : shape_req;
  build : solver:Solver_choice.t option -> Instance.t -> Policy.t;
}

(* Registration order is presentation order (describe, [suu policies],
   bench tables), so keep a list next to the by-name table. *)
let lock = Mutex.create ()
let table : (string, entry) Hashtbl.t = Hashtbl.create 16
let order : entry list ref = ref []

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let register e =
  locked (fun () ->
      if Hashtbl.mem table e.name then
        invalid_arg
          (Printf.sprintf "Policy_registry.register: duplicate policy %S"
             e.name);
      Hashtbl.add table e.name e;
      order := e :: !order)

let entries () = locked (fun () -> List.rev !order)
let names () = List.map (fun e -> e.name) (entries ())
let find name = locked (fun () -> Hashtbl.find_opt table name)
let mem name = locked (fun () -> Hashtbl.mem table name)

let lp_free name =
  match find name with Some e -> e.lp_free | None -> false

let shape_ok req (s : Classify.shape) =
  match (req, s) with
  | Any_shape, _ -> true
  | Independent_only, Classify.Independent -> true
  | Independent_only, _ -> false
  | Chains_only, Classify.Disjoint_chains _ -> true
  | Chains_only, _ -> false
  | Forest_only, Classify.Directed_forest _ -> true
  | Forest_only, _ -> false

let describe_requirement = function
  | Any_shape -> "any dag"
  | Independent_only -> "independent jobs"
  | Chains_only -> "disjoint chains"
  | Forest_only -> "a directed forest"

let build ?solver name inst =
  match find name with
  | None ->
      Result.Error
        (`Unknown
          (Printf.sprintf "unknown policy %S (have: %s)" name
             (String.concat ", " (names ()))))
  | Some e ->
      let s = Classify.classify (Instance.dag inst) in
      if shape_ok e.shape s then Result.Ok (e.build ~solver inst)
      else
        Result.Error
          (`Inapplicable
            (Printf.sprintf "policy %s requires %s (instance is: %s)" name
               (describe_requirement e.shape)
               (Classify.describe s)))

let applicable inst =
  let s = Classify.classify (Instance.dag inst) in
  List.filter_map
    (fun e -> if shape_ok e.shape s then Some e.name else None)
    (entries ())

(* --- the core (paper) policies --- *)

let core name summary guarantee ~lp_free ~shape build =
  { name; summary; guarantee; lp_free; shape; build }

let () =
  List.iter register
    [ core "auto" "shape dispatch: SUU-I-SEM / SUU-C / SUU-T / greedy"
        "per dispatched policy" ~lp_free:false ~shape:Any_shape
        (fun ~solver inst -> Auto.policy ?solver inst);
      core "suu-i-sem" "semi-adaptive doubling over LP1 round plans"
        "O(log log min(m,n))" ~lp_free:false ~shape:Independent_only
        (fun ~solver inst -> Suu_i_sem.policy ?solver inst);
      core "suu-i-obl" "oblivious single-plan LP1 schedule"
        "O(log n)" ~lp_free:false ~shape:Independent_only
        (fun ~solver inst -> Suu_i_obl.policy ?solver inst);
      core "greedy-oblivious" "greedy-filled oblivious plan (no LP)"
        "heuristic" ~lp_free:true ~shape:Independent_only
        (fun ~solver:_ inst -> Baselines.greedy_oblivious inst);
      core "suu-c" "chain decomposition over SUU-I rounds"
        "O(log(n+m) * log log min(m,n))" ~lp_free:false ~shape:Chains_only
        (fun ~solver inst -> Suu_c.policy ?solver inst);
      core "suu-t" "directed-forest block schedule"
        "O(log n * log(n+m) * log log min(m,n))" ~lp_free:false
        ~shape:Forest_only
        (fun ~solver inst -> Suu_t.policy ?solver inst);
      core "greedy" "Lin-Rajaraman completion-probability greedy"
        "heuristic" ~lp_free:true ~shape:Any_shape
        (fun ~solver:_ inst -> Baselines.greedy_completion inst);
      core "round-robin" "rotate eligible jobs across machines"
        "heuristic" ~lp_free:true ~shape:Any_shape
        (fun ~solver:_ inst -> Baselines.round_robin inst);
      core "serial" "all machines on the first eligible job"
        "heuristic" ~lp_free:true ~shape:Any_shape
        (fun ~solver:_ inst -> Baselines.serial inst) ]
