(* The LP1 → Lemma-2 rounding → oblivious-serialization pipeline is a
   pure function of (instance, solver, round, survivor set): the target
   is L_k = 2^(k-2) from the round alone, and nothing in the pipeline
   sees the trace.  Policies that are oblivious within a round — the
   SUU-I family — recompute identical plans on every replication; memoizing
   here turns the per-replication LP cost into a per-survivor-set one. *)

type key = int * int array (* round, survivors (ascending) *)

type stats = { hits : int; misses : int; evictions : int }

type t = {
  solver : Solver_choice.t option;
  inst : Instance.t;
  lock : Mutex.t;
  table : (key, Oblivious.t) Hashtbl.t;
  order : key Queue.t; (* insertion order, for FIFO eviction *)
  max_entries : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

(* Process-wide aggregates: a resident server creates one cache per
   policy value, so its stats endpoint wants the sum over all of them.
   They live in the Obs registry so one [stats] scrape sees them next
   to the span histograms they explain. *)
let g_hits = lazy (Suu_obs.Registry.counter "plan_cache.hits")
let g_misses = lazy (Suu_obs.Registry.counter "plan_cache.misses")
let g_evictions = lazy (Suu_obs.Registry.counter "plan_cache.evictions")

(* Distinct survivor sets are trace-dependent, so the table can in
   principle grow without bound across replications; past this size we
   evict the oldest half, keeping the recurring sets (every round-1 set,
   and the high-threshold survivor sets that recur across traces) warm
   in a long-lived process. *)
let default_max_entries = 4096

let create ?solver ?(max_entries = default_max_entries) inst =
  if max_entries <= 0 then
    invalid_arg "Plan_cache.create: max_entries must be positive";
  { solver; inst; lock = Mutex.create (); table = Hashtbl.create 64;
    order = Queue.create (); max_entries; hits = 0; misses = 0;
    evictions = 0 }

let fresh_plan ?solver inst ~round ~survivors =
  if Array.length survivors = 0 then
    invalid_arg "Plan_cache.fresh_plan: empty survivor set";
  Suu_obs.Span.with_span "plan_cache.solve" (fun () ->
      let target = Mathx.target_for_round round in
      let { Lp1.x; value } = Lp1.solve ?solver inst ~jobs:survivors ~target in
      let rounded =
        Rounding.round inst ~jobs:survivors ~target ~frac:x ~frac_value:value
      in
      Oblivious.of_assignment rounded)

(* Called with the lock held. *)
let evict_half t =
  let drop = max 1 (t.max_entries / 2) in
  for _ = 1 to drop do
    match Queue.take_opt t.order with
    | Some k ->
        Hashtbl.remove t.table k;
        t.evictions <- t.evictions + 1;
        Suu_obs.Counter.incr (Lazy.force g_evictions)
    | None -> ()
  done

let plan t ~round ~survivors =
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.table (round, survivors) with
  | Some p ->
      t.hits <- t.hits + 1;
      Suu_obs.Counter.incr (Lazy.force g_hits);
      Mutex.unlock t.lock;
      p
  | None ->
      t.misses <- t.misses + 1;
      Suu_obs.Counter.incr (Lazy.force g_misses);
      (* Solve under the lock: concurrent replications of the same
         instance mostly want the same plan, so serializing the solve
         lets every other domain reuse it instead of re-deriving it. *)
      let finish () =
        let p = fresh_plan ?solver:t.solver t.inst ~round ~survivors in
        if Hashtbl.length t.table >= t.max_entries then evict_half t;
        let k = (round, Array.copy survivors) in
        Hashtbl.add t.table k p;
        Queue.add k t.order;
        Mutex.unlock t.lock;
        p
      in
      (try finish ()
       with e ->
         Mutex.unlock t.lock;
         raise e)

let stats t =
  Mutex.lock t.lock;
  let r = { hits = t.hits; misses = t.misses; evictions = t.evictions } in
  Mutex.unlock t.lock;
  r

let size t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.lock;
  n

let global_stats () =
  { hits = Suu_obs.Counter.get (Lazy.force g_hits);
    misses = Suu_obs.Counter.get (Lazy.force g_misses);
    evictions = Suu_obs.Counter.get (Lazy.force g_evictions) }
