(* The LP1 → Lemma-2 rounding → oblivious-serialization pipeline is a
   pure function of (instance, solver, round, survivor set): the target
   is L_k = 2^(k-2) from the round alone, and nothing in the pipeline
   sees the trace.  Policies that are oblivious within a round — the
   SUU-I family — recompute identical plans on every replication, and a
   resident server replays the same deterministic request bodies over
   and over; memoizing here turns the per-replication LP cost into a
   per-survivor-set one.

   Plans live in one process-global sharded store, keyed by content —
   (instance digest, solver, round, survivor set) — not by which policy
   value asked.  Two policy values built against equal instances (the
   server rebuilds policies whenever its instance cache evicts) share
   every plan, and the store's capacity is sized for a whole process
   rather than fragmented per policy.  Eviction is segmented LRU: each
   lookup stamps its entry with the shard's logical clock, and an
   overfull shard drops the least-recently-used half — a hot key (the
   round-1 full-survivor plan recurs on every replication) is re-stamped
   constantly and survives, where the old insertion-order clear-half
   dropped exactly the oldest-inserted (hottest) entries first. *)

type stats = { hits : int; misses : int; evictions : int }

let hit_rate { hits; misses; _ } =
  let total = hits + misses in
  if total = 0 then 0.0 else float_of_int hits /. float_of_int total

(* Process-wide aggregates: the server's stats endpoint wants the sum
   over every shard and every private cache.  They live in the Obs
   registry so one [stats] scrape sees them next to the span histograms
   they explain. *)
let g_hits = lazy (Suu_obs.Registry.counter "plan_cache.hits")
let g_misses = lazy (Suu_obs.Registry.counter "plan_cache.misses")
let g_evictions = lazy (Suu_obs.Registry.counter "plan_cache.evictions")

(* LP-free policies (lzf, backfill, the greedy baselines) never consult
   the store; the server notes each such request here so operators can
   see the no-LP traffic share, and so the serve hit-rate gate knows the
   hit/miss denominator excludes these requests by construction. *)
let g_bypasses = lazy (Suu_obs.Registry.counter "plan_cache.bypass")
let note_bypass () = Suu_obs.Counter.incr (Lazy.force g_bypasses)
let bypasses () = Suu_obs.Counter.get (Lazy.force g_bypasses)

type entry = { plan : Oblivious.t; mutable tick : int }

(* The lookup key, kept structural: policies look a plan up at every
   round start of every replication, so building a serialized key
   string there (one Buffer, ~65 boxed [Int32.t]s, a full-string hash
   and memcmp per probe) dominated the served hit — ~20us against a
   ~1us table probe.  A [pkey] costs one 4-word record: the prefix
   string is physically shared by all of a handle's lookups and its
   hash is precomputed at handle creation, and the survivor array is
   borrowed (only copied if the key is actually inserted). *)
type pkey = {
  prefix : string; (* instance digest ^ solver name ^ '\000' *)
  phash : int; (* hash of [prefix], precomputed per handle *)
  round : int;
  survivors : int array;
}

module Key = struct
  type t = pkey

  let equal a b =
    a.round = b.round
    && (a.prefix == b.prefix || String.equal a.prefix b.prefix)
    && a.survivors = b.survivors

  (* Allocation-free, and samples the whole survivor range: the
     polymorphic [Hashtbl.hash] caps at 10 meaningful words, which
     collides survivor sets sharing a 10-element prefix — common, since
     sets shrink from the low-numbered jobs up. *)
  let hash k =
    let s = k.survivors in
    let n = Array.length s in
    let h = ref ((k.phash lxor (k.round * 0x1000193)) + n) in
    let step = if n <= 16 then 1 else n / 16 in
    let i = ref 0 in
    while !i < n do
      h := (!h * 0x01000193) lxor s.(!i);
      i := !i + step
    done;
    if n > 0 then h := (!h * 0x01000193) lxor s.(n - 1);
    !h land max_int
end

module KH = Hashtbl.Make (Key)

type shard = {
  slock : Mutex.t;
  table : entry KH.t;
  capacity : int;
  mutable clock : int;
  mutable s_hits : int;
  mutable s_misses : int;
  mutable s_evictions : int;
  obs : (Suu_obs.Counter.t * Suu_obs.Counter.t * Suu_obs.Counter.t) option;
      (* per-shard registry counters, global store only *)
}

type store = { shards : shard array (* length is a power of two *) }

let make_shard ~capacity ~obs =
  { slock = Mutex.create (); table = KH.create 64; capacity;
    clock = 0; s_hits = 0; s_misses = 0; s_evictions = 0; obs }

let num_global_shards = 8
let global_capacity = 32_768

(* Surfacing per-shard traffic in obs.* (registered once, on first use
   of the global store): hit/miss/eviction counts per shard, from which
   a scrape derives per-shard rates — skew across shards is how a bad
   key distribution would show up. *)
let global_store =
  lazy
    {
      shards =
        Array.init num_global_shards (fun i ->
            let c what =
              Suu_obs.Registry.counter
                (Printf.sprintf "plan_cache.shard%d.%s" i what)
            in
            make_shard
              ~capacity:(global_capacity / num_global_shards)
              ~obs:(Some (c "hits", c "misses", c "evictions")));
    }

type t = {
  solver : Solver_choice.t option;
  inst : Instance.t;
  key_prefix : string; (* instance digest ^ solver name ^ '\000' *)
  key_phash : int;
  store : store;
  (* Per-handle counters, lock-free: every domain driving this policy
     touches them on every lookup, and a dedicated handle mutex was
     measurable on the served hit path. *)
  hits : int Atomic.t;
  misses : int Atomic.t;
  evictions : int Atomic.t;
}

(* [Instance_io.to_string] plus [Digest.string] walk the whole
   instance, and handles are not always long-lived: SUU-C (and SUU-T's
   stages) build an inner SUU-I-SEM policy value — hence a cache
   handle — at every segment boundary of every replication.  The digest
   is therefore memoized by physical identity.  Structural hashing is
   capped by [Hashtbl.hash] (a bounded prefix walk), equality is [==],
   and the memo is reset when it outgrows the server's instance cache
   rather than kept weak — worst case it re-digests, never leaks
   unboundedly. *)
module Id_tbl = Hashtbl.Make (struct
  type t = Instance.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let digest_lock = Mutex.create ()
let digest_memo : string Id_tbl.t = Id_tbl.create 16
let digest_memo_cap = 128

let instance_digest inst =
  Mutex.lock digest_lock;
  match Id_tbl.find_opt digest_memo inst with
  | Some d ->
      Mutex.unlock digest_lock;
      d
  | None ->
      Mutex.unlock digest_lock;
      let d = Digest.string (Instance_io.to_string inst) in
      Mutex.lock digest_lock;
      if Id_tbl.length digest_memo >= digest_memo_cap then
        Id_tbl.reset digest_memo;
      Id_tbl.replace digest_memo inst d;
      Mutex.unlock digest_lock;
      d

let key_prefix ?solver inst =
  let digest = instance_digest inst in
  let solver = Option.value solver ~default:Solver_choice.default in
  (* The digest is fixed-width and the solver name never contains a NUL,
     so the prefix is decodable and the whole key injective. *)
  digest ^ Solver_choice.name solver ^ "\000"

let create ?solver ?max_entries inst =
  let store =
    match max_entries with
    | None -> Lazy.force global_store
    | Some me ->
        if me <= 0 then
          invalid_arg "Plan_cache.create: max_entries must be positive";
        (* A private single-shard store: tests exercise eviction with a
           tiny bound, and a handle that must not share state (isolated
           experiments) opts out of the global store by bounding it. *)
        { shards = [| make_shard ~capacity:me ~obs:None |] }
  in
  let prefix = key_prefix ?solver inst in
  { solver; inst; key_prefix = prefix; key_phash = Hashtbl.hash prefix;
    store; hits = Atomic.make 0; misses = Atomic.make 0;
    evictions = Atomic.make 0 }

let shard_of store khash = store.shards.(khash land (Array.length store.shards - 1))

(* --- the warm-start basis store --- *)

(* Optimal bases for the Revised backend, under two keys per solve.
   The exact key (with the round) serves re-solves of an evicted plan:
   warm-starting from the plan's own optimal basis verifies in zero
   pivots.  The latest key (WITHOUT the round) serves the doubling
   sequence: the (LP1) variable set depends only on
   (instance, survivors) — which pairs have positive clipped log mass
   is target-independent — so the basis left by round [k] seeds round
   [k+1] of the same survivor set, where only the RHS and coefficient
   clipping moved (a few repair pivots instead of a cold phase 1).
   Purely an optimization hint: {!Suu_lp.Revised_simplex.solve_basis}
   re-validates every basis against the fresh problem and falls back to
   the cold two-phase path, so a stale entry can never change a plan.
   Bounded by wholesale reset — losing hints costs one phase 1, not
   correctness. *)
let basis_lock = Mutex.create ()
let basis_table : (string, int array) Hashtbl.t = Hashtbl.create 64
let basis_capacity = 4096

let basis_key t ~survivors ~round =
  let b =
    Buffer.create (String.length t.key_prefix + 4 + (4 * Array.length survivors))
  in
  Buffer.add_string b t.key_prefix;
  (* round = -1 is the latest-of-any-round key; real rounds are >= 1. *)
  Buffer.add_int32_le b (Int32.of_int round);
  Array.iter (fun j -> Buffer.add_int32_le b (Int32.of_int j)) survivors;
  Buffer.contents b

let basis_find ~exact ~latest =
  Mutex.lock basis_lock;
  let b =
    match Hashtbl.find_opt basis_table exact with
    | Some _ as hit -> hit
    | None -> Hashtbl.find_opt basis_table latest
  in
  Mutex.unlock basis_lock;
  b

let basis_store ~exact ~latest basis =
  Mutex.lock basis_lock;
  if Hashtbl.length basis_table + 1 >= basis_capacity then
    Hashtbl.reset basis_table;
  Hashtbl.replace basis_table exact basis;
  Hashtbl.replace basis_table latest basis;
  Mutex.unlock basis_lock

(* --- the plan pipeline --- *)

let pipeline ?solver ?basis inst ~round ~survivors =
  if Array.length survivors = 0 then
    invalid_arg "Plan_cache.fresh_plan: empty survivor set";
  Suu_obs.Span.with_span "plan_cache.solve" (fun () ->
      let target = Mathx.target_for_round round in
      let { Lp1.x; value; basis = out } =
        Lp1.solve ?solver ?basis inst ~jobs:survivors ~target
      in
      let rounded =
        Rounding.round inst ~jobs:survivors ~target ~frac:x ~frac_value:value
      in
      (Oblivious.of_assignment rounded, out))

let fresh_plan ?solver inst ~round ~survivors =
  fst (pipeline ?solver inst ~round ~survivors)

(* Called with the shard lock held.  Drop the least-recently-used half:
   entries are stamped on every lookup, so sorting by stamp keeps the
   working set and sheds the churn. *)
let evict_lru_half sh =
  let arr =
    Array.of_list (KH.fold (fun k e acc -> (k, e.tick) :: acc) sh.table [])
  in
  Array.sort (fun (_, a) (_, b) -> compare a b) arr;
  let drop = max 1 (Array.length arr / 2) in
  for j = 0 to drop - 1 do
    KH.remove sh.table (fst arr.(j))
  done;
  sh.s_evictions <- sh.s_evictions + drop;
  (match sh.obs with
  | Some (_, _, ce) -> Suu_obs.Counter.add ce drop
  | None -> ());
  Suu_obs.Counter.add (Lazy.force g_evictions) drop;
  drop

(* The solve for a missing key runs under the shard lock: concurrent
   replications of the same instance mostly want the same plan, so
   serializing the solve lets every other domain reuse it instead of
   re-deriving it.  [count] is false for {!shared_plan} — policy
   construction must not perturb the hit/miss statistics a client reads
   from [stats] (see {!Service.warm}). *)
let lookup t ~count ~round ~survivors =
  let key =
    { prefix = t.key_prefix; phash = t.key_phash; round; survivors }
  in
  let sh = shard_of t.store (Key.hash key) in
  Mutex.lock sh.slock;
  sh.clock <- sh.clock + 1;
  match KH.find_opt sh.table key with
  | Some e ->
      e.tick <- sh.clock;
      if count then begin
        sh.s_hits <- sh.s_hits + 1;
        (match sh.obs with
        | Some (ch, _, _) -> Suu_obs.Counter.incr ch
        | None -> ());
        Suu_obs.Counter.incr (Lazy.force g_hits)
      end;
      Mutex.unlock sh.slock;
      if count then Atomic.incr t.hits;
      e.plan
  | None ->
      if count then begin
        sh.s_misses <- sh.s_misses + 1;
        (match sh.obs with
        | Some (_, cm, _) -> Suu_obs.Counter.incr cm
        | None -> ());
        Suu_obs.Counter.incr (Lazy.force g_misses)
      end;
      let finish () =
        let resolved = Option.value t.solver ~default:Solver_choice.default in
        let bkeys =
          match resolved with
          | Solver_choice.Revised ->
              Some
                ( basis_key t ~survivors ~round,
                  basis_key t ~survivors ~round:(-1) )
          | _ -> None
        in
        let basis =
          Option.bind bkeys (fun (exact, latest) ->
              basis_find ~exact ~latest)
        in
        let plan, basis_out =
          pipeline ?solver:t.solver ?basis t.inst ~round ~survivors
        in
        (match (bkeys, basis_out) with
        | Some (exact, latest), Some b -> basis_store ~exact ~latest b
        | _ -> ());
        let dropped =
          if KH.length sh.table >= sh.capacity then evict_lru_half sh
          else 0
        in
        (* The lookup key borrows the caller's survivor array; the
           stored key must own its copy. *)
        KH.replace sh.table
          { key with survivors = Array.copy survivors }
          { plan; tick = sh.clock };
        Mutex.unlock sh.slock;
        if count then begin
          Atomic.incr t.misses;
          if dropped > 0 then
            ignore (Atomic.fetch_and_add t.evictions dropped)
        end;
        plan
      in
      (try finish ()
       with e ->
         Mutex.unlock sh.slock;
         raise e)

let plan t ~round ~survivors = lookup t ~count:true ~round ~survivors

let shared_plan ?solver inst ~round ~survivors =
  lookup (create ?solver inst) ~count:false ~round ~survivors

let stats t =
  { hits = Atomic.get t.hits; misses = Atomic.get t.misses;
    evictions = Atomic.get t.evictions }

let size t =
  Array.fold_left
    (fun acc sh ->
      Mutex.lock sh.slock;
      let n = KH.length sh.table in
      Mutex.unlock sh.slock;
      acc + n)
    0 t.store.shards

let global_stats () =
  { hits = Suu_obs.Counter.get (Lazy.force g_hits);
    misses = Suu_obs.Counter.get (Lazy.force g_misses);
    evictions = Suu_obs.Counter.get (Lazy.force g_evictions) }

let shard_stats () =
  Array.map
    (fun sh ->
      Mutex.lock sh.slock;
      let r =
        { hits = sh.s_hits; misses = sh.s_misses;
          evictions = sh.s_evictions }
      in
      Mutex.unlock sh.slock;
      r)
    (Lazy.force global_store).shards
