(* The LP1 → Lemma-2 rounding → oblivious-serialization pipeline is a
   pure function of (instance, solver, round, survivor set): the target
   is L_k = 2^(k-2) from the round alone, and nothing in the pipeline
   sees the trace.  Policies that are oblivious within a round — the
   SUU-I family — recompute identical plans on every replication; memoizing
   here turns the per-replication LP cost into a per-survivor-set one. *)

type key = int * int array (* round, survivors (ascending) *)

type t = {
  solver : Solver_choice.t option;
  inst : Instance.t;
  lock : Mutex.t;
  table : (key, Oblivious.t) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

(* Distinct survivor sets are trace-dependent, so the table can in
   principle grow without bound across replications; past this size we
   solve without storing (the common sets — every round-1 set, and the
   high-threshold survivor sets that recur across traces — are cached
   long before). *)
let max_entries = 4096

let create ?solver inst =
  { solver; inst; lock = Mutex.create (); table = Hashtbl.create 64;
    hits = 0; misses = 0 }

let fresh_plan ?solver inst ~round ~survivors =
  if Array.length survivors = 0 then
    invalid_arg "Plan_cache.fresh_plan: empty survivor set";
  let target = Mathx.target_for_round round in
  let { Lp1.x; value } = Lp1.solve ?solver inst ~jobs:survivors ~target in
  let rounded =
    Rounding.round inst ~jobs:survivors ~target ~frac:x ~frac_value:value
  in
  Oblivious.of_assignment rounded

let plan t ~round ~survivors =
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.table (round, survivors) with
  | Some p ->
      t.hits <- t.hits + 1;
      Mutex.unlock t.lock;
      p
  | None ->
      t.misses <- t.misses + 1;
      (* Solve under the lock: concurrent replications of the same
         instance mostly want the same plan, so serializing the solve
         lets every other domain reuse it instead of re-deriving it. *)
      let finish () =
        let p = fresh_plan ?solver:t.solver t.inst ~round ~survivors in
        if Hashtbl.length t.table < max_entries then
          Hashtbl.add t.table (round, Array.copy survivors) p;
        Mutex.unlock t.lock;
        p
      in
      (try finish ()
       with e ->
         Mutex.unlock t.lock;
         raise e)

let stats t =
  Mutex.lock t.lock;
  let r = (t.hits, t.misses) in
  Mutex.unlock t.lock;
  r
