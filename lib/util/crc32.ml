(* Reflected CRC-32, one 256-entry table computed at module init.  The
   table entry for byte [b] is the CRC of the single byte [b] with a
   zero initial value; a running CRC folds each byte through it. *)

let table =
  let t = Array.make 256 0l in
  for b = 0 to 255 do
    let c = ref (Int32.of_int b) in
    for _ = 1 to 8 do
      c :=
        if Int32.logand !c 1l <> 0l then
          Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
        else Int32.shift_right_logical !c 1
    done;
    t.(b) <- !c
  done;
  t

let sub ?(crc = 0l) s ~pos ~len =
  if pos < 0 || len < 0 || pos > String.length s - len then
    invalid_arg "Crc32.sub: range out of bounds";
  let c = ref (Int32.lognot crc) in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code s.[i]))) 0xFFl)
    in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.lognot !c

let string ?crc s = sub ?crc s ~pos:0 ~len:(String.length s)
