(** Minimal dependency-free JSON reader for the bench gate.

    Parses the JSON this repo itself emits (BENCH_perf.json,
    BENCH_serve.json, SUU_TRACE JSONL lines).  All numbers surface as
    [Float]; [\uXXXX] escapes pass through verbatim.  Not a validating
    general-purpose parser — do not feed it hostile input. *)

type t =
  | Null
  | Bool of bool
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val of_string : string -> t
val of_file : string -> t

val member : string -> t -> t option
(** Object field lookup; [None] on missing key or non-object. *)

val path : string list -> t -> t option
(** Nested lookup: [path ["a"; "b"] j] is [j.a.b]. *)

val to_float : t option -> float option
val to_bool : t option -> bool option
val to_string : t option -> string option
val to_list : t option -> t list option
