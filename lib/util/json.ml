(* Minimal recursive-descent JSON reader: just enough for the bench
   gate to read BENCH_*.json, bench/baseline.json and SUU_TRACE JSONL
   lines without an external dependency.  Integers surface as [Float]
   (the gate only compares magnitudes); escapes decode the common cases
   and pass \uXXXX through verbatim. *)

type t =
  | Null
  | Bool of bool
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type state = { s : string; mutable pos : int }

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> fail "expected %C at %d, got %C" c st.pos c'
  | None -> fail "expected %C at %d, got end of input" c st.pos

let literal st word v =
  let n = String.length word in
  if
    st.pos + n <= String.length st.s
    && String.equal (String.sub st.s st.pos n) word
  then begin
    st.pos <- st.pos + n;
    v
  end
  else fail "bad literal at %d" st.pos

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail "unterminated string at %d" st.pos
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some 'n' -> Buffer.add_char b '\n'; advance st; go ()
        | Some 't' -> Buffer.add_char b '\t'; advance st; go ()
        | Some 'r' -> Buffer.add_char b '\r'; advance st; go ()
        | Some 'b' -> Buffer.add_char b '\b'; advance st; go ()
        | Some 'f' -> Buffer.add_char b '\012'; advance st; go ()
        | Some (('"' | '\\' | '/') as c) -> Buffer.add_char b c; advance st; go ()
        | Some 'u' ->
            (* Pass through undecoded: the gate never compares such keys. *)
            Buffer.add_string b "\\u";
            advance st;
            go ()
        | _ -> fail "bad escape at %d" st.pos)
    | Some c ->
        Buffer.add_char b c;
        advance st;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c -> num_char c | None -> false) do
    advance st
  done;
  let tok = String.sub st.s start (st.pos - start) in
  match float_of_string_opt tok with
  | Some f -> Float f
  | None -> fail "bad number %S at %d" tok start

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail "unexpected end of input"
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              members ((k, v) :: acc)
          | Some '}' ->
              advance st;
              List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}' at %d" st.pos
        in
        Obj (members [])
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              elements (v :: acc)
          | Some ']' ->
              advance st;
              List.rev (v :: acc)
          | _ -> fail "expected ',' or ']' at %d" st.pos
        in
        List (elements [])
      end
  | Some '"' -> String (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> parse_number st

let of_string s =
  let st = { s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail "trailing garbage at %d" st.pos;
  v

let of_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  of_string s

(* --- accessors --- *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

let rec path keys j =
  match keys with
  | [] -> Some j
  | k :: rest -> ( match member k j with Some v -> path rest v | None -> None)

let to_float = function
  | Some (Float f) -> Some f
  | Some (Bool b) -> Some (if b then 1.0 else 0.0)
  | _ -> None

let to_bool = function Some (Bool b) -> Some b | _ -> None

let to_string = function Some (String s) -> Some s | _ -> None

let to_list = function Some (List l) -> Some l | _ -> None
