(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven.

    The checksum that frames every {!Suu_store} log record: cheap
    enough to pay on each append, strong enough that a torn or
    bit-flipped tail is detected with overwhelming probability during
    the recovery scan.  Matches zlib's [crc32] (and therefore
    [python -c 'import zlib; zlib.crc32(...)']), so journals can be
    audited with stock tools. *)

val string : ?crc:int32 -> string -> int32
(** [string s] is the CRC-32 of the whole string; [string ~crc s]
    continues a running checksum (feed chunks in order). *)

val sub : ?crc:int32 -> string -> pos:int -> len:int -> int32
(** Checksum of [s.[pos .. pos+len-1]].  Raises [Invalid_argument] when
    the range is out of bounds. *)
