let mutex = Mutex.create ()

let counters : (string, Counter.t) Hashtbl.t = Hashtbl.create 32

let histograms : (string, Histogram.t) Hashtbl.t = Hashtbl.create 32

let locked f =
  Mutex.lock mutex;
  match f () with
  | v ->
      Mutex.unlock mutex;
      v
  | exception e ->
      Mutex.unlock mutex;
      raise e

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
          let c = Counter.create name in
          Hashtbl.add counters name c;
          c)

let histogram ?bounds name =
  locked (fun () ->
      match Hashtbl.find_opt histograms name with
      | Some h -> h
      | None ->
          let h = Histogram.create ~lock:mutex ?bounds name in
          Hashtbl.add histograms name h;
          h)

let observe c h v =
  locked (fun () ->
      Counter.incr c;
      Histogram.unsafe_record h v)

type snapshot = {
  counters : (string * int) list;
  histograms : (string * Histogram.t * Histogram.snapshot) list;
}

let snapshot () =
  locked (fun () ->
      let cs =
        Hashtbl.fold (fun k c acc -> (k, Counter.get c) :: acc) counters []
      in
      let hs =
        Hashtbl.fold
          (fun k h acc -> (k, h, Histogram.unsafe_snapshot h) :: acc)
          histograms []
      in
      { counters = List.sort compare cs;
        histograms =
          List.sort (fun (a, _, _) (b, _, _) -> compare a b) hs })

let render ?(prefix = "obs.") () =
  let { counters; histograms } = snapshot () in
  let ms v = Printf.sprintf "%.3f" (1000.0 *. v) in
  List.map
    (fun (name, v) -> (prefix ^ "counter." ^ name, string_of_int v))
    counters
  @ List.concat_map
      (fun (name, h, snap) ->
        let q p = ms (Histogram.quantile h snap p) in
        let base = prefix ^ "phase." ^ name in
        [ (base ^ ".count", string_of_int snap.Histogram.count);
          (base ^ ".mean_ms", ms (Histogram.mean snap));
          (base ^ ".p50_ms", q 0.5); (base ^ ".p95_ms", q 0.95);
          (base ^ ".p99_ms", q 0.99);
          (* Exact bucket counts so a downstream aggregator (the
             router's stats fan-out) can merge histograms losslessly
             instead of averaging pre-rendered quantiles. *)
          (base ^ ".raw", Histogram.raw_of_snapshot snap) ])
      histograms

let enabled_flag =
  Atomic.make
    (match Sys.getenv_opt "SUU_OBS" with
    | Some ("0" | "false" | "off") -> false
    | _ -> true)

let set_enabled b = Atomic.set enabled_flag b

let enabled () = Atomic.get enabled_flag

let reset_for_testing () =
  locked (fun () ->
      Hashtbl.reset counters;
      Hashtbl.reset histograms)
