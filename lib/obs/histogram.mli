(** Fixed-bucket latency/duration histograms with quantile estimates.

    Bucket upper bounds are fixed at creation (log-spaced from 1µs to
    50s by default), so counts from successive snapshots can be
    subtracted and histograms from different processes or scrapes are
    directly comparable — the reason production metric systems
    (Prometheus et al.) fix buckets rather than adapt them.

    A value [v] lands in the first bucket whose upper bound is [>= v]
    ([v <= 0] lands in the first bucket, values above the last bound in
    the overflow bucket).  Quantiles interpolate linearly inside the
    bucket, so they are estimates with relative error bounded by the
    bucket ratio (2–2.5x at the default spacing) and are monotone in the
    requested rank.

    Thread-safety: recording and snapshotting lock the histogram's
    mutex.  Histograms created through {!Registry.histogram} share the
    registry's single mutex, which is what makes one
    {!Registry.snapshot} a consistent cut across every metric at once
    (see ISSUE: the counter-vs-histogram race). *)

type t

type snapshot = {
  count : int;  (** total recorded values, including overflow *)
  sum : float;  (** sum of recorded values (clamped at 0 below) *)
  buckets : int array;  (** one count per bound, overflow at the end *)
  max : float;  (** largest recorded value ([0.] when empty) *)
}

val default_bounds : float array
(** Log-spaced upper bounds in seconds: {1, 2.5, 5} x 10^k from 1e-6
    to 50. *)

val create : ?lock:Mutex.t -> ?bounds:float array -> string -> t
(** [create name] is an empty histogram guarded by a fresh mutex (or
    [lock] when given — the registry passes its own so all registered
    histograms share one).  [bounds] must be strictly increasing and
    positive. *)

val name : t -> string

val bounds : t -> float array

val record : t -> float -> unit
(** Record one value (seconds, for span histograms).  Negative or NaN
    values are clamped to [0.] before they touch the buckets, the sum
    and the max, so every view of the histogram describes the same
    data.  Locks. *)

val unsafe_record : t -> float -> unit
(** Record without taking the lock: the caller must already hold the
    histogram's mutex (i.e. inside {!Registry.locked} for registered
    histograms).  Used to update a histogram and its paired counters in
    one critical section. *)

val snapshot : t -> snapshot
(** Consistent copy of the current counts.  Locks. *)

val unsafe_snapshot : t -> snapshot
(** Snapshot without locking; caller holds the mutex. *)

val quantile : t -> snapshot -> float -> float
(** [quantile t snap p] estimates the [p]-quantile ([0 <= p <= 1]) by
    linear interpolation inside the containing bucket.  Returns [0.] on
    an empty snapshot; ranks landing in the overflow bucket report the
    observed maximum (which is necessarily above the last finite bound),
    not the last bound — a tail beyond the bucket range stays visible
    instead of being silently capped.  Monotone in [p]. *)

val mean : snapshot -> float
(** [sum /. count], [0.] when empty. *)

val merge : snapshot -> snapshot -> snapshot
(** Bucket-wise exact sum of two snapshots with the same bucket layout
    (counts and sums add, max takes the larger).  Because bounds are
    fixed at creation, merging snapshots from different processes with
    the same layout is exact — the merged quantiles are what one
    histogram would have reported had it recorded every value.
    Raises [Invalid_argument] when the bucket arrays differ in length. *)

val raw_of_snapshot : snapshot -> string
(** One-line wire form ["<count> <sum> <max> <b0> ... <bn>"] with
    [%.17g] floats, so [snapshot_of_raw (raw_of_snapshot s)] is exact.
    Lets a router merge per-shard histograms losslessly. *)

val snapshot_of_raw : string -> snapshot option
(** Inverse of {!raw_of_snapshot}; [None] on malformed input (wrong
    field count, non-numeric, or negative counts). *)
