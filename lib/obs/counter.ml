type t = { name : string; cell : int Atomic.t }

let create name = { name; cell = Atomic.make 0 }

let name t = t.name

let incr t = Atomic.incr t.cell

let add t k =
  if k < 0 then invalid_arg "Counter.add: negative increment";
  ignore (Atomic.fetch_and_add t.cell k)

let get t = Atomic.get t.cell
