(** Process-wide metric registry with consistent snapshots.

    One registry per process: counters and histograms are interned by
    name, so the engine, LP layer, plan cache and server all publish
    into the same namespace and a single {!snapshot} describes the whole
    process.

    Consistency model: the registry owns ONE mutex.  Every registered
    histogram is created with that mutex as its lock, {!observe} updates
    a counter/histogram pair inside one critical section of it, and
    {!snapshot} reads everything inside the same critical section.  A
    snapshot therefore can never witness a histogram total that
    disagrees with a counter updated in the same [observe] — the
    seqlock-style fix for the stats race.  Plain {!Counter.incr} on a
    registered counter remains lock-free (single-cell atomicity needs no
    lock).

    Recording can be disabled process-wide ({!set_enabled}); the bench
    harness uses this to measure instrumentation overhead.  Disabling
    stops {!Span} recording; counters and direct histogram records are
    so cheap they are left unconditional. *)

val counter : string -> Counter.t
(** Intern: the counter named [name], created at zero on first use. *)

val histogram : ?bounds:float array -> string -> Histogram.t
(** Intern: the histogram named [name], sharing the registry mutex.
    [bounds] applies only on first creation. *)

val locked : (unit -> 'a) -> 'a
(** Run [f] holding the registry mutex.  Inside, use
    {!Histogram.unsafe_record} / {!Histogram.unsafe_snapshot} on
    registered histograms; never call their locking variants (the mutex
    is not reentrant). *)

val observe : Counter.t -> Histogram.t -> float -> unit
(** Bump the counter and record into the histogram as one atomic step
    with respect to {!snapshot}.  The histogram must be registered (or
    share the registry mutex). *)

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  histograms : (string * Histogram.t * Histogram.snapshot) list;
      (** sorted by name; the histogram is included for
          {!Histogram.quantile} *)
}

val snapshot : unit -> snapshot
(** One consistent cut across every registered metric, deterministic
    order. *)

val render : ?prefix:string -> unit -> (string * string) list
(** Flatten a snapshot for text transport: each counter as
    [<prefix>counter.<name>], each histogram as
    [<prefix>phase.<name>.{count,mean_ms,p50_ms,p95_ms,p99_ms,raw}]
    (quantiles in milliseconds, [%.3f]; [raw] is
    {!Histogram.raw_of_snapshot} for lossless downstream merging).
    Default prefix ["obs."]. *)

val set_enabled : bool -> unit
(** Master switch consulted by {!Span}; on by default, overridable at
    startup with [SUU_OBS=0]. *)

val enabled : unit -> bool

val reset_for_testing : unit -> unit
(** Drop every registered metric.  Tests only. *)
