(** Monotonic time source for all span and phase measurements.

    Wall-clock time ([Unix.gettimeofday]) can step backwards under NTP;
    a span timed across such a step would report a negative or wildly
    wrong duration.  Everything in [Suu_obs] therefore timestamps with
    [CLOCK_MONOTONIC], whose epoch is arbitrary but whose differences
    are real elapsed time. *)

val now_ns : unit -> int64
(** Nanoseconds on the process monotonic clock (arbitrary epoch). *)

val ns_to_s : int64 -> float
(** Convert a nanosecond count (typically a difference of two
    {!now_ns} reads) to seconds. *)

val elapsed_s : since:int64 -> float
(** [elapsed_s ~since] is the seconds elapsed since the {!now_ns}
    reading [since]. *)
