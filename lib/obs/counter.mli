(** Lock-free monotonically increasing counters.

    A counter is a single [Atomic.t] cell: increments from any thread or
    domain are wait-free and never lost.  A counter read on its own is
    exact; when a counter must stay consistent with a histogram (e.g. a
    request count vs. its latency distribution), update both through
    {!Registry.observe} so a {!Registry.snapshot} can never split the
    pair. *)

type t

val create : string -> t
(** [create name] is a fresh counter at zero.  Prefer
    {!Registry.counter}, which interns by name. *)

val name : t -> string

val incr : t -> unit

val add : t -> int -> unit
(** [add t k] adds [k] (>= 0) in one atomic operation — use it to batch
    per-run totals instead of incrementing in a hot loop. *)

val get : t -> int
