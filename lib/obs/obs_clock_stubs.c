/* Monotonic clock for span timing.  CLOCK_MONOTONIC is immune to wall
   clock steps (NTP, manual adjustment), so span durations can never go
   negative and successive reads order correctly within a process. */

#include <time.h>
#include <caml/mlvalues.h>
#include <caml/alloc.h>

CAMLprim value suu_obs_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000LL + ts.tv_nsec);
}
