(** Monotonic-clock spans with parent/child nesting.

    A span measures one phase of work.  Every finished span records its
    duration into the registry histogram of the same name (so [stats]
    and the bench harness see p50/p95/p99 per phase), and — when
    [SUU_TRACE] is on — emits a JSONL line with its parent span id, so a
    request's trace reconstructs as a tree.

    Nesting is ambient per thread: {!with_span} inside {!with_span}
    parents automatically.  The ambient context does not cross
    [Thread.create] or [Domain.spawn]; capture {!current} on the
    spawning side and re-anchor with {!with_ambient} in the worker
    (see [Suu_sim.Parallel] and the server worker pool).

    Cost when [SUU_TRACE] is off: two monotonic clock reads plus one
    mutex-guarded histogram record per span — nanoseconds, paid per
    phase (never per simulator step).  {!Registry.set_enabled}[ false]
    reduces a span to just calling its body, which is how the bench
    harness measures instrumentation overhead. *)

type id = int

val fresh_id : unit -> id
(** A process-unique span id, for manual spans assembled with
    {!record}. *)

val current : unit -> id option
(** The innermost live span of this thread ([None] when tracing is off
    — ids are only tracked for trace emission). *)

val with_ambient : id option -> (unit -> 'a) -> 'a
(** Run [f] with the ambient parent forced to [id] — the bridge for
    crossing threads and domains. *)

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Time [f] as a span named [name]: histogram-record the duration and
    trace-emit under the ambient parent.  Exceptions propagate; the
    span still records. *)

val record :
  ?attrs:(string * string) list ->
  ?id:id ->
  ?parent:id ->
  name:string ->
  start_ns:int64 ->
  stop_ns:int64 ->
  unit ->
  unit
(** Manual span from explicit clock readings, for phases whose start
    and end live in different functions (queue wait) or threads.  When
    [parent] is omitted the ambient parent applies; [id] defaults to a
    fresh id. *)
