external now_ns : unit -> int64 = "suu_obs_monotonic_ns"

let ns_to_s ns = Int64.to_float ns *. 1e-9

let elapsed_s ~since = ns_to_s (Int64.sub (now_ns ()) since)
