type id = int

let next_id = Atomic.make 1

let fresh_id () = Atomic.fetch_and_add next_id 1

(* Ambient innermost span, per thread.  Systhreads within one domain
   share domain-local state, so the context is keyed by thread id (in
   OCaml 5 thread ids are process-unique).  Only maintained while
   tracing: histograms don't need parents. *)
let ctx_lock = Mutex.create ()

let ctx : (int, id list) Hashtbl.t = Hashtbl.create 32

let self () = Thread.id (Thread.self ())

let current () =
  if not (Trace_sink.enabled ()) then None
  else begin
    Mutex.lock ctx_lock;
    let top =
      match Hashtbl.find_opt ctx (self ()) with
      | Some (s :: _) -> Some s
      | _ -> None
    in
    Mutex.unlock ctx_lock;
    top
  end

let set_stack stack =
  Mutex.lock ctx_lock;
  (match stack with
  | [] -> Hashtbl.remove ctx (self ())
  | s -> Hashtbl.replace ctx (self ()) s);
  Mutex.unlock ctx_lock

let get_stack () =
  Mutex.lock ctx_lock;
  let s =
    match Hashtbl.find_opt ctx (self ()) with Some s -> s | None -> []
  in
  Mutex.unlock ctx_lock;
  s

let with_ambient id f =
  if not (Trace_sink.enabled ()) then f ()
  else begin
    let saved = get_stack () in
    set_stack (match id with Some i -> [ i ] | None -> []);
    Fun.protect ~finally:(fun () -> set_stack saved) f
  end

let dur start stop = Clock.ns_to_s (Int64.sub stop start)

let record ?(attrs = []) ?id ?parent ~name ~start_ns ~stop_ns () =
  if Registry.enabled () then begin
    Histogram.record (Registry.histogram name) (dur start_ns stop_ns);
    if Trace_sink.enabled () then begin
      let id = match id with Some i -> i | None -> fresh_id () in
      let parent =
        match parent with Some _ as p -> p | None -> current ()
      in
      Trace_sink.emit ~name ~id ~parent ~start_ns
        ~dur_ns:(Int64.sub stop_ns start_ns)
        ~attrs
    end
  end

let with_span ?(attrs = []) name f =
  if not (Registry.enabled ()) then f ()
  else if not (Trace_sink.enabled ()) then begin
    (* Fast path: no ambient bookkeeping, just time and record. *)
    let t0 = Clock.now_ns () in
    let finish () =
      Histogram.record (Registry.histogram name)
        (dur t0 (Clock.now_ns ()))
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end
  else begin
    let id = fresh_id () in
    let parent =
      match get_stack () with s :: _ -> Some s | [] -> None
    in
    let saved = get_stack () in
    set_stack (id :: saved);
    let t0 = Clock.now_ns () in
    let finish () =
      let t1 = Clock.now_ns () in
      set_stack saved;
      Histogram.record (Registry.histogram name) (dur t0 t1);
      Trace_sink.emit ~name ~id ~parent ~start_ns:t0
        ~dur_ns:(Int64.sub t1 t0) ~attrs
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end
