type sink = Disabled | Channel of out_channel | Test_buffer of Buffer.t

let lock = Mutex.create ()

let sink_of_env () =
  match Sys.getenv_opt "SUU_TRACE" with
  | Some ("1" | "true" | "on") ->
      let path =
        match Sys.getenv_opt "SUU_TRACE_FILE" with
        | Some p when p <> "" -> p
        | _ -> "suu-trace.jsonl"
      in
      let oc =
        open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 path
      in
      at_exit (fun () -> try close_out oc with Sys_error _ -> ());
      Channel oc
  | _ -> Disabled

let sink = ref None (* None = not yet initialized from the env *)

let current_sink () =
  match !sink with
  | Some s -> s
  | None ->
      let s = sink_of_env () in
      sink := Some s;
      s

let enabled () =
  match current_sink () with Disabled -> false | _ -> true

(* Span names and attribute strings are ours (short identifiers), but
   attrs may carry policy names etc., so escape properly anyway. *)
let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let emit ~name ~id ~parent ~start_ns ~dur_ns ~attrs =
  match current_sink () with
  | Disabled -> ()
  | s ->
      let buf = Buffer.create 160 in
      Buffer.add_string buf "{\"name\":\"";
      escape buf name;
      Buffer.add_string buf (Printf.sprintf "\",\"id\":%d" id);
      (match parent with
      | Some p -> Buffer.add_string buf (Printf.sprintf ",\"parent\":%d" p)
      | None -> ());
      Buffer.add_string buf
        (Printf.sprintf ",\"thread\":%d" (Thread.id (Thread.self ())));
      Buffer.add_string buf
        (Printf.sprintf ",\"start_ns\":%Ld,\"dur_ns\":%Ld" start_ns dur_ns);
      if attrs <> [] then begin
        Buffer.add_string buf ",\"attrs\":{";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            escape buf k;
            Buffer.add_string buf "\":\"";
            escape buf v;
            Buffer.add_char buf '"')
          attrs;
        Buffer.add_char buf '}'
      end;
      Buffer.add_string buf "}\n";
      let line = Buffer.contents buf in
      Mutex.lock lock;
      (match s with
      | Channel oc ->
          (try
             output_string oc line;
             flush oc
           with Sys_error _ -> ())
      | Test_buffer b -> Buffer.add_string b line
      | Disabled -> ());
      Mutex.unlock lock

let use_buffer_for_testing b =
  Mutex.lock lock;
  (match b with
  | Some b -> sink := Some (Test_buffer b)
  | None -> sink := None);
  Mutex.unlock lock
