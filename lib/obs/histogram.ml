type t = {
  name : string;
  bounds : float array;
  counts : int array; (* one per bound, plus overflow at the end *)
  mutable sum : float;
  mutable count : int;
  mutable vmax : float; (* largest recorded value; 0 when empty *)
  lock : Mutex.t;
}

type snapshot = { count : int; sum : float; buckets : int array; max : float }

(* {1, 2.5, 5} x 10^k seconds, 1us .. 50s.  Wide enough for a single
   LP solve and fine enough to separate a 3us from a 30us span. *)
let default_bounds =
  let decades = [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.0; 10.0 |] in
  let steps = [| 1.0; 2.5; 5.0 |] in
  Array.concat
    (Array.to_list
       (Array.map (fun d -> Array.map (fun s -> s *. d) steps) decades))

let validate_bounds bounds =
  if Array.length bounds = 0 then
    invalid_arg "Histogram.create: empty bounds";
  Array.iteri
    (fun i b ->
      if b <= 0.0 || (i > 0 && b <= bounds.(i - 1)) then
        invalid_arg
          "Histogram.create: bounds must be positive and strictly increasing")
    bounds

let create ?lock ?(bounds = default_bounds) name =
  validate_bounds bounds;
  let lock = match lock with Some l -> l | None -> Mutex.create () in
  { name; bounds = Array.copy bounds;
    counts = Array.make (Array.length bounds + 1) 0; sum = 0.0; count = 0;
    vmax = 0.0; lock }

let name t = t.name

let bounds t = t.bounds

(* First bucket whose bound is >= v (binary search); overflow past the
   last bound.  v <= 0 lands in bucket 0. *)
let bucket_index t v =
  let nb = Array.length t.bounds in
  if v <= t.bounds.(0) then 0
  else if v > t.bounds.(nb - 1) then nb
  else begin
    (* invariant: bounds.(lo) < v <= bounds.(hi) *)
    let lo = ref 0 and hi = ref (nb - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if v <= t.bounds.(mid) then hi := mid else lo := mid
    done;
    !hi
  end

(* A negative (or NaN) input is clamped to zero ONCE, so the bucket
   placement, the sum and the running max all describe the same value —
   previously the sum clamped but bucket 0 counted the raw record, so a
   burst of negative inputs dragged the mean while the buckets showed
   plausible zeros. *)
let unsafe_record t v =
  let v = if v > 0.0 then v else 0.0 in
  let i = bucket_index t v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v > t.vmax then t.vmax <- v

let record t v =
  Mutex.lock t.lock;
  unsafe_record t v;
  Mutex.unlock t.lock

let unsafe_snapshot (t : t) =
  { count = t.count; sum = t.sum; buckets = Array.copy t.counts;
    max = t.vmax }

let snapshot t =
  Mutex.lock t.lock;
  let s = unsafe_snapshot t in
  Mutex.unlock t.lock;
  s

let mean snap =
  if snap.count = 0 then 0.0 else snap.sum /. float_of_int snap.count

(* Merging is exact because bucket layouts are fixed at creation: two
   snapshots with the same number of buckets came from histograms with
   the same bounds (all registry histograms use [default_bounds]), so
   adding counts bucket-wise is the same as having recorded every value
   into one histogram. *)
let merge a b =
  if Array.length a.buckets <> Array.length b.buckets then
    invalid_arg "Histogram.merge: bucket layouts differ";
  { count = a.count + b.count;
    sum = a.sum +. b.sum;
    buckets = Array.init (Array.length a.buckets)
        (fun i -> a.buckets.(i) + b.buckets.(i));
    max = Float.max a.max b.max }

(* Wire codec for snapshots: "<count> <sum> <max> <b0> ... <bn>" with
   %.17g floats so a decode(encode(s)) round-trip is exact.  Used by the
   router to merge per-shard histograms without losing bucket counts to
   the quantile rendering. *)
let raw_of_snapshot s =
  let buf = Buffer.create (16 * (Array.length s.buckets + 3)) in
  Buffer.add_string buf (string_of_int s.count);
  Buffer.add_char buf ' ';
  Buffer.add_string buf (Printf.sprintf "%.17g" s.sum);
  Buffer.add_char buf ' ';
  Buffer.add_string buf (Printf.sprintf "%.17g" s.max);
  Array.iter
    (fun b ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int b))
    s.buckets;
  Buffer.contents buf

let snapshot_of_raw line =
  match String.split_on_char ' ' (String.trim line) with
  | count :: sum :: vmax :: buckets when buckets <> [] -> (
      try
        let count = int_of_string count in
        let sum = float_of_string sum in
        let max = float_of_string vmax in
        let buckets = Array.of_list (List.map int_of_string buckets) in
        if count < 0 || Array.exists (fun b -> b < 0) buckets then None
        else Some { count; sum; buckets; max }
      with Failure _ -> None)
  | _ -> None

let quantile t snap p =
  if p < 0.0 || p > 1.0 || Float.is_nan p then
    invalid_arg "Histogram.quantile: p must be in [0, 1]";
  if snap.count = 0 then 0.0
  else begin
    let nb = Array.length t.bounds in
    (* Rank in [0, count]; find the bucket holding it cumulatively. *)
    let rank = p *. float_of_int snap.count in
    let i = ref 0 and cum = ref 0 in
    while
      !i <= nb
      && float_of_int (!cum + snap.buckets.(min !i nb)) < rank
    do
      cum := !cum + snap.buckets.(!i);
      incr i
    done;
    if !i >= nb then
      (* Overflow: a rank lands here only when some value exceeded the
         last bound, so the observed max is both finite and above that
         bound.  Reporting it (instead of capping at bounds.(nb-1))
         keeps a 5-minute stall from masquerading as a 50 s p99. *)
      Float.max snap.max t.bounds.(nb - 1)
    else begin
      let lower = if !i = 0 then 0.0 else t.bounds.(!i - 1) in
      let upper = t.bounds.(!i) in
      let inbucket = snap.buckets.(!i) in
      if inbucket = 0 then upper
      else
        let frac = (rank -. float_of_int !cum) /. float_of_int inbucket in
        lower +. ((upper -. lower) *. Float.max 0.0 (Float.min 1.0 frac))
    end
  end
