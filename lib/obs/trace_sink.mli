(** JSONL trace sink, gated by [SUU_TRACE].

    When [SUU_TRACE] is set to [1]/[true]/[on], every finished span
    emits one JSON object per line to [SUU_TRACE_FILE] (default
    [suu-trace.jsonl] in the working directory):

    {v
      {"name":"server.execute","id":12,"parent":9,"thread":4,
       "start_ns":812345678,"dur_ns":51234,
       "attrs":{"policy":"suu-i-sem"}}
    v}

    [start_ns] is on the process monotonic clock (arbitrary epoch;
    subtract the first line's to rebase).  [parent] is absent on root
    spans.  Lines are flushed as written — a trace survives a crash up
    to the last complete span.

    Tracing is a debug instrument: the line write takes a sink mutex, so
    leave it off ([SUU_TRACE] unset) in production serving. *)

val enabled : unit -> bool
(** True when a sink is active (env-gated, or a test buffer). *)

val emit :
  name:string ->
  id:int ->
  parent:int option ->
  start_ns:int64 ->
  dur_ns:int64 ->
  attrs:(string * string) list ->
  unit
(** Write one span line; no-op when disabled. *)

val use_buffer_for_testing : Buffer.t option -> unit
(** Redirect emission into a buffer (or restore the env-configured
    sink with [None]).  Tests only. *)
