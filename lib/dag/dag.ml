type t = {
  n : int;
  pred : int list array; (* ascending *)
  succ : int list array; (* ascending *)
  nedges : int;
  (* Packed CSR mirrors of [pred]/[succ] for allocation-free traversal on
     hot paths (the simulator's incremental eligibility updates).  Node
     [j]'s neighbours are [tgt.(off.(j)) .. tgt.(off.(j+1) - 1)], in the
     same ascending order as the lists. *)
  pred_off : int array; (* n + 1 offsets *)
  pred_tgt : int array;
  succ_off : int array;
  succ_tgt : int array;
}

(* Build the CSR arrays from ascending adjacency lists. *)
let csr_of_lists n adj nedges =
  let off = Array.make (n + 1) 0 in
  let tgt = Array.make nedges 0 in
  let k = ref 0 in
  for j = 0 to n - 1 do
    off.(j) <- !k;
    List.iter
      (fun v ->
        tgt.(!k) <- v;
        incr k)
      adj.(j)
  done;
  off.(n) <- !k;
  (off, tgt)

let make_internal n pred succ nedges =
  let pred_off, pred_tgt = csr_of_lists n pred nedges in
  let succ_off, succ_tgt = csr_of_lists n succ nedges in
  { n; pred; succ; nedges; pred_off; pred_tgt; succ_off; succ_tgt }

let empty n =
  if n < 0 then invalid_arg "Dag.empty: negative size";
  make_internal n (Array.make (max n 1) []) (Array.make (max n 1) []) 0

let size t = t.n
let num_edges t = t.nedges
let preds t j = t.pred.(j)
let succs t j = t.succ.(j)
let in_degree t j = t.pred_off.(j + 1) - t.pred_off.(j)
let out_degree t j = t.succ_off.(j + 1) - t.succ_off.(j)
let is_edgeless t = t.nedges = 0

let pred_csr t = (t.pred_off, t.pred_tgt)
let succ_csr t = (t.succ_off, t.succ_tgt)

let iter_succs t j f =
  for k = t.succ_off.(j) to t.succ_off.(j + 1) - 1 do
    f t.succ_tgt.(k)
  done

let iter_preds t j f =
  for k = t.pred_off.(j) to t.pred_off.(j + 1) - 1 do
    f t.pred_tgt.(k)
  done

let in_degrees t =
  Array.init t.n (fun j -> t.pred_off.(j + 1) - t.pred_off.(j))

let edges t =
  let acc = ref [] in
  for a = t.n - 1 downto 0 do
    List.iter (fun b -> acc := (a, b) :: !acc) (List.rev t.succ.(a))
  done;
  !acc

let sources t =
  let acc = ref [] in
  for j = t.n - 1 downto 0 do
    if t.pred.(j) = [] then acc := j :: !acc
  done;
  !acc

(* Kahn's algorithm; raises on cycles.  Smallest index first for
   determinism (a simple priority selection over a boolean frontier). *)
let topo_exn n pred succ =
  let indeg = Array.map List.length pred in
  let order = Array.make n 0 in
  let module H = Set.Make (Int) in
  let frontier = ref H.empty in
  for j = 0 to n - 1 do
    if indeg.(j) = 0 then frontier := H.add j !frontier
  done;
  let k = ref 0 in
  while not (H.is_empty !frontier) do
    let j = H.min_elt !frontier in
    frontier := H.remove j !frontier;
    order.(!k) <- j;
    incr k;
    List.iter
      (fun b ->
        indeg.(b) <- indeg.(b) - 1;
        if indeg.(b) = 0 then frontier := H.add b !frontier)
      succ.(j)
  done;
  if !k < n then invalid_arg "Dag.of_edges: cycle detected";
  order

let of_edges ~n edge_list =
  if n < 0 then invalid_arg "Dag.of_edges: negative size";
  let seen = Hashtbl.create (List.length edge_list) in
  let pred = Array.make (max n 1) [] in
  let succ = Array.make (max n 1) [] in
  let count = ref 0 in
  List.iter
    (fun (a, b) ->
      if a < 0 || a >= n || b < 0 || b >= n then
        invalid_arg "Dag.of_edges: node out of range";
      if a = b then invalid_arg "Dag.of_edges: self-loop";
      if not (Hashtbl.mem seen (a, b)) then begin
        Hashtbl.add seen (a, b) ();
        pred.(b) <- a :: pred.(b);
        succ.(a) <- b :: succ.(a);
        incr count
      end)
    edge_list;
  Array.iteri (fun j l -> pred.(j) <- List.sort compare l) pred;
  Array.iteri (fun j l -> succ.(j) <- List.sort compare l) succ;
  let (_ : int array) = topo_exn n pred succ in
  make_internal n pred succ !count

let topological_order t = topo_exn t.n t.pred t.succ

let eligible t ~completed j =
  List.for_all (fun p -> completed.(p)) t.pred.(j)

let components t =
  let label = Array.make t.n (-1) in
  let next = ref 0 in
  let stack = Stack.create () in
  for start = 0 to t.n - 1 do
    if label.(start) < 0 then begin
      let c = !next in
      incr next;
      Stack.push start stack;
      while not (Stack.is_empty stack) do
        let v = Stack.pop stack in
        if label.(v) < 0 then begin
          label.(v) <- c;
          List.iter (fun u -> if label.(u) < 0 then Stack.push u stack)
            t.pred.(v);
          List.iter (fun u -> if label.(u) < 0 then Stack.push u stack)
            t.succ.(v)
        end
      done
    end
  done;
  label
