(** Directed acyclic graphs of precedence constraints.

    Nodes are jobs [0 .. size - 1]; an edge [(a, b)] means job [a] must
    complete before job [b] becomes eligible (the paper's dag [G]). *)

type t

val empty : int -> t
(** [empty n] is the edgeless dag on [n] jobs (independent jobs). *)

val of_edges : n:int -> (int * int) list -> t
(** [of_edges ~n edges] builds a dag.  Duplicate edges are collapsed.
    Raises [Invalid_argument] if a node is out of range, an edge is a
    self-loop, or the graph has a cycle. *)

val size : t -> int
(** Number of jobs. *)

val num_edges : t -> int

val preds : t -> int -> int list
(** Direct predecessors, ascending. *)

val succs : t -> int -> int list
(** Direct successors, ascending. *)

val in_degree : t -> int -> int
val out_degree : t -> int -> int

val pred_csr : t -> int array * int array
(** [(off, tgt) = pred_csr t]: packed predecessor adjacency.  Node [j]'s
    predecessors are [tgt.(off.(j)) .. tgt.(off.(j + 1) - 1)], ascending —
    the same contents as {!preds} without per-node list cells, for
    allocation-free traversal on hot paths.  The arrays are owned by [t]:
    treat as read-only. *)

val succ_csr : t -> int array * int array
(** Packed successor adjacency; see {!pred_csr}. *)

val iter_preds : t -> int -> (int -> unit) -> unit
(** [iter_preds t j f] applies [f] to each direct predecessor of [j],
    ascending, without allocating. *)

val iter_succs : t -> int -> (int -> unit) -> unit
(** [iter_succs t j f] applies [f] to each direct successor of [j],
    ascending, without allocating. *)

val in_degrees : t -> int array
(** [in_degrees t] is a fresh array of every node's in-degree — the
    initial remaining-predecessor counters for incremental eligibility
    tracking (decrement on completion; a node becomes eligible when its
    counter reaches zero). *)

val edges : t -> (int * int) list
(** All edges, in lexicographic order. *)

val is_edgeless : t -> bool

val topological_order : t -> int array
(** A topological order of the jobs (Kahn's algorithm; deterministic:
    smallest-index-first). *)

val sources : t -> int list
(** Jobs with no predecessors (initially eligible jobs), ascending. *)

val eligible : t -> completed:bool array -> int -> bool
(** [eligible t ~completed j] is true when every predecessor of [j] is
    completed (direct predecessors suffice: their own eligibility chains
    the rest). *)

val components : t -> int array
(** Weakly-connected component label per node (labels are dense from 0). *)
