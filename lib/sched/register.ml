module R = Suu_core.Policy_registry

let lock = Mutex.create ()
let done_ = ref false

let ensure () =
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () ->
      if not !done_ then begin
        done_ := true;
        R.register
          { R.name = "lzf";
            summary = "largest-Z-ratio-first greedy (online, no LP)";
            guarantee = "0.8531-approximate (independent, uniform machines)";
            lp_free = true; shape = R.Any_shape;
            build = (fun ~solver:_ inst -> Lzf.policy inst) };
        R.register
          { R.name = "backfill";
            summary = "EASY backfill + per-class runtime prediction";
            guarantee = "heuristic"; lp_free = true; shape = R.Any_shape;
            build = (fun ~solver:_ inst -> Backfill.policy inst) }
      end)
