module Instance = Suu_core.Instance
module Policy = Suu_core.Policy

let z_ratio inst j =
  let q = Instance.q inst (Instance.best_machine inst j) j in
  if q <= 0.0 then infinity else (1.0 -. q) /. q

let policy inst =
  let m = Instance.m inst and n = Instance.n inst in
  let z = Array.init n (fun j -> z_ratio inst j) in
  (* Rank once: Z descending, index ascending on ties — the whole
     ordering is data-independent, so replays can never diverge. *)
  let order = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      match Float.compare z.(b) z.(a) with 0 -> compare a b | c -> c)
    order;
  (* Per-job machine ranking, precomputed: capable machines (l > 0)
     sorted by l descending, index ascending on ties.  The hot loop
     then walks plain int arrays — no per-step [log]. *)
  let mrank =
    Array.init n (fun j ->
        let ms =
          List.filter
            (fun i -> Instance.log_failure inst i j > 0.0)
            (List.init m Fun.id)
        in
        let ms =
          List.sort
            (fun a b ->
              match
                Float.compare
                  (Instance.log_failure inst b j)
                  (Instance.log_failure inst a j)
              with
              | 0 -> compare a b
              | c -> c)
            ms
        in
        Array.of_list ms)
  in
  Policy.make ~name:"lzf" ~fresh:(fun _rng ->
      (* Scratch per stepper: executions run concurrently on domains. *)
      let buf = Array.make m (-1) in
      let active = Array.make n 0 in
      let mfree = Array.make m true in
      fun ~time:_ ~remaining ~eligible ->
        let k = ref 0 in
        Array.iter
          (fun j ->
            if remaining.(j) && eligible.(j) then begin
              active.(!k) <- j;
              incr k
            end)
          order;
        Array.fill buf 0 m (-1);
        if !k > 0 then begin
          Array.fill mfree 0 m true;
          let nfree = ref m in
          (* Passes over the ranked jobs, one machine per job per pass:
             machines spread across high-Z jobs first, then stack.  A
             pass that assigns nothing means every free machine has
             q = 1 on every active job — idle the rest. *)
          let progress = ref true in
          while !nfree > 0 && !progress do
            progress := false;
            for idx = 0 to !k - 1 do
              if !nfree > 0 then begin
                let j = active.(idx) in
                (* First free machine in rank order = best free. *)
                let ms = mrank.(j) in
                let c = Array.length ms in
                let p = ref 0 in
                while !p < c && not mfree.(ms.(!p)) do
                  incr p
                done;
                if !p < c then begin
                  let i = ms.(!p) in
                  buf.(i) <- j;
                  mfree.(i) <- false;
                  decr nfree;
                  progress := true
                end
              end
            done
          done
        end;
        buf)
