(** Hook [Suu_sched]'s policies into {!Suu_core.Policy_registry}.

    Registration must be explicit: OCaml's linker drops a library
    module nothing references, so relying on this module's initializer
    as a side effect would silently lose the policies in any executable
    that never names [Suu_sched].  Every entry point that serves
    policies by name (the server's [Service.create], the CLI, the bench
    harness, the tests) calls {!ensure} once instead. *)

val ensure : unit -> unit
(** Register ["lzf"] and ["backfill"] (idempotent, thread-safe). *)
