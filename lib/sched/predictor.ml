module Instance = Suu_core.Instance
module Rng = Suu_prng.Rng

type cls = {
  window : float array; (* ring buffer of the last-k runtimes *)
  mutable filled : int; (* min(observations, window length) *)
  mutable next : int; (* ring write position *)
  mutable sum : float; (* sum of the [filled] live entries *)
  mutable total : int; (* observations ever *)
  initial : float; (* jittered model estimate, used while empty *)
}

type t = { class_of : int array; (* job -> class (best machine) *)
           classes : cls array }

let ln2 = Float.log 2.0
let e_threshold = 1.0 /. ln2 (* E[-log2 r], r ~ U(0,1) *)

let execution_seed ~digest ~policy rng =
  let h1 = Hashtbl.hash digest and h2 = Hashtbl.hash policy in
  (Int64.to_int (Rng.bits64 rng) lxor (h1 * 0x9e3779b1)
  lxor (h2 * 0x85ebca6b))
  land max_int

let create ?(window = 8) ?(jitter = 0.1) inst ~seed =
  if window < 1 then invalid_arg "Predictor.create: window must be >= 1";
  if jitter < 0.0 then invalid_arg "Predictor.create: jitter must be >= 0";
  let n = Instance.n inst and m = Instance.m inst in
  let class_of = Array.init n (fun j -> Instance.best_machine inst j) in
  let rng = Rng.create ~seed in
  (* One jitter factor per class, drawn in machine order so the stream
     is independent of which classes are inhabited. *)
  let factor = Array.init m (fun _ -> 1.0 +. (jitter *. Rng.range rng ~lo:(-1.0) ~hi:1.0)) in
  (* Model estimate per class: expected steps of a threshold-E[w] job
     on its best machine.  A zero-failure machine (l = infinity)
     completes any job in one step. *)
  let model i =
    let best = ref 0.0 in
    for j = 0 to n - 1 do
      if class_of.(j) = i then begin
        let l = Instance.log_failure inst i j in
        let est = if l = infinity then 1.0 else e_threshold /. l in
        (* class estimate: mean over member jobs *)
        best := !best +. est
      end
    done;
    let members = Array.fold_left (fun a c -> if c = i then a + 1 else a) 0 class_of in
    if members = 0 then 1.0 else Float.max 1.0 (!best /. float_of_int members)
  in
  let classes =
    Array.init m (fun i ->
        { window = Array.make window 0.0; filled = 0; next = 0; sum = 0.0;
          total = 0; initial = Float.max 1.0 (model i *. factor.(i)) })
  in
  { class_of; classes }

let predict t j =
  let c = t.classes.(t.class_of.(j)) in
  if c.filled = 0 then c.initial
  else Float.max 1.0 (c.sum /. float_of_int c.filled)

let observe t ~job ~runtime =
  let c = t.classes.(t.class_of.(job)) in
  let r = float_of_int (max 1 runtime) in
  let k = Array.length c.window in
  if c.filled = k then c.sum <- c.sum -. c.window.(c.next)
  else c.filled <- c.filled + 1;
  c.window.(c.next) <- r;
  c.sum <- c.sum +. r;
  c.next <- (c.next + 1) mod k;
  c.total <- c.total + 1

let observed t j = (t.classes.(t.class_of.(j))).total
