module Instance = Suu_core.Instance
module Policy = Suu_core.Policy

type event =
  | Started of { job : int; time : int; backfilled : bool }
  | Preempted of { job : int; time : int }

let capable inst i j = Instance.q inst i j < 1.0

let capable_count inst j =
  let m = Instance.m inst in
  let c = ref 0 in
  for i = 0 to m - 1 do
    if capable inst i j then incr c
  done;
  !c

let default_width inst j =
  min (capable_count inst j) (max 1 (Instance.m inst / 2))

let policy ?width ?on_event inst =
  let m = Instance.m inst and n = Instance.n inst in
  let digest =
    Digest.string (Suu_core.Instance_io.to_string inst)
  in
  let widths =
    Array.init n (fun j ->
        let cap = capable_count inst j in
        match width with
        | None -> max 1 (default_width inst j)
        | Some w -> min cap (max 1 (w j)))
  in
  (* Per-job machine ranking (capable machines by l descending, index
     ascending) and capability mask, precomputed so the hot path never
     calls [log]. *)
  let mrank =
    Array.init n (fun j ->
        Array.of_list
          (List.sort
             (fun a b ->
               match
                 Float.compare
                   (Instance.log_failure inst b j)
                   (Instance.log_failure inst a j)
               with
               | 0 -> compare a b
               | c -> c)
             (List.filter
                (fun i -> capable inst i j)
                (List.init m Fun.id))))
  in
  let capable_mask =
    Array.init n (fun j ->
        Array.init m (fun i -> capable inst i j))
  in
  let emit e = match on_event with None -> () | Some f -> f e in
  Policy.make ~name:"backfill" ~fresh:(fun rng ->
      let pred =
        Predictor.create inst
          ~seed:(Predictor.execution_seed ~digest ~policy:"backfill" rng)
      in
      (* All state is per-execution: steppers run concurrently. *)
      let machine_of = Array.make m (-1) in
      let running = Array.make n false in
      let bfilled = Array.make n false in
      let started = Array.make n (-1) in
      let prev_remaining = Array.make n false in
      let first = ref true in
      let free_job j =
        for i = 0 to m - 1 do
          if machine_of.(i) = j then machine_of.(i) <- -1
        done;
        running.(j) <- false;
        bfilled.(j) <- false
      in
      (* Pick [w] capable machines for [j] from those where [ok i],
         best (highest l_ij) first, ties to the lowest index; returns
         the count found, filling [out.(0 .. count-1)]. *)
      let out = Array.make m (-1) in
      let pick j w ok =
        let ms = mrank.(j) in
        let c = Array.length ms in
        let count = ref 0 and p = ref 0 in
        while !count < w && !p < c do
          let i = ms.(!p) in
          if ok i then begin
            out.(!count) <- i;
            incr count
          end;
          incr p
        done;
        !count
      in
      let predicted_total j = int_of_float (Float.ceil (Predictor.predict pred j)) in
      let buf = Array.make m (-1) in
      fun ~time ~remaining ~eligible ->
        if !first then begin
          Array.blit remaining 0 prev_remaining 0 n;
          first := false
        end
        else begin
          (* Completion feedback: the engine reveals finished jobs by
             dropping them from [remaining]; diffing gives the actual
             runtime the predictor corrects itself with. *)
          for j = 0 to n - 1 do
            if prev_remaining.(j) && not remaining.(j) then begin
              if running.(j) && started.(j) >= 0 then
                Predictor.observe pred ~job:j ~runtime:(time - started.(j));
              free_job j
            end
          done;
          Array.blit remaining 0 prev_remaining 0 n
        end;
        (* Scheduling passes: each pass either starts the FCFS head
           (possibly preempting backfilled jobs) and rescans, or
           computes the head's reservation, backfills behind it and
           stops.  At most one FCFS start per pass, so <= n passes. *)
        let continue_passes = ref true in
        while !continue_passes do
          continue_passes := false;
          (* FCFS head: lowest-index eligible remaining job not
             currently running. *)
          let h = ref (-1) in
          (try
             for j = 0 to n - 1 do
               if remaining.(j) && eligible.(j) && not running.(j) then begin
                 h := j;
                 raise Exit
               end
             done
           with Exit -> ());
          if !h >= 0 then begin
            let h = !h in
            let w_h = widths.(h) in
            let start_on count =
              for k = 0 to count - 1 do
                machine_of.(out.(k)) <- h
              done;
              running.(h) <- true;
              bfilled.(h) <- false;
              started.(h) <- time;
              emit (Started { job = h; time; backfilled = false });
              continue_passes := true
            in
            let free i = machine_of.(i) = -1 in
            if pick h w_h free = w_h then start_on w_h
            else begin
              (* The head's view treats machines held by backfilled
                 jobs as free: backfill must never delay it. *)
              let virt i =
                machine_of.(i) = -1
                || (let j = machine_of.(i) in j >= 0 && bfilled.(j))
              in
              if pick h w_h virt = w_h then begin
                for k = 0 to w_h - 1 do
                  let j = machine_of.(out.(k)) in
                  if j >= 0 && bfilled.(j) then begin
                    emit (Preempted { job = j; time });
                    free_job j
                  end
                done;
                start_on w_h
              end
              else begin
                (* Reservation: walk FCFS-running jobs by predicted
                   completion until the head's width is covered; the
                   last one needed sets the shadow time. *)
                let have = pick h m virt in
                let reserved = Array.make m false in
                for k = 0 to have - 1 do
                  reserved.(out.(k)) <- true
                done;
                let fcfs =
                  List.filter
                    (fun j -> running.(j) && not bfilled.(j))
                    (List.init n Fun.id)
                in
                let pc j =
                  let elapsed = time - started.(j) in
                  time + max 1 (predicted_total j - elapsed)
                in
                let by_pc =
                  List.sort
                    (fun a b ->
                      match compare (pc a) (pc b) with
                      | 0 -> compare a b
                      | c -> c)
                    fcfs
                in
                let acc = ref have and shadow = ref max_int in
                List.iter
                  (fun j ->
                    if !acc < w_h then begin
                      let got = ref 0 in
                      for i = 0 to m - 1 do
                        if machine_of.(i) = j && capable_mask.(h).(i)
                        then begin
                          reserved.(i) <- true;
                          incr got
                        end
                      done;
                      if !got > 0 then begin
                        acc := !acc + !got;
                        shadow := pc j
                      end
                    end)
                  by_pc;
                let shadow = !shadow in
                (* Conservative backfill into the hole, FCFS order:
                   fit on non-reserved machines, or predict completion
                   by the shadow time. *)
                for c = 0 to n - 1 do
                  if
                    c <> h && remaining.(c) && eligible.(c)
                    && not running.(c)
                  then begin
                    let w_c = widths.(c) in
                    let free i = machine_of.(i) = -1 in
                    let free_unreserved i = free i && not reserved.(i) in
                    let chosen =
                      if pick c w_c free_unreserved = w_c then w_c
                      else if
                        time + predicted_total c <= shadow
                        && pick c w_c free = w_c
                      then w_c
                      else 0
                    in
                    if chosen = w_c then begin
                      for k = 0 to w_c - 1 do
                        machine_of.(out.(k)) <- c
                      done;
                      running.(c) <- true;
                      bfilled.(c) <- true;
                      started.(c) <- time;
                      emit (Started { job = c; time; backfilled = true })
                    end
                  end
                done
              end
            end
          end
        done;
        Array.blit machine_of 0 buf 0 m;
        buf)
