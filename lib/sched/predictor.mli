(** Per-class runtime prediction for the online policies (pyss-style).

    Supercomputer backfill schedulers predict a job's runtime from the
    recent history of the {e same user's} completed jobs (pyss
    [EasyPlusPlusScheduler]: the running average of the last two).  The
    SUU analog of "user" inside a single instance is the job's fastest
    machine — jobs sharing a best machine have correlated hazard rows
    under the workload generators' per-machine speed model — so the
    predictor keeps one sliding window of completed runtimes per
    best-machine class.

    Until a class has observed a completion, {!predict} falls back to a
    model-based initial estimate, [max 1 (E[w] / l_best)] steps with
    [E[w] = 1/ln 2] (thresholds are [-log2 r], [r] uniform), perturbed
    by a small per-class jitter drawn from the creation seed — the
    analog of user-supplied runtime estimates, which real traces show
    are noisy.  As the simulator reveals completions the window fills
    and predictions are corrected online toward the class's empirical
    mean.

    Determinism: a predictor is a pure function of its creation
    arguments and the order of {!observe} calls.  Callers create one
    predictor {e per execution}, seeded from
    (instance digest, policy name, execution rng) via
    {!execution_seed}, so parallel replications stay bit-identical for
    any domain count. *)

type t

val create : ?window:int -> ?jitter:float -> Suu_core.Instance.t ->
  seed:int -> t
(** [create inst ~seed] is a fresh predictor for [inst]'s jobs.
    [window] (default 8) is the sliding-window length per class;
    [jitter] (default 0.1) is the relative perturbation of the initial
    estimates.  Raises [Invalid_argument] when [window < 1] or
    [jitter < 0]. *)

val execution_seed :
  digest:string -> policy:string -> Suu_prng.Rng.t -> int
(** Mix (instance digest, policy name, one draw from the execution rng)
    into a predictor seed: distinct policies and executions get
    distinct, reproducible prediction jitter. *)

val predict : t -> int -> float
(** [predict t j] is the predicted runtime (steps, >= 1.0) of job [j]:
    the mean of its class's window when nonempty, the jittered model
    estimate otherwise. *)

val observe : t -> job:int -> runtime:int -> unit
(** [observe t ~job ~runtime] records a completed runtime into [job]'s
    class window (runtimes < 1 are clamped to 1). *)

val observed : t -> int -> int
(** Completions recorded so far in [j]'s class (not capped at the
    window length). *)
