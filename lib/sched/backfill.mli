(** EASY-style backfilling over the SUU simulator (pyss-style).

    FCFS with one reservation: eligible jobs queue in index order (the
    SUU analog of submission order); the head job starts as soon as its
    requested width of capable machines is free, and while it cannot
    start it holds a {e reservation} — a shadow time and a reserved
    machine set computed from the {!Predictor}'s runtime predictions
    for the running jobs.  Queued jobs behind the head may {e backfill}
    into the hole under the conservative EASY rule: a candidate starts
    only if it fits on non-reserved machines, or its predicted
    completion lands on or before the shadow time.

    Mispredictions cannot break the reservation: this variant enforces
    it {e hard}.  The moment the head could start on machines that are
    free or held only by backfilled jobs, the blocking backfilled jobs
    are preempted and the head starts.  Preemption is free in SUU —
    accrued log-failure mass persists per job, so a preempted job
    re-queues and resumes with nothing lost.  The resulting invariant
    is exact and machine-checkable: {e at no step does a backfilled job
    stand between the FCFS head and its required width} (see the test
    suite's head-invariant checker over recorded executions).

    Runtime prediction is corrected online: the stepper diffs the
    engine's [remaining] set between steps to detect completions and
    feeds actual runtimes back into the per-class predictor, exactly
    how pyss's EASY++ refines its per-user running average.

    Determinism: queue order, machine ranking (highest [l_ij], ties to
    the lowest index) and the predictor seed are all derived from the
    instance, the policy name, and the execution rng — same-seed
    replays are byte-identical, including across domain counts. *)

type event =
  | Started of { job : int; time : int; backfilled : bool }
  | Preempted of { job : int; time : int }
      (** a backfilled job giving way to the FCFS head *)

val default_width : Suu_core.Instance.t -> int -> int
(** [default_width inst j] is [min capable_j (max 1 (m / 2))] where
    [capable_j] counts machines with [q_ij < 1]: jobs ask for up to
    half the cluster, the rigid-width analog of SWF processor counts,
    leaving a hole for backfill to fill. *)

val policy :
  ?width:(int -> int) ->
  ?on_event:(event -> unit) ->
  Suu_core.Instance.t -> Suu_core.Policy.t
(** The backfill policy, named ["backfill"].  [width j] (clamped to
    [1 .. capable_j], default {!default_width}) is job [j]'s rigid
    machine request.  [on_event] observes starts and preemptions; it is
    shared across the policy's executions, so only drive it from
    sequential single-execution runs (tests). *)
