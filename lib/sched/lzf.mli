(** Largest-Z-ratio-First: an online, LP-free greedy.

    Agnetis and Lidbetter prove that scheduling unreliable jobs in
    nonincreasing order of the Z-ratio — success odds
    [Z_j = (1 - q_j) / q_j] — is 0.8531-approximate on parallel
    machines (PAPERS.md, arXiv:1910.05702).  This adapts the rule to
    SUU's machine-dependent hazards: [Z_j] is computed from job [j]'s
    {e best} machine, eligible jobs are ranked by [Z] descending once
    at construction, and each step hands out machines by repeated
    passes over the ranked eligible jobs, each job taking its best
    still-free machine (highest [l_ij > 0], ties to the lowest machine
    index).  A job with [q = 0] somewhere has infinite [Z] and sorts
    first.

    Every tie-break is by index, the ranking is precomputed, and the
    stepper draws nothing from its rng — replays are byte-identical by
    construction.  Per-step cost is [O(passes * n_eligible * m)] with
    at most [m] passes; no LP, no plan cache. *)

val z_ratio : Suu_core.Instance.t -> int -> float
(** [z_ratio inst j] is [(1 - qb) / qb] for [qb = min_i q_ij]
    ([infinity] when [qb = 0]). *)

val policy : Suu_core.Instance.t -> Suu_core.Policy.t
(** The LZF policy, named ["lzf"].  Applicable to every dag shape:
    precedence constraints only gate eligibility. *)
