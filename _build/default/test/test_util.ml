(* Tests for the ASCII table renderer used by the bench harness. *)

module Table = Suu_util.Table

let render_lines t =
  String.split_on_char '\n' (Table.render t)
  |> List.filter (fun l -> l <> "")

let test_basic_layout () =
  let t = Table.create ~header:[ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let lines = render_lines t in
  Alcotest.(check int) "header + rule + 2 rows" 4 (List.length lines);
  (* all lines share the same width *)
  let widths = List.map String.length lines in
  List.iter
    (fun w -> Alcotest.(check int) "aligned" (List.hd widths) w)
    widths

let test_right_alignment () =
  let t = Table.create ~header:[ "k"; "v" ] in
  Table.add_row t [ "x"; "1" ];
  Table.add_row t [ "y"; "100" ];
  let lines = render_lines t in
  let last = List.nth lines 3 in
  (* numeric column is right-aligned: "1" sits at the end on row x *)
  let row_x = List.nth lines 2 in
  Alcotest.(check bool) "right aligned" true
    (String.length row_x = String.length last
    && row_x.[String.length row_x - 1] = '1')

let test_short_rows_padded () =
  let t = Table.create ~header:[ "a"; "b"; "c" ] in
  Table.add_row t [ "only" ];
  let lines = render_lines t in
  Alcotest.(check int) "renders" 3 (List.length lines)

let test_too_long_row () =
  let t = Table.create ~header:[ "a" ] in
  Alcotest.check_raises "too many cells"
    (Invalid_argument "Table.add_row: more cells than columns") (fun () ->
      Table.add_row t [ "x"; "y" ])

let test_float_row () =
  let t = Table.create ~header:[ "label"; "x"; "y" ] in
  Table.add_float_row t "r" [ 1.5; Float.nan ];
  let s = Table.render t in
  Alcotest.(check bool) "formats nan as dash" true
    (String.length s > 0
    && String.index_opt s '-' <> None)

let test_fmt_g () =
  Alcotest.(check string) "integer" "42" (Table.fmt_g 42.0);
  Alcotest.(check string) "nan" "-" (Table.fmt_g Float.nan);
  Alcotest.(check string) "4 sig figs" "3.142" (Table.fmt_g 3.14159);
  Alcotest.(check string) "small" "0.001234" (Table.fmt_g 0.0012341)

let prop_render_row_count =
  QCheck.Test.make ~count:100 ~name:"render emits one line per row + 2"
    QCheck.(list_of_size Gen.(0 -- 20) (list_of_size Gen.(1 -- 3) string))
    (fun rows ->
      let t = Table.create ~header:[ "a"; "b"; "c" ] in
      let clean s =
        String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c) s
      in
      List.iter (fun row -> Table.add_row t (List.map clean row)) rows;
      List.length (render_lines t) >= List.length rows + 2)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "util"
    [
      ( "table",
        [
          Alcotest.test_case "layout" `Quick test_basic_layout;
          Alcotest.test_case "alignment" `Quick test_right_alignment;
          Alcotest.test_case "short rows" `Quick test_short_rows_padded;
          Alcotest.test_case "too long" `Quick test_too_long_row;
          Alcotest.test_case "float rows" `Quick test_float_row;
          Alcotest.test_case "fmt_g" `Quick test_fmt_g;
        ] );
      ("properties", [ q prop_render_row_count ]);
    ]
