(* Tests for the max-flow substrate.  Lemma 2's rounding correctness
   depends on integral max flows, so Dinic is cross-checked against
   Edmonds–Karp and against min-cut certificates on random graphs. *)

module Net = Suu_flow.Net
module Dinic = Suu_flow.Dinic
module Ek = Suu_flow.Edmonds_karp
module Matching = Suu_flow.Matching

let test_single_edge () =
  let net = Net.create 2 in
  let e = Net.add_edge net ~src:0 ~dst:1 ~cap:5 in
  Alcotest.(check int) "flow value" 5 (Dinic.max_flow net ~s:0 ~t:1);
  Alcotest.(check int) "edge flow" 5 (Net.flow_on net e)

let test_no_path () =
  let net = Net.create 3 in
  let _ = Net.add_edge net ~src:0 ~dst:1 ~cap:5 in
  Alcotest.(check int) "no path" 0 (Dinic.max_flow net ~s:0 ~t:2)

(* Classic CLRS example, max flow 23. *)
let clrs_net () =
  let net = Net.create 6 in
  let s = 0 and v1 = 1 and v2 = 2 and v3 = 3 and v4 = 4 and t = 5 in
  let add a b c = ignore (Net.add_edge net ~src:a ~dst:b ~cap:c) in
  add s v1 16;
  add s v2 13;
  add v1 v3 12;
  add v2 v1 4;
  add v2 v4 14;
  add v3 v2 9;
  add v3 t 20;
  add v4 v3 7;
  add v4 t 4;
  net

let test_clrs_dinic () =
  Alcotest.(check int) "CLRS flow" 23 (Dinic.max_flow (clrs_net ()) ~s:0 ~t:5)

let test_clrs_edmonds_karp () =
  Alcotest.(check int) "CLRS flow" 23 (Ek.max_flow (clrs_net ()) ~s:0 ~t:5)

let test_parallel_edges () =
  let net = Net.create 2 in
  let _ = Net.add_edge net ~src:0 ~dst:1 ~cap:3 in
  let _ = Net.add_edge net ~src:0 ~dst:1 ~cap:4 in
  Alcotest.(check int) "parallel sum" 7 (Dinic.max_flow net ~s:0 ~t:1)

let test_reset () =
  let net = clrs_net () in
  let f1 = Dinic.max_flow net ~s:0 ~t:5 in
  Net.reset net;
  let f2 = Dinic.max_flow net ~s:0 ~t:5 in
  Alcotest.(check int) "same after reset" f1 f2

let test_copy_isolated () =
  let net = clrs_net () in
  let dup = Net.copy net in
  let _ = Dinic.max_flow net ~s:0 ~t:5 in
  Alcotest.(check int) "copy untouched" 23 (Ek.max_flow dup ~s:0 ~t:5)

let test_validation () =
  let net = Net.create 2 in
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Net.add_edge: negative capacity") (fun () ->
      ignore (Net.add_edge net ~src:0 ~dst:1 ~cap:(-1)));
  Alcotest.check_raises "bad node"
    (Invalid_argument "Net.add_edge: node out of range") (fun () ->
      ignore (Net.add_edge net ~src:0 ~dst:5 ~cap:1));
  Alcotest.check_raises "s = t" (Invalid_argument "Dinic: source equals sink")
    (fun () -> ignore (Dinic.max_flow net ~s:0 ~t:0))

let test_infinite_capacity () =
  let net = Net.create 3 in
  let _ = Net.add_edge net ~src:0 ~dst:1 ~cap:Net.infinite in
  let _ = Net.add_edge net ~src:1 ~dst:2 ~cap:9 in
  Alcotest.(check int) "bounded by finite edge" 9
    (Dinic.max_flow net ~s:0 ~t:2)

(* Random graph generator for cross-checks. *)
let random_net seed =
  let rng = Suu_prng.Rng.create ~seed in
  let n = 4 + Suu_prng.Rng.int rng 12 in
  let net = Net.create n in
  let edges = ref [] in
  let nedges = n + Suu_prng.Rng.int rng (2 * n) in
  for _ = 1 to nedges do
    let a = Suu_prng.Rng.int rng n in
    let b = Suu_prng.Rng.int rng n in
    if a <> b then begin
      let cap = 1 + Suu_prng.Rng.int rng 20 in
      let e = Net.add_edge net ~src:a ~dst:b ~cap in
      edges := (a, b, cap, e) :: !edges
    end
  done;
  (net, n, !edges)

let prop_dinic_equals_edmonds_karp =
  QCheck.Test.make ~count:300 ~name:"Dinic = Edmonds-Karp on random graphs"
    QCheck.small_int (fun seed ->
      let net, n, _ = random_net seed in
      let dup = Net.copy net in
      let s = 0 and t = n - 1 in
      Dinic.max_flow net ~s ~t = Ek.max_flow dup ~s ~t)

let prop_min_cut_certifies =
  QCheck.Test.make ~count:300 ~name:"min cut capacity equals flow value"
    QCheck.small_int (fun seed ->
      let net, n, edges = random_net seed in
      let s = 0 and t = n - 1 in
      let flow = Dinic.max_flow net ~s ~t in
      let side = Dinic.min_cut net ~s in
      (not side.(t))
      &&
      let cut = ref 0 in
      List.iter
        (fun (a, b, cap, _) -> if side.(a) && not side.(b) then cut := !cut + cap)
        edges;
      !cut = flow)

let prop_flow_conservation =
  QCheck.Test.make ~count:300 ~name:"per-edge flow within capacity, conserved"
    QCheck.small_int (fun seed ->
      let net, n, edges = random_net seed in
      let s = 0 and t = n - 1 in
      let value = Dinic.max_flow net ~s ~t in
      let net_out = Array.make n 0 in
      let ok = ref true in
      List.iter
        (fun (a, b, cap, e) ->
          let f = Net.flow_on net e in
          if f < 0 || f > cap then ok := false;
          net_out.(a) <- net_out.(a) + f;
          net_out.(b) <- net_out.(b) - f)
        edges;
      !ok
      && net_out.(s) = value
      && net_out.(t) = -value
      && Array.for_all (( = ) 0)
           (Array.mapi
              (fun v x -> if v = s || v = t then 0 else x)
              net_out))

(* --- bipartite matching --- *)

let test_matching_perfect () =
  (* complete bipartite K_{3,3} has a perfect matching *)
  let ml, mr =
    Matching.maximum ~left:3 ~right:3 ~adj:(fun _ -> [ 0; 1; 2 ])
  in
  Alcotest.(check bool) "perfect" true (Matching.is_perfect_on_left ml);
  (* matched pairs are consistent *)
  Array.iteri
    (fun l r -> Alcotest.(check int) "consistent" l mr.(r))
    ml

let test_matching_augmenting () =
  (* Needs an augmenting path: 0-{0}, 1-{0,1} *)
  let adj = function 0 -> [ 0 ] | 1 -> [ 0; 1 ] | _ -> [] in
  let ml, _ = Matching.maximum ~left:2 ~right:2 ~adj in
  Alcotest.(check bool) "perfect" true (Matching.is_perfect_on_left ml);
  Alcotest.(check int) "0 -> 0" 0 ml.(0);
  Alcotest.(check int) "1 -> 1" 1 ml.(1)

let test_matching_deficient () =
  (* Hall violation: both left nodes only like right node 0. *)
  let adj = function _ -> [ 0 ] in
  let ml, _ = Matching.maximum ~left:2 ~right:1 ~adj in
  let matched = Array.to_list ml |> List.filter (fun r -> r >= 0) in
  Alcotest.(check int) "only one matched" 1 (List.length matched)

let prop_matching_is_valid =
  QCheck.Test.make ~count:300 ~name:"matching is injective and uses edges"
    QCheck.small_int (fun seed ->
      let rng = Suu_prng.Rng.create ~seed in
      let left = 1 + Suu_prng.Rng.int rng 8 in
      let right = 1 + Suu_prng.Rng.int rng 8 in
      let adj_tbl =
        Array.init left (fun _ ->
            List.filter
              (fun _ -> Suu_prng.Rng.bool rng)
              (List.init right Fun.id))
      in
      let ml, mr = Matching.maximum ~left ~right ~adj:(fun l -> adj_tbl.(l)) in
      let ok = ref true in
      Array.iteri
        (fun l r ->
          if r >= 0 then begin
            if not (List.mem r adj_tbl.(l)) then ok := false;
            if mr.(r) <> l then ok := false
          end)
        ml;
      !ok)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "flow"
    [
      ( "max-flow",
        [
          Alcotest.test_case "single edge" `Quick test_single_edge;
          Alcotest.test_case "no path" `Quick test_no_path;
          Alcotest.test_case "CLRS (Dinic)" `Quick test_clrs_dinic;
          Alcotest.test_case "CLRS (Edmonds-Karp)" `Quick
            test_clrs_edmonds_karp;
          Alcotest.test_case "parallel edges" `Quick test_parallel_edges;
          Alcotest.test_case "reset" `Quick test_reset;
          Alcotest.test_case "copy" `Quick test_copy_isolated;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "infinite capacity" `Quick
            test_infinite_capacity;
        ] );
      ( "matching",
        [
          Alcotest.test_case "perfect" `Quick test_matching_perfect;
          Alcotest.test_case "augmenting path" `Quick
            test_matching_augmenting;
          Alcotest.test_case "deficient" `Quick test_matching_deficient;
        ] );
      ( "properties",
        [
          q prop_dinic_equals_edmonds_karp;
          q prop_min_cut_certifies;
          q prop_flow_conservation;
          q prop_matching_is_valid;
        ] );
    ]
