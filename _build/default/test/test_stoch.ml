(* Tests for the Appendix-C stochastic scheduling stack: the
   Lawler–Labetoulle LP, the Birkhoff–von-Neumann slice decomposition and
   the STC-I algorithm. *)

module SI = Suu_stoch.Stoch_instance
module Ll = Suu_stoch.Ll_lp
module Bvn = Suu_stoch.Bvn
module Stc = Suu_stoch.Stc_i
module Rng = Suu_prng.Rng

let checkf4 = Alcotest.(check (float 1e-4))

let random_stoch seed =
  let rng = Rng.create ~seed in
  let n = 2 + Rng.int rng 6 in
  let m = 2 + Rng.int rng 3 in
  let rates = Array.init n (fun _ -> Rng.range rng ~lo:0.3 ~hi:3.0) in
  let speeds =
    Array.init m (fun _ ->
        Array.init n (fun _ -> Rng.range rng ~lo:0.1 ~hi:2.0))
  in
  SI.make ~rates speeds

(* --- instance --- *)

let test_instance_validation () =
  Alcotest.check_raises "bad rate"
    (Invalid_argument "Stoch_instance.make: rates must be positive")
    (fun () -> ignore (SI.make ~rates:[| 0.0 |] [| [| 1.0 |] |]));
  Alcotest.check_raises "no usable machine"
    (Invalid_argument "Stoch_instance.make: job with no usable machine")
    (fun () -> ignore (SI.make ~rates:[| 1.0 |] [| [| 0.0 |] |]));
  Alcotest.check_raises "ragged"
    (Invalid_argument "Stoch_instance.make: ragged speed matrix") (fun () ->
      ignore (SI.make ~rates:[| 1.0; 1.0 |] [| [| 1.0 |] |]))

let test_instance_fastest () =
  let inst = SI.make ~rates:[| 1.0 |] [| [| 0.5 |]; [| 2.0 |] |] in
  Alcotest.(check int) "fastest" 1 (SI.fastest_machine inst 0)

(* --- LL LP --- *)

let test_ll_single_job () =
  (* One job p = 3 on one machine v = 1.5: C = 2. *)
  let inst = SI.make ~rates:[| 1.0 |] [| [| 1.5 |] |] in
  let { Ll.value; _ } = Ll.solve inst ~lengths:[| 3.0 |] ~jobs:[| 0 |] in
  checkf4 "C" 2.0 value

let test_ll_job_cap_binds () =
  (* One job, two fast machines: the no-two-machines rule caps speedup.
     p = 4, v = 2 on both machines: C = 1 is impossible because the job
     can get at most C time in total... it needs 2 time units of machine
     work, so C = 2. *)
  let inst = SI.make ~rates:[| 1.0 |] [| [| 2.0 |]; [| 2.0 |] |] in
  let { Ll.value; _ } = Ll.solve inst ~lengths:[| 4.0 |] ~jobs:[| 0 |] in
  checkf4 "job-parallelism bound" 2.0 value

let test_ll_two_jobs_balance () =
  (* Two identical jobs p = 2, two machines v = 1 everywhere: C = 2. *)
  let inst =
    SI.make ~rates:[| 1.0; 1.0 |] [| [| 1.0; 1.0 |]; [| 1.0; 1.0 |] |]
  in
  let { Ll.value; _ } =
    Ll.solve inst ~lengths:[| 2.0; 2.0 |] ~jobs:[| 0; 1 |]
  in
  checkf4 "balanced" 2.0 value

let ll_feasible inst lengths jobs sol =
  let m = SI.m inst and n = SI.n inst in
  let ok = ref true in
  Array.iter
    (fun j ->
      let work = ref 0.0 in
      for i = 0 to m - 1 do
        work := !work +. (SI.speed inst i j *. sol.Ll.x.(i).(j))
      done;
      if !work < lengths.(j) -. 1e-6 then ok := false)
    jobs;
  for i = 0 to m - 1 do
    let load = Array.fold_left ( +. ) 0.0 sol.Ll.x.(i) in
    if load > sol.Ll.value +. 1e-6 then ok := false
  done;
  for j = 0 to n - 1 do
    let time = ref 0.0 in
    for i = 0 to m - 1 do
      time := !time +. sol.Ll.x.(i).(j)
    done;
    if !time > sol.Ll.value +. 1e-6 then ok := false
  done;
  !ok

let prop_ll_feasible =
  QCheck.Test.make ~count:80 ~name:"LL LP solutions are feasible"
    QCheck.small_int (fun seed ->
      let inst = random_stoch seed in
      let n = SI.n inst in
      let rng = Rng.create ~seed:(seed + 1000) in
      let lengths = Array.init n (fun _ -> Rng.range rng ~lo:0.2 ~hi:5.0) in
      let jobs = Array.init n Fun.id in
      let sol = Ll.solve inst ~lengths ~jobs in
      ll_feasible inst lengths jobs sol)

let prop_ll_lower_bounds =
  (* C >= max_j p_j / v_max(j) and C >= total work share. *)
  QCheck.Test.make ~count:80 ~name:"LL optimum respects simple bounds"
    QCheck.small_int (fun seed ->
      let inst = random_stoch seed in
      let n = SI.n inst in
      let rng = Rng.create ~seed:(seed + 2000) in
      let lengths = Array.init n (fun _ -> Rng.range rng ~lo:0.2 ~hi:5.0) in
      let jobs = Array.init n Fun.id in
      let sol = Ll.solve inst ~lengths ~jobs in
      let per_job = ref 0.0 in
      for j = 0 to n - 1 do
        let v = SI.speed inst (SI.fastest_machine inst j) j in
        per_job := Float.max !per_job (lengths.(j) /. v)
      done;
      sol.Ll.value >= !per_job -. 1e-6)

(* --- BvN --- *)

let slices_reconstruct ~m ~n ~x slices =
  let acc = Array.make_matrix m n 0.0 in
  List.iter
    (fun { Bvn.duration; assign } ->
      Array.iteri
        (fun i j -> if j >= 0 then acc.(i).(j) <- acc.(i).(j) +. duration)
        assign)
    slices;
  let ok = ref true in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      if Float.abs (acc.(i).(j) -. x.(i).(j)) > 1e-6 then ok := false
    done
  done;
  !ok

let slices_no_job_doubled slices =
  List.for_all
    (fun { Bvn.assign; _ } ->
      let seen = Hashtbl.create 8 in
      Array.for_all
        (fun j ->
          if j < 0 then true
          else if Hashtbl.mem seen j then false
          else begin
            Hashtbl.add seen j ();
            true
          end)
        assign)
    slices

let test_bvn_identity () =
  (* x is already a matching: a single slice should cover it. *)
  let x = [| [| 2.0; 0.0 |]; [| 0.0; 2.0 |] |] in
  let slices = Bvn.decompose ~m:2 ~n:2 ~x ~horizon:2.0 in
  Alcotest.(check bool) "reconstructs" true
    (slices_reconstruct ~m:2 ~n:2 ~x slices);
  Alcotest.(check bool) "valid" true (slices_no_job_doubled slices)

let test_bvn_swap () =
  (* Classic 2x2 doubly stochastic: two matchings needed. *)
  let x = [| [| 1.0; 1.0 |]; [| 1.0; 1.0 |] |] in
  let slices = Bvn.decompose ~m:2 ~n:2 ~x ~horizon:2.0 in
  Alcotest.(check bool) "reconstructs" true
    (slices_reconstruct ~m:2 ~n:2 ~x slices);
  let total =
    List.fold_left (fun a s -> a +. s.Bvn.duration) 0.0 slices
  in
  Alcotest.(check bool) "duration <= horizon" true (total <= 2.0 +. 1e-6)

let test_bvn_validation () =
  Alcotest.(check bool)
    "over-horizon row rejected" true
    (try
       ignore (Bvn.decompose ~m:1 ~n:1 ~x:[| [| 3.0 |] |] ~horizon:1.0);
       false
     with Invalid_argument _ -> true)

let prop_bvn_reconstructs_ll_solutions =
  QCheck.Test.make ~count:60 ~name:"BvN realizes LL timetables exactly"
    QCheck.small_int (fun seed ->
      let inst = random_stoch seed in
      let n = SI.n inst and m = SI.m inst in
      let rng = Rng.create ~seed:(seed + 3000) in
      let lengths = Array.init n (fun _ -> Rng.range rng ~lo:0.2 ~hi:5.0) in
      let jobs = Array.init n Fun.id in
      let sol = Ll.solve inst ~lengths ~jobs in
      if sol.Ll.value <= 0.0 then true
      else begin
        let slices = Bvn.decompose ~m ~n ~x:sol.Ll.x ~horizon:sol.Ll.value in
        let total =
          List.fold_left (fun a s -> a +. s.Bvn.duration) 0.0 slices
        in
        slices_reconstruct ~m ~n ~x:sol.Ll.x slices
        && slices_no_job_doubled slices
        && total <= (sol.Ll.value *. (1.0 +. 1e-6)) +. 1e-9
      end)

(* --- STC-I --- *)

let test_stc_rounds () =
  let inst = random_stoch 1 in
  Alcotest.(check bool) "K >= 4" true (Stc.rounds inst >= 4)

let test_stc_completes_and_bounded () =
  let inst = random_stoch 2 in
  let runs = Stc.runs inst ~seed:5 ~reps:20 in
  Array.iter
    (fun r ->
      Alcotest.(check bool) "positive" true (r.Stc.makespan > 0.0);
      Alcotest.(check bool)
        "offline lower-bounds online" true
        (r.Stc.makespan >= r.Stc.offline -. 1e-6))
    runs

let test_stc_single_fast_job () =
  (* One job, rate 1, speed 1: STC-I should take O(1) expected time. *)
  let inst = SI.make ~rates:[| 1.0 |] [| [| 1.0 |] |] in
  let runs = Stc.runs inst ~seed:6 ~reps:200 in
  let mean =
    Array.fold_left (fun a r -> a +. r.Stc.makespan) 0.0 runs /. 200.0
  in
  (* E[p] = 1; rounds overshoot by at most a constant factor. *)
  Alcotest.(check bool)
    (Printf.sprintf "mean %.3f < 6" mean)
    true (mean < 6.0)

let test_stc_ratio_reasonable () =
  let inst = random_stoch 7 in
  let runs = Stc.runs inst ~seed:8 ~reps:20 in
  let mk =
    Array.fold_left (fun a r -> a +. r.Stc.makespan) 0.0 runs /. 20.0
  in
  let off =
    Array.fold_left (fun a r -> a +. r.Stc.offline) 0.0 runs /. 20.0
  in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.2f < 20" (mk /. off))
    true
    (mk /. off < 20.0)

(* --- LST (R||Cmax 2-approximation) --- *)

module Lst = Suu_stoch.Lst
module StcR = Suu_stoch.Stc_r

let test_lst_single_job () =
  (* One job: it must land on its fastest machine. *)
  let p i _ = if i = 1 then 2.0 else 5.0 in
  let s = Lst.schedule ~m:3 ~n:1 ~p ~eps:0.01 in
  Alcotest.(check int) "fastest machine" 1 s.Lst.machine_of_job.(0);
  checkf4 "makespan" 2.0 s.Lst.makespan

let test_lst_identical_machines () =
  (* 4 unit jobs on 2 identical machines: optimum 2, LST <= 4. *)
  let s = Lst.schedule ~m:2 ~n:4 ~p:(fun _ _ -> 1.0) ~eps:0.01 in
  Alcotest.(check bool)
    (Printf.sprintf "makespan %.2f <= 4" s.Lst.makespan)
    true
    (s.Lst.makespan <= 4.0 +. 1e-6);
  Alcotest.(check bool) "lower bound sane" true (s.Lst.lp_bound >= 2.0 -. 0.1)

let test_lst_validation () =
  Alcotest.check_raises "unrunnable job"
    (Invalid_argument "Lst.schedule: job with no runnable machine")
    (fun () ->
      ignore (Lst.schedule ~m:1 ~n:1 ~p:(fun _ _ -> infinity) ~eps:0.1))

let prop_lst_two_approx =
  (* The 2(1+eps) guarantee against the LP bound, plus assignment
     validity. *)
  QCheck.Test.make ~count:60 ~name:"LST within 2(1+eps) of its LP bound"
    QCheck.small_int (fun seed ->
      let rng = Rng.create ~seed in
      let m = 2 + Rng.int rng 3 in
      let n = 2 + Rng.int rng 8 in
      let p =
        Array.init m (fun _ ->
            Array.init n (fun _ -> Rng.range rng ~lo:0.2 ~hi:5.0))
      in
      let eps = 0.05 in
      let s = Lst.schedule ~m ~n ~p:(fun i j -> p.(i).(j)) ~eps in
      Array.for_all (fun i -> i >= 0 && i < m) s.Lst.machine_of_job
      && s.Lst.makespan <= (2.0 *. (1.0 +. eps) *. s.Lst.lp_bound) +. 1e-6
      && s.Lst.lp_bound > 0.0)

let prop_lst_dominates_opt_bound =
  (* lp_bound never exceeds the trivial best-machine-sequential bound. *)
  QCheck.Test.make ~count:60 ~name:"LST LP bound below trivial schedule"
    QCheck.small_int (fun seed ->
      let rng = Rng.create ~seed in
      let m = 2 + Rng.int rng 3 in
      let n = 2 + Rng.int rng 8 in
      let p =
        Array.init m (fun _ ->
            Array.init n (fun _ -> Rng.range rng ~lo:0.2 ~hi:5.0))
      in
      let trivial = ref 0.0 in
      for j = 0 to n - 1 do
        let b = ref infinity in
        for i = 0 to m - 1 do
          if p.(i).(j) < !b then b := p.(i).(j)
        done;
        trivial := !trivial +. !b
      done;
      let s = Lst.schedule ~m ~n ~p:(fun i j -> p.(i).(j)) ~eps:0.05 in
      s.Lst.lp_bound <= !trivial +. 1e-6)

(* --- STC-R --- *)

let test_stc_r_completes () =
  let inst = random_stoch 31 in
  let runs = StcR.runs inst ~seed:32 ~reps:15 in
  Array.iter
    (fun r ->
      Alcotest.(check bool) "positive" true (r.StcR.makespan > 0.0);
      Alcotest.(check bool)
        "offline bound holds" true
        (r.StcR.makespan >= r.StcR.offline -. 1e-6))
    runs

let test_stc_r_vs_stc_i () =
  (* The restart model is more constrained than preemption, so STC-R
     should not be dramatically better than STC-I (statistically). *)
  let inst = random_stoch 33 in
  let ri = Stc.runs inst ~seed:34 ~reps:30 in
  let rr = StcR.runs inst ~seed:34 ~reps:30 in
  let mean f xs = Array.fold_left (fun a x -> a +. f x) 0.0 xs /. 30.0 in
  let mi = mean (fun r -> r.Stc.makespan) ri in
  let mr = mean (fun r -> r.StcR.makespan) rr in
  Alcotest.(check bool)
    (Printf.sprintf "stc-r %.2f within [0.5, 5] x stc-i %.2f" mr mi)
    true
    (mr >= 0.4 *. mi && mr <= 5.0 *. mi)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "stoch"
    [
      ( "instance",
        [
          Alcotest.test_case "validation" `Quick test_instance_validation;
          Alcotest.test_case "fastest" `Quick test_instance_fastest;
        ] );
      ( "ll-lp",
        [
          Alcotest.test_case "single job" `Quick test_ll_single_job;
          Alcotest.test_case "job cap binds" `Quick test_ll_job_cap_binds;
          Alcotest.test_case "balance" `Quick test_ll_two_jobs_balance;
        ] );
      ( "bvn",
        [
          Alcotest.test_case "identity" `Quick test_bvn_identity;
          Alcotest.test_case "swap" `Quick test_bvn_swap;
          Alcotest.test_case "validation" `Quick test_bvn_validation;
        ] );
      ( "stc-i",
        [
          Alcotest.test_case "rounds" `Quick test_stc_rounds;
          Alcotest.test_case "completes" `Quick
            test_stc_completes_and_bounded;
          Alcotest.test_case "single job" `Quick test_stc_single_fast_job;
          Alcotest.test_case "ratio" `Quick test_stc_ratio_reasonable;
        ] );
      ( "lst",
        [
          Alcotest.test_case "single job" `Quick test_lst_single_job;
          Alcotest.test_case "identical machines" `Quick
            test_lst_identical_machines;
          Alcotest.test_case "validation" `Quick test_lst_validation;
        ] );
      ( "stc-r",
        [
          Alcotest.test_case "completes" `Quick test_stc_r_completes;
          Alcotest.test_case "vs stc-i" `Quick test_stc_r_vs_stc_i;
        ] );
      ( "properties",
        [
          q prop_ll_feasible;
          q prop_ll_lower_bounds;
          q prop_bvn_reconstructs_ll_solutions;
          q prop_lst_two_approx;
          q prop_lst_dominates_opt_bound;
        ] );
    ]
