test/test_policies.ml: Alcotest Array List Printf QCheck QCheck_alcotest Suu_core Suu_dag Suu_prng Suu_sim Suu_workload
