test/test_core.ml: Alcotest Array Filename Float Fun List Printf QCheck QCheck_alcotest Suu_core Suu_dag Suu_prng Suu_sim Suu_workload Sys
