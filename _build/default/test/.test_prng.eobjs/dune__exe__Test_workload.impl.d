test/test_workload.ml: Alcotest Array List QCheck QCheck_alcotest Suu_core Suu_dag Suu_workload
