test/test_dag.ml: Alcotest Array Fun List QCheck QCheck_alcotest Suu_dag Suu_prng
