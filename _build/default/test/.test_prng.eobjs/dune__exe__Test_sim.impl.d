test/test_sim.ml: Alcotest Array Float List Printf QCheck QCheck_alcotest String Suu_core Suu_dag Suu_prng Suu_sim Suu_workload
