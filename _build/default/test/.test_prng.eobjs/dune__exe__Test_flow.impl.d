test/test_flow.ml: Alcotest Array Fun List QCheck QCheck_alcotest Suu_flow Suu_prng
