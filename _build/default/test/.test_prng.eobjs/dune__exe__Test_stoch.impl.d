test/test_stoch.ml: Alcotest Array Float Fun Hashtbl List Printf QCheck QCheck_alcotest Suu_prng Suu_stoch
