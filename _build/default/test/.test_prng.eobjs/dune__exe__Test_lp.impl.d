test/test_lp.ml: Alcotest Array Float Fun List Printf QCheck QCheck_alcotest Suu_lp Suu_prng
