test/test_prng.ml: Alcotest Array Float Gen Printf QCheck QCheck_alcotest Suu_prng
