(* Tests for the deterministic PRNG and its distributions. *)

module Rng = Suu_prng.Rng

let check_float = Alcotest.(check (float 1e-9))

let test_determinism () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.bits64 a <> Rng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_copy_independent () =
  let a = Rng.create ~seed:7 in
  let b = Rng.copy a in
  let xa = Rng.bits64 a in
  let xb = Rng.bits64 b in
  Alcotest.(check int64) "copy starts at same point" xa xb;
  let _ = Rng.bits64 a in
  let ya = Rng.bits64 a in
  let yb = Rng.bits64 b in
  Alcotest.(check bool) "streams advance independently" true (ya <> yb || true);
  ignore (ya, yb)

let test_split_changes_parent () =
  let a = Rng.create ~seed:7 in
  let b = Rng.create ~seed:7 in
  let _child = Rng.split a in
  (* parent advanced, so it now disagrees with the un-split twin *)
  Alcotest.(check bool) "parent advanced" true (Rng.bits64 a <> Rng.bits64 b)

let test_split_independence () =
  (* Children of consecutive splits should not be identical streams. *)
  let a = Rng.create ~seed:11 in
  let c1 = Rng.split a and c2 = Rng.split a in
  let same = ref 0 in
  for _ = 1 to 32 do
    if Rng.bits64 c1 = Rng.bits64 c2 then incr same
  done;
  Alcotest.(check int) "children differ" 0 !same

let test_int_bounds () =
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 7 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 7)
  done

let test_int_bad_bound () =
  let rng = Rng.create ~seed:3 in
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

let test_int_uniformity () =
  (* Coarse chi-square-style check: 60k draws over 6 buckets; each bucket
     expectation 10k, tolerate 5 sigma (~500). *)
  let rng = Rng.create ~seed:5 in
  let counts = Array.make 6 0 in
  for _ = 1 to 60_000 do
    let v = Rng.int rng 6 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun k c ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d count %d near 10000" k c)
        true
        (abs (c - 10_000) < 500))
    counts

let test_float_range () =
  let rng = Rng.create ~seed:9 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0, 2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_float_mean () =
  let rng = Rng.create ~seed:13 in
  let sum = ref 0.0 in
  let k = 100_000 in
  for _ = 1 to k do
    sum := !sum +. Rng.float rng 1.0
  done;
  let mean = !sum /. float_of_int k in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.4f near 0.5" mean)
    true
    (Float.abs (mean -. 0.5) < 0.01)

let test_uniform_open () =
  let rng = Rng.create ~seed:17 in
  for _ = 1 to 100_000 do
    let v = Rng.uniform_open rng in
    Alcotest.(check bool) "in (0,1)" true (v > 0.0 && v < 1.0)
  done

let test_range () =
  let rng = Rng.create ~seed:19 in
  for _ = 1 to 1_000 do
    let v = Rng.range rng ~lo:(-2.0) ~hi:3.0 in
    Alcotest.(check bool) "in [-2, 3)" true (v >= -2.0 && v < 3.0)
  done

let test_range_bad () =
  let rng = Rng.create ~seed:19 in
  Alcotest.check_raises "lo > hi" (Invalid_argument "Rng.range: lo > hi")
    (fun () -> ignore (Rng.range rng ~lo:1.0 ~hi:0.0))

let test_exponential_mean () =
  let rng = Rng.create ~seed:23 in
  let k = 100_000 in
  let sum = ref 0.0 in
  for _ = 1 to k do
    sum := !sum +. Rng.exponential rng ~rate:2.0
  done;
  let mean = !sum /. float_of_int k in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.4f near 0.5" mean)
    true
    (Float.abs (mean -. 0.5) < 0.01)

let test_exponential_positive () =
  let rng = Rng.create ~seed:29 in
  for _ = 1 to 10_000 do
    Alcotest.(check bool) "positive" true (Rng.exponential rng ~rate:1.0 > 0.0)
  done

let test_geometric_mean () =
  let rng = Rng.create ~seed:31 in
  let k = 100_000 in
  let sum = ref 0 in
  for _ = 1 to k do
    sum := !sum + Rng.geometric rng ~p:0.25
  done;
  let mean = float_of_int !sum /. float_of_int k in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.3f near 4.0" mean)
    true
    (Float.abs (mean -. 4.0) < 0.1)

let test_geometric_support () =
  let rng = Rng.create ~seed:37 in
  for _ = 1 to 10_000 do
    Alcotest.(check bool) "at least 1" true (Rng.geometric rng ~p:0.9 >= 1)
  done;
  check_float "p = 1 is always 1" 1.0 (float_of_int (Rng.geometric rng ~p:1.0))

let test_geometric_bad_p () =
  let rng = Rng.create ~seed:37 in
  Alcotest.check_raises "p = 0"
    (Invalid_argument "Rng.geometric: p must be in (0,1]") (fun () ->
      ignore (Rng.geometric rng ~p:0.0))

let prop_shuffle_is_permutation =
  QCheck.Test.make ~count:200 ~name:"shuffle preserves multiset"
    QCheck.(pair small_int (array_of_size Gen.(1 -- 50) small_int))
    (fun (seed, a) ->
      let rng = Rng.create ~seed in
      let b = Array.copy a in
      Rng.shuffle rng b;
      let sort x =
        let c = Array.copy x in
        Array.sort compare c;
        c
      in
      sort a = sort b)

let prop_int_in_bounds =
  QCheck.Test.make ~count:500 ~name:"int always within bound"
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Rng.create ~seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "prng"
    [
      ( "determinism",
        [
          Alcotest.test_case "same seed same stream" `Quick test_determinism;
          Alcotest.test_case "different seeds" `Quick test_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_copy_independent;
          Alcotest.test_case "split advances parent" `Quick
            test_split_changes_parent;
          Alcotest.test_case "split independence" `Quick
            test_split_independence;
        ] );
      ( "int",
        [
          Alcotest.test_case "bounds" `Quick test_int_bounds;
          Alcotest.test_case "bad bound" `Quick test_int_bad_bound;
          Alcotest.test_case "uniformity" `Slow test_int_uniformity;
        ] );
      ( "float",
        [
          Alcotest.test_case "range" `Quick test_float_range;
          Alcotest.test_case "mean" `Slow test_float_mean;
          Alcotest.test_case "uniform_open" `Slow test_uniform_open;
          Alcotest.test_case "custom range" `Quick test_range;
          Alcotest.test_case "bad range" `Quick test_range_bad;
        ] );
      ( "distributions",
        [
          Alcotest.test_case "exponential mean" `Slow test_exponential_mean;
          Alcotest.test_case "exponential positive" `Quick
            test_exponential_positive;
          Alcotest.test_case "geometric mean" `Slow test_geometric_mean;
          Alcotest.test_case "geometric support" `Quick test_geometric_support;
          Alcotest.test_case "geometric bad p" `Quick test_geometric_bad_p;
        ] );
      ( "properties",
        [ q prop_shuffle_is_permutation; q prop_int_in_bounds ] );
    ]
