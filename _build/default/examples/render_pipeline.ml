(* Disjoint-chain precedence (SUU-C): a render farm processing scenes,
   each scene a fixed pipeline of stages (simulate -> shade -> composite
   -> encode) that must run in order, on a heterogeneous, unreliable
   cluster.  Shows SUU-C's superstep/congestion machinery via its stats
   counters.

   Run with: dune exec examples/render_pipeline.exe *)

module W = Suu_workload.Workload
module Runner = Suu_sim.Runner
module Table = Suu_util.Table
module Suu_c = Suu_core.Suu_c

let () =
  let scenes = 20 and stages = 8 and m = 4 in
  let inst =
    W.chains (W.Product) ~z:scenes ~length:stages ~m ~seed:12
  in
  Printf.printf "workload: %s\n" (Suu_core.Auto.describe inst);
  Printf.printf "(%d scenes x %d pipeline stages on %d machines)\n" scenes
    stages m;
  let bound = Suu_core.Lower_bound.combined inst in
  Printf.printf "certified lower bound on E[T_OPT]: %.1f steps\n\n" bound;

  (* SUU-C exposes the LP2/rounding artifacts it schedules from. *)
  let chains =
    match Suu_dag.Chains.of_dag (Suu_core.Instance.dag inst) with
    | Some c -> c
    | None -> assert false
  in
  let prep = Suu_c.prepare inst ~chains in
  Printf.printf "LP2 value t* = %.2f, segment length gamma = %d, load H = %d\n"
    prep.Suu_c.lp_value prep.Suu_c.gamma prep.Suu_c.load;
  Printf.printf "long jobs (length > gamma): %d\n\n"
    (List.length prep.Suu_c.long_jobs);

  let stats = Suu_c.new_stats () in
  let suu_c = Suu_c.policy_of_prepared ~stats inst prep in
  let reps = 10 in
  let table =
    Table.create ~header:[ "policy"; "E[T]"; "ci95"; "ratio to LB" ]
  in
  let measure label policy =
    let xs = Runner.makespans inst policy ~seed:5 ~reps in
    let s = Suu_stats.Summary.of_array xs in
    Table.add_float_row table label
      [ s.Suu_stats.Summary.mean; s.Suu_stats.Summary.ci95;
        s.Suu_stats.Summary.mean /. bound ]
  in
  measure "SUU-C (this paper)" suu_c;
  measure "greedy" (Suu_core.Baselines.greedy_completion inst);
  measure "serial" (Suu_core.Baselines.serial inst);
  Table.print table;
  print_newline ();
  Printf.printf
    "SUU-C internals over %d executions: %d supersteps, max congestion %d,\n\
     mean flattened superstep length %.2f, %d long-job SEM invocations.\n"
    reps stats.Suu_c.supersteps stats.Suu_c.max_congestion
    (float_of_int stats.Suu_c.total_congestion
    /. float_of_int (max 1 stats.Suu_c.supersteps))
    stats.Suu_c.sem_invocations
