(* Multicore replication: measuring an expected makespan to tight
   confidence needs many independent executions, and OCaml 5 domains run
   them in parallel with bit-identical results (the per-replication
   generators are derived deterministically, independent of the domain
   layout).

   Run with: dune exec examples/parallel_sweep.exe *)

module W = Suu_workload.Workload
module Table = Suu_util.Table

let time_it f =
  let t0 = Unix.gettimeofday () in
  let y = f () in
  (y, Unix.gettimeofday () -. t0)

let () =
  let inst =
    W.independent (W.Volunteers { reliable_fraction = 0.2 }) ~n:96 ~m:12
      ~seed:5
  in
  let reps = 200 in
  Printf.printf "workload: %s, %d replications of greedy\n"
    (Suu_core.Instance.name inst)
    reps;
  Printf.printf "recommended domains on this machine: %d\n\n"
    (Domain.recommended_domain_count ());
  let policy () = Suu_core.Baselines.greedy_completion inst in
  let seq, t_seq =
    time_it (fun () ->
        Suu_sim.Runner.makespans inst (policy ()) ~seed:31 ~reps)
  in
  let table =
    Table.create ~header:[ "domains"; "time (s)"; "speedup"; "identical" ]
  in
  Table.add_row table
    [ "sequential"; Table.fmt_g t_seq; "1"; "-" ];
  List.iter
    (fun domains ->
      let par, t_par =
        time_it (fun () ->
            Suu_sim.Parallel.makespans ~domains inst ~policy ~seed:31 ~reps)
      in
      Table.add_row table
        [ string_of_int domains; Table.fmt_g t_par;
          Table.fmt_g (t_seq /. t_par);
          (if par = seq then "yes" else "NO") ])
    [ 1; 2; 4; 8 ];
  Table.print table;
  print_newline ();
  print_endline
    "Results are bit-identical at every domain count; speedup tracks the\n\
     physical core count (on a single-core container, extra domains only\n\
     add scheduling overhead).";
  let s = Suu_stats.Summary.of_array seq in
  Printf.printf "\nE[T] = %.2f ± %.2f over %d traces\n"
    s.Suu_stats.Summary.mean s.Suu_stats.Summary.ci95 reps
