(* MapReduce-style scheduling (paper Section 1: "Google's MapReduce ...
   generates jobs whose dependencies form a complete bipartite graph,
   which is equivalent to two phases of independent jobs").

   The complete bipartite dag is *not* a forest, so the paper's dag
   algorithms do not apply directly — but its observation does: schedule
   the map phase as one SUU-I instance, then the reduce phase as another.
   This example builds that two-phase policy out of the public API and
   compares it with running a greedy policy on the raw dag.

   Run with: dune exec examples/mapreduce.exe *)

module W = Suu_workload.Workload
module Policy = Suu_core.Policy
module Runner = Suu_sim.Runner
module Table = Suu_util.Table

(* Two SUU-I-SEM phases: maps first, reduces once all maps are done.  The
   reduce-phase SEM is created lazily so its round-1 LP sees exactly the
   surviving reduce jobs. *)
let two_phase_policy inst ~maps =
  let n = Suu_core.Instance.n inst in
  let map_jobs = Array.init maps Fun.id in
  let reduce_jobs = Array.init (n - maps) (fun k -> maps + k) in
  let sem jobs = Suu_core.Suu_i_sem.policy ~jobs inst in
  Policy.make ~name:"two-phase-sem" ~fresh:(fun rng ->
      let map_step = Policy.fresh (sem map_jobs) rng in
      let reduce_step = lazy (Policy.fresh (sem reduce_jobs) rng) in
      fun ~time ~remaining ~eligible ->
        let maps_left = Array.exists (fun j -> remaining.(j)) map_jobs in
        if maps_left then map_step ~time ~remaining ~eligible
        else (Lazy.force reduce_step) ~time ~remaining ~eligible)

let () =
  let maps = 48 and reduces = 16 and m = 12 in
  let inst =
    W.mapreduce (W.Uniform { lo = 0.3; hi = 0.95 }) ~maps ~reduces ~m ~seed:3
  in
  Printf.printf "workload: %s\n" (Suu_core.Auto.describe inst);
  let bound = Suu_core.Lower_bound.combined inst in
  Printf.printf "certified lower bound on E[T_OPT]: %.1f steps\n\n" bound;

  let policies =
    [
      ("two-phase SUU-I-SEM", two_phase_policy inst ~maps);
      ("greedy on the dag", Suu_core.Baselines.greedy_completion inst);
      ("round-robin on the dag", Suu_core.Baselines.round_robin inst);
    ]
  in
  let table =
    Table.create ~header:[ "policy"; "E[T]"; "ci95"; "ratio to LB" ]
  in
  List.iter
    (fun (label, policy) ->
      let xs = Runner.makespans inst policy ~seed:17 ~reps:15 in
      let s = Suu_stats.Summary.of_array xs in
      Table.add_float_row table label
        [ s.Suu_stats.Summary.mean; s.Suu_stats.Summary.ci95;
          s.Suu_stats.Summary.mean /. bound ])
    policies;
  Table.print table;
  print_newline ();
  print_endline
    "The two-phase policy inherits SUU-I-SEM's O(log log min(m,n)) bound\n\
     per phase; a barrier between phases costs at most a factor of two."
