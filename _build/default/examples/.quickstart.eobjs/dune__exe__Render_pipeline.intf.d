examples/render_pipeline.mli:
