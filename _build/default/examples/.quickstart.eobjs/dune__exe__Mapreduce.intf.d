examples/mapreduce.mli:
