examples/build_forest.mli:
