examples/render_pipeline.ml: List Printf Suu_core Suu_dag Suu_sim Suu_stats Suu_util Suu_workload
