examples/quickstart.mli:
