examples/parallel_sweep.mli:
