examples/build_forest.ml: Array List Printf String Suu_core Suu_dag Suu_prng Suu_sim Suu_stats Suu_util Suu_workload
