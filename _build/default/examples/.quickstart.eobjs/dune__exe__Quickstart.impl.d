examples/quickstart.ml: Format Printf Suu_core Suu_dag Suu_sim Suu_stats
