examples/parallel_sweep.ml: Domain List Printf Suu_core Suu_sim Suu_stats Suu_util Suu_workload Unix
