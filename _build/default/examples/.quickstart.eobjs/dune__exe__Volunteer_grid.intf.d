examples/volunteer_grid.mli:
