(* Directed-forest precedence (SUU-T): a software build.  Each target's
   dependencies form an in-tree — sources compile first, feed static
   libraries, which feed the final link.  SUU-T peels the forest into
   O(log n) blocks of chains and runs SUU-C per block.

   Run with: dune exec examples/build_forest.exe *)

module Dag = Suu_dag.Dag
module Instance = Suu_core.Instance
module W = Suu_workload.Workload
module Runner = Suu_sim.Runner
module Table = Suu_util.Table

(* A hand-shaped build: two binaries, each linking two libraries, each
   library compiling three sources.  Edges point source -> lib -> binary
   (an in-forest: every job has exactly one successor). *)
let build_dag () =
  (* jobs 0..11: sources, 12..15: libs, 16..17: binaries *)
  let edges = ref [] in
  for lib = 0 to 3 do
    for s = 0 to 2 do
      edges := ((lib * 3) + s, 12 + lib) :: !edges
    done;
    edges := (12 + lib, 16 + (lib / 2)) :: !edges
  done;
  Dag.of_edges ~n:18 !edges

let () =
  let dag = build_dag () in
  let n = Dag.size dag in
  let m = 6 in
  (* Machine pool with consistent speed ranking (newer/older hardware). *)
  let rng = Suu_prng.Rng.create ~seed:21 in
  let q = W.q_matrix W.Product ~m ~n rng in
  let inst = Instance.make ~name:"build-farm" ~dag q in
  Printf.printf "workload: %s\n" (Suu_core.Auto.describe inst);

  let blocks = Suu_core.Suu_t.blocks inst in
  Printf.printf "chain-block decomposition: %d blocks\n"
    (Array.length blocks);
  Array.iteri
    (fun k chains ->
      let js =
        List.concat_map (fun c -> Array.to_list c) chains
        |> List.map string_of_int |> String.concat " "
      in
      Printf.printf "  block %d: %d chains (jobs: %s)\n" k
        (List.length chains) js)
    blocks;
  let bound = Suu_core.Lower_bound.combined inst in
  Printf.printf "certified lower bound on E[T_OPT]: %.1f steps\n\n" bound;

  let table =
    Table.create ~header:[ "policy"; "E[T]"; "ci95"; "ratio to LB" ]
  in
  let measure label policy =
    let xs = Runner.makespans inst policy ~seed:33 ~reps:20 in
    let s = Suu_stats.Summary.of_array xs in
    Table.add_float_row table label
      [ s.Suu_stats.Summary.mean; s.Suu_stats.Summary.ci95;
        s.Suu_stats.Summary.mean /. bound ]
  in
  measure "SUU-T (this paper)" (Suu_core.Suu_t.policy inst);
  measure "greedy" (Suu_core.Baselines.greedy_completion inst);
  measure "round-robin" (Suu_core.Baselines.round_robin inst);
  Table.print table;
  print_newline ();
  print_endline
    "Every predecessor of a block-k chain lives in a block before k, so\n\
     running SUU-C block by block never violates a build dependency."
