(* Quickstart: build an SUU instance by hand, let the library pick the
   right algorithm, and measure its expected makespan against a certified
   lower bound.

   Run with: dune exec examples/quickstart.exe *)

module Dag = Suu_dag.Dag
module Instance = Suu_core.Instance

let () =
  (* Four unit jobs on three machines.  Rows are machines, columns jobs;
     each entry is the probability the job FAILS on that machine in one
     step.  Precedence is the out-tree 0 -> {1, 2}, 2 -> 3. *)
  let q =
    [|
      [| 0.10; 0.80; 0.45; 0.90 |];
      [| 0.60; 0.30; 0.50; 0.85 |];
      [| 0.95; 0.70; 0.20; 0.15 |];
    |]
  in
  let dag = Dag.of_edges ~n:4 [ (0, 1); (0, 2); (2, 3) ] in
  let inst = Instance.make ~name:"quickstart" ~dag q in

  (* The library classifies the precedence structure and dispatches the
     matching algorithm from the paper (here: SUU-T for the out-tree). *)
  print_endline (Suu_core.Auto.describe inst);
  let policy = Suu_core.Auto.policy inst in
  Printf.printf "selected policy: %s\n" (Suu_core.Policy.name policy);

  (* Simulate 200 independent executions over SUU* traces. *)
  let makespans = Suu_sim.Runner.makespans inst policy ~seed:2024 ~reps:200 in
  let summary = Suu_stats.Summary.of_array makespans in
  let bound = Suu_core.Lower_bound.combined inst in
  Printf.printf "expected makespan: %s\n"
    (Format.asprintf "%a" Suu_stats.Summary.pp summary);
  Printf.printf "certified lower bound on E[T_OPT]: %.2f\n" bound;
  Printf.printf "measured approximation ratio (upper bound): %.2f\n"
    (summary.Suu_stats.Summary.mean /. bound);

  (* This instance is tiny, so the true optimum is computable exactly. *)
  let opt = Suu_core.Exact_dp.expected_makespan inst in
  Printf.printf "exact E[T_OPT] by dynamic programming: %.2f\n" opt;
  Printf.printf "true ratio: %.2f\n" (summary.Suu_stats.Summary.mean /. opt)
