(* Volunteer computing (the paper's SETI@home motivation): a batch of
   independent work units on a pool of volunteer machines, most of them
   flaky.  Compares the paper's algorithms against naive strategies on
   identical random traces.

   Run with: dune exec examples/volunteer_grid.exe *)

module W = Suu_workload.Workload
module Runner = Suu_sim.Runner
module Table = Suu_util.Table

let () =
  let n = 80 and m = 16 in
  (* 20% of the pool is reliable (q ~ 0.05-0.3 per step); the rest are
     volunteers that fail 70-99.5% of their steps. *)
  let inst =
    W.independent (W.Volunteers { reliable_fraction = 0.2 }) ~n ~m ~seed:7
  in
  Printf.printf "workload: %s (%d work units, %d volunteers)\n"
    (Suu_core.Instance.name inst) n m;
  let bound = Suu_core.Lower_bound.combined inst in
  Printf.printf "certified lower bound on E[T_OPT]: %.1f steps\n\n" bound;

  let policies =
    [
      ("SUU-I-SEM (this paper)", Suu_core.Suu_i_sem.policy inst);
      ("SUU-I-OBL (O(log n))", Suu_core.Suu_i_obl.policy inst);
      ("greedy", Suu_core.Baselines.greedy_completion inst);
      ("round-robin", Suu_core.Baselines.round_robin inst);
      ("serial", Suu_core.Baselines.serial inst);
    ]
  in
  let table =
    Table.create ~header:[ "policy"; "E[T]"; "ci95"; "ratio to LB" ]
  in
  List.iter
    (fun (label, policy) ->
      let xs = Runner.makespans inst policy ~seed:99 ~reps:20 in
      let s = Suu_stats.Summary.of_array xs in
      Table.add_float_row table label
        [ s.Suu_stats.Summary.mean; s.Suu_stats.Summary.ci95;
          s.Suu_stats.Summary.mean /. bound ])
    policies;
  Table.print table;
  print_newline ();
  print_endline
    "All policies saw the same 20 random traces (paired comparison).";
  print_endline
    "The LP-based schedules replicate work units across volunteers in\n\
     proportion to their reliability; the naive baselines either spread\n\
     uniformly (round-robin) or not at all (serial)."
