(** The paper's (LP1) relaxation (Section 3).

    For a job subset [J'] and log-mass target [L]:

    {v
      minimize   t
      subject to sum_i l'_ij x_ij >= L   for j in J'     (coverage)
                 sum_j x_ij       <= t   for every i      (load)
                 x_ij >= 0
    v}

    with clipped coefficients [l'_ij = min(l_ij, L)] — clipping loses
    nothing for integral solutions (Lemma 2) and bounds the LP's width.
    The integrality constraint of the original integer program is dropped
    here and recovered by {!Rounding}. *)

type frac = {
  x : float array array;  (** fractional assignment, [m x n] *)
  value : float;  (** the optimal (or near-optimal) load [t] *)
}

val solve :
  ?solver:Solver_choice.t -> Instance.t -> jobs:int array -> target:float ->
  frac
(** [solve inst ~jobs ~target] solves the relaxation restricted to [jobs].
    Entries of [x] outside [jobs] are zero.  Raises [Invalid_argument] on
    an empty [jobs] array, a non-positive [target], or duplicate jobs;
    [Failure] if the LP solver fails (cannot happen on well-formed
    instances: assigning every machine to every job long enough is always
    feasible). *)
