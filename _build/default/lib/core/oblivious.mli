(** Finite oblivious schedules (paper Section 2).

    An oblivious schedule assigns machines to jobs as a function of time
    only.  {!of_assignment} serializes an integral assignment [{x_ij}]
    machine by machine — machine [i] runs each of its jobs [j] for [x_ij]
    consecutive steps, jobs in index order — producing a plan of length
    equal to the assignment's load, exactly the schedule
    [Sigma_LP1(J', L)] of the paper. *)

type t

val of_assignment : Assignment.t -> t
(** [of_assignment a] serializes [a].  The plan's horizon is [load a]
    (at least 1: an all-zero assignment yields a single all-idle step so
    repetition loops still make progress through time). *)

val horizon : t -> int
(** Number of steps in the plan. *)

val machines : t -> int

val assignment_at : t -> int -> int array
(** [assignment_at t k] is the machine → job map at step [k]
    ([0 <= k < horizon]); [-1] marks an idle machine.  The returned array
    is shared — callers must not mutate it. *)
