(** Integral assignments of machine-steps to jobs.

    An assignment [{x_ij}] records how many unit steps machine [i] devotes
    to job [j] — the object produced by the LP roundings (Lemmas 2 and 6)
    and consumed by the oblivious schedules.  The paper's vocabulary:
    the {e load} of machine [i] is [sum_j x_ij]; the {e length} of job [j]
    is [d_j = max_i x_ij]. *)

type t

val make : int array array -> t
(** [make x] wraps the [m x n] matrix [x] (copied).  Raises
    [Invalid_argument] on negative entries or a ragged matrix. *)

val zero : m:int -> n:int -> t

val m : t -> int
val n : t -> int

val get : t -> int -> int -> int
(** [get t i j] is [x_ij]. *)

val set : t -> int -> int -> int -> unit
(** [set t i j v] updates [x_ij <- v] ([v >= 0]). *)

val machine_load : t -> int -> int
(** [machine_load t i] is [sum_j x_ij]. *)

val load : t -> int
(** [load t] is the maximum machine load (0 for an all-zero assignment). *)

val job_length : t -> int -> int
(** [job_length t j] is [d_j = max_i x_ij]. *)

val job_steps : t -> int -> int
(** [job_steps t j] is [sum_i x_ij], the total machine-steps given to
    [j]. *)

val log_mass : Instance.t -> t -> int -> float
(** [log_mass inst t j] is [sum_i l_ij * x_ij], the log mass the
    assignment accrues on [j] per full execution. *)

val clipped_log_mass : Instance.t -> target:float -> t -> int -> float
(** Same with the clipped coefficients [l'_ij = min l_ij target]. *)

val machines_of_job : t -> int -> (int * int) list
(** [machines_of_job t j] lists [(i, x_ij)] for machines with
    [x_ij > 0]. *)

val total_steps : t -> int
(** Sum of all entries. *)
