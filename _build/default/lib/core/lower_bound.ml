let lp1_half ?(solver = Solver_choice.default) inst =
  let jobs = Array.init (Instance.n inst) (fun j -> j) in
  let { Lp1.value; _ } = Lp1.solve ~solver inst ~jobs ~target:0.5 in
  value /. 2.0 /. Solver_choice.guarantee solver

(* Expected minimum wall-time for job j with every machine ganged on it:
   per-step failure is the product of all q_ij, so
   E[ceil(w / sum_i l_ij)] = 1 / (1 - prod_i q_ij). *)
let solo_expected_steps inst j =
  let gang = ref 1.0 in
  for i = 0 to Instance.m inst - 1 do
    gang := !gang *. Instance.q inst i j
  done;
  1.0 /. (1.0 -. !gang)

let critical_path inst =
  let g = Instance.dag inst in
  let order = Suu_dag.Dag.topological_order g in
  let n = Instance.n inst in
  let best = Array.make n 0.0 in
  let answer = ref 0.0 in
  Array.iter
    (fun j ->
      let upstream =
        List.fold_left
          (fun acc p -> Float.max acc best.(p))
          0.0
          (Suu_dag.Dag.preds g j)
      in
      best.(j) <- upstream +. solo_expected_steps inst j;
      if best.(j) > !answer then answer := best.(j))
    order;
  !answer

let work inst =
  let n = Instance.n inst and m = Instance.m inst in
  let expected_w = 1.0 /. log 2.0 in
  let acc = ref 0.0 in
  for j = 0 to n - 1 do
    let lbest =
      Instance.log_failure inst (Instance.best_machine inst j) j
    in
    let steps =
      if Float.is_finite lbest && lbest > 0.0 then
        Float.max 1.0 (expected_w /. lbest)
      else 1.0
    in
    acc := !acc +. steps
  done;
  !acc /. float_of_int m

let combined ?solver inst =
  Float.max 1.0
    (Float.max (lp1_half ?solver inst)
       (Float.max (critical_path inst) (work inst)))
