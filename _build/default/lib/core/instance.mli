(** SUU problem instances.

    An instance is [(J, M, {q_ij}, G)]: [n] unit-step jobs, [m] machines,
    failure probability [q_ij] of job [j] on machine [i] per step, and a
    precedence dag [G].  The derived log failure is
    [l_ij = -log2 q_ij] — the "work" a step of machine [i] contributes
    toward job [j] in the SUU* view (infinite when [q_ij = 0]). *)

type t

val make : ?name:string -> dag:Suu_dag.Dag.t -> float array array -> t
(** [make ~dag q] builds an instance from the [m x n] matrix [q]
    ([q.(i).(j)] is machine [i]'s failure probability on job [j]) and the
    precedence dag on the [n] jobs.  Raises [Invalid_argument] when the
    matrix is ragged or empty, some [q_ij] is outside [0, 1], the dag size
    differs from [n], or some job has [q_ij = 1] on every machine (such a
    job can never complete). *)

val name : t -> string

val n : t -> int
(** Number of jobs. *)

val m : t -> int
(** Number of machines. *)

val dag : t -> Suu_dag.Dag.t

val q : t -> int -> int -> float
(** [q t i j] is the failure probability of job [j] on machine [i]. *)

val log_failure : t -> int -> int -> float
(** [log_failure t i j] is [l_ij = -log2 (q t i j)]; [infinity] when
    [q = 0] and [0] when [q = 1]. *)

val clipped_log_failure : t -> target:float -> int -> int -> float
(** [clipped_log_failure t ~target i j] is [l'_ij = min l_ij target], the
    clipped coefficient used by the LP relaxations (Lemma 2). *)

val best_machine : t -> int -> int
(** [best_machine t j] is a machine minimizing [q_ij] (the fastest machine
    for [j]); ties go to the lowest index. *)

val jobs : t -> int list
(** [jobs t] is [[0; ...; n-1]]. *)
