(* States are bitmasks of *remaining* jobs.  A mask is reachable iff it is
   closed under successors: an uncompleted job keeps its successors
   uncompleted. *)

let feasible_mask g n mask =
  let ok = ref true in
  for j = 0 to n - 1 do
    if mask land (1 lsl j) <> 0 then
      List.iter
        (fun s -> if mask land (1 lsl s) = 0 then ok := false)
        (Suu_dag.Dag.succs g j)
  done;
  !ok

let eligible_of g mask =
  let n = Suu_dag.Dag.size g in
  let acc = ref [] in
  for j = n - 1 downto 0 do
    if mask land (1 lsl j) <> 0 then begin
      let ready =
        List.for_all (fun p -> mask land (1 lsl p) = 0) (Suu_dag.Dag.preds g j)
      in
      if ready then acc := j :: !acc
    end
  done;
  Array.of_list !acc

let estimate_cost inst =
  let n = Instance.n inst and m = Instance.m inst in
  if n > 20 then max_int
  else begin
    let g = Instance.dag inst in
    let total = ref 0.0 in
    for mask = 1 to (1 lsl n) - 1 do
      if feasible_mask g n mask then begin
        let e = Array.length (eligible_of g mask) in
        total :=
          !total
          +. (float_of_int e ** float_of_int m) *. Float.pow 2.0 (float_of_int e)
      end
    done;
    if !total > 1e18 then max_int else int_of_float !total
  end

let solve inst =
  let n = Instance.n inst and m = Instance.m inst in
  let g = Instance.dag inst in
  let size = 1 lsl n in
  let value = Array.make size infinity in
  let best_assignment = Array.make size [||] in
  value.(0) <- 0.0;
  let assign = Array.make m 0 in
  for mask = 1 to size - 1 do
    if feasible_mask g n mask then begin
      let elig = eligible_of g mask in
      let e = Array.length elig in
      (* p.(k): probability job elig.(k) survives this step under the
         current assignment. *)
      let p = Array.make e 1.0 in
      let combos = int_of_float (float_of_int e ** float_of_int m) in
      for c = 0 to combos - 1 do
        Array.fill p 0 e 1.0;
        let rest = ref c in
        for i = 0 to m - 1 do
          let k = !rest mod e in
          rest := !rest / e;
          assign.(i) <- k;
          p.(k) <- p.(k) *. Instance.q inst i elig.(k)
        done;
        (* Expected cost: sum over completion subsets T (as a mask over
           eligible indices). *)
        let stay = Array.fold_left ( *. ) 1.0 p in
        if stay < 1.0 -. 1e-12 then begin
          let acc = ref 1.0 in
          for t = 1 to (1 lsl e) - 1 do
            let prob = ref 1.0 and removed = ref 0 in
            for k = 0 to e - 1 do
              if t land (1 lsl k) <> 0 then begin
                prob := !prob *. (1.0 -. p.(k));
                removed := !removed lor (1 lsl elig.(k))
              end
              else prob := !prob *. p.(k)
            done;
            acc := !acc +. (!prob *. value.(mask lxor !removed))
          done;
          let v = !acc /. (1.0 -. stay) in
          if v < value.(mask) then begin
            value.(mask) <- v;
            best_assignment.(mask) <- Array.map (fun k -> elig.(k)) assign
          end
        end
      done
    end
  done;
  (value, best_assignment)

let check_budget ?(budget = 20_000_000) inst =
  let cost = estimate_cost inst in
  if cost > budget then
    invalid_arg
      (Printf.sprintf
         "Exact_dp: instance too large (estimated cost %d > budget %d)"
         (if cost = max_int then -1 else cost)
         budget)

let expected_makespan ?budget inst =
  check_budget ?budget inst;
  let value, _ = solve inst in
  value.((1 lsl Instance.n inst) - 1)

let policy ?budget inst =
  check_budget ?budget inst;
  let _, best = solve inst in
  let m = Instance.m inst in
  let n = Instance.n inst in
  let idle = Array.make m (-1) in
  Policy.make ~name:"exact-opt" ~fresh:(fun _rng ->
      fun ~time:_ ~remaining ~eligible:_ ->
        let mask = ref 0 in
        for j = 0 to n - 1 do
          if remaining.(j) then mask := !mask lor (1 lsl j)
        done;
        if !mask = 0 then idle else best.(!mask))

(* Chain-structured instances: a state is the number of remaining jobs in
   each chain (the dag's width bounds the eligible set by the number of
   chains), so the state space is the product of chain lengths + 1. *)

let chains_expected_makespan ?(budget = 20_000_000) inst =
  let chains =
    match Suu_dag.Chains.of_dag (Instance.dag inst) with
    | Some c -> Array.of_list c
    | None ->
        invalid_arg "Exact_dp.chains_expected_makespan: not disjoint chains"
  in
  let z = Array.length chains in
  let m = Instance.m inst in
  let states =
    Array.fold_left
      (fun acc c -> acc *. float_of_int (Array.length c + 1))
      1.0 chains
  in
  let per_state =
    (float_of_int z ** float_of_int m) *. Float.pow 2.0 (float_of_int z)
  in
  if states *. per_state > float_of_int budget then
    invalid_arg
      (Printf.sprintf
         "Exact_dp.chains_expected_makespan: estimated cost %.3g > budget %d"
         (states *. per_state) budget);
  (* Encode a remaining-count vector in mixed radix. *)
  let radix = Array.map (fun c -> Array.length c + 1) chains in
  let encode counts =
    let acc = ref 0 in
    for c = 0 to z - 1 do
      acc := (!acc * radix.(c)) + counts.(c)
    done;
    !acc
  in
  let memo = Hashtbl.create 1024 in
  let counts0 = Array.map Array.length chains in
  let assign = Array.make m 0 in
  let rec value counts =
    let key = encode counts in
    match Hashtbl.find_opt memo key with
    | Some v -> v
    | None ->
        let active =
          Array.to_list
            (Array.mapi (fun c left -> (c, left)) counts)
          |> List.filter (fun (_, left) -> left > 0)
          |> List.map fst |> Array.of_list
        in
        let v =
          if Array.length active = 0 then 0.0
          else begin
            let e = Array.length active in
            (* Current (eligible) job of active chain index k. *)
            let job k =
              let c = active.(k) in
              chains.(c).(Array.length chains.(c) - counts.(c))
            in
            let p = Array.make e 1.0 in
            let combos =
              int_of_float (float_of_int e ** float_of_int m)
            in
            let best = ref infinity in
            for combo = 0 to combos - 1 do
              Array.fill p 0 e 1.0;
              let rest = ref combo in
              for i = 0 to m - 1 do
                let k = !rest mod e in
                rest := !rest / e;
                assign.(i) <- k;
                p.(k) <- p.(k) *. Instance.q inst i (job k)
              done;
              let stay = Array.fold_left ( *. ) 1.0 p in
              if stay < 1.0 -. 1e-12 then begin
                let acc = ref 1.0 in
                for t = 1 to (1 lsl e) - 1 do
                  let prob = ref 1.0 in
                  let next = Array.copy counts in
                  for k = 0 to e - 1 do
                    if t land (1 lsl k) <> 0 then begin
                      prob := !prob *. (1.0 -. p.(k));
                      next.(active.(k)) <- next.(active.(k)) - 1
                    end
                    else prob := !prob *. p.(k)
                  done;
                  if !prob > 0.0 then acc := !acc +. (!prob *. value next)
                done;
                let total = !acc /. (1.0 -. stay) in
                if total < !best then best := total
              end
            done;
            !best
          end
        in
        Hashtbl.replace memo key v;
        v
  in
  value counts0

(* General dags, top-down: memoized recursion visits only the remaining
   sets reachable from the full set (the order filters of the poset),
   which for width-w dags number at most n^w — Malewicz's tractable
   regime without the chain restriction. *)

let ideal_expected_makespan ?(budget = 20_000_000) inst =
  let n = Instance.n inst in
  let m = Instance.m inst in
  if n > 62 then
    invalid_arg "Exact_dp.ideal_expected_makespan: more than 62 jobs";
  let g = Instance.dag inst in
  let memo : (int, float) Hashtbl.t = Hashtbl.create 1024 in
  let work = ref 0 in
  let charge amount =
    work := !work + amount;
    if !work > budget then
      invalid_arg
        (Printf.sprintf
           "Exact_dp.ideal_expected_makespan: budget %d exceeded" budget)
  in
  let eligible_of mask =
    let acc = ref [] in
    for j = n - 1 downto 0 do
      if mask land (1 lsl j) <> 0 then begin
        let ready =
          List.for_all
            (fun p -> mask land (1 lsl p) = 0)
            (Suu_dag.Dag.preds g j)
        in
        if ready then acc := j :: !acc
      end
    done;
    Array.of_list !acc
  in
  let assign = Array.make m 0 in
  let rec value mask =
    if mask = 0 then 0.0
    else
      match Hashtbl.find_opt memo mask with
      | Some v -> v
      | None ->
          let elig = eligible_of mask in
          let e = Array.length elig in
          let combos = int_of_float (float_of_int e ** float_of_int m) in
          charge (combos * (1 lsl e));
          let p = Array.make e 1.0 in
          let best = ref infinity in
          for combo = 0 to combos - 1 do
            Array.fill p 0 e 1.0;
            let rest = ref combo in
            for i = 0 to m - 1 do
              let k = !rest mod e in
              rest := !rest / e;
              assign.(i) <- k;
              p.(k) <- p.(k) *. Instance.q inst i elig.(k)
            done;
            let stay = Array.fold_left ( *. ) 1.0 p in
            if stay < 1.0 -. 1e-12 then begin
              let acc = ref 1.0 in
              for t = 1 to (1 lsl e) - 1 do
                let prob = ref 1.0 and removed = ref 0 in
                for k = 0 to e - 1 do
                  if t land (1 lsl k) <> 0 then begin
                    prob := !prob *. (1.0 -. p.(k));
                    removed := !removed lor (1 lsl elig.(k))
                  end
                  else prob := !prob *. p.(k)
                done;
                if !prob > 0.0 then
                  acc := !acc +. (!prob *. value (mask lxor !removed))
              done;
              let total = !acc /. (1.0 -. stay) in
              if total < !best then best := total
            end
          done;
          Hashtbl.replace memo mask !best;
          !best
  in
  value ((1 lsl n) - 1)
