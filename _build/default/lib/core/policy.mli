(** Scheduling policies: the interface between the paper's algorithms and
    the simulator.

    A policy is the paper's schedule [Sigma]: a (possibly adaptive) rule
    that, given what has happened so far, assigns machines to jobs for the
    next unit step.  The simulator drives a fresh {!stepper} per
    execution; the stepper sees only the sets of remaining and eligible
    jobs — never the hidden SUU* thresholds — exactly like the paper's
    history-based schedules. *)

type stepper = time:int -> remaining:bool array -> eligible:bool array -> int array
(** [step ~time ~remaining ~eligible] returns the machine → job assignment
    for step [time] (0-based): entry [i] is the job run by machine [i], or
    [-1] to idle.  Assigning a completed job is allowed (the machine
    idles, as in the paper); assigning an ineligible, uncompleted job is a
    policy bug and rejected by the engine.  The returned array is read
    immediately and never retained, so policies may reuse a buffer.
    [remaining] and [eligible] are owned by the engine: treat as
    read-only. *)

type t

val make : name:string -> fresh:(Suu_prng.Rng.t -> stepper) -> t
(** [make ~name ~fresh] wraps a policy.  [fresh rng] must return the
    stepper for one independent execution; [rng] is the execution's
    private randomness (for random delays etc.). *)

val name : t -> string

val fresh : t -> Suu_prng.Rng.t -> stepper
(** Start a new execution. *)
