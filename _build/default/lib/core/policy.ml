type stepper =
  time:int -> remaining:bool array -> eligible:bool array -> int array

type t = { pname : string; pfresh : Suu_prng.Rng.t -> stepper }

let make ~name ~fresh = { pname = name; pfresh = fresh }
let name t = t.pname
let fresh t rng = t.pfresh rng
