(** LP rounding by grouping and integral max-flow (paper Lemma 2/Lemma 6).

    Given a fractional solution of (LP1) (or the coverage core of (LP2)),
    produce an *integral* assignment whose clipped log mass is at least the
    target for every job and whose load is at most [ceil(6 t_star)]:

    + group machines with [l'_ij] in [2^k, 2^(k+1)) and pool their
      fractional assignment into [D*_jk];
    + round the pooled assignments to [floor(6 D*_jk)], which still covers
      [3L - 2L = L] of clipped mass per job;
    + realize the rounded group totals as an integral flow in a
      source → (job, k)-group → machine → sink network — integral because
      capacities are integral (Ford–Fulkerson integrality). *)

val round :
  ?job_cap:(int -> int) ->
  Instance.t ->
  jobs:int array ->
  target:float ->
  frac:float array array ->
  frac_value:float ->
  Assignment.t
(** [round inst ~jobs ~target ~frac ~frac_value] rounds the fractional
    [frac] (with LP value [frac_value]) into an integral assignment with,
    for every [j] in [jobs], clipped log mass
    [sum_i min(l_ij, target) x_ij >= target], and every machine load
    [<= ceil(6 frac_value)].

    [job_cap j] caps each machine's steps on job [j] (Lemma 6 passes
    [ceil(6 d*_j)] so chain lengths stay bounded); default: unbounded.

    Raises [Failure] if the max flow falls short of the rounded demand,
    which indicates an infeasible or corrupted fractional input. *)
