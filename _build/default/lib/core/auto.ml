let policy ?solver inst =
  match Suu_dag.Classify.classify (Instance.dag inst) with
  | Suu_dag.Classify.Independent -> Suu_i_sem.policy ?solver inst
  | Suu_dag.Classify.Disjoint_chains _ -> Suu_c.policy ?solver inst
  | Suu_dag.Classify.Directed_forest _ -> Suu_t.policy ?solver inst
  | Suu_dag.Classify.General ->
      let base = Baselines.greedy_completion inst in
      Policy.make ~name:"greedy(general-dag)" ~fresh:(Policy.fresh base)

let describe inst =
  Printf.sprintf "%s: n=%d m=%d, %s" (Instance.name inst) (Instance.n inst)
    (Instance.m inst)
    (Suu_dag.Classify.describe
       (Suu_dag.Classify.classify (Instance.dag inst)))
