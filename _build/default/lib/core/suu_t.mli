(** SUU-T: directed-forest precedence constraints (paper Appendix B).

    The forest is decomposed into at most [floor(log2 n) + 1] blocks of
    vertex-disjoint chains ({!Suu_dag.Forest.decompose}); every
    predecessor of a block-[k] chain lives in an earlier block, so running
    SUU-C once per block, in order, is a valid schedule — giving the
    O(log n log(n+m) loglog min(m,n)) bound of Theorem 12. *)

val blocks : Instance.t -> int array list array
(** [blocks inst] is the chain-block decomposition of the instance's dag.
    Raises [Invalid_argument] when the dag is not a directed forest. *)

val policy :
  ?solver:Solver_choice.t -> ?top_machines:int -> Instance.t -> Policy.t
(** [policy inst] prepares one SUU-C stage per block (LPs solved at
    creation) and executes the stages sequentially, advancing when the
    current block's jobs are all complete. *)
