(** Exact optimal schedules for tiny instances.

    The set of remaining jobs is a sufficient state for the SUU Markov
    decision process, so the minimum expected makespan satisfies, over
    assignments [a] of machines to eligible jobs,

    {v
      E[S] = min_a ( 1 + sum_{∅ ≠ T ⊆ elig(S)} Pr_a[T completes] E[S \ T] )
                   / ( 1 - Pr_a[nothing completes] )
    v}

    solved bottom-up over the subset lattice.  Assignments never idle a
    machine (extra mass can only help — completion events are monotone),
    so the enumeration is [e^m] per state with [e] eligible jobs.  This is
    Malewicz's observation that constant machines + constant width is
    polynomial; we use it to measure the true approximation ratios of the
    polynomial-time schedules on small instances (experiment E4). *)

val expected_makespan : ?budget:int -> Instance.t -> float
(** [expected_makespan inst] is [E[T_OPT]].  Raises [Invalid_argument]
    when the estimated state-enumeration cost exceeds [budget] elementary
    evaluations (default [20_000_000]). *)

val policy : ?budget:int -> Instance.t -> Policy.t
(** [policy inst] plays the optimal assignment in every state (computed
    once, at creation). *)

val ideal_expected_makespan : ?budget:int -> Instance.t -> float
(** [ideal_expected_makespan inst] is [E[T_OPT]] for an arbitrary dag,
    computed top-down over the *reachable* remaining-sets only (the order
    filters of the precedence poset).  This realizes Malewicz's theorem —
    constant machines and constant dag width give polynomial time — for
    general dags: a width-[w] poset has at most [n^w] filters, versus the
    [2^n] masks the bottom-up {!expected_makespan} scans.  Raises
    [Invalid_argument] when the number of visited states times the
    per-state work exceeds [budget] (default [20_000_000]); the job count
    must be at most 62 (mask encoding). *)

val chains_expected_makespan : ?budget:int -> Instance.t -> float
(** [chains_expected_makespan inst] is [E[T_OPT]] for disjoint-chain
    precedence constraints, exploiting Malewicz's bounded-width
    observation: the reachable states are the per-chain positions — a
    product of chain lengths rather than [2^n] — so instances far beyond
    {!expected_makespan}'s reach are exact (e.g. 3 chains of 8 jobs on 2
    machines).  Raises [Invalid_argument] when the dag is not disjoint
    chains or the estimated cost exceeds [budget] (default
    [20_000_000]). *)
