lib/core/suu_c.mli: Assignment Instance Policy Solver_choice Suu_dag
