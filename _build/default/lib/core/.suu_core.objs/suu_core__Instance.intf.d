lib/core/instance.mli: Suu_dag
