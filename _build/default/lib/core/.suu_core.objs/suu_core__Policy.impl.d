lib/core/policy.ml: Suu_prng
