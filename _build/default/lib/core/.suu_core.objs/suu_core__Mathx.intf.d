lib/core/mathx.mli:
