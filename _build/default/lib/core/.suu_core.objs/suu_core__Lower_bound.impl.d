lib/core/lower_bound.ml: Array Float Instance List Lp1 Solver_choice Suu_dag
