lib/core/instance_io.ml: Array Buffer Fun Instance List Printf String Suu_dag
