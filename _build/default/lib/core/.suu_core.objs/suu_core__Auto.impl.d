lib/core/auto.ml: Baselines Instance Policy Printf Suu_c Suu_dag Suu_i_sem Suu_t
