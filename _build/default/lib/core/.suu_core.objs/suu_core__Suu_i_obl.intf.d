lib/core/suu_i_obl.mli: Instance Oblivious Policy Solver_choice
