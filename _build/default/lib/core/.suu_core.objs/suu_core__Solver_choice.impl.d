lib/core/solver_choice.ml:
