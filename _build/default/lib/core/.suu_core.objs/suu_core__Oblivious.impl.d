lib/core/oblivious.ml: Array Assignment
