lib/core/baselines.ml: Array Assignment Instance List Oblivious Policy
