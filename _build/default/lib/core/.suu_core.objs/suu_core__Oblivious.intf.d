lib/core/oblivious.mli: Assignment
