lib/core/suu_i_sem.ml: Array Instance List Lp1 Mathx Oblivious Policy Rounding
