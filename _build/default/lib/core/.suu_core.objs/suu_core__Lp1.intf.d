lib/core/lp1.mli: Instance Solver_choice
