lib/core/lp2.mli: Assignment Instance Suu_dag
