lib/core/suu_c.ml: Array Assignment Instance List Lp2 Mathx Policy Suu_dag Suu_i_sem Suu_prng
