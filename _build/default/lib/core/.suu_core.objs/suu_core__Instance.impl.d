lib/core/instance.ml: Array Float List Suu_dag
